// Reproduces paper Fig. 9: localization accuracy vs distance from the
// device (3-11 m, through-wall). Expected shape: median error grows with
// range on all axes (SNR drops with d^4 and the ellipsoids' feasible
// surface grows with TOF); y stays best and z worst throughout.
//
// The paper extends the range by moving the device down the hallway; we
// equivalently deepen the room so the person can reach 11+ m.
//
// Usage: bench_fig9_distance [--experiments N] [--seconds S] [--seed K]
#include <iostream>
#include <map>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dsp/stats.hpp"
#include "harness.hpp"

using namespace witrack;

int main(int argc, char** argv) {
    CliArgs args(argc, argv);
    const int experiments = args.get_int("experiments", args.quick() ? 4 : 10);
    const double seconds = args.get_double("seconds", args.quick() ? 12.0 : 30.0);
    const std::uint64_t seed = args.get_seed(9);

    // Deep room so ranges reach 11+ m (stand-in for moving the device away).
    sim::RoomSpec room;
    room.device_outside = true;
    room.depth_m = 13.0;
    auto env = sim::make_lab_environment(room);
    env.bounds.y_min = 3.0;
    env.bounds.y_max = 11.5;

    // Bin errors by VICON range, rounded to the nearest meter (paper's
    // methodology).
    std::map<int, std::vector<double>> ex, ey, ez;

    for (int e = 0; e < experiments; ++e) {
        sim::ScenarioConfig config;
        config.through_wall = true;
        config.fast_capture = true;
        config.seed = seed + e;
        Rng rng(seed * 131 + e);
        config.human = bench::random_subject(rng);
        auto script = std::make_unique<sim::RandomWaypointWalk>(
            env.bounds, seconds, rng.fork(1), 0.5, 1.3, 0.2,
            0.57 * config.human.height_m);
        sim::Scenario scenario(config, std::move(script));
        const auto errors =
            bench::run_tracking_experiment(scenario, bench::default_pipeline(config));
        for (std::size_t i = 0; i < errors.x.size(); ++i) {
            const int bin = static_cast<int>(errors.truth_range[i] + 0.5);
            if (bin < 3 || bin > 11) continue;
            ex[bin].push_back(errors.x[i]);
            ey[bin].push_back(errors.y[i]);
            ez[bin].push_back(errors.z[i]);
        }
    }

    print_banner("Fig. 9 reproduction -- accuracy vs distance (through-wall)");
    Table table({"range (m)", "x med (cm)", "x p90", "y med (cm)", "y p90",
                 "z med (cm)", "z p90", "samples"});
    std::vector<double> med_x_by_range;
    for (const auto& [bin, xs] : ex) {
        if (xs.size() < 40) continue;
        const auto& ys = ey[bin];
        const auto& zs = ez[bin];
        table.add_row({std::to_string(bin),
                       Table::num(dsp::median(xs) * 100, 1),
                       Table::num(dsp::percentile(xs, 90) * 100, 1),
                       Table::num(dsp::median(ys) * 100, 1),
                       Table::num(dsp::percentile(ys, 90) * 100, 1),
                       Table::num(dsp::median(zs) * 100, 1),
                       Table::num(dsp::percentile(zs, 90) * 100, 1),
                       std::to_string(xs.size())});
        med_x_by_range.push_back(dsp::median(xs));
    }
    table.print();

    // Shape checks: error grows with range (compare the near-third to the
    // far-third), and the per-axis ordering holds overall.
    double near_err = 0.0, far_err = 0.0;
    int n_near = 0, n_far = 0;
    std::vector<double> all_x, all_y, all_z;
    for (const auto& [bin, xs] : ex) {
        for (double v : xs) {
            if (bin <= 5) {
                near_err += v;
                ++n_near;
            } else if (bin >= 8) {
                far_err += v;
                ++n_far;
            }
        }
        all_x.insert(all_x.end(), xs.begin(), xs.end());
        all_y.insert(all_y.end(), ey[bin].begin(), ey[bin].end());
        all_z.insert(all_z.end(), ez[bin].begin(), ez[bin].end());
    }
    const bool grows = n_near > 0 && n_far > 0 &&
                       far_err / n_far > near_err / n_near;
    const bool ordering = dsp::median(all_y) < dsp::median(all_x) &&
                          dsp::median(all_x) < dsp::median(all_z);
    std::cout << "\nShape checks:\n"
              << "  error grows with range (x, <=5 m vs >=8 m): "
              << (grows ? "PASS" : "FAIL") << "\n"
              << "  y < x < z overall: " << (ordering ? "PASS" : "FAIL") << "\n"
              << "Paper: median changes by 5-10 cm from 3 m to 11 m; y best, z worst.\n";
    return 0;
}
