// Reproduces paper Fig. 3: the TOF-estimation stages. (a) the raw
// spectrogram is dominated by horizontal stripes from static reflectors
// (the flash effect); (b) background subtraction removes them and reveals
// the moving person; (c) bottom-contour tracking plus denoising yields a
// clean TOF trace.
//
// The harness quantifies each stage: static-stripe power before/after
// subtraction, raw-contour outlier fraction, and the round-trip-distance
// RMSE of the raw vs denoised contour against ground truth.
//
// Usage: bench_fig3_tof [--seconds S] [--seed K] [--csv spectrogram.csv]
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/tof.hpp"
#include "dsp/stats.hpp"
#include "harness.hpp"

using namespace witrack;

int main(int argc, char** argv) {
    CliArgs args(argc, argv);
    const double seconds = args.get_double("seconds", args.quick() ? 8.0 : 20.0);
    const std::uint64_t seed = args.get_seed(7);

    sim::ScenarioConfig config;
    config.through_wall = true;
    config.fast_capture = true;
    config.seed = seed;
    Rng rng(seed + 5);
    const auto env = sim::make_through_wall_lab();
    sim::Scenario scenario(config, std::make_unique<sim::RandomWaypointWalk>(
                                       env.bounds, seconds, rng.fork(1)));

    auto pipeline = bench::default_pipeline(config);
    pipeline.record_profiles = true;

    core::SweepProcessor processor(pipeline.fmcw, pipeline.window, pipeline.fft_size);
    core::TofEstimator tof(pipeline, 3);

    // Stage statistics for receive antenna 0.
    dsp::RunningStats raw_static_power;     // spectrogram power in static bins
    dsp::RunningStats subtracted_static_power;
    std::vector<double> raw_contour_err, denoised_err;
    std::size_t raw_outliers = 0, raw_points = 0;
    double prev_raw_contour = -1.0;

    sim::Scenario::Frame frame;
    core::RangeProfile profile;
    while (scenario.next(frame)) {
        // Ground-truth round trip to rx0 (via the torso surface).
        const geom::Vec3 surface =
            frame.pose.center +
            (scenario.array().tx - frame.pose.center).normalized() * 0.11;
        const double truth_rt = surface.distance_to(scenario.array().tx) +
                                surface.distance_to(scenario.array().rx[0]);

        // Static-stripe level: the strongest raw-spectrogram magnitude in
        // the 3-25 m band, at least 2 m of round trip away from the person
        // (so the stripe measured is genuinely a static reflector).
        processor.process_into(frame.sweeps.antenna(0), frame.sweeps.num_sweeps(),
                               profile);
        const auto lo = static_cast<std::size_t>(profile.bin_of_round_trip(3.0));
        const auto hi = static_cast<std::size_t>(profile.bin_of_round_trip(25.0));
        auto away_from_person = [&](std::size_t k) {
            return std::abs(profile.round_trip_of_bin(static_cast<double>(k)) -
                            truth_rt) > 2.0;
        };
        double stripe = 0.0;
        for (std::size_t k = lo; k <= hi; ++k)
            if (away_from_person(k)) stripe = std::max(stripe, std::abs(profile.bin(k)));
        raw_static_power.add(stripe);

        const auto tof_frame = tof.process_frame(frame.sweeps, frame.time_s);
        const auto& antenna = tof_frame.antennas[0];
        if (!antenna.profile.empty()) {
            double residue = 0.0;
            for (std::size_t k = lo; k <= hi && k < antenna.profile.size(); ++k)
                if (away_from_person(k)) residue = std::max(residue, antenna.profile[k]);
            subtracted_static_power.add(residue);
        }

        if (antenna.contour.detected && frame.time_s > 2.0) {
            ++raw_points;
            const double err = std::abs(antenna.contour.round_trip_m - truth_rt);
            raw_contour_err.push_back(err);
            if (prev_raw_contour >= 0.0 &&
                std::abs(antenna.contour.round_trip_m - prev_raw_contour) > 1.2)
                ++raw_outliers;
            prev_raw_contour = antenna.contour.round_trip_m;
        }
        if (antenna.denoised_m && frame.time_s > 2.0)
            denoised_err.push_back(std::abs(*antenna.denoised_m - truth_rt));
    }

    print_banner("Fig. 3 reproduction -- TOF estimation stages (Rx0, through-wall)");
    Table stages({"stage", "metric", "value"});
    stages.add_row({"(a) raw spectrogram", "static stripe magnitude (mean)",
                    Table::num(raw_static_power.mean(), 6)});
    stages.add_row({"(b) background subtraction", "same bins after subtraction",
                    Table::num(subtracted_static_power.mean(), 6)});
    const double suppression =
        raw_static_power.mean() / std::max(1e-12, subtracted_static_power.mean());
    stages.add_row({"", "static suppression factor", Table::num(suppression, 1) + "x"});
    stages.add_row({"(c) raw bottom contour", "round-trip RMSE vs truth",
                    Table::num(dsp::median(raw_contour_err) * 100, 1) + " cm (median)"});
    stages.add_row({"", "frame-to-frame jumps > 1.2 m",
                    Table::num(100.0 * static_cast<double>(raw_outliers) /
                                   std::max<std::size_t>(1, raw_points),
                               1) + " %"});
    stages.add_row({"(c) denoised contour", "round-trip error vs truth",
                    Table::num(dsp::median(denoised_err) * 100, 1) + " cm (median)"});
    stages.print();

    const bool pass = suppression > 10.0 &&
                      dsp::median(denoised_err) <= dsp::median(raw_contour_err) + 0.01;
    std::cout << "\nShape checks:\n"
              << "  background subtraction removes static stripes (>10x): "
              << (suppression > 10.0 ? "PASS" : "FAIL") << "\n"
              << "  denoising does not degrade the contour: "
              << (dsp::median(denoised_err) <= dsp::median(raw_contour_err) + 0.01
                      ? "PASS"
                      : "FAIL")
              << "\n"
              << (pass ? "Fig. 3 shape reproduced.\n" : "Fig. 3 shape NOT reproduced.\n");
    return 0;
}
