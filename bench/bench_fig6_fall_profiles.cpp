// Reproduces paper Fig. 6: WiTrack's measured elevation over time for the
// four activities (walk, sit on a chair, sit on the ground, fall). The
// figure's message: final elevation separates {walk, sit-chair} from
// {sit-floor, fall}; the *speed* of the elevation change separates a fall
// from sitting on the floor.
//
// Usage: bench_fig6_fall_profiles [--seed K] [--csv traces.csv]
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/fall.hpp"
#include "core/tracker.hpp"
#include "harness.hpp"

using namespace witrack;

int main(int argc, char** argv) {
    CliArgs args(argc, argv);
    const std::uint64_t seed = args.get_seed(5);
    const auto env = sim::make_through_wall_lab();

    struct Row {
        std::string name;
        sim::ActivityKind kind;
        core::FallDetector::Analysis analysis;
        std::vector<std::pair<double, double>> trace;  // (t, z)
    };
    std::vector<Row> rows = {{"walk", sim::ActivityKind::kWalk, {}, {}},
                             {"sit-chair", sim::ActivityKind::kSitChair, {}, {}},
                             {"sit-floor", sim::ActivityKind::kSitFloor, {}, {}},
                             {"fall", sim::ActivityKind::kFall, {}, {}}};

    core::FallDetector detector;
    for (auto& row : rows) {
        sim::ScenarioConfig config;
        config.fast_capture = true;
        config.seed = seed;
        auto script = std::make_unique<sim::ActivityScript>(row.kind, env.bounds,
                                                            Rng(seed + 3), 24.0);
        sim::Scenario scenario(config, std::move(script));
        core::WiTrackTracker tracker(bench::default_pipeline(config), scenario.array());
        sim::Scenario::Frame frame;
        while (scenario.next(frame)) {
            const auto result = tracker.process_frame(frame.sweeps, frame.time_s);
            if (result.smoothed)
                row.trace.emplace_back(frame.time_s, result.smoothed->position.z);
        }
        row.analysis = detector.analyze(tracker.raw_track());
    }

    print_banner("Fig. 6 reproduction -- elevation traces per activity");
    Table table({"activity", "initial z (m)", "final z (m)", "drop fraction",
                 "15-85% drop time (s)", "classified as"});
    for (const auto& row : rows) {
        const auto& a = row.analysis;
        table.add_row({row.name, Table::num(a.initial_elevation_m, 2),
                       Table::num(a.final_elevation_m, 2),
                       Table::num(a.drop_fraction, 2),
                       a.drop_duration_s > 0 ? Table::num(a.drop_duration_s, 2) : "-",
                       core::activity_name(a.activity)});
    }
    table.print();

    // Elevation time series, decimated to 0.5 s, as the figure's data.
    Table trace({"t (s)", "walk z", "sit-chair z", "sit-floor z", "fall z"});
    for (double t = 0.0; t < 24.0; t += 2.0) {
        std::vector<std::string> cells{Table::num(t, 1)};
        for (const auto& row : rows) {
            double z = 0.0;
            for (const auto& [ts, zs] : row.trace)
                if (ts <= t) z = zs;
            cells.push_back(Table::num(z, 2));
        }
        trace.add_row(cells);
    }
    trace.print();
    if (args.has("csv")) trace.write_csv(args.get("csv"));

    const bool separations =
        rows[0].analysis.final_elevation_m > 0.8 &&           // walk stays up
        rows[1].analysis.final_elevation_m > 0.45 &&          // chair mid-level
        rows[2].analysis.final_elevation_m < 0.45 &&          // floor low
        rows[3].analysis.final_elevation_m < 0.45 &&          // fall low
        (rows[3].analysis.drop_duration_s < rows[2].analysis.drop_duration_s ||
         rows[2].analysis.drop_duration_s == 0.0);            // fall faster
    std::cout << "\nShape check (same separations as paper Fig. 6): "
              << (separations ? "PASS" : "FAIL") << "\n";
    return 0;
}
