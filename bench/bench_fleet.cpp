// Fleet throughput bench: frames/second an EngineHost sustains as the
// session count grows, at 1/2/4 shared workers -- the scaling curve of the
// multi-tenant runtime. Writes bench/fleet_throughput.json (same shape
// discipline as scheduler_latency.json: host_cpus records the machine, a
// single-core host carries an explicit caveat since extra workers can only
// add dispatch overhead there).
//
// Run:  ./build/bench_fleet [output.json]
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/host.hpp"
#include "engine/sim_source.hpp"

using namespace witrack;

namespace {

engine::EngineConfig session_config(std::uint64_t seed) {
    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(seed);
    return config;
}

std::unique_ptr<engine::SimSource> make_source(std::uint64_t seed) {
    return std::make_unique<engine::SimSource>(
        session_config(seed),
        std::make_unique<sim::LineWalkScript>(geom::Vec3{-1, 5, 0},
                                              geom::Vec3{1, 5, 0}, 2.0, 1.0));
}

struct Point {
    std::size_t workers = 0;
    std::size_t sessions = 0;
    std::size_t frames = 0;
    double seconds = 0.0;
    double fps() const { return seconds > 0.0 ? frames / seconds : 0.0; }
};

/// One fleet run to completion: `sessions` identical full-pipeline sim
/// tenants on a host with `workers` shared workers.
Point run_fleet(std::size_t workers, std::size_t sessions) {
    engine::EngineHost host(engine::HostConfig{}
                                .with_workers(workers)
                                .with_max_sessions(sessions));
    for (std::size_t s = 0; s < sessions; ++s)
        host.admit("bench-" + std::to_string(s), session_config(900 + s),
                   make_source(900 + s));

    Point point;
    point.workers = workers;
    point.sessions = sessions;
    const auto t0 = std::chrono::steady_clock::now();
    point.frames = host.run();
    const auto t1 = std::chrono::steady_clock::now();
    point.seconds = std::chrono::duration<double>(t1 - t0).count();
    std::printf("  workers %zu  sessions %zu  %5zu frames  %6.2f s  %7.1f "
                "frames/s\n",
                point.workers, point.sessions, point.frames, point.seconds,
                point.fps());
    return point;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string path =
        argc > 1 ? argv[1] : std::string("bench/fleet_throughput.json");

    // Warm the shared FFT plan cache once so every configuration pays the
    // same (zero) plan-construction cost, as a long-running server would.
    run_fleet(1, 1);

    std::printf("fleet throughput sweep:\n");
    std::vector<Point> points;
    for (const std::size_t workers : {1u, 2u, 4u})
        for (const std::size_t sessions : {1u, 2u, 4u, 8u})
            points.push_back(run_fleet(workers, sessions));

    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"benchmark\": \"bench_fleet\",\n");
    std::fprintf(out,
                 "  \"scenario\": \"N identical full-pipeline sim sessions "
                 "(LineWalkScript, fast capture, ~160 frames each) on one "
                 "EngineHost, run to completion\",\n");
    std::fprintf(out, "  \"host_cpus\": %u,\n",
                 std::thread::hardware_concurrency());
    if (std::thread::hardware_concurrency() < 2) {
        std::fprintf(out,
                     "  \"note\": \"single-core host: the multi-worker "
                     "configurations can only add dispatch overhead here (no "
                     "parallel hardware); rerun on a multi-core machine for "
                     "the scaling curve -- tests/test_fleet.cpp proves all "
                     "schedules bit-identical regardless\",\n");
    }
    std::fprintf(out, "  \"configurations\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        std::fprintf(out,
                     "    {\"workers\": %zu, \"sessions\": %zu, \"frames\": "
                     "%zu, \"seconds\": %.4f, \"frames_per_second\": %.1f}%s\n",
                     p.workers, p.sessions, p.frames, p.seconds, p.fps(),
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
