// Fleet throughput bench: frames/second an EngineHost sustains as the
// session count grows, at 1/2/4 shared workers -- the scaling curve of the
// multi-tenant runtime. Writes bench/fleet_throughput.json (same shape
// discipline as scheduler_latency.json: host_cpus records the machine, a
// single-core host carries an explicit caveat since extra workers can only
// add dispatch overhead there).
//
// Run:  ./build/bench_fleet [output.json]
//       ./build/bench_fleet --snapshot-json [output.json]
//       ./build/bench_fleet --net-json [output.json]
//       ./build/bench_fleet --fault-json [output.json]
//
// The --snapshot-json mode measures the session snapshot/restore path
// instead: checkpoint latency, snapshot byte size and restore latency per
// canonical session shape, into bench/snapshot_latency.json.
//
// The --net-json mode measures the network ingestion path: a full episode
// packed into WTNF datagrams and reassembled by a NetSource, swept across
// injected loss rates, into bench/net_ingest.json.
//
// The --fault-json mode measures hardware-fault degradation: tracking
// error versus injected antenna-dropout rate, plus the recovery latency
// after a scheduled mid-run dropout window, into
// bench/fault_degradation.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/host.hpp"
#include "engine/replay.hpp"
#include "engine/sim_source.hpp"
#include "harness.hpp"
#include "hw/fault_injector.hpp"
#include "net/datagram_source.hpp"
#include "net/fault_injector.hpp"
#include "net/frame_protocol.hpp"
#include "net/net_source.hpp"

using namespace witrack;

namespace {

engine::EngineConfig session_config(std::uint64_t seed) {
    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(seed);
    return config;
}

std::unique_ptr<engine::SimSource> make_source(std::uint64_t seed) {
    return std::make_unique<engine::SimSource>(
        session_config(seed),
        std::make_unique<sim::LineWalkScript>(geom::Vec3{-1, 5, 0},
                                              geom::Vec3{1, 5, 0}, 2.0, 1.0));
}

struct Point {
    std::size_t workers = 0;
    std::size_t sessions = 0;
    bool batch_fft = false;
    std::size_t frames = 0;
    double seconds = 0.0;
    double fps() const { return seconds > 0.0 ? frames / seconds : 0.0; }
};

/// One fleet run to completion: `sessions` identical full-pipeline sim
/// tenants on a host with `workers` shared workers, optionally gathering
/// every round's range FFTs into cross-session batches.
Point run_fleet(std::size_t workers, std::size_t sessions,
                bool batch_fft = false) {
    engine::EngineHost host(engine::HostConfig{}
                                .with_workers(workers)
                                .with_max_sessions(sessions)
                                .with_batch_fft(batch_fft));
    for (std::size_t s = 0; s < sessions; ++s)
        host.admit("bench-" + std::to_string(s), session_config(900 + s),
                   make_source(900 + s));

    Point point;
    point.workers = workers;
    point.sessions = sessions;
    point.batch_fft = batch_fft;
    const auto t0 = std::chrono::steady_clock::now();
    point.frames = host.run();
    const auto t1 = std::chrono::steady_clock::now();
    point.seconds = std::chrono::duration<double>(t1 - t0).count();
    std::printf("  workers %zu  sessions %zu%s  %5zu frames  %6.2f s  %7.1f "
                "frames/s\n",
                point.workers, point.sessions,
                point.batch_fft ? "  batch" : "       ", point.frames,
                point.seconds, point.fps());
    return point;
}

// ------------------------------------------------ snapshot latency mode

struct SnapshotPoint {
    std::string shape;
    std::size_t frames_at_snapshot = 0;
    std::size_t bytes = 0;
    double snapshot_us = 0.0;  ///< mean checkpoint wall clock
    double restore_us = 0.0;   ///< mean restore-into-fresh-engine wall clock
};

/// Run a session shape halfway, then measure Engine::snapshot and
/// Engine::restore on it. The restored engine is run to completion once as
/// a sanity check that the measured snapshot actually resumes.
SnapshotPoint measure_snapshot(
    const std::string& shape,
    const std::function<std::unique_ptr<engine::Engine>()>& make_session) {
    constexpr std::size_t kSnapshotReps = 100;
    constexpr std::size_t kRestoreReps = 10;

    auto session = make_session();
    std::size_t episode_frames = 0;
    {
        auto probe = make_session();
        probe->run();
        episode_frames = probe->frames_processed();
    }
    for (std::size_t i = 0; i < episode_frames / 2; ++i) session->step();

    SnapshotPoint point;
    point.shape = shape;
    point.frames_at_snapshot = session->frames_processed();

    std::string bytes;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < kSnapshotReps; ++rep) {
        std::ostringstream out;
        session->snapshot(out);
        bytes = out.str();
    }
    const auto t1 = std::chrono::steady_clock::now();
    point.bytes = bytes.size();
    point.snapshot_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kSnapshotReps;

    std::unique_ptr<engine::Engine> restored;
    const auto t2 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < kRestoreReps; ++rep) {
        restored = make_session();
        std::istringstream in(bytes);
        restored->restore(in);
    }
    const auto t3 = std::chrono::steady_clock::now();
    point.restore_us =
        std::chrono::duration<double, std::micro>(t3 - t2).count() / kRestoreReps;

    restored->run();
    if (restored->frames_processed() != episode_frames) {
        std::fprintf(stderr, "%s: restored session finished at %zu frames, "
                             "expected %zu\n",
                     shape.c_str(), restored->frames_processed(), episode_frames);
        std::exit(1);
    }

    std::printf("  %-20s  %5zu frames  %7zu bytes  snapshot %8.1f us  "
                "restore %8.1f us\n",
                point.shape.c_str(), point.frames_at_snapshot, point.bytes,
                point.snapshot_us, point.restore_us);
    return point;
}

int run_snapshot_bench(const std::string& path) {
    const std::string recording = "bench_snapshot_episode.wtrk";
    {
        auto config = session_config(907);
        engine::SimSource live(config,
                               std::make_unique<sim::LineWalkScript>(
                                   geom::Vec3{-1, 5, 0}, geom::Vec3{1, 5, 0},
                                   2.0, 1.0));
        engine::Recorder recorder(recording, live.fmcw(), live.array());
        engine::Frame frame;
        while (live.next(frame)) recorder.write(frame);
    }

    std::printf("session snapshot/restore latency:\n");
    std::vector<SnapshotPoint> points;
    points.push_back(measure_snapshot("sim-full", [] {
        auto config = session_config(901);
        return std::make_unique<engine::Engine>(
            config, make_source(901));
    }));
    points.push_back(measure_snapshot("sim-tof-only", [] {
        auto config = session_config(902);
        config.with_outputs(core::PipelineOutputs::kTof);
        return std::make_unique<engine::Engine>(config, make_source(902));
    }));
    points.push_back(measure_snapshot("replay-localize-only", [&] {
        auto config = session_config(907);
        config.with_outputs(core::PipelineOutputs::kRawPosition);
        return std::make_unique<engine::Engine>(
            config, std::make_unique<engine::ReplaySource>(recording));
    }));
    std::remove(recording.c_str());

    bench::JsonReport report(path, "bench_fleet --snapshot-json",
                             "Engine::snapshot / Engine::restore at "
                             "mid-episode for the three canonical session "
                             "shapes (LineWalkScript, fast capture, ~160 "
                             "frames); restore includes fast-forwarding the "
                             "replay cursor for the replay shape");
    if (!report.ok()) return 1;
    report.single_core_caveat("absolute latencies are pessimistic; the byte "
                              "sizes are machine-independent");
    std::FILE* out = report.stream();
    std::fprintf(out, "  \"sessions\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        std::fprintf(out,
                     "    {\"shape\": \"%s\", \"frames_at_snapshot\": %zu, "
                     "\"snapshot_bytes\": %zu, \"snapshot_us\": %.1f, "
                     "\"restore_us\": %.1f}%s\n",
                     p.shape.c_str(), p.frames_at_snapshot, p.bytes,
                     p.snapshot_us, p.restore_us,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n");
    return report.close();
}

// ------------------------------------------------ net ingestion mode

struct NetPoint {
    double loss_rate = 0.0;
    std::size_t frames_sent = 0;
    std::size_t datagrams_sent = 0;
    std::size_t frames_delivered = 0;
    std::size_t frame_gaps = 0;
    double seconds = 0.0;
    double datagrams_per_second() const {
        return seconds > 0.0 ? static_cast<double>(datagrams_sent) / seconds
                             : 0.0;
    }
    /// Mean wall clock from "datagrams pending" to "frame handed to the
    /// engine" -- decode, CRC check and reassembly, amortized per frame.
    double reassembly_us_per_frame() const {
        return frames_delivered > 0 ? seconds * 1e6 / frames_delivered : 0.0;
    }
};

/// Reassemble one pre-packed episode through a NetSource at the given drop
/// rate. The queue is pre-filled so the timing covers decode + reassembly,
/// not the sender.
NetPoint run_net_ingest(const std::vector<std::vector<net::Datagram>>& frames,
                        double loss_rate) {
    constexpr std::uint64_t kToken = 903;

    std::vector<net::Datagram> stream;
    for (std::size_t i = 0; i < frames.size(); ++i)
        for (const auto& datagram : frames[i]) stream.push_back(datagram);
    stream.push_back(net::pack_end_of_stream(kToken, frames.size()));
    const std::size_t datagrams_sent = stream.size();

    net::FaultInjector injector(net::FaultConfig{
        .drop_rate = loss_rate, .seed = 7, .protect_last = true});
    stream = injector.apply(std::move(stream));

    auto queue = std::make_unique<net::QueueDatagramSource>();
    for (auto& datagram : stream) queue->push(std::move(datagram));
    queue->close();

    net::NetSourceConfig config;
    config.session_token = kToken;
    net::NetSource source(std::move(queue), config);

    NetPoint point;
    point.loss_rate = loss_rate;
    point.frames_sent = frames.size();
    point.datagrams_sent = datagrams_sent;
    engine::Frame frame;
    const auto t0 = std::chrono::steady_clock::now();
    while (source.next(frame)) ++point.frames_delivered;
    const auto t1 = std::chrono::steady_clock::now();
    point.seconds = std::chrono::duration<double>(t1 - t0).count();
    const auto stats = source.net_stats().value();
    point.frame_gaps = stats.frame_gaps;

    std::printf("  loss %4.1f%%  %5zu/%zu frames  %6zu datagrams  %6.3f s  "
                "%9.0f datagrams/s  %7.1f us/frame\n",
                loss_rate * 100.0, point.frames_delivered, point.frames_sent,
                point.datagrams_sent, point.seconds,
                point.datagrams_per_second(), point.reassembly_us_per_frame());
    return point;
}

int run_net_bench(const std::string& path) {
    constexpr std::uint64_t kToken = 903;

    // The canonical episode, pre-packed once: ~160 fast-capture frames as
    // the datagram stream a remote radio would emit.
    std::vector<std::vector<net::Datagram>> frames;
    std::size_t datagram_count = 0;
    {
        auto source = make_source(kToken);
        engine::Frame frame;
        while (source->next(frame)) {
            frames.push_back(
                net::pack_frame(frame, kToken, frames.size()));
            datagram_count += frames.back().size();
        }
    }
    std::printf("net ingestion sweep (%zu frames, %zu datagrams, MTU %zu):\n",
                frames.size(), datagram_count, net::kDefaultMtuBytes);

    std::vector<NetPoint> points;
    for (const double loss : {0.0, 0.01, 0.05})
        points.push_back(run_net_ingest(frames, loss));

    bench::JsonReport report(
        path, "bench_fleet --net-json",
        "one canonical episode (LineWalkScript, fast capture) packed into "
        "WTNF datagrams and reassembled by a NetSource from a pre-filled "
        "queue, swept across injected drop rates (seeded FaultInjector, "
        "end-of-stream marker protected); reassembly_us_per_frame is decode "
        "+ CRC + reassembly wall clock amortized per delivered frame");
    if (!report.ok()) return 1;
    report.single_core_caveat("absolute rates are pessimistic; the "
                              "delivery/gap accounting is machine-independent");
    std::FILE* out = report.stream();
    std::fprintf(out, "  \"mtu_bytes\": %zu,\n", net::kDefaultMtuBytes);
    std::fprintf(out, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        std::fprintf(out,
                     "    {\"loss_rate\": %.2f, \"frames_sent\": %zu, "
                     "\"frames_delivered\": %zu, \"frame_gaps\": %zu, "
                     "\"datagrams_sent\": %zu, \"seconds\": %.4f, "
                     "\"datagrams_per_second\": %.0f, "
                     "\"reassembly_us_per_frame\": %.1f}%s\n",
                     p.loss_rate, p.frames_sent, p.frames_delivered,
                     p.frame_gaps, p.datagrams_sent, p.seconds,
                     p.datagrams_per_second(), p.reassembly_us_per_frame(),
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n");
    return report.close();
}

// ------------------------------------------- hw fault degradation mode

struct FaultPoint {
    std::string label;
    double dropout_rate = 0.0;
    std::size_t frames = 0;
    std::size_t degraded_frames = 0;
    double mean_health = 1.0;
    double mean_error_m = 0.0;
    double p90_error_m = 0.0;
    double recovery_s = -1.0;  ///< scheduled window only; -1 = n/a
};

/// One full episode under the given hardware faults, tracking error
/// measured against the simulator's ground truth frame by frame.
FaultPoint run_fault_episode(const std::string& label,
                             const hw::FaultConfig& faults, bool has_faults,
                             double window_end_s = -1.0) {
    auto source = make_source(906);
    if (has_faults)
        source->set_fault_injector(std::make_unique<hw::FaultInjector>(faults));
    engine::Engine session(session_config(906), std::move(source));

    std::vector<double> errors;
    double recovered_at = -1.0;
    session.bus().subscribe<engine::TrackUpdateEvent>(
        [&](const engine::TrackUpdateEvent& event) {
            if (!event.smoothed || !event.truth) return;
            const geom::Vec3 p = event.smoothed->position;
            const geom::Vec3 t = event.truth->position;
            errors.push_back(std::sqrt((p.x - t.x) * (p.x - t.x) +
                                       (p.y - t.y) * (p.y - t.y) +
                                       (p.z - t.z) * (p.z - t.z)));
            if (window_end_s >= 0.0 && recovered_at < 0.0 &&
                event.time_s >= window_end_s && event.confidence >= 1.0)
                recovered_at = event.time_s;
        });
    session.run();

    FaultPoint point;
    point.label = label;
    point.dropout_rate = faults.dropout_rate;
    point.frames = session.quality_stats().frames;
    point.degraded_frames = session.quality_stats().degraded_frames;
    point.mean_health = session.quality_stats().mean_health();
    if (!errors.empty()) {
        double sum = 0.0;
        for (const double e : errors) sum += e;
        point.mean_error_m = sum / static_cast<double>(errors.size());
        std::sort(errors.begin(), errors.end());
        point.p90_error_m = errors[errors.size() * 9 / 10];
    }
    if (window_end_s >= 0.0 && recovered_at >= 0.0)
        point.recovery_s = recovered_at - window_end_s;

    std::printf("  %-18s  %4zu frames  %4zu degraded  health %5.3f  "
                "err %5.3f m  p90 %5.3f m%s\n",
                point.label.c_str(), point.frames, point.degraded_frames,
                point.mean_health, point.mean_error_m, point.p90_error_m,
                point.recovery_s >= 0.0
                    ? ("  recovery " + std::to_string(point.recovery_s) + " s")
                          .c_str()
                    : "");
    return point;
}

int run_fault_bench(const std::string& path) {
    std::printf("hardware fault degradation sweep:\n");
    std::vector<FaultPoint> points;
    points.push_back(run_fault_episode("clean", hw::FaultConfig{}, false));
    for (const double rate : {0.02, 0.05, 0.10}) {
        hw::FaultConfig faults;
        faults.dropout_rate = rate;
        faults.seed = 77;
        points.push_back(run_fault_episode(
            "dropout-" + std::to_string(static_cast<int>(rate * 100)) + "pct",
            faults, true));
    }
    // The acceptance shape: one antenna dead for a 0.4 s window mid-walk;
    // recovery_s is the lag from the window's end until the published
    // confidence returns to 1.0.
    hw::FaultConfig scheduled;
    scheduled.schedule.push_back(
        {hw::FaultWindow::Kind::kDropout, 0.8, 1.2, 0, 1.0});
    points.push_back(
        run_fault_episode("scheduled-dropout", scheduled, true, 1.2));

    bench::JsonReport report(
        path, "bench_fleet --fault-json",
        "one canonical episode (LineWalkScript, fast capture) per point, a "
        "seeded hw::FaultInjector damaging frames at the source; error is "
        "3D distance between the smoothed track and simulator ground truth "
        "per frame; the scheduled-dropout point kills antenna 0 over "
        "[0.8 s, 1.2 s) and reports the confidence recovery lag");
    if (!report.ok()) return 1;
    report.single_core_caveat("error/health/recovery figures are "
                              "machine-independent (deterministic replay); "
                              "only wall clock would differ");
    std::FILE* out = report.stream();
    std::fprintf(out, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        std::fprintf(out,
                     "    {\"label\": \"%s\", \"dropout_rate\": %.2f, "
                     "\"frames\": %zu, \"degraded_frames\": %zu, "
                     "\"mean_health\": %.4f, \"mean_error_m\": %.4f, "
                     "\"p90_error_m\": %.4f, \"recovery_s\": %.4f}%s\n",
                     p.label.c_str(), p.dropout_rate, p.frames,
                     p.degraded_frames, p.mean_health, p.mean_error_m,
                     p.p90_error_m, p.recovery_s,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n");
    return report.close();
}

}  // namespace

int main(int argc, char** argv) {
    if (argc > 1 && std::string(argv[1]) == "--net-json") {
        return run_net_bench(argc > 2 ? argv[2] : "bench/net_ingest.json");
    }
    if (argc > 1 && std::string(argv[1]) == "--fault-json") {
        return run_fault_bench(argc > 2 ? argv[2]
                                        : "bench/fault_degradation.json");
    }
    if (argc > 1 && std::string(argv[1]) == "--snapshot-json") {
        return run_snapshot_bench(argc > 2 ? argv[2]
                                           : "bench/snapshot_latency.json");
    }
    const std::string path =
        argc > 1 ? argv[1] : std::string("bench/fleet_throughput.json");

    // Warm the shared FFT plan cache once so every configuration pays the
    // same (zero) plan-construction cost, as a long-running server would.
    run_fleet(1, 1);

    std::printf("fleet throughput sweep:\n");
    std::vector<Point> points;
    for (const std::size_t workers : {1u, 2u, 4u})
        for (const std::size_t sessions : {1u, 2u, 4u, 8u})
            points.push_back(run_fleet(workers, sessions));
    // The batched-FFT schedule: serial host, cross-session batches.
    for (const std::size_t sessions : {2u, 4u, 8u})
        points.push_back(run_fleet(1, sessions, /*batch_fft=*/true));

    bench::JsonReport report(path, "bench_fleet",
                             "N identical full-pipeline sim sessions "
                             "(LineWalkScript, fast capture, ~160 frames "
                             "each) on one EngineHost, run to completion");
    if (!report.ok()) return 1;
    report.single_core_caveat(
        "the multi-worker configurations can only add dispatch overhead here "
        "(no parallel hardware); rerun on a multi-core machine for the "
        "scaling curve -- tests/test_fleet.cpp proves all schedules "
        "bit-identical regardless");
    std::FILE* out = report.stream();
    std::fprintf(out, "  \"configurations\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        std::fprintf(out,
                     "    {\"workers\": %zu, \"sessions\": %zu, \"batch_fft\": "
                     "%s, \"frames\": %zu, \"seconds\": %.4f, "
                     "\"frames_per_second\": %.1f}%s\n",
                     p.workers, p.sessions, p.batch_fft ? "true" : "false",
                     p.frames, p.seconds, p.fps(),
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n");
    return report.close();
}
