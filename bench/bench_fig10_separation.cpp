// Reproduces paper Fig. 10: localization accuracy vs antenna separation
// (25 cm to 2 m, through-wall). Expected shape: accuracy improves on all
// three axes as the T grows -- larger separation moves the ellipsoid foci
// apart, "squashing" the ellipsoids and shrinking the feasible region.
//
// Paper reference at 25 cm separation: median <= 17 / 12 / 31 cm (x/y/z),
// 90th percentile 64 / 35 / 116 cm.
//
// Usage: bench_fig10_separation [--experiments N] [--seconds S] [--seed K]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dsp/stats.hpp"
#include "harness.hpp"

using namespace witrack;

int main(int argc, char** argv) {
    CliArgs args(argc, argv);
    const int experiments = args.get_int("experiments", args.quick() ? 2 : 5);
    const double seconds = args.get_double("seconds", args.quick() ? 10.0 : 20.0);
    const std::uint64_t seed = args.get_seed(10);

    const std::vector<double> separations{0.25, 0.5, 1.0, 1.5, 2.0};

    print_banner("Fig. 10 reproduction -- accuracy vs antenna separation");
    Table table({"separation (m)", "x med (cm)", "x p90", "y med (cm)", "y p90",
                 "z med (cm)", "z p90"});

    std::vector<double> med_x, med_y, med_z;
    for (double sep : separations) {
        bench::TrackingErrors errors;
        for (int e = 0; e < experiments; ++e) {
            sim::ScenarioConfig config;
            config.through_wall = true;
            config.fast_capture = true;
            config.antenna_separation_m = sep;
            // Same seeds across separations: only the array size changes.
            errors.append(bench::run_walk_experiment(config, seconds, seed + e));
        }
        med_x.push_back(dsp::median(errors.x));
        med_y.push_back(dsp::median(errors.y));
        med_z.push_back(dsp::median(errors.z));
        table.add_row({Table::num(sep, 2),
                       Table::num(dsp::median(errors.x) * 100, 1),
                       Table::num(dsp::percentile(errors.x, 90) * 100, 1),
                       Table::num(dsp::median(errors.y) * 100, 1),
                       Table::num(dsp::percentile(errors.y, 90) * 100, 1),
                       Table::num(dsp::median(errors.z) * 100, 1),
                       Table::num(dsp::percentile(errors.z, 90) * 100, 1)});
    }
    table.print();

    // Shape checks: the smallest array is worse than the largest on every
    // axis (the paper's trend, allowing non-monotone neighbors from noise).
    const bool improves = med_x.front() > med_x.back() &&
                          med_y.front() > med_y.back() &&
                          med_z.front() > med_z.back();
    std::cout << "\nShape checks:\n"
              << "  2 m separation better than 25 cm on all axes: "
              << (improves ? "PASS" : "FAIL") << "\n"
              << "  25 cm medians usable (x<35, y<25, z<60 cm; paper 17/12/31): "
              << ((med_x.front() < 0.35 && med_y.front() < 0.25 &&
                   med_z.front() < 0.60)
                      ? "PASS"
                      : "FAIL")
              << "\n";
    return 0;
}
