// Reproduces the fall-detection study of paper Section 9.5: 132 experiments
// (33 per activity: walk, sit on a chair, sit on the floor, simulated fall),
// classified offline.
//
// Paper results: no walk or sit-chair classified as a fall; 1 sit-floor
// false alarm; 2 of 33 falls missed (classified as sit-floor).
// => precision 96.9%, recall 93.9%, F-measure 94.4%.
//
// Usage: bench_fall_table [--per-activity N] [--seed K]
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/fall.hpp"
#include "core/tracker.hpp"
#include "harness.hpp"

using namespace witrack;

int main(int argc, char** argv) {
    CliArgs args(argc, argv);
    int per_activity = args.get_int("per-activity", args.quick() ? 6 : 12);
    if (args.has("full")) per_activity = 33;  // the paper's exact scale
    const std::uint64_t seed = args.get_seed(14);

    const auto env = sim::make_through_wall_lab();
    core::FallDetector detector;

    const sim::ActivityKind kinds[] = {
        sim::ActivityKind::kWalk, sim::ActivityKind::kSitChair,
        sim::ActivityKind::kSitFloor, sim::ActivityKind::kFall};
    const char* names[] = {"walk", "sit-chair", "sit-floor", "fall"};
    int confusion[4][4] = {};

    for (int k = 0; k < 4; ++k) {
        for (int i = 0; i < per_activity; ++i) {
            sim::ScenarioConfig config;
            config.fast_capture = true;
            config.seed = seed + static_cast<std::uint64_t>(k) * 1000 + i;
            Rng rng(seed * 7 + static_cast<std::uint64_t>(k) * 101 + i);
            config.human = bench::random_subject(rng);
            auto script = std::make_unique<sim::ActivityScript>(
                kinds[k], env.bounds, rng.fork(1), 24.0,
                config.human.height_m);
            sim::Scenario scenario(config, std::move(script));
            core::WiTrackTracker tracker(bench::default_pipeline(config),
                                         scenario.array());
            sim::Scenario::Frame frame;
            while (scenario.next(frame))
                tracker.process_frame(frame.sweeps, frame.time_s);
            // As in the paper, episodes are logged and processed offline;
            // the raw (unsmoothed) track preserves the fast fall transient.
            const auto activity = detector.classify(tracker.raw_track());
            confusion[k][static_cast<int>(activity)]++;
        }
    }

    print_banner("Section 9.5 reproduction -- fall detection over " +
                 std::to_string(4 * per_activity) + " experiments (paper: 132)");
    Table table({"true \\ classified", "walk", "sit-chair", "sit-floor", "fall"});
    for (int k = 0; k < 4; ++k)
        table.add_row({names[k], std::to_string(confusion[k][0]),
                       std::to_string(confusion[k][1]),
                       std::to_string(confusion[k][2]),
                       std::to_string(confusion[k][3])});
    table.print();

    const int tp = confusion[3][3];
    const int fp = confusion[0][3] + confusion[1][3] + confusion[2][3];
    const int fn = per_activity - tp;
    const double precision = tp + fp > 0 ? 100.0 * tp / (tp + fp) : 0.0;
    const double recall = 100.0 * tp / per_activity;
    const double f_measure =
        precision + recall > 0 ? 2.0 * precision * recall / (precision + recall) : 0.0;

    Table metrics({"metric", "paper", "measured"});
    metrics.add_row({"precision", "96.9 %", Table::num(precision, 1) + " %"});
    metrics.add_row({"recall", "93.9 %", Table::num(recall, 1) + " %"});
    metrics.add_row({"F-measure", "94.4 %", Table::num(f_measure, 1) + " %"});
    metrics.print();

    const bool no_upright_false_alarms = confusion[0][3] == 0 && confusion[1][3] == 0;
    std::cout << "\nShape checks:\n"
              << "  no walk/sit-chair classified as fall: "
              << (no_upright_false_alarms ? "PASS" : "FAIL") << "\n"
              << "  precision >= 85%: " << (precision >= 85.0 ? "PASS" : "FAIL") << "\n"
              << "  recall >= 85%: " << (recall >= 85.0 ? "PASS" : "FAIL") << "\n"
              << "  confusion confined to fall <-> sit-floor: "
              << ((fn == confusion[3][2] + confusion[3][1] && fp == confusion[2][3])
                      ? "PASS"
                      : "FAIL")
              << "\n";
    return 0;
}
