// Shared experiment harness for the figure benches: runs a scenario through
// the full WiTrack pipeline and collects per-axis tracking errors against
// the simulator's ground truth (the stand-in for VICON, Section 8a).
#pragma once

#include <memory>
#include <vector>

#include "common/table.hpp"
#include "core/params.hpp"
#include "core/tracker.hpp"
#include "sim/scenario.hpp"

namespace witrack::bench {

struct TrackingErrors {
    std::vector<double> x, y, z;  ///< absolute per-axis errors [m]
    std::vector<double> euclidean;
    std::vector<double> truth_range;  ///< device-to-person distance per sample
    std::size_t frames = 0;
    std::size_t located = 0;
    double mean_latency_s = 0.0;
    double max_latency_s = 0.0;

    void append(const TrackingErrors& other) {
        x.insert(x.end(), other.x.begin(), other.x.end());
        y.insert(y.end(), other.y.begin(), other.y.end());
        z.insert(z.end(), other.z.begin(), other.z.end());
        euclidean.insert(euclidean.end(), other.euclidean.begin(),
                         other.euclidean.end());
        truth_range.insert(truth_range.end(), other.truth_range.begin(),
                           other.truth_range.end());
        frames += other.frames;
        located += other.located;
    }
};

/// Default pipeline configuration matched to a scenario's FMCW parameters.
inline core::PipelineConfig default_pipeline(const sim::ScenarioConfig& scenario) {
    core::PipelineConfig config;
    config.fmcw = scenario.fmcw;
    return config;
}

/// Run one scenario end to end. Errors are recorded after `settle_s` so the
/// Kalman filters have converged.
inline TrackingErrors run_tracking_experiment(sim::Scenario& scenario,
                                              const core::PipelineConfig& pipeline,
                                              double settle_s = 2.5) {
    core::WiTrackTracker tracker(pipeline, scenario.array());
    TrackingErrors errors;

    sim::Scenario::Frame frame;
    while (scenario.next(frame)) {
        const auto result = tracker.process_frame(frame.sweeps, frame.time_s);
        ++errors.frames;
        if (!result.smoothed || frame.time_s < settle_s) continue;
        ++errors.located;
        const geom::Vec3 est = result.smoothed->position;
        const geom::Vec3 truth = frame.pose.center;
        errors.x.push_back(std::abs(est.x - truth.x));
        errors.y.push_back(std::abs(est.y - truth.y));
        errors.z.push_back(std::abs(est.z - truth.z));
        errors.euclidean.push_back(est.distance_to(truth));
        errors.truth_range.push_back(truth.distance_to(scenario.array().tx));
    }
    errors.mean_latency_s = tracker.mean_latency_s();
    errors.max_latency_s = tracker.max_latency_s();
    return errors;
}

/// Draw a subject "of different height and build" (paper Section 8c: 11
/// subjects, 1.55-1.9 m, varied builds). The pipeline's fixed 11 cm depth
/// compensation then mismatches the subject's true torso depth, exactly as
/// a fixed calibration would across a population.
inline sim::HumanParams random_subject(Rng& rng) {
    sim::HumanParams human;
    human.height_m = rng.uniform(1.55, 1.92);
    human.torso_half_depth_m = rng.uniform(0.085, 0.155);
    human.shoulder_half_width_m = rng.uniform(0.19, 0.26);
    human.gait_wander_m = rng.uniform(0.05, 0.09);
    human.vertical_wander_m = rng.uniform(0.11, 0.20);
    human.arm_length_m = rng.uniform(0.58, 0.72);
    return human;
}

/// Convenience: build a walking scenario with the given seed and run it.
inline TrackingErrors run_walk_experiment(sim::ScenarioConfig config,
                                          double duration_s, std::uint64_t seed,
                                          double speed_max = 1.3) {
    config.seed = seed;
    Rng rng(seed * 7919 + 13);
    config.human = random_subject(rng);
    sim::RoomSpec room;
    room.device_outside = config.through_wall;
    const auto env = sim::make_lab_environment(room);
    auto script = std::make_unique<sim::RandomWaypointWalk>(
        env.bounds, duration_s, rng.fork(1), 0.5, speed_max, 0.2,
        0.57 * config.human.height_m);
    sim::Scenario scenario(config, std::move(script));
    return run_tracking_experiment(scenario, default_pipeline(config));
}

}  // namespace witrack::bench
