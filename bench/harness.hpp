// Shared experiment harness for the figure benches: runs a scenario through
// the full WiTrack pipeline and collects per-axis tracking errors against
// the simulator's ground truth (the stand-in for VICON, Section 8a), plus
// the one JSON report writer every bench/*.json artifact goes through.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "core/params.hpp"
#include "core/tracker.hpp"
#include "sim/scenario.hpp"

namespace witrack::bench {

/// The one writer for the bench/*.json artifacts. Every report opens the
/// same way -- benchmark id, scenario description, and the host's CPU
/// count, so a number can never be read without knowing the machine it came
/// from -- and closes the same way. The bench-specific body (nested
/// objects, sweeps) goes straight to stream() between the two; fields
/// written by this class always leave a trailing comma, so the body starts
/// a fresh field and the last body field omits its comma.
class JsonReport {
  public:
    JsonReport(const std::string& path, const std::string& benchmark,
               const std::string& scenario)
        : path_(path), out_(std::fopen(path.c_str(), "w")) {
        if (out_ == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return;
        }
        std::fprintf(out_, "{\n");
        std::fprintf(out_, "  \"benchmark\": \"%s\",\n", benchmark.c_str());
        std::fprintf(out_, "  \"scenario\": \"%s\",\n", scenario.c_str());
        std::fprintf(out_, "  \"host_cpus\": %u,\n", host_cpus());
    }
    JsonReport(const JsonReport&) = delete;
    JsonReport& operator=(const JsonReport&) = delete;
    ~JsonReport() {
        if (out_ != nullptr) std::fclose(out_);
    }

    static unsigned host_cpus() { return std::thread::hardware_concurrency(); }
    static bool single_core() { return host_cpus() < 2; }

    /// False when the output file could not be opened (already reported to
    /// stderr); the caller should bail with a nonzero exit.
    bool ok() const { return out_ != nullptr; }

    /// The open FILE* for the bench-specific body. Only valid when ok().
    std::FILE* stream() { return out_; }

    /// A free-text note field (no escaping -- callers pass literals). Pass
    /// a distinct `field` when a report carries more than one note.
    void note(const std::string& text, const char* field = "note") {
        std::fprintf(out_, "  \"%s\": \"%s\",\n", field, text.c_str());
    }

    /// The standing single-core caveat, emitted only on a single-core host:
    /// `consequence` states what these numbers cannot show there.
    void single_core_caveat(const std::string& consequence) {
        if (single_core()) note("single-core host: " + consequence);
    }

    /// Close the object, flush, and report the artifact path. Returns the
    /// process exit code (0, or 1 when the file never opened).
    int close() {
        if (out_ == nullptr) return 1;
        std::fprintf(out_, "}\n");
        std::fclose(out_);
        out_ = nullptr;
        std::printf("wrote %s\n", path_.c_str());
        return 0;
    }

  private:
    std::string path_;
    std::FILE* out_ = nullptr;
};

struct TrackingErrors {
    std::vector<double> x, y, z;  ///< absolute per-axis errors [m]
    std::vector<double> euclidean;
    std::vector<double> truth_range;  ///< device-to-person distance per sample
    std::size_t frames = 0;
    std::size_t located = 0;
    double mean_latency_s = 0.0;
    double max_latency_s = 0.0;

    void append(const TrackingErrors& other) {
        x.insert(x.end(), other.x.begin(), other.x.end());
        y.insert(y.end(), other.y.begin(), other.y.end());
        z.insert(z.end(), other.z.begin(), other.z.end());
        euclidean.insert(euclidean.end(), other.euclidean.begin(),
                         other.euclidean.end());
        truth_range.insert(truth_range.end(), other.truth_range.begin(),
                           other.truth_range.end());
        frames += other.frames;
        located += other.located;
    }
};

/// Default pipeline configuration matched to a scenario's FMCW parameters.
inline core::PipelineConfig default_pipeline(const sim::ScenarioConfig& scenario) {
    core::PipelineConfig config;
    config.fmcw = scenario.fmcw;
    return config;
}

/// Run one scenario end to end. Errors are recorded after `settle_s` so the
/// Kalman filters have converged.
inline TrackingErrors run_tracking_experiment(sim::Scenario& scenario,
                                              const core::PipelineConfig& pipeline,
                                              double settle_s = 2.5) {
    core::WiTrackTracker tracker(pipeline, scenario.array());
    TrackingErrors errors;

    sim::Scenario::Frame frame;
    while (scenario.next(frame)) {
        const auto result = tracker.process_frame(frame.sweeps, frame.time_s);
        ++errors.frames;
        if (!result.smoothed || frame.time_s < settle_s) continue;
        ++errors.located;
        const geom::Vec3 est = result.smoothed->position;
        const geom::Vec3 truth = frame.pose.center;
        errors.x.push_back(std::abs(est.x - truth.x));
        errors.y.push_back(std::abs(est.y - truth.y));
        errors.z.push_back(std::abs(est.z - truth.z));
        errors.euclidean.push_back(est.distance_to(truth));
        errors.truth_range.push_back(truth.distance_to(scenario.array().tx));
    }
    errors.mean_latency_s = tracker.mean_latency_s();
    errors.max_latency_s = tracker.max_latency_s();
    return errors;
}

/// Draw a subject "of different height and build" (paper Section 8c: 11
/// subjects, 1.55-1.9 m, varied builds). The pipeline's fixed 11 cm depth
/// compensation then mismatches the subject's true torso depth, exactly as
/// a fixed calibration would across a population.
inline sim::HumanParams random_subject(Rng& rng) {
    sim::HumanParams human;
    human.height_m = rng.uniform(1.55, 1.92);
    human.torso_half_depth_m = rng.uniform(0.085, 0.155);
    human.shoulder_half_width_m = rng.uniform(0.19, 0.26);
    human.gait_wander_m = rng.uniform(0.05, 0.09);
    human.vertical_wander_m = rng.uniform(0.11, 0.20);
    human.arm_length_m = rng.uniform(0.58, 0.72);
    return human;
}

/// Convenience: build a walking scenario with the given seed and run it.
inline TrackingErrors run_walk_experiment(sim::ScenarioConfig config,
                                          double duration_s, std::uint64_t seed,
                                          double speed_max = 1.3) {
    config.seed = seed;
    Rng rng(seed * 7919 + 13);
    config.human = random_subject(rng);
    sim::RoomSpec room;
    room.device_outside = config.through_wall;
    const auto env = sim::make_lab_environment(room);
    auto script = std::make_unique<sim::RandomWaypointWalk>(
        env.bounds, duration_s, rng.fork(1), 0.5, speed_max, 0.2,
        0.57 * config.human.height_m);
    sim::Scenario scenario(config, std::move(script));
    return run_tracking_experiment(scenario, default_pipeline(config));
}

}  // namespace witrack::bench
