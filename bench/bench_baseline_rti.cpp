// Reproduces the paper's Section 2 comparison against radio tomographic
// imaging: "[WiTrack's] 2D accuracy is more than 5x higher than the state
// of the art radio tomographic networks [23]" -- despite RTI using tens of
// sensors versus WiTrack's four antennas.
//
// The same trajectories are run through both systems: WiTrack end-to-end
// (FMCW synthesis + full pipeline) and the RTI network (perimeter RSSI
// sensors + regularized image reconstruction).
//
// Usage: bench_baseline_rti [--experiments N] [--seconds S] [--seed K]
#include <iostream>
#include <memory>

#include "baseline/rti.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "dsp/stats.hpp"
#include "harness.hpp"

using namespace witrack;

int main(int argc, char** argv) {
    CliArgs args(argc, argv);
    const int experiments = args.get_int("experiments", args.quick() ? 2 : 6);
    const double seconds = args.get_double("seconds", args.quick() ? 10.0 : 20.0);
    const std::uint64_t seed = args.get_seed(15);

    const auto env = sim::make_through_wall_lab();
    std::vector<double> witrack_2d, rti_2d;
    baseline::RtiNetwork rti(baseline::RtiConfig{}, env.bounds, Rng(seed + 999));

    for (int e = 0; e < experiments; ++e) {
        sim::ScenarioConfig config;
        config.through_wall = true;
        config.fast_capture = true;
        config.seed = seed + e;
        Rng rng(seed * 53 + e);
        config.human = bench::random_subject(rng);
        auto script = std::make_unique<sim::RandomWaypointWalk>(
            env.bounds, seconds, rng.fork(1), 0.5, 1.3, 0.2,
            0.57 * config.human.height_m);
        const auto* script_ptr = script.get();
        sim::Scenario scenario(config, std::move(script));

        // WiTrack path.
        core::WiTrackTracker tracker(bench::default_pipeline(config), scenario.array());
        sim::Scenario::Frame frame;
        while (scenario.next(frame)) {
            const auto result = tracker.process_frame(frame.sweeps, frame.time_s);
            if (!result.smoothed || frame.time_s < 2.5) continue;
            const auto est = result.smoothed->position;
            const auto truth = frame.pose.center;
            witrack_2d.push_back(std::hypot(est.x - truth.x, est.y - truth.y));
        }

        // RTI path: same ground-truth trajectory sampled at the RTI network's
        // (slower) 10 Hz update rate.
        for (double t = 2.5; t < seconds; t += 0.1) {
            const auto pose = script_ptr->pose_at(t);
            const auto est = rti.locate(pose.center);
            rti_2d.push_back(std::hypot(est.x - pose.center.x, est.y - pose.center.y));
        }
    }

    print_banner("RTI baseline comparison (paper Section 2: WiTrack >5x better in 2D)");
    const double wt_med = dsp::median(witrack_2d);
    const double rti_med = dsp::median(rti_2d);
    Table table({"system", "sensors", "2D median (cm)", "2D 90th pct (cm)"});
    table.add_row({"WiTrack (this work)", "1 Tx + 3 Rx",
                   Table::num(wt_med * 100, 1),
                   Table::num(dsp::percentile(witrack_2d, 90) * 100, 1)});
    table.add_row({"RTI [Wilson & Patwari]",
                   std::to_string(rti.num_nodes()) + " nodes / " +
                       std::to_string(rti.num_links()) + " links",
                   Table::num(rti_med * 100, 1),
                   Table::num(dsp::percentile(rti_2d, 90) * 100, 1)});
    table.print();

    const double advantage = rti_med / wt_med;
    std::cout << "\nWiTrack accuracy advantage: " << Table::num(advantage, 1)
              << "x (paper: >5x)\n"
              << "Shape check (advantage >= 3x): "
              << (advantage >= 3.0 ? "PASS" : "FAIL") << "\n";
    return 0;
}
