// Reproduces paper Fig. 8: CDFs of the per-axis 3D tracking error in
// (a) line-of-sight and (b) through-wall deployments.
//
// Paper reference values (Section 9.1):
//   LOS medians:          x 9.9 cm,  y 8.6 cm,   z 17.7 cm
//   Through-wall medians: x 13.1 cm, y 10.25 cm, z 21.0 cm
//   "even the 90th percentile ... stays within one foot along x/y and two
//    feet along z" (through-wall).
//
// Usage: bench_fig8_cdf [--experiments N] [--seconds S] [--seed K]
//                       [--quick] [--full] [--csv out.csv]
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dsp/stats.hpp"
#include "harness.hpp"

using namespace witrack;

namespace {

struct ModeResult {
    bench::TrackingErrors errors;
    std::string name;
};

void print_mode(const ModeResult& mode, double paper_x_cm, double paper_y_cm,
                double paper_z_cm) {
    const dsp::EmpiricalCdf cx(mode.errors.x), cy(mode.errors.y), cz(mode.errors.z);
    print_banner("Fig. 8 " + mode.name + " -- location error CDF (" +
                 std::to_string(mode.errors.x.size()) + " samples)");

    Table summary({"axis", "paper median (cm)", "measured median (cm)",
                   "measured 90th (cm)"});
    summary.add_row({"x", Table::num(paper_x_cm, 1), Table::num(cx.median() * 100, 1),
                     Table::num(cx.percentile(90) * 100, 1)});
    summary.add_row({"y", Table::num(paper_y_cm, 1), Table::num(cy.median() * 100, 1),
                     Table::num(cy.percentile(90) * 100, 1)});
    summary.add_row({"z", Table::num(paper_z_cm, 1), Table::num(cz.median() * 100, 1),
                     Table::num(cz.percentile(90) * 100, 1)});
    summary.print();

    Table curve({"error (cm)", "CDF x", "CDF y", "CDF z"});
    for (int cm = 0; cm <= 100; cm += 10) {
        const double m = cm / 100.0;
        curve.add_row({std::to_string(cm), Table::num(cx.fraction_below(m), 3),
                       Table::num(cy.fraction_below(m), 3),
                       Table::num(cz.fraction_below(m), 3)});
    }
    curve.print();
}

}  // namespace

int main(int argc, char** argv) {
    CliArgs args(argc, argv);
    // Paper scale: 100 experiments x 60 s per mode. Default here is reduced
    // for runtime; --full restores the paper's scale.
    int experiments = args.get_int("experiments", args.quick() ? 4 : 12);
    double seconds = args.get_double("seconds", args.quick() ? 10.0 : 25.0);
    if (args.has("full")) {
        experiments = 100;
        seconds = 60.0;
    }
    const std::uint64_t seed = args.get_seed(42);

    std::cout << "Fig. 8 reproduction: " << experiments << " experiments x "
              << seconds << " s per mode (paper: 100 x 60 s)\n";

    ModeResult los{{}, "(a) line-of-sight"};
    ModeResult wall{{}, "(b) through-wall"};

    for (int e = 0; e < experiments; ++e) {
        // Same seed for both modes: identical subject and trajectory, so the
        // LOS-vs-through-wall comparison isolates the wall.
        sim::ScenarioConfig config;
        config.fast_capture = true;  // statistically equivalent averaged frames
        config.through_wall = false;
        los.errors.append(bench::run_walk_experiment(config, seconds, seed + e));
        config.through_wall = true;
        wall.errors.append(bench::run_walk_experiment(config, seconds, seed + e));
    }

    print_mode(los, 9.9, 8.6, 17.7);
    print_mode(wall, 13.1, 10.25, 21.0);

    const dsp::EmpiricalCdf wx(wall.errors.x), wy(wall.errors.y), wz(wall.errors.z);
    std::cout << "\nShape checks (through-wall):\n"
              << "  y median < x median: "
              << (wy.median() < wx.median() ? "PASS" : "FAIL") << "\n"
              << "  x median < z median: "
              << (wx.median() < wz.median() ? "PASS" : "FAIL") << "\n"
              << "  90th pct x/y within one foot (30.5 cm): "
              << ((wx.percentile(90) < 0.305 && wy.percentile(90) < 0.305) ? "PASS"
                                                                           : "FAIL")
              << "\n"
              << "  90th pct z within two feet (61 cm): "
              << (wz.percentile(90) < 0.61 ? "PASS" : "FAIL") << "\n";

    const dsp::EmpiricalCdf lx(los.errors.x), ly(los.errors.y), lz(los.errors.z);
    std::cout << "  LOS median <= through-wall median (each axis): "
              << ((lx.median() <= wx.median() + 0.02 &&
                   ly.median() <= wy.median() + 0.02 &&
                   lz.median() <= wz.median() + 0.02)
                      ? "PASS"
                      : "FAIL")
              << "\n";

    if (args.has("csv")) {
        Table csv({"mode", "axis", "median_cm", "p90_cm"});
        csv.add_row({"los", "x", Table::num(lx.median() * 100, 2),
                     Table::num(lx.percentile(90) * 100, 2)});
        csv.add_row({"los", "y", Table::num(ly.median() * 100, 2),
                     Table::num(ly.percentile(90) * 100, 2)});
        csv.add_row({"los", "z", Table::num(lz.median() * 100, 2),
                     Table::num(lz.percentile(90) * 100, 2)});
        csv.add_row({"wall", "x", Table::num(wx.median() * 100, 2),
                     Table::num(wx.percentile(90) * 100, 2)});
        csv.add_row({"wall", "y", Table::num(wy.median() * 100, 2),
                     Table::num(wy.percentile(90) * 100, 2)});
        csv.add_row({"wall", "z", Table::num(wz.median() * 100, 2),
                     Table::num(wz.percentile(90) * 100, 2)});
        csv.write_csv(args.get("csv"));
    }
    return 0;
}
