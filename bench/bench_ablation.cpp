// Ablation bench for the design choices DESIGN.md calls out:
//   1. coherent sweep averaging (1 vs 5 vs 10 sweeps per frame),
//   2. background subtraction on/off,
//   3. bottom contour vs strongest peak (dynamic-multipath robustness),
//   4. Kalman/outlier denoising on/off,
//   5. closed-form vs Gauss-Newton localization (accuracy must match).
//
// Usage: bench_ablation [--seconds S] [--seed K]
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/contour.hpp"
#include "core/localize.hpp"
#include "core/tof.hpp"
#include "dsp/stats.hpp"
#include "geom/solver.hpp"
#include "harness.hpp"

using namespace witrack;

namespace {

struct AblationResult {
    double median_3d_cm = 0.0;
    double p90_3d_cm = 0.0;
    double located_fraction = 0.0;
};

/// Run one through-wall walk with a modified pipeline / capture setup.
AblationResult run_variant(std::uint64_t seed, double seconds,
                           core::PipelineConfig pipeline,
                           std::size_t sweeps_per_frame, bool use_strongest_peak) {
    sim::ScenarioConfig config;
    config.through_wall = true;
    config.seed = seed;
    config.fmcw.sweeps_per_frame = sweeps_per_frame;
    config.fast_capture = false;  // real multi-sweep synthesis for averaging ablation
    pipeline.fmcw = config.fmcw;

    Rng rng(seed * 7919 + 13);
    config.human = bench::random_subject(rng);
    sim::RoomSpec room;
    room.device_outside = true;
    const auto env = sim::make_lab_environment(room);
    auto script = std::make_unique<sim::RandomWaypointWalk>(
        env.bounds, seconds, rng.fork(1), 0.5, 1.3, 0.2,
        0.57 * config.human.height_m);
    sim::Scenario scenario(config, std::move(script));

    // A custom loop (instead of WiTrackTracker) so the contour policy can be
    // swapped.
    core::TofEstimator tof(pipeline, 3);
    core::ContourTracker contour(pipeline);
    core::Localizer localizer(scenario.array(), pipeline);
    core::SweepProcessor processor(pipeline.fmcw, pipeline.window, pipeline.fft_size);
    std::vector<core::BackgroundSubtractor> backgrounds(3);

    std::vector<double> errors;
    std::size_t frames = 0, located = 0;
    sim::Scenario::Frame frame;
    core::RangeProfile profile;
    while (scenario.next(frame)) {
        ++frames;
        core::TofFrame tof_frame;
        if (!use_strongest_peak) {
            tof_frame = tof.process_frame(frame.sweeps, frame.time_s);
        } else {
            // Strongest-peak variant: same background subtraction, but track
            // the maximum-power reflector (the policy the paper rejects).
            tof_frame.time_s = frame.time_s;
            tof_frame.antennas.resize(3);
            for (std::size_t rx = 0; rx < 3; ++rx) {
                processor.process_into(frame.sweeps.antenna(rx),
                                       frame.sweeps.num_sweeps(), profile);
                const auto magnitude = backgrounds[rx].subtract(profile);
                if (!magnitude.empty()) {
                    tof_frame.antennas[rx].contour =
                        contour.extract_strongest(magnitude, profile.bin_round_trip_m);
                    if (tof_frame.antennas[rx].contour.detected)
                        tof_frame.antennas[rx].denoised_m =
                            tof_frame.antennas[rx].contour.round_trip_m;
                }
            }
        }
        const auto point = localizer.locate(tof_frame);
        if (!point || frame.time_s < 2.5) continue;
        ++located;
        errors.push_back(point->position.distance_to(frame.pose.center));
    }

    AblationResult result;
    if (!errors.empty()) {
        result.median_3d_cm = dsp::median(errors) * 100.0;
        result.p90_3d_cm = dsp::percentile(errors, 90) * 100.0;
    }
    result.located_fraction =
        frames > 0 ? static_cast<double>(located) / static_cast<double>(frames) : 0.0;
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    CliArgs args(argc, argv);
    const double seconds = args.get_double("seconds", args.quick() ? 8.0 : 15.0);
    const std::uint64_t seed = args.get_seed(16);

    print_banner("Ablation -- WiTrack design choices (through-wall walk, 3D error)");
    Table table({"variant", "median (cm)", "90th pct (cm)", "located"});

    const core::PipelineConfig base;

    auto add = [&](const std::string& name, const AblationResult& r) {
        table.add_row({name, Table::num(r.median_3d_cm, 1), Table::num(r.p90_3d_cm, 1),
                       Table::num(100.0 * r.located_fraction, 0) + " %"});
    };

    // 1. Sweep averaging.
    const auto avg1 = run_variant(seed, seconds, base, 1, false);
    const auto avg5 = run_variant(seed, seconds, base, 5, false);
    const auto avg10 = run_variant(seed, seconds, base, 10, false);
    add("1 sweep per frame (no averaging)", avg1);
    add("5 sweeps per frame (paper)", avg5);
    add("10 sweeps per frame", avg10);

    // 2. Denoising off (no outlier rejection / Kalman: accept raw contour).
    {
        core::PipelineConfig p = base;
        p.kalman_measurement_noise = 1e-4;  // filter degenerates to pass-through
        p.max_contour_jump_m = 1e9;         // no outlier rejection
        p.gate_window_m = 0.0;              // no gated re-detection
        add("denoising disabled", run_variant(seed, seconds, p, 5, false));
    }

    // 3. Strongest peak instead of bottom contour.
    add("strongest peak (not closest)", run_variant(seed, seconds, base, 5, true));
    table.print();

    // 4. Closed form vs Gauss-Newton (same TOFs, solver-level comparison).
    {
        const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
        const geom::EllipsoidSolver solver(array);
        Rng rng(seed);
        double max_disagreement = 0.0;
        for (int i = 0; i < 2000; ++i) {
            const geom::Vec3 p{rng.uniform(-3, 3), rng.uniform(3, 9),
                               rng.uniform(0.2, 2.0)};
            std::vector<double> rts;
            for (const auto& rx : array.rx)
                rts.push_back(p.distance_to(array.tx) + p.distance_to(rx) +
                              rng.gaussian(0.02));
            const auto cf = solver.solve_closed_form(rts);
            if (!cf.valid) continue;
            const auto gn = solver.solve_gauss_newton(rts, cf.position);
            if (!gn.valid) continue;
            max_disagreement =
                std::max(max_disagreement, cf.position.distance_to(gn.position));
        }
        std::cout << "\nClosed form vs Gauss-Newton max disagreement over 2000 noisy "
                     "solves: "
                  << Table::num(max_disagreement * 100, 2) << " cm\n";
    }

    std::cout << "\nShape checks:\n"
              << "  averaging helps (5 sweeps <= 1 sweep median): "
              << (avg5.median_3d_cm <= avg1.median_3d_cm + 1.0 ? "PASS" : "FAIL") << "\n"
              << "  paper's 5-sweep choice within 20% of 10-sweep: "
              << (avg5.median_3d_cm <= 1.2 * avg10.median_3d_cm + 1.0 ? "PASS" : "FAIL")
              << "\n"
              << "Note: background subtraction cannot be ablated to 'off' -- without\n"
              << "it the flash effect leaves no detectable person at all (Section 4.2);\n"
              << "bench_fig3_tof quantifies its static-clutter suppression instead.\n";
    return 0;
}
