// Reproduces paper Fig. 5: the spectrogram signature of an arm gesture vs a
// whole-body motion. The arm's reflection surface is much smaller, so the
// power-weighted spread ("extent") of the background-subtracted profile is
// significantly smaller -- WiTrack's discriminator for gesture detection
// (Section 6.1).
//
// Usage: bench_fig5_gesture [--trials N] [--seed K]
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/pointing.hpp"
#include "core/tof.hpp"
#include "dsp/stats.hpp"
#include "harness.hpp"

using namespace witrack;

namespace {

/// Mean reflection extent across detecting frames for one scenario.
double mean_extent(sim::Scenario& scenario, const core::PipelineConfig& pipeline,
                   std::vector<core::TofFrame>* frames_out = nullptr) {
    core::TofEstimator tof(pipeline, 3);
    dsp::RunningStats extent;
    sim::Scenario::Frame frame;
    while (scenario.next(frame)) {
        const auto tof_frame = tof.process_frame(frame.sweeps, frame.time_s);
        if (tof_frame.motion_detected(2)) extent.add(tof_frame.mean_extent_m());
        if (frames_out) frames_out->push_back(tof_frame);
    }
    return extent.count() > 0 ? extent.mean() : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    CliArgs args(argc, argv);
    const int trials = args.get_int("trials", args.quick() ? 3 : 8);
    const std::uint64_t seed = args.get_seed(11);

    const auto env = sim::make_through_wall_lab();
    std::vector<double> body_extents, arm_extents;
    int arm_classified = 0, body_classified = 0;

    for (int t = 0; t < trials; ++t) {
        sim::ScenarioConfig config;
        config.through_wall = true;
        config.fast_capture = true;
        config.seed = seed + t;
        const auto pipeline = bench::default_pipeline(config);
        Rng rng(seed * 31 + t);

        // Whole-body walk.
        {
            sim::Scenario scenario(config, std::make_unique<sim::RandomWaypointWalk>(
                                               env.bounds, 10.0, rng.fork(1)));
            std::vector<core::TofFrame> frames;
            body_extents.push_back(mean_extent(scenario, pipeline, &frames));
            core::PointingEstimator estimator(pipeline, scenario.array());
            if (!estimator.looks_like_body_part(frames)) ++body_classified;
        }
        // Arm pointing gesture (body static).
        {
            const geom::Vec3 stand{rng.uniform(-1.5, 1.5), rng.uniform(3.5, 6.0), 0.0};
            const geom::Vec3 dir{rng.uniform(-0.7, 0.7), rng.uniform(0.4, 1.0),
                                 rng.uniform(-0.2, 0.4)};
            sim::Scenario scenario(config, std::make_unique<sim::PointingScript>(
                                               stand, dir, rng.fork(2)));
            std::vector<core::TofFrame> frames;
            arm_extents.push_back(mean_extent(scenario, pipeline, &frames));
            core::PointingEstimator estimator(pipeline, scenario.array());
            if (estimator.looks_like_body_part(frames)) ++arm_classified;
        }
    }

    print_banner("Fig. 5 reproduction -- arm gesture vs whole-body reflection extent");
    Table table({"motion", "mean extent (m)", "classified correctly"});
    table.add_row({"whole body (walk)", Table::num(dsp::mean(body_extents), 3),
                   std::to_string(body_classified) + "/" + std::to_string(trials)});
    table.add_row({"arm (pointing gesture)", Table::num(dsp::mean(arm_extents), 3),
                   std::to_string(arm_classified) + "/" + std::to_string(trials)});
    table.print();

    const double ratio = dsp::mean(body_extents) / std::max(1e-9, dsp::mean(arm_extents));
    std::cout << "\nBody/arm extent ratio: " << Table::num(ratio, 2)
              << "x (paper: body variance 'significantly larger')\n"
              << "Shape check (ratio > 1.5 and both classifiers >= 2/3 correct): "
              << ((ratio > 1.5 && 3 * arm_classified >= 2 * trials &&
                   3 * body_classified >= 2 * trials)
                      ? "PASS"
                      : "FAIL")
              << "\n";
    return 0;
}
