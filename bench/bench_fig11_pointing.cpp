// Reproduces paper Fig. 11: CDF of the pointing-direction error.
// Paper: median 11.2 degrees, 90th percentile 37.9 degrees.
//
// Each trial: a subject stands at a random spot, points in a random
// direction (lift-hold-drop); the estimator segments the two arm bursts,
// robust-regresses the per-antenna TOFs, localizes the hand endpoints and
// averages the lift and mirrored drop directions.
//
// Usage: bench_fig11_pointing [--trials N] [--seed K] [--csv cdf.csv]
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/pointing.hpp"
#include "core/tof.hpp"
#include "dsp/stats.hpp"
#include "harness.hpp"

using namespace witrack;

int main(int argc, char** argv) {
    CliArgs args(argc, argv);
    const int trials = args.get_int("trials", args.quick() ? 10 : 40);
    const std::uint64_t seed = args.get_seed(12);

    std::vector<double> errors_deg;
    int detected = 0, both_bursts = 0;

    for (int t = 0; t < trials; ++t) {
        sim::ScenarioConfig config;
        config.through_wall = true;
        config.fast_capture = true;
        config.seed = seed + t;
        Rng rng(seed * 17 + t);
        config.human = bench::random_subject(rng);

        const geom::Vec3 stand{rng.uniform(-2.0, 2.0), rng.uniform(3.2, 6.5), 0.0};
        const double azimuth = rng.uniform(-1.2, 1.2);     // radians
        const double elevation = rng.uniform(-0.3, 0.5);
        const geom::Vec3 dir{std::sin(azimuth) * std::cos(elevation),
                             std::cos(azimuth) * std::cos(elevation),
                             std::sin(elevation)};
        auto script = std::make_unique<sim::PointingScript>(
            stand, dir, rng.fork(1), 0.57 * config.human.height_m);
        const auto* script_ptr = script.get();
        sim::Scenario scenario(config, std::move(script));

        const auto pipeline = bench::default_pipeline(config);
        core::TofEstimator tof(pipeline, 3);
        std::vector<core::TofFrame> frames;
        sim::Scenario::Frame frame;
        while (scenario.next(frame))
            frames.push_back(tof.process_frame(frame.sweeps, frame.time_s));

        core::PointingEstimator estimator(pipeline, scenario.array());
        const auto result = estimator.analyze(frames);
        if (!result) continue;
        ++detected;
        if (result->used_both_bursts) ++both_bursts;
        errors_deg.push_back(rad_to_deg(
            geom::angle_between(result->direction, script_ptr->true_direction())));
    }

    print_banner("Fig. 11 reproduction -- pointing orientation error CDF");
    if (errors_deg.empty()) {
        std::cout << "No gestures detected -- FAIL\n";
        return 1;
    }
    dsp::EmpiricalCdf cdf(errors_deg);

    Table summary({"metric", "paper", "measured"});
    summary.add_row({"median error", "11.2 deg", Table::num(cdf.median(), 1) + " deg"});
    summary.add_row({"90th percentile", "37.9 deg",
                     Table::num(cdf.percentile(90), 1) + " deg"});
    summary.add_row({"gestures detected", "-",
                     std::to_string(detected) + "/" + std::to_string(trials)});
    summary.add_row({"lift+drop mirroring used", "-",
                     std::to_string(both_bursts) + "/" + std::to_string(detected)});
    summary.print();

    Table curve({"error (deg)", "CDF"});
    for (int deg = 0; deg <= 100; deg += 10)
        curve.add_row({std::to_string(deg),
                       Table::num(cdf.fraction_below(static_cast<double>(deg)), 3)});
    curve.print();
    if (args.has("csv")) curve.write_csv(args.get("csv"));

    std::cout << "\nShape checks:\n"
              << "  median within 3x of paper (< 33.6 deg): "
              << (cdf.median() < 33.6 ? "PASS" : "FAIL") << "\n"
              << "  90th percentile < 80 deg: "
              << (cdf.percentile(90) < 80.0 ? "PASS" : "FAIL") << "\n"
              << "  >1/2 of gestures detected: "
              << (2 * detected > trials ? "PASS" : "FAIL") << "\n"
              << "(The absolute angle gap vs the paper is recorded in "
                 "EXPERIMENTS.md: the synthetic arm echo is weaker than the "
                 "authors' hardware gesture SNR.)\n";
    return 0;
}
