// Microbenchmarks for the substrate hot paths: FFT engine (radix-2 vs
// Bluestein), baseband synthesis, channel path enumeration, contour
// extraction and the Kalman filters.
#include <benchmark/benchmark.h>

#include <random>

#include "core/contour.hpp"
#include "dsp/fft.hpp"
#include "dsp/kalman.hpp"
#include "hw/mixer.hpp"
#include "rf/channel.hpp"

using namespace witrack;

namespace {

void BM_FftPow2Kernel(benchmark::State& state) {
    // Complex API over the SoA radix-4 kernel; caller-owned scratch, so
    // the loop is allocation-free once warm.
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::vector<dsp::cplx> data(n, dsp::cplx(1.0, -0.5));
    std::vector<dsp::cplx> work;
    dsp::FftScratch scratch;
    const dsp::Fft& plan = dsp::fft_plan(n);
    for (auto _ : state) {
        work = data;  // reuses capacity after the first pass
        plan.forward(work, scratch);
        benchmark::DoNotOptimize(work.data());
    }
    state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_FftPow2Kernel)->Arg(1024)->Arg(4096)->Arg(16384)->Complexity();

void BM_FftBluestein2500(benchmark::State& state) {
    const std::vector<dsp::cplx> data(2500, dsp::cplx(0.3, 0.1));
    std::vector<dsp::cplx> work;
    dsp::FftScratch scratch;
    const dsp::Fft& plan = dsp::fft_plan(2500);
    for (auto _ : state) {
        work = data;
        plan.forward(work, scratch);
        benchmark::DoNotOptimize(work.data());
    }
}
BENCHMARK(BM_FftBluestein2500);

void BM_RealFftHalfSpectrum(benchmark::State& state) {
    // The production r2c shape: 2500 real samples zero-padded into a
    // 4096-point transform. Arg selects dense (0) vs pruned (1) plans.
    const bool pruned = state.range(0) != 0;
    const std::size_t n = 4096, nz = 2500;
    std::vector<double> input(pruned ? nz : n, 0.0);
    for (std::size_t i = 0; i < nz; ++i)
        input[i] = std::sin(0.05 * static_cast<double>(i));
    const dsp::RealFft plan(n, pruned ? nz : 0);
    dsp::FftScratch scratch;
    std::vector<dsp::cplx> out;
    for (auto _ : state) {
        plan.forward(input, out, scratch);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["pruned"] = pruned ? 1.0 : 0.0;
}
BENCHMARK(BM_RealFftHalfSpectrum)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_MixerSynthesis(benchmark::State& state) {
    const auto paths_count = static_cast<std::size_t>(state.range(0));
    FmcwParams fmcw;
    hw::DechirpMixer mixer(fmcw);
    std::vector<rf::PropagationPath> paths(paths_count);
    for (std::size_t i = 0; i < paths.size(); ++i) {
        paths[i].round_trip_m = 5.0 + static_cast<double>(i);
        paths[i].amplitude = 1e-6;
    }
    std::vector<double> out(fmcw.samples_per_sweep());
    for (auto _ : state) {
        std::fill(out.begin(), out.end(), 0.0);
        mixer.synthesize(paths, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["paths"] = static_cast<double>(paths_count);
}
BENCHMARK(BM_MixerSynthesis)->Arg(1)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_ChannelBodyPaths(benchmark::State& state) {
    rf::ChannelConfig config;
    rf::Antenna tx{{0, 0, 1.3}, {0, 1, 0}, {}};
    std::vector<rf::Antenna> rx = {rf::Antenna{{-1, 0, 1.3}, {0, 1, 0}, {}},
                                   rf::Antenna{{1, 0, 1.3}, {0, 1, 0}, {}},
                                   rf::Antenna{{0, 0, 0.3}, {0, 1, 0}, {}}};
    rf::Scene scene;
    for (int i = 0; i < 5; ++i)
        scene.walls.emplace_back(geom::Vec3{0, 2.0 + i, 1.5}, geom::Vec3{0, 1, 0},
                                 geom::Vec3{1, 0, 0}, 4.0, 1.5,
                                 rf::materials::sheetrock());
    rf::Channel channel(config, tx, rx, scene);
    std::vector<rf::BodyScatterer> body(7);
    for (std::size_t i = 0; i < body.size(); ++i)
        body[i] = {{0.5, 5.0 + 0.1 * static_cast<double>(i), 1.0}, 0.5, 0.0};
    for (auto _ : state) {
        for (std::size_t rx_i = 0; rx_i < 3; ++rx_i)
            benchmark::DoNotOptimize(channel.body_paths(rx_i, body));
    }
}
BENCHMARK(BM_ChannelBodyPaths)->Unit(benchmark::kMicrosecond);

void BM_ContourExtraction(benchmark::State& state) {
    core::PipelineConfig config;
    core::ContourTracker tracker(config);
    std::mt19937 rng(1);
    std::normal_distribution<double> dist(0.0, 1.0);
    std::vector<double> magnitude(2048);
    for (auto& v : magnitude) v = std::abs(dist(rng));
    magnitude[300] = 40.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(tracker.extract(magnitude, 0.108));
}
BENCHMARK(BM_ContourExtraction)->Unit(benchmark::kMicrosecond);

void BM_ScalarKalman(benchmark::State& state) {
    dsp::ScalarKalman kf(1.5, 0.15);
    double v = 10.0;
    for (auto _ : state) {
        v += 0.01;
        benchmark::DoNotOptimize(kf.update(v, 0.0125));
    }
}
BENCHMARK(BM_ScalarKalman);

void BM_PositionKalman(benchmark::State& state) {
    dsp::PositionKalman kf(2.0, 0.14);
    double v = 0.0;
    for (auto _ : state) {
        v += 0.01;
        benchmark::DoNotOptimize(kf.update({v, 5.0, 1.0}, 0.0125));
    }
}
BENCHMARK(BM_PositionKalman);

}  // namespace

BENCHMARK_MAIN();
