// Reproduces the paper's real-time claim (Section 7): "Software processing
// has a total delay less than 75 ms between when the signal is received and
// a corresponding 3D location is output."
//
// google-benchmark over the per-frame pipeline (range FFT x3 antennas,
// background subtraction, contour, denoise, 3D solve, smoothing) plus the
// individual stages.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/tracker.hpp"
#include "engine/engine.hpp"
#include "engine/sim_source.hpp"
#include "geom/solver.hpp"
#include "harness.hpp"

using namespace witrack;

namespace {

/// Pre-capture a few frames of realistic sweeps once.
const std::vector<sim::Scenario::Frame>& captured_frames() {
    static const auto frames = [] {
        sim::ScenarioConfig config;
        config.through_wall = true;
        config.seed = 33;
        sim::Scenario scenario(config, std::make_unique<sim::LineWalkScript>(
                                           geom::Vec3{-1, 5, 0}, geom::Vec3{1, 5, 0},
                                           2.0, 1.0));
        std::vector<sim::Scenario::Frame> out;
        sim::Scenario::Frame frame;
        while (scenario.next(frame)) out.push_back(frame);
        return out;
    }();
    return frames;
}

void BM_FullPipelineFrame(benchmark::State& state) {
    const auto& frames = captured_frames();
    core::PipelineConfig pipeline;
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    core::WiTrackTracker tracker(pipeline, array);
    std::size_t i = 0;
    double t = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tracker.process_frame(frames[i % frames.size()].sweeps, t));
        ++i;
        t += 0.0125;
    }
    state.counters["budget_ms"] = 75.0;  // the paper's latency budget
}
BENCHMARK(BM_FullPipelineFrame)->Unit(benchmark::kMillisecond);

void BM_EngineStep(benchmark::State& state) {
    // Full engine step (source -> tracker -> event publish) against a
    // subscribed bus: measures the engine's overhead relative to the bare
    // tracker hot path above. Source capture dominates; the engine layer
    // itself adds one virtual call and one event dispatch per frame.
    engine::EngineConfig config;
    config.with_seed(33).with_fast_capture(true);
    std::size_t updates = 0;
    for (auto _ : state) {
        state.PauseTiming();
        engine::SimSource source(config, std::make_unique<sim::LineWalkScript>(
                                             geom::Vec3{-1, 5, 0},
                                             geom::Vec3{1, 5, 0}, 2.0, 1.0));
        engine::Engine eng(config, source);
        eng.bus().subscribe<engine::TrackUpdateEvent>(
            [&](const engine::TrackUpdateEvent&) { ++updates; });
        state.ResumeTiming();
        while (eng.step()) {
        }
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(eng.frames_processed()));
    }
    benchmark::DoNotOptimize(updates);
}
BENCHMARK(BM_EngineStep)->Unit(benchmark::kMillisecond);

void BM_RangeFftPerAntenna(benchmark::State& state) {
    const auto& frames = captured_frames();
    core::PipelineConfig pipeline;
    core::SweepProcessor processor(pipeline.fmcw, pipeline.window, pipeline.fft_size);
    const auto& frame = frames[0].sweeps;
    core::RangeProfile profile;
    for (auto _ : state) {
        processor.process_into(frame.antenna(0), frame.num_sweeps(), profile);
        benchmark::DoNotOptimize(profile.spectrum.data());
    }
}
BENCHMARK(BM_RangeFftPerAntenna)->Unit(benchmark::kMicrosecond);

void BM_PaperLiteralFft2500(benchmark::State& state) {
    // Paper-literal mode: Bluestein FFT sized exactly to the sweep.
    const auto& frames = captured_frames();
    core::PipelineConfig pipeline;
    core::SweepProcessor processor(pipeline.fmcw, pipeline.window, 0);
    const auto& frame = frames[0].sweeps;
    core::RangeProfile profile;
    for (auto _ : state) {
        processor.process_into(frame.antenna(0), frame.num_sweeps(), profile);
        benchmark::DoNotOptimize(profile.spectrum.data());
    }
}
BENCHMARK(BM_PaperLiteralFft2500)->Unit(benchmark::kMicrosecond);

void BM_ClosedFormSolve(benchmark::State& state) {
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    const geom::EllipsoidSolver solver(array);
    const geom::Vec3 p{1.2, 5.0, 1.0};
    std::vector<double> rts;
    for (const auto& rx : array.rx)
        rts.push_back(p.distance_to(array.tx) + p.distance_to(rx));
    for (auto _ : state) benchmark::DoNotOptimize(solver.solve_closed_form(rts));
}
BENCHMARK(BM_ClosedFormSolve);

void BM_GaussNewtonSolve(benchmark::State& state) {
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    const geom::EllipsoidSolver solver(array);
    const geom::Vec3 p{1.2, 5.0, 1.0};
    std::vector<double> rts;
    for (const auto& rx : array.rx)
        rts.push_back(p.distance_to(array.tx) + p.distance_to(rx) + 0.01);
    const geom::Vec3 seed{0, 4, 1};
    for (auto _ : state)
        benchmark::DoNotOptimize(solver.solve_gauss_newton(rts, seed));
}
BENCHMARK(BM_GaussNewtonSolve);

}  // namespace

BENCHMARK_MAIN();
