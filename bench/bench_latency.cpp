// Reproduces the paper's real-time claim (Section 7): "Software processing
// has a total delay less than 75 ms between when the signal is received and
// a corresponding 3D location is output."
//
// google-benchmark over the per-frame pipeline (range FFT x3 antennas,
// background subtraction, contour, denoise, 3D solve, smoothing) plus the
// individual stages.
// Scheduler comparison mode: `bench_latency --scheduler-json <path>` skips
// google-benchmark and instead times the demand-driven scheduler's
// configurations (full serial, lazy TOF-only, lazy localize-only, 2- and
// 4-worker parallel) over the same captured frames, writing the JSON
// consumed as bench/scheduler_latency.json.
// Kernel comparison mode: `bench_latency --kernel-json <path>` times the
// serial DSP hot path (per-antenna range FFT, paper-literal Bluestein FFT,
// full pipeline frame) against the pre-SoA-kernel numbers recorded in
// bench/baseline_frame_latency.json, writing bench/fft_kernel_latency.json.
// Batch comparison mode: `bench_latency --batch-json <path>` times the
// lane-interleaved batched r2c pass against B sequential transforms across
// batch widths, writing bench/fft_batch_latency.json.
// Tail profile mode: `bench_latency --tail-json <path>` runs serial full-
// pipeline frames and writes the per-step breakdown (fft, subtract,
// contour, denoise, localize, smooth) from the tracker's cycle counters
// against the pre-tail-rewrite frame latency, as
// bench/analysis_tail_latency.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/worker_pool.hpp"
#include "core/pipeline_steps.hpp"
#include "core/tracker.hpp"
#include "dsp/fft.hpp"
#include "dsp/simd.hpp"
#include "engine/engine.hpp"
#include "engine/sim_source.hpp"
#include "geom/solver.hpp"
#include "harness.hpp"

using namespace witrack;

namespace {

/// Pre-capture a few frames of realistic sweeps once.
const std::vector<sim::Scenario::Frame>& captured_frames() {
    static const auto frames = [] {
        sim::ScenarioConfig config;
        config.through_wall = true;
        config.seed = 33;
        sim::Scenario scenario(config, std::make_unique<sim::LineWalkScript>(
                                           geom::Vec3{-1, 5, 0}, geom::Vec3{1, 5, 0},
                                           2.0, 1.0));
        std::vector<sim::Scenario::Frame> out;
        sim::Scenario::Frame frame;
        while (scenario.next(frame)) out.push_back(frame);
        return out;
    }();
    return frames;
}

void BM_PipelineFrameTofOnly(benchmark::State& state) {
    // Lazy schedule: only the TOF step runs -- the per-frame saving every
    // TOF-only workload (multi-person, pointing) banks automatically.
    const auto& frames = captured_frames();
    core::PipelineConfig pipeline;
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    core::WiTrackTracker tracker(pipeline, array);
    std::size_t i = 0;
    double t = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tracker.process_frame(frames[i % frames.size()].sweeps, t,
                                  core::PipelineOutputs::kTof));
        ++i;
        t += 0.0125;
    }
}
BENCHMARK(BM_PipelineFrameTofOnly)->Unit(benchmark::kMillisecond);

void BM_FullPipelineFrameWorkers(benchmark::State& state) {
    // Parallel schedule: per-RX TOF fan-out across a worker pool
    // (bit-identical to serial; speedup needs >= 2 hardware cores).
    const auto& frames = captured_frames();
    core::PipelineConfig pipeline;
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    common::WorkerPool pool(static_cast<std::size_t>(state.range(0)));
    core::WiTrackTracker tracker(pipeline, array);
    tracker.set_worker_pool(&pool);
    std::size_t i = 0;
    double t = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tracker.process_frame(frames[i % frames.size()].sweeps, t));
        ++i;
        t += 0.0125;
    }
    state.counters["workers"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FullPipelineFrameWorkers)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FullPipelineFrame(benchmark::State& state) {
    const auto& frames = captured_frames();
    core::PipelineConfig pipeline;
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    core::WiTrackTracker tracker(pipeline, array);
    std::size_t i = 0;
    double t = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tracker.process_frame(frames[i % frames.size()].sweeps, t));
        ++i;
        t += 0.0125;
    }
    state.counters["budget_ms"] = 75.0;  // the paper's latency budget
}
BENCHMARK(BM_FullPipelineFrame)->Unit(benchmark::kMillisecond);

void BM_EngineStep(benchmark::State& state) {
    // Full engine step (source -> tracker -> event publish) against a
    // subscribed bus: measures the engine's overhead relative to the bare
    // tracker hot path above. Source capture dominates; the engine layer
    // itself adds one virtual call and one event dispatch per frame.
    engine::EngineConfig config;
    config.with_seed(33).with_fast_capture(true);
    std::size_t updates = 0;
    for (auto _ : state) {
        state.PauseTiming();
        engine::Engine eng(config, std::make_unique<engine::SimSource>(
                                       config, std::make_unique<sim::LineWalkScript>(
                                                   geom::Vec3{-1, 5, 0},
                                                   geom::Vec3{1, 5, 0}, 2.0, 1.0)));
        eng.bus().subscribe<engine::TrackUpdateEvent>(
            [&](const engine::TrackUpdateEvent&) { ++updates; });
        state.ResumeTiming();
        while (eng.step()) {
        }
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(eng.frames_processed()));
    }
    benchmark::DoNotOptimize(updates);
}
BENCHMARK(BM_EngineStep)->Unit(benchmark::kMillisecond);

void BM_RangeFftPerAntenna(benchmark::State& state) {
    const auto& frames = captured_frames();
    core::PipelineConfig pipeline;
    core::SweepProcessor processor(pipeline.fmcw, pipeline.window, pipeline.fft_size);
    const auto& frame = frames[0].sweeps;
    core::RangeProfile profile;
    for (auto _ : state) {
        processor.process_into(frame.antenna(0), frame.num_sweeps(), profile);
        benchmark::DoNotOptimize(profile.re.data());
    }
}
BENCHMARK(BM_RangeFftPerAntenna)->Unit(benchmark::kMicrosecond);

void BM_PaperLiteralFft2500(benchmark::State& state) {
    // Paper-literal mode: Bluestein FFT sized exactly to the sweep.
    const auto& frames = captured_frames();
    core::PipelineConfig pipeline;
    core::SweepProcessor processor(pipeline.fmcw, pipeline.window, 0);
    const auto& frame = frames[0].sweeps;
    core::RangeProfile profile;
    for (auto _ : state) {
        processor.process_into(frame.antenna(0), frame.num_sweeps(), profile);
        benchmark::DoNotOptimize(profile.re.data());
    }
}
BENCHMARK(BM_PaperLiteralFft2500)->Unit(benchmark::kMicrosecond);

void BM_ClosedFormSolve(benchmark::State& state) {
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    const geom::EllipsoidSolver solver(array);
    const geom::Vec3 p{1.2, 5.0, 1.0};
    std::vector<double> rts;
    for (const auto& rx : array.rx)
        rts.push_back(p.distance_to(array.tx) + p.distance_to(rx));
    for (auto _ : state) benchmark::DoNotOptimize(solver.solve_closed_form(rts));
}
BENCHMARK(BM_ClosedFormSolve);

void BM_GaussNewtonSolve(benchmark::State& state) {
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    const geom::EllipsoidSolver solver(array);
    const geom::Vec3 p{1.2, 5.0, 1.0};
    std::vector<double> rts;
    for (const auto& rx : array.rx)
        rts.push_back(p.distance_to(array.tx) + p.distance_to(rx) + 0.01);
    const geom::Vec3 seed{0, 4, 1};
    for (auto _ : state)
        benchmark::DoNotOptimize(solver.solve_gauss_newton(rts, seed));
}
BENCHMARK(BM_GaussNewtonSolve);

// ------------------------------------------------ scheduler JSON comparison

struct SchedulerTiming {
    const char* name;
    double mean_ms = 0.0;
    double max_ms = 0.0;
};

/// Time one scheduler configuration over every captured frame, repeated
/// `reps` times on a fresh tracker (first repetition warms caches and is
/// discarded from the mean).
SchedulerTiming time_configuration(const char* name, core::PipelineOutputs outputs,
                                   std::size_t workers, int reps) {
    const auto& frames = captured_frames();
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    core::PipelineConfig pipeline;

    SchedulerTiming timing{name};
    double total_s = 0.0;
    std::size_t timed_frames = 0;
    for (int rep = 0; rep < reps; ++rep) {
        std::unique_ptr<common::WorkerPool> pool;
        core::WiTrackTracker tracker(pipeline, array);
        if (workers > 1) {
            pool = std::make_unique<common::WorkerPool>(workers);
            tracker.set_worker_pool(pool.get());
        }
        double t = 0.0;
        for (const auto& frame : frames) {
            const auto t0 = std::chrono::steady_clock::now();
            benchmark::DoNotOptimize(
                tracker.process_frame(frame.sweeps, t, outputs));
            const auto t1 = std::chrono::steady_clock::now();
            t += 0.0125;
            if (rep == 0) continue;  // warm-up repetition
            const double s = std::chrono::duration<double>(t1 - t0).count();
            total_s += s;
            timing.max_ms = std::max(timing.max_ms, s * 1e3);
            ++timed_frames;
        }
    }
    timing.mean_ms = timed_frames > 0
                         ? total_s * 1e3 / static_cast<double>(timed_frames)
                         : 0.0;
    std::printf("  %-28s mean %7.3f ms   max %7.3f ms\n", timing.name,
                timing.mean_ms, timing.max_ms);
    return timing;
}

/// Serial vs lazy vs parallel over identical frames, written as JSON next
/// to baseline_frame_latency.json. A host with a single hardware core
/// cannot show a parallel win (the fan-out only adds dispatch overhead
/// there); the shared report writer records the machine the numbers came
/// from.
int write_scheduler_json(const char* path) {
    constexpr int kReps = 4;
    std::printf("scheduler latency comparison (%d timed repetitions):\n",
                kReps - 1);
    const std::vector<SchedulerTiming> timings = {
        time_configuration("serial_full", core::PipelineOutputs::kAll, 1, kReps),
        time_configuration("lazy_tof_only", core::PipelineOutputs::kTof, 1, kReps),
        time_configuration("lazy_localize_only",
                           core::PipelineOutputs::kRawPosition, 1, kReps),
        time_configuration("workers_2", core::PipelineOutputs::kAll, 2, kReps),
        time_configuration("workers_4", core::PipelineOutputs::kAll, 4, kReps),
    };

    bench::JsonReport report(path, "bench_latency --scheduler-json",
                             "LineWalkScript through-wall, 3 rx, 5 "
                             "sweeps/frame, fft_size 4096");
    if (!report.ok()) return 1;
    report.single_core_caveat(
        "the worker configurations can only add dispatch overhead here (no "
        "parallel hardware); rerun on a multi-core machine for the parallel "
        "speedup -- tests/test_scheduler.cpp proves the schedules "
        "bit-identical regardless");
    std::FILE* out = report.stream();
    std::fprintf(out, "  \"configurations\": {\n");
    for (std::size_t i = 0; i < timings.size(); ++i) {
        std::fprintf(out,
                     "    \"%s\": {\"mean_ms\": %.4f, \"max_ms\": %.4f}%s\n",
                     timings[i].name, timings[i].mean_ms, timings[i].max_ms,
                     i + 1 < timings.size() ? "," : "");
    }
    std::fprintf(out, "  },\n");
    const double serial = timings[0].mean_ms;
    std::fprintf(out, "  \"speedup_vs_serial\": {\n");
    for (std::size_t i = 1; i < timings.size(); ++i) {
        const double speedup =
            timings[i].mean_ms > 0.0 ? serial / timings[i].mean_ms : 0.0;
        std::fprintf(out, "    \"%s\": %.3f%s\n", timings[i].name, speedup,
                     i + 1 < timings.size() ? "," : "");
    }
    std::fprintf(out, "  }\n");
    return report.close();
}

// --------------------------------------------------- kernel JSON comparison

/// Mean/max seconds of `reps` timed calls to `fn` after one warm-up call.
template <typename Fn>
std::pair<double, double> time_calls(int reps, Fn&& fn) {
    fn();  // warm plans, scratch and caches
    double total_s = 0.0, max_s = 0.0;
    for (int i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double s = std::chrono::duration<double>(t1 - t0).count();
        total_s += s;
        max_s = std::max(max_s, s);
    }
    return {total_s / static_cast<double>(reps), max_s};
}

/// Serial DSP hot-path timings for the SoA/pruned/half-spectrum kernel
/// engine, compared against the previous engine's numbers recorded in
/// bench/baseline_frame_latency.json. These are single-threaded
/// measurements: unlike the worker-pool comparisons they are meaningful on
/// a single-core host, which is exactly why the kernel rewrite is the lever
/// for per-session frame rate there.
int write_kernel_json(const char* path) {
    // Pre-kernel-rewrite numbers from bench/baseline_frame_latency.json
    // ("after" of the FrameBuffer PR, measured on this host).
    constexpr double kBeforeRangeFftUs = 145.24;
    constexpr double kBeforeFullPipelineMs = 0.60;

    const auto& frames = captured_frames();
    core::PipelineConfig pipeline;
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);

    core::SweepProcessor processor(pipeline.fmcw, pipeline.window,
                                   pipeline.fft_size);
    core::RangeProfile profile;
    const auto& frame = frames[0].sweeps;
    const auto [fft_mean_s, fft_max_s] = time_calls(2000, [&] {
        processor.process_into(frame.antenna(0), frame.num_sweeps(), profile);
        benchmark::DoNotOptimize(profile.re.data());
    });

    core::SweepProcessor literal(pipeline.fmcw, pipeline.window, 0);
    const auto [bluestein_mean_s, bluestein_max_s] = time_calls(500, [&] {
        literal.process_into(frame.antenna(0), frame.num_sweeps(), profile);
        benchmark::DoNotOptimize(profile.re.data());
    });

    core::WiTrackTracker tracker(pipeline, array);
    std::size_t i = 0;
    double t = 0.0;
    const auto [pipe_mean_s, pipe_max_s] = time_calls(1000, [&] {
        benchmark::DoNotOptimize(
            tracker.process_frame(frames[i % frames.size()].sweeps, t));
        ++i;
        t += 0.0125;
    });

    const double fft_us = fft_mean_s * 1e6;
    const double bluestein_us = bluestein_mean_s * 1e6;
    const double pipe_ms = pipe_mean_s * 1e3;
    std::printf("kernel latency (serial, single core):\n");
    std::printf("  range FFT / antenna   %8.2f us (was %.2f)\n", fft_us,
                kBeforeRangeFftUs);
    std::printf("  paper-literal 2500    %8.2f us\n", bluestein_us);
    std::printf("  full pipeline frame   %8.3f ms (was %.2f)\n", pipe_ms,
                kBeforeFullPipelineMs);

    bench::JsonReport report(path, "bench_latency --kernel-json",
                             "LineWalkScript through-wall, 3 rx, 5 "
                             "sweeps/frame, fft_size 4096 (2500 live samples)");
    if (!report.ok()) return 1;
    report.note(
        "serial single-thread timings: the kernel rewrite is a per-core win, "
        "so unlike the worker-pool numbers these are meaningful on a "
        "single-core host; multi-core machines bank the same per-lane saving "
        "times the fan-out");
    std::FILE* out = report.stream();
    std::fprintf(out, "  \"simd_level\": \"%s\",\n",
                 dsp::simd::to_string(dsp::simd::active()));
    std::fprintf(out, "  \"before\": {\n");
    std::fprintf(out,
                 "    \"description\": \"interleaved-complex scalar radix-2 "
                 "(direction branch + conj in the butterfly loop), full-"
                 "spectrum RealFft, separate zero-fill/accumulate/window "
                 "passes (bench/baseline_frame_latency.json)\",\n");
    std::fprintf(out, "    \"BM_RangeFftPerAntenna_mean_us\": %.2f,\n",
                 kBeforeRangeFftUs);
    std::fprintf(out, "    \"BM_FullPipelineFrame_mean_ms\": %.2f\n",
                 kBeforeFullPipelineMs);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"after\": {\n");
    std::fprintf(out,
                 "    \"description\": \"SoA Stockham radix-4 kernels "
                 "(separate forward/inverse, per-stage sequential twiddles), "
                 "input pruning 2500->4096, r2c half-spectrum profiles, "
                 "fused average+window pack\",\n");
    std::fprintf(out, "    \"BM_RangeFftPerAntenna_mean_us\": %.2f,\n", fft_us);
    std::fprintf(out, "    \"BM_PaperLiteralFft2500_mean_us\": %.2f,\n",
                 bluestein_us);
    std::fprintf(out, "    \"BM_FullPipelineFrame_mean_ms\": %.3f\n", pipe_ms);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"speedup\": {\n");
    std::fprintf(out, "    \"range_fft_per_antenna\": %.2f,\n",
                 fft_us > 0.0 ? kBeforeRangeFftUs / fft_us : 0.0);
    std::fprintf(out, "    \"full_pipeline_frame\": %.2f,\n",
                 pipe_ms > 0.0 ? kBeforeFullPipelineMs / pipe_ms : 0.0);
    std::fprintf(out, "    \"target_range_fft\": 1.8,\n");
    std::fprintf(out, "    \"target_full_pipeline\": 1.3\n");
    std::fprintf(out, "  }\n");
    return report.close();
}

// ----------------------------------------------- tail JSON per-step profile

/// Per-pipeline-step frame profile for the vectorized analysis tail:
/// serial full-pipeline frames over the captured scenario, with the
/// tracker's cycle-counter step stats (fft / subtract / contour / denoise /
/// localize / smooth) harvested for the breakdown and compared against the
/// pre-tail-rewrite full-frame number recorded by --kernel-json.
int write_tail_json(const char* path) {
    // Pre-tail-rewrite numbers from bench/fft_kernel_latency.json ("after"
    // of the SIMD FFT engine PR, measured on this host): the analysis tail
    // (std::abs magnitudes, band-copy sorts, per-frame allocations) was
    // untouched there, so its full-frame mean is this PR's "before".
    constexpr double kBeforeFullPipelineMs = 0.21;
    constexpr double kBeforeRangeFftUs = 16.9;

    const auto& frames = captured_frames();
    core::PipelineConfig pipeline;
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    core::WiTrackTracker tracker(pipeline, array);

    std::size_t i = 0;
    double t = 0.0;
    const auto step = [&] {
        benchmark::DoNotOptimize(
            tracker.process_frame(frames[i % frames.size()].sweeps, t));
        ++i;
        t += 0.0125;
    };
    // Warm every plan, scratch plane and persistent frame, then discard the
    // warm-up's samples so the breakdown covers only steady-state frames.
    for (std::size_t k = 0; k < frames.size(); ++k) step();
    tracker.take_step_stats();

    constexpr int kReps = 2000;
    const auto [pipe_mean_s, pipe_max_s] = time_calls(kReps, step);
    const auto steps = tracker.take_step_stats();

    const double pipe_ms = pipe_mean_s * 1e3;
    struct StageRow {
        const char* name;
        const core::StepCounter* counter;
    };
    const StageRow rows[] = {
        {"fft", &steps.tof.fft},           {"subtract", &steps.tof.subtract},
        {"contour", &steps.tof.contour},   {"denoise", &steps.tof.denoise},
        {"localize", &steps.localize},     {"smooth", &steps.smooth},
    };
    std::printf("analysis tail latency (serial, single core):\n");
    std::printf("  full pipeline frame   %8.3f ms (was %.2f)\n", pipe_ms,
                kBeforeFullPipelineMs);
    for (const auto& row : rows) {
        const double mean_us =
            row.counter->frames > 0
                ? row.counter->total_seconds() * 1e6 /
                      static_cast<double>(row.counter->frames)
                : 0.0;
        std::printf("  %-10s %8.2f us/sample  (%llu samples)\n", row.name,
                    mean_us,
                    static_cast<unsigned long long>(row.counter->frames));
    }

    bench::JsonReport report(path, "bench_latency --tail-json",
                             "LineWalkScript through-wall, 3 rx, 5 "
                             "sweeps/frame, fft_size 4096 (2500 live samples)");
    if (!report.ok()) return 1;
    report.note(
        "serial single-thread timings; per-RX stages (fft/subtract/contour/"
        "denoise) count (frame, antenna) samples, so divide by 3 antennas "
        "for per-frame cost; stage means come from rdtsc step counters, the "
        "frame mean from steady_clock around the whole call",
        "methodology");
    report.single_core_caveat(
        "absolute numbers are pessimistic under shared-host load; the "
        "before/after ratio is a single-thread property and holds here");
    std::FILE* out = report.stream();
    std::fprintf(out, "  \"simd_level\": \"%s\",\n",
                 dsp::simd::to_string(dsp::simd::active()));
    std::fprintf(out, "  \"before\": {\n");
    std::fprintf(out,
                 "    \"description\": \"SIMD FFT engine with scalar analysis "
                 "tail: std::abs(cplx) magnitudes, band-copy sort noise "
                 "floors, per-frame TofFrame/profile allocations "
                 "(bench/fft_kernel_latency.json)\",\n");
    std::fprintf(out, "    \"BM_FullPipelineFrame_mean_ms\": %.2f,\n",
                 kBeforeFullPipelineMs);
    std::fprintf(out, "    \"BM_RangeFftPerAntenna_mean_us\": %.2f\n",
                 kBeforeRangeFftUs);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"after\": {\n");
    std::fprintf(out,
                 "    \"description\": \"fused SIMD subtract+magnitude "
                 "(sqrt(re^2+im^2)) over SoA spectrum planes, scratch-threaded "
                 "contour with one cached nth_element noise floor per antenna "
                 "per frame, persistent TofFrame -- zero steady-state "
                 "allocations\",\n");
    std::fprintf(out, "    \"BM_FullPipelineFrame_mean_ms\": %.3f,\n", pipe_ms);
    std::fprintf(out, "    \"BM_FullPipelineFrame_max_ms\": %.3f,\n",
                 pipe_max_s * 1e3);
    std::fprintf(out, "    \"stages\": {\n");
    const std::size_t n_rows = sizeof(rows) / sizeof(rows[0]);
    for (std::size_t r = 0; r < n_rows; ++r) {
        const core::StepCounter& c = *rows[r].counter;
        const double mean_us =
            c.frames > 0
                ? c.total_seconds() * 1e6 / static_cast<double>(c.frames)
                : 0.0;
        std::fprintf(out,
                     "      \"%s\": {\"mean_us_per_sample\": %.3f, "
                     "\"max_us\": %.3f, \"samples\": %llu}%s\n",
                     rows[r].name, mean_us, c.max_seconds() * 1e6,
                     static_cast<unsigned long long>(c.frames),
                     r + 1 < n_rows ? "," : "");
    }
    std::fprintf(out, "    }\n");
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"speedup\": {\n");
    std::fprintf(out, "    \"full_pipeline_frame\": %.2f,\n",
                 pipe_ms > 0.0 ? kBeforeFullPipelineMs / pipe_ms : 0.0);
    std::fprintf(out, "    \"target_full_pipeline\": 1.3\n");
    std::fprintf(out, "  }\n");
    return report.close();
}

// ---------------------------------------------------- batch JSON comparison

/// Per-transform cost of the lane-interleaved batch pass vs B sequential
/// r2c transforms of the production range-FFT shape, across batch widths
/// (1 = the degenerate collapse onto the sequential path) and both batch
/// precisions. This is the number the EngineHost batch_fft schedule banks
/// per session frame.
int write_batch_json(const char* path) {
    constexpr std::size_t kWidths[] = {1, 2, 4, 8, 16};
    constexpr std::size_t kMaxWidth = 16;
    constexpr int kRounds = 300;
    const std::size_t n = core::PipelineConfig{}.fft_size;  // 4096
    const std::size_t nz = core::PipelineConfig{}.fmcw.samples_per_sweep();
    const dsp::RealFft plan(n, nz);

    std::mt19937 rng(53);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<std::vector<double>> x(kMaxWidth), w(kMaxWidth);
    std::vector<std::vector<dsp::cplx>> spectra(kMaxWidth);
    for (std::size_t b = 0; b < kMaxWidth; ++b) {
        x[b].resize(nz);
        w[b].resize(nz);
        for (std::size_t i = 0; i < nz; ++i) {
            x[b][i] = dist(rng);
            w[b][i] = 0.5 + 0.5 * dist(rng);
        }
    }

    struct Row {
        std::size_t batch;
        double sequential_us;  ///< per transform, B forward_windowed calls
        double batch_us;       ///< per transform, one B-wide batch pass
        double batch_f32_us;   ///< per transform, float32 lane
    };
    dsp::FftScratch scratch;
    std::vector<Row> rows;
    std::printf("batched r2c range FFT (N %zu, %zu live samples, simd %s):\n",
                n, nz, dsp::simd::to_string(dsp::simd::active()));
    for (const std::size_t batch : kWidths) {
        std::vector<dsp::RealFft::BatchItem> items;
        for (std::size_t b = 0; b < batch; ++b)
            items.push_back({x[b], w[b], &spectra[b]});
        const double divisor = static_cast<double>(batch);
        Row row{batch, 0.0, 0.0, 0.0};
        // Interleaved min-of-rounds: every round times each variant once,
        // back to back, and the minimum per variant survives. Unlike a mean
        // over a long block per variant, this keeps the comparison honest
        // when background load drifts between blocks and discards scheduler
        // interruptions entirely.
        const auto sequential_pass = [&] {
            for (std::size_t b = 0; b < batch; ++b)
                plan.forward_windowed(x[b], w[b], spectra[b], scratch);
        };
        const auto batch_pass = [&] {
            plan.forward_windowed_batch(items, scratch);
        };
        const auto batch_f32_pass = [&] {
            plan.forward_windowed_batch(items, scratch,
                                        dsp::BatchPrecision::kFloat32);
        };
        const auto timed = [](auto&& fn) {
            const auto t0 = std::chrono::steady_clock::now();
            fn();
            const auto t1 = std::chrono::steady_clock::now();
            return std::chrono::duration<double>(t1 - t0).count();
        };
        sequential_pass();  // warm plans, scratch and caches
        batch_pass();
        batch_f32_pass();
        double seq_s = 1e30, batch_s = 1e30, f32_s = 1e30;
        for (int round = 0; round < kRounds; ++round) {
            seq_s = std::min(seq_s, timed(sequential_pass));
            batch_s = std::min(batch_s, timed(batch_pass));
            f32_s = std::min(f32_s, timed(batch_f32_pass));
        }
        row.sequential_us = seq_s * 1e6 / divisor;
        row.batch_us = batch_s * 1e6 / divisor;
        row.batch_f32_us = f32_s * 1e6 / divisor;
        std::printf("  B %2zu  sequential %7.2f us/tx  batch %7.2f us/tx "
                    "(x%.2f)  f32 %7.2f us/tx (x%.2f)\n",
                    row.batch, row.sequential_us, row.batch_us,
                    row.batch_us > 0.0 ? row.sequential_us / row.batch_us : 0.0,
                    row.batch_f32_us,
                    row.batch_f32_us > 0.0
                        ? row.sequential_us / row.batch_f32_us
                        : 0.0);
        rows.push_back(row);
    }

    bench::JsonReport report(path, "bench_latency --batch-json",
                             "per-transform cost of one B-wide "
                             "lane-interleaved r2c batch pass vs B sequential "
                             "forward_windowed calls, production range-FFT "
                             "shape (fft_size 4096, 2500 live samples, fused "
                             "window)");
    if (!report.ok()) return 1;
    report.single_core_caveat(
        "timings are pessimistic in absolute terms, but the batch-vs-"
        "sequential ratio is a single-thread property and holds here");
    report.note(
        "float64 is the bit-identical lane (about cost-neutral at this "
        "shape: the sequential kernel is already fully vectorized, so "
        "batching doubles only the working set); float32 is the throughput "
        "lane -- half the traffic, twice the vector width -- and carries "
        "the B>=4 speedup, gated by the error budget in test_fft",
        "lanes");
    std::FILE* out = report.stream();
    std::fprintf(out, "  \"simd_level\": \"%s\",\n",
                 dsp::simd::to_string(dsp::simd::active()));
    std::fprintf(out, "  \"widths\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(out,
                     "    {\"batch\": %zu, \"sequential_us_per_transform\": "
                     "%.3f, \"batch_us_per_transform\": %.3f, "
                     "\"batch_f32_us_per_transform\": %.3f, \"speedup\": "
                     "%.3f, \"speedup_f32\": %.3f}%s\n",
                     r.batch, r.sequential_us, r.batch_us, r.batch_f32_us,
                     r.batch_us > 0.0 ? r.sequential_us / r.batch_us : 0.0,
                     r.batch_f32_us > 0.0 ? r.sequential_us / r.batch_f32_us
                                          : 0.0,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n");
    return report.close();
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--scheduler-json") == 0)
            return write_scheduler_json(argv[i + 1]);
        if (std::strcmp(argv[i], "--kernel-json") == 0)
            return write_kernel_json(argv[i + 1]);
        if (std::strcmp(argv[i], "--batch-json") == 0)
            return write_batch_json(argv[i + 1]);
        if (std::strcmp(argv[i], "--tail-json") == 0)
            return write_tail_json(argv[i + 1]);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
