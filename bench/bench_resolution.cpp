// Reproduces the FMCW design math of paper Section 4.1 (Eq. 1-4) and
// verifies the C/2B = 8.8 cm range resolution empirically with a
// two-reflector separability sweep.
//
// Usage: bench_resolution [--csv out.csv]
#include <algorithm>
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/constants.hpp"
#include "common/table.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan_cache.hpp"
#include "dsp/peaks.hpp"
#include "hw/mixer.hpp"

using namespace witrack;

namespace {

/// Reusable separability probe: one shared r2c plan and caller-owned
/// sweep/spectrum/magnitude buffers, so the sweep over separations does
/// not rebuild or reallocate anything per step.
class SeparabilityProbe {
  public:
    explicit SeparabilityProbe(const FmcwParams& fmcw)
        : fmcw_(fmcw),
          mixer_(fmcw),
          rfft_(dsp::FftPlanCache::global().real_plan(fmcw.samples_per_sweep())),
          sweep_(fmcw.samples_per_sweep()),
          magnitude_(fmcw.samples_per_sweep() / 2) {}

    /// Can two equal reflectors separated by `delta_m` (one-way) be
    /// resolved as two distinct spectral peaks?
    bool resolvable(double delta_m) {
        std::vector<rf::PropagationPath> paths(2);
        paths[0].round_trip_m = 10.0;
        paths[0].amplitude = 1.0;
        paths[1].round_trip_m = 10.0 + 2.0 * delta_m;  // one-way -> 2x round trip
        paths[1].amplitude = 1.0;
        std::fill(sweep_.begin(), sweep_.end(), 0.0);
        mixer_.synthesize(paths, sweep_);
        rfft_->forward(sweep_, spectrum_, scratch_);
        for (std::size_t k = 0; k < magnitude_.size(); ++k)
            magnitude_[k] = std::abs(spectrum_[k]);
        const auto peaks = dsp::find_peaks(
            magnitude_, 0.2 * static_cast<double>(sweep_.size()) / 2.0, 1);
        return peaks.size() >= 2;
    }

  private:
    FmcwParams fmcw_;
    hw::DechirpMixer mixer_;
    std::shared_ptr<const dsp::RealFft> rfft_;
    std::vector<double> sweep_;
    std::vector<dsp::cplx> spectrum_;
    std::vector<double> magnitude_;
    dsp::FftScratch scratch_;
};

}  // namespace

int main(int argc, char** argv) {
    CliArgs args(argc, argv);
    FmcwParams fmcw;

    print_banner("FMCW design parameters (paper Section 4.1 / Section 7)");
    Table params({"quantity", "paper", "this implementation"});
    params.add_row({"swept bandwidth B", "1.69 GHz",
                    Table::num(fmcw.bandwidth_hz / 1e9, 2) + " GHz"});
    params.add_row({"sweep duration", "2.5 ms",
                    Table::num(fmcw.sweep_duration_s * 1e3, 2) + " ms"});
    params.add_row({"baseband sample rate", "1 MHz",
                    Table::num(fmcw.sample_rate_hz / 1e6, 2) + " MHz"});
    params.add_row({"transmit power", "0.75 mW",
                    Table::num(fmcw.tx_power_w * 1e3, 2) + " mW"});
    params.add_row({"sweeps averaged per frame", "5",
                    std::to_string(fmcw.sweeps_per_frame)});
    params.add_row({"frame duration", "12.5 ms",
                    Table::num(fmcw.frame_duration_s() * 1e3, 2) + " ms"});
    params.add_row({"resolution C/2B (Eq. 3)", "8.8 cm",
                    Table::num(fmcw.range_resolution_m() * 100, 2) + " cm"});
    params.add_row({"expected 1D mapping error (~res/2)", "4.4 cm",
                    Table::num(fmcw.range_resolution_m() * 50, 2) + " cm"});
    params.print();

    print_banner("Empirical two-reflector separability (synthesized sweeps)");
    Table sep({"one-way separation (cm)", "resolved as two peaks"});
    SeparabilityProbe probe(fmcw);
    double first_resolved = -1.0;
    for (double cm = 2.0; cm <= 20.0; cm += 1.0) {
        const bool ok = probe.resolvable(cm / 100.0);
        if (ok && first_resolved < 0) first_resolved = cm;
        sep.add_row({Table::num(cm, 0), ok ? "yes" : "no"});
    }
    sep.print();

    std::cout << "\nFirst resolvable separation: " << first_resolved
              << " cm (theory: " << Table::num(fmcw.range_resolution_m() * 100, 1)
              << " cm)\n"
              << "Shape check (within ~1.5x of C/2B): "
              << (first_resolved > 0 &&
                          first_resolved <= 1.5 * fmcw.range_resolution_m() * 100
                      ? "PASS"
                      : "FAIL")
              << "\n";
    return 0;
}
