// Reproduces the FMCW design math of paper Section 4.1 (Eq. 1-4) and
// verifies the C/2B = 8.8 cm range resolution empirically with a
// two-reflector separability sweep.
//
// Usage: bench_resolution [--csv out.csv]
#include <iostream>

#include "common/cli.hpp"
#include "common/constants.hpp"
#include "common/table.hpp"
#include "dsp/fft.hpp"
#include "dsp/peaks.hpp"
#include "hw/mixer.hpp"

using namespace witrack;

namespace {

/// Can two equal reflectors separated by `delta_m` (one-way) be resolved as
/// two distinct spectral peaks?
bool resolvable(const FmcwParams& fmcw, double delta_m) {
    hw::DechirpMixer mixer(fmcw);
    std::vector<rf::PropagationPath> paths(2);
    paths[0].round_trip_m = 10.0;
    paths[0].amplitude = 1.0;
    paths[1].round_trip_m = 10.0 + 2.0 * delta_m;  // one-way delta -> 2x round trip
    paths[1].amplitude = 1.0;
    const auto sweep = mixer.synthesize(paths);
    const auto spectrum = dsp::fft_forward_real(sweep);
    std::vector<double> magnitude(sweep.size() / 2);
    for (std::size_t k = 0; k < magnitude.size(); ++k)
        magnitude[k] = std::abs(spectrum[k]);
    const auto peaks = dsp::find_peaks(magnitude, 0.2 * static_cast<double>(sweep.size()) / 2.0, 1);
    return peaks.size() >= 2;
}

}  // namespace

int main(int argc, char** argv) {
    CliArgs args(argc, argv);
    FmcwParams fmcw;

    print_banner("FMCW design parameters (paper Section 4.1 / Section 7)");
    Table params({"quantity", "paper", "this implementation"});
    params.add_row({"swept bandwidth B", "1.69 GHz",
                    Table::num(fmcw.bandwidth_hz / 1e9, 2) + " GHz"});
    params.add_row({"sweep duration", "2.5 ms",
                    Table::num(fmcw.sweep_duration_s * 1e3, 2) + " ms"});
    params.add_row({"baseband sample rate", "1 MHz",
                    Table::num(fmcw.sample_rate_hz / 1e6, 2) + " MHz"});
    params.add_row({"transmit power", "0.75 mW",
                    Table::num(fmcw.tx_power_w * 1e3, 2) + " mW"});
    params.add_row({"sweeps averaged per frame", "5",
                    std::to_string(fmcw.sweeps_per_frame)});
    params.add_row({"frame duration", "12.5 ms",
                    Table::num(fmcw.frame_duration_s() * 1e3, 2) + " ms"});
    params.add_row({"resolution C/2B (Eq. 3)", "8.8 cm",
                    Table::num(fmcw.range_resolution_m() * 100, 2) + " cm"});
    params.add_row({"expected 1D mapping error (~res/2)", "4.4 cm",
                    Table::num(fmcw.range_resolution_m() * 50, 2) + " cm"});
    params.print();

    print_banner("Empirical two-reflector separability (synthesized sweeps)");
    Table sep({"one-way separation (cm)", "resolved as two peaks"});
    double first_resolved = -1.0;
    for (double cm = 2.0; cm <= 20.0; cm += 1.0) {
        const bool ok = resolvable(fmcw, cm / 100.0);
        if (ok && first_resolved < 0) first_resolved = cm;
        sep.add_row({Table::num(cm, 0), ok ? "yes" : "no"});
    }
    sep.print();

    std::cout << "\nFirst resolvable separation: " << first_resolved
              << " cm (theory: " << Table::num(fmcw.range_resolution_m() * 100, 1)
              << " cm)\n"
              << "Shape check (within ~1.5x of C/2B): "
              << (first_resolved > 0 &&
                          first_resolved <= 1.5 * fmcw.range_resolution_m() * 100
                      ? "PASS"
                      : "FAIL")
              << "\n";
    return 0;
}
