// Hardware-robustness suite. The contract under test: hw::FaultInjector
// damages frames deterministically and keeps exact 1:1 accounting with the
// pipeline's QualityStats; the quality plane is bitwise inert on pristine
// streams; scenario files parse with precise diagnostics and replay bit
// for bit; a 4-RX deployment keeps a continuous, bounded track through a
// mid-run antenna dropout; and the EngineHost watchdog checkpoint-restarts
// an unhealthy session in place without disturbing its siblings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/host.hpp"
#include "engine/sim_source.hpp"
#include "hw/fault_injector.hpp"
#include "sim/motion.hpp"
#include "sim/scenario_file.hpp"

namespace witrack {
namespace {

using geom::Vec3;

/// This suite probes explicit injector wiring (and the pristine path), so
/// a WITRACK_HW_FAULTS campaign inherited from the environment -- the CI
/// fault-matrix lane exports one -- is cleared up front;
/// EnvSpecAttachesInjector re-sets the variable deliberately.
class ClearFaultEnv : public ::testing::Environment {
  public:
    void SetUp() override { unsetenv("WITRACK_HW_FAULTS"); }
};
[[maybe_unused]] const auto* const kClearFaultEnv =
    ::testing::AddGlobalTestEnvironment(new ClearFaultEnv);

// ------------------------------------------------------------ helpers

engine::EngineConfig walk_config(std::uint64_t seed) {
    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(seed);
    return config;
}

std::unique_ptr<sim::LineWalkScript> walk_script(double duration_s = 2.0) {
    return std::make_unique<sim::LineWalkScript>(Vec3{-1, 5, 0}, Vec3{1, 5, 0},
                                                 duration_s, 1.0);
}

void expect_same_track(const std::vector<core::TrackPoint>& a,
                       const std::vector<core::TrackPoint>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time_s, b[i].time_s);
        EXPECT_EQ(a[i].position.x, b[i].position.x);
        EXPECT_EQ(a[i].position.y, b[i].position.y);
        EXPECT_EQ(a[i].position.z, b[i].position.z);
        EXPECT_EQ(a[i].residual_rms, b[i].residual_rms);
    }
}

/// A mixed-fault config: every fault type fires at least once, part by
/// seeded rates, part by a scheduled window per kind (so the "at least
/// once" holds deterministically, not just in expectation).
hw::FaultConfig mixed_faults(std::uint64_t seed) {
    hw::FaultConfig faults;
    faults.dropout_rate = 0.03;
    faults.saturation_rate = 0.05;
    faults.sweep_drop_rate = 0.03;
    faults.sweep_short_rate = 0.03;
    faults.burst_rate = 0.04;
    faults.drift_rate = 0.05;
    faults.seed = seed;
    using Kind = hw::FaultWindow::Kind;
    faults.schedule.push_back({Kind::kDropout, 0.2, 0.3, 0, 1.0});
    faults.schedule.push_back({Kind::kSaturation, 0.3, 0.4, 1, 0.25});
    faults.schedule.push_back({Kind::kBurst, 0.4, 0.5, 2, 8.0});
    faults.schedule.push_back({Kind::kDrift, 0.5, 0.6, -1, 200.0});
    faults.schedule.push_back({Kind::kSweepDrop, 0.6, 0.7, 0, 1.0});
    faults.schedule.push_back({Kind::kSweepShort, 0.7, 0.8, 1, 1.0});
    return faults;
}

std::unique_ptr<engine::SimSource> faulted_source(std::uint64_t seed,
                                                  const hw::FaultConfig& faults,
                                                  double duration_s = 2.0) {
    auto source = std::make_unique<engine::SimSource>(walk_config(seed),
                                                      walk_script(duration_s));
    source->set_fault_injector(std::make_unique<hw::FaultInjector>(faults));
    return source;
}

void expect_parse_error(const std::string& text, const std::string& needle) {
    try {
        sim::parse_scenario_text(text, "scn");
        FAIL() << "expected parse error containing '" << needle << "'";
    } catch (const std::invalid_argument& error) {
        EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
            << "actual message: " << error.what();
    }
}

// ------------------------------------------------------- fault injector

TEST(HwFaultInjector, DeterministicForAGivenSeed) {
    auto a = faulted_source(501, mixed_faults(77));
    auto b = faulted_source(501, mixed_faults(77));

    engine::Frame frame_a, frame_b;
    std::size_t frames = 0;
    while (a->next(frame_a)) {
        ASSERT_TRUE(b->next(frame_b));
        ASSERT_EQ(frame_a.sweeps.size(), frame_b.sweeps.size());
        for (std::size_t i = 0; i < frame_a.sweeps.size(); ++i)
            ASSERT_EQ(frame_a.sweeps.data()[i], frame_b.sweeps.data()[i]);
        ++frames;
    }
    EXPECT_FALSE(b->next(frame_b));
    EXPECT_GT(frames, 100u);

    const auto& ca = a->fault_injector()->counters();
    const auto& cb = b->fault_injector()->counters();
    EXPECT_EQ(ca.rx_dropouts, cb.rx_dropouts);
    EXPECT_EQ(ca.saturated_rx, cb.saturated_rx);
    EXPECT_EQ(ca.dropped_sweeps, cb.dropped_sweeps);
    EXPECT_EQ(ca.short_sweeps, cb.short_sweeps);
    EXPECT_EQ(ca.noise_bursts, cb.noise_bursts);
    EXPECT_EQ(ca.drift_frames, cb.drift_frames);
    // The scheduled windows guarantee every fault type fired.
    EXPECT_GT(ca.rx_dropouts, 0u);
    EXPECT_GT(ca.saturated_rx, 0u);
    EXPECT_GT(ca.dropped_sweeps, 0u);
    EXPECT_GT(ca.short_sweeps, 0u);
    EXPECT_GT(ca.noise_bursts, 0u);
    EXPECT_GT(ca.drift_frames, 0u);
}

TEST(HwFaultInjector, ZeroRateInjectorIsBitwiseInert) {
    // An attached injector that never fires must leave the whole pipeline
    // bit-identical to a build with no injector at all: the quality plane
    // is populated but pristine, and pristine is IEEE-inert.
    engine::Engine pristine(walk_config(502),
                            std::make_unique<engine::SimSource>(
                                walk_config(502), walk_script()));
    pristine.run();

    hw::FaultConfig zeros;  // all rates 0, empty schedule
    engine::Engine armed(walk_config(502), faulted_source(502, zeros));
    armed.run();

    expect_same_track(pristine.tracker().track(), armed.tracker().track());
    EXPECT_EQ(armed.quality_stats().frames, armed.frames_processed());
    EXPECT_EQ(armed.quality_stats().degraded_frames, 0u);
    EXPECT_EQ(armed.quality_stats().min_health, 1.0);
    EXPECT_EQ(pristine.quality_stats().degraded_frames, 0u);
}

TEST(HwFaultInjector, ExactInjectorPipelineAccounting) {
    // Every injected fault increments exactly one injector counter and
    // exactly one QualityStats field: after a full faulted episode the two
    // ledgers must agree to the last unit (the net-layer discipline of
    // test_net.cpp, applied to the hardware plane).
    auto source = faulted_source(503, mixed_faults(99));
    const hw::FaultInjector* injector = source->fault_injector();
    engine::Engine engine(walk_config(503), std::move(source));
    engine.run();

    const auto& counters = injector->counters();
    const auto& stats = engine.quality_stats();
    EXPECT_EQ(stats.frames, engine.frames_processed());
    EXPECT_EQ(stats.rx_dropouts, counters.rx_dropouts);
    EXPECT_EQ(stats.saturated_rx, counters.saturated_rx);
    EXPECT_EQ(stats.dropped_sweeps, counters.dropped_sweeps);
    EXPECT_EQ(stats.short_sweeps, counters.short_sweeps);
    EXPECT_EQ(stats.noise_bursts, counters.noise_bursts);
    EXPECT_EQ(stats.drift_frames, counters.drift_frames);
    EXPECT_GT(stats.degraded_frames, 0u);
    EXPECT_LT(stats.min_health, 1.0);
    EXPECT_GT(stats.mean_health(), 0.0);
    // Despite the abuse, the session still produced a track.
    EXPECT_GT(engine.tracker().track().size(), 0u);
}

TEST(HwFaultInjector, EnvSpecAttachesInjector) {
    // The CI fault-matrix hook: WITRACK_HW_FAULTS arms every SimSource in
    // the process, and a malformed spec fails loudly rather than silently
    // running a fault campaign fault-free.
    ASSERT_EQ(setenv("WITRACK_HW_FAULTS", "dropout=0.5,seed=9", 1), 0);
    auto armed = std::make_unique<engine::SimSource>(walk_config(504),
                                                     walk_script(0.5));
    EXPECT_NE(armed->fault_injector(), nullptr);
    EXPECT_EQ(armed->fault_injector()->config().dropout_rate, 0.5);

    ASSERT_EQ(setenv("WITRACK_HW_FAULTS", "dropout=banana", 1), 0);
    EXPECT_THROW(engine::SimSource(walk_config(504), walk_script(0.5)),
                 std::invalid_argument);
    ASSERT_EQ(unsetenv("WITRACK_HW_FAULTS"), 0);

    // An explicitly attached injector wins over the environment.
    auto off = std::make_unique<engine::SimSource>(walk_config(504),
                                                   walk_script(0.5));
    EXPECT_EQ(off->fault_injector(), nullptr);
}

TEST(HwFaultInjector, FaultedSessionSnapshotResumesBitIdentical) {
    const auto faults = mixed_faults(321);

    engine::Engine reference(walk_config(505), faulted_source(505, faults));
    reference.run();

    engine::Engine half(walk_config(505), faulted_source(505, faults));
    for (int i = 0; i < 60; ++i) ASSERT_TRUE(half.step());
    std::stringstream snapshot;
    half.snapshot(snapshot);

    // Resume on a fresh Engine: the injector's RNG cursor rides in the
    // snapshot, so the restored session replays the exact fault tail.
    engine::Engine resumed(walk_config(505), faulted_source(505, faults));
    resumed.restore(snapshot);
    resumed.run();
    expect_same_track(reference.tracker().track(), resumed.tracker().track());
    EXPECT_EQ(reference.quality_stats().rx_dropouts,
              resumed.quality_stats().rx_dropouts);
    EXPECT_EQ(reference.quality_stats().health_sum,
              resumed.quality_stats().health_sum);

    // A snapshot taken with an injector cannot restore into a session
    // built without one (the fault tail would silently diverge).
    snapshot.clear();
    snapshot.seekg(0);
    engine::Engine bare(walk_config(505),
                        std::make_unique<engine::SimSource>(walk_config(505),
                                                            walk_script()));
    EXPECT_THROW(bare.restore(snapshot), std::runtime_error);
}

// ------------------------------------------------------- scenario files

constexpr const char* kParityScenario =
    "# deterministic campaign\n"
    "name = parity-walk\n"
    "seed = 7\n"
    "duration_s = 1.0\n"
    "fast_capture = true\n"
    "wall = wood\n"
    "person = line -1,5,0.9 -> 1,5,0.9\n"
    "fault_rates = saturation=0.1,seed=5\n"
    "fault = dropout 0.3 0.5 rx=1\n";

TEST(ScenarioFile, ParsesAndReplaysBitForBit) {
    const auto spec = sim::parse_scenario_text(kParityScenario, "parity.scn");
    EXPECT_EQ(spec.name, "parity-walk");
    EXPECT_EQ(spec.config.seed, 7u);
    EXPECT_TRUE(spec.config.fast_capture);
    EXPECT_TRUE(spec.has_faults());
    ASSERT_EQ(spec.persons.size(), 1u);
    EXPECT_EQ(spec.persons[0].kind, sim::PersonSpec::Kind::kLine);
    ASSERT_EQ(spec.faults.schedule.size(), 1u);
    EXPECT_EQ(spec.faults.schedule[0].rx, 1);

    // Two independent parses of the same text replay bit for bit,
    // faults included -- the determinism every campaign leans on.
    engine::Engine a(engine::EngineConfig{}.with_fast_capture(true),
                     std::make_unique<engine::SimSource>(spec));
    engine::Engine b(engine::EngineConfig{}.with_fast_capture(true),
                     std::make_unique<engine::SimSource>(
                         sim::parse_scenario_text(kParityScenario, "again")));
    a.run();
    b.run();
    EXPECT_GT(a.frames_processed(), 0u);
    expect_same_track(a.tracker().track(), b.tracker().track());
    EXPECT_EQ(a.quality_stats().saturated_rx, b.quality_stats().saturated_rx);
    EXPECT_GT(a.quality_stats().rx_dropouts, 0u);
}

TEST(ScenarioFile, FaultFreeSpecAttachesNoInjector) {
    const auto spec = sim::parse_scenario_text(
        "person = still 0,5,0.9\nfast_capture = true\nduration_s = 0.5\n",
        "clean.scn");
    EXPECT_FALSE(spec.has_faults());
    EXPECT_EQ(sim::make_fault_injector(spec), nullptr);
    engine::SimSource source(spec);
    EXPECT_EQ(source.fault_injector(), nullptr);
}

TEST(ScenarioFile, MalformedInputsFailWithLineNumbers) {
    expect_parse_error("name = x\nbogus = 1\nperson = waypoints\n",
                       "scn:2: unknown key 'bogus'");
    expect_parse_error("duration_s = banana\n",
                       "scn:1: bad number for 'duration_s'");
    expect_parse_error("person = line 0,5,0.9\n",
                       "scn:1: usage: person = line x,y,z -> x,y,z");
    expect_parse_error("person = line 0,5 -> 1,5,0.9\n",
                       "scn:1: expected x,y,z coordinate");
    expect_parse_error("fault = gremlin 0 1\n",
                       "scn:1: unknown fault kind 'gremlin'");
    expect_parse_error("fault = dropout 2 1\n",
                       "scn:1: fault window needs 0 <= start_s < end_s");
    expect_parse_error("fault = dropout 0 1 rx=-3\n", "scn:1: 'rx'");
    expect_parse_error("fault_rates = dropout=1.5\n", "scn:1: hw fault spec");
    expect_parse_error("seed = 1\n", "scenario needs at least one 'person");
    expect_parse_error(
        "person = still 0,5,0.9\nperson = still 0,6,0.9\n"
        "person = still 0,7,0.9\n",
        "scn:3: at most two 'person' lines");
    EXPECT_THROW(sim::load_scenario_file("/nonexistent/campaign.scn"),
                 std::runtime_error);
}

TEST(ScenarioFile, FourRxDropoutKeepsContinuousTrack) {
    // The redundancy acceptance run: a 4-RX cross array loses antenna 3
    // for 0.6 s mid-walk. The localizer must fall back to the remaining
    // three lanes -- continuous track, no NaN, no teleport, bounded error
    // -- while the published confidence dips and then recovers.
    const auto spec = sim::parse_scenario_text(
        "name = four-rx-dropout\n"
        "seed = 11\n"
        "duration_s = 2.0\n"
        "fast_capture = true\n"
        "cross_array = true\n"
        "person = line -1,5,0.9 -> 1,5,0.9\n"
        "fault = dropout 0.8 1.4 rx=3\n",
        "four_rx.scn");
    auto source = std::make_unique<engine::SimSource>(spec);
    ASSERT_EQ(source->array().rx.size(), 4u);

    engine::Engine engine(engine::EngineConfig{}.with_fast_capture(true),
                          std::move(source));
    struct Sample {
        double time_s;
        double confidence;
        Vec3 position;
        double error_m;
    };
    std::vector<Sample> samples;
    engine.bus().subscribe<engine::TrackUpdateEvent>(
        [&](const engine::TrackUpdateEvent& event) {
            if (!event.smoothed || !event.truth) return;
            const Vec3 p = event.smoothed->position;
            const Vec3 t = event.truth->position;
            const double err = std::sqrt((p.x - t.x) * (p.x - t.x) +
                                         (p.y - t.y) * (p.y - t.y) +
                                         (p.z - t.z) * (p.z - t.z));
            samples.push_back({event.time_s, event.confidence, p, err});
        });
    engine.run();
    EXPECT_GT(engine.quality_stats().rx_dropouts, 0u);

    std::size_t in_window = 0;
    double min_conf_in_window = 1.0;
    double max_error = 0.0;
    double last_conf = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        ASSERT_TRUE(std::isfinite(s.position.x) &&
                    std::isfinite(s.position.y) &&
                    std::isfinite(s.position.z))
            << "NaN position at t=" << s.time_s;
        if (i > 0) {
            const Vec3& prev = samples[i - 1].position;
            const double step = std::sqrt(
                (s.position.x - prev.x) * (s.position.x - prev.x) +
                (s.position.y - prev.y) * (s.position.y - prev.y) +
                (s.position.z - prev.z) * (s.position.z - prev.z));
            EXPECT_LT(step, 0.5) << "teleport at t=" << s.time_s;
        }
        if (s.time_s >= 0.8 && s.time_s < 1.4) {
            ++in_window;
            if (s.confidence < min_conf_in_window)
                min_conf_in_window = s.confidence;
        }
        if (s.error_m > max_error) max_error = s.error_m;
        last_conf = s.confidence;
    }
    // The track never pauses: the dropout window is fully covered.
    EXPECT_GT(in_window, 40u);
    EXPECT_LT(max_error, 2.0);
    // Confidence dips with the dead lane (3 of 4 healthy = 0.75) and
    // recovers once the antenna comes back.
    EXPECT_LE(min_conf_in_window, 0.8);
    EXPECT_EQ(last_conf, 1.0);
}

// ------------------------------------------------------------- watchdog

TEST(Watchdog, RestartsUnhealthySessionWithoutDisturbingSiblings) {
    // Antenna 0 is dead for the first 0.5 s (40 frames): well below a 0.9
    // health threshold, so the watchdog checkpoint-restarts the session in
    // place -- same id -- until the hardware recovers; because every
    // restart resumes bit-identically, the final track equals an
    // uninterrupted faulted run, and the pristine sibling never notices.
    hw::FaultConfig faults;
    faults.schedule.push_back(
        {hw::FaultWindow::Kind::kDropout, 0.0, 0.5, 0, 1.0});
    const auto make_faulted = [&faults]() {
        return std::unique_ptr<engine::FrameSource>(
            faulted_source(601, faults, 1.5));
    };

    engine::Engine faulted_reference(walk_config(601), make_faulted());
    faulted_reference.run();
    engine::Engine sibling_reference(
        walk_config(602), std::make_unique<engine::SimSource>(
                              walk_config(602), walk_script(1.5)));
    sibling_reference.run();

    engine::EngineHost host(engine::HostConfig{}
                                .with_health_threshold(0.9)
                                .with_health_window(16)
                                .with_max_restarts(5));
    const auto shaky =
        host.admit_restartable("shaky", walk_config(601), make_faulted);
    const auto sibling = host.admit(
        "calm", walk_config(602),
        std::make_unique<engine::SimSource>(walk_config(602),
                                            walk_script(1.5)));
    host.run();

    EXPECT_EQ(host.state(shaky), engine::SessionState::kFinished);
    EXPECT_EQ(host.state(sibling), engine::SessionState::kFinished);
    EXPECT_GE(host.sessions_restarted(), 1u);

    const auto health = host.session_health();
    ASSERT_EQ(health.size(), 2u);
    const auto& shaky_health = health[0].name == "shaky" ? health[0] : health[1];
    const auto& calm_health = health[0].name == "calm" ? health[0] : health[1];
    EXPECT_GE(shaky_health.restarts, 1u);
    EXPECT_LE(shaky_health.restarts, 5u);
    EXPECT_EQ(calm_health.restarts, 0u);
    // Exactly 40 frames (t in [0, 0.5) at 12.5 ms/frame) lost lane 0, and
    // the cumulative ledger survives every restart.
    EXPECT_EQ(shaky_health.quality.rx_dropouts, 40u);
    EXPECT_EQ(calm_health.quality.degraded_frames, 0u);

    expect_same_track(faulted_reference.tracker().track(),
                      host.session(shaky)->tracker().track());
    expect_same_track(sibling_reference.tracker().track(),
                      host.session(sibling)->tracker().track());

    const auto stats = host.take_fleet_stats();
    EXPECT_EQ(stats.sessions_restarted, host.sessions_restarted());
    EXPECT_EQ(stats.quality.rx_dropouts, 40u);
    EXPECT_GT(stats.quality.frames, 0u);
}

TEST(Watchdog, EvictsAfterMaxRestartsWhenHealthNeverRecovers) {
    // A permanently dead antenna keeps every window below the threshold:
    // after max_restarts the watchdog stops thrashing and evicts.
    hw::FaultConfig faults;
    faults.schedule.push_back({hw::FaultWindow::Kind::kDropout, 0.0,
                               std::numeric_limits<double>::infinity(), 0,
                               1.0});
    const auto make_faulted = [&faults]() {
        return std::unique_ptr<engine::FrameSource>(
            faulted_source(603, faults, 2.0));
    };
    engine::EngineHost host(engine::HostConfig{}
                                .with_health_threshold(0.9)
                                .with_health_window(8)
                                .with_max_restarts(2));
    const auto id =
        host.admit_restartable("doomed", walk_config(603), make_faulted);
    host.run();
    EXPECT_EQ(host.state(id), engine::SessionState::kEvicted);
    EXPECT_EQ(host.sessions_restarted(), 2u);
}

TEST(Watchdog, DisabledThresholdStillTracksHealth) {
    engine::EngineHost host;  // health_threshold = 0: watchdog off
    const auto id = host.admit(
        "observed", walk_config(604),
        faulted_source(604, mixed_faults(55), 1.0));
    host.run();
    EXPECT_EQ(host.state(id), engine::SessionState::kFinished);
    EXPECT_EQ(host.sessions_restarted(), 0u);
    const auto health = host.session_health();
    ASSERT_EQ(health.size(), 1u);
    EXPECT_GT(health[0].quality.degraded_frames, 0u);
    EXPECT_LT(health[0].recent_health, 1.0);
    EXPECT_TRUE(health[0].degraded);
    EXPECT_EQ(health[0].restarts, 0u);
}

}  // namespace
}  // namespace witrack
