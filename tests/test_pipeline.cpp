// Core pipeline unit tests: range FFT, background subtraction (both modes),
// contour tracking, TOF denoising, and the localizer stage -- each exercised
// on synthetic inputs with known answers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "core/background.hpp"
#include "core/contour.hpp"
#include "core/denoise.hpp"
#include "core/localize.hpp"
#include "core/range_fft.hpp"
#include "core/tof.hpp"
#include "geom/array_geometry.hpp"
#include "hw/mixer.hpp"

namespace witrack::core {
namespace {

using geom::Vec3;

PipelineConfig test_config() {
    PipelineConfig config;
    return config;
}

/// Synthesize a sweep containing one echo at the given round trip.
std::vector<double> sweep_with_echo(const FmcwParams& fmcw, double round_trip_m,
                                    double amplitude = 1.0) {
    hw::DechirpMixer mixer(fmcw);
    rf::PropagationPath path;
    path.round_trip_m = round_trip_m;
    path.amplitude = amplitude;
    return mixer.synthesize({&path, 1});
}

/// Pack loose sweeps into a single-antenna FrameBuffer and run the
/// processor over it (FrameBuffer is the only ingestion type).
RangeProfile process_sweeps(SweepProcessor& processor,
                            const std::vector<std::vector<double>>& sweeps) {
    FrameBuffer frame(1, sweeps.size(), sweeps.front().size());
    for (std::size_t s = 0; s < sweeps.size(); ++s) {
        auto dst = frame.sweep(0, s);
        std::copy(sweeps[s].begin(), sweeps[s].end(), dst.begin());
    }
    RangeProfile profile;
    processor.process_into(frame.antenna(0), frame.num_sweeps(), profile);
    return profile;
}

// -------------------------------------------------------------- range FFT

TEST(RangeFft, PeakAtEchoDistance) {
    const auto config = test_config();
    SweepProcessor processor(config.fmcw, config.window, config.fft_size);
    const auto profile = process_sweeps(processor, {sweep_with_echo(config.fmcw, 12.0)});
    std::size_t best = 1;
    for (std::size_t k = 2; k < profile.usable_bins; ++k)
        if (std::abs(profile.bin(k)) > std::abs(profile.bin(best))) best = k;
    EXPECT_NEAR(profile.round_trip_of_bin(static_cast<double>(best)), 12.0,
                profile.bin_round_trip_m);
}

TEST(RangeFft, AveragingReducesNoiseButKeepsSignal) {
    const auto config = test_config();
    SweepProcessor processor(config.fmcw, config.window, config.fft_size);
    witrack::Rng rng(1);
    auto noisy_sweep = [&] {
        auto s = sweep_with_echo(config.fmcw, 10.0, 0.01);
        for (auto& v : s) v += rng.gaussian(0.05);
        return s;
    };
    const auto one = process_sweeps(processor, {noisy_sweep()});
    const auto five = process_sweeps(
        processor,
        {noisy_sweep(), noisy_sweep(), noisy_sweep(), noisy_sweep(), noisy_sweep()});
    auto peak_to_floor = [&](const RangeProfile& p) {
        const auto bin = static_cast<std::size_t>(p.bin_of_round_trip(10.0) + 0.5);
        double floor = 0.0;
        std::size_t n = 0;
        for (std::size_t k = 50; k < p.usable_bins; ++k) {
            if (k + 30 > bin && k < bin + 30) continue;
            floor += std::abs(p.bin(k));
            ++n;
        }
        return std::abs(p.bin(bin)) / (floor / static_cast<double>(n));
    };
    EXPECT_GT(peak_to_floor(five), 1.5 * peak_to_floor(one));
}

TEST(RangeFft, PaperLiteralModeUsesSweepLength) {
    const auto config = test_config();
    SweepProcessor processor(config.fmcw, config.window, 0);
    const auto profile = process_sweeps(processor, {sweep_with_echo(config.fmcw, 8.0)});
    // r2c half-spectrum contract: usable_bins + 1 bins (DC..Nyquist).
    EXPECT_EQ(profile.usable_bins, config.fmcw.samples_per_sweep() / 2);
    EXPECT_EQ(profile.spectrum_size(), profile.usable_bins + 1);
    EXPECT_NEAR(profile.bin_round_trip_m, config.fmcw.round_trip_bin_m(), 1e-12);
}

TEST(RangeFft, RejectsBadInput) {
    const auto config = test_config();
    SweepProcessor processor(config.fmcw, config.window, config.fft_size);
    RangeProfile out;
    EXPECT_THROW(processor.process_into({}, 0, out), std::invalid_argument);
    const std::vector<double> short_sweep(7, 0.0);
    EXPECT_THROW(processor.process_into(short_sweep, 1, out),
                 std::invalid_argument);
    EXPECT_THROW(SweepProcessor(config.fmcw, config.window, 64),
                 std::invalid_argument);  // smaller than the sweep
}

// ------------------------------------------------------------- background

TEST(Background, FrameDiffRemovesStaticKeepsMoving) {
    const auto config = test_config();
    SweepProcessor processor(config.fmcw, config.window, config.fft_size);
    BackgroundSubtractor subtractor;

    // Static reflector at 6 m in every frame; "person" moves 10 -> 10.5 m.
    hw::DechirpMixer mixer(config.fmcw);
    auto frame_at = [&](double person_rt) {
        std::vector<rf::PropagationPath> paths(2);
        paths[0].round_trip_m = 6.0;
        paths[0].amplitude = 1.0;
        paths[1].round_trip_m = person_rt;
        paths[1].amplitude = 0.05;
        return process_sweeps(processor, {mixer.synthesize(paths)});
    };

    EXPECT_TRUE(subtractor.subtract(frame_at(10.0)).empty());  // first frame
    const auto diff = subtractor.subtract(frame_at(10.5));
    ASSERT_FALSE(diff.empty());

    const auto profile = frame_at(10.5);
    const auto static_bin =
        static_cast<std::size_t>(profile.bin_of_round_trip(6.0) + 0.5);
    const auto person_bin =
        static_cast<std::size_t>(profile.bin_of_round_trip(10.3) + 0.5);
    // The moving echo's differenced energy dwarfs the static residue.
    double person_peak = 0.0, static_peak = 0.0;
    for (std::size_t k = person_bin - 8; k < person_bin + 8; ++k)
        person_peak = std::max(person_peak, diff[k]);
    for (std::size_t k = static_bin - 4; k < static_bin + 4; ++k)
        static_peak = std::max(static_peak, diff[k]);
    EXPECT_GT(person_peak, 50.0 * static_peak);
}

TEST(Background, StaticTrainingKeepsStaticPerson) {
    const auto config = test_config();
    SweepProcessor processor(config.fmcw, config.window, config.fft_size);
    BackgroundSubtractor subtractor(BackgroundMode::kStaticTraining);

    hw::DechirpMixer mixer(config.fmcw);
    auto scene_profile = [&](bool with_person) {
        std::vector<rf::PropagationPath> paths;
        rf::PropagationPath clutter;
        clutter.round_trip_m = 6.0;
        clutter.amplitude = 1.0;
        paths.push_back(clutter);
        if (with_person) {
            rf::PropagationPath person;
            person.round_trip_m = 11.0;
            person.amplitude = 0.05;
            paths.push_back(person);
        }
        return process_sweeps(processor, {mixer.synthesize(paths)});
    };

    for (int i = 0; i < 10; ++i) subtractor.train(scene_profile(false));
    const auto diff = subtractor.subtract(scene_profile(true));
    ASSERT_FALSE(diff.empty());
    const auto profile = scene_profile(true);
    const auto person_bin =
        static_cast<std::size_t>(profile.bin_of_round_trip(11.0) + 0.5);
    const auto clutter_bin =
        static_cast<std::size_t>(profile.bin_of_round_trip(6.0) + 0.5);
    // The *static* person survives (frame differencing would erase him).
    EXPECT_GT(diff[person_bin], 20.0 * diff[clutter_bin]);
}

TEST(Background, TrainRequiresTrainingMode) {
    BackgroundSubtractor subtractor(BackgroundMode::kFrameDiff);
    RangeProfile profile;
    profile.re.assign(64, 0.0);
    profile.im.assign(64, 0.0);
    profile.usable_bins = 32;
    EXPECT_THROW(subtractor.train(profile), std::logic_error);
}

// ---------------------------------------------------------------- contour

std::vector<double> flat_profile(std::size_t bins, double floor) {
    return std::vector<double>(bins, floor);
}

TEST(Contour, PicksClosestStrongPeakNotStrongest) {
    const auto config = test_config();
    ContourTracker tracker(config);
    auto mag = flat_profile(2048, 1.0);
    const double bin_m = 0.108;
    // Multipath at bin 180 is stronger; direct path at bin 120 is closer.
    mag[120] = 8.0;
    mag[180] = 20.0;
    const auto point = tracker.extract(mag, bin_m);
    ASSERT_TRUE(point.detected);
    EXPECT_NEAR(point.round_trip_m, 120 * bin_m, bin_m);
    const auto strongest = tracker.extract_strongest(mag, bin_m);
    EXPECT_NEAR(strongest.round_trip_m, 180 * bin_m, bin_m);
}

TEST(Contour, IgnoresSubThresholdBumps) {
    const auto config = test_config();
    ContourTracker tracker(config);
    auto mag = flat_profile(2048, 1.0);
    mag[90] = 3.0;   // below 5x floor
    mag[200] = 9.0;  // above
    const auto point = tracker.extract(mag, 0.108);
    ASSERT_TRUE(point.detected);
    EXPECT_NEAR(point.round_trip_m, 200 * 0.108, 0.2);
}

TEST(Contour, NoDetectionOnNoise) {
    const auto config = test_config();
    ContourTracker tracker(config);
    witrack::Rng rng(2);
    auto mag = flat_profile(2048, 0.0);
    for (auto& v : mag) v = std::abs(rng.gaussian(1.0));
    const auto point = tracker.extract(mag, 0.108);
    EXPECT_FALSE(point.detected);
}

TEST(Contour, RespectsRangeWindow) {
    auto config = test_config();
    config.min_round_trip_m = 5.0;
    ContourTracker tracker(config);
    auto mag = flat_profile(2048, 1.0);
    mag[10] = 100.0;  // inside the excluded leakage region (1.08 m)
    mag[100] = 10.0;  // 10.8 m: valid
    const auto point = tracker.extract(mag, 0.108);
    ASSERT_TRUE(point.detected);
    EXPECT_NEAR(point.round_trip_m, 100 * 0.108, 0.2);
}

TEST(Contour, MultiPeakReturnsClosestFirst) {
    const auto config = test_config();
    ContourTracker tracker(config);
    auto mag = flat_profile(2048, 1.0);
    mag[100] = 9.0;
    mag[150] = 12.0;
    mag[220] = 10.0;
    const auto peaks = tracker.extract_peaks(mag, 0.108, 3);
    ASSERT_EQ(peaks.size(), 3u);
    EXPECT_LT(peaks[0].round_trip_m, peaks[1].round_trip_m);
    EXPECT_LT(peaks[1].round_trip_m, peaks[2].round_trip_m);
}

TEST(Contour, ExtentSeparatesArmFromBody) {
    const auto config = test_config();
    ContourTracker tracker(config);
    const double bin_m = 0.108;
    // Arm: one narrow blob. Body: energy spread over ~2 m of bins.
    auto arm = flat_profile(2048, 1.0);
    for (int k = 118; k <= 122; ++k) arm[k] = 10.0;
    auto body = flat_profile(2048, 1.0);
    for (int k = 100; k <= 140; ++k) body[k] = 10.0;
    const auto arm_point = tracker.extract(arm, bin_m);
    const auto body_point = tracker.extract(body, bin_m);
    ASSERT_TRUE(arm_point.detected);
    ASSERT_TRUE(body_point.detected);
    EXPECT_LT(arm_point.extent_m, 0.5 * body_point.extent_m);
}

TEST(Contour, GatedSearchFindsWeakEchoNearPrediction) {
    const auto config = test_config();
    ContourTracker tracker(config);
    auto mag = flat_profile(2048, 1.0);
    mag[150] = 3.0;  // below the global threshold (5x floor)
    const auto global = tracker.extract(mag, 0.108);
    EXPECT_FALSE(global.detected);
    const auto gated = tracker.extract_near(mag, 0.108, 150 * 0.108, 0.7, 0.5);
    ASSERT_TRUE(gated.detected);
    EXPECT_NEAR(gated.round_trip_m, 150 * 0.108, 0.2);
}

TEST(Contour, GateClipsToLowBandEdge) {
    // Prediction near the band's low edge (min_round_trip_m = 2.0 -> bin
    // 18 at 0.108 m/bin): the gate clamps to the usable band, so leakage
    // bins below it can never win even when they dwarf the real echo.
    const auto config = test_config();
    ContourTracker tracker(config);
    auto mag = flat_profile(2048, 1.0);
    mag[5] = 1000.0;  // TX leakage inside the unclipped gate window
    mag[20] = 3.0;    // the person, just inside the band
    const auto gated = tracker.extract_near(mag, 0.108, 2.2, 0.7, 0.5);
    ASSERT_TRUE(gated.detected);
    EXPECT_NEAR(gated.round_trip_m, 20 * 0.108, 0.2);
}

TEST(Contour, GateClipsToHighBandEdge) {
    // Prediction beyond max_round_trip_m (28.0 -> last usable bin 259):
    // the gate clamps to the band's top; a monster peak past the band is
    // never considered, and an in-band echo at the clipped edge still is.
    const auto config = test_config();
    ContourTracker tracker(config);
    auto mag = flat_profile(2048, 1.0);
    mag[258] = 3.0;    // weak echo at the top of the band
    mag[262] = 1000.0; // inside the unclipped gate, beyond max_round_trip_m
    const auto gated = tracker.extract_near(mag, 0.108, 27.9, 0.7, 0.5);
    ASSERT_TRUE(gated.detected);
    EXPECT_NEAR(gated.round_trip_m, 258 * 0.108, 0.2);
}

TEST(Contour, GateFullyOutsideBandDoesNotDetect) {
    const auto config = test_config();
    ContourTracker tracker(config);
    auto mag = flat_profile(2048, 1.0);
    mag[5] = 1000.0;  // only energy sits below the band
    // Prediction so far below min_round_trip_m that the clamped window is
    // empty: no detection, no out-of-band read.
    const auto gated = tracker.extract_near(mag, 0.108, 0.5, 0.5, 0.5);
    EXPECT_FALSE(gated.detected);
}

TEST(Contour, GateAllBinsBelowThresholdReportsFloorOnly) {
    const auto config = test_config();
    ContourTracker tracker(config);
    const auto mag = flat_profile(2048, 1.0);  // nothing above 0.5 * 5x floor
    const auto gated = tracker.extract_near(mag, 0.108, 10.0, 0.7, 0.5);
    EXPECT_FALSE(gated.detected);
    EXPECT_GT(gated.noise_floor, 0.0);  // the floor is still measured
    EXPECT_EQ(gated.power, 0.0);
}

TEST(Contour, GateRelaxFactorScalesTheThreshold) {
    // Echo at 3x floor: the global threshold is 5x, so detection hinges on
    // relax -- 0.5 (threshold 2.5) finds it, 0.8 (threshold 4.0) does not.
    const auto config = test_config();
    ContourTracker tracker(config);
    auto mag = flat_profile(2048, 1.0);
    mag[150] = 3.0;
    EXPECT_TRUE(tracker.extract_near(mag, 0.108, 150 * 0.108, 0.7, 0.5).detected);
    EXPECT_FALSE(tracker.extract_near(mag, 0.108, 150 * 0.108, 0.7, 0.8).detected);
}

TEST(Contour, SubEightBinProfilesNeverDetect) {
    // Profiles below the 8-bin minimum: every entry point returns "no
    // detection" (or nothing) instead of reading a degenerate band.
    const auto config = test_config();
    ContourTracker tracker(config);
    for (std::size_t bins = 0; bins < 8; ++bins) {
        const auto mag = flat_profile(bins, 100.0);
        EXPECT_FALSE(tracker.extract(mag, 0.108).detected) << bins;
        EXPECT_FALSE(tracker.extract_strongest(mag, 0.108).detected) << bins;
        EXPECT_FALSE(tracker.extract_near(mag, 0.108, 0.3, 0.5).detected) << bins;
        EXPECT_TRUE(tracker.extract_peaks(mag, 0.108, 3).empty()) << bins;
    }
}

TEST(Contour, StrongestAllBelowThresholdReportsFloorOnly) {
    const auto config = test_config();
    ContourTracker tracker(config);
    const auto mag = flat_profile(2048, 1.0);
    const auto point = tracker.extract_strongest(mag, 0.108);
    EXPECT_FALSE(point.detected);
    EXPECT_GT(point.noise_floor, 0.0);
}

// ---------------------------------------------------------------- denoise

ContourPoint detection(double round_trip) {
    ContourPoint p;
    p.detected = true;
    p.round_trip_m = round_trip;
    p.power = 10.0;
    p.noise_floor = 1.0;
    return p;
}

TEST(Denoise, HoldsThroughSilence) {
    const auto config = test_config();
    TofDenoiser denoiser(config);
    denoiser.update(detection(8.0), 0.0125);
    // Person stops: no detections for a while (interpolation, Section 4.4).
    for (int i = 0; i < 100; ++i) {
        const auto value = denoiser.update(ContourPoint{}, 0.0125);
        ASSERT_TRUE(value.has_value());
        EXPECT_NEAR(*value, 8.0, 0.2);
    }
}

TEST(Denoise, RejectsImpossibleJump) {
    const auto config = test_config();
    TofDenoiser denoiser(config);
    denoiser.update(detection(8.0), 0.0125);
    const auto value = denoiser.update(detection(14.0), 0.0125);  // 6 m jump
    ASSERT_TRUE(value.has_value());
    EXPECT_NEAR(*value, 8.0, 0.2);
    EXPECT_EQ(denoiser.outlier_streak(), 1u);
}

TEST(Denoise, ReacquiresAfterPersistentJump) {
    const auto config = test_config();
    TofDenoiser denoiser(config);
    denoiser.update(detection(8.0), 0.0125);
    std::optional<double> value;
    for (std::size_t i = 0; i <= config.reacquire_frames; ++i)
        value = denoiser.update(detection(14.0), 0.0125);
    ASSERT_TRUE(value.has_value());
    EXPECT_NEAR(*value, 14.0, 0.3);
}

TEST(Denoise, SmoothsJitter) {
    const auto config = test_config();
    TofDenoiser denoiser(config);
    witrack::Rng rng(3);
    double max_dev = 0.0;
    for (int i = 0; i < 400; ++i) {
        const auto v = denoiser.update(detection(10.0 + rng.gaussian(0.15)), 0.0125);
        if (i > 50) max_dev = std::max(max_dev, std::abs(*v - 10.0));
    }
    EXPECT_LT(max_dev, 0.15);  // filtered excursions stay below raw sigma
}

TEST(Denoise, TracksWalkingSpeedRamp) {
    const auto config = test_config();
    TofDenoiser denoiser(config);
    double rt = 6.0;
    std::optional<double> value;
    for (int i = 0; i < 400; ++i) {
        rt += 2.0 * 1.0 * 0.0125;  // walking away at 1 m/s (round trip 2x)
        value = denoiser.update(detection(rt), 0.0125);
    }
    ASSERT_TRUE(value.has_value());
    EXPECT_NEAR(*value, rt, 0.1);
}

// --------------------------------------------------------------- localize

TEST(Localize, CompensatesSurfaceDepth) {
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    auto config = test_config();
    config.surface_depth_m = 0.11;
    Localizer localizer(array, config);

    // Round trips to the body *surface*; the centre is 11 cm deeper.
    const Vec3 surface{0.0, 5.0, 1.0};
    std::vector<double> rts;
    for (const auto& rx : array.rx)
        rts.push_back(surface.distance_to(array.tx) + surface.distance_to(rx));
    const auto point = localizer.locate_round_trips(rts, 0.0, true);
    ASSERT_TRUE(point.has_value());
    EXPECT_NEAR(point->position.y, 5.11, 0.02);

    const auto raw = localizer.locate_round_trips(rts, 0.0, false);
    EXPECT_NEAR(raw->position.y, 5.0, 0.01);
}

TEST(Localize, RequiresAllAntennas) {
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    Localizer localizer(array, test_config());
    TofFrame frame;
    frame.antennas.resize(3);
    frame.antennas[0].denoised_m = 10.0;
    frame.antennas[1].denoised_m = 10.1;
    // antenna 2 missing
    EXPECT_FALSE(localizer.locate(frame).has_value());
}

TEST(Localize, ClampsElevationToPhysicalBand) {
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    Localizer localizer(array, test_config());
    // Inconsistent distances drive z far negative; the clamp keeps it sane.
    const auto point = localizer.locate_round_trips({9.0, 9.0, 10.8}, 0.0, false);
    ASSERT_TRUE(point.has_value());
    EXPECT_GE(point->position.z, 0.0);
}

}  // namespace
}  // namespace witrack::core
