// Engine integration tests: the quickstart scenario reproduced purely via
// Engine + event subscriptions, event-driven fall and pointing detection on
// scripted motions, engine-vs-hand-wired parity, the replay format's
// bit-identical round trip, per-stage latency accounting, and the bounded
// history knobs (tracker track cap, fall-monitor alert ring).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/appliances.hpp"
#include "apps/fall_monitor.hpp"
#include "common/units.hpp"
#include "dsp/stats.hpp"
#include "engine/engine.hpp"
#include "engine/live_source.hpp"
#include "engine/plugins.hpp"
#include "engine/replay.hpp"
#include "engine/sim_source.hpp"
#include "hw/frontend.hpp"

namespace witrack {
namespace {

using geom::Vec3;

std::string temp_recording_path(const char* name) {
    return testing::TempDir() + name;
}

// --------------------------------------------------------- quickstart

TEST(Engine, QuickstartScenarioViaEventsOnly) {
    // The through-wall tracking experiment driven exclusively through the
    // new API: no direct Scenario -> tracker wiring anywhere.
    engine::EngineConfig config;
    config.with_through_wall(true).with_fast_capture(true).with_seed(21);

    const auto env = sim::make_through_wall_lab();
    engine::Engine eng(config, std::make_unique<engine::SimSource>(
                                   config, std::make_unique<sim::RandomWaypointWalk>(
                                               env.bounds, 20.0, Rng(101).fork(1))));

    std::vector<double> ex, ey, ez;
    eng.bus().subscribe<engine::TrackUpdateEvent>(
        [&](const engine::TrackUpdateEvent& event) {
            if (!event.smoothed || event.time_s < 2.0) return;
            ASSERT_TRUE(event.truth.has_value());
            const Vec3 est = event.smoothed->position;
            const Vec3 truth = event.truth->position;
            ex.push_back(std::abs(est.x - truth.x));
            ey.push_back(std::abs(est.y - truth.y));
            ez.push_back(std::abs(est.z - truth.z));
        });

    const std::size_t frames = eng.run();
    EXPECT_EQ(frames, eng.frames_processed());
    EXPECT_EQ(frames, eng.tracker().frames_processed());
    ASSERT_GT(ex.size(), 500u);
    // Paper medians (through wall): 13.1 / 10.25 / 21.0 cm; same headroom
    // as the hand-wired integration test.
    EXPECT_LT(dsp::median(ex), 0.25);
    EXPECT_LT(dsp::median(ey), 0.25);
    EXPECT_LT(dsp::median(ez), 0.40);
}

TEST(Engine, MatchesHandWiredTrackerBitForBit) {
    // The Engine is plumbing, not processing: its smoothed track must be
    // bit-identical to a hand-wired Scenario -> WiTrackTracker loop.
    auto make_config = [] {
        engine::EngineConfig config;
        config.with_fast_capture(true).with_seed(99);
        return config;
    };
    auto make_script = [] {
        return std::make_unique<sim::LineWalkScript>(Vec3{-1, 5, 0}, Vec3{1, 5, 0},
                                                     2.0, 1.0);
    };

    // Engine run.
    auto config = make_config();
    engine::Engine eng(config,
                       std::make_unique<engine::SimSource>(config, make_script()));
    eng.run();

    // Hand-wired run over an identical scenario.
    sim::Scenario scenario(engine::make_scenario_config(make_config()), make_script());
    core::WiTrackTracker tracker(config.pipeline_config(), scenario.array());
    sim::Scenario::Frame frame;
    while (scenario.next(frame)) tracker.process_frame(frame.sweeps, frame.time_s);

    const auto& a = eng.tracker().track();
    const auto& b = tracker.track();
    ASSERT_GT(a.size(), 50u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].position.x, b[i].position.x);
        EXPECT_EQ(a[i].position.y, b[i].position.y);
        EXPECT_EQ(a[i].position.z, b[i].position.z);
    }
}

// ------------------------------------------------------------- fall events

TEST(Engine, FallEventFiresOnScriptedFallOnly) {
    auto run_activity = [](sim::ActivityKind kind, std::uint64_t script_seed) {
        const auto env = sim::make_through_wall_lab();
        engine::EngineConfig config;
        config.with_fast_capture(true).with_seed(71);
        engine::Engine eng(
            config, std::make_unique<engine::SimSource>(
                        config, std::make_unique<sim::ActivityScript>(
                                    kind, env.bounds, Rng(script_seed), 24.0)));
        eng.emplace_stage<engine::FallMonitorStage>();
        std::vector<engine::FallEvent> events;
        eng.bus().subscribe<engine::FallEvent>(
            [&](const engine::FallEvent& event) { events.push_back(event); });
        eng.run();
        return events;
    };

    // The scripted fall raises exactly one alert, stamped mid-episode.
    const auto fall_events = run_activity(sim::ActivityKind::kFall, 6);
    ASSERT_EQ(fall_events.size(), 1u);
    EXPECT_LT(fall_events[0].analysis.final_elevation_m, 0.45);
    EXPECT_GT(fall_events[0].time_s, 0.0);

    // Sitting down on a chair stays quiet.
    const auto sit_events = run_activity(sim::ActivityKind::kSitChair, 4);
    EXPECT_TRUE(sit_events.empty());
}

// --------------------------------------------------------- pointing events

TEST(Engine, StagesFinishOnlyOnce) {
    // A second run() (or run() after a manual step() loop) must not
    // re-publish episode events.
    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(81);
    engine::Engine eng(
        config,
        std::make_unique<engine::SimSource>(
            config, std::make_unique<sim::PointingScript>(
                        Vec3{0.5, 4.5, 0}, Vec3{0.5, 0.7, 0.2}.normalized(), Rng(5))));
    eng.emplace_stage<engine::PointingStage>();

    std::size_t events = 0;
    eng.bus().subscribe<engine::PointingEvent>(
        [&](const engine::PointingEvent&) { ++events; });
    eng.run();
    ASSERT_EQ(events, 1u);
    eng.run();  // source exhausted: no frames, and no duplicate finish
    EXPECT_EQ(events, 1u);
}

TEST(Engine, PointingEventRecoversDirection) {
    engine::EngineConfig config;
    config.with_fast_capture(true).with_through_wall(true).with_seed(81);

    const Vec3 stand{0.5, 4.5, 0};
    const Vec3 truth_dir = Vec3{0.5, 0.7, 0.2}.normalized();
    engine::Engine eng(config, std::make_unique<engine::SimSource>(
                                   config, std::make_unique<sim::PointingScript>(
                                               stand, truth_dir, Rng(5))));
    eng.emplace_stage<engine::PointingStage>();

    std::vector<engine::PointingEvent> events;
    eng.bus().subscribe<engine::PointingEvent>(
        [&](const engine::PointingEvent& event) { events.push_back(event); });
    eng.run();

    ASSERT_EQ(events.size(), 1u);
    const double err_deg =
        rad_to_deg(geom::angle_between(events[0].pointing.direction, truth_dir));
    EXPECT_LT(err_deg, 50.0);  // single-seed tolerance, as in the old test
}

TEST(Engine, PointingEventDrivesApplianceController) {
    // The known-good actuation geometry of the hand-wired integration test,
    // now composed purely over the event bus.
    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(92);

    const Vec3 stand{0.0, 5.0, 0};
    const Vec3 lamp_pos{2.0, 7.5, 1.2};
    const Vec3 dir = (lamp_pos - Vec3{stand.x, stand.y, 1.3}).normalized();
    engine::Engine eng(config, std::make_unique<engine::SimSource>(
                                   config, std::make_unique<sim::PointingScript>(
                                               stand, dir, Rng(7))));
    eng.emplace_stage<engine::PointingStage>();

    apps::ApplianceRegistry registry(deg_to_rad(35.0));
    registry.add("lamp", lamp_pos);
    registry.add("screen", {-2.5, 6.0, 1.0});  // far off the pointing ray
    apps::InsteonDriver driver;
    const auto& controller =
        eng.emplace_stage<engine::ApplianceController>(registry, driver);
    eng.run();

    // The PointingEvent drove the controller, which toggled the lamp.
    ASSERT_TRUE(controller.last_actuated().has_value());
    EXPECT_EQ(*controller.last_actuated(), "lamp");
    ASSERT_EQ(driver.log().size(), 1u);
    EXPECT_EQ(driver.log()[0].device, "lamp");
    EXPECT_TRUE(driver.log()[0].turn_on);
}

// ------------------------------------------------------ multi-person events

TEST(Engine, PersonsEventsCarryTwoPeopleWithTruth) {
    engine::EngineConfig config;
    config.with_fast_capture(true)
        .with_second_person(true)
        .with_seed(93)
        .with_contour_peaks(3);

    engine::Engine eng(
        config,
        std::make_unique<engine::SimSource>(
            config,
            std::make_unique<sim::LineWalkScript>(Vec3{-2.0, 4, 0},
                                                  Vec3{-0.5, 6.5, 0}, 6.0, 1.0),
            std::make_unique<sim::LineWalkScript>(Vec3{2.0, 6.5, 0},
                                                  Vec3{0.8, 4.0, 0}, 6.0, 1.0)));
    eng.emplace_stage<engine::MultiPersonStage>(2);

    std::size_t events = 0, with_two = 0;
    eng.bus().subscribe<engine::PersonsEvent>([&](const engine::PersonsEvent& event) {
        ++events;
        ASSERT_TRUE(event.truth.has_value());
        ASSERT_TRUE(event.truth->position2.has_value());
        if (event.people.size() == 2) ++with_two;
    });
    eng.run();

    EXPECT_EQ(events, eng.frames_processed());
    EXPECT_GT(with_two, events / 2);
}

TEST(Engine, MultiPersonStageRequiresMultiPeakConfig) {
    engine::EngineConfig config;
    config.with_fast_capture(true);  // contour_peaks left at 1
    engine::Engine eng(config,
                       std::make_unique<engine::SimSource>(
                           config, std::make_unique<sim::StandStillScript>(
                                       Vec3{0, 5, 0}, 1.0)));
    EXPECT_THROW(eng.emplace_stage<engine::MultiPersonStage>(2),
                 std::invalid_argument);
}

// ------------------------------------------------------------------ replay

TEST(Engine, ReplayRoundTripIsBitIdentical) {
    const std::string path = temp_recording_path("witrack_roundtrip.wtrk");

    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(123);
    engine::SimSource live(config, std::make_unique<sim::LineWalkScript>(
                                       Vec3{-1, 5, 0}, Vec3{1, 5, 0}, 2.0, 1.0));

    // Live pass: track and record every frame.
    core::WiTrackTracker live_tracker(config.pipeline_config(), live.array());
    std::vector<engine::GroundTruth> live_truths;
    {
        engine::Recorder recorder(path, live.fmcw(), live.array());
        engine::Frame frame;
        while (live.next(frame)) {
            live_tracker.process_frame(frame.sweeps, frame.time_s);
            recorder.write(frame);
            ASSERT_TRUE(frame.truth.has_value());
            live_truths.push_back(*frame.truth);
        }
        EXPECT_GT(recorder.frames_written(), 100u);
    }

    // Replay pass: the recording is self-contained (fmcw + geometry).
    engine::ReplaySource replay(path);
    EXPECT_EQ(replay.fmcw().samples_per_sweep(), live.fmcw().samples_per_sweep());
    ASSERT_EQ(replay.array().rx.size(), live.array().rx.size());
    for (std::size_t i = 0; i < replay.array().rx.size(); ++i) {
        EXPECT_EQ(replay.array().rx[i].x, live.array().rx[i].x);
        EXPECT_EQ(replay.array().rx[i].z, live.array().rx[i].z);
    }

    core::WiTrackTracker replay_tracker(config.pipeline_config(), replay.array());
    engine::Frame frame;
    std::size_t index = 0;
    while (replay.next(frame)) {
        replay_tracker.process_frame(frame.sweeps, frame.time_s);
        // Ground truth survives the round trip verbatim.
        ASSERT_TRUE(frame.truth.has_value());
        ASSERT_LT(index, live_truths.size());
        EXPECT_EQ(frame.truth->position.x, live_truths[index].position.x);
        EXPECT_EQ(frame.truth->position.y, live_truths[index].position.y);
        EXPECT_EQ(frame.truth->position.z, live_truths[index].position.z);
        ++index;
    }
    EXPECT_EQ(index, live_truths.size());

    // Doubles are stored verbatim, so the tracks match bit for bit.
    const auto& a = live_tracker.track();
    const auto& b = replay_tracker.track();
    ASSERT_GT(a.size(), 50u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time_s, b[i].time_s);
        EXPECT_EQ(a[i].position.x, b[i].position.x);
        EXPECT_EQ(a[i].position.y, b[i].position.y);
        EXPECT_EQ(a[i].position.z, b[i].position.z);
        EXPECT_EQ(a[i].residual_rms, b[i].residual_rms);
    }
    std::remove(path.c_str());
}

TEST(Engine, PipelineAdoptsSourceFmcwParameters) {
    // A recording carries its own FMCW parameters; an Engine built with a
    // default config over that replay must process with the *recording's*
    // sweep geometry, or every range would be silently rescaled.
    const std::string path = temp_recording_path("witrack_fmcw.wtrk");
    FmcwParams custom;
    custom.bandwidth_hz = 1.0e9;  // non-default: changes bin_round_trip_m

    engine::EngineConfig record_config;
    record_config.with_fast_capture(true).with_seed(5).with_fmcw(custom);
    engine::SimSource live(record_config, std::make_unique<sim::StandStillScript>(
                                              Vec3{0, 5, 0}, 0.5));
    {
        engine::Recorder recorder(path, live.fmcw(), live.array());
        engine::Frame frame;
        while (live.next(frame)) recorder.write(frame);
    }

    auto replay_source = std::make_unique<engine::ReplaySource>(path);
    const auto* replay = replay_source.get();  // observe the cursor post-run
    engine::EngineConfig default_config;  // deliberately NOT the custom fmcw
    engine::Engine eng(default_config, std::move(replay_source));
    EXPECT_EQ(eng.pipeline_config().fmcw.bandwidth_hz, custom.bandwidth_hz);
    // The stored config is kept coherent too, so stages reading
    // StageContext::config.fmcw agree with the pipeline.
    EXPECT_EQ(eng.config().fmcw.bandwidth_hz, custom.bandwidth_hz);
    const std::size_t frames = eng.run();
    EXPECT_GT(frames, 0u);
    EXPECT_EQ(frames, replay->frames_read());
    std::remove(path.c_str());
}

TEST(Engine, RecorderRejectsMismatchedFrameShape) {
    const std::string path = temp_recording_path("witrack_shape.wtrk");
    FmcwParams fmcw;
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    engine::Recorder recorder(path, fmcw, array);

    engine::Frame frame;  // empty buffer: shape disagrees with the header
    EXPECT_THROW(recorder.write(frame), std::invalid_argument);

    frame.sweeps.resize(array.rx.size(), 1, fmcw.samples_per_sweep());
    EXPECT_NO_THROW(recorder.write(frame));

    // More sweeps than the header's sweeps_per_frame would be rejected as
    // corrupt on replay; write() must refuse to produce such a recording.
    frame.sweeps.resize(array.rx.size(), fmcw.sweeps_per_frame + 1,
                        fmcw.samples_per_sweep());
    EXPECT_THROW(recorder.write(frame), std::invalid_argument);
    std::remove(path.c_str());
}

TEST(Engine, ReplayRejectsForeignFiles) {
    const std::string path = temp_recording_path("witrack_bad.wtrk");
    {
        std::ofstream out(path, std::ios::binary);
        out << "definitely not a recording";
    }
    EXPECT_THROW(engine::ReplaySource{path}, std::runtime_error);
    std::remove(path.c_str());
    EXPECT_THROW(engine::ReplaySource{"/nonexistent/witrack.wtrk"},
                 std::runtime_error);
}

// ------------------------------------------------- latency + history caps

TEST(Engine, StageLatencyAccounting) {
    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(7);
    engine::Engine eng(config, std::make_unique<engine::SimSource>(
                                   config, std::make_unique<sim::LineWalkScript>(
                                               Vec3{-1, 5, 0}, Vec3{1, 5, 0}, 1.0,
                                               1.0)));
    eng.emplace_stage<engine::FallMonitorStage>();
    eng.run();

    ASSERT_EQ(eng.stage_stats().size(), 1u);
    const auto& stats = eng.stage_stats()[0];
    EXPECT_EQ(stats.name, "fall_monitor");
    EXPECT_EQ(stats.frames, eng.frames_processed());
    EXPECT_GT(stats.total_s, 0.0);
    EXPECT_GE(stats.max_s, stats.mean_s());
    EXPECT_GE(stats.finish_s, 0.0);  // episode work accounted separately
    // Paper budget: the whole pipeline fits in 75 ms; an app stage must be
    // far below that.
    EXPECT_LT(stats.mean_s(), 0.075);
}

TEST(Engine, TrackHistoryCapBoundsMemory) {
    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(11).with_track_history(50);
    engine::Engine eng(config, std::make_unique<engine::SimSource>(
                                   config, std::make_unique<sim::LineWalkScript>(
                                               Vec3{-1, 5, 0}, Vec3{1, 5, 0}, 4.0,
                                               1.0)));
    eng.run();

    ASSERT_GT(eng.frames_processed(), 200u);
    // Block trimming retains at most 2x the cap between trims.
    EXPECT_LE(eng.tracker().track().size(), 100u);
    EXPECT_LE(eng.tracker().raw_track().size(), 100u);
    EXPECT_GE(eng.tracker().track().size(), 50u);
}

TEST(FallMonitorApp, AlertRingDropsOldest) {
    // Synthesize repeated stand -> fast fall -> recover cycles; each cycle
    // triggers exactly one alert, and the ring keeps only the newest two.
    apps::FallMonitor monitor(core::FallDetectorConfig{}, /*max_alerts=*/2);
    double t = 0.0;
    const double dt = 0.0125;
    auto feed = [&](double seconds, auto elevation_at) {
        const int steps = static_cast<int>(seconds / dt);
        for (int i = 0; i < steps; ++i) {
            core::TrackPoint point;
            point.time_s = t;
            point.position = {0.0, 5.0, elevation_at(i * dt / seconds)};
            monitor.push(point);
            t += dt;
        }
    };

    // The low dwell must outlast the detector's 6 s sliding window, so the
    // descent has left the window by the time the monitor re-arms on the
    // way back up -- exactly one alert per cycle.
    const int cycles = 5;
    for (int c = 0; c < cycles; ++c) {
        feed(4.0, [](double) { return 1.0; });                        // standing
        feed(0.35, [](double u) { return 1.0 - 0.85 * u; });          // fast drop
        feed(6.5, [](double) { return 0.15; });                       // on the ground
        feed(1.0, [](double u) { return 0.15 + 0.85 * u; });          // get back up
    }

    EXPECT_EQ(monitor.total_alerts(), static_cast<std::size_t>(cycles));
    ASSERT_EQ(monitor.alerts().size(), 2u);  // ring bounded the history
    for (const auto& alert : monitor.alerts())
        EXPECT_EQ(alert.activity, core::Activity::kFall);
}

// --------------------------------------------------------- LiveSource

// The hardware ingest path: a LiveSource driving hw::FmcwFrontend sweep by
// sweep. The channel's antennas sit exactly on the default T array (Tx at
// the centre, Rx at +-1 m and 1 m below), so the geometry handed to the
// engine matches the physics that produced the sweeps.

geom::ArrayGeometry live_array() { return geom::make_t_array({0, 0, 1.3}, 1.0); }

rf::Channel live_channel() {
    const geom::ArrayGeometry array = live_array();
    rf::Antenna tx{array.tx, array.boresight, {}};
    std::vector<rf::Antenna> rx;
    for (const auto& position : array.rx)
        rx.push_back(rf::Antenna{position, array.boresight, {}});
    return rf::Channel(rf::ChannelConfig{}, tx, rx, rf::Scene{});
}

TEST(LiveSource, FrameShapeAndClockMatchTheFrontend) {
    hw::FrontendConfig config;
    hw::FmcwFrontend frontend(config, live_channel(), Rng(11));
    const double duration_s = 5.5 * config.fmcw.frame_duration_s();
    engine::LiveSource source(frontend, live_array(), duration_s);

    EXPECT_EQ(&source.fmcw(), &frontend.params());
    EXPECT_EQ(source.array().num_rx(), frontend.num_rx());

    engine::Frame frame;
    std::size_t frames = 0;
    double last_time = -1.0;
    while (source.next(frame)) {
        // Full capture geometry: one row per Rx, every configured sweep.
        ASSERT_EQ(frame.sweeps.num_rx(), frontend.num_rx());
        ASSERT_EQ(frame.sweeps.num_sweeps(), config.fmcw.sweeps_per_frame);
        ASSERT_EQ(frame.sweeps.samples_per_sweep(),
                  config.fmcw.samples_per_sweep());
        // Hardware has no ground truth, and the clock is the sweep clock.
        EXPECT_FALSE(frame.truth.has_value());
        EXPECT_DOUBLE_EQ(frame.time_s, static_cast<double>(frames) *
                                           config.fmcw.frame_duration_s());
        EXPECT_GT(frame.time_s, last_time);
        last_time = frame.time_s;
        ++frames;
    }
    EXPECT_EQ(frames, 6u);  // ceil(5.5 frame durations)
    EXPECT_FALSE(source.next(frame));  // stays exhausted
}

TEST(LiveSource, BodyProviderShapesTheCapture) {
    hw::FrontendConfig config;
    config.adc_bits = 0;  // no quantization: the echo must always register
    const double duration_s = 2.0 * config.fmcw.frame_duration_s();

    std::vector<double> provider_times;
    auto provider = [&](double time_s) {
        provider_times.push_back(time_s);
        return std::vector<rf::BodyScatterer>{{{0.0, 5.0, 1.3}, 0.8, 0.0}};
    };

    hw::FmcwFrontend with_body(config, live_channel(), Rng(12));
    engine::LiveSource occupied(with_body, live_array(), duration_s, provider);
    hw::FmcwFrontend without(config, live_channel(), Rng(12));
    engine::LiveSource empty_room(without, live_array(), duration_s);

    engine::Frame a, b;
    ASSERT_TRUE(occupied.next(a));
    ASSERT_TRUE(empty_room.next(b));
    // The provider is consulted once per frame, at the frame's capture time.
    ASSERT_EQ(provider_times.size(), 1u);
    EXPECT_DOUBLE_EQ(provider_times[0], 0.0);
    // Same seed, same statics -- any difference is the body's echo.
    ASSERT_EQ(a.sweeps.size(), b.sweeps.size());
    double energy = 0.0;
    for (std::size_t i = 0; i < a.sweeps.size(); ++i) {
        const double d = a.sweeps.data()[i] - b.sweeps.data()[i];
        energy += d * d;
    }
    EXPECT_GT(energy, 0.0);
}

TEST(LiveSource, DeterministicForTheSameFrontendSeed) {
    hw::FrontendConfig config;
    const double duration_s = 3.0 * config.fmcw.frame_duration_s();
    auto provider = [](double) {
        return std::vector<rf::BodyScatterer>{{{0.3, 4.0, 1.0}, 0.8, 0.1}};
    };

    hw::FmcwFrontend f1(config, live_channel(), Rng(13));
    hw::FmcwFrontend f2(config, live_channel(), Rng(13));
    engine::LiveSource s1(f1, live_array(), duration_s, provider);
    engine::LiveSource s2(f2, live_array(), duration_s, provider);

    engine::Frame a, b;
    std::size_t frames = 0;
    while (s1.next(a)) {
        ASSERT_TRUE(s2.next(b));
        ASSERT_EQ(a.sweeps.size(), b.sweeps.size());
        EXPECT_EQ(std::memcmp(a.sweeps.data(), b.sweeps.data(),
                              a.sweeps.size() * sizeof(double)),
                  0);
        ++frames;
    }
    EXPECT_FALSE(s2.next(b));
    EXPECT_EQ(frames, 3u);
}

}  // namespace
}  // namespace witrack
