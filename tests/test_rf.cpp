// RF substrate tests: antenna patterns, materials, walls (crossing /
// mirroring / specular points), RCS fluctuation models, noise, and the
// image-method channel.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "common/units.hpp"
#include "rf/antenna.hpp"
#include "rf/channel.hpp"
#include "rf/material.hpp"
#include "rf/noise.hpp"
#include "rf/rcs.hpp"
#include "rf/scene.hpp"
#include "rf/wall.hpp"

namespace witrack::rf {
namespace {

using geom::Vec3;

// ---------------------------------------------------------------- antenna

TEST(AntennaTest, PeakOnBoresight) {
    AntennaPattern p;
    EXPECT_NEAR(p.gain(0.0), from_db(p.peak_gain_dbi), 1e-9);
    EXPECT_LT(p.gain(0.3), p.gain(0.0));
}

TEST(AntennaTest, HalfPowerAtHalfBeamwidth) {
    AntennaPattern p;
    const double half = deg_to_rad(p.half_power_beamwidth_deg) / 2.0;
    EXPECT_NEAR(p.gain(half) / p.gain(0.0), 0.5, 1e-9);
}

TEST(AntennaTest, BackLobeFloor) {
    AntennaPattern p;
    const double back = p.gain(M_PI);
    EXPECT_NEAR(back / p.gain(0.0), from_db(-p.front_back_ratio_db), 1e-9);
}

TEST(AntennaTest, GainTowardUsesGeometry) {
    Antenna a{{0, 0, 0}, {0, 1, 0}, {}};
    EXPECT_GT(a.gain_toward({0, 5, 0}), a.gain_toward({5, 5, 0}));
    EXPECT_GT(a.gain_toward({5, 5, 0}), a.gain_toward({0, -5, 0}));
}

// --------------------------------------------------------------- material

TEST(MaterialTest, PresetsHaveSensibleOrdering) {
    EXPECT_GT(materials::concrete().traversal_loss_db,
              materials::sheetrock().traversal_loss_db);
    EXPECT_GT(materials::sheetrock().traversal_loss_db,
              materials::glass().traversal_loss_db);
}

// ------------------------------------------------------------------- wall

Wall front_wall() {
    // Wall in the xz plane at y = 2, spanning x in [-4, 4], z in [0, 3].
    return Wall({0, 2, 1.5}, {0, 1, 0}, {1, 0, 0}, 4.0, 1.5,
                materials::sheetrock());
}

TEST(WallTest, SegmentCrossing) {
    const Wall w = front_wall();
    EXPECT_TRUE(w.segment_crosses({0, 0, 1}, {0, 5, 1}));
    EXPECT_FALSE(w.segment_crosses({0, 3, 1}, {0, 5, 1}));   // same side
    EXPECT_FALSE(w.segment_crosses({10, 0, 1}, {10, 5, 1})); // misses panel
    EXPECT_FALSE(w.segment_crosses({0, 0, 1}, {0, 1.99, 1}));// stops short
}

TEST(WallTest, MirrorReflectsAcrossPlane) {
    const Wall w = front_wall();
    const Vec3 m = w.mirror({0, 0.5, 1});
    EXPECT_NEAR(m.y, 3.5, 1e-12);
    EXPECT_NEAR(m.x, 0.0, 1e-12);
    // Mirroring twice returns the original point.
    const Vec3 mm = w.mirror(m);
    EXPECT_NEAR(mm.y, 0.5, 1e-12);
}

TEST(WallTest, SpecularPointForSameSideBounce) {
    const Wall w = front_wall();
    const auto hit = w.specular_point({-1, 0, 1}, {1, 0, 1});
    ASSERT_TRUE(hit.has_value());
    EXPECT_NEAR(hit->y, 2.0, 1e-9);          // on the wall plane
    EXPECT_NEAR(hit->x, 0.0, 1e-9);          // symmetric bounce
    // Opposite sides: traversal, not a bounce.
    EXPECT_FALSE(w.specular_point({0, 0, 1}, {0, 5, 1}).has_value());
}

TEST(WallTest, SpecularPointRespectsPanelExtent) {
    const Wall w = front_wall();
    // Bounce geometry lands at x = 6, outside the +-4 panel.
    EXPECT_FALSE(w.specular_point({5, 1, 1}, {7, 1, 1}).has_value());
}

TEST(WallTest, SpecularPathLengthEqualsImagePath) {
    // |a - bounce| + |bounce - b| must equal |a - mirror(b)|.
    const Wall w = front_wall();
    const Vec3 a{-1.5, 0.5, 1.0}, b{2.0, 1.0, 1.2};
    const auto hit = w.specular_point(a, b);
    ASSERT_TRUE(hit.has_value());
    const double via_bounce = (a - *hit).norm() + (*hit - b).norm();
    const double via_image = (a - w.mirror(b)).norm();
    EXPECT_NEAR(via_bounce, via_image, 1e-9);
}

// -------------------------------------------------------------------- rcs

TEST(RcsTest, SwerlingMeansConverge) {
    Rng rng(3);
    for (auto model : {rcs::torso(), rcs::arm()}) {
        double acc = 0.0;
        const int n = 200000;
        for (int i = 0; i < n; ++i) acc += model.sample(rng);
        EXPECT_NEAR(acc / n, model.mean_rcs_m2, 0.02 * model.mean_rcs_m2);
    }
}

TEST(RcsTest, SwerlingIiiFluctuatesLessThanI) {
    Rng rng(4);
    RcsModel s1{1.0, Fluctuation::kSwerlingI};
    RcsModel s3{1.0, Fluctuation::kSwerlingIII};
    double var1 = 0.0, var3 = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double a = s1.sample(rng) - 1.0;
        const double b = s3.sample(rng) - 1.0;
        var1 += a * a;
        var3 += b * b;
    }
    EXPECT_LT(var3, var1 * 0.7);  // chi^2_4 variance is half of exponential
}

TEST(RcsTest, SteadyIsDeterministic) {
    Rng rng(5);
    const auto model = rcs::reference(2.5);
    EXPECT_DOUBLE_EQ(model.sample(rng), 2.5);
    EXPECT_DOUBLE_EQ(model.sample(rng), 2.5);
}

TEST(RcsTest, ArmSmallerThanTorso) {
    // Section 6.1 relies on this ordering.
    EXPECT_LT(rcs::arm().mean_rcs_m2, rcs::torso().mean_rcs_m2 / 4.0);
}

// ------------------------------------------------------------------ noise

TEST(NoiseTest, StddevScalesWithNoiseFigure) {
    NoiseModel quiet{20.0}, loud{40.0};
    EXPECT_NEAR(loud.sample_stddev(1e6) / quiet.sample_stddev(1e6), 10.0, 1e-9);
}

TEST(NoiseTest, SamplesMatchConfiguredStddev) {
    NoiseModel model{30.0};
    Rng rng(6);
    const double sigma = model.sample_stddev(1e6);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = model.sample(rng, 1e6);
        acc += v * v;
    }
    EXPECT_NEAR(std::sqrt(acc / n), sigma, 0.02 * sigma);
}

// ---------------------------------------------------------------- channel

Channel make_test_channel(Scene scene, double coupling_db = -50.0) {
    ChannelConfig config;
    config.tx_rx_coupling_db = coupling_db;
    Antenna tx{{0, 0, 1.3}, {0, 1, 0}, {}};
    std::vector<Antenna> rx = {
        Antenna{{-1, 0, 1.3}, {0, 1, 0}, {}},
        Antenna{{1, 0, 1.3}, {0, 1, 0}, {}},
        Antenna{{0, 0, 0.3}, {0, 1, 0}, {}},
    };
    return Channel(config, tx, rx, std::move(scene));
}

TEST(ChannelTest, LeakagePathAlwaysPresent) {
    const auto channel = make_test_channel(Scene{});
    const auto paths = channel.static_paths(0);
    ASSERT_FALSE(paths.empty());
    EXPECT_EQ(paths.front().kind, PathKind::kTxLeakage);
    EXPECT_NEAR(paths.front().round_trip_m, 1.0, 1e-9);  // Tx-Rx separation
}

TEST(ChannelTest, BodyPathLengthIsExactGeometry) {
    const auto channel = make_test_channel(Scene{});
    const BodyScatterer s{{0.5, 5.0, 1.0}, 0.8, 0.0};
    const auto paths = channel.body_paths(1, {&s, 1});
    ASSERT_FALSE(paths.empty());
    const double expected = Vec3{0.5, 5, 1}.distance_to({0, 0, 1.3}) +
                            Vec3{0.5, 5, 1}.distance_to({1, 0, 1.3});
    EXPECT_NEAR(paths.front().round_trip_m, expected, 1e-9);
    EXPECT_EQ(paths.front().kind, PathKind::kBodyDirect);
}

TEST(ChannelTest, AmplitudeFollowsInverseSquareLegs) {
    const auto channel = make_test_channel(Scene{});
    // Doubling both legs costs 4x amplitude (d_t^2 d_r^2 inside sqrt).
    const double a1 = channel.bistatic_amplitude(3.0, 3.0, 1.0, 1.0, 1.0);
    const double a2 = channel.bistatic_amplitude(6.0, 6.0, 1.0, 1.0, 1.0);
    EXPECT_NEAR(a1 / a2, 4.0, 1e-9);
}

TEST(ChannelTest, WallTraversalAttenuates) {
    Scene scene;
    scene.walls.emplace_back(Vec3{0, 2, 1.5}, Vec3{0, 1, 0}, Vec3{1, 0, 0}, 4.0,
                             1.5, materials::sheetrock());
    const auto with_wall = make_test_channel(scene);
    const auto without = make_test_channel(Scene{});
    const BodyScatterer s{{0.0, 5.0, 1.0}, 0.8, 0.0};
    const auto p_wall = with_wall.body_paths(0, {&s, 1});
    const auto p_free = without.body_paths(0, {&s, 1});
    ASSERT_FALSE(p_wall.empty());
    ASSERT_FALSE(p_free.empty());
    // Two traversals (out and back) at 5 dB each = 10 dB power = ~3.16x amp.
    EXPECT_NEAR(p_free.front().amplitude / p_wall.front().amplitude,
                db_to_amplitude(10.0), 0.05 * db_to_amplitude(10.0));
}

TEST(ChannelTest, TraversalGainCountsWalls) {
    Scene scene;
    scene.walls.emplace_back(Vec3{0, 2, 1.5}, Vec3{0, 1, 0}, Vec3{1, 0, 0}, 4.0,
                             1.5, materials::sheetrock());
    scene.walls.emplace_back(Vec3{0, 4, 1.5}, Vec3{0, 1, 0}, Vec3{1, 0, 0}, 4.0,
                             1.5, materials::sheetrock());
    const auto channel = make_test_channel(scene);
    const double one = channel.traversal_gain({0, 0, 1}, {0, 3, 1});
    const double two = channel.traversal_gain({0, 0, 1}, {0, 5, 1});
    EXPECT_NEAR(one, from_db(-5.0), 1e-9);
    EXPECT_NEAR(two, from_db(-10.0), 1e-9);
}

TEST(ChannelTest, SideWallCreatesDynamicMultipath) {
    Scene scene;
    scene.walls.emplace_back(Vec3{-4, 5, 1.5}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, 5.0,
                             1.5, materials::sheetrock());
    const auto channel = make_test_channel(scene);
    const BodyScatterer s{{0.0, 5.0, 1.0}, 0.8, 0.0};
    const auto paths = channel.body_paths(0, {&s, 1});
    bool has_multipath = false;
    for (const auto& p : paths)
        if (p.kind == PathKind::kBodyMultipath) {
            has_multipath = true;
            // Dynamic multipath is always longer than the direct path
            // (Section 4.3's key invariant).
            EXPECT_GT(p.round_trip_m, paths.front().round_trip_m);
        }
    EXPECT_TRUE(has_multipath);
}

TEST(ChannelTest, MultipathCanBeDisabled) {
    Scene scene;
    scene.walls.emplace_back(Vec3{-4, 5, 1.5}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, 5.0,
                             1.5, materials::sheetrock());
    ChannelConfig config;
    config.enable_dynamic_multipath = false;
    Antenna tx{{0, 0, 1.3}, {0, 1, 0}, {}};
    std::vector<Antenna> rx = {Antenna{{-1, 0, 1.3}, {0, 1, 0}, {}}};
    Channel channel(config, tx, rx, scene);
    const BodyScatterer s{{0.0, 5.0, 1.0}, 0.8, 0.0};
    for (const auto& p : channel.body_paths(0, {&s, 1}))
        EXPECT_NE(p.kind, PathKind::kBodyMultipath);
}

TEST(ChannelTest, StaticClutterStrongerThanBody) {
    // The flash effect (Section 4.2): near static reflectors dominate the
    // far body echo.
    Scene scene;
    scene.clutter.push_back({{0.5, 2.0, 1.0}, 1.5});
    const auto channel = make_test_channel(scene);
    const BodyScatterer s{{0.0, 6.0, 1.0}, 0.8, 0.0};
    const auto statics = channel.static_paths(0);
    const auto body = channel.body_paths(0, {&s, 1});
    double max_static = 0.0;
    for (const auto& p : statics)
        if (p.kind == PathKind::kStaticClutter)
            max_static = std::max(max_static, p.amplitude);
    ASSERT_FALSE(body.empty());
    EXPECT_GT(max_static, body.front().amplitude);
}

TEST(ChannelTest, PrunesNegligiblePaths) {
    ChannelConfig config;
    config.prune_relative_amplitude = 0.5;  // aggressive pruning for the test
    Antenna tx{{0, 0, 1.3}, {0, 1, 0}, {}};
    std::vector<Antenna> rx = {Antenna{{-1, 0, 1.3}, {0, 1, 0}, {}}};
    Channel channel(config, tx, rx, Scene{});
    const BodyScatterer strong{{0.0, 3.0, 1.0}, 0.8, 0.0};
    const BodyScatterer weak{{0.0, 9.0, 1.0}, 0.01, 0.0};
    const std::vector<BodyScatterer> body{strong, weak};
    const auto paths = channel.body_paths(0, body);
    EXPECT_EQ(paths.size(), 1u);  // weak scatterer pruned
}

}  // namespace
}  // namespace witrack::rf
