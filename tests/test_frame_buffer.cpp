// FrameBuffer contract tests: layout round-trips, stride/indexing edge
// cases, bit-for-bit spectral equivalence between the per-antenna and
// batched processing entry points, steady-state allocation freedom of
// SweepProcessor::process_into, and WiTrackTracker determinism across
// instances fed the same FrameBuffer stream.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <random>
#include <vector>

#include "common/frame_buffer.hpp"
#include "core/background.hpp"
#include "core/contour.hpp"
#include "core/range_fft.hpp"
#include "core/tof.hpp"
#include "core/tracker.hpp"
#include "dsp/fft.hpp"
#include "sim/scenario.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every heap allocation in this binary bumps the
// counter, so a test can assert that a region of code performed none.
//
// GCC pairs the visible std::free bodies below with the library declaration
// of operator new when inlining them into callers and reports a mismatch;
// the replacement set is in fact consistent (malloc in, free out).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::size_t> g_allocations{0};
}

void* operator new(std::size_t size) {
    ++g_allocations;
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace witrack {
namespace {

std::vector<std::vector<std::vector<double>>> make_nested(std::size_t sweeps,
                                                          std::size_t num_rx,
                                                          std::size_t samples,
                                                          unsigned seed = 7) {
    std::mt19937 rng(seed);
    std::normal_distribution<double> dist(0.0, 1.0);
    std::vector<std::vector<std::vector<double>>> nested(sweeps);
    for (auto& sweep : nested) {
        sweep.resize(num_rx);
        for (auto& rx : sweep) {
            rx.resize(samples);
            for (auto& v : rx) v = dist(rng);
        }
    }
    return nested;
}

// ------------------------------------------------------------------ layout

TEST(FrameBufferTest, RoundTripsNestedLayout) {
    const auto nested = make_nested(5, 3, 17);
    const auto frame = FrameBuffer::from_nested(nested);

    EXPECT_EQ(frame.num_sweeps(), 5u);
    EXPECT_EQ(frame.num_rx(), 3u);
    EXPECT_EQ(frame.samples_per_sweep(), 17u);
    EXPECT_EQ(frame.size(), 5u * 3u * 17u);

    for (std::size_t s = 0; s < 5; ++s)
        for (std::size_t rx = 0; rx < 3; ++rx)
            for (std::size_t i = 0; i < 17; ++i)
                ASSERT_EQ(frame.at(rx, s, i), nested[s][rx][i]);

    EXPECT_EQ(frame.to_nested(), nested);
}

TEST(FrameBufferTest, AntennaSpanIsContiguousAndSweepMajor) {
    const auto nested = make_nested(4, 2, 9);
    const auto frame = FrameBuffer::from_nested(nested);

    for (std::size_t rx = 0; rx < 2; ++rx) {
        const auto block = frame.antenna(rx);
        ASSERT_EQ(block.size(), 4u * 9u);
        for (std::size_t s = 0; s < 4; ++s) {
            const auto row = frame.sweep(rx, s);
            EXPECT_EQ(row.data(), block.data() + s * 9);  // no gaps between sweeps
            for (std::size_t i = 0; i < 9; ++i)
                ASSERT_EQ(row[i], nested[s][rx][i]);
        }
    }
}

TEST(FrameBufferTest, IndexingEdgeCases) {
    FrameBuffer frame(2, 3, 8);
    EXPECT_THROW(frame.sweep(2, 0), std::out_of_range);
    EXPECT_THROW(frame.sweep(0, 3), std::out_of_range);
    EXPECT_THROW(frame.antenna(2), std::out_of_range);
    EXPECT_THROW(frame.at(0, 0, 8), std::out_of_range);
    EXPECT_NO_THROW(frame.at(1, 2, 7));

    FrameBuffer empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.num_rx(), 0u);
    EXPECT_THROW(empty.sweep(0, 0), std::out_of_range);
}

TEST(FrameBufferTest, RejectsRaggedNestedInput) {
    auto ragged_rx = make_nested(3, 2, 8);
    ragged_rx[1].pop_back();
    EXPECT_THROW(FrameBuffer::from_nested(ragged_rx), std::invalid_argument);

    auto ragged_len = make_nested(3, 2, 8);
    ragged_len[2][1].push_back(0.0);
    EXPECT_THROW(FrameBuffer::from_nested(ragged_len), std::invalid_argument);

    EXPECT_TRUE(FrameBuffer::from_nested({}).empty());
}

TEST(FrameBufferTest, ResizeReusesStorageAndZeroes) {
    FrameBuffer frame(3, 5, 100);
    frame.at(2, 4, 99) = 42.0;
    const double* before = frame.data();
    frame.resize(3, 5, 100);
    EXPECT_EQ(frame.data(), before);  // same capacity, reused in place
    EXPECT_EQ(frame.at(2, 4, 99), 0.0);
}

// ------------------------------------------------------- spectra identity

TEST(FrameBufferTest, SpectraBitForBitAcrossEntryPoints) {
    FmcwParams fmcw;
    fmcw.sweep_duration_s = 250e-6;  // 250 samples: fast but non-trivial
    const std::size_t n = fmcw.samples_per_sweep();
    const auto frame = FrameBuffer::from_nested(make_nested(5, 3, n));

    for (const std::size_t fft_size : {std::size_t{0}, std::size_t{512}}) {
        core::SweepProcessor processor(fmcw, dsp::WindowType::kHann, fft_size);
        std::vector<core::RangeProfile> batched;
        processor.process_frame_into(frame, batched);
        ASSERT_EQ(batched.size(), 3u);

        for (std::size_t rx = 0; rx < 3; ++rx) {
            core::RangeProfile contiguous;
            processor.process_into(frame.antenna(rx), frame.num_sweeps(), contiguous);

            ASSERT_EQ(contiguous.spectrum_size(), batched[rx].spectrum_size());
            EXPECT_EQ(contiguous.bin_round_trip_m, batched[rx].bin_round_trip_m);
            EXPECT_EQ(contiguous.usable_bins, batched[rx].usable_bins);
            // Bit-for-bit, per SoA plane: both paths run identical arithmetic.
            EXPECT_EQ(0, std::memcmp(contiguous.re.data(), batched[rx].re.data(),
                                     contiguous.re.size() * sizeof(double)));
            EXPECT_EQ(0, std::memcmp(contiguous.im.data(), batched[rx].im.data(),
                                     contiguous.im.size() * sizeof(double)));
        }
    }
}

TEST(FrameBufferTest, RealFftMatchesComplexReference) {
    // Even (packed path, power-of-two half), even with Bluestein half, odd
    // (fallback): the half spectrum must agree with the non-redundant bins
    // of the reference complex transform of the same real input.
    for (const std::size_t n : {16u, 250u, 17u}) {
        std::mt19937 rng(n);
        std::normal_distribution<double> dist(0.0, 1.0);
        std::vector<double> x(n);
        for (auto& v : x) v = dist(rng);

        std::vector<dsp::cplx> reference(n);
        for (std::size_t i = 0; i < n; ++i) reference[i] = dsp::cplx(x[i], 0.0);
        dsp::fft_plan(n).forward(reference);

        dsp::RealFft rfft(n);
        dsp::FftScratch scratch;
        std::vector<dsp::cplx> out;
        rfft.forward(x, out, scratch);

        ASSERT_EQ(out.size(), n / 2 + 1);
        for (std::size_t k = 0; k < out.size(); ++k) {
            EXPECT_NEAR(out[k].real(), reference[k].real(), 1e-9) << "k=" << k;
            EXPECT_NEAR(out[k].imag(), reference[k].imag(), 1e-9) << "k=" << k;
        }
    }
}

// ------------------------------------------------------- zero allocations

TEST(FrameBufferTest, SweepProcessorSteadyStateDoesNotAllocate) {
    FmcwParams fmcw;
    fmcw.sweep_duration_s = 250e-6;
    const std::size_t n = fmcw.samples_per_sweep();
    FrameBuffer frame = FrameBuffer::from_nested(make_nested(5, 3, n));

    // Both transform shapes must be allocation-free once buffers are warm:
    // the zero-padded pruned r2c kernel path (250 live samples into a
    // 512-point plan, power-of-two half) and the paper-literal Bluestein
    // path (fft_size 0, non-power-of-two half). This covers the SoA
    // scratch layout (packing planes + kernel ping-pong planes + Bluestein
    // convolution planes) and the fused background difference-and-store.
    for (const std::size_t fft_size : {std::size_t{512}, std::size_t{0}}) {
        core::SweepProcessor processor(fmcw, dsp::WindowType::kHann, fft_size);
        core::BackgroundSubtractor background;
        core::RangeProfile profile;
        std::vector<double> magnitude;
        for (int warm = 0; warm < 3; ++warm) {
            processor.process_into(frame.antenna(0), frame.num_sweeps(), profile);
            background.subtract_into(profile, magnitude);
        }

        const std::size_t before = g_allocations.load();
        for (int pass = 0; pass < 10; ++pass) {
            processor.process_into(frame.antenna(0), frame.num_sweeps(), profile);
            background.subtract_into(profile, magnitude);
        }
        EXPECT_EQ(g_allocations.load() - before, 0u)
            << "fft_size=" << fft_size;
    }
}

TEST(FrameBufferTest, StaticTrainingSubtractSteadyStateDoesNotAllocate) {
    // The learned-background mode shares the frame path with kFrameDiff;
    // its subtract must be allocation-free at steady state too.
    FmcwParams fmcw;
    fmcw.sweep_duration_s = 250e-6;
    const std::size_t n = fmcw.samples_per_sweep();
    FrameBuffer frame = FrameBuffer::from_nested(make_nested(5, 1, n));

    core::SweepProcessor processor(fmcw, dsp::WindowType::kHann, 512);
    core::BackgroundSubtractor background(core::BackgroundMode::kStaticTraining);
    core::RangeProfile profile;
    std::vector<double> magnitude;
    for (int i = 0; i < 3; ++i) {
        processor.process_into(frame.antenna(0), frame.num_sweeps(), profile);
        background.train(profile);
    }
    background.subtract_into(profile, magnitude);  // warm the output

    const std::size_t before = g_allocations.load();
    for (int pass = 0; pass < 10; ++pass) {
        processor.process_into(frame.antenna(0), frame.num_sweeps(), profile);
        background.subtract_into(profile, magnitude);
    }
    EXPECT_EQ(g_allocations.load() - before, 0u);
}

TEST(FrameBufferTest, FullAnalysisTailSteadyStateDoesNotAllocate) {
    // The whole post-FFT chain -- background subtract -> contour extraction
    // -> gated re-detection -> denoise -> persistent TofFrame fill -- must
    // be allocation-free once warm, in both background modes. Alternating
    // two distinct frames keeps the frame-diff magnitudes nonzero so the
    // contour, gate, and denoiser paths all run.
    FmcwParams fmcw;
    fmcw.sweep_duration_s = 250e-6;
    const std::size_t n = fmcw.samples_per_sweep();
    const FrameBuffer even = FrameBuffer::from_nested(make_nested(5, 2, n, 7));
    const FrameBuffer odd = FrameBuffer::from_nested(make_nested(5, 2, n, 13));

    core::PipelineConfig pipeline;
    pipeline.fmcw = fmcw;
    pipeline.fft_size = 512;
    for (const bool static_training : {false, true}) {
        core::TofEstimator estimator(pipeline, 2);
        if (static_training) {
            estimator.enable_static_training();
            for (int i = 0; i < 3; ++i) estimator.train_background(even);
        }
        double t = 0.0;
        for (int warm = 0; warm < 4; ++warm, t += 0.01)
            estimator.process_frame(warm % 2 != 0 ? odd : even, t);

        const std::size_t before = g_allocations.load();
        for (int pass = 0; pass < 10; ++pass, t += 0.01) {
            const auto& out = estimator.process_frame(pass % 2 != 0 ? odd : even, t);
            ASSERT_EQ(out.antennas.size(), 2u);
        }
        EXPECT_EQ(g_allocations.load() - before, 0u)
            << "static_training=" << static_training;
    }
}

TEST(FrameBufferTest, GatedRedetectionWithWarmScratchDoesNotAllocate) {
    // The gated re-detection pass in isolation: with a warm ContourScratch,
    // extract + extract_near against the same profile must not allocate and
    // must reuse the frame's cached noise floor (same band -> same floor).
    std::mt19937 rng(17);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    std::vector<double> magnitude(256);
    for (auto& v : magnitude) v = 0.05 * dist(rng);  // low noise floor
    for (std::size_t i = 95; i < 115; ++i) {         // one strong body echo
        const double d = static_cast<double>(i) - 105.0;
        magnitude[i] += 5.0 * std::exp(-d * d / 18.0);
    }
    const double bin_m = 0.0375;

    core::PipelineConfig pipeline;
    const core::ContourTracker tracker(pipeline);
    core::ContourScratch scratch;
    scratch.start_frame();
    const auto warm = tracker.extract(magnitude, bin_m, scratch);
    ASSERT_TRUE(warm.detected);
    tracker.extract_near(magnitude, bin_m, warm.round_trip_m, 0.7, scratch);

    const std::size_t before = g_allocations.load();
    for (int pass = 0; pass < 10; ++pass) {
        scratch.start_frame();
        const auto point = tracker.extract(magnitude, bin_m, scratch);
        const auto gated = tracker.extract_near(magnitude, bin_m,
                                                point.round_trip_m, 0.7, scratch);
        EXPECT_TRUE(point.detected);
        EXPECT_TRUE(gated.detected);
        // Cache hit: the gated pass reuses the frame's full-band floor.
        EXPECT_EQ(gated.noise_floor, point.noise_floor);
    }
    EXPECT_EQ(g_allocations.load() - before, 0u);
}

// -------------------------------------------------- tracker determinism

TEST(FrameBufferTest, TrackerDeterministicAcrossInstances) {
    sim::ScenarioConfig config;
    config.seed = 99;
    config.fast_capture = true;  // keep the suite quick
    sim::Scenario scenario(config, std::make_unique<sim::LineWalkScript>(
                                       geom::Vec3{-1, 5, 0}, geom::Vec3{1, 5, 0},
                                       1.0, 1.0));
    std::vector<sim::Scenario::Frame> frames;
    sim::Scenario::Frame frame;
    while (scenario.next(frame)) frames.push_back(frame);
    ASSERT_GT(frames.size(), 10u);

    core::PipelineConfig pipeline;
    pipeline.fmcw = config.fmcw;
    core::WiTrackTracker first(pipeline, scenario.array());
    core::WiTrackTracker second(pipeline, scenario.array());

    for (const auto& f : frames) {
        const auto a = first.process_frame(f.sweeps, f.time_s);
        const auto b = second.process_frame(f.sweeps, f.time_s);
        ASSERT_EQ(a.raw.has_value(), b.raw.has_value());
        ASSERT_EQ(a.smoothed.has_value(), b.smoothed.has_value());
        if (a.smoothed) {
            // Identical, not just close: no hidden state outside the inputs
            // may influence the pipeline (replay determinism depends on it).
            EXPECT_EQ(a.smoothed->position.x, b.smoothed->position.x);
            EXPECT_EQ(a.smoothed->position.y, b.smoothed->position.y);
            EXPECT_EQ(a.smoothed->position.z, b.smoothed->position.z);
        }
    }

    EXPECT_EQ(first.frames_processed(), frames.size());
    EXPECT_GT(first.mean_latency_s(), 0.0);
    EXPECT_GE(first.max_latency_s(), first.mean_latency_s());
    EXPECT_EQ(first.track().size(), second.track().size());
    EXPECT_EQ(first.raw_track().size(), second.raw_track().size());
}

}  // namespace
}  // namespace witrack
