// Analysis-tail kernel tests (dsp/tail_kernels.hpp + the windowed peak
// helpers of dsp/peaks.hpp): scalar-reference semantics for every kernel,
// bitwise parity across every dispatch level the machine supports (the
// same gate test_fft applies to the FFT kernels), the sqrt(re^2+im^2)
// magnitude-contract accuracy budget against std::abs/hypot, and the
// bit-identity of the nth_element noise floor and windowed peak scan
// against their allocating predecessors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "dsp/peaks.hpp"
#include "dsp/simd.hpp"
#include "dsp/tail_kernels.hpp"

namespace witrack::dsp {
namespace {

/// RAII: force a kernel dispatch level for one test and restore the
/// ambient level on exit (same pattern as tests/test_fft.cpp). granted()
/// clamps to detect(), so a level the hardware lacks is skipped rather
/// than silently retested.
class ForcedLevel {
  public:
    explicit ForcedLevel(simd::Level level)
        : previous_(simd::active()), granted_(simd::force(level)) {}
    ~ForcedLevel() { simd::force(previous_); }
    simd::Level granted() const { return granted_; }

  private:
    simd::Level previous_;
    simd::Level granted_;
};

constexpr simd::Level kAllLevels[] = {simd::Level::kScalar, simd::Level::kSse2,
                                      simd::Level::kAvx2};

/// Plane lengths that exercise every lane-width remainder: empty, below
/// one vector, one vector, vector + tail, and the production usable-bins
/// shapes (half of 4096/8192 FFTs).
constexpr std::size_t kPlaneSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9,
                                       13, 64, 127, 1024, 2049};

std::vector<double> random_plane(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::normal_distribution<double> dist;
    std::vector<double> v(n);
    for (auto& x : v) x = dist(rng);
    return v;
}

/// A magnitude-profile-shaped vector: non-negative, with structure that
/// produces real local maxima for the peak kernels.
std::vector<double> random_profile(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double hump =
            std::sin(static_cast<double>(i) * 0.37) * std::sin(static_cast<double>(i) * 0.11);
        v[i] = std::abs(hump) + 0.25 * dist(rng);
    }
    return v;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
    if (a.size() != b.size()) return false;
    return a.empty() ||
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// ---------------------------------------------------------------------------
// Scalar-reference semantics
// ---------------------------------------------------------------------------

TEST(DiffMagnitude, MatchesReferenceAndUpdatesHistory) {
    for (const std::size_t n : kPlaneSizes) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto cur_re = random_plane(n, 11u + static_cast<unsigned>(n));
        const auto cur_im = random_plane(n, 23u + static_cast<unsigned>(n));
        auto prev_re = random_plane(n, 37u + static_cast<unsigned>(n));
        auto prev_im = random_plane(n, 53u + static_cast<unsigned>(n));
        const auto prev_re_before = prev_re;
        const auto prev_im_before = prev_im;

        std::vector<double> out(n, -1.0);
        tail::diff_magnitude(cur_re.data(), cur_im.data(), prev_re.data(),
                             prev_im.data(), out.data(), n);

        for (std::size_t i = 0; i < n; ++i) {
            const double dr = cur_re[i] - prev_re_before[i];
            const double di = cur_im[i] - prev_im_before[i];
            EXPECT_EQ(out[i], std::sqrt(dr * dr + di * di)) << i;
        }
        // History update: prev <- cur, fused into the same pass.
        EXPECT_TRUE(bitwise_equal(prev_re, cur_re));
        EXPECT_TRUE(bitwise_equal(prev_im, cur_im));
    }
}

TEST(ScaledDiffMagnitude, MatchesReference) {
    const double scale = 1.0 / 3.0;
    for (const std::size_t n : kPlaneSizes) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto cur_re = random_plane(n, 101u + static_cast<unsigned>(n));
        const auto cur_im = random_plane(n, 103u + static_cast<unsigned>(n));
        const auto ref_re = random_plane(n, 107u + static_cast<unsigned>(n));
        const auto ref_im = random_plane(n, 109u + static_cast<unsigned>(n));

        std::vector<double> out(n, -1.0);
        tail::scaled_diff_magnitude(cur_re.data(), cur_im.data(), ref_re.data(),
                                    ref_im.data(), scale, out.data(), n);

        for (std::size_t i = 0; i < n; ++i) {
            const double dr = cur_re[i] - ref_re[i] * scale;
            const double di = cur_im[i] - ref_im[i] * scale;
            EXPECT_EQ(out[i], std::sqrt(dr * dr + di * di)) << i;
        }
    }
}

TEST(MagnitudeContract, WithinRelativeErrorBudgetOfStdAbs) {
    // The contract replaces std::abs(cplx) (glibc hypot, <= 1 ulp) with
    // sqrt(re^2 + im^2): three correctly-rounded operations, so the result
    // sits within ~2.5 ulp of the exact magnitude. Gate the switch with an
    // explicit relative-error budget against the old path.
    constexpr double kBudget = 4.0 * std::numeric_limits<double>::epsilon();
    const std::size_t n = 4096;
    const auto cur_re = random_plane(n, 2024);
    const auto cur_im = random_plane(n, 2025);
    std::vector<double> zero(n, 0.0), out(n);
    tail::scaled_diff_magnitude(cur_re.data(), cur_im.data(), zero.data(),
                                zero.data(), 1.0, out.data(), n);

    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double exact = std::abs(std::complex<double>(cur_re[i], cur_im[i]));
        if (exact == 0.0) {
            EXPECT_EQ(out[i], 0.0);
            continue;
        }
        worst = std::max(worst, std::abs(out[i] - exact) / exact);
    }
    EXPECT_LE(worst, kBudget) << "sqrt(re^2+im^2) drifted past the budget";
}

TEST(ExtentMoments, MatchesMaskedScalarLoop) {
    const double bin_m = 0.0375;
    for (const std::size_t n : kPlaneSizes) {
        if (n == 0) continue;
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto v = random_profile(n, 301u + static_cast<unsigned>(n));
        const double threshold = 0.4;
        const std::size_t lo = n / 5;
        const std::size_t hi = n - n / 7;

        const auto m = tail::extent_moments(v.data(), lo, hi, threshold, bin_m);

        tail::Moments ref;
        for (std::size_t i = lo; i < hi; ++i) {
            if (v[i] < threshold) continue;
            const double w = v[i] * v[i];
            const double d = static_cast<double>(i) * bin_m;
            ref.w_sum += w;
            ref.m1 += w * d;
            ref.m2 += w * d * d;
        }
        // The kernel's fixed 4-slot accumulation differs from the linear
        // scalar loop only in summation order; tolerance covers that.
        EXPECT_NEAR(m.w_sum, ref.w_sum, 1e-12 * (1.0 + std::abs(ref.w_sum)));
        EXPECT_NEAR(m.m1, ref.m1, 1e-12 * (1.0 + std::abs(ref.m1)));
        EXPECT_NEAR(m.m2, ref.m2, 1e-12 * (1.0 + std::abs(ref.m2)));
    }
}

TEST(ExtentMoments, NanIsIncludedLikeTheScalarContinue) {
    // The mask replicates `if (v < t) continue`: an unordered compare is
    // false, so NaN elements are *included* -- the kernel must preserve
    // that (the downstream extent math then propagates the NaN).
    std::vector<double> v = {0.1, std::numeric_limits<double>::quiet_NaN(), 0.9, 0.8};
    const auto m = tail::extent_moments(v.data(), 0, v.size(), 0.5, 1.0);
    EXPECT_TRUE(std::isnan(m.w_sum));
}

TEST(ExtentMoments, EmptyRangeIsZero) {
    const double x = 1.0;
    const auto m = tail::extent_moments(&x, 0, 0, 0.0, 1.0);
    EXPECT_EQ(m.w_sum, 0.0);
    EXPECT_EQ(m.m1, 0.0);
    EXPECT_EQ(m.m2, 0.0);
}

TEST(MaxBin, FirstIndexOfMaximum) {
    for (const std::size_t n : kPlaneSizes) {
        SCOPED_TRACE("n=" + std::to_string(n));
        if (n == 0) {
            const double x = 0.0;
            EXPECT_EQ(tail::max_bin(&x, 0), 0u);
            continue;
        }
        auto v = random_profile(n, 401u + static_cast<unsigned>(n));
        std::size_t ref = 0;
        for (std::size_t i = 1; i < n; ++i)
            if (v[i] > v[ref]) ref = i;
        EXPECT_EQ(tail::max_bin(v.data(), n), ref);
    }
}

TEST(MaxBin, TiesKeepTheFirstIndex) {
    std::vector<double> v = {1.0, 3.0, 2.0, 3.0, 3.0, 0.5, 3.0, 1.0, 2.0};
    EXPECT_EQ(tail::max_bin(v.data(), v.size()), 1u);
}

TEST(PeakCandidates, MatchesThePredicate) {
    for (const std::size_t n : kPlaneSizes) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto v = random_profile(n, 501u + static_cast<unsigned>(n));
        const double threshold = 0.5;
        std::vector<double> out(n, -1.0);
        tail::peak_candidates(v.data(), n, threshold, out.data());

        if (n < 3) {
            for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], 0.0) << i;
            continue;
        }
        EXPECT_EQ(out.front(), 0.0);
        EXPECT_EQ(out.back(), 0.0);
        for (std::size_t i = 1; i + 1 < n; ++i) {
            const bool candidate =
                !(v[i] < threshold) && v[i] > v[i - 1] && !(v[i] < v[i + 1]);
            EXPECT_EQ(out[i], candidate ? 1.0 : 0.0) << i;
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatch-level bitwise parity (scalar is the reference)
// ---------------------------------------------------------------------------

TEST(TailDispatch, AllLevelsBitIdentical) {
    for (const std::size_t n : kPlaneSizes) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto cur_re = random_plane(n, 601u + static_cast<unsigned>(n));
        const auto cur_im = random_plane(n, 607u + static_cast<unsigned>(n));
        const auto base_prev_re = random_plane(n, 613u + static_cast<unsigned>(n));
        const auto base_prev_im = random_plane(n, 617u + static_cast<unsigned>(n));
        const auto profile = random_profile(n, 619u + static_cast<unsigned>(n));
        const double threshold = 0.5;
        const std::size_t lo = n / 4;
        const std::size_t hi = n - n / 8;

        std::vector<double> ref_diff, ref_scaled, ref_cand;
        tail::Moments ref_moments;
        std::size_t ref_max = 0;
        {
            ForcedLevel guard(simd::Level::kScalar);
            ASSERT_EQ(guard.granted(), simd::Level::kScalar);
            auto prev_re = base_prev_re, prev_im = base_prev_im;
            ref_diff.assign(n, -1.0);
            tail::diff_magnitude(cur_re.data(), cur_im.data(), prev_re.data(),
                                 prev_im.data(), ref_diff.data(), n);
            ref_scaled.assign(n, -1.0);
            tail::scaled_diff_magnitude(cur_re.data(), cur_im.data(),
                                        base_prev_re.data(), base_prev_im.data(),
                                        0.125, ref_scaled.data(), n);
            ref_moments =
                tail::extent_moments(profile.data(), lo, hi, threshold, 0.0375);
            ref_max = tail::max_bin(profile.data(), n);
            ref_cand.assign(n, -1.0);
            tail::peak_candidates(profile.data(), n, threshold, ref_cand.data());
        }

        for (const simd::Level level : {simd::Level::kSse2, simd::Level::kAvx2}) {
            ForcedLevel guard(level);
            if (guard.granted() != level) continue;  // hardware lacks this level
            SCOPED_TRACE(simd::to_string(level));

            auto prev_re = base_prev_re, prev_im = base_prev_im;
            std::vector<double> diff(n, -2.0);
            tail::diff_magnitude(cur_re.data(), cur_im.data(), prev_re.data(),
                                 prev_im.data(), diff.data(), n);
            EXPECT_TRUE(bitwise_equal(diff, ref_diff));
            EXPECT_TRUE(bitwise_equal(prev_re, cur_re));
            EXPECT_TRUE(bitwise_equal(prev_im, cur_im));

            std::vector<double> scaled(n, -2.0);
            tail::scaled_diff_magnitude(cur_re.data(), cur_im.data(),
                                        base_prev_re.data(), base_prev_im.data(),
                                        0.125, scaled.data(), n);
            EXPECT_TRUE(bitwise_equal(scaled, ref_scaled));

            const auto m =
                tail::extent_moments(profile.data(), lo, hi, threshold, 0.0375);
            EXPECT_EQ(m.w_sum, ref_moments.w_sum);
            EXPECT_EQ(m.m1, ref_moments.m1);
            EXPECT_EQ(m.m2, ref_moments.m2);

            EXPECT_EQ(tail::max_bin(profile.data(), n), ref_max);

            std::vector<double> cand(n, -2.0);
            tail::peak_candidates(profile.data(), n, threshold, cand.data());
            EXPECT_TRUE(bitwise_equal(cand, ref_cand));
        }
    }
}

// ---------------------------------------------------------------------------
// Windowed peak helpers and the nth_element noise floor
// ---------------------------------------------------------------------------

TEST(FindPeaksWindow, EquivalentToFindPeaksOnCopiedBand) {
    const auto profile = random_profile(512, 701);
    std::vector<double> scratch;
    std::vector<Peak> out;
    for (const std::size_t min_sep : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
        for (const auto& [lo, hi] : std::vector<std::pair<std::size_t, std::size_t>>{
                 {0, 512}, {17, 300}, {100, 103}, {0, 2}, {5, 5}}) {
            SCOPED_TRACE("lo=" + std::to_string(lo) + " hi=" + std::to_string(hi) +
                         " sep=" + std::to_string(min_sep));
            const std::vector<double> band(profile.begin() + static_cast<std::ptrdiff_t>(lo),
                                           profile.begin() + static_cast<std::ptrdiff_t>(hi));
            const auto ref = find_peaks(band, 0.5, min_sep);

            find_peaks_window(profile.data(), lo, hi, 0.5, min_sep, scratch, out);
            ASSERT_EQ(out.size(), ref.size());
            for (std::size_t i = 0; i < ref.size(); ++i) {
                EXPECT_EQ(out[i].bin, ref[i].bin + lo);
                EXPECT_EQ(out[i].value, ref[i].value);
                EXPECT_EQ(out[i].interpolated,
                          ref[i].interpolated + static_cast<double>(lo));
            }
        }
    }
}

TEST(ParabolicPeakWindow, EquivalentToCopiedBand) {
    const auto profile = random_profile(128, 801);
    const std::size_t lo = 20, hi = 90;
    const std::vector<double> band(profile.begin() + lo, profile.begin() + hi);
    for (std::size_t bin = lo; bin < hi; ++bin) {
        const double ref = parabolic_peak_position(band, bin - lo);
        EXPECT_EQ(parabolic_peak_position_window(profile.data(), lo, hi, bin),
                  ref + static_cast<double>(lo))
            << bin;
    }
}

TEST(NoiseFloorInplace, BitIdenticalToSortingFloor) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                                std::size_t{100}, std::size_t{1023}}) {
        for (const double pct : {5.0, 50.0, 75.0, 95.0, 100.0}) {
            SCOPED_TRACE("n=" + std::to_string(n) + " pct=" + std::to_string(pct));
            const auto values = random_profile(n, 901u + static_cast<unsigned>(n));
            auto scratch = values;
            EXPECT_EQ(noise_floor_inplace(scratch, pct), noise_floor(values, pct));
        }
    }
}

}  // namespace
}  // namespace witrack::dsp
