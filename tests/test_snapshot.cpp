// Session snapshot/restore suite. The contract under test: for the three
// canonical heterogeneous sessions (full-demand sim walk, TOF-only sim walk
// with a stateful stage, localize-only replay), snapshot at frame k +
// restore into a freshly built session == the uninterrupted run, bit for
// bit -- standalone and through EngineHost::checkpoint_session /
// restore_session, under the serial and the 4-worker shared-pool schedules.
// Plus the StateWriter/StateReader framing primitives and the rejection
// paths: truncated, corrupt, wrong-version and structurally mismatched
// snapshots all throw without disturbing the target engine or any live
// session on the host.
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "core/pipeline_steps.hpp"
#include "engine/engine.hpp"
#include "engine/host.hpp"
#include "engine/plugins.hpp"
#include "engine/replay.hpp"
#include "engine/sim_source.hpp"

namespace witrack {
namespace {

using core::PipelineOutputs;
using geom::Vec3;

// ------------------------------------------------------------ helpers

engine::EngineConfig walk_config(std::uint64_t seed) {
    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(seed);
    return config;
}

std::unique_ptr<sim::LineWalkScript> walk_script(double x0 = -1.0, double x1 = 1.0) {
    return std::make_unique<sim::LineWalkScript>(Vec3{x0, 5, 0}, Vec3{x1, 5, 0},
                                                 2.0, 1.0);
}

void expect_same_track(const std::vector<core::TrackPoint>& a,
                       const std::vector<core::TrackPoint>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time_s, b[i].time_s);
        EXPECT_EQ(a[i].position.x, b[i].position.x);
        EXPECT_EQ(a[i].position.y, b[i].position.y);
        EXPECT_EQ(a[i].position.z, b[i].position.z);
        EXPECT_EQ(a[i].residual_rms, b[i].residual_rms);
    }
}

void expect_same_tof(const core::TofFrame& a, const core::TofFrame& b) {
    ASSERT_EQ(a.antennas.size(), b.antennas.size());
    EXPECT_EQ(a.time_s, b.time_s);
    for (std::size_t rx = 0; rx < a.antennas.size(); ++rx) {
        const auto& x = a.antennas[rx];
        const auto& y = b.antennas[rx];
        EXPECT_EQ(x.contour.detected, y.contour.detected);
        EXPECT_EQ(x.contour.round_trip_m, y.contour.round_trip_m);
        ASSERT_EQ(x.denoised_m.has_value(), y.denoised_m.has_value());
        if (x.denoised_m) {
            EXPECT_EQ(*x.denoised_m, *y.denoised_m);
        }
    }
}

/// Record a deterministic sim episode to `path` once.
void record_episode(const std::string& path, std::uint64_t seed) {
    auto config = walk_config(seed);
    engine::SimSource live(config, walk_script());
    engine::Recorder recorder(path, live.fmcw(), live.array());
    engine::Frame frame;
    while (live.next(frame)) recorder.write(frame);
    recorder.close();
}

/// TOF-consuming stage whose whole history is snapshot state: after a
/// restore, `frames` must contain the pre-snapshot observations verbatim.
class TofTapStage : public engine::AppStage {
  public:
    std::string_view name() const override { return "tof_tap"; }
    engine::Inputs required_inputs() const override {
        return engine::Inputs::kTof;
    }
    bool concurrent_safe() const override { return true; }
    void on_frame(const engine::Frame&,
                  const core::WiTrackTracker::FrameResult& result,
                  engine::EventBus&) override {
        frames.push_back(result.tof);
    }
    void save_state(common::StateWriter& writer) const override {
        writer.u64(frames.size());
        for (const auto& frame : frames) core::save_state(writer, frame);
    }
    void load_state(common::StateReader& reader) override {
        frames.resize(reader.count(sizeof(double)));
        for (auto& frame : frames) core::load_state(reader, frame);
    }
    std::vector<core::TofFrame> frames;
};

// The three canonical session shapes, built fresh on demand so references,
// interrupted runs and restore targets are identically constructed.

std::unique_ptr<engine::Engine> make_full_session() {
    auto config = walk_config(501);
    return std::make_unique<engine::Engine>(
        config, std::make_unique<engine::SimSource>(config, walk_script()));
}

std::unique_ptr<engine::Engine> make_tof_session(TofTapStage** tap = nullptr) {
    auto config = walk_config(502);
    auto eng = std::make_unique<engine::Engine>(
        config,
        std::make_unique<engine::SimSource>(config, walk_script(-0.5, 1.5)));
    auto& stage = eng->emplace_stage<TofTapStage>();
    if (tap != nullptr) *tap = &stage;
    return eng;
}

std::unique_ptr<engine::Engine> make_replay_session(const std::string& path) {
    auto config = walk_config(507);
    config.with_outputs(PipelineOutputs::kRawPosition);
    return std::make_unique<engine::Engine>(
        config, std::make_unique<engine::ReplaySource>(path));
}

std::string snapshot_bytes(const engine::Engine& eng) {
    std::ostringstream out;
    eng.snapshot(out);
    return out.str();
}

// ------------------------------------------------- framing primitives

TEST(Serialize, WriterReaderFieldRoundTrip) {
    std::ostringstream out;
    common::StateWriter writer(out, 0xABCD1234u, 7);
    writer.begin_chunk("ONE ");
    writer.u8(200);
    writer.u32(0xDEADBEEFu);
    writer.u64(1ull << 50);
    writer.f64(-0.1);
    writer.boolean(true);
    writer.str("hello snapshot");
    writer.f64_vector({1.5, -2.5, 3.25});
    writer.vec3(Vec3{0.25, -0.5, 12.0});
    writer.end_chunk();
    writer.begin_chunk("TWO ");
    writer.u64(42);
    writer.end_chunk();
    writer.finish();

    std::istringstream in(out.str());
    common::StateReader reader(in, 0xABCD1234u, 7);
    reader.open_chunk("ONE ");
    EXPECT_EQ(reader.u8(), 200);
    EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
    EXPECT_EQ(reader.u64(), 1ull << 50);
    EXPECT_EQ(reader.f64(), -0.1);
    EXPECT_TRUE(reader.boolean());
    EXPECT_EQ(reader.str(), "hello snapshot");
    const auto v = reader.f64_vector();
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[1], -2.5);
    Vec3 p;
    reader.vec3(p);
    EXPECT_EQ(p.z, 12.0);
    reader.close_chunk();
    reader.open_chunk("TWO ");
    EXPECT_EQ(reader.u64(), 42u);
    reader.close_chunk();
}

TEST(Serialize, ReaderRejectsLayoutDrift) {
    std::ostringstream out;
    common::StateWriter writer(out, 1, 1);
    writer.begin_chunk("ONE ");
    writer.u64(1000);  // read below as an element count: far exceeds the chunk
    writer.u64(2);
    writer.end_chunk();
    writer.finish();
    const std::string bytes = out.str();

    {
        // A reader that leaves bytes behind decoded the wrong layout.
        std::istringstream in(bytes);
        common::StateReader reader(in, 1, 1);
        reader.open_chunk("ONE ");
        reader.u64();
        EXPECT_THROW(reader.close_chunk(), std::runtime_error);
    }
    {
        // ...and one that reads past the end hit a truncated field.
        std::istringstream in(bytes);
        common::StateReader reader(in, 1, 1);
        reader.open_chunk("ONE ");
        reader.u64();
        reader.u64();
        EXPECT_THROW(reader.u64(), std::runtime_error);
    }
    {
        // A corrupt element count cannot drive a huge allocation.
        std::istringstream in(bytes);
        common::StateReader reader(in, 1, 1);
        reader.open_chunk("ONE ");
        EXPECT_THROW(reader.count(sizeof(double)), std::runtime_error);
    }
    {
        // Positional layout: asking for the wrong tag fails loudly.
        std::istringstream in(bytes);
        common::StateReader reader(in, 1, 1);
        EXPECT_THROW(reader.open_chunk("TWO "), std::runtime_error);
    }
}

TEST(Serialize, RngRoundTripContinuesIdentically) {
    std::mt19937_64 rng(12345);
    for (int i = 0; i < 100; ++i) rng();  // advance into mid-sequence state

    std::ostringstream out;
    common::StateWriter writer(out, 1, 1);
    writer.begin_chunk("RNG ");
    common::save_state(writer, rng);
    writer.end_chunk();
    writer.finish();

    std::istringstream in(out.str());
    common::StateReader reader(in, 1, 1);
    reader.open_chunk("RNG ");
    std::mt19937_64 restored;
    common::load_state(reader, restored);
    reader.close_chunk();
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng(), restored());
}

// --------------------------------------- standalone bit-identical resume

/// snapshot at frame k + restore into a fresh identically-built Engine ==
/// the uninterrupted run, bit for bit.
void expect_resume_parity(
    const std::function<std::unique_ptr<engine::Engine>()>& make_session,
    std::size_t k) {
    auto reference = make_session();
    reference->run();

    auto interrupted = make_session();
    for (std::size_t i = 0; i < k; ++i) ASSERT_TRUE(interrupted->step());
    const std::string bytes = snapshot_bytes(*interrupted);
    interrupted.reset();  // the original session is gone; only bytes remain

    auto resumed = make_session();
    std::istringstream in(bytes);
    resumed->restore(in);
    EXPECT_EQ(resumed->frames_processed(), k);
    EXPECT_EQ(resumed->session_state(), engine::SessionState::kRunning);
    resumed->run();

    EXPECT_EQ(resumed->frames_processed(), reference->frames_processed());
    expect_same_track(reference->tracker().track(), resumed->tracker().track());
    expect_same_track(reference->tracker().raw_track(),
                      resumed->tracker().raw_track());
}

TEST(Snapshot, FullSessionResumesBitIdentical) {
    expect_resume_parity([] { return make_full_session(); }, 60);
}

TEST(Snapshot, TofOnlySessionResumesBitIdenticalWithStageState) {
    TofTapStage* ref_tap = nullptr;
    auto reference = make_tof_session(&ref_tap);
    reference->run();
    ASSERT_GT(ref_tap->frames.size(), 100u);
    EXPECT_TRUE(reference->tracker().track().empty());  // demand mask held

    TofTapStage* live_tap = nullptr;
    auto interrupted = make_tof_session(&live_tap);
    for (int i = 0; i < 60; ++i) ASSERT_TRUE(interrupted->step());
    const std::string bytes = snapshot_bytes(*interrupted);
    interrupted.reset();

    TofTapStage* resumed_tap = nullptr;
    auto resumed = make_tof_session(&resumed_tap);
    std::istringstream in(bytes);
    resumed->restore(in);
    // The stage's pre-snapshot history came back with the session.
    ASSERT_EQ(resumed_tap->frames.size(), 60u);
    resumed->run();

    ASSERT_EQ(resumed_tap->frames.size(), ref_tap->frames.size());
    for (std::size_t i = 0; i < ref_tap->frames.size(); ++i)
        expect_same_tof(ref_tap->frames[i], resumed_tap->frames[i]);
    EXPECT_TRUE(resumed->tracker().track().empty());
}

TEST(Snapshot, ReplaySessionResumesBitIdentical) {
    const std::string path = testing::TempDir() + "witrack_snapshot_replay.wtrk";
    record_episode(path, 507);
    expect_resume_parity([&] { return make_replay_session(path); }, 60);
    std::remove(path.c_str());
}

TEST(Snapshot, ResumeParityNearEpisodeBoundaries) {
    // k = 1 (almost nothing happened yet) and k deep into the episode, past
    // background training and the first detections.
    expect_resume_parity([] { return make_full_session(); }, 1);
    expect_resume_parity([] { return make_full_session(); }, 140);
}

// ------------------------------------------------ fleet checkpoint parity

/// The canonical 3-session heterogeneous fleet, checkpointed mid-flight via
/// EngineHost::checkpoint_session, restored onto a brand-new host via
/// restore_session, and run to completion: every session's output matches
/// its uninterrupted standalone reference bit for bit.
void run_checkpoint_fleet_parity(std::size_t host_workers) {
    const std::string path = testing::TempDir() + "witrack_snapshot_fleet.wtrk";
    record_episode(path, 507);

    // --- uninterrupted standalone references -----------------------------
    auto full_ref = make_full_session();
    full_ref->run();
    ASSERT_GT(full_ref->tracker().track().size(), 50u);
    TofTapStage* ref_tap = nullptr;
    auto tof_ref = make_tof_session(&ref_tap);
    tof_ref->run();
    ASSERT_GT(ref_tap->frames.size(), 100u);
    auto replay_ref = make_replay_session(path);
    replay_ref->run();
    ASSERT_GT(replay_ref->tracker().raw_track().size(), 50u);

    // --- host A: run the fleet halfway, checkpoint every session ---------
    engine::EngineHost host_a(
        engine::HostConfig{}.with_workers(host_workers).with_max_sessions(8));
    const auto full_id = host_a.admit("home-a", walk_config(501),
                                      std::make_unique<engine::SimSource>(
                                          walk_config(501), walk_script()));
    const auto tof_id =
        host_a.admit("home-b", walk_config(502),
                     std::make_unique<engine::SimSource>(walk_config(502),
                                                         walk_script(-0.5, 1.5)));
    host_a.session(tof_id)->emplace_stage<TofTapStage>();
    auto rp_config = walk_config(507);
    rp_config.with_outputs(PipelineOutputs::kRawPosition);
    const auto replay_id = host_a.admit(
        "replay-c", rp_config, std::make_unique<engine::ReplaySource>(path));

    for (int round = 0; round < 40; ++round) host_a.step_all();
    ASSERT_EQ(host_a.session(full_id)->frames_processed(), 40u);

    std::ostringstream full_snap, tof_snap, replay_snap;
    host_a.checkpoint_session(full_id, full_snap);
    host_a.checkpoint_session(tof_id, tof_snap);
    host_a.checkpoint_session(replay_id, replay_snap);

    // --- host B: a different process's worth of fleet, resumed -----------
    engine::EngineHost host_b(
        engine::HostConfig{}.with_workers(host_workers).with_max_sessions(8));
    std::istringstream full_in(full_snap.str());
    const auto full_b = host_b.restore_session(
        "home-a", walk_config(501),
        std::make_unique<engine::SimSource>(walk_config(501), walk_script()),
        full_in);
    TofTapStage* host_tap = nullptr;
    std::istringstream tof_in(tof_snap.str());
    const auto tof_b = host_b.restore_session(
        "home-b", walk_config(502),
        std::make_unique<engine::SimSource>(walk_config(502),
                                            walk_script(-0.5, 1.5)),
        tof_in, [&](engine::Engine& eng) {
            host_tap = &eng.emplace_stage<TofTapStage>();
        });
    std::istringstream replay_in(replay_snap.str());
    const auto replay_b = host_b.restore_session(
        "replay-c", rp_config, std::make_unique<engine::ReplaySource>(path),
        replay_in);

    // Restored sessions resume mid-episode with fresh host identities.
    EXPECT_EQ(host_b.session(full_b)->frames_processed(), 40u);
    EXPECT_EQ(host_b.state(full_b), engine::SessionState::kRunning);
    ASSERT_NE(host_tap, nullptr);
    EXPECT_EQ(host_tap->frames.size(), 40u);

    host_b.run();
    EXPECT_EQ(host_b.state(full_b), engine::SessionState::kFinished);
    EXPECT_EQ(host_b.state(tof_b), engine::SessionState::kFinished);
    EXPECT_EQ(host_b.state(replay_b), engine::SessionState::kFinished);

    expect_same_track(full_ref->tracker().track(),
                      host_b.session(full_b)->tracker().track());
    expect_same_track(full_ref->tracker().raw_track(),
                      host_b.session(full_b)->tracker().raw_track());
    ASSERT_EQ(ref_tap->frames.size(), host_tap->frames.size());
    for (std::size_t i = 0; i < ref_tap->frames.size(); ++i)
        expect_same_tof(ref_tap->frames[i], host_tap->frames[i]);
    EXPECT_TRUE(host_b.session(tof_b)->tracker().track().empty());
    expect_same_track(replay_ref->tracker().raw_track(),
                      host_b.session(replay_b)->tracker().raw_track());
    EXPECT_TRUE(host_b.session(replay_b)->tracker().track().empty());
    std::remove(path.c_str());
}

TEST(Snapshot, FleetCheckpointRestoreBitIdenticalSerialHost) {
    run_checkpoint_fleet_parity(1);
}

TEST(Snapshot, FleetCheckpointRestoreBitIdenticalSharedPoolHost) {
    run_checkpoint_fleet_parity(4);
}

// ------------------------------------------------------- rejection paths

TEST(Snapshot, RejectsTruncatedCorruptAndForeignStreams) {
    auto session = make_full_session();
    for (int i = 0; i < 30; ++i) ASSERT_TRUE(session->step());
    const std::string bytes = snapshot_bytes(*session);
    ASSERT_GT(bytes.size(), 64u);

    auto expect_rejected = [](const std::string& stream) {
        auto target = make_full_session();
        std::istringstream in(stream);
        EXPECT_THROW(target->restore(in), std::runtime_error);
        // Atomic rejection: the engine is exactly as constructed and still
        // runs the full episode, matching an untouched reference bit for bit.
        target->run();
        auto reference = make_full_session();
        reference->run();
        EXPECT_EQ(target->frames_processed(), reference->frames_processed());
        expect_same_track(reference->tracker().track(),
                          target->tracker().track());
    };

    // Truncated mid-chunk.
    expect_rejected(bytes.substr(0, bytes.size() / 2));
    // One flipped payload byte: the chunk CRC catches it.
    {
        std::string corrupt = bytes;
        corrupt[bytes.size() / 2] ^= 0x40;
        expect_rejected(corrupt);
    }
    // A future format version is refused, not misparsed.
    {
        std::string skewed = bytes;
        skewed[4] = 'B';
        skewed[5] = skewed[6] = skewed[7] = 0;
        expect_rejected(skewed);
    }
    // A foreign file is not a snapshot at all.
    {
        std::string foreign = bytes;
        foreign[0] ^= 0xFF;
        expect_rejected(foreign);
    }
    expect_rejected("definitely not a snapshot");
}

TEST(Snapshot, RejectsStructuralMismatch) {
    // Snapshot a session with a stage; restoring into a stage-less engine
    // (or one with different stages) must throw, not misattribute state.
    auto with_stage = make_tof_session();
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(with_stage->step());
    const std::string bytes = snapshot_bytes(*with_stage);

    auto bare = make_full_session();  // same pipeline, no stages
    std::istringstream in(bytes);
    EXPECT_THROW(bare->restore(in), std::runtime_error);

    auto wrong_stage = make_full_session();
    wrong_stage->emplace_stage<engine::FallMonitorStage>();
    std::istringstream in2(bytes);
    EXPECT_THROW(wrong_stage->restore(in2), std::runtime_error);
}

TEST(Snapshot, RestoreRequiresFreshEngine) {
    auto session = make_full_session();
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(session->step());
    const std::string bytes = snapshot_bytes(*session);

    // A session that already processed frames refuses to be overwritten.
    std::istringstream in(bytes);
    EXPECT_THROW(session->restore(in), std::logic_error);
}

TEST(Snapshot, HostRejectsCorruptSnapshotWithoutDisturbingLiveSessions) {
    auto session = make_full_session();
    for (int i = 0; i < 30; ++i) ASSERT_TRUE(session->step());
    std::string corrupt = snapshot_bytes(*session);
    corrupt[corrupt.size() / 2] ^= 0x01;

    engine::EngineHost host;
    const auto live = host.admit("live", walk_config(501),
                                 std::make_unique<engine::SimSource>(
                                     walk_config(501), walk_script()));
    for (int i = 0; i < 25; ++i) host.step_all();

    std::istringstream in(corrupt);
    EXPECT_THROW(
        host.restore_session("resumed", walk_config(501),
                             std::make_unique<engine::SimSource>(
                                 walk_config(501), walk_script()),
                             in),
        std::runtime_error);
    // Nothing was registered...
    EXPECT_EQ(host.total_sessions(), 1u);
    // ...and the live session finishes exactly as if nothing happened.
    host.run();
    EXPECT_EQ(host.state(live), engine::SessionState::kFinished);
    auto reference = make_full_session();
    reference->run();
    expect_same_track(reference->tracker().track(),
                      host.session(live)->tracker().track());

    // checkpoint_session on an unknown id is the same contract as state().
    std::ostringstream sink;
    EXPECT_THROW(host.checkpoint_session(9999, sink), std::out_of_range);
}

}  // namespace
}  // namespace witrack
