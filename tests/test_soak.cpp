// Fleet soak: hundreds of admit/churn/evict/reap cycles -- with
// checkpoint/restore in the middle -- on one long-lived EngineHost, under a
// live-allocation counter. The contract: after a warmup that populates the
// process-wide caches (FFT plans, CRC table, stream locales), the fleet
// reaches an allocation steady state; tenant churn and snapshot traffic
// must not leak.
//
// Runs under the `soak` ctest label: scripts/check.sh and the sanitizer CI
// lanes exclude it (-LE soak); a dedicated Release CI lane runs it
// (`ctest -L soak`).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <sstream>
#include <string>

#include "engine/engine.hpp"
#include "engine/host.hpp"
#include "engine/sim_source.hpp"

// ------------------------------------------------- allocation instrumentation
//
// Plain (non-aligned) global new/delete, counted. The default aligned
// overloads stay untouched; they pair with themselves, so the counter stays
// consistent either way.

namespace {
std::atomic<std::int64_t> g_live_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
    void* p = std::malloc(size > 0 ? size : 1);
    if (p == nullptr) throw std::bad_alloc();
    g_live_allocations.fetch_add(1, std::memory_order_relaxed);
    return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept {
    if (p == nullptr) return;
    g_live_allocations.fetch_sub(1, std::memory_order_relaxed);
    std::free(p);
}

void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace witrack {
namespace {

using geom::Vec3;

/// Short episodes (~16 frames) keep hundreds of full session lifetimes
/// affordable.
engine::EngineConfig churn_config(std::uint64_t seed) {
    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(seed);
    return config;
}

std::unique_ptr<sim::LineWalkScript> churn_script() {
    return std::make_unique<sim::LineWalkScript>(Vec3{-0.2, 5, 0}, Vec3{0.2, 5, 0},
                                                 0.2, 1.0);
}

TEST(Soak, FleetChurnWithCheckpointsHoldsSteadyStateAllocations) {
    constexpr int kCycles = 300;
    constexpr int kWarmupCycles = 50;  // caches populated, baseline taken here
    constexpr std::int64_t kSlack = 256;

    engine::EngineHost host(
        engine::HostConfig{}.with_workers(1).with_max_sessions(4));

    auto admit = [&host](std::uint64_t seed) {
        return host.admit("s" + std::to_string(seed), churn_config(seed),
                          std::make_unique<engine::SimSource>(churn_config(seed),
                                                              churn_script()));
    };

    std::int64_t baseline = 0;
    std::size_t finished = 0, evicted = 0, restored = 0;
    for (int cycle = 0; cycle < kCycles; ++cycle) {
        const auto seed = static_cast<std::uint64_t>(9000 + cycle);
        const auto churned = admit(seed);
        const auto survivor = admit(seed + 100000);
        for (int i = 0; i < 3; ++i) host.step_all();
        ASSERT_TRUE(host.evict(churned, "tenant churn"));
        ++evicted;

        // Mid-soak (and once during warmup, so the snapshot path's one-time
        // allocations land in the baseline): drain a session to bytes and
        // resume it as a brand-new tenant on the same host.
        if (cycle == 10 || cycle == kCycles / 2) {
            std::ostringstream snapshot;
            host.checkpoint_session(survivor, snapshot);
            ASSERT_TRUE(host.evict(survivor, "drained to snapshot"));
            ++evicted;
            std::istringstream in(snapshot.str());
            const auto resumed = host.restore_session(
                "resumed", churn_config(seed + 100000),
                std::make_unique<engine::SimSource>(churn_config(seed + 100000),
                                                    churn_script()),
                in);
            EXPECT_EQ(host.session(resumed)->frames_processed(), 3u);
            ++restored;
        }

        host.run();  // drain every remaining tenant
        finished += host.reap();
        if (cycle == kWarmupCycles)
            baseline = g_live_allocations.load(std::memory_order_relaxed);
    }

    EXPECT_EQ(host.total_sessions(), 0u);
    EXPECT_GT(finished, static_cast<std::size_t>(kCycles));
    EXPECT_EQ(evicted, static_cast<std::size_t>(kCycles) + 2);
    EXPECT_EQ(restored, 2u);

    // Steady state: a quarter-thousand churn cycles past warmup moved the
    // live-allocation count by at most the slack (transient scratch that
    // happens to be alive at the sample points).
    const auto live = g_live_allocations.load(std::memory_order_relaxed);
    EXPECT_GT(baseline, 0);
    EXPECT_LE(live, baseline + kSlack);
}

}  // namespace
}  // namespace witrack
