// Simulation layer tests: environments, the articulated human model, the
// motion scripts (walk / sit / fall / point), and the scenario engine.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/environment.hpp"
#include "sim/human.hpp"
#include "sim/motion.hpp"
#include "sim/scenario.hpp"

namespace witrack::sim {
namespace {

using geom::Vec3;

// ------------------------------------------------------------ environment

TEST(EnvironmentTest, ThroughWallHasFrontWall) {
    const auto tw = make_through_wall_lab();
    const auto los = make_line_of_sight_lab();
    EXPECT_EQ(tw.scene.walls.size(), los.scene.walls.size() + 1);
    // The front wall must separate the device (y=0) from the room.
    bool found = false;
    for (const auto& wall : tw.scene.walls)
        if (wall.segment_crosses({0, 0, 1.3}, {0, 5, 1.0})) found = true;
    EXPECT_TRUE(found);
    for (const auto& wall : los.scene.walls)
        EXPECT_FALSE(wall.segment_crosses({0, 0, 1.3}, {0, 5, 1.0}));
}

TEST(EnvironmentTest, BoundsInsideRoom) {
    const auto env = make_through_wall_lab();
    EXPECT_GT(env.bounds.y_min, 0.3);   // behind the front wall
    EXPECT_LT(env.bounds.y_max, 10.3);  // before the back wall
    EXPECT_LT(env.bounds.x_min, env.bounds.x_max);
}

TEST(EnvironmentTest, FurnitureToggle) {
    RoomSpec spec;
    spec.add_furniture = false;
    EXPECT_TRUE(make_lab_environment(spec).scene.clutter.empty());
    spec.add_furniture = true;
    EXPECT_FALSE(make_lab_environment(spec).scene.clutter.empty());
}

// ------------------------------------------------------------------ human

TEST(HumanTest, ScattererCountAndFloors) {
    HumanModel human(HumanParams{}, Rng(1));
    Pose pose;
    pose.center = {0, 5, 1.0};
    pose.speed_mps = 1.0;
    const auto parts = human.update(pose, 0.0125, {0, 0, 1.3});
    EXPECT_EQ(parts.size(), 6u);  // torso, head, 2 arms, 2 legs
    for (const auto& p : parts) {
        EXPECT_GE(p.position.z, 0.05);
        EXPECT_GT(p.rcs_m2, 0.0);
    }
}

TEST(HumanTest, HandAddsScatterers) {
    HumanModel human(HumanParams{}, Rng(2));
    Pose pose;
    pose.center = {0, 5, 1.0};
    pose.hand = Vec3{0.4, 4.6, 1.4};
    const auto parts = human.update(pose, 0.0125, {0, 0, 1.3});
    EXPECT_EQ(parts.size(), 8u);  // + hand and forearm
}

TEST(HumanTest, TorsoSurfaceFacesDevice) {
    HumanParams params;
    params.gait_wander_m = 0.0;
    params.vertical_wander_m = 0.0;
    HumanModel human(params, Rng(3));
    Pose pose;
    pose.center = {0, 5, 1.0};
    pose.speed_mps = 0.0;
    pose.body_static = true;
    const auto parts = human.update(pose, 0.0125, {0, 0, 1.3});
    // Torso (first scatterer) must be closer to the device than the centre.
    const double torso_range = parts[0].position.distance_to({0, 0, 1.3});
    const double center_range = pose.center.distance_to({0, 0, 1.3});
    EXPECT_LT(torso_range, center_range);
    EXPECT_NEAR(center_range - torso_range, params.torso_half_depth_m, 0.03);
}

TEST(HumanTest, StaticBodyProducesIdenticalScatterers) {
    // A frozen body must yield bit-identical constellations so background
    // subtraction can cancel it (paper Section 10: a static person is
    // removed together with the static clutter).
    HumanModel human(HumanParams{}, Rng(4));
    Pose pose;
    pose.center = {1, 6, 1.0};
    pose.body_static = true;
    const auto a = human.update(pose, 0.0125, {0, 0, 1.3});
    const auto b = human.update(pose, 0.0125, {0, 0, 1.3});
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].position.x, b[i].position.x);
        EXPECT_DOUBLE_EQ(a[i].rcs_m2, b[i].rcs_m2);
        EXPECT_DOUBLE_EQ(a[i].phase_rad, b[i].phase_rad);
    }
}

TEST(HumanTest, WalkingBodyFluctuates) {
    HumanModel human(HumanParams{}, Rng(5));
    Pose pose;
    pose.center = {1, 6, 1.0};
    pose.speed_mps = 1.2;
    const auto a = human.update(pose, 0.0125, {0, 0, 1.3});
    pose.center = {1.015, 6, 1.0};
    const auto b = human.update(pose, 0.0125, {0, 0, 1.3});
    bool rcs_changed = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].rcs_m2 != b[i].rcs_m2) rcs_changed = true;
    EXPECT_TRUE(rcs_changed);
}

// ----------------------------------------------------------------- motion

TEST(MotionTest, SmoothstepEndpoints) {
    EXPECT_DOUBLE_EQ(smoothstep01(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(smoothstep01(0.0), 0.0);
    EXPECT_DOUBLE_EQ(smoothstep01(0.5), 0.5);
    EXPECT_DOUBLE_EQ(smoothstep01(1.0), 1.0);
    EXPECT_DOUBLE_EQ(smoothstep01(2.0), 1.0);
}

TEST(MotionTest, RandomWaypointStaysInBounds) {
    MotionBounds bounds{-2, 2, 3, 7};
    RandomWaypointWalk walk(bounds, 30.0, Rng(6));
    for (double t = 0.0; t < 30.0; t += 0.25) {
        const Pose pose = walk.pose_at(t);
        EXPECT_GE(pose.center.x, bounds.x_min - 1e-9);
        EXPECT_LE(pose.center.x, bounds.x_max + 1e-9);
        EXPECT_GE(pose.center.y, bounds.y_min - 1e-9);
        EXPECT_LE(pose.center.y, bounds.y_max + 1e-9);
        EXPECT_LE(pose.speed_mps, 1.31);
    }
}

TEST(MotionTest, RandomWaypointIsDeterministic) {
    MotionBounds bounds{-2, 2, 3, 7};
    RandomWaypointWalk a(bounds, 20.0, Rng(7));
    RandomWaypointWalk b(bounds, 20.0, Rng(7));
    for (double t = 0.0; t < 20.0; t += 1.0)
        EXPECT_DOUBLE_EQ(a.pose_at(t).center.x, b.pose_at(t).center.x);
}

struct ActivityCase {
    ActivityKind kind;
    double max_final_z;
    double min_final_z;
};

class ActivityScripts : public ::testing::TestWithParam<ActivityCase> {};

TEST_P(ActivityScripts, FinalElevationInExpectedBand) {
    MotionBounds bounds{-2, 2, 3, 7};
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        ActivityScript script(GetParam().kind, bounds, Rng(seed), 30.0);
        const Pose final_pose = script.pose_at(29.9);
        EXPECT_GE(final_pose.center.z, GetParam().min_final_z);
        EXPECT_LE(final_pose.center.z, GetParam().max_final_z);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllActivities, ActivityScripts,
    ::testing::Values(ActivityCase{ActivityKind::kWalk, 1.2, 0.8},
                      ActivityCase{ActivityKind::kSitChair, 0.72, 0.55},
                      ActivityCase{ActivityKind::kSitFloor, 0.38, 0.24},
                      ActivityCase{ActivityKind::kFall, 0.20, 0.06}),
    [](const ::testing::TestParamInfo<ActivityCase>& info) {
        switch (info.param.kind) {
            case ActivityKind::kWalk: return std::string("Walk");
            case ActivityKind::kSitChair: return std::string("SitChair");
            case ActivityKind::kSitFloor: return std::string("SitFloor");
            case ActivityKind::kFall: return std::string("Fall");
        }
        return std::string("Unknown");
    });

TEST(MotionTest, FallsAreFasterThanFloorSits) {
    MotionBounds bounds{-2, 2, 3, 7};
    double fall_mean = 0.0, sit_mean = 0.0;
    const int n = 40;
    for (int i = 0; i < n; ++i) {
        fall_mean += ActivityScript(ActivityKind::kFall, bounds, Rng(i), 30.0)
                         .transition_duration_s();
        sit_mean += ActivityScript(ActivityKind::kSitFloor, bounds, Rng(100 + i), 30.0)
                        .transition_duration_s();
    }
    EXPECT_LT(fall_mean / n, 0.7 * sit_mean / n);
}

TEST(MotionTest, PointingGestureTimeline) {
    PointingScript script({0.5, 5.0, 0}, {0.3, 0.8, 0.1}, Rng(8));
    // Still before the raise.
    const Pose before = script.pose_at(0.5);
    ASSERT_TRUE(before.hand.has_value());
    const Pose after = script.pose_at(script.duration_s() - 0.2);
    // Hand returns to rest at the end.
    EXPECT_NEAR(before.hand->distance_to(*after.hand), 0.0, 1e-9);
    // Extended mid-gesture: hand moves toward the pointing direction.
    const Pose mid = script.pose_at(script.raise_start_s() + 1.3);
    EXPECT_GT(mid.hand->distance_to(*before.hand), 0.4);
    EXPECT_TRUE(mid.body_static);
}

TEST(MotionTest, PointingDirectionIsUnit) {
    PointingScript script({0, 5, 0}, {2, 1, 0.5}, Rng(9));
    EXPECT_NEAR(script.true_direction().norm(), 1.0, 1e-12);
}

TEST(MotionTest, LineWalkInterpolates) {
    LineWalkScript script({0, 3, 0}, {0, 7, 0}, 4.0, 1.0);
    EXPECT_NEAR(script.pose_at(2.0).center.y, 5.0, 1e-9);
    EXPECT_NEAR(script.pose_at(2.0).speed_mps, 1.0, 1e-9);
    EXPECT_NEAR(script.pose_at(99.0).center.y, 7.0, 1e-9);  // clamped
}

// --------------------------------------------------------------- scenario

TEST(ScenarioTest, ProducesExpectedFrameLayout) {
    ScenarioConfig config;
    config.seed = 11;
    Scenario scenario(config,
                      std::make_unique<StandStillScript>(Vec3{0, 5, 0}, 0.2));
    Scenario::Frame frame;
    ASSERT_TRUE(scenario.next(frame));
    EXPECT_EQ(frame.sweeps.num_sweeps(), config.fmcw.sweeps_per_frame);
    EXPECT_EQ(frame.sweeps.num_rx(), 3u);  // T array: 3 Rx
    EXPECT_EQ(frame.sweeps.samples_per_sweep(), config.fmcw.samples_per_sweep());
    EXPECT_EQ(frame.sweeps.sweep(0, 0).size(), config.fmcw.samples_per_sweep());
}

TEST(ScenarioTest, FastCaptureEmitsSingleSweep) {
    ScenarioConfig config;
    config.fast_capture = true;
    Scenario scenario(config,
                      std::make_unique<StandStillScript>(Vec3{0, 5, 0}, 0.2));
    Scenario::Frame frame;
    ASSERT_TRUE(scenario.next(frame));
    EXPECT_EQ(frame.sweeps.num_sweeps(), 1u);
}

TEST(ScenarioTest, EndsWithScript) {
    ScenarioConfig config;
    Scenario scenario(config,
                      std::make_unique<StandStillScript>(Vec3{0, 5, 0}, 0.1));
    Scenario::Frame frame;
    std::size_t frames = 0;
    while (scenario.next(frame)) ++frames;
    EXPECT_EQ(frames, 8u);  // 0.1 s / 12.5 ms
}

TEST(ScenarioTest, SecondPersonAppearsInTruth) {
    ScenarioConfig config;
    config.second_person = true;
    Scenario scenario(
        config, std::make_unique<StandStillScript>(Vec3{-1, 4, 0}, 0.2),
        std::make_unique<StandStillScript>(Vec3{1.5, 6, 0}, 0.2));
    Scenario::Frame frame;
    ASSERT_TRUE(scenario.next(frame));
    ASSERT_TRUE(frame.pose2.has_value());
    EXPECT_NEAR(frame.pose2->center.x, 1.5, 1e-9);
}

TEST(ScenarioTest, PllResidualIsSmall) {
    const auto residual = simulate_pll_residual(FmcwParams{});
    // The linearized sweep's ripple must be far below one FFT bin's worth
    // of frequency error over typical delays, or ranging would smear.
    EXPECT_LT(residual.ripple_amplitude_hz, 5e5);
}

TEST(ScenarioTest, DeterministicAcrossRuns) {
    auto run = [] {
        ScenarioConfig config;
        config.seed = 77;
        Scenario scenario(
            config, std::make_unique<LineWalkScript>(Vec3{-1, 4, 0}, Vec3{1, 6, 0},
                                                     0.3, 1.0));
        Scenario::Frame frame;
        double checksum = 0.0;
        while (scenario.next(frame))
            for (std::size_t rx = 0; rx < frame.sweeps.num_rx(); ++rx) {
                const auto row = frame.sweeps.sweep(rx, 0);
                checksum += row[100] + row[2000];
            }
        return checksum;
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace witrack::sim
