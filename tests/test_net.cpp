// Network ingestion suite. The contract under test: frames shipped through
// the WTNF wire protocol into a NetSource-fed Engine produce output
// bit-identical to the same episode pulled from the in-process SimSource --
// over real loopback UDP datagrams -- and every way a link can misbehave
// (truncation, corruption, loss, reordering, duplication, version skew,
// foreign traffic) is counted in NetIngestStats and degrades the stream
// gracefully: gaps, never crashes, never silently corrupt frames. Plus the
// TCP control plane: PING/STATS/PAUSE/RESUME/EVICT/CHECKPOINT driving a
// live EngineHost over a socket.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <span>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "engine/engine.hpp"
#include "engine/host.hpp"
#include "engine/sim_source.hpp"
#include "hw/fault_injector.hpp"
#include "net/control_server.hpp"
#include "net/datagram_source.hpp"
#include "net/fault_injector.hpp"
#include "net/frame_protocol.hpp"
#include "net/net_source.hpp"
#include "net/sequence_tracker.hpp"
#include "net/udp_socket.hpp"

namespace witrack {
namespace {

using geom::Vec3;
using net::Datagram;
using net::DecodeStatus;

// ------------------------------------------------------------ helpers

engine::EngineConfig walk_config(std::uint64_t seed) {
    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(seed);
    return config;
}

std::unique_ptr<sim::LineWalkScript> walk_script(double seconds = 2.0) {
    return std::make_unique<sim::LineWalkScript>(Vec3{-1.0, 5, 0},
                                                 Vec3{1.0, 5, 0}, seconds, 1.0);
}

/// Capture a full sim episode as owned Frame copies.
std::vector<engine::Frame> record_frames(std::uint64_t seed,
                                         double seconds = 2.0) {
    auto config = walk_config(seed);
    engine::SimSource source(config, walk_script(seconds));
    std::vector<engine::Frame> frames;
    engine::Frame frame;
    while (source.next(frame)) frames.push_back(frame);
    return frames;
}

/// A tiny frame whose body fits any MTU -- protocol unit-test fodder.
engine::Frame tiny_frame(double time_s = 0.25) {
    engine::Frame frame;
    frame.time_s = time_s;
    frame.sweeps.resize(2, 1, 4);
    for (std::size_t i = 0; i < frame.sweeps.size(); ++i)
        frame.sweeps.data()[i] = 0.5 * static_cast<double>(i) - 1.0;
    frame.truth = engine::GroundTruth{Vec3{0.1, 4.5, -0.2}, Vec3{1.0, 2.0, 3.0}};
    return frame;
}

void expect_same_frame(const engine::Frame& a, const engine::Frame& b) {
    EXPECT_EQ(a.time_s, b.time_s);
    ASSERT_EQ(a.sweeps.num_rx(), b.sweeps.num_rx());
    ASSERT_EQ(a.sweeps.num_sweeps(), b.sweeps.num_sweeps());
    ASSERT_EQ(a.sweeps.samples_per_sweep(), b.sweeps.samples_per_sweep());
    EXPECT_EQ(std::memcmp(a.sweeps.data(), b.sweeps.data(),
                          a.sweeps.size() * sizeof(double)),
              0);
    ASSERT_EQ(a.truth.has_value(), b.truth.has_value());
    if (a.truth) {
        EXPECT_EQ(a.truth->position.x, b.truth->position.x);
        EXPECT_EQ(a.truth->position.y, b.truth->position.y);
        EXPECT_EQ(a.truth->position.z, b.truth->position.z);
        ASSERT_EQ(a.truth->position2.has_value(), b.truth->position2.has_value());
        if (a.truth->position2) {
            EXPECT_EQ(a.truth->position2->x, b.truth->position2->x);
            EXPECT_EQ(a.truth->position2->y, b.truth->position2->y);
            EXPECT_EQ(a.truth->position2->z, b.truth->position2->z);
        }
    }
}

void expect_same_track(const std::vector<core::TrackPoint>& a,
                       const std::vector<core::TrackPoint>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time_s, b[i].time_s);
        EXPECT_EQ(a[i].position.x, b[i].position.x);
        EXPECT_EQ(a[i].position.y, b[i].position.y);
        EXPECT_EQ(a[i].position.z, b[i].position.z);
        EXPECT_EQ(a[i].residual_rms, b[i].residual_rms);
    }
}

/// The full datagram stream of an episode: every frame in seq order, the
/// end-of-stream marker last.
std::vector<Datagram> pack_episode(const std::vector<engine::Frame>& frames,
                                   std::uint64_t token,
                                   std::size_t mtu = net::kDefaultMtuBytes) {
    std::vector<Datagram> stream;
    for (std::size_t i = 0; i < frames.size(); ++i)
        for (auto& datagram : net::pack_frame(frames[i], token, i, mtu))
            stream.push_back(std::move(datagram));
    stream.push_back(net::pack_end_of_stream(token, frames.size()));
    return stream;
}

std::unique_ptr<net::NetSource> queue_source(
    std::vector<Datagram> stream, std::uint64_t token,
    net::SequenceTrackerConfig tracker = {}) {
    auto queue = std::make_unique<net::QueueDatagramSource>();
    for (auto& datagram : stream) queue->push(std::move(datagram));
    queue->close();
    net::NetSourceConfig config;
    config.session_token = token;
    config.tracker = tracker;
    return std::make_unique<net::NetSource>(std::move(queue), config);
}

// Header field offsets (see the layout table in net/frame_protocol.hpp).
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffFlags = 6;
constexpr std::size_t kOffFragIndex = 24;
constexpr std::size_t kOffFragCount = 26;

void patch16(Datagram& datagram, std::size_t offset, std::uint16_t value) {
    std::memcpy(datagram.data() + offset, &value, sizeof value);
}

/// Recompute and overwrite the trailing CRC, so field-tampering tests
/// exercise the header validation rather than tripping the CRC check.
void reseal(Datagram& datagram) {
    const std::uint32_t crc =
        common::crc32(datagram.data(), datagram.size() - net::kTrailerBytes);
    std::memcpy(datagram.data() + datagram.size() - net::kTrailerBytes, &crc,
                sizeof crc);
}

DecodeStatus decode(const Datagram& datagram) {
    net::FrameHeader header;
    std::span<const std::uint8_t> payload;
    return net::decode_datagram(datagram, header, payload);
}

// ------------------------------------------------------ wire protocol

TEST(FrameProtocol, SingleFragmentRoundTrip) {
    const engine::Frame frame = tiny_frame();
    const auto datagrams = net::pack_frame(frame, 42, 7);
    ASSERT_EQ(datagrams.size(), 1u);
    EXPECT_LE(datagrams[0].size(), net::kDefaultMtuBytes);

    net::FrameHeader header;
    std::span<const std::uint8_t> payload;
    ASSERT_EQ(net::decode_datagram(datagrams[0], header, payload),
              DecodeStatus::kOk);
    EXPECT_EQ(header.token, 42u);
    EXPECT_EQ(header.frame_seq, 7u);
    EXPECT_EQ(header.fragment_index, 0u);
    EXPECT_EQ(header.fragment_count, 1u);
    EXPECT_FALSE(header.end_of_stream());
    EXPECT_EQ(payload.size(), net::frame_body_bytes(frame));

    engine::Frame decoded;
    ASSERT_TRUE(net::decode_frame_body(payload, decoded));
    expect_same_frame(frame, decoded);
}

TEST(FrameProtocol, MultiFragmentRoundTrip) {
    engine::Frame frame = tiny_frame(1.5);
    frame.truth.reset();
    frame.sweeps.resize(3, 1, 500);  // 12 KB body: ~9 fragments at MTU 1400
    for (std::size_t i = 0; i < frame.sweeps.size(); ++i)
        frame.sweeps.data()[i] = std::sin(0.01 * static_cast<double>(i));

    const auto datagrams = net::pack_frame(frame, 9, 0);
    ASSERT_GT(datagrams.size(), 4u);
    for (const auto& datagram : datagrams)
        EXPECT_LE(datagram.size(), net::kDefaultMtuBytes);

    net::SequenceTracker tracker;
    for (const auto& datagram : datagrams) {
        net::FrameHeader header;
        std::span<const std::uint8_t> payload;
        ASSERT_EQ(net::decode_datagram(datagram, header, payload),
                  DecodeStatus::kOk);
        EXPECT_EQ(header.fragment_count, datagrams.size());
        tracker.offer(header, payload);
    }
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> body;
    ASSERT_TRUE(tracker.pop(seq, body));
    EXPECT_EQ(seq, 0u);
    engine::Frame decoded;
    ASSERT_TRUE(net::decode_frame_body(body, decoded));
    expect_same_frame(frame, decoded);
}

TEST(FrameProtocol, EndOfStreamMarker) {
    const Datagram eos = net::pack_end_of_stream(5, 160);
    net::FrameHeader header;
    std::span<const std::uint8_t> payload;
    ASSERT_EQ(net::decode_datagram(eos, header, payload), DecodeStatus::kOk);
    EXPECT_TRUE(header.end_of_stream());
    EXPECT_EQ(header.frame_seq, 160u);
    EXPECT_TRUE(payload.empty());
}

TEST(FrameProtocol, PackRejectsUnusableMtu) {
    EXPECT_THROW(net::pack_frame(tiny_frame(), 1, 0,
                                 net::kHeaderBytes + net::kTrailerBytes),
                 std::invalid_argument);
}

TEST(FrameProtocol, PackRejectsFragmentCountOverflow) {
    engine::Frame frame = tiny_frame();
    frame.truth.reset();
    frame.sweeps.resize(4, 1, 2500);  // 80 KB body
    // 1-byte payloads would need ~80000 fragments: over the u16 count.
    EXPECT_THROW(net::pack_frame(frame, 1, 0,
                                 net::kHeaderBytes + net::kTrailerBytes + 1),
                 std::invalid_argument);
}

TEST(FrameProtocol, TornDatagramPaths) {
    const Datagram good = net::pack_frame(tiny_frame(), 3, 0)[0];
    ASSERT_EQ(decode(good), DecodeStatus::kOk);

    // Too short to even hold a header.
    Datagram torn(good.begin(), good.begin() + 20);
    EXPECT_EQ(decode(torn), DecodeStatus::kTruncated);

    // Tail cut off: total length disagrees with payload_len.
    torn = good;
    torn.pop_back();
    EXPECT_EQ(decode(torn), DecodeStatus::kTruncated);

    // Not our protocol at all.
    torn = good;
    torn[0] ^= 0xFF;
    EXPECT_EQ(decode(torn), DecodeStatus::kBadMagic);

    // Version skew is judged BEFORE the CRC (a future revision may move the
    // CRC field), so a bumped version is reported as skew even though the
    // CRC no longer matches.
    torn = good;
    patch16(torn, kOffVersion, net::kProtocolVersion + 1);
    EXPECT_EQ(decode(torn), DecodeStatus::kVersionSkew);

    // One flipped payload bit: CRC catches it.
    torn = good;
    torn[net::kHeaderBytes] ^= 0x01;
    EXPECT_EQ(decode(torn), DecodeStatus::kBadCrc);
}

TEST(FrameProtocol, MalformedHeaderPaths) {
    const Datagram good = net::pack_frame(tiny_frame(), 3, 0)[0];

    // fragment_count == 0 can index nothing.
    Datagram bad = good;
    patch16(bad, kOffFragCount, 0);
    reseal(bad);
    EXPECT_EQ(decode(bad), DecodeStatus::kMalformed);

    // fragment_index out of range.
    bad = good;
    patch16(bad, kOffFragIndex, 5);
    reseal(bad);
    EXPECT_EQ(decode(bad), DecodeStatus::kMalformed);

    // End-of-stream markers carry no payload.
    bad = good;
    patch16(bad, kOffFlags, net::kFlagEndOfStream);
    reseal(bad);
    EXPECT_EQ(decode(bad), DecodeStatus::kMalformed);

    // payload_len * fragment_count blowing past the frame body cap: needs
    // an MTU-sized payload (~1.4 KB) so 65535 fragments exceed 64 MiB.
    engine::Frame wide = tiny_frame();
    wide.sweeps.resize(3, 1, 500);
    bad = net::pack_frame(wide, 3, 0)[0];
    ASSERT_GT(bad.size(), 1024u + net::kHeaderBytes + net::kTrailerBytes);
    patch16(bad, kOffFragCount, 0xFFFF);
    reseal(bad);
    EXPECT_EQ(decode(bad), DecodeStatus::kMalformed);
}

TEST(FrameProtocol, BodyShapeMismatchRejected) {
    const engine::Frame frame = tiny_frame();
    const auto datagrams = net::pack_frame(frame, 1, 0);
    net::FrameHeader header;
    std::span<const std::uint8_t> payload;
    ASSERT_EQ(net::decode_datagram(datagrams[0], header, payload),
              DecodeStatus::kOk);

    // Corrupt the num_rx shape field inside the body: the sample count no
    // longer matches, so the body must be rejected, not misinterpreted.
    std::vector<std::uint8_t> body(payload.begin(), payload.end());
    const std::size_t shape_offset =
        sizeof(double) + 1 + 6 * sizeof(double);  // time, flags, two truths
    std::uint32_t bogus_rx = 7;
    std::memcpy(body.data() + shape_offset, &bogus_rx, sizeof bogus_rx);
    engine::Frame decoded;
    EXPECT_FALSE(net::decode_frame_body(body, decoded));

    // Truncated body: same verdict.
    std::vector<std::uint8_t> short_body(payload.begin(), payload.end() - 8);
    EXPECT_FALSE(net::decode_frame_body(short_body, decoded));
}

// --------------------------------------------------- sequence tracking

/// offer() every datagram of `frame_seq` packed from a tiny frame.
void offer_frame(net::SequenceTracker& tracker, std::uint64_t frame_seq,
                 std::uint64_t token = 1) {
    const auto datagrams =
        net::pack_frame(tiny_frame(0.1 * static_cast<double>(frame_seq)),
                        token, frame_seq);
    for (const auto& datagram : datagrams) {
        net::FrameHeader header;
        std::span<const std::uint8_t> payload;
        ASSERT_EQ(net::decode_datagram(datagram, header, payload),
                  DecodeStatus::kOk);
        tracker.offer(header, payload);
    }
}

TEST(SequenceTracker, InOrderDelivery) {
    net::SequenceTracker tracker;
    for (std::uint64_t seq = 0; seq < 5; ++seq) offer_frame(tracker, seq);
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> body;
    for (std::uint64_t want = 0; want < 5; ++want) {
        ASSERT_TRUE(tracker.pop(seq, body));
        EXPECT_EQ(seq, want);
    }
    EXPECT_FALSE(tracker.pop(seq, body));
    EXPECT_EQ(tracker.stats().frame_gaps, 0u);
    EXPECT_EQ(tracker.stats().reorders, 0u);
    EXPECT_EQ(tracker.stats().duplicates, 0u);
}

TEST(SequenceTracker, ReorderedFramesDeliveredInOrder) {
    net::SequenceTracker tracker;
    offer_frame(tracker, 1);  // arrives first
    offer_frame(tracker, 0);
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> body;
    ASSERT_TRUE(tracker.pop(seq, body));
    EXPECT_EQ(seq, 0u);
    ASSERT_TRUE(tracker.pop(seq, body));
    EXPECT_EQ(seq, 1u);
    EXPECT_GE(tracker.stats().reorders, 1u);
    EXPECT_EQ(tracker.stats().frame_gaps, 0u);
}

TEST(SequenceTracker, FlushAccountsGapsAgainstEndOfStream) {
    net::SequenceTracker tracker;
    offer_frame(tracker, 0);
    offer_frame(tracker, 1);
    offer_frame(tracker, 3);  // 2 never arrives
    net::FrameHeader header;
    std::span<const std::uint8_t> payload;
    const Datagram eos = net::pack_end_of_stream(1, 5);  // 4 never arrives
    ASSERT_EQ(net::decode_datagram(eos, header, payload), DecodeStatus::kOk);
    tracker.offer(header, payload);
    EXPECT_TRUE(tracker.end_of_stream_seen());

    tracker.flush();
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> body;
    std::vector<std::uint64_t> delivered;
    while (tracker.pop(seq, body)) delivered.push_back(seq);
    EXPECT_EQ(delivered, (std::vector<std::uint64_t>{0, 1, 3}));
    EXPECT_EQ(tracker.stats().frame_gaps, 2u);  // seqs 2 and 4
    EXPECT_EQ(tracker.pending_frames(), 0u);
}

TEST(SequenceTracker, DuplicateAndLateFragmentsCounted) {
    net::SequenceTracker tracker;
    // Frame 1 arrives twice while the hole at 0 blocks delivery: the
    // second copy is a duplicate of a frame still parked in the tracker.
    offer_frame(tracker, 1);
    offer_frame(tracker, 1);
    EXPECT_GE(tracker.stats().duplicates, 1u);

    offer_frame(tracker, 0);
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> body;
    ASSERT_TRUE(tracker.pop(seq, body));
    ASSERT_TRUE(tracker.pop(seq, body));
    offer_frame(tracker, 0);  // after the frame's book closed: late
    EXPECT_GE(tracker.stats().late_fragments, 1u);
}

TEST(SequenceTracker, WindowOverflowWritesOffTheHole) {
    net::SequenceTracker tracker({.window_frames = 4});
    // Frame 0 never arrives; 1..4 pending stalls delivery until the window
    // fills, then 0 is written off and everything flows.
    for (std::uint64_t seq = 1; seq <= 3; ++seq) offer_frame(tracker, seq);
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> body;
    EXPECT_FALSE(tracker.pop(seq, body));  // still hoping for frame 0
    offer_frame(tracker, 5);               // frontier - next == window
    std::vector<std::uint64_t> delivered;
    while (tracker.pop(seq, body)) delivered.push_back(seq);
    EXPECT_EQ(delivered, (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(tracker.stats().frame_gaps, 1u);
}

// ------------------------------------------------------------ NetSource

TEST(NetSource, CleanQueueStreamDeliversEveryFrameBitwise) {
    const auto frames = record_frames(301, 0.5);
    ASSERT_GT(frames.size(), 10u);
    auto source = queue_source(pack_episode(frames, 11), 11);
    net::NetSource* net_source = source.get();

    engine::Frame frame;
    std::size_t delivered = 0;
    while (source->next(frame)) {
        ASSERT_LT(delivered, frames.size());
        expect_same_frame(frames[delivered], frame);
        ++delivered;
    }
    EXPECT_EQ(delivered, frames.size());

    const auto stats = net_source->net_stats();
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->frames_delivered, frames.size());
    EXPECT_EQ(stats->frame_gaps, 0u);
    EXPECT_EQ(stats->crc_errors, 0u);
    EXPECT_GT(stats->datagrams, frames.size());  // multi-fragment frames
    EXPECT_GT(stats->bytes, 0u);
}

TEST(NetSource, CountsUndecodableAndForeignDatagrams) {
    const auto frames = record_frames(302, 0.25);
    auto stream = pack_episode(frames, 21);

    Datagram truncated = stream[0];
    truncated.resize(10);
    Datagram bad_magic = stream[0];
    bad_magic[0] ^= 0xFF;
    Datagram skewed = stream[0];
    patch16(skewed, kOffVersion, net::kProtocolVersion + 3);
    Datagram corrupt = stream[0];
    corrupt[net::kHeaderBytes] ^= 0x10;
    const Datagram foreign = net::pack_frame(tiny_frame(), 99, 0)[0];

    // Splice the junk in ahead of the real stream.
    std::vector<Datagram> noisy{truncated, bad_magic, skewed, corrupt, foreign};
    for (auto& datagram : stream) noisy.push_back(std::move(datagram));

    auto source = queue_source(std::move(noisy), 21);
    net::NetSource* net_source = source.get();
    engine::Frame frame;
    std::size_t delivered = 0;
    while (source->next(frame)) ++delivered;
    EXPECT_EQ(delivered, frames.size());

    const auto stats = net_source->net_stats();
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->truncated, 1u);
    EXPECT_EQ(stats->bad_magic, 1u);
    EXPECT_EQ(stats->version_skew, 1u);
    EXPECT_EQ(stats->crc_errors, 1u);
    EXPECT_EQ(stats->foreign_token, 1u);
    EXPECT_EQ(stats->frame_gaps, 0u);  // the real copy of frame 0 still came
}

TEST(NetSource, IdleTimeoutEndsTheStream) {
    // A queue that never closes and never receives: silence. The source
    // must give up after idle_timeout_s, not hang the engine forever.
    auto queue = std::make_unique<net::QueueDatagramSource>();
    net::NetSourceConfig config;
    config.session_token = 1;
    config.idle_timeout_s = 0.05;
    config.poll_interval_ms = 1;
    net::NetSource source(std::move(queue), config);
    engine::Frame frame;
    EXPECT_FALSE(source.next(frame));
    const auto stats = source.net_stats();
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->idle_timeouts, 1u);
}

// -------------------------------------------------- fault injection

TEST(FaultInjector, DeterministicForAGivenSeed) {
    const auto frames = record_frames(303, 0.25);
    net::FaultConfig config;
    config.drop_rate = 0.1;
    config.duplicate_rate = 0.05;
    config.corrupt_rate = 0.05;
    config.reorder_rate = 0.1;
    config.seed = 77;

    net::FaultInjector a(config), b(config);
    const auto out_a = a.apply(pack_episode(frames, 5));
    const auto out_b = b.apply(pack_episode(frames, 5));
    ASSERT_EQ(out_a.size(), out_b.size());
    for (std::size_t i = 0; i < out_a.size(); ++i) EXPECT_EQ(out_a[i], out_b[i]);
    EXPECT_EQ(a.counters().dropped, b.counters().dropped);
    EXPECT_EQ(a.counters().corrupted, b.counters().corrupted);

    net::FaultInjector c(net::FaultConfig{.seed = 78});
    EXPECT_GT(a.counters().dropped, 0u);
    EXPECT_GT(a.counters().corrupted, 0u);
    EXPECT_GT(a.counters().duplicated, 0u);
    EXPECT_GT(a.counters().reordered, 0u);
    (void)c;
}

TEST(FaultInjector, FaultedStreamDegradesGracefully) {
    const auto frames = record_frames(304, 1.0);
    ASSERT_GT(frames.size(), 40u);

    net::FaultConfig fault;
    fault.drop_rate = 0.03;
    fault.duplicate_rate = 0.02;
    fault.corrupt_rate = 0.02;
    fault.reorder_rate = 0.05;
    fault.seed = 1234;  // protect_last defaults true: the EOS marker lands
    net::FaultInjector injector(fault);
    auto source = queue_source(injector.apply(pack_episode(frames, 7)), 7);
    net::NetSource* net_source = source.get();

    std::map<double, std::size_t> by_time;
    for (std::size_t i = 0; i < frames.size(); ++i)
        by_time[frames[i].time_s] = i;

    engine::Frame frame;
    std::size_t delivered = 0;
    std::size_t last_index = 0;
    bool first = true;
    while (source->next(frame)) {
        // Every delivered frame is bit-exact (corruption never leaks
        // through the CRC) and order is preserved across the holes.
        const auto it = by_time.find(frame.time_s);
        ASSERT_NE(it, by_time.end());
        expect_same_frame(frames[it->second], frame);
        if (!first) {
            EXPECT_GT(it->second, last_index);
        }
        last_index = it->second;
        first = false;
        ++delivered;
    }

    const auto stats = net_source->net_stats();
    ASSERT_TRUE(stats.has_value());
    // Exact bookkeeping: every sent frame was delivered or counted as a
    // gap; every corrupted datagram is exactly one CRC error; every
    // surplus duplicate surfaced as a duplicate or a late fragment.
    EXPECT_EQ(stats->frames_delivered, delivered);
    EXPECT_EQ(stats->frames_delivered + stats->frame_gaps, frames.size());
    EXPECT_EQ(stats->crc_errors, injector.counters().corrupted);
    EXPECT_EQ(stats->duplicates + stats->late_fragments,
              injector.counters().duplicated);
    EXPECT_GT(stats->frame_gaps, 0u);
    EXPECT_GT(stats->reorders, 0u);
    EXPECT_LE(stats->reorders, injector.counters().reordered);
}

TEST(FaultInjector, FaultedEngineSessionSurvivesEndToEnd) {
    const auto frames = record_frames(305, 1.0);
    net::FaultConfig fault;
    fault.drop_rate = 0.05;
    fault.corrupt_rate = 0.03;
    fault.reorder_rate = 0.05;
    fault.seed = 4321;
    net::FaultInjector injector(fault);
    auto source = queue_source(injector.apply(pack_episode(frames, 3)), 3);

    engine::EngineHost host;
    const auto id = host.admit("lossy-home", walk_config(305), std::move(source));
    host.run();
    EXPECT_EQ(host.state(id), engine::SessionState::kFinished);

    const auto stats = host.take_fleet_stats();
    EXPECT_EQ(stats.net.frames_delivered + stats.net.frame_gaps, frames.size());
    EXPECT_GT(stats.net.frame_gaps, 0u);
    ASSERT_EQ(stats.sessions.size(), 1u);
    ASSERT_TRUE(stats.sessions[0].net.has_value());
    EXPECT_EQ(stats.sessions[0].net->frames_delivered,
              stats.net.frames_delivered);
    // The degraded session still tracked: fewer points than a clean run,
    // but a track, and the process is alive to tell.
    EXPECT_GT(host.session(id)->tracker().track().size(), 0u);
}

// ------------------------------------------- loopback UDP end-to-end

TEST(LoopbackE2E, NetFedEngineIsBitIdenticalToSimFed) {
    const auto config = walk_config(808);

    // Reference: the same episode pulled straight from the simulator.
    engine::Engine reference(
        config, std::make_unique<engine::SimSource>(config, walk_script()));
    reference.run();
    ASSERT_GT(reference.tracker().track().size(), 50u);

    const auto frames = record_frames(808);
    ASSERT_GT(frames.size(), 100u);

    // Receiver: a real UDP socket feeding a NetSource feeding an Engine.
    auto socket = std::make_unique<net::UdpSocket>();
    const std::uint16_t ingest_port = socket->local_port();
    net::NetSourceConfig net_config;
    {
        engine::SimSource shape(config, walk_script());
        net_config.fmcw = shape.fmcw();
        net_config.array = shape.array();
    }
    net_config.session_token = 77;
    net_config.idle_timeout_s = 30.0;  // CI boxes stall; silence is not expected
    auto source =
        std::make_unique<net::NetSource>(std::move(socket), net_config);
    net::NetSource* net_source = source.get();
    engine::Engine netted(config, std::move(source));

    // Interleave sender and receiver: ship one frame's datagrams, pumping
    // the socket every few sends so the kernel receive buffer (typically
    // ~208 KB, about two fast-capture frames) never overflows, then step
    // the engine through that frame.
    net::UdpSocket sender;
    for (std::size_t seq = 0; seq < frames.size(); ++seq) {
        const auto datagrams = net::pack_frame(frames[seq], 77, seq);
        std::size_t sent = 0;
        for (const auto& datagram : datagrams) {
            sender.send_to(ingest_port, datagram);
            if (++sent % 16 == 0) net_source->pump();
        }
        ASSERT_TRUE(netted.step());
    }
    const Datagram eos = net::pack_end_of_stream(77, frames.size());
    sender.send_to(ingest_port, eos);
    netted.run();  // drains the stream end, finishes the session

    expect_same_track(reference.tracker().track(), netted.tracker().track());
    const auto stats = net_source->net_stats();
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->frames_delivered, frames.size());
    EXPECT_EQ(stats->frame_gaps, 0u);
    EXPECT_EQ(stats->crc_errors, 0u);
    EXPECT_EQ(stats->idle_timeouts, 0u);
}

// -------------------------------------------------- TCP control plane

/// Drive a request through a single-threaded server + client pair: the
/// server only makes progress when poll()ed, so interleave until the
/// response line lands.
std::string roundtrip(net::ControlServer& server, net::ControlClient& client,
                      const std::string& line) {
    client.send(line);
    std::string response;
    for (int i = 0; i < 5000; ++i) {
        server.poll();
        if (client.try_receive(response)) return response;
    }
    throw std::runtime_error("control response never arrived: " + line);
}

TEST(ControlPlane, PingAndUnknownCommand) {
    engine::EngineHost host;
    net::ControlServer server(host);
    ASSERT_GT(server.port(), 0u);
    net::ControlClient client(server.port());
    EXPECT_EQ(roundtrip(server, client, "PING"), "OK pong");
    EXPECT_EQ(roundtrip(server, client, "FLY"), "ERR unknown command FLY");
    EXPECT_EQ(roundtrip(server, client, "PAUSE nine"),
              "ERR usage: PAUSE <id>");
}

TEST(ControlPlane, StatsScrapeIsJson) {
    engine::EngineHost host;
    const auto id = host.admit(
        "home-a", walk_config(401),
        std::make_unique<engine::SimSource>(walk_config(401), walk_script(0.5)));
    for (int i = 0; i < 10; ++i) host.step_all();

    net::ControlServer server(host);
    net::ControlClient client(server.port());
    const std::string response = roundtrip(server, client, "STATS");
    ASSERT_EQ(response.rfind("OK {", 0), 0u);
    const std::string json = response.substr(3);
    EXPECT_NE(json.find("\"sessions\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"home-a\""), std::string::npos);
    EXPECT_NE(json.find("\"frames\":10"), std::string::npos);
    EXPECT_NE(json.find("\"net\":{"), std::string::npos);
    (void)id;
}

TEST(ControlPlane, HealthScrapeReportsDegradationNonDestructively) {
    engine::EngineHost host;
    auto source = std::make_unique<engine::SimSource>(walk_config(405),
                                                      walk_script(1.0));
    hw::FaultConfig faults;
    faults.dropout_rate = 0.2;
    faults.seed = 9;
    source->set_fault_injector(std::make_unique<hw::FaultInjector>(faults));
    host.admit("degraded-home", walk_config(405), std::move(source));
    for (int i = 0; i < 30; ++i) host.step_all();

    net::ControlServer server(host);
    net::ControlClient client(server.port());
    const std::string response = roundtrip(server, client, "HEALTH");
    ASSERT_EQ(response.rfind("OK {", 0), 0u);
    EXPECT_NE(response.find("\"name\":\"degraded-home\""), std::string::npos);
    EXPECT_NE(response.find("\"health\":"), std::string::npos);
    EXPECT_NE(response.find("\"degraded\":true"), std::string::npos);
    EXPECT_NE(response.find("\"rx_dropouts\":"), std::string::npos);
    // Unlike STATS, HEALTH never resets a window: polling it twice in a
    // row (no frames in between) returns the identical document.
    EXPECT_EQ(roundtrip(server, client, "HEALTH"), response);

    // The destructive scrape carries the fleet-level quality rollup.
    const std::string stats = roundtrip(server, client, "STATS");
    EXPECT_NE(stats.find("\"quality\":{"), std::string::npos);
    EXPECT_NE(stats.find("\"sessions_restarted\":0"), std::string::npos);
    EXPECT_NE(stats.find("\"degraded_frames\":"), std::string::npos);
}

TEST(ControlPlane, PauseResumeEvictLifecycle) {
    engine::EngineHost host;
    const auto id = host.admit(
        "home-b", walk_config(402),
        std::make_unique<engine::SimSource>(walk_config(402), walk_script()));
    net::ControlServer server(host);
    net::ControlClient client(server.port());
    const std::string id_str = std::to_string(id);

    EXPECT_EQ(roundtrip(server, client, "PAUSE " + id_str), "OK paused " + id_str);
    EXPECT_EQ(host.step_all(), 0u);  // the only session is paused

    EXPECT_EQ(roundtrip(server, client, "RESUME " + id_str),
              "OK resumed " + id_str);
    EXPECT_GT(host.step_all(), 0u);

    EXPECT_EQ(roundtrip(server, client, "EVICT " + id_str + " operator test"),
              "OK evicted " + id_str);
    EXPECT_EQ(host.state(id), engine::SessionState::kEvicted);
    EXPECT_EQ(roundtrip(server, client, "EVICT " + id_str),
              "ERR session unknown or already terminal");
    // Unknown ids come back as errors, not exceptions.
    EXPECT_EQ(roundtrip(server, client, "PAUSE 99999").rfind("ERR", 0), 0u);
}

TEST(ControlPlane, CheckpointScrapedSessionRestoresBitIdentical) {
    const std::string path = testing::TempDir() + "witrack_control_ckpt.wtrk";

    engine::Engine reference(
        walk_config(403),
        std::make_unique<engine::SimSource>(walk_config(403), walk_script()));
    reference.run();

    engine::EngineHost host;
    const auto id = host.admit(
        "home-c", walk_config(403),
        std::make_unique<engine::SimSource>(walk_config(403), walk_script()));
    for (int i = 0; i < 40; ++i) host.step_all();  // mid-episode

    net::ControlServer server(host);
    net::ControlClient client(server.port());
    const std::string response =
        roundtrip(server, client, "CHECKPOINT " + std::to_string(id) + " " + path);
    ASSERT_EQ(response.rfind("OK checkpointed", 0), 0u);

    // Restore the drained state onto a fresh host and run both to the end:
    // the restored session must land exactly where the original does.
    std::ifstream snapshot(path, std::ios::binary);
    ASSERT_TRUE(snapshot.good());
    engine::EngineHost other;
    const auto restored = other.restore_session(
        "home-c-restored", walk_config(403),
        std::make_unique<engine::SimSource>(walk_config(403), walk_script()),
        snapshot);
    host.run();
    other.run();
    expect_same_track(reference.tracker().track(),
                      host.session(id)->tracker().track());
    expect_same_track(reference.tracker().track(),
                      other.session(restored)->tracker().track());
    std::remove(path.c_str());
}

}  // namespace
}  // namespace witrack
