// FFT engine tests: correctness against analytic DFTs, algebraic properties
// (linearity, Parseval), cross-checks between the radix-4 kernel and
// Bluestein paths, the paper's sweep-sized transform (N = 2500), the pruned
// (zero-padded-input) kernels, the r2c half-spectrum plans, and the shared
// FftPlanCache (pointer identity, shape-keyed pruned entries, cache-built ==
// privately-built plans).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/fft_batch.hpp"
#include "dsp/fft_plan_cache.hpp"
#include "dsp/simd.hpp"

namespace witrack::dsp {
namespace {

std::vector<cplx> naive_dft(const std::vector<cplx>& in) {
    const std::size_t n = in.size();
    std::vector<cplx> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        cplx acc{0.0, 0.0};
        for (std::size_t t = 0; t < n; ++t) {
            const double angle = -2.0 * M_PI * static_cast<double>(k * t) / n;
            acc += in[t] * cplx(std::cos(angle), std::sin(angle));
        }
        out[k] = acc;
    }
    return out;
}

std::vector<cplx> random_signal(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::normal_distribution<double> dist;
    std::vector<cplx> v(n);
    for (auto& x : v) x = cplx(dist(rng), dist(rng));
    return v;
}

double max_error(const std::vector<cplx>& a, const std::vector<cplx>& b) {
    double err = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) err = std::max(err, std::abs(a[i] - b[i]));
    return err;
}

TEST(Fft, RejectsZeroSize) { EXPECT_THROW(Fft(0), std::invalid_argument); }

TEST(Fft, ImpulseHasFlatSpectrum) {
    std::vector<cplx> data(64, cplx(0, 0));
    data[0] = cplx(1, 0);
    fft_plan(64).forward(data);
    for (const auto& v : data) EXPECT_NEAR(std::abs(v - cplx(1, 0)), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInOneBin) {
    const std::size_t n = 256;
    const std::size_t tone = 37;
    std::vector<cplx> data(n);
    for (std::size_t t = 0; t < n; ++t) {
        const double angle = 2.0 * M_PI * static_cast<double>(tone * t) / n;
        data[t] = cplx(std::cos(angle), std::sin(angle));
    }
    fft_plan(n).forward(data);
    for (std::size_t k = 0; k < n; ++k) {
        if (k == tone)
            EXPECT_NEAR(std::abs(data[k]), static_cast<double>(n), 1e-8);
        else
            EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-7);
    }
}

TEST(Fft, RealInputHasConjugateSymmetry) {
    std::vector<double> x(128);
    std::mt19937 rng(3);
    std::normal_distribution<double> dist;
    for (auto& v : x) v = dist(rng);
    std::vector<cplx> spec(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) spec[i] = cplx(x[i], 0.0);
    fft_plan(x.size()).forward(spec);
    for (std::size_t k = 1; k < x.size(); ++k) {
        EXPECT_NEAR(spec[k].real(), spec[x.size() - k].real(), 1e-9);
        EXPECT_NEAR(spec[k].imag(), -spec[x.size() - k].imag(), 1e-9);
    }
}

struct FftSizeCase {
    std::size_t n;
};

class FftSizes : public ::testing::TestWithParam<FftSizeCase> {};

TEST_P(FftSizes, MatchesNaiveDft) {
    const std::size_t n = GetParam().n;
    const auto in = random_signal(n, static_cast<unsigned>(n));
    auto fast = in;
    fft_plan(n).forward(fast);
    const auto slow = naive_dft(in);
    EXPECT_LT(max_error(fast, slow), 1e-6 * static_cast<double>(n));
}

TEST_P(FftSizes, InverseRoundTrips) {
    const std::size_t n = GetParam().n;
    const auto in = random_signal(n, static_cast<unsigned>(n) + 1);
    auto data = in;
    const Fft& plan = fft_plan(n);
    plan.forward(data);
    plan.inverse(data);
    EXPECT_LT(max_error(data, in), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizes, ParsevalEnergyConservation) {
    const std::size_t n = GetParam().n;
    const auto in = random_signal(n, static_cast<unsigned>(n) + 2);
    double time_energy = 0.0;
    for (const auto& v : in) time_energy += std::norm(v);
    auto spec = in;
    fft_plan(n).forward(spec);
    double freq_energy = 0.0;
    for (const auto& v : spec) freq_energy += std::norm(v);
    EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
                1e-8 * std::max(1.0, time_energy));
}

TEST_P(FftSizes, Linearity) {
    const std::size_t n = GetParam().n;
    const auto a = random_signal(n, 10);
    const auto b = random_signal(n, 11);
    const cplx ca(1.5, -0.25), cb(-2.0, 0.5);
    std::vector<cplx> combo(n);
    for (std::size_t i = 0; i < n; ++i) combo[i] = ca * a[i] + cb * b[i];
    auto fa = a, fb = b;
    const Fft& plan = fft_plan(n);
    plan.forward(fa);
    plan.forward(fb);
    plan.forward(combo);
    std::vector<cplx> expected(n);
    for (std::size_t i = 0; i < n; ++i) expected[i] = ca * fa[i] + cb * fb[i];
    EXPECT_LT(max_error(combo, expected), 1e-7 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    PowerOfTwoAndArbitrary, FftSizes,
    ::testing::Values(FftSizeCase{2}, FftSizeCase{4}, FftSizeCase{16},
                      FftSizeCase{64}, FftSizeCase{256}, FftSizeCase{1024},
                      FftSizeCase{2048}, FftSizeCase{4096},
                      FftSizeCase{3}, FftSizeCase{5}, FftSizeCase{12},
                      FftSizeCase{100}, FftSizeCase{625}, FftSizeCase{2500}),
    [](const ::testing::TestParamInfo<FftSizeCase>& info) {
        return "N" + std::to_string(info.param.n);
    });

TEST(Fft, SweepSizedTransformMatchesBluesteinDefinition) {
    // N = 2500 is the production size (2.5 ms at 1 MS/s). Verify a known
    // tone at a non-integer-power position.
    const std::size_t n = 2500;
    const std::size_t tone = 123;
    std::vector<cplx> data(n);
    for (std::size_t t = 0; t < n; ++t) {
        const double angle = 2.0 * M_PI * static_cast<double>(tone * t) / n;
        data[t] = cplx(std::cos(angle), std::sin(angle));
    }
    fft_plan(n).forward(data);
    EXPECT_NEAR(std::abs(data[tone]), static_cast<double>(n), 1e-5);
    double off_peak = 0.0;
    for (std::size_t k = 0; k < n; ++k)
        if (k != tone) off_peak = std::max(off_peak, std::abs(data[k]));
    EXPECT_LT(off_peak, 1e-5);
}

TEST(Fft, PlanCacheReturnsSameInstance) {
    const Fft& a = fft_plan(512);
    const Fft& b = fft_plan(512);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.size(), 512u);
}

TEST(FftPlanCacheSuite, SharesOnePlanPerSizeAndKind) {
    FftPlanCache cache;
    const auto complex_a = cache.complex_plan(640);
    const auto complex_b = cache.complex_plan(640);
    EXPECT_EQ(complex_a.get(), complex_b.get());
    const auto real_a = cache.real_plan(640);
    const auto real_b = cache.real_plan(640);
    EXPECT_EQ(real_a.get(), real_b.get());
    // Distinct sizes and distinct caches give distinct plans.
    EXPECT_NE(cache.complex_plan(320).get(), complex_a.get());
    FftPlanCache other;
    EXPECT_NE(other.complex_plan(640).get(), complex_a.get());
    // The real(640) plan's internal half plan is the cached complex(320),
    // so the cache holds exactly complex{640, 320} + real{640}.
    EXPECT_EQ(cache.cached_plans(), 3u);
}

TEST(FftPlanCacheSuite, CacheBuiltPlansMatchPrivateOnesBitForBit) {
    // A cache-built RealFft (shared internal half plan) must transform
    // exactly like a privately-built one: sharing is memoization, not a
    // different algorithm. N = 2500 is the production sweep size.
    FftPlanCache cache;
    const auto shared_plan = cache.real_plan(2500);
    const RealFft private_plan(2500);

    std::vector<double> x(2500);
    std::mt19937 rng(77);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (auto& v : x) v = dist(rng);

    FftScratch scratch_a, scratch_b;
    std::vector<cplx> out_a, out_b;
    shared_plan->forward(x, out_a, scratch_a);
    private_plan.forward(x, out_b, scratch_b);
    ASSERT_EQ(out_a.size(), out_b.size());
    for (std::size_t k = 0; k < out_a.size(); ++k) {
        EXPECT_EQ(out_a[k].real(), out_b[k].real());
        EXPECT_EQ(out_a[k].imag(), out_b[k].imag());
    }
}

TEST(FftPlanCacheSuite, ConcurrentFirstRequestsConvergeOnOnePlan) {
    FftPlanCache cache;
    constexpr std::size_t kThreads = 8;
    std::vector<std::shared_ptr<const RealFft>> seen(kThreads);
    {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (std::size_t t = 0; t < kThreads; ++t)
            threads.emplace_back(
                [&cache, &seen, t] { seen[t] = cache.real_plan(1250); });
        for (auto& thread : threads) thread.join();
    }
    // Losers of the build race may briefly have held a duplicate, but every
    // caller must have been handed the one cached instance.
    for (std::size_t t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[0].get(), seen[t].get());
}

TEST(Fft, RealHalfSpectrumMatchesComplexPath) {
    std::vector<double> x(100);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::sin(0.37 * static_cast<double>(i)) + 0.2;
    RealFft rfft(x.size());
    FftScratch scratch;
    std::vector<cplx> via_real;
    rfft.forward(x, via_real, scratch);
    std::vector<cplx> via_complex(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) via_complex[i] = cplx(x[i], 0.0);
    fft_plan(x.size()).forward(via_complex);
    ASSERT_EQ(via_real.size(), x.size() / 2 + 1);
    for (std::size_t k = 0; k < via_real.size(); ++k)
        EXPECT_LT(std::abs(via_real[k] - via_complex[k]), 1e-9) << "k=" << k;
}

// ------------------------------------------------------- pruned kernels

struct PrunedCase {
    std::size_t n;        ///< transform size (power of two)
    std::size_t nonzero;  ///< live input prefix; [nonzero, n) is zero
};

class PrunedShapes : public ::testing::TestWithParam<PrunedCase> {};

TEST_P(PrunedShapes, PrunedMatchesNaiveDft) {
    const auto [n, nz] = GetParam();
    auto in = random_signal(nz, static_cast<unsigned>(n + nz));
    in.resize(n, cplx(0.0, 0.0));  // explicit zero pad for the reference
    const Fft pruned(n, nz);
    EXPECT_EQ(pruned.n_nonzero(), nz);
    auto fast = in;
    pruned.forward(fast);
    EXPECT_LT(max_error(fast, naive_dft(in)), 1e-6 * static_cast<double>(n));
}

TEST_P(PrunedShapes, PrunedEqualsDenseAtIdenticalShape) {
    // Skipping structurally-zero butterflies must not change the result:
    // every output of the pruned schedule equals the dense one under
    // operator== (a skipped multiply may flip the sign of an exact zero,
    // which IEEE-754 equality deliberately ignores).
    const auto [n, nz] = GetParam();
    auto in = random_signal(nz, static_cast<unsigned>(2 * n + nz));
    in.resize(n, cplx(0.0, 0.0));
    auto dense_out = in;
    fft_plan(n).forward(dense_out);
    auto pruned_out = in;
    Fft(n, nz).forward(pruned_out);
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_EQ(pruned_out[k].real(), dense_out[k].real()) << "k=" << k;
        EXPECT_EQ(pruned_out[k].imag(), dense_out[k].imag()) << "k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ZeroPaddedShapes, PrunedShapes,
    ::testing::Values(PrunedCase{64, 40}, PrunedCase{256, 17},
                      PrunedCase{2048, 1250},  // packed half of the sweep
                      PrunedCase{4096, 2500},  // production zero-pad shape
                      PrunedCase{8192, 2500},  // Bluestein convolution shape
                      PrunedCase{4096, 1}, PrunedCase{4096, 4095}),
    [](const ::testing::TestParamInfo<PrunedCase>& info) {
        return "N" + std::to_string(info.param.n) + "nz" +
               std::to_string(info.param.nonzero);
    });

// --------------------------------------------------- r2c half spectrum

struct RealCase {
    std::size_t n;        ///< real transform size
    std::size_t nonzero;  ///< live input samples (0 = dense)
};

class RealShapes : public ::testing::TestWithParam<RealCase> {};

TEST_P(RealShapes, HalfSpectrumMatchesNaiveDft) {
    const auto [n, nz_raw] = GetParam();
    const std::size_t nz = nz_raw == 0 ? n : nz_raw;
    std::mt19937 rng(static_cast<unsigned>(n + 3 * nz));
    std::normal_distribution<double> dist;
    std::vector<double> x(nz);
    for (auto& v : x) v = dist(rng);

    std::vector<cplx> padded(n, cplx(0.0, 0.0));
    for (std::size_t i = 0; i < nz; ++i) padded[i] = cplx(x[i], 0.0);
    const auto reference = naive_dft(padded);

    RealFft rfft(n, nz_raw);
    EXPECT_EQ(rfft.n_nonzero(), nz);
    EXPECT_EQ(rfft.spectrum_size(), n / 2 + 1);
    FftScratch scratch;
    std::vector<cplx> out;
    rfft.forward(x, out, scratch);
    ASSERT_EQ(out.size(), n / 2 + 1);
    for (std::size_t k = 0; k < out.size(); ++k)
        EXPECT_LT(std::abs(out[k] - reference[k]), 1e-6 * static_cast<double>(n))
            << "k=" << k;
}

TEST_P(RealShapes, WindowedForwardEqualsPremultiplied) {
    const auto [n, nz_raw] = GetParam();
    const std::size_t nz = nz_raw == 0 ? n : nz_raw;
    std::mt19937 rng(static_cast<unsigned>(5 * n + nz));
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> x(nz), w(nz), xw(nz);
    for (std::size_t i = 0; i < nz; ++i) {
        x[i] = dist(rng);
        w[i] = 0.5 + 0.5 * dist(rng);
        xw[i] = x[i] * w[i];
    }
    RealFft rfft(n, nz_raw);
    FftScratch sa, sb;
    std::vector<cplx> fused, premultiplied;
    rfft.forward_windowed(x, w, fused, sa);
    rfft.forward(xw, premultiplied, sb);
    ASSERT_EQ(fused.size(), premultiplied.size());
    for (std::size_t k = 0; k < fused.size(); ++k) {
        EXPECT_EQ(fused[k].real(), premultiplied[k].real()) << "k=" << k;
        EXPECT_EQ(fused[k].imag(), premultiplied[k].imag()) << "k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    DenseAndPruned, RealShapes,
    ::testing::Values(RealCase{16, 0}, RealCase{64, 0}, RealCase{2048, 0},
                      RealCase{4096, 0},
                      RealCase{250, 0},        // Bluestein half (125 points)
                      RealCase{2500, 0},       // paper-literal sweep size
                      RealCase{17, 0},         // odd-N fallback
                      RealCase{17, 9},         // odd-N fallback, padded
                      RealCase{512, 250},      // pruned: test-sized sweep
                      RealCase{4096, 2500},    // pruned: production shape
                      RealCase{4096, 2501},    // odd live prefix
                      RealCase{1024, 1000}),   // prune beyond half
    [](const ::testing::TestParamInfo<RealCase>& info) {
        return "N" + std::to_string(info.param.n) + "nz" +
               std::to_string(info.param.nonzero);
    });

TEST(RealFftSuite, PrunedEqualsDenseOnPaddedInput) {
    // Same real input, once through the pruned plan (short span) and once
    // through the dense plan (explicitly padded span): equal under ==.
    const std::size_t n = 4096, nz = 2500;
    std::mt19937 rng(11);
    std::normal_distribution<double> dist;
    std::vector<double> x(nz);
    for (auto& v : x) v = dist(rng);
    std::vector<double> padded = x;
    padded.resize(n, 0.0);

    FftScratch sa, sb;
    std::vector<cplx> pruned_out, dense_out;
    RealFft(n, nz).forward(x, pruned_out, sa);
    RealFft(n).forward(padded, dense_out, sb);
    ASSERT_EQ(pruned_out.size(), dense_out.size());
    for (std::size_t k = 0; k < pruned_out.size(); ++k) {
        EXPECT_EQ(pruned_out[k].real(), dense_out[k].real()) << "k=" << k;
        EXPECT_EQ(pruned_out[k].imag(), dense_out[k].imag()) << "k=" << k;
    }
}

TEST(FftPlanCacheSuite, PrunedAndDensePlansAreDistinctSharedEntries) {
    FftPlanCache cache;
    // Pruned and dense complex plans of one size are different schedules,
    // so they are distinct cache entries...
    const auto dense = cache.complex_plan(4096);
    const auto pruned = cache.complex_plan(4096, 2500);
    EXPECT_NE(dense.get(), pruned.get());
    EXPECT_EQ(dense->n_nonzero(), 4096u);
    EXPECT_EQ(pruned->n_nonzero(), 2500u);
    // ...while each shape stays one shared entry across sessions.
    EXPECT_EQ(cache.complex_plan(4096, 2500).get(), pruned.get());
    const auto real_pruned = cache.real_plan(4096, 2500);
    EXPECT_NE(cache.real_plan(4096).get(), real_pruned.get());
    EXPECT_EQ(cache.real_plan(4096, 2500).get(), real_pruned.get());
    // Degenerate pruning requests normalize onto the dense entry...
    EXPECT_EQ(cache.complex_plan(4096, 4096).get(), dense.get());
    EXPECT_EQ(cache.complex_plan(4096, 0).get(), dense.get());
    // ...and non-power-of-two sizes always plan dense.
    EXPECT_EQ(cache.complex_plan(2500, 1000).get(),
              cache.complex_plan(2500).get());
}

// ------------------------------------------------- SIMD dispatch levels

/// RAII: force a kernel dispatch level for one test and restore the ambient
/// level on exit. granted() is the level force() actually activated -- it
/// clamps to detect(), so requesting a level the hardware lacks grants a
/// lower one (the test then skips that level instead of silently retesting
/// a covered one).
class ForcedLevel {
  public:
    explicit ForcedLevel(simd::Level level)
        : previous_(simd::active()), granted_(simd::force(level)) {}
    ~ForcedLevel() { simd::force(previous_); }
    simd::Level granted() const { return granted_; }

  private:
    simd::Level previous_;
    simd::Level granted_;
};

constexpr simd::Level kAllLevels[] = {simd::Level::kScalar, simd::Level::kSse2,
                                      simd::Level::kAvx2};

/// The shapes the production pipeline actually plans (the pruned-kernel
/// suite above), reused by the dispatch-level and batch gates.
constexpr PrunedCase kKernelShapes[] = {{64, 40},     {256, 17},
                                        {2048, 1250}, {4096, 2500},
                                        {8192, 2500}, {4096, 1},
                                        {4096, 4095}, {1024, 1024}};

TEST(SimdDispatch, ForceClampsToHardware) {
    ForcedLevel guard(simd::Level::kAvx2);
    EXPECT_LE(static_cast<int>(guard.granted()), static_cast<int>(simd::detect()));
    EXPECT_EQ(simd::active(), guard.granted());
}

TEST(SimdDispatch, EveryLevelMatchesNaiveDft) {
    // The accuracy gate of the FftSizes/PrunedShapes suites, repeated under
    // every dispatch level this machine supports: no ISA path gets to trade
    // accuracy for speed.
    for (const simd::Level level : kAllLevels) {
        ForcedLevel guard(level);
        if (guard.granted() != level) continue;  // hardware lacks this level
        SCOPED_TRACE(simd::to_string(level));
        for (const auto& [n, nz] : kKernelShapes) {
            SCOPED_TRACE("N" + std::to_string(n) + "nz" + std::to_string(nz));
            auto in = random_signal(nz, static_cast<unsigned>(n + nz));
            in.resize(n, cplx(0.0, 0.0));
            auto fast = in;
            Fft(n, nz).forward(fast);
            EXPECT_LT(max_error(fast, naive_dft(in)), 1e-6 * static_cast<double>(n));
        }
    }
}

TEST(SimdDispatch, AllLevelsBitIdenticalForwardAndInverse) {
    // The lane templates perform the same IEEE-754 operations per element
    // at every width, so scalar / sse2 / avx2 must agree bit for bit --
    // WITRACK_SIMD triage runs and heterogeneous fleets see one answer.
    for (const auto& [n, nz] : kKernelShapes) {
        SCOPED_TRACE("N" + std::to_string(n) + "nz" + std::to_string(nz));
        auto in = random_signal(nz, static_cast<unsigned>(3 * n + nz));
        in.resize(n, cplx(0.0, 0.0));
        const Fft plan(n, nz);

        std::vector<cplx> reference, reference_inv;
        {
            ForcedLevel guard(simd::Level::kScalar);
            ASSERT_EQ(guard.granted(), simd::Level::kScalar);
            reference = in;
            plan.forward(reference);
            reference_inv = reference;
            plan.inverse(reference_inv);
        }
        for (const simd::Level level : {simd::Level::kSse2, simd::Level::kAvx2}) {
            ForcedLevel guard(level);
            if (guard.granted() != level) continue;
            SCOPED_TRACE(simd::to_string(level));
            auto forward = in;
            plan.forward(forward);
            auto inverse = forward;
            plan.inverse(inverse);
            for (std::size_t k = 0; k < n; ++k) {
                ASSERT_EQ(forward[k].real(), reference[k].real()) << "k=" << k;
                ASSERT_EQ(forward[k].imag(), reference[k].imag()) << "k=" << k;
                ASSERT_EQ(inverse[k].real(), reference_inv[k].real()) << "k=" << k;
                ASSERT_EQ(inverse[k].imag(), reference_inv[k].imag()) << "k=" << k;
            }
        }
    }
}

TEST(SimdDispatch, RealWindowedPathBitIdenticalAcrossLevels) {
    // End-to-end r2c hot path (fused window, pruned production shape)
    // across dispatch levels.
    const std::size_t n = 4096, nz = 2500;
    std::mt19937 rng(29);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> x(nz), w(nz);
    for (std::size_t i = 0; i < nz; ++i) {
        x[i] = dist(rng);
        w[i] = 0.5 + 0.5 * dist(rng);
    }
    const RealFft plan(n, nz);
    FftScratch scratch;
    std::vector<cplx> reference;
    {
        ForcedLevel guard(simd::Level::kScalar);
        plan.forward_windowed(x, w, reference, scratch);
    }
    for (const simd::Level level : {simd::Level::kSse2, simd::Level::kAvx2}) {
        ForcedLevel guard(level);
        if (guard.granted() != level) continue;
        SCOPED_TRACE(simd::to_string(level));
        std::vector<cplx> out;
        plan.forward_windowed(x, w, out, scratch);
        ASSERT_EQ(out.size(), reference.size());
        for (std::size_t k = 0; k < out.size(); ++k) {
            ASSERT_EQ(out[k].real(), reference[k].real()) << "k=" << k;
            ASSERT_EQ(out[k].imag(), reference[k].imag()) << "k=" << k;
        }
    }
}

// --------------------------------------------------------- batched passes

TEST(FftBatchSuite, ComplexBatchMatchesSequentialBitForBit) {
    // forward_batch must be a scheduling change only: B members through one
    // lane-interleaved pass == B sequential forward_soa calls, exactly.
    constexpr std::size_t kBatch = 5;
    for (const auto& [n, nz] : kKernelShapes) {
        SCOPED_TRACE("N" + std::to_string(n) + "nz" + std::to_string(nz));
        const Fft plan(n, nz);
        std::vector<std::vector<double>> seq_re(kBatch), seq_im(kBatch);
        std::vector<std::vector<double>> bat_re(kBatch), bat_im(kBatch);
        for (std::size_t b = 0; b < kBatch; ++b) {
            const auto in =
                random_signal(nz, static_cast<unsigned>(n + nz + 7 * b));
            seq_re[b].assign(n, 0.0);
            seq_im[b].assign(n, 0.0);
            for (std::size_t i = 0; i < nz; ++i) {
                seq_re[b][i] = in[i].real();
                seq_im[b][i] = in[i].imag();
            }
            bat_re[b] = seq_re[b];
            bat_im[b] = seq_im[b];
        }
        FftScratch scratch;
        for (std::size_t b = 0; b < kBatch; ++b)
            plan.forward_soa(seq_re[b].data(), seq_im[b].data(), scratch);
        std::vector<double*> re_ptrs, im_ptrs;
        for (std::size_t b = 0; b < kBatch; ++b) {
            re_ptrs.push_back(bat_re[b].data());
            im_ptrs.push_back(bat_im[b].data());
        }
        plan.forward_batch(re_ptrs, im_ptrs, scratch);
        for (std::size_t b = 0; b < kBatch; ++b)
            for (std::size_t k = 0; k < n; ++k) {
                ASSERT_EQ(bat_re[b][k], seq_re[b][k]) << "b=" << b << " k=" << k;
                ASSERT_EQ(bat_im[b][k], seq_im[b][k]) << "b=" << b << " k=" << k;
            }
    }
}

TEST(FftBatchSuite, RealWindowedBatchMatchesSequentialBitForBit) {
    constexpr std::size_t kBatch = 4;
    const std::size_t n = 4096, nz = 2500;
    const RealFft plan(n, nz);
    ASSERT_TRUE(plan.batchable());
    std::mt19937 rng(31);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<std::vector<double>> x(kBatch), w(kBatch);
    std::vector<std::vector<cplx>> seq(kBatch), bat(kBatch);
    FftScratch scratch;
    std::vector<RealFft::BatchItem> items;
    for (std::size_t b = 0; b < kBatch; ++b) {
        x[b].resize(nz);
        w[b].resize(nz);
        for (std::size_t i = 0; i < nz; ++i) {
            x[b][i] = dist(rng);
            w[b][i] = 0.5 + 0.5 * dist(rng);
        }
        plan.forward_windowed(x[b], w[b], seq[b], scratch);
        items.push_back({x[b], w[b], &bat[b]});
    }
    plan.forward_windowed_batch(items, scratch);
    for (std::size_t b = 0; b < kBatch; ++b) {
        ASSERT_EQ(bat[b].size(), seq[b].size());
        for (std::size_t k = 0; k < seq[b].size(); ++k) {
            ASSERT_EQ(bat[b][k].real(), seq[b][k].real()) << "b=" << b << " k=" << k;
            ASSERT_EQ(bat[b][k].imag(), seq[b][k].imag()) << "b=" << b << " k=" << k;
        }
    }
}

TEST(FftBatchSuite, Float32LaneStaysWithinErrorBudget) {
    // The float32 batch lane trades the double-precision guarantee for half
    // the memory traffic; this pins its error budget (relative to the
    // float64 result) so consumers can gate on a measured bound.
    constexpr std::size_t kBatch = 4;
    const std::size_t n = 4096, nz = 2500;
    const RealFft plan(n, nz);
    std::mt19937 rng(37);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<std::vector<double>> x(kBatch), w(kBatch);
    std::vector<std::vector<cplx>> f64(kBatch), f32(kBatch);
    std::vector<RealFft::BatchItem> items64, items32;
    for (std::size_t b = 0; b < kBatch; ++b) {
        x[b].resize(nz);
        w[b].resize(nz);
        for (std::size_t i = 0; i < nz; ++i) {
            x[b][i] = dist(rng);
            w[b][i] = 0.5 + 0.5 * dist(rng);
        }
        items64.push_back({x[b], w[b], &f64[b]});
        items32.push_back({x[b], w[b], &f32[b]});
    }
    FftScratch scratch;
    plan.forward_windowed_batch(items64, scratch, BatchPrecision::kFloat64);
    plan.forward_windowed_batch(items32, scratch, BatchPrecision::kFloat32);
    for (std::size_t b = 0; b < kBatch; ++b) {
        double peak = 0.0, err = 0.0;
        for (std::size_t k = 0; k < f64[b].size(); ++k) {
            peak = std::max(peak, std::abs(f64[b][k]));
            err = std::max(err, std::abs(f64[b][k] - f32[b][k]));
        }
        ASSERT_GT(peak, 0.0);
        EXPECT_LT(err / peak, 1e-5) << "b=" << b;
        EXPECT_GT(err, 0.0) << "b=" << b;  // it really ran the float32 lane
    }
}

TEST(FftBatchSuite, CollectorGroupsCompatibleShapesOnly) {
    // The deferred collector must group exactly the transforms that share a
    // plan shape, preserve per-member outputs bit for bit, and report only
    // genuinely shared work (groups of >= 2) as batched.
    FftPlanCache cache;
    const auto plan_a = cache.real_plan(4096, 2500);  // three members
    const auto plan_a2 = cache.real_plan(4096, 2500); // same shared entry
    const auto plan_b = cache.real_plan(2048);        // lone member
    std::mt19937 rng(41);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<std::vector<double>> x(4);
    for (std::size_t m = 0; m < 3; ++m) {
        x[m].resize(2500);
        for (auto& v : x[m]) v = dist(rng);
    }
    x[3].resize(2048);
    for (auto& v : x[3]) v = dist(rng);

    FftScratch scratch;
    std::vector<cplx> seq[4];
    plan_a->forward(x[0], seq[0], scratch);
    plan_a->forward(x[1], seq[1], scratch);
    plan_a2->forward(x[2], seq[2], scratch);
    plan_b->forward(x[3], seq[3], scratch);

    FftBatch batch;
    std::vector<cplx> out[4];
    batch.enqueue(*plan_a, x[0], {}, out[0]);
    batch.enqueue(*plan_b, x[3], {}, out[3]);  // interleaved on purpose
    batch.enqueue(*plan_a2, x[1], {}, out[1]);
    batch.enqueue(*plan_a, x[2], {}, out[2]);
    EXPECT_EQ(batch.pending(), 4u);
    // Only the three shape-A members ran as a shared pass; the lone shape-B
    // transform executed sequentially and does not count.
    EXPECT_EQ(batch.run(scratch), 3u);
    EXPECT_EQ(batch.pending(), 0u);
    for (std::size_t m = 0; m < 4; ++m) {
        ASSERT_EQ(out[m].size(), seq[m].size()) << "m=" << m;
        for (std::size_t k = 0; k < seq[m].size(); ++k) {
            ASSERT_EQ(out[m][k].real(), seq[m][k].real()) << "m=" << m << " k=" << k;
            ASSERT_EQ(out[m][k].imag(), seq[m][k].imag()) << "m=" << m << " k=" << k;
        }
    }
}

TEST(FftPlanCacheSuite, BatchRequestsCollapseOntoSingleTransformEntries) {
    // Batch width is execution state, not a plan property: a B-wide request
    // must land on the same shared entry as the single-transform one, for
    // any B >= 1 (asserted inside batch_plan too; this pins the contract).
    FftPlanCache cache;
    EXPECT_EQ(cache.batch_plan(4096, 8, 2500).get(),
              cache.complex_plan(4096, 2500).get());
    EXPECT_EQ(cache.batch_plan(4096, 1, 2500).get(),
              cache.complex_plan(4096, 2500).get());
    EXPECT_EQ(cache.batch_real_plan(4096, 8, 2500).get(),
              cache.real_plan(4096, 2500).get());
    EXPECT_EQ(cache.batch_real_plan(2048, 16).get(),
              cache.real_plan(2048).get());
    // No extra entries appeared for any width.
    const std::size_t cached = cache.cached_plans();
    (void)cache.batch_plan(4096, 32, 2500);
    (void)cache.batch_real_plan(4096, 32, 2500);
    EXPECT_EQ(cache.cached_plans(), cached);
}

}  // namespace
}  // namespace witrack::dsp
