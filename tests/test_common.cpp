// Unit tests for src/common: FMCW parameter derivations (paper Eq. 1-4),
// unit conversions, and the deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "common/cli.hpp"
#include "common/constants.hpp"
#include "common/random.hpp"
#include "common/units.hpp"

namespace witrack {
namespace {

TEST(FmcwParams, PaperDefaultsMatchSection4) {
    FmcwParams p;
    EXPECT_DOUBLE_EQ(p.bandwidth_hz, 1.69e9);
    EXPECT_DOUBLE_EQ(p.sweep_duration_s, 2.5e-3);
    EXPECT_EQ(p.samples_per_sweep(), 2500u);
    EXPECT_EQ(p.sweeps_per_frame, 5u);
    EXPECT_NEAR(p.frame_duration_s(), 12.5e-3, 1e-12);
    EXPECT_NEAR(p.frame_rate_hz(), 80.0, 1e-9);
}

TEST(FmcwParams, RangeResolutionIsEightPointEightCentimeters) {
    // Eq. 3: resolution = C / 2B = 8.87 cm for B = 1.69 GHz.
    FmcwParams p;
    EXPECT_NEAR(p.range_resolution_m(), 0.0887, 0.0005);
}

TEST(FmcwParams, RoundTripBinIsTwiceTheResolution) {
    FmcwParams p;
    EXPECT_NEAR(p.round_trip_bin_m(), 2.0 * p.range_resolution_m(), 1e-9);
}

TEST(FmcwParams, SlopeMatchesBandwidthOverSweepTime) {
    FmcwParams p;
    EXPECT_NEAR(p.slope(), 1.69e9 / 2.5e-3, 1.0);
}

TEST(FmcwParams, BeatFrequencyFollowsEqOne) {
    // Eq. 1: TOF = df / slope. A 10 m round trip -> TOF = 33.36 ns.
    FmcwParams p;
    const double tof = 10.0 / kSpeedOfLight;
    const double beat = p.beat_frequency_hz(tof);
    EXPECT_NEAR(beat / p.slope(), tof, 1e-15);
}

TEST(FmcwParams, MaxRoundTripExceedsPaperSpectrogramRange) {
    // The paper's spectrograms (Fig. 3) display up to 30 m round trip; the
    // 1 MS/s digitizer must cover that unambiguously.
    FmcwParams p;
    EXPECT_GT(p.max_round_trip_m(), 30.0);
}

TEST(FmcwParams, ValidateRejectsBadConfigs) {
    FmcwParams p;
    p.bandwidth_hz = -1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = FmcwParams{};
    p.sweeps_per_frame = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = FmcwParams{};
    EXPECT_NO_THROW(p.validate());
}

TEST(Units, DbRoundTrip) {
    EXPECT_NEAR(from_db(to_db(123.456)), 123.456, 1e-9);
    EXPECT_NEAR(to_db(100.0), 20.0, 1e-12);
    EXPECT_NEAR(amplitude_to_db(10.0), 20.0, 1e-12);
}

TEST(Units, DbmWattRoundTrip) {
    EXPECT_NEAR(watt_to_dbm(0.75e-3), -1.2494, 1e-3);  // the paper's 0.75 mW
    EXPECT_NEAR(dbm_to_watt(watt_to_dbm(0.5)), 0.5, 1e-12);
}

TEST(Units, AngleConversions) {
    EXPECT_NEAR(deg_to_rad(180.0), M_PI, 1e-12);
    EXPECT_NEAR(rad_to_deg(M_PI / 2.0), 90.0, 1e-12);
    EXPECT_NEAR(wrap_angle(3.0 * M_PI), M_PI, 1e-9);
    EXPECT_NEAR(wrap_angle(-3.0 * M_PI), M_PI, 1e-9);
}

TEST(Rng, DeterministicForSameSeed) {
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(7), b(8);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform() == b.uniform()) ++equal;
    EXPECT_LT(equal, 5);
}

TEST(Rng, GaussianMoments) {
    Rng rng(123);
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian(2.0, 1.0);
        sum += v;
        sum2 += v * v;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 1.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, RayleighMean) {
    Rng rng(5);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.rayleigh(1.0);
    EXPECT_NEAR(sum / n, std::sqrt(M_PI / 2.0), 0.02);
}

TEST(Rng, ForkedStreamsAreDecorrelated) {
    Rng parent(9);
    Rng a = parent.fork(0);
    Rng b = parent.fork(1);
    double corr = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) corr += (a.uniform() - 0.5) * (b.uniform() - 0.5);
    EXPECT_NEAR(corr / n, 0.0, 0.01);
}

TEST(Cli, ParsesKeyValueAndFlags) {
    const char* argv[] = {"prog", "--experiments", "17", "--csv", "/tmp/x.csv", "--quick"};
    CliArgs args(6, const_cast<char**>(argv));
    EXPECT_EQ(args.get_int("experiments", 0), 17);
    EXPECT_EQ(args.get("csv"), "/tmp/x.csv");
    EXPECT_TRUE(args.quick());
    EXPECT_FALSE(args.has("seconds"));
    EXPECT_EQ(args.get_int("seconds", 60), 60);
}

TEST(Cli, SeedDefaultsAndOverrides) {
    const char* argv[] = {"prog", "--seed", "1234"};
    CliArgs args(3, const_cast<char**>(argv));
    EXPECT_EQ(args.get_seed(), 1234u);
    CliArgs empty(0, nullptr);
    EXPECT_EQ(empty.get_seed(99), 99u);
}

}  // namespace
}  // namespace witrack
