// Demand-driven scheduler and worker-pool parity suite. The contract under
// test: lazy schedules (TOF-only, localize-only) and parallel schedules
// (2/4 workers) produce bit-identical TOF streams and positions vs. the
// full serial pipeline, on both sim and replay sources -- while demonstrably
// skipping the undemanded work. Plus WorkerPool semantics, the
// no-subscriber TrackUpdateEvent skip, and the stage-stats snapshot/reset.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/worker_pool.hpp"
#include "core/pipeline_steps.hpp"
#include "core/tracker.hpp"
#include "engine/engine.hpp"
#include "engine/plugins.hpp"
#include "engine/replay.hpp"
#include "engine/sim_source.hpp"

namespace witrack {
namespace {

using core::PipelineOutputs;
using geom::Vec3;

// ------------------------------------------------------------ helpers

engine::EngineConfig walk_config(std::uint64_t seed) {
    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(seed);
    return config;
}

std::unique_ptr<sim::LineWalkScript> walk_script() {
    return std::make_unique<sim::LineWalkScript>(Vec3{-1, 5, 0}, Vec3{1, 5, 0},
                                                 2.0, 1.0);
}

/// Every captured frame of a deterministic sim episode.
std::vector<sim::Scenario::Frame> captured_frames(std::uint64_t seed) {
    sim::Scenario scenario(engine::make_scenario_config(walk_config(seed)),
                           walk_script());
    std::vector<sim::Scenario::Frame> frames;
    sim::Scenario::Frame frame;
    while (scenario.next(frame)) frames.push_back(frame);
    return frames;
}

void expect_same_tof(const core::TofFrame& a, const core::TofFrame& b) {
    ASSERT_EQ(a.antennas.size(), b.antennas.size());
    EXPECT_EQ(a.time_s, b.time_s);
    for (std::size_t rx = 0; rx < a.antennas.size(); ++rx) {
        const auto& x = a.antennas[rx];
        const auto& y = b.antennas[rx];
        EXPECT_EQ(x.contour.detected, y.contour.detected);
        EXPECT_EQ(x.contour.round_trip_m, y.contour.round_trip_m);
        EXPECT_EQ(x.contour.power, y.contour.power);
        ASSERT_EQ(x.denoised_m.has_value(), y.denoised_m.has_value());
        if (x.denoised_m) {
            EXPECT_EQ(*x.denoised_m, *y.denoised_m);
        }
    }
}

void expect_same_track(const std::vector<core::TrackPoint>& a,
                       const std::vector<core::TrackPoint>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time_s, b[i].time_s);
        EXPECT_EQ(a[i].position.x, b[i].position.x);
        EXPECT_EQ(a[i].position.y, b[i].position.y);
        EXPECT_EQ(a[i].position.z, b[i].position.z);
        EXPECT_EQ(a[i].residual_rms, b[i].residual_rms);
    }
}

// -------------------------------------------------- PipelineOutputs algebra

TEST(PipelineOutputs, DependencyClosureAndQueries) {
    EXPECT_EQ(core::with_dependencies(PipelineOutputs::kSmoothedTrack),
              PipelineOutputs::kAll);
    EXPECT_EQ(core::with_dependencies(PipelineOutputs::kRawPosition),
              PipelineOutputs::kTof | PipelineOutputs::kRawPosition);
    EXPECT_EQ(core::with_dependencies(PipelineOutputs::kTof), PipelineOutputs::kTof);
    EXPECT_EQ(core::with_dependencies(PipelineOutputs::kNone),
              PipelineOutputs::kNone);
    EXPECT_TRUE(core::demands(PipelineOutputs::kAll, PipelineOutputs::kRawPosition));
    EXPECT_FALSE(core::demands(PipelineOutputs::kTof, PipelineOutputs::kRawPosition));
    EXPECT_EQ(core::to_string(PipelineOutputs::kNone), "none");
    EXPECT_EQ(core::to_string(PipelineOutputs::kAll), "tof|raw|smoothed");
    EXPECT_EQ(core::to_string(PipelineOutputs::kTof), "tof");
}

// ------------------------------------------------------- lazy tracker parity

TEST(Scheduler, TofOnlyIsBitIdenticalAndSkipsLocalization) {
    const auto frames = captured_frames(301);
    ASSERT_GT(frames.size(), 100u);
    const auto pipeline = walk_config(301).pipeline_config();
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);

    core::WiTrackTracker full(pipeline, array);
    core::WiTrackTracker lazy(pipeline, array);
    for (const auto& frame : frames) {
        const auto a = full.process_frame(frame.sweeps, frame.time_s);
        const auto b =
            lazy.process_frame(frame.sweeps, frame.time_s, PipelineOutputs::kTof);
        expect_same_tof(a.tof, b.tof);
        EXPECT_FALSE(b.raw.has_value());
        EXPECT_FALSE(b.smoothed.has_value());
    }
    // The skipped steps did no work: no positions were ever produced.
    EXPECT_GT(full.track().size(), 50u);
    EXPECT_TRUE(lazy.track().empty());
    EXPECT_TRUE(lazy.raw_track().empty());
}

TEST(Scheduler, LocalizeOnlyIsBitIdenticalAndSkipsSmoothing) {
    const auto frames = captured_frames(302);
    const auto pipeline = walk_config(302).pipeline_config();
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);

    core::WiTrackTracker full(pipeline, array);
    core::WiTrackTracker lazy(pipeline, array);
    for (const auto& frame : frames) {
        const auto a = full.process_frame(frame.sweeps, frame.time_s);
        const auto b = lazy.process_frame(frame.sweeps, frame.time_s,
                                          PipelineOutputs::kRawPosition);
        ASSERT_EQ(a.raw.has_value(), b.raw.has_value());
        if (a.raw) {
            EXPECT_EQ(a.raw->position.x, b.raw->position.x);
            EXPECT_EQ(a.raw->position.y, b.raw->position.y);
            EXPECT_EQ(a.raw->position.z, b.raw->position.z);
        }
        EXPECT_FALSE(b.smoothed.has_value());
    }
    expect_same_track(full.raw_track(), lazy.raw_track());
    EXPECT_GT(lazy.raw_track().size(), 50u);
    EXPECT_TRUE(lazy.track().empty());  // the Kalman smoother never ran
}

TEST(Scheduler, ReDemandedSmoothingRestartsInsteadOfExtrapolating) {
    // Demand churn (a TrackUpdateEvent subscriber leaving and returning)
    // must not feed the position Kalman a dt spanning the whole gap: the
    // filter restarts, so the first smoothed point of the new session is
    // the raw measurement itself, not a stale-velocity extrapolation.
    const auto frames = captured_frames(311);
    const auto pipeline = walk_config(311).pipeline_config();
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);
    core::WiTrackTracker tracker(pipeline, array);

    std::size_t i = 0;
    for (; i < 60; ++i)
        tracker.process_frame(frames[i].sweeps, frames[i].time_s);
    for (; i < 140; ++i)  // subscriber gone: TOF-only
        tracker.process_frame(frames[i].sweeps, frames[i].time_s,
                              core::PipelineOutputs::kTof);
    for (; i < frames.size(); ++i) {
        const auto result =
            tracker.process_frame(frames[i].sweeps, frames[i].time_s);
        if (!result.raw) continue;
        ASSERT_TRUE(result.smoothed.has_value());
        // Fresh filter: first update returns the measurement bit for bit.
        EXPECT_EQ(result.smoothed->position.x, result.raw->position.x);
        EXPECT_EQ(result.smoothed->position.y, result.raw->position.y);
        EXPECT_EQ(result.smoothed->position.z, result.raw->position.z);
        break;
    }
    ASSERT_LT(i, frames.size());  // the resumed session did produce a point
}

// --------------------------------------------------- parallel tracker parity

TEST(Scheduler, ParallelTrackerBitIdenticalOn2And4Workers) {
    const auto frames = captured_frames(303);
    const auto pipeline = walk_config(303).pipeline_config();
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);

    core::WiTrackTracker serial(pipeline, array);
    for (const auto& frame : frames) serial.process_frame(frame.sweeps, frame.time_s);
    ASSERT_GT(serial.track().size(), 50u);

    for (const std::size_t workers : {2u, 4u}) {
        common::WorkerPool pool(workers);
        core::WiTrackTracker parallel(pipeline, array);
        parallel.set_worker_pool(&pool);
        for (const auto& frame : frames)
            parallel.process_frame(frame.sweeps, frame.time_s);
        expect_same_track(serial.track(), parallel.track());
        expect_same_track(serial.raw_track(), parallel.raw_track());
    }
}

TEST(Scheduler, ReDemandAfterNoneMatchesFreshTracker) {
    // Demand dropping to kNone and returning later (a purely event-driven
    // stage set whose subscriber comes back) restarts every stateful step:
    // the resumed tracker's per-frame output is bit-identical to a tracker
    // that never saw the pre-gap frames at all.
    const auto frames = captured_frames(312);
    const auto pipeline = walk_config(312).pipeline_config();
    const auto array = geom::make_t_array({0, 0, 1.3}, 1.0);

    core::WiTrackTracker resumed(pipeline, array);
    std::size_t i = 0;
    for (; i < 80; ++i)
        resumed.process_frame(frames[i].sweeps, frames[i].time_s);
    for (; i < 120; ++i)
        resumed.process_frame(frames[i].sweeps, frames[i].time_s,
                              core::PipelineOutputs::kNone);

    core::WiTrackTracker fresh(pipeline, array);
    for (; i < frames.size(); ++i) {
        const auto a = resumed.process_frame(frames[i].sweeps, frames[i].time_s);
        const auto b = fresh.process_frame(frames[i].sweeps, frames[i].time_s);
        expect_same_tof(a.tof, b.tof);
        ASSERT_EQ(a.raw.has_value(), b.raw.has_value());
        ASSERT_EQ(a.smoothed.has_value(), b.smoothed.has_value());
        if (a.smoothed) {
            EXPECT_EQ(a.smoothed->position.x, b.smoothed->position.x);
            EXPECT_EQ(a.smoothed->position.y, b.smoothed->position.y);
            EXPECT_EQ(a.smoothed->position.z, b.smoothed->position.z);
        }
    }
    EXPECT_GT(fresh.track().size(), 20u);
}

// ------------------------------------------------------ engine-level laziness

/// Minimal TOF-consuming stage: records each frame's TOF observations.
class TofTapStage : public engine::AppStage {
  public:
    std::string_view name() const override { return "tof_tap"; }
    engine::Inputs required_inputs() const override {
        return engine::Inputs::kTof;
    }
    bool concurrent_safe() const override { return true; }
    void on_frame(const engine::Frame&,
                  const core::WiTrackTracker::FrameResult& result,
                  engine::EventBus&) override {
        frames.push_back(result.tof);
    }
    std::vector<core::TofFrame> frames;
};

TEST(Scheduler, EngineUnionsStageDemands) {
    // TOF-only stage set: the engine schedules just the TOF step...
    auto config = walk_config(304);
    engine::Engine eng(config,
                       std::make_unique<engine::SimSource>(config, walk_script()));
    auto& tap = eng.emplace_stage<TofTapStage>();
    EXPECT_EQ(eng.demanded_outputs(), PipelineOutputs::kTof);
    eng.run();
    ASSERT_GT(tap.frames.size(), 100u);
    EXPECT_TRUE(eng.tracker().track().empty());
    EXPECT_TRUE(eng.tracker().raw_track().empty());

    // ...and its TOF stream matches the full serial pipeline bit for bit.
    auto full_config = walk_config(304);
    engine::Engine full(full_config, std::make_unique<engine::SimSource>(
                                         full_config, walk_script()));
    auto& full_tap = full.emplace_stage<TofTapStage>();
    full.bus().subscribe<engine::TrackUpdateEvent>(
        [](const engine::TrackUpdateEvent&) {});
    EXPECT_EQ(full.demanded_outputs(), PipelineOutputs::kAll);
    full.run();
    EXPECT_GT(full.tracker().track().size(), 50u);

    ASSERT_EQ(tap.frames.size(), full_tap.frames.size());
    for (std::size_t i = 0; i < tap.frames.size(); ++i)
        expect_same_tof(tap.frames[i], full_tap.frames[i]);
}

TEST(Scheduler, EngineDemandPolicy) {
    auto config = walk_config(305);
    {
        // Headless: nobody attached, full pipeline for tracker() readers.
        engine::Engine eng(config, std::make_unique<engine::SimSource>(
                                       config, walk_script()));
        EXPECT_EQ(eng.demanded_outputs(), PipelineOutputs::kAll);
        // A purely event-driven stage set demands nothing.
        apps::ApplianceRegistry registry(0.5);
        apps::InsteonDriver driver;
        eng.emplace_stage<engine::ApplianceController>(registry, driver);
        EXPECT_EQ(eng.demanded_outputs(), PipelineOutputs::kNone);
        // The fall monitor adds raw positions (and their TOF dependency)
        // but never the smoother.
        eng.emplace_stage<engine::FallMonitorStage>();
        EXPECT_EQ(eng.demanded_outputs(),
                  PipelineOutputs::kTof | PipelineOutputs::kRawPosition);
    }
    {
        // Config override wins over everything.
        auto forced = walk_config(305);
        forced.with_outputs(PipelineOutputs::kTof);
        engine::Engine eng(forced, std::make_unique<engine::SimSource>(
                                       forced, walk_script()));
        eng.bus().subscribe<engine::TrackUpdateEvent>(
            [](const engine::TrackUpdateEvent&) {});
        EXPECT_EQ(eng.demanded_outputs(), PipelineOutputs::kTof);
    }
}

// --------------------------------------------------- engine parallel parity

TEST(Scheduler, EngineParallelMatchesSerialOnSimSource) {
    auto run = [](std::size_t workers) {
        auto config = walk_config(306).with_workers(workers);
        engine::Engine eng(config, std::make_unique<engine::SimSource>(
                                       config, walk_script()));
        std::vector<core::TrackPoint> smoothed;
        eng.bus().subscribe<engine::TrackUpdateEvent>(
            [&](const engine::TrackUpdateEvent& event) {
                if (event.smoothed) smoothed.push_back(*event.smoothed);
            });
        eng.run();
        EXPECT_EQ(eng.workers(), workers == 0 ? 1u : workers);
        return smoothed;
    };

    const auto serial = run(1);
    ASSERT_GT(serial.size(), 50u);
    expect_same_track(serial, run(2));
    expect_same_track(serial, run(4));
}

TEST(Scheduler, EngineParallelParityOnReplaySource) {
    const std::string path = testing::TempDir() + "witrack_scheduler.wtrk";
    // Record a deterministic episode once.
    auto record_config = walk_config(307);
    engine::SimSource live(record_config, walk_script());
    {
        engine::Recorder recorder(path, live.fmcw(), live.array());
        engine::Frame frame;
        while (live.next(frame)) recorder.write(frame);
        ASSERT_GT(recorder.frames_written(), 100u);
    }

    auto run_replay = [&](std::size_t workers, PipelineOutputs outputs) {
        auto config = walk_config(307).with_workers(workers);
        config.with_outputs(outputs);
        engine::Engine eng(config, std::make_unique<engine::ReplaySource>(path));
        eng.run();
        return std::make_pair(eng.tracker().track(), eng.tracker().raw_track());
    };

    const auto [serial_track, serial_raw] =
        run_replay(1, PipelineOutputs::kAll);
    ASSERT_GT(serial_track.size(), 50u);

    // Parallel replay: bit-identical on 2 and 4 workers.
    for (const std::size_t workers : {2u, 4u}) {
        const auto [track, raw] = run_replay(workers, PipelineOutputs::kAll);
        expect_same_track(serial_track, track);
        expect_same_track(serial_raw, raw);
    }
    // Lazy replay: localize-only raw positions match the full run's.
    const auto [lazy_track, lazy_raw] =
        run_replay(1, PipelineOutputs::kRawPosition);
    EXPECT_TRUE(lazy_track.empty());
    expect_same_track(serial_raw, lazy_raw);
    std::remove(path.c_str());
}

// ------------------------------------------ deterministic stage-event order

/// Publishes one PersonsEvent per frame tagged with its stage id.
class TaggedStage : public engine::AppStage {
  public:
    explicit TaggedStage(double tag) : tag_(tag) {}
    std::string_view name() const override { return "tagged"; }
    engine::Inputs required_inputs() const override {
        return engine::Inputs::kTof;
    }
    bool concurrent_safe() const override { return true; }
    void on_frame(const engine::Frame& frame,
                  const core::WiTrackTracker::FrameResult&,
                  engine::EventBus& bus) override {
        // Mirrored counts: the staging bus a concurrent stage publishes
        // into reports the real bus's subscribers, so publish-gating code
        // behaves the same in both schedules.
        if (bus.subscriber_count<engine::PersonsEvent>() == 0) return;
        bus.publish(engine::PersonsEvent{frame.time_s + tag_, {}, {}});
    }

  private:
    double tag_;
};

TEST(Scheduler, ParallelStageEventsDeliverInAttachmentOrder) {
    auto run = [](std::size_t workers) {
        auto config = walk_config(308).with_workers(workers);
        engine::Engine eng(config, std::make_unique<engine::SimSource>(
                                       config, walk_script()));
        eng.emplace_stage<TaggedStage>(0.125);
        eng.emplace_stage<TaggedStage>(0.250);
        eng.emplace_stage<TaggedStage>(0.375);
        std::vector<double> order;
        eng.bus().subscribe<engine::PersonsEvent>(
            [&](const engine::PersonsEvent& event) {
                order.push_back(event.time_s);
            });
        eng.run();
        return order;
    };

    const auto serial = run(1);
    const auto parallel = run(4);
    ASSERT_GT(serial.size(), 300u);
    ASSERT_EQ(serial.size(), parallel.size());
    // Same sequence, element for element: attachment order per frame even
    // though the stages executed concurrently.
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]);
}

// ------------------------------------------------ TrackUpdateEvent laziness

TEST(Scheduler, TrackUpdateEventSkippedWithoutSubscribers) {
    auto config = walk_config(309);
    engine::Engine eng(config,
                       std::make_unique<engine::SimSource>(config, walk_script()));
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(eng.step());
    EXPECT_EQ(eng.track_updates_published(), 0u);  // never even built

    std::size_t seen = 0;
    const auto token = eng.bus().subscribe<engine::TrackUpdateEvent>(
        [&](const engine::TrackUpdateEvent&) { ++seen; });
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(eng.step());
    EXPECT_EQ(seen, 10u);
    EXPECT_EQ(eng.track_updates_published(), 10u);

    // Unsubscribing silences the channel again.
    EXPECT_TRUE(eng.bus().unsubscribe<engine::TrackUpdateEvent>(token));
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(eng.step());
    EXPECT_EQ(seen, 10u);
    EXPECT_EQ(eng.track_updates_published(), 10u);
    EXPECT_EQ(eng.frames_processed(), 35u);
}

// ------------------------------------------------------ stage-stats snapshot

TEST(Scheduler, TakeStageStatsSnapshotsAndResets) {
    auto config = walk_config(310);
    engine::Engine eng(config,
                       std::make_unique<engine::SimSource>(config, walk_script()));
    eng.emplace_stage<engine::FallMonitorStage>();

    for (int i = 0; i < 25; ++i) ASSERT_TRUE(eng.step());
    const auto window1 = eng.take_stage_stats();
    // Application stages lead; the demanded pipeline steps' cycle-counter
    // entries are appended after them (per-antenna samples for the per-RX
    // steps, so their frames count (frame, antenna) pairs).
    ASSERT_GE(window1.size(), 2u);
    EXPECT_EQ(window1[0].name, "fall_monitor");
    EXPECT_EQ(window1[0].frames, 25u);
    EXPECT_GT(window1[0].total_s, 0.0);
    EXPECT_GE(window1[0].max_s, window1[0].mean_s());
    EXPECT_EQ(window1[1].name, "pipeline.fft");
    for (std::size_t i = 1; i < window1.size(); ++i) {
        EXPECT_EQ(window1[i].name.rfind("pipeline.", 0), 0u) << window1[i].name;
        EXPECT_GT(window1[i].frames, 0u) << window1[i].name;
        EXPECT_GT(window1[i].total_s, 0.0) << window1[i].name;
        EXPECT_GE(window1[i].max_s, window1[i].mean_s()) << window1[i].name;
    }

    // The running aggregates restarted; the stage identity did not.
    ASSERT_EQ(eng.stage_stats().size(), 1u);
    EXPECT_EQ(eng.stage_stats()[0].frames, 0u);
    EXPECT_EQ(eng.stage_stats()[0].total_s, 0.0);
    EXPECT_EQ(eng.stage_stats()[0].max_s, 0.0);
    EXPECT_EQ(eng.stage_stats()[0].name, "fall_monitor");

    for (int i = 0; i < 10; ++i) ASSERT_TRUE(eng.step());
    const auto window2 = eng.take_stage_stats();
    EXPECT_EQ(window2[0].frames, 10u);  // only the new window
}

// -------------------------------------------------------------- WorkerPool

TEST(WorkerPool, ParallelForCoversEveryIndexExactlyOnce) {
    common::WorkerPool pool(4);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);

    // Reusable: a second fan-out on the same pool works the same way.
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950u);
}

TEST(WorkerPool, ParallelForRethrowsBodyException) {
    common::WorkerPool pool(2);
    EXPECT_THROW(
        pool.parallel_for(64,
                          [](std::size_t i) {
                              if (i == 13) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The pool survives the exception and keeps scheduling.
    std::atomic<int> ran{0};
    pool.parallel_for(8, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

TEST(WorkerPool, SubmitRunsJobsAndDrainsOnDestruction) {
    std::atomic<int> ran{0};
    {
        common::WorkerPool pool(2, /*queue_capacity=*/4);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(WorkerPool, ZeroAndOneItemFanOutsRunInline) {
    common::WorkerPool pool(3);
    pool.parallel_for(0, [](std::size_t) { FAIL() << "no indices to run"; });
    int ran = 0;
    pool.parallel_for(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++ran;
    });
    EXPECT_EQ(ran, 1);
}

}  // namespace
}  // namespace witrack
