// Fleet runtime suite. The contract under test: an EngineHost multiplexing
// heterogeneous sessions (sim + replay, different demand masks) over one
// shared WorkerPool produces per-session output bit-identical to the same
// sessions run standalone on dedicated Engines -- under the serial and the
// shared-pool schedules -- while admission control, backpressure eviction
// and fault isolation keep tenants from hurting each other. Plus the
// FftPlanCache sharing proof and WorkerPool multi-client semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/worker_pool.hpp"
#include "core/pipeline_steps.hpp"
#include "dsp/fft_plan_cache.hpp"
#include "engine/engine.hpp"
#include "engine/host.hpp"
#include "engine/replay.hpp"
#include "engine/sim_source.hpp"

namespace witrack {
namespace {

using core::PipelineOutputs;
using geom::Vec3;

// ------------------------------------------------------------ helpers

engine::EngineConfig walk_config(std::uint64_t seed) {
    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(seed);
    return config;
}

std::unique_ptr<sim::LineWalkScript> walk_script(double x0 = -1.0, double x1 = 1.0) {
    return std::make_unique<sim::LineWalkScript>(Vec3{x0, 5, 0}, Vec3{x1, 5, 0},
                                                 2.0, 1.0);
}

void expect_same_track(const std::vector<core::TrackPoint>& a,
                       const std::vector<core::TrackPoint>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time_s, b[i].time_s);
        EXPECT_EQ(a[i].position.x, b[i].position.x);
        EXPECT_EQ(a[i].position.y, b[i].position.y);
        EXPECT_EQ(a[i].position.z, b[i].position.z);
        EXPECT_EQ(a[i].residual_rms, b[i].residual_rms);
    }
}

void expect_same_tof(const core::TofFrame& a, const core::TofFrame& b) {
    ASSERT_EQ(a.antennas.size(), b.antennas.size());
    EXPECT_EQ(a.time_s, b.time_s);
    for (std::size_t rx = 0; rx < a.antennas.size(); ++rx) {
        const auto& x = a.antennas[rx];
        const auto& y = b.antennas[rx];
        EXPECT_EQ(x.contour.detected, y.contour.detected);
        EXPECT_EQ(x.contour.round_trip_m, y.contour.round_trip_m);
        ASSERT_EQ(x.denoised_m.has_value(), y.denoised_m.has_value());
        if (x.denoised_m) {
            EXPECT_EQ(*x.denoised_m, *y.denoised_m);
        }
    }
}

/// Record a deterministic sim episode to `path` once.
void record_episode(const std::string& path, std::uint64_t seed) {
    auto config = walk_config(seed);
    engine::SimSource live(config, walk_script());
    engine::Recorder recorder(path, live.fmcw(), live.array());
    engine::Frame frame;
    while (live.next(frame)) recorder.write(frame);
    recorder.close();
}

/// Minimal TOF-consuming stage: records each frame's TOF observations.
class TofTapStage : public engine::AppStage {
  public:
    std::string_view name() const override { return "tof_tap"; }
    engine::Inputs required_inputs() const override {
        return engine::Inputs::kTof;
    }
    bool concurrent_safe() const override { return true; }
    void on_frame(const engine::Frame&,
                  const core::WiTrackTracker::FrameResult& result,
                  engine::EventBus&) override {
        frames.push_back(result.tof);
    }
    std::vector<core::TofFrame> frames;
};

/// Publishes one PersonsEvent from finish() -- probes whether episode
/// verdicts leak out of an evicted session.
class FinishProbeStage : public engine::AppStage {
  public:
    std::string_view name() const override { return "finish_probe"; }
    engine::Inputs required_inputs() const override {
        return engine::Inputs::kTof;
    }
    void on_frame(const engine::Frame&,
                  const core::WiTrackTracker::FrameResult&,
                  engine::EventBus&) override {}
    void finish(engine::EventBus& bus) override {
        bus.publish(engine::PersonsEvent{0.0, {}, {}});
    }
};

/// Throws once at a chosen frame index -- the fault-isolation probe.
class FaultyStage : public engine::AppStage {
  public:
    explicit FaultyStage(std::size_t fail_at) : fail_at_(fail_at) {}
    std::string_view name() const override { return "faulty"; }
    engine::Inputs required_inputs() const override {
        return engine::Inputs::kTof;
    }
    void on_frame(const engine::Frame&,
                  const core::WiTrackTracker::FrameResult&,
                  engine::EventBus&) override {
        if (++seen_ == fail_at_) throw std::runtime_error("tenant bug");
    }

  private:
    std::size_t fail_at_;
    std::size_t seen_ = 0;
};

// ------------------------------------------- heterogeneous fleet bit parity

/// Run the canonical 3-session heterogeneous fleet (full-demand sim walk,
/// TOF-only sim walk, localize-only replay) on one EngineHost and compare
/// every session's output bit for bit against dedicated standalone Engines.
void run_fleet_parity(std::size_t host_workers, bool batch_fft = false) {
    const std::string path = testing::TempDir() + "witrack_fleet_parity.wtrk";
    record_episode(path, 407);

    // --- standalone references (serial: the schedule-independent truth) ---
    auto full_config = walk_config(401);
    engine::Engine full_ref(full_config,
                            std::make_unique<engine::SimSource>(full_config,
                                                                walk_script()));
    full_ref.run();
    ASSERT_GT(full_ref.tracker().track().size(), 50u);

    auto tof_config = walk_config(402);
    engine::Engine tof_ref(tof_config, std::make_unique<engine::SimSource>(
                                           tof_config, walk_script(-0.5, 1.5)));
    auto& ref_tap = tof_ref.emplace_stage<TofTapStage>();
    tof_ref.run();
    ASSERT_GT(ref_tap.frames.size(), 100u);
    EXPECT_TRUE(tof_ref.tracker().track().empty());  // demand mask respected

    auto replay_config = walk_config(407);
    replay_config.with_outputs(PipelineOutputs::kRawPosition);
    engine::Engine replay_ref(replay_config,
                              std::make_unique<engine::ReplaySource>(path));
    replay_ref.run();
    ASSERT_GT(replay_ref.tracker().raw_track().size(), 50u);
    EXPECT_TRUE(replay_ref.tracker().track().empty());

    // --- the same three sessions multiplexed on one host ------------------
    engine::EngineHost host(engine::HostConfig{}
                                .with_workers(host_workers)
                                .with_max_sessions(8)
                                .with_batch_fft(batch_fft));
    const auto full_id = host.admit("home-a", walk_config(401),
                                    std::make_unique<engine::SimSource>(
                                        walk_config(401), walk_script()));
    const auto tof_id =
        host.admit("home-b", walk_config(402),
                   std::make_unique<engine::SimSource>(walk_config(402),
                                                       walk_script(-0.5, 1.5)));
    auto& host_tap = host.session(tof_id)->emplace_stage<TofTapStage>();
    auto rp_config = walk_config(407);
    rp_config.with_outputs(PipelineOutputs::kRawPosition);
    const auto replay_id = host.admit(
        "replay-c", rp_config, std::make_unique<engine::ReplaySource>(path));

    EXPECT_EQ(host.state(full_id), engine::SessionState::kAdmitted);
    host.run();
    EXPECT_EQ(host.state(full_id), engine::SessionState::kFinished);
    EXPECT_EQ(host.state(tof_id), engine::SessionState::kFinished);
    EXPECT_EQ(host.state(replay_id), engine::SessionState::kFinished);

    // Bit parity per session, regardless of schedule or co-tenants.
    expect_same_track(full_ref.tracker().track(),
                      host.session(full_id)->tracker().track());
    expect_same_track(full_ref.tracker().raw_track(),
                      host.session(full_id)->tracker().raw_track());
    ASSERT_EQ(ref_tap.frames.size(), host_tap.frames.size());
    for (std::size_t i = 0; i < ref_tap.frames.size(); ++i)
        expect_same_tof(ref_tap.frames[i], host_tap.frames[i]);
    EXPECT_TRUE(host.session(tof_id)->tracker().track().empty());
    expect_same_track(replay_ref.tracker().raw_track(),
                      host.session(replay_id)->tracker().raw_track());
    EXPECT_TRUE(host.session(replay_id)->tracker().track().empty());
    std::remove(path.c_str());
}

TEST(Fleet, HeterogeneousSessionsBitIdenticalSerialHost) {
    run_fleet_parity(1);
}

TEST(Fleet, HeterogeneousSessionsBitIdenticalSharedPoolHost) {
    run_fleet_parity(4);
}

TEST(Fleet, HeterogeneousSessionsBitIdenticalDefaultWorkers) {
    // workers = 0 resolves WITRACK_WORKERS exactly like the standalone
    // Engine does -- the TSan CI job runs this suite with WITRACK_WORKERS=4,
    // flipping the whole fleet onto the shared pool.
    run_fleet_parity(0);
}

TEST(Fleet, HeterogeneousSessionsBitIdenticalBatchedHost) {
    // batch_fft gathers the three sessions' range FFTs into shared
    // lane-interleaved passes each round; output must not move a bit.
    run_fleet_parity(1, /*batch_fft=*/true);
}

TEST(Fleet, HeterogeneousSessionsBitIdenticalBatchedSharedPoolHost) {
    run_fleet_parity(4, /*batch_fft=*/true);
}

TEST(Fleet, BatchedHostSharesCrossSessionFftWork) {
    // Two same-config sessions: every batched round fuses their range FFTs
    // (one per antenna per session) into cross-session batches, and the
    // telemetry window reports exactly how many transforms ran shared.
    engine::EngineHost host(engine::HostConfig{}.with_batch_fft(true));
    const auto a = host.admit("a", walk_config(421),
                              std::make_unique<engine::SimSource>(
                                  walk_config(421), walk_script()));
    const auto b = host.admit("b", walk_config(422),
                              std::make_unique<engine::SimSource>(
                                  walk_config(422), walk_script()));
    const std::size_t num_rx =
        host.session(a)->array().rx.size();
    for (int round = 0; round < 5; ++round) EXPECT_EQ(host.step_all(), 2u);

    auto stats = host.take_fleet_stats();
    EXPECT_EQ(stats.frames, 10u);
    // Both sessions' transforms share every round's pass: 2 sessions x
    // num_rx antennas x 5 rounds all ran inside batches of >= 2. Under a
    // WITRACK_HW_FAULTS campaign (the CI fault-matrix lane) dropped lanes
    // skip their FFT entirely, so the shared count can only shrink.
    if (std::getenv("WITRACK_HW_FAULTS") == nullptr) {
        EXPECT_EQ(stats.fft_batched, 2u * num_rx * 5u);
    } else {
        EXPECT_GT(stats.fft_batched, 0u);
        EXPECT_LE(stats.fft_batched, 2u * num_rx * 5u);
    }
    EXPECT_NE(engine::to_json(stats).find("\"fft_batched\":"), std::string::npos);

    // The counter is a window aggregate: it resets with the window and
    // stays zero for a serial-configured host.
    EXPECT_EQ(host.take_fleet_stats().fft_batched, 0u);
    EXPECT_EQ(host.state(b), engine::SessionState::kRunning);
}

// ------------------------------------------------------ round-robin fairness

TEST(Fleet, StepAllIsFairRoundRobin) {
    engine::EngineHost host;
    const auto a = host.admit("a", walk_config(411),
                              std::make_unique<engine::SimSource>(
                                  walk_config(411), walk_script()));
    const auto b = host.admit("b", walk_config(412),
                              std::make_unique<engine::SimSource>(
                                  walk_config(412), walk_script()));
    for (int round = 1; round <= 10; ++round) {
        EXPECT_EQ(host.step_all(), 2u);  // one frame per session per round
        EXPECT_EQ(host.session(a)->frames_processed(),
                  static_cast<std::size_t>(round));
        EXPECT_EQ(host.session(b)->frames_processed(),
                  static_cast<std::size_t>(round));
    }
    EXPECT_EQ(host.rounds(), 10u);
    EXPECT_EQ(host.state(a), engine::SessionState::kRunning);

    // A frame budget stops between rounds.
    const std::size_t more = host.run(6);
    EXPECT_EQ(more, 6u);
}

// ------------------------------------------------------------ admission

TEST(Fleet, AdmissionCapQueuesAndPromotes) {
    engine::EngineHost host(
        engine::HostConfig{}.with_max_sessions(2).with_queue_when_full(true));
    const auto a = host.admit("a", walk_config(421),
                              std::make_unique<engine::SimSource>(
                                  walk_config(421), walk_script()));
    const auto b = host.admit("b", walk_config(422),
                              std::make_unique<engine::SimSource>(
                                  walk_config(422), walk_script()));
    const auto c = host.admit("c", walk_config(423),
                              std::make_unique<engine::SimSource>(
                                  walk_config(423), walk_script()));
    EXPECT_EQ(host.active_sessions(), 2u);
    EXPECT_EQ(host.queued_sessions(), 1u);

    // The queued session does not run while the fleet is at capacity.
    host.step_all();
    EXPECT_EQ(host.session(c)->frames_processed(), 0u);
    EXPECT_EQ(host.state(c), engine::SessionState::kAdmitted);

    // ...but finishes (promoted into a freed slot) by the end of the run,
    // with output identical to a dedicated Engine.
    host.run();
    EXPECT_EQ(host.state(a), engine::SessionState::kFinished);
    EXPECT_EQ(host.state(b), engine::SessionState::kFinished);
    EXPECT_EQ(host.state(c), engine::SessionState::kFinished);
    EXPECT_EQ(host.queued_sessions(), 0u);

    auto ref_config = walk_config(423);
    engine::Engine ref(ref_config, std::make_unique<engine::SimSource>(
                                       ref_config, walk_script()));
    ref.run();
    expect_same_track(ref.tracker().track(),
                      host.session(c)->tracker().track());
}

TEST(Fleet, AdmissionCapRejectsWhenQueueingDisabled) {
    engine::EngineHost host(
        engine::HostConfig{}.with_max_sessions(1).with_queue_when_full(false));
    host.admit("only", walk_config(424),
               std::make_unique<engine::SimSource>(walk_config(424),
                                                   walk_script()));
    EXPECT_THROW(host.admit("rejected", walk_config(425),
                            std::make_unique<engine::SimSource>(
                                walk_config(425), walk_script())),
                 std::runtime_error);
    EXPECT_EQ(host.total_sessions(), 1u);
}

// --------------------------------------------------- backpressure + faults

TEST(Fleet, PausedSessionAccruesLagAndIsEvicted) {
    engine::EngineHost host(engine::HostConfig{}.with_max_frame_lag(5));
    const auto slow = host.admit("slow", walk_config(431),
                                 std::make_unique<engine::SimSource>(
                                     walk_config(431), walk_script()));
    const auto healthy = host.admit("healthy", walk_config(432),
                                    std::make_unique<engine::SimSource>(
                                        walk_config(432), walk_script()));
    for (int i = 0; i < 3; ++i) host.step_all();
    host.pause(slow);
    // 5 rounds of lag are tolerated; the 6th evicts.
    for (int i = 0; i < 5; ++i) host.step_all();
    EXPECT_EQ(host.state(slow), engine::SessionState::kRunning);
    host.step_all();
    EXPECT_EQ(host.state(slow), engine::SessionState::kEvicted);
    EXPECT_EQ(host.session(slow)->frames_processed(), 3u);

    // The surviving tenant is untouched: it finishes with output identical
    // to a dedicated Engine.
    host.run();
    EXPECT_EQ(host.state(healthy), engine::SessionState::kFinished);
    auto ref_config = walk_config(432);
    engine::Engine ref(ref_config, std::make_unique<engine::SimSource>(
                                       ref_config, walk_script()));
    ref.run();
    expect_same_track(ref.tracker().track(),
                      host.session(healthy)->tracker().track());

    const auto stats = host.take_fleet_stats();
    EXPECT_EQ(stats.sessions_evicted, 1u);
    EXPECT_EQ(stats.sessions_finished, 1u);
    ASSERT_EQ(stats.sessions.size(), 2u);
    EXPECT_NE(stats.sessions[0].fault.find("max_frame_lag"), std::string::npos);
}

TEST(Fleet, PauseResumeWithoutEviction) {
    engine::EngineHost host(engine::HostConfig{}.with_max_frame_lag(10));
    const auto id = host.admit("s", walk_config(433),
                               std::make_unique<engine::SimSource>(
                                   walk_config(433), walk_script()));
    host.step_all();
    host.pause(id);
    for (int i = 0; i < 4; ++i) host.step_all();
    EXPECT_EQ(host.session(id)->frames_processed(), 1u);
    host.resume(id);
    host.run();
    EXPECT_EQ(host.state(id), engine::SessionState::kFinished);

    // A resumed pull-source session lost nothing (frames were not consumed
    // while paused), so the track matches a dedicated Engine's exactly.
    auto ref_config = walk_config(433);
    engine::Engine ref(ref_config, std::make_unique<engine::SimSource>(
                                       ref_config, walk_script()));
    ref.run();
    expect_same_track(ref.tracker().track(), host.session(id)->tracker().track());
}

TEST(Fleet, ThrowingStageEvictsOnlyItsSession) {
    engine::EngineHost host;
    const auto bad = host.admit("bad", walk_config(441),
                                std::make_unique<engine::SimSource>(
                                    walk_config(441), walk_script()));
    const auto good = host.admit("good", walk_config(442),
                                 std::make_unique<engine::SimSource>(
                                     walk_config(442), walk_script()));
    host.session(bad)->emplace_stage<FaultyStage>(/*fail_at=*/10);

    host.run();
    EXPECT_EQ(host.state(bad), engine::SessionState::kEvicted);
    EXPECT_EQ(host.state(good), engine::SessionState::kFinished);
    const auto stats = host.take_fleet_stats();
    EXPECT_NE(stats.sessions[0].fault.find("tenant bug"), std::string::npos);

    auto ref_config = walk_config(442);
    engine::Engine ref(ref_config, std::make_unique<engine::SimSource>(
                                       ref_config, walk_script()));
    ref.run();
    expect_same_track(ref.tracker().track(),
                      host.session(good)->tracker().track());
}

TEST(Fleet, ManualEvictionFreesSlotForQueuedSession) {
    engine::EngineHost host(engine::HostConfig{}.with_max_sessions(1));
    const auto a = host.admit("a", walk_config(443),
                              std::make_unique<engine::SimSource>(
                                  walk_config(443), walk_script()));
    const auto b = host.admit("b", walk_config(444),
                              std::make_unique<engine::SimSource>(
                                  walk_config(444), walk_script()));
    host.step_all();
    EXPECT_EQ(host.session(b)->frames_processed(), 0u);
    EXPECT_TRUE(host.evict(a, "tenant closed the app"));
    EXPECT_FALSE(host.evict(a));  // already terminal
    EXPECT_EQ(host.state(a), engine::SessionState::kEvicted);
    host.run();
    EXPECT_EQ(host.state(b), engine::SessionState::kFinished);
    EXPECT_GT(host.session(b)->frames_processed(), 100u);
}

TEST(Fleet, EvictedSessionEngineIsTerminallyInert) {
    // Eviction must hold even for a caller still holding the (readable)
    // Engine: no further frames process, and episode finish() verdicts --
    // computed from a half-processed stream -- are never published.
    engine::EngineHost host;
    const auto id = host.admit("doomed", walk_config(445),
                               std::make_unique<engine::SimSource>(
                                   walk_config(445), walk_script()));
    host.session(id)->emplace_stage<FinishProbeStage>();
    std::size_t verdicts = 0;
    host.session(id)->bus().subscribe<engine::PersonsEvent>(
        [&](const engine::PersonsEvent&) { ++verdicts; });

    for (int i = 0; i < 5; ++i) host.step_all();
    ASSERT_TRUE(host.evict(id, "test eviction"));

    engine::Engine* engine = host.session(id);
    EXPECT_FALSE(engine->step());
    EXPECT_EQ(engine->run(), 0u);
    engine->finish();
    EXPECT_EQ(engine->frames_processed(), 5u);
    EXPECT_EQ(verdicts, 0u);
    EXPECT_EQ(engine->session_state(), engine::SessionState::kEvicted);

    // A non-evicted session publishes its verdict exactly once, for
    // contrast.
    const auto ok = host.admit("ok", walk_config(446),
                               std::make_unique<engine::SimSource>(
                                   walk_config(446), walk_script()));
    host.session(ok)->emplace_stage<FinishProbeStage>();
    std::size_t ok_verdicts = 0;
    host.session(ok)->bus().subscribe<engine::PersonsEvent>(
        [&](const engine::PersonsEvent&) { ++ok_verdicts; });
    host.run();
    EXPECT_EQ(ok_verdicts, 1u);
}

TEST(Fleet, FinishedEngineRefusesFurtherFrames) {
    // finish() is terminal: once episode verdicts were delivered, no frame
    // may flow (it could never get episode closure).
    auto config = walk_config(449);
    engine::Engine eng(config, std::make_unique<engine::SimSource>(
                                   config, walk_script()));
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(eng.step());
    eng.finish();
    EXPECT_EQ(eng.session_state(), engine::SessionState::kFinished);
    EXPECT_FALSE(eng.step());
    EXPECT_EQ(eng.run(), 0u);
    EXPECT_EQ(eng.frames_processed(), 5u);
}

TEST(Fleet, OutOfBandFinishPromotesQueuedSessionAndIsCounted) {
    // session() hands out the Engine*; a caller may drive a session to
    // completion outside the scheduler. The host must still notice the
    // freed slot (queued tenants run) and count the finish.
    engine::EngineHost host(engine::HostConfig{}.with_max_sessions(1));
    const auto a = host.admit("a", walk_config(452),
                              std::make_unique<engine::SimSource>(
                                  walk_config(452), walk_script()));
    const auto b = host.admit("b", walk_config(453),
                              std::make_unique<engine::SimSource>(
                                  walk_config(453), walk_script()));
    EXPECT_EQ(host.queued_sessions(), 1u);

    host.session(a)->run();  // out-of-band: not via step_all()
    EXPECT_EQ(host.state(a), engine::SessionState::kFinished);

    host.run();
    EXPECT_EQ(host.state(b), engine::SessionState::kFinished);
    EXPECT_GT(host.session(b)->frames_processed(), 100u);
    const auto stats = host.take_fleet_stats();
    EXPECT_EQ(stats.sessions_finished, 2u);
    EXPECT_EQ(stats.queued_sessions, 0u);
}

TEST(Fleet, ReapDropsTerminalSessionsOnly) {
    engine::EngineHost host;
    const auto done = host.admit("done", walk_config(447),
                                 std::make_unique<engine::SimSource>(
                                     walk_config(447), walk_script()));
    host.run();
    const auto live = host.admit("live", walk_config(448),
                                 std::make_unique<engine::SimSource>(
                                     walk_config(448), walk_script()));
    host.step_all();

    EXPECT_EQ(host.total_sessions(), 2u);
    EXPECT_EQ(host.reap(), 1u);  // only the finished session goes
    EXPECT_EQ(host.total_sessions(), 1u);
    EXPECT_EQ(host.session(done), nullptr);
    ASSERT_NE(host.session(live), nullptr);
    EXPECT_EQ(host.state(live), engine::SessionState::kRunning);
    EXPECT_EQ(host.reap(), 0u);

    // The reaped id is gone from telemetry; the survivor still rolls up.
    const auto stats = host.take_fleet_stats();
    ASSERT_EQ(stats.sessions.size(), 1u);
    EXPECT_EQ(stats.sessions[0].name, "live");
}

// ----------------------------------------------------------- fleet stats

TEST(Fleet, TakeFleetStatsSnapshotsAndResets) {
    engine::EngineHost host;
    const auto id = host.admit("s", walk_config(451),
                               std::make_unique<engine::SimSource>(
                                   walk_config(451), walk_script()));
    host.session(id)->emplace_stage<TofTapStage>();
    for (int i = 0; i < 25; ++i) host.step_all();

    auto window1 = host.take_fleet_stats();
    EXPECT_EQ(window1.frames, 25u);
    EXPECT_GT(window1.wall_s, 0.0);
    EXPECT_GT(window1.throughput_fps, 0.0);
    EXPECT_EQ(window1.sessions_admitted, 1u);
    EXPECT_EQ(window1.active_sessions, 1u);
    ASSERT_EQ(window1.sessions.size(), 1u);
    EXPECT_EQ(window1.sessions[0].name, "s");
    EXPECT_EQ(window1.sessions[0].frames, 25u);
    EXPECT_GT(window1.sessions[0].total_step_s, 0.0);
    EXPECT_GE(window1.sessions[0].max_step_s, window1.sessions[0].mean_step_s());
    // The per-stage rollup rides the same snapshot (take_stage_stats);
    // the demanded pipeline steps' cycle-counter entries follow the
    // application stages.
    ASSERT_GE(window1.sessions[0].stages.size(), 2u);
    EXPECT_EQ(window1.sessions[0].stages[0].name, "tof_tap");
    EXPECT_EQ(window1.sessions[0].stages[0].frames, 25u);
    for (std::size_t i = 1; i < window1.sessions[0].stages.size(); ++i)
        EXPECT_EQ(window1.sessions[0].stages[i].name.rfind("pipeline.", 0), 0u);

    // The window reset: a second take right after 10 more frames reports
    // only the new window, on both levels.
    for (int i = 0; i < 10; ++i) host.step_all();
    auto window2 = host.take_fleet_stats();
    EXPECT_EQ(window2.frames, 10u);
    EXPECT_EQ(window2.sessions[0].frames, 10u);
    EXPECT_EQ(window2.sessions[0].stages[0].frames, 10u);
}

// ------------------------------------------------------- FFT plan sharing

TEST(Fleet, SessionsShareOneFftPlan) {
    engine::EngineHost host;
    const auto a = host.admit("a", walk_config(461),
                              std::make_unique<engine::SimSource>(
                                  walk_config(461), walk_script()));
    const auto b = host.admit("b", walk_config(462),
                              std::make_unique<engine::SimSource>(
                                  walk_config(462), walk_script()));
    const auto* plan_a =
        host.session(a)->tracker().tof_estimator().processors().lane(0).plan();
    const auto* plan_b =
        host.session(b)->tracker().tof_estimator().processors().lane(0).plan();
    ASSERT_NE(plan_a, nullptr);
    // Same pointer: the twiddle/chirp tables exist once for the fleet.
    EXPECT_EQ(plan_a, plan_b);
    // And they came from the host's cache (the process-global one here).
    // The processor's plan shape is (fft_size, pruned to the sweep length).
    const auto& shared_pipeline = host.session(a)->pipeline_config();
    EXPECT_EQ(plan_a, host.plan_cache()
                          .real_plan(shared_pipeline.fft_size,
                                     shared_pipeline.fmcw.samples_per_sweep())
                          .get());

    // A host with a private cache is isolated from the global plans.
    dsp::FftPlanCache isolated;
    engine::EngineHost tenant_host(
        engine::HostConfig{}.with_plan_cache(&isolated));
    const auto c = tenant_host.admit("c", walk_config(463),
                                     std::make_unique<engine::SimSource>(
                                         walk_config(463), walk_script()));
    const auto* plan_c = tenant_host.session(c)
                             ->tracker()
                             .tof_estimator()
                             .processors()
                             .lane(0)
                             .plan();
    EXPECT_NE(plan_c, plan_a);
    EXPECT_GT(isolated.cached_plans(), 0u);
}

// ------------------------------------------- WorkerPool multi-client safety

TEST(WorkerPoolFleet, InterleavedParallelForFromTwoClients) {
    // Two sessions' worth of concurrent parallel_for traffic on one shared
    // pool: every index of every fan-out runs exactly once, no cross-talk.
    common::WorkerPool pool(4);
    constexpr std::size_t kN = 256;
    constexpr int kRounds = 50;
    std::vector<std::atomic<int>> hits_a(kN), hits_b(kN);

    auto client = [&pool](std::vector<std::atomic<int>>& hits) {
        for (int round = 0; round < kRounds; ++round)
            pool.parallel_for(hits.size(), [&hits](std::size_t i) {
                hits[i].fetch_add(1, std::memory_order_relaxed);
            });
    };
    std::thread a(client, std::ref(hits_a));
    std::thread b(client, std::ref(hits_b));
    a.join();
    b.join();
    for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(hits_a[i].load(), kRounds);
        EXPECT_EQ(hits_b[i].load(), kRounds);
    }
}

TEST(WorkerPoolFleet, ExceptionInOneClientDoesNotPoisonTheOther) {
    common::WorkerPool pool(4);
    constexpr int kRounds = 25;
    std::atomic<int> faulty_throws{0};
    std::atomic<std::size_t> healthy_sum{0};

    std::thread faulty([&] {
        for (int round = 0; round < kRounds; ++round) {
            try {
                pool.parallel_for(64, [](std::size_t i) {
                    if (i == 13) throw std::runtime_error("tenant bug");
                });
            } catch (const std::runtime_error&) {
                faulty_throws.fetch_add(1, std::memory_order_relaxed);
            }
        }
    });
    std::thread healthy([&] {
        for (int round = 0; round < kRounds; ++round)
            pool.parallel_for(100, [&](std::size_t i) {
                healthy_sum.fetch_add(i, std::memory_order_relaxed);
            });
    });
    faulty.join();
    healthy.join();
    // Every faulty fan-out rethrew on its own caller; every healthy fan-out
    // still covered all of its indices.
    EXPECT_EQ(faulty_throws.load(), kRounds);
    EXPECT_EQ(healthy_sum.load(), static_cast<std::size_t>(kRounds) * 4950u);

    // The pool survives both clients and keeps scheduling.
    std::atomic<int> ran{0};
    pool.parallel_for(8, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace witrack
