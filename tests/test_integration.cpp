// End-to-end integration tests: full scenarios through the full pipeline --
// tracking accuracy, LOS vs through-wall, fall detection, pointing, the
// static-training extension, multi-person tracking, the RTI baseline, and
// the appliance application.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "apps/appliances.hpp"
#include "apps/fall_monitor.hpp"
#include "baseline/rti.hpp"
#include "core/fall.hpp"
#include "core/multi.hpp"
#include "core/pointing.hpp"
#include "core/tracker.hpp"
#include "dsp/stats.hpp"
#include "sim/scenario.hpp"

namespace witrack {
namespace {

using geom::Vec3;

core::PipelineConfig pipeline_for(const sim::ScenarioConfig& config) {
    core::PipelineConfig p;
    p.fmcw = config.fmcw;
    return p;
}

struct RunResult {
    std::vector<double> ex, ey, ez;
    std::vector<core::TrackPoint> track;
    std::vector<core::TrackPoint> raw_track;
    std::vector<core::TofFrame> tof_frames;
};

RunResult run_scenario(sim::Scenario& scenario, const core::PipelineConfig& pipeline,
                       double settle_s = 2.0, bool keep_tof = false) {
    core::WiTrackTracker tracker(pipeline, scenario.array());
    RunResult result;
    sim::Scenario::Frame frame;
    while (scenario.next(frame)) {
        auto out = tracker.process_frame(frame.sweeps, frame.time_s);
        if (keep_tof) result.tof_frames.push_back(out.tof);
        if (!out.smoothed || frame.time_s < settle_s) continue;
        const Vec3 est = out.smoothed->position;
        result.ex.push_back(std::abs(est.x - frame.pose.center.x));
        result.ey.push_back(std::abs(est.y - frame.pose.center.y));
        result.ez.push_back(std::abs(est.z - frame.pose.center.z));
    }
    result.track = tracker.track();
    result.raw_track = tracker.raw_track();
    return result;
}

// ------------------------------------------------------------ 3D tracking

TEST(Integration, ThroughWallTrackingMediansNearPaper) {
    sim::ScenarioConfig config;
    config.through_wall = true;
    config.fast_capture = true;
    config.seed = 21;
    Rng rng(101);
    const auto env = sim::make_through_wall_lab();
    sim::Scenario scenario(config, std::make_unique<sim::RandomWaypointWalk>(
                                       env.bounds, 20.0, rng.fork(1)));
    const auto result = run_scenario(scenario, pipeline_for(config));
    ASSERT_GT(result.ex.size(), 500u);
    // Paper medians (through wall): 13.1 / 10.25 / 21.0 cm. Allow generous
    // headroom: the claim under test is the error *scale*.
    EXPECT_LT(dsp::median(result.ex), 0.25);
    EXPECT_LT(dsp::median(result.ey), 0.25);
    EXPECT_LT(dsp::median(result.ez), 0.40);
}

TEST(Integration, FullCaptureMatchesFastCapture) {
    // The fast-capture path (1 synthesized averaged sweep per frame) must be
    // statistically equivalent to full 5-sweep synthesis.
    auto run_mode = [](bool fast) {
        sim::ScenarioConfig config;
        config.through_wall = true;
        config.fast_capture = fast;
        config.seed = 31;
        sim::Scenario scenario(config,
                               std::make_unique<sim::LineWalkScript>(
                                   Vec3{-1.5, 5, 0}, Vec3{1.5, 5, 0}, 8.0, 1.0));
        auto r = run_scenario(scenario, pipeline_for(config));
        std::vector<double> e3;
        for (std::size_t i = 0; i < r.ex.size(); ++i)
            e3.push_back(std::sqrt(r.ex[i] * r.ex[i] + r.ey[i] * r.ey[i] +
                                   r.ez[i] * r.ez[i]));
        return dsp::median(e3);
    };
    const double fast = run_mode(true);
    const double full = run_mode(false);
    EXPECT_LT(std::abs(fast - full), 0.15);  // same error scale
}

TEST(Integration, TrackerLatencyWellUnderPaperBudget) {
    // Paper Section 7: software delay < 75 ms per output.
    sim::ScenarioConfig config;
    config.seed = 41;
    sim::Scenario scenario(config, std::make_unique<sim::LineWalkScript>(
                                       Vec3{-1, 5, 0}, Vec3{1, 5, 0}, 3.0, 1.0));
    core::WiTrackTracker tracker(pipeline_for(config), scenario.array());
    sim::Scenario::Frame frame;
    while (scenario.next(frame)) tracker.process_frame(frame.sweeps, frame.time_s);
    EXPECT_GT(tracker.frames_processed(), 100u);
    EXPECT_LT(tracker.mean_latency_s(), 0.075);
}

TEST(Integration, StationaryPersonInterpolatedAtLastPosition) {
    // Walk then stop: the pipeline must keep reporting the stop position
    // (paper Section 4.4 interpolation).
    sim::ScenarioConfig config;
    config.fast_capture = true;
    config.seed = 51;

    class WalkThenStop : public sim::MotionScript {
      public:
        sim::Pose pose_at(double t) const override {
            sim::Pose pose;
            if (t < 5.0) {
                pose.center = {geom::lerp({-1, 4, 0}, {1, 6, 0}, t / 5.0)};
                pose.center.z = 1.0;
                pose.speed_mps = 0.57;
            } else {
                pose.center = {1, 6, 1.0};
                pose.speed_mps = 0.0;
                pose.body_static = true;
            }
            return pose;
        }
        double duration_s() const override { return 12.0; }
    };

    sim::Scenario scenario(config, std::make_unique<WalkThenStop>());
    const auto result = run_scenario(scenario, pipeline_for(config), 2.0);
    // The last samples (person static for 7 s) must still be near (1, 6).
    ASSERT_GT(result.track.size(), 100u);
    const auto& last = result.track.back();
    EXPECT_NEAR(last.position.x, 1.0, 0.6);
    EXPECT_NEAR(last.position.y, 6.0, 0.6);
}

TEST(Integration, StaticTrainingLocalizesStaticPerson) {
    // Paper Section 10 extension: with a trained empty-room background, a
    // person who never moves is still localized; with frame differencing
    // she is invisible.
    sim::ScenarioConfig config;
    config.fast_capture = true;
    config.seed = 61;
    config.through_wall = false;

    auto make_scenario = [&] {
        return std::make_unique<sim::Scenario>(
            config, std::make_unique<sim::StandStillScript>(Vec3{0.8, 5.0, 0}, 6.0));
    };

    // Train the background on an empty room (no person -> empty scatterers).
    auto pipeline = pipeline_for(config);
    core::TofEstimator tof(pipeline, 3);
    tof.enable_static_training();
    {
        sim::ScenarioConfig empty_config = config;
        // An empty room: person parked far outside the beam behind the array.
        sim::Scenario empty(empty_config, std::make_unique<sim::StandStillScript>(
                                              Vec3{0, -50, 0}, 2.0));
        sim::Scenario::Frame frame;
        while (empty.next(frame)) tof.train_background(frame.sweeps);
    }

    auto scenario = make_scenario();
    core::Localizer localizer(scenario->array(), pipeline);
    sim::Scenario::Frame frame;
    std::size_t located = 0;
    Vec3 last_pos;
    std::size_t frames = 0;
    while (scenario->next(frame)) {
        const auto tof_frame = tof.process_frame(frame.sweeps, frame.time_s);
        ++frames;
        if (const auto point = localizer.locate(tof_frame)) {
            ++located;
            last_pos = point->position;
        }
    }
    ASSERT_GT(located, frames / 2);
    EXPECT_NEAR(last_pos.x, 0.8, 0.5);
    EXPECT_NEAR(last_pos.y, 5.0, 0.5);

    // Control: frame differencing cannot see the static person.
    core::TofEstimator frame_diff(pipeline, 3);
    auto control = make_scenario();
    std::size_t control_detections = 0;
    while (control->next(frame)) {
        const auto tof_frame = frame_diff.process_frame(frame.sweeps, frame.time_s);
        if (tof_frame.motion_detected(3)) ++control_detections;
    }
    EXPECT_LT(control_detections, 10u);
}

// --------------------------------------------------------- fall detection

TEST(Integration, FallDetectorSeparatesAllFourActivities) {
    const auto env = sim::make_through_wall_lab();
    core::FallDetector detector;

    auto classify_activity = [&](sim::ActivityKind kind, std::uint64_t seed) {
        sim::ScenarioConfig config;
        config.fast_capture = true;
        config.seed = seed;
        auto script = std::make_unique<sim::ActivityScript>(kind, env.bounds,
                                                            Rng(seed), 24.0);
        sim::Scenario scenario(config, std::move(script));
        const auto result = run_scenario(scenario, pipeline_for(config));
        // The paper's study logs episodes and classifies offline; the raw
        // track preserves the fast fall transient.
        return detector.classify(result.raw_track);
    };

    // Pick seeds whose scripts sit in the *typical* region of each class
    // (fast falls, slow floor-sits); the deliberate distribution overlap is
    // exercised statistically by bench_fall_table.
    auto seed_with = [&](sim::ActivityKind kind, auto predicate) -> std::uint64_t {
        for (std::uint64_t seed = 1; seed < 64; ++seed) {
            sim::ActivityScript probe(kind, env.bounds, Rng(seed), 24.0);
            if (predicate(probe)) return seed;
        }
        return 1;
    };
    const auto fall_seed =
        seed_with(sim::ActivityKind::kFall, [](const sim::ActivityScript& s) {
            return s.transition_duration_s() < 0.55;
        });
    const auto sit_floor_seed =
        seed_with(sim::ActivityKind::kSitFloor, [](const sim::ActivityScript& s) {
            return s.transition_duration_s() > 1.8;
        });
    EXPECT_EQ(classify_activity(sim::ActivityKind::kWalk, 3),
              core::Activity::kWalk);
    EXPECT_EQ(classify_activity(sim::ActivityKind::kSitChair, 4),
              core::Activity::kSitChair);
    // A slow floor-sit must never be read as a fall; the exact floor/chair
    // boundary is statistical (bench_fall_table measures it), so accept
    // either ground-level class here.
    const auto floor_class =
        classify_activity(sim::ActivityKind::kSitFloor, sit_floor_seed);
    EXPECT_NE(floor_class, core::Activity::kFall);
    EXPECT_NE(floor_class, core::Activity::kWalk);
    EXPECT_EQ(classify_activity(sim::ActivityKind::kFall, fall_seed),
              core::Activity::kFall);
}

TEST(Integration, StreamingFallMonitorFiresOnce) {
    const auto env = sim::make_through_wall_lab();
    sim::ScenarioConfig config;
    config.fast_capture = true;
    config.seed = 71;
    auto script = std::make_unique<sim::ActivityScript>(sim::ActivityKind::kFall,
                                                        env.bounds, Rng(6), 24.0);
    sim::Scenario scenario(config, std::move(script));
    const auto result = run_scenario(scenario, pipeline_for(config));

    apps::FallMonitor monitor;
    int alerts = 0;
    monitor.on_fall([&](const core::FallDetector::Analysis&) { ++alerts; });
    for (const auto& point : result.raw_track) monitor.push(point);
    EXPECT_EQ(alerts, 1);
    ASSERT_EQ(monitor.alerts().size(), 1u);
    EXPECT_LT(monitor.alerts()[0].final_elevation_m, 0.45);
}

// --------------------------------------------------------------- pointing

TEST(Integration, PointingDirectionRecovered) {
    sim::ScenarioConfig config;
    config.fast_capture = true;
    config.through_wall = true;
    config.seed = 81;

    const Vec3 truth_dir = Vec3{0.5, 0.7, 0.2}.normalized();
    auto script = std::make_unique<sim::PointingScript>(Vec3{0.5, 4.5, 0},
                                                        truth_dir, Rng(5));
    const auto* script_ptr = script.get();
    sim::Scenario scenario(config, std::move(script));

    auto pipeline = pipeline_for(config);
    core::TofEstimator tof(pipeline, 3);
    std::vector<core::TofFrame> frames;
    sim::Scenario::Frame frame;
    while (scenario.next(frame))
        frames.push_back(tof.process_frame(frame.sweeps, frame.time_s));

    core::PointingEstimator estimator(pipeline, scenario.array());
    const auto result = estimator.analyze(frames);
    ASSERT_TRUE(result.has_value());
    const double err = rad_to_deg(
        geom::angle_between(result->direction, script_ptr->true_direction()));
    // Single-seed tolerance; the distribution (median/90th vs the paper's
    // 11.2/37.9 deg) is measured by bench_fig11_pointing.
    EXPECT_LT(err, 50.0);
}

TEST(Integration, WholeBodyMotionRejectedAsGesture) {
    // A walking person must NOT be classified as an arm gesture
    // (Section 6.1's reflection-surface variance test).
    sim::ScenarioConfig config;
    config.fast_capture = true;
    config.seed = 91;
    sim::Scenario scenario(config, std::make_unique<sim::LineWalkScript>(
                                       Vec3{-1.5, 5, 0}, Vec3{1.5, 5, 0}, 6.0, 1.0));
    auto pipeline = pipeline_for(config);
    core::TofEstimator tof(pipeline, 3);
    std::vector<core::TofFrame> frames;
    sim::Scenario::Frame frame;
    while (scenario.next(frame))
        frames.push_back(tof.process_frame(frame.sweeps, frame.time_s));

    core::PointingEstimator estimator(pipeline, scenario.array());
    EXPECT_FALSE(estimator.looks_like_body_part(frames));
    EXPECT_FALSE(estimator.analyze(frames).has_value());
}

TEST(Integration, PointingDrivesApplianceRegistry) {
    sim::ScenarioConfig config;
    config.fast_capture = true;
    config.seed = 92;
    const Vec3 stand{0.0, 5.0, 0};
    const Vec3 lamp_pos{2.0, 7.5, 1.2};
    const Vec3 dir = (lamp_pos - Vec3{stand.x, stand.y, 1.3}).normalized();
    auto script = std::make_unique<sim::PointingScript>(stand, dir, Rng(7));
    sim::Scenario scenario(config, std::move(script));

    auto pipeline = pipeline_for(config);
    core::TofEstimator tof(pipeline, 3);
    std::vector<core::TofFrame> frames;
    sim::Scenario::Frame frame;
    while (scenario.next(frame))
        frames.push_back(tof.process_frame(frame.sweeps, frame.time_s));
    core::PointingEstimator estimator(pipeline, scenario.array());
    const auto pointing = estimator.analyze(frames);
    ASSERT_TRUE(pointing.has_value());

    apps::ApplianceRegistry registry(deg_to_rad(35.0));
    registry.add("lamp", lamp_pos);
    registry.add("screen", {-2.5, 6.0, 1.0});  // far off the pointing ray
    apps::InsteonDriver driver;
    const auto actuated = registry.actuate(*pointing, driver);
    ASSERT_TRUE(actuated.has_value());
    EXPECT_EQ(*actuated, "lamp");
    ASSERT_EQ(driver.log().size(), 1u);
    EXPECT_TRUE(driver.log()[0].turn_on);
}

// ----------------------------------------------------------- multi-person

TEST(Integration, TracksTwoPeopleWithContinuity) {
    sim::ScenarioConfig config;
    config.fast_capture = true;
    config.second_person = true;
    config.seed = 93;
    auto s1 = std::make_unique<sim::LineWalkScript>(Vec3{-2.0, 4, 0},
                                                    Vec3{-0.5, 6.5, 0}, 10.0, 1.0);
    auto s2 = std::make_unique<sim::LineWalkScript>(Vec3{2.0, 6.5, 0},
                                                    Vec3{0.8, 4.0, 0}, 10.0, 1.0);
    sim::Scenario scenario(config, std::move(s1), std::move(s2));

    auto pipeline = pipeline_for(config);
    pipeline.contour_peaks = 3;  // extra peaks absorb multipath ghosts
    core::TofEstimator tof(pipeline, 3);
    core::MultiPersonTracker tracker(pipeline, scenario.array(), 2);

    sim::Scenario::Frame frame;
    std::vector<double> err1, err2;
    while (scenario.next(frame)) {
        const auto tof_frame = tof.process_frame(frame.sweeps, frame.time_s);
        const auto people = tracker.process(tof_frame, frame.time_s);
        if (frame.time_s < 3.0 || people.size() < 2) continue;
        if (!frame.pose2) continue;
        // Match each estimate to its nearest truth (identity can swap).
        const Vec3 t1 = frame.pose.center;
        const Vec3 t2 = frame.pose2->center;
        const auto& p1 = people[0].position;
        const auto& p2 = people[1].position;
        const double direct = p1.distance_to(t1) + p2.distance_to(t2);
        const double swapped = p1.distance_to(t2) + p2.distance_to(t1);
        if (direct <= swapped) {
            err1.push_back(p1.distance_to(t1));
            err2.push_back(p2.distance_to(t2));
        } else {
            err1.push_back(p1.distance_to(t2));
            err2.push_back(p2.distance_to(t1));
        }
    }
    ASSERT_GT(err1.size(), 200u);
    // The paper leaves multi-person tracking to future work (Section 10);
    // this extension demonstrates feasibility: the dominant person tracks at
    // sub-meter accuracy and the second is followed coarsely (the 8-candidate
    // ellipsoid ambiguity plus the weaker echo make it noisier).
    EXPECT_LT(dsp::median(err1), 1.0);
    EXPECT_LT(dsp::median(err2), 3.0);
}

// ------------------------------------------------------------ RTI baseline

TEST(Integration, RtiLocalizesCoarsely) {
    const auto env = sim::make_through_wall_lab();
    baseline::RtiNetwork rti(baseline::RtiConfig{}, env.bounds, Rng(17));
    Rng rng(18);
    std::vector<double> errors;
    for (int i = 0; i < 60; ++i) {
        const Vec3 person{rng.uniform(env.bounds.x_min + 0.5, env.bounds.x_max - 0.5),
                          rng.uniform(env.bounds.y_min + 0.5, env.bounds.y_max - 0.5),
                          1.0};
        const Vec3 est = rti.locate(person);
        errors.push_back(std::hypot(est.x - person.x, est.y - person.y));
    }
    const double med = dsp::median(errors);
    EXPECT_LT(med, 1.2);   // it does localize...
    EXPECT_GT(med, 0.25);  // ...but much more coarsely than WiTrack
}

TEST(Integration, RtiImagePeaksNearPerson) {
    const auto env = sim::make_through_wall_lab();
    baseline::RtiConfig config;
    config.rssi_noise_db = 0.1;  // near-noiseless: blob must sit on the person
    baseline::RtiNetwork rti(config, env.bounds, Rng(19));
    const Vec3 person{0.5, 5.5, 1.0};
    const Vec3 est = rti.locate(person);
    EXPECT_NEAR(est.x, person.x, 0.5);
    EXPECT_NEAR(est.y, person.y, 0.5);
}

TEST(Integration, RtiRejectsBadMeasurementSize) {
    const auto env = sim::make_through_wall_lab();
    baseline::RtiNetwork rti(baseline::RtiConfig{}, env.bounds, Rng(20));
    EXPECT_THROW(rti.estimate(std::vector<double>(3, 0.0)), std::invalid_argument);
}

}  // namespace
}  // namespace witrack
