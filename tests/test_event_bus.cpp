// Event-bus unit tests: typed delivery, multiple subscribers, subscription
// ordering, unsubscribe semantics, and channel isolation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/events.hpp"

namespace witrack::engine {
namespace {

TrackUpdateEvent update_at(double time_s) {
    TrackUpdateEvent event;
    event.time_s = time_s;
    return event;
}

TEST(EventBus, DeliversToSubscriber) {
    EventBus bus;
    std::vector<double> seen;
    bus.subscribe<TrackUpdateEvent>(
        [&](const TrackUpdateEvent& event) { seen.push_back(event.time_s); });

    bus.publish(update_at(1.0));
    bus.publish(update_at(2.0));
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], 1.0);
    EXPECT_EQ(seen[1], 2.0);
}

TEST(EventBus, AllSubscribersReceiveEveryEvent) {
    EventBus bus;
    int a = 0, b = 0, c = 0;
    bus.subscribe<FallEvent>([&](const FallEvent&) { ++a; });
    bus.subscribe<FallEvent>([&](const FallEvent&) { ++b; });
    bus.subscribe<FallEvent>([&](const FallEvent&) { ++c; });
    EXPECT_EQ(bus.subscriber_count<FallEvent>(), 3u);

    bus.publish(FallEvent{});
    bus.publish(FallEvent{});
    EXPECT_EQ(a, 2);
    EXPECT_EQ(b, 2);
    EXPECT_EQ(c, 2);
}

TEST(EventBus, DeliveryFollowsSubscriptionOrder) {
    EventBus bus;
    std::string order;
    bus.subscribe<PointingEvent>([&](const PointingEvent&) { order += 'a'; });
    bus.subscribe<PointingEvent>([&](const PointingEvent&) { order += 'b'; });
    bus.subscribe<PointingEvent>([&](const PointingEvent&) { order += 'c'; });

    bus.publish(PointingEvent{});
    EXPECT_EQ(order, "abc");
    bus.publish(PointingEvent{});
    EXPECT_EQ(order, "abcabc");
}

TEST(EventBus, UnsubscribeStopsDelivery) {
    EventBus bus;
    int kept = 0, removed = 0;
    bus.subscribe<PersonsEvent>([&](const PersonsEvent&) { ++kept; });
    const auto id =
        bus.subscribe<PersonsEvent>([&](const PersonsEvent&) { ++removed; });

    bus.publish(PersonsEvent{});
    EXPECT_TRUE(bus.unsubscribe<PersonsEvent>(id));
    bus.publish(PersonsEvent{});

    EXPECT_EQ(kept, 2);
    EXPECT_EQ(removed, 1);
    EXPECT_EQ(bus.subscriber_count<PersonsEvent>(), 1u);

    // A token can only be spent once; unknown tokens are rejected.
    EXPECT_FALSE(bus.unsubscribe<PersonsEvent>(id));
    EXPECT_FALSE(bus.unsubscribe<PersonsEvent>(987654u));
}

TEST(EventBus, ChannelsAreIsolatedByType) {
    EventBus bus;
    int track_updates = 0, falls = 0;
    bus.subscribe<TrackUpdateEvent>([&](const TrackUpdateEvent&) { ++track_updates; });
    bus.subscribe<FallEvent>([&](const FallEvent&) { ++falls; });

    bus.publish(update_at(0.5));
    EXPECT_EQ(track_updates, 1);
    EXPECT_EQ(falls, 0);

    bus.publish(FallEvent{});
    EXPECT_EQ(track_updates, 1);
    EXPECT_EQ(falls, 1);

    // Tokens are per-channel: a TrackUpdate token does not unsubscribe falls.
    const auto fall_id = bus.subscribe<FallEvent>([](const FallEvent&) {});
    EXPECT_FALSE(bus.unsubscribe<TrackUpdateEvent>(fall_id));
    EXPECT_TRUE(bus.unsubscribe<FallEvent>(fall_id));
}

TEST(EventBus, EventCarriesPayload) {
    EventBus bus;
    std::optional<core::TrackPoint> received;
    bus.subscribe<TrackUpdateEvent>([&](const TrackUpdateEvent& event) {
        received = event.smoothed;
    });

    TrackUpdateEvent event = update_at(3.25);
    core::TrackPoint point;
    point.time_s = 3.25;
    point.position = {1.0, 5.0, 1.2};
    event.smoothed = point;
    bus.publish(event);

    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(received->position.x, 1.0);
    EXPECT_EQ(received->position.y, 5.0);
    EXPECT_EQ(received->position.z, 1.2);
}

TEST(EventBus, CaptureModeDefersAndReplaysInOrder) {
    // The parallel scheduler's staging mode: a capturing bus records
    // publishes instead of delivering, and the recorded closures replay the
    // events on the real bus in capture order -- including interleavings of
    // different event types, which a single type-erased queue preserves.
    EventBus real;
    std::string order;
    real.subscribe<TrackUpdateEvent>(
        [&](const TrackUpdateEvent& event) { order += 't' + std::to_string(event.time_s); });
    real.subscribe<FallEvent>([&](const FallEvent&) { order += 'f'; });

    EventBus staging;
    std::vector<EventBus::DeferredEvent> pending;
    staging.capture_into(&pending);
    staging.subscribe<TrackUpdateEvent>([&](const TrackUpdateEvent&) {
        FAIL() << "capture mode must not deliver";
    });

    staging.publish(update_at(1));
    staging.publish(FallEvent{});
    staging.publish(update_at(2));
    EXPECT_EQ(order, "");  // nothing delivered yet
    ASSERT_EQ(pending.size(), 3u);

    for (auto& deferred : pending) deferred(real);
    EXPECT_EQ(order, "t1.000000ft2.000000");

    // Restoring immediate delivery turns the staging bus back into a
    // normal one.
    pending.clear();
    staging.capture_into(nullptr);
    int direct = 0;
    staging.subscribe<FallEvent>([&](const FallEvent&) { ++direct; });
    staging.publish(FallEvent{});
    EXPECT_EQ(direct, 1);
    EXPECT_TRUE(pending.empty());
}

TEST(EventBus, MirroredCountsReportTheSourceBus) {
    // A staging bus answers subscriber_count with the real bus's counts, so
    // publish-gating stage code decides identically in serial and parallel
    // schedules.
    EventBus real;
    real.subscribe<FallEvent>([](const FallEvent&) {});
    real.subscribe<FallEvent>([](const FallEvent&) {});

    EventBus staging;
    std::vector<EventBus::DeferredEvent> pending;
    staging.capture_into(&pending);
    staging.mirror_counts_from(&real);

    EXPECT_EQ(staging.subscriber_count<FallEvent>(), 2u);
    EXPECT_EQ(staging.subscriber_count<PointingEvent>(), 0u);
    staging.publish(FallEvent{});  // still captured, not delivered
    EXPECT_EQ(pending.size(), 1u);

    staging.mirror_counts_from(nullptr);
    EXPECT_EQ(staging.subscriber_count<FallEvent>(), 0u);  // local again
}

}  // namespace
}  // namespace witrack::engine
