// Unit tests for the DSP toolbox: windows, statistics, peak finding,
// filters, Kalman filters and robust regression.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dsp/filter.hpp"
#include "dsp/kalman.hpp"
#include "dsp/linalg.hpp"
#include "dsp/peaks.hpp"
#include "dsp/regression.hpp"
#include "dsp/stats.hpp"
#include "dsp/window.hpp"

namespace witrack::dsp {
namespace {

// ---------------------------------------------------------------- windows

class Windows : public ::testing::TestWithParam<WindowType> {};

TEST_P(Windows, SymmetricAndBounded) {
    const auto w = make_window(GetParam(), 101);
    ASSERT_EQ(w.size(), 101u);
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
        EXPECT_GE(w[i], -1e-6);
        EXPECT_LE(w[i], 1.0 + 1e-12);
    }
}

TEST_P(Windows, PeaksAtCenter) {
    const auto w = make_window(GetParam(), 101);
    const double center = w[50];
    for (double v : w) EXPECT_LE(v, center + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, Windows,
                         ::testing::Values(WindowType::kRectangular, WindowType::kHann,
                                           WindowType::kHamming, WindowType::kBlackman,
                                           WindowType::kBlackmanHarris),
                         [](const ::testing::TestParamInfo<WindowType>& info) {
                             std::string n = window_name(info.param);
                             n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
                             return n;
                         });

TEST(Windows, HannEndpointsAreZero) {
    const auto w = make_window(WindowType::kHann, 64);
    EXPECT_NEAR(w.front(), 0.0, 1e-12);
    EXPECT_NEAR(w.back(), 0.0, 1e-12);
}

TEST(Windows, GainIsCoefficientSum) {
    const auto w = make_window(WindowType::kHamming, 10);
    double sum = 0.0;
    for (double v : w) sum += v;
    EXPECT_DOUBLE_EQ(window_gain(w), sum);
}

TEST(Windows, ApplyWindowRequiresMatchingLength) {
    std::vector<double> signal(8, 1.0);
    const auto w = make_window(WindowType::kHann, 4);
    EXPECT_THROW(apply_window(signal, w), std::invalid_argument);
}

// ------------------------------------------------------------- statistics

TEST(Stats, BasicMoments) {
    const std::vector<double> v{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(mean(v), 3.0);
    EXPECT_DOUBLE_EQ(variance(v), 2.0);
    EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(2.0));
    EXPECT_DOUBLE_EQ(min_value(v), 1.0);
    EXPECT_DOUBLE_EQ(max_value(v), 5.0);
}

TEST(Stats, EmptyInputsThrow) {
    EXPECT_THROW(mean({}), std::invalid_argument);
    EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
    EXPECT_THROW(EmpiricalCdf({}), std::invalid_argument);
}

TEST(Stats, PercentileInterpolation) {
    const std::vector<double> v{0, 10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 20.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 12.5), 5.0);
}

TEST(Stats, MedianUnsortedInput) {
    EXPECT_DOUBLE_EQ(median({9, 1, 5}), 5.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Stats, CdfFractionAndInverseAgree) {
    std::vector<double> samples;
    for (int i = 0; i < 1000; ++i) samples.push_back(static_cast<double>(i));
    EmpiricalCdf cdf(samples);
    EXPECT_NEAR(cdf.median(), 499.5, 1.0);
    EXPECT_NEAR(cdf.percentile(90.0), 899.1, 1.5);
    EXPECT_NEAR(cdf.fraction_below(cdf.value_at(0.35)), 0.35, 0.01);
}

TEST(Stats, CdfCurveIsMonotone) {
    std::mt19937 rng(2);
    std::normal_distribution<double> dist(0.0, 1.0);
    std::vector<double> samples(500);
    for (auto& s : samples) s = dist(rng);
    EmpiricalCdf cdf(samples);
    const auto curve = cdf.curve(50);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_LE(curve[i - 1].fraction, curve[i].fraction);
        EXPECT_LT(curve[i - 1].value, curve[i].value);
    }
    EXPECT_NEAR(curve.back().fraction, 1.0, 1e-12);
}

TEST(Stats, HistogramBinning) {
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
    h.add(-1.0);   // below range: total only
    h.add(100.0);  // above range: total only
    for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bin_count(b), 1u);
    EXPECT_EQ(h.total(), 12u);
    EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Stats, RunningStatsMatchesBatch) {
    std::mt19937 rng(7);
    std::normal_distribution<double> dist(3.0, 2.0);
    std::vector<double> samples(2000);
    RunningStats rs;
    for (auto& s : samples) {
        s = dist(rng);
        rs.add(s);
    }
    EXPECT_NEAR(rs.mean(), mean(samples), 1e-9);
    EXPECT_NEAR(rs.variance(), variance(samples), 1e-6);
    rs.reset();
    EXPECT_EQ(rs.count(), 0u);
}

// ------------------------------------------------------------------ peaks

TEST(Peaks, FindsIsolatedMaxima) {
    std::vector<double> v(50, 0.0);
    v[10] = 5.0;
    v[30] = 3.0;
    const auto peaks = find_peaks(v, 1.0);
    ASSERT_EQ(peaks.size(), 2u);
    EXPECT_EQ(peaks[0].bin, 10u);
    EXPECT_EQ(peaks[1].bin, 30u);
    EXPECT_DOUBLE_EQ(peaks[0].value, 5.0);
}

TEST(Peaks, ThresholdSuppressesNoise) {
    std::vector<double> v(50, 0.0);
    v[10] = 5.0;
    v[30] = 0.5;  // below threshold
    const auto peaks = find_peaks(v, 1.0);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].bin, 10u);
}

TEST(Peaks, MinSeparationKeepsClosest) {
    std::vector<double> v(50, 0.0);
    v[10] = 5.0;
    v[12] = 6.0;  // larger but within separation of the first
    const auto peaks = find_peaks(v, 1.0, 5);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].bin, 10u);  // bottom-contour semantics keep the closer
}

TEST(Peaks, ParabolicInterpolationRecoversSubBinShift) {
    // Sample a Gaussian pulse centred between bins; the log-magnitude is a
    // parabola, so a quadratic fit on a narrow pulse is near-exact.
    std::vector<double> v(32, 0.0);
    const double center = 16.3;
    for (std::size_t i = 0; i < v.size(); ++i) {
        const double d = static_cast<double>(i) - center;
        v[i] = std::exp(-d * d / 4.0);
    }
    const auto peaks = find_peaks(v, 0.1);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_NEAR(peaks[0].interpolated, center, 0.05);
}

TEST(Peaks, EdgeBinsFallBackToInteger) {
    std::vector<double> v{5.0, 1.0, 0.0};
    EXPECT_DOUBLE_EQ(parabolic_peak_position(v, 0), 0.0);
    EXPECT_DOUBLE_EQ(parabolic_peak_position(v, 2), 2.0);
}

TEST(Peaks, NoiseFloorIsMedianByDefault) {
    std::vector<double> v{1, 1, 1, 1, 100};
    EXPECT_DOUBLE_EQ(noise_floor(v), 1.0);
    EXPECT_THROW(noise_floor({}), std::invalid_argument);
}

// ---------------------------------------------------------------- filters

TEST(Filter, HighPassBlocksDcPassesHighFrequency) {
    OnePoleHighPass hp(1000.0, 1e6);
    // DC
    double dc_out = 0.0;
    for (int i = 0; i < 5000; ++i) dc_out = hp.process(1.0);
    EXPECT_NEAR(dc_out, 0.0, 1e-2);
    // 100 kHz tone, well above cutoff
    hp.reset();
    double peak = 0.0;
    for (int i = 0; i < 2000; ++i) {
        const double x = std::sin(2.0 * M_PI * 1e5 * i / 1e6);
        peak = std::max(peak, std::abs(hp.process(x)));
    }
    EXPECT_GT(peak, 0.9);
}

TEST(Filter, HighPassRejectsBadConfig) {
    EXPECT_THROW(OnePoleHighPass(0.0, 1e6), std::invalid_argument);
    EXPECT_THROW(OnePoleHighPass(6e5, 1e6), std::invalid_argument);
}

TEST(Filter, LowPassTracksDc) {
    OnePoleLowPass lp(100.0, 1e4);
    double out = 0.0;
    for (int i = 0; i < 10000; ++i) out = lp.process(2.5);
    EXPECT_NEAR(out, 2.5, 1e-6);
}

TEST(Filter, MovingAverageConverges) {
    MovingAverage ma(4);
    ma.process(1.0);
    ma.process(2.0);
    ma.process(3.0);
    EXPECT_DOUBLE_EQ(ma.process(4.0), 2.5);
    EXPECT_DOUBLE_EQ(ma.process(5.0), 3.5);  // window slides
    EXPECT_TRUE(ma.full());
}

TEST(Filter, FirLowPassAttenuatesStopband) {
    const auto taps = design_lowpass_fir(5e4, 1e6, 101);
    FirFilter fir(taps);
    double pass_peak = 0.0, stop_peak = 0.0;
    for (int i = 0; i < 4000; ++i) {
        const double t = static_cast<double>(i) / 1e6;
        pass_peak = std::max(pass_peak, std::abs(fir.process(std::sin(2 * M_PI * 1e4 * t))));
    }
    fir.reset();
    for (int i = 0; i < 4000; ++i) {
        const double t = static_cast<double>(i) / 1e6;
        stop_peak = std::max(stop_peak, std::abs(fir.process(std::sin(2 * M_PI * 3e5 * t))));
    }
    EXPECT_GT(pass_peak, 0.9);
    EXPECT_LT(stop_peak, 0.05);
}

TEST(Filter, FirUnityDcGain) {
    const auto taps = design_lowpass_fir(1e5, 1e6, 31);
    double sum = 0.0;
    for (double t : taps) sum += t;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

// ----------------------------------------------------------------- linalg

TEST(Linalg, IdentityAndMultiply) {
    auto eye = Matrix<3, 3>::identity();
    Matrix<3, 3> m;
    m(0, 0) = 2;
    m(1, 2) = 5;
    m(2, 1) = -1;
    const auto prod = eye * m;
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(prod(r, c), m(r, c));
}

TEST(Linalg, InverseRecoversIdentity) {
    Matrix<3, 3> m;
    m(0, 0) = 4;  m(0, 1) = 7;  m(0, 2) = 2;
    m(1, 0) = 3;  m(1, 1) = 6;  m(1, 2) = 1;
    m(2, 0) = 2;  m(2, 1) = 5;  m(2, 2) = 3;
    const auto prod = m * m.inverse();
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-10);
}

TEST(Linalg, SingularMatrixThrows) {
    Matrix<2, 2> m;
    m(0, 0) = 1;
    m(0, 1) = 2;
    m(1, 0) = 2;
    m(1, 1) = 4;
    EXPECT_THROW(m.inverse(), std::runtime_error);
}

TEST(Linalg, SolveLinearSystem) {
    Matrix<2, 2> a;
    a(0, 0) = 3;  a(0, 1) = 1;
    a(1, 0) = 1;  a(1, 1) = 2;
    Vector<2> b;
    b(0, 0) = 9;
    b(1, 0) = 8;
    const auto x = solve(a, b);
    EXPECT_NEAR(x(0, 0), 2.0, 1e-12);
    EXPECT_NEAR(x(1, 0), 3.0, 1e-12);
}

// ----------------------------------------------------------------- kalman

TEST(Kalman, InitializesToFirstMeasurement) {
    ScalarKalman kf(1.0, 0.1);
    EXPECT_FALSE(kf.initialized());
    EXPECT_DOUBLE_EQ(kf.update(5.0, 0.0125), 5.0);
    EXPECT_TRUE(kf.initialized());
}

TEST(Kalman, ConvergesToConstantValue) {
    ScalarKalman kf(0.5, 0.2);
    std::mt19937 rng(4);
    std::normal_distribution<double> noise(0.0, 0.2);
    double out = 0.0;
    for (int i = 0; i < 400; ++i) out = kf.update(3.0 + noise(rng), 0.0125);
    EXPECT_NEAR(out, 3.0, 0.08);
    EXPECT_NEAR(kf.rate(), 0.0, 0.2);
}

TEST(Kalman, TracksConstantVelocity) {
    ScalarKalman kf(2.0, 0.05);
    const double dt = 0.0125;
    double t = 0.0;
    double out = 0.0;
    for (int i = 0; i < 800; ++i) {
        t += dt;
        out = kf.update(1.0 + 0.8 * t, dt);
    }
    EXPECT_NEAR(out, 1.0 + 0.8 * t, 0.05);
    EXPECT_NEAR(kf.rate(), 0.8, 0.1);
}

TEST(Kalman, SmoothsNoise) {
    // Variance of the filtered output must be well below the raw noise.
    ScalarKalman kf(0.5, 0.3);
    std::mt19937 rng(11);
    std::normal_distribution<double> noise(0.0, 0.3);
    RunningStats raw, filtered;
    for (int i = 0; i < 2000; ++i) {
        const double m = 2.0 + noise(rng);
        const double f = kf.update(m, 0.0125);
        if (i > 100) {  // after convergence
            raw.add(m);
            filtered.add(f);
        }
    }
    EXPECT_LT(filtered.variance(), raw.variance() / 4.0);
}

TEST(Kalman, PredictOnlyExtrapolates) {
    ScalarKalman kf(1.0, 0.05);
    const double dt = 0.0125;
    for (int i = 0; i < 400; ++i)
        kf.update(static_cast<double>(i) * dt * 1.0, dt);  // 1 m/s ramp
    const double last = kf.value();
    const double predicted = kf.predict_only(1.0);
    EXPECT_NEAR(predicted - last, 1.0, 0.15);
}

TEST(Kalman, RejectsNonPositiveNoise) {
    EXPECT_THROW(ScalarKalman(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(PositionKalman(1.0, 0.0), std::invalid_argument);
}

TEST(Kalman, PositionFilterTracks3dLine) {
    PositionKalman kf(2.0, 0.05);
    const double dt = 0.0125;
    std::mt19937 rng(5);
    std::normal_distribution<double> noise(0.0, 0.05);
    PositionKalman::Position out{};
    double t = 0.0;
    for (int i = 0; i < 800; ++i) {
        t += dt;
        out = kf.update({1.0 + 0.5 * t + noise(rng), 2.0 - 0.3 * t + noise(rng),
                         1.0 + noise(rng)},
                        dt);
    }
    EXPECT_NEAR(out.x, 1.0 + 0.5 * t, 0.08);
    EXPECT_NEAR(out.y, 2.0 - 0.3 * t, 0.08);
    EXPECT_NEAR(out.z, 1.0, 0.08);
    EXPECT_NEAR(kf.velocity().x, 0.5, 0.1);
    EXPECT_NEAR(kf.velocity().z, 0.0, 0.1);
}

// ------------------------------------------------------------- regression

TEST(Regression, OlsExactOnLine) {
    std::vector<double> x, y;
    for (int i = 0; i < 20; ++i) {
        x.push_back(i);
        y.push_back(2.5 * i - 1.0);
    }
    const auto fit = fit_ols(x, y);
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.slope, 2.5, 1e-10);
    EXPECT_NEAR(fit.intercept, -1.0, 1e-9);
}

TEST(Regression, DegenerateInputsInvalid) {
    EXPECT_FALSE(fit_ols({1.0}, {2.0}).valid);
    EXPECT_FALSE(fit_ols({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0}).valid);  // vertical
    EXPECT_THROW(fit_ols({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(Regression, TheilSenResistsOutliers) {
    std::vector<double> x, y;
    for (int i = 0; i < 30; ++i) {
        x.push_back(i);
        y.push_back(1.5 * i + 3.0);
    }
    y[4] += 100.0;  // gross outliers
    y[17] -= 80.0;
    const auto robust = fit_theil_sen(x, y);
    ASSERT_TRUE(robust.valid);
    EXPECT_NEAR(robust.slope, 1.5, 0.05);
    EXPECT_NEAR(robust.intercept, 3.0, 1.0);
    const auto ols = fit_ols(x, y);
    EXPECT_GT(std::abs(ols.slope - 1.5), std::abs(robust.slope - 1.5));
}

TEST(Regression, HuberResistsOutliers) {
    std::vector<double> x, y;
    std::mt19937 rng(8);
    std::normal_distribution<double> noise(0.0, 0.05);
    for (int i = 0; i < 40; ++i) {
        x.push_back(0.1 * i);
        y.push_back(-0.8 * 0.1 * i + 2.0 + noise(rng));
    }
    y[10] += 50.0;
    const auto fit = fit_huber(x, y);
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.slope, -0.8, 0.05);
    EXPECT_NEAR(fit.intercept, 2.0, 0.1);
}

TEST(Regression, HuberRejectsBadDelta) {
    EXPECT_THROW(fit_huber({1, 2, 3}, {1, 2, 3}, -1.0), std::invalid_argument);
}

TEST(Regression, ResidualStddevZeroOnPerfectFit) {
    const std::vector<double> x{0, 1, 2, 3};
    const std::vector<double> y{1, 3, 5, 7};
    const auto fit = fit_ols(x, y);
    EXPECT_NEAR(fit_residual_stddev(fit, x, y), 0.0, 1e-9);
}

}  // namespace
}  // namespace witrack::dsp
