// Geometry tests: vectors, ellipsoids, beam cones, and the ellipsoid-
// intersection localizer (closed form vs Gauss-Newton, noise behaviour,
// over-constrained arrays).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "common/random.hpp"
#include "geom/array_geometry.hpp"
#include "geom/beam.hpp"
#include "geom/ellipsoid.hpp"
#include "geom/solver.hpp"
#include "geom/vec3.hpp"

namespace witrack::geom {
namespace {

std::vector<double> round_trips_for(const ArrayGeometry& g, const Vec3& p) {
    std::vector<double> d;
    for (const auto& rx : g.rx) d.push_back(p.distance_to(g.tx) + p.distance_to(rx));
    return d;
}

// ------------------------------------------------------------------- Vec3

TEST(Vec3Test, Arithmetic) {
    const Vec3 a{1, 2, 3}, b{4, -5, 6};
    EXPECT_DOUBLE_EQ((a + b).x, 5.0);
    EXPECT_DOUBLE_EQ((a - b).y, 7.0);
    EXPECT_DOUBLE_EQ((a * 2.0).z, 6.0);
    EXPECT_DOUBLE_EQ((2.0 * a).z, 6.0);
    EXPECT_DOUBLE_EQ(a.dot(b), 12.0);
}

TEST(Vec3Test, CrossProductOrthogonality) {
    const Vec3 a{1, 2, 3}, b{-2, 1, 4};
    const Vec3 c = a.cross(b);
    EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
    EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
    const Vec3 x{1, 0, 0}, y{0, 1, 0};
    const Vec3 z = x.cross(y);
    EXPECT_DOUBLE_EQ(z.z, 1.0);
}

TEST(Vec3Test, NormAndNormalize) {
    const Vec3 v{3, 4, 0};
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
    EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(Vec3{}.normalized().norm(), 0.0);  // zero-safe
}

TEST(Vec3Test, AngleBetween) {
    EXPECT_NEAR(angle_between({1, 0, 0}, {0, 1, 0}), M_PI / 2.0, 1e-12);
    EXPECT_NEAR(angle_between({1, 0, 0}, {1, 0, 0}), 0.0, 1e-6);
    EXPECT_NEAR(angle_between({1, 0, 0}, {-1, 0, 0}), M_PI, 1e-6);
}

TEST(Vec3Test, Lerp) {
    const Vec3 p = lerp({0, 0, 0}, {10, 20, -10}, 0.25);
    EXPECT_DOUBLE_EQ(p.x, 2.5);
    EXPECT_DOUBLE_EQ(p.y, 5.0);
    EXPECT_DOUBLE_EQ(p.z, -2.5);
}

// -------------------------------------------------------------- Ellipsoid

TEST(EllipsoidTest, ResidualSignConvention) {
    const Ellipsoid e({-1, 0, 0}, {1, 0, 0}, 4.0);
    EXPECT_NEAR(e.residual({0, std::sqrt(3.0), 0}), 0.0, 1e-12);  // on surface (b=sqrt(3))
    EXPECT_LT(e.residual({0, 0, 0}), 0.0);                        // inside
    EXPECT_GT(e.residual({0, 5, 0}), 0.0);                        // outside
}

TEST(EllipsoidTest, RejectsDegenerateAxis) {
    EXPECT_THROW(Ellipsoid({0, 0, 0}, {2, 0, 0}, 1.0), std::invalid_argument);
}

TEST(EllipsoidTest, GradientMatchesNumericDerivative) {
    const Ellipsoid e({-0.5, 0.2, 0}, {1, 0, -0.3}, 6.0);
    const Vec3 p{1.0, 2.0, 0.5};
    const Vec3 g = e.gradient(p);
    const double h = 1e-7;
    const double gx = (e.residual(p + Vec3{h, 0, 0}) - e.residual(p - Vec3{h, 0, 0})) / (2 * h);
    const double gy = (e.residual(p + Vec3{0, h, 0}) - e.residual(p - Vec3{0, h, 0})) / (2 * h);
    const double gz = (e.residual(p + Vec3{0, 0, h}) - e.residual(p - Vec3{0, 0, h})) / (2 * h);
    EXPECT_NEAR(g.x, gx, 1e-6);
    EXPECT_NEAR(g.y, gy, 1e-6);
    EXPECT_NEAR(g.z, gz, 1e-6);
}

TEST(EllipsoidTest, SemiMinorAxisShrinksWithFocalDistance) {
    // Paper Section 9.3: at fixed round-trip distance, moving the foci apart
    // "squashes" the ellipsoid. Verify monotonicity.
    double prev = 1e9;
    for (double sep : {0.25, 0.5, 1.0, 1.5}) {
        const Ellipsoid e({-sep, 0, 0}, {sep, 0, 0}, 8.0);
        EXPECT_LT(e.semi_minor_axis(), prev);
        prev = e.semi_minor_axis();
    }
}

// ------------------------------------------------------------------- Beam

TEST(BeamTest, ContainsAndRejects) {
    const BeamCone beam({0, 0, 0}, {0, 1, 0}, M_PI / 3.0);
    EXPECT_TRUE(beam.contains({0, 5, 0}));
    EXPECT_TRUE(beam.contains({1, 3, 0.5}));
    EXPECT_FALSE(beam.contains({0, -5, 0}));   // behind
    EXPECT_FALSE(beam.contains({10, 1, 0}));   // outside half-angle
}

TEST(BeamTest, OffAxisAngle) {
    const BeamCone beam({0, 0, 0}, {0, 1, 0}, M_PI / 4.0);
    EXPECT_NEAR(beam.off_axis_angle({0, 3, 0}), 0.0, 1e-9);
    EXPECT_NEAR(beam.off_axis_angle({3, 3, 0}), M_PI / 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(beam.off_axis_angle({0, -1, 0}), M_PI);
}

// ----------------------------------------------------------- ArrayGeometry

TEST(ArrayGeometryTest, TArrayLayout) {
    const auto g = make_t_array({0, 0, 1.3}, 1.0);
    ASSERT_EQ(g.num_rx(), 3u);
    EXPECT_DOUBLE_EQ(g.rx[0].x, -1.0);
    EXPECT_DOUBLE_EQ(g.rx[1].x, 1.0);
    EXPECT_DOUBLE_EQ(g.rx[2].z, 0.3);  // 1 m below Tx
    EXPECT_NO_THROW(g.validate());
    EXPECT_THROW(make_t_array({0, 0, 0}, -1.0), std::invalid_argument);
}

TEST(ArrayGeometryTest, CrossArrayAddsFourthAntenna) {
    const auto g = make_cross_array({0, 0, 1.0}, 0.5);
    ASSERT_EQ(g.num_rx(), 4u);
    EXPECT_DOUBLE_EQ(g.rx[3].z, 1.5);
}

TEST(ArrayGeometryTest, ValidateRequiresThreeRx) {
    ArrayGeometry g;
    g.tx = {0, 0, 0};
    g.rx = {{1, 0, 0}, {-1, 0, 0}};
    EXPECT_THROW(g.validate(), std::invalid_argument);
}

// ----------------------------------------------------------------- Solver

TEST(SolverTest, ExactRecoveryClosedForm) {
    const auto g = make_t_array({0, 0, 1.5}, 1.0);
    const EllipsoidSolver solver(g);
    EXPECT_TRUE(solver.planar());
    const Vec3 truth{1.2, 4.0, 1.1};
    const auto result = solver.solve_closed_form(round_trips_for(g, truth));
    ASSERT_TRUE(result.valid);
    EXPECT_NEAR(result.position.x, truth.x, 1e-9);
    EXPECT_NEAR(result.position.y, truth.y, 1e-9);
    EXPECT_NEAR(result.position.z, truth.z, 1e-9);
    EXPECT_LT(result.residual_rms, 1e-9);
}

TEST(SolverTest, GaussNewtonMatchesClosedForm) {
    const auto g = make_t_array({0.5, -0.2, 1.0}, 0.75);
    const EllipsoidSolver solver(g);
    const Vec3 truth{-0.8, 5.5, 0.4};
    const auto d = round_trips_for(g, truth);
    const auto cf = solver.solve_closed_form(d);
    const auto gn = solver.solve_gauss_newton(d, g.tx + Vec3{0, 3, 0});
    ASSERT_TRUE(cf.valid);
    ASSERT_TRUE(gn.valid);
    EXPECT_NEAR(cf.position.distance_to(gn.position), 0.0, 1e-6);
}

struct SolverGridCase {
    double x, y, z;
};

class SolverGrid : public ::testing::TestWithParam<SolverGridCase> {};

TEST_P(SolverGrid, RecoversPositionAcrossTheRoom) {
    const auto g = make_t_array({0, 0, 1.3}, 1.0);
    const EllipsoidSolver solver(g);
    const Vec3 truth{GetParam().x, GetParam().y, GetParam().z};
    const auto result = solver.solve(round_trips_for(g, truth));
    ASSERT_TRUE(result.valid);
    EXPECT_NEAR(result.position.distance_to(truth), 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    RoomSweep, SolverGrid,
    ::testing::Values(SolverGridCase{0, 3, 1.0}, SolverGridCase{-2, 3, 1.0},
                      SolverGridCase{2, 3, 1.0}, SolverGridCase{0, 6, 1.0},
                      SolverGridCase{-2.5, 8, 0.5}, SolverGridCase{2.5, 8, 2.0},
                      SolverGridCase{1, 10, 1.5}, SolverGridCase{-1, 4, 0.2},
                      SolverGridCase{0.3, 5, 2.2}, SolverGridCase{-3, 9, 1.2}),
    [](const ::testing::TestParamInfo<SolverGridCase>& info) {
        return "Case" + std::to_string(info.index);
    });

TEST(SolverTest, OverConstrainedFourAntennaArray) {
    const auto g = make_cross_array({0, 0, 1.3}, 1.0);
    const EllipsoidSolver solver(g);
    const Vec3 truth{1.0, 5.0, 0.8};
    const auto result = solver.solve(round_trips_for(g, truth));
    ASSERT_TRUE(result.valid);
    EXPECT_NEAR(result.position.distance_to(truth), 0.0, 1e-6);
}

TEST(SolverTest, FourthAntennaImprovesNoiseRobustness) {
    const auto g3 = make_t_array({0, 0, 1.3}, 1.0);
    const auto g4 = make_cross_array({0, 0, 1.3}, 1.0);
    const EllipsoidSolver s3(g3), s4(g4);
    const Vec3 truth{0.7, 5.0, 1.1};
    Rng rng(77);
    double err3 = 0.0, err4 = 0.0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
        auto d3 = round_trips_for(g3, truth);
        auto d4 = round_trips_for(g4, truth);
        for (auto& d : d3) d += rng.gaussian(0.03);
        for (auto& d : d4) d += rng.gaussian(0.03);
        const auto r3 = s3.solve(d3);
        const auto r4 = s4.solve(d4);
        if (r3.valid) err3 += r3.position.distance_to(truth);
        if (r4.valid) err4 += r4.position.distance_to(truth);
    }
    EXPECT_LT(err4, err3);  // extra constraint helps (paper Section 5)
}

TEST(SolverTest, ErrorGrowsWithRange) {
    // Paper Section 9.2: for fixed antenna separation, the same TOF noise
    // produces larger position error at larger range.
    const auto g = make_t_array({0, 0, 1.3}, 1.0);
    const EllipsoidSolver solver(g);
    Rng rng(123);
    double near_err = 0.0, far_err = 0.0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
        for (double range : {3.0, 9.0}) {
            const Vec3 truth{0.5, range, 1.0};
            auto d = round_trips_for(g, truth);
            for (auto& v : d) v += rng.gaussian(0.02);
            const auto r = solver.solve(d);
            if (!r.valid) continue;
            (range < 5.0 ? near_err : far_err) += r.position.distance_to(truth);
        }
    }
    EXPECT_LT(near_err, far_err);
}

TEST(SolverTest, ErrorShrinksWithSeparation) {
    // Paper Section 9.3: larger antenna separation squashes the ellipsoids
    // and reduces the error for the same TOF noise.
    Rng rng(321);
    const Vec3 truth{0.5, 5.0, 1.0};
    double err_small = 0.0, err_large = 0.0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
        for (double sep : {0.25, 2.0}) {
            const auto g = make_t_array({0, 0, 1.3}, sep);
            const EllipsoidSolver solver(g);
            auto d = round_trips_for(g, truth);
            for (auto& v : d) v += rng.gaussian(0.02);
            const auto r = solver.solve(d);
            if (!r.valid) continue;
            (sep < 1.0 ? err_small : err_large) += r.position.distance_to(truth);
        }
    }
    EXPECT_LT(err_large, err_small);
}

TEST(SolverTest, XErrorExceedsYError) {
    // Paper Section 9.1: antennas lie along x, so the ellipses have their
    // major radius along x and the same TOF error projects larger onto x.
    const auto g = make_t_array({0, 0, 1.3}, 1.0);
    const EllipsoidSolver solver(g);
    Rng rng(55);
    std::vector<double> ex, ey;
    for (int t = 0; t < 2000; ++t) {
        const Vec3 truth{rng.uniform(-2, 2), rng.uniform(3, 8), rng.uniform(0.5, 1.8)};
        auto d = round_trips_for(g, truth);
        for (auto& v : d) v += rng.gaussian(0.02);
        const auto r = solver.solve(d);
        if (!r.valid) continue;
        ex.push_back(std::abs(r.position.x - truth.x));
        ey.push_back(std::abs(r.position.y - truth.y));
    }
    double mx = 0, my = 0;
    for (double v : ex) mx += v;
    for (double v : ey) my += v;
    EXPECT_GT(mx / ex.size(), my / ey.size());
}

TEST(SolverTest, RejectsImpossibleMeasurements) {
    const auto g = make_t_array({0, 0, 1.3}, 1.0);
    const EllipsoidSolver solver(g);
    // Round trip shorter than the Tx-Rx separation is geometrically
    // impossible.
    const auto result = solver.solve_closed_form({0.5, 0.5, 0.5});
    EXPECT_FALSE(result.valid);
}

TEST(SolverTest, MeasurementCountMismatchThrows) {
    const auto g = make_t_array({0, 0, 1.3}, 1.0);
    const EllipsoidSolver solver(g);
    EXPECT_THROW(solver.solve_closed_form({4.0, 4.0}), std::invalid_argument);
    EXPECT_THROW(solver.solve_gauss_newton({4.0, 4.0}, {0, 1, 0}),
                 std::invalid_argument);
}

TEST(SolverTest, ClampsWhenNoiseBreaksConsistency) {
    // Target nearly in the antenna plane: noise can push y^2 negative; the
    // solver should clamp rather than fail.
    const auto g = make_t_array({0, 0, 1.3}, 1.0);
    const EllipsoidSolver solver(g);
    const Vec3 truth{1.0, 0.05, 1.3};
    auto d = round_trips_for(g, truth);
    d[0] += 0.05;  // inconsistent perturbation
    const auto result = solver.solve_closed_form(d);
    ASSERT_TRUE(result.valid);
    EXPECT_GE(result.position.y, 0.0);
}

TEST(SolverTest, CollocatedAntennasRejectedAtConstruction) {
    ArrayGeometry g;
    g.tx = {0, 0, 0};
    g.rx = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
    EXPECT_THROW(EllipsoidSolver{g}, std::invalid_argument);
}

TEST(SolverTest, CollinearAntennasRejectedAtConstruction) {
    ArrayGeometry g;
    g.tx = {0, 0, 0};
    g.rx = {{-1, 0, 0}, {1, 0, 0}, {2, 0, 0}};
    EXPECT_THROW(EllipsoidSolver{g}, std::invalid_argument);
}

}  // namespace
}  // namespace witrack::geom
