// Hardware front-end tests: VCO tuning, PLL sweep linearization, dechirp
// mixer tone placement, ADC quantization, and the assembled front end
// (including static-path caching and background-subtraction realism).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/constants.hpp"
#include "common/random.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan_cache.hpp"
#include "hw/adc.hpp"
#include "hw/frontend.hpp"
#include "hw/mixer.hpp"
#include "hw/pll.hpp"
#include "hw/vco.hpp"
#include "rf/channel.hpp"

namespace witrack::hw {
namespace {

using geom::Vec3;
using rf::BodyScatterer;

/// r2c half spectrum (N/2 + 1 bins) of a real sweep through a shared
/// cached RealFft plan -- every bin these tests inspect is below Nyquist.
std::vector<dsp::cplx> half_spectrum(const std::vector<double>& x) {
    const auto plan = dsp::FftPlanCache::global().real_plan(x.size());
    dsp::FftScratch scratch;
    std::vector<dsp::cplx> out;
    plan->forward(x, out, scratch);
    return out;
}

// -------------------------------------------------------------------- VCO

TEST(VcoTest, FrequencyMonotoneInVoltage) {
    Vco vco;
    double prev = 0.0;
    for (double v = 0.0; v <= 8.0; v += 0.5) {
        const double f = vco.frequency(v);
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST(VcoTest, ExactVoltageInvertsTuningCurve) {
    Vco vco;
    for (double f : {5.6e9, 6.2e9, 7.0e9}) {
        const double v = vco.exact_voltage(f);
        EXPECT_NEAR(vco.frequency(v), f, 1.0);
    }
}

TEST(VcoTest, OpenLoopVoltageIgnoresCurvature) {
    // With curvature, the naive linear inversion lands off-frequency.
    Vco vco;
    const double f_target = 7.0e9;
    const double v = vco.open_loop_voltage(f_target);
    EXPECT_GT(std::abs(vco.frequency(v) - f_target), 1e6);
}

TEST(VcoTest, RejectsNonPositiveGain) {
    Vco::Tuning bad;
    bad.gain_hz_per_v = 0.0;
    EXPECT_THROW(Vco{bad}, std::invalid_argument);
}

// -------------------------------------------------------------------- PLL

TEST(PllTest, ClosedLoopBeatsOpenLoop) {
    // The feedback linearizer (paper Fig. 7) must reduce the sweep error by
    // orders of magnitude versus the naive voltage ramp.
    Vco vco;
    FmcwParams fmcw;
    SweepLinearizer::Config open_config;
    open_config.closed_loop = false;
    const auto open = SweepLinearizer(open_config).simulate_sweep(vco, fmcw);
    const auto closed = SweepLinearizer().simulate_sweep(vco, fmcw);
    EXPECT_GT(open.rms_error_hz, 1e6);            // megahertz-scale nonlinearity
    EXPECT_LT(closed.rms_error_hz, open.rms_error_hz / 20.0);
}

TEST(PllTest, RippleFitCapturesResidual) {
    Vco vco;
    FmcwParams fmcw;
    const auto result = SweepLinearizer().simulate_sweep(vco, fmcw);
    const auto ripple = result.fit_ripple(fmcw.sweep_duration_s);
    EXPECT_GT(ripple.ripple_frequency_hz, 0.0);
    EXPECT_LT(ripple.ripple_amplitude_hz, result.max_abs_error_hz + 1.0);
}

TEST(PllTest, ErrorSequenceLengthMatchesConfig) {
    Vco vco;
    FmcwParams fmcw;
    SweepLinearizer::Config config;
    config.control_steps = 125;
    const auto result = SweepLinearizer(config).simulate_sweep(vco, fmcw);
    EXPECT_EQ(result.frequency_error_hz.size(), 125u);
}

// ------------------------------------------------------------------ mixer

TEST(MixerTest, ToneLandsAtBeatFrequencyBin) {
    FmcwParams fmcw;
    DechirpMixer mixer(fmcw);
    rf::PropagationPath path;
    path.round_trip_m = 10.0;
    path.amplitude = 1.0;
    const auto sweep = mixer.synthesize({&path, 1});
    const auto spectrum = half_spectrum(sweep);

    const double beat = fmcw.slope() * (10.0 / kSpeedOfLight);
    const auto expected_bin = static_cast<std::size_t>(
        beat / fmcw.sample_rate_hz * static_cast<double>(sweep.size()) + 0.5);
    std::size_t best = 0;
    for (std::size_t k = 1; k < sweep.size() / 2; ++k)
        if (std::abs(spectrum[k]) > std::abs(spectrum[best])) best = k;
    EXPECT_NEAR(static_cast<double>(best), static_cast<double>(expected_bin), 1.0);
}

TEST(MixerTest, AmplitudePreserved) {
    FmcwParams fmcw;
    DechirpMixer mixer(fmcw);
    rf::PropagationPath path;
    // Bin-aligned tone (no scalloping loss with the rectangular window).
    path.round_trip_m = 68.0 * fmcw.round_trip_bin_m();
    path.amplitude = 0.5;
    const auto sweep = mixer.synthesize({&path, 1});
    const auto spectrum = half_spectrum(sweep);
    double peak = 0.0;
    for (std::size_t k = 1; k < sweep.size() / 2; ++k)
        peak = std::max(peak, std::abs(spectrum[k]));
    // A real tone of amplitude A concentrates N*A/2 in its positive bin.
    EXPECT_NEAR(peak, 0.5 * static_cast<double>(sweep.size()) / 2.0,
                0.02 * peak);
}

TEST(MixerTest, PathsSuperpose) {
    FmcwParams fmcw;
    DechirpMixer mixer(fmcw);
    rf::PropagationPath p1, p2;
    p1.round_trip_m = 6.0;
    p1.amplitude = 1.0;
    p2.round_trip_m = 14.0;
    p2.amplitude = 0.3;
    const std::vector<rf::PropagationPath> both{p1, p2};
    const auto sum = mixer.synthesize(both);
    const auto a = mixer.synthesize({&p1, 1});
    const auto b = mixer.synthesize({&p2, 1});
    for (std::size_t i = 0; i < sum.size(); i += 97)
        EXPECT_NEAR(sum[i], a[i] + b[i], 1e-9);
}

TEST(MixerTest, NonlinearityRaisesSidelobes) {
    FmcwParams fmcw;
    SweepNonlinearity ripple{4e5, 4000.0, 0.3};  // sidelobes at +-10 bins
    DechirpMixer clean(fmcw), dirty(fmcw, ripple);
    rf::PropagationPath path;
    // Bin-aligned so the clean spectrum has no scalloping sidelobes.
    path.round_trip_m = 100.0 * fmcw.round_trip_bin_m();
    path.amplitude = 1.0;
    auto energy_off_peak = [&](const std::vector<double>& sweep) {
        const auto spec = half_spectrum(sweep);
        std::size_t best = 0;
        for (std::size_t k = 1; k < sweep.size() / 2; ++k)
            if (std::abs(spec[k]) > std::abs(spec[best])) best = k;
        double acc = 0.0;
        for (std::size_t k = 1; k < sweep.size() / 2; ++k)
            if (k + 4 < best || k > best + 4) acc += std::norm(spec[k]);
        return acc;
    };
    EXPECT_GT(energy_off_peak(dirty.synthesize({&path, 1})),
              2.0 * energy_off_peak(clean.synthesize({&path, 1})));
}

TEST(MixerTest, RejectsWrongBufferSize) {
    FmcwParams fmcw;
    DechirpMixer mixer(fmcw);
    std::vector<double> bad(100);
    rf::PropagationPath path;
    EXPECT_THROW(mixer.synthesize({&path, 1}, bad), std::invalid_argument);
}

// -------------------------------------------------------------------- ADC

TEST(AdcTest, QuantizationStepMatchesBits) {
    Adc adc(8);
    adc.calibrate({1.0, -0.5, 0.25}, 2.0);  // full scale 2.0
    EXPECT_NEAR(adc.lsb(), 2.0 / 128.0, 1e-12);
}

TEST(AdcTest, QuantizesToLsbGrid) {
    Adc adc(8);
    adc.calibrate({1.0}, 1.0);
    std::vector<double> v{0.013, -0.27, 0.5};
    adc.process(v);
    for (double x : v)
        EXPECT_NEAR(std::remainder(x, adc.lsb()), 0.0, 1e-12);
}

TEST(AdcTest, ClipsAtFullScale) {
    Adc adc(12);
    adc.calibrate({1.0}, 1.0);
    std::vector<double> v{5.0, -7.0};
    adc.process(v);
    EXPECT_NEAR(v[0], 1.0, 1e-9);
    EXPECT_NEAR(v[1], -1.0, 1e-9);
}

TEST(AdcTest, ZeroBitsDisables) {
    Adc adc(0);
    adc.calibrate({1.0});
    std::vector<double> v{0.1234567};
    adc.process(v);
    EXPECT_DOUBLE_EQ(v[0], 0.1234567);
    EXPECT_DOUBLE_EQ(adc.lsb(), 0.0);
}

TEST(AdcTest, RejectsAbsurdBitDepths) {
    EXPECT_THROW(Adc(-1), std::invalid_argument);
    EXPECT_THROW(Adc(32), std::invalid_argument);
}

// --------------------------------------------------------------- frontend

rf::Channel simple_channel(rf::Scene scene = {}) {
    rf::ChannelConfig config;
    rf::Antenna tx{{0, 0, 1.3}, {0, 1, 0}, {}};
    std::vector<rf::Antenna> rx = {
        rf::Antenna{{-1, 0, 1.3}, {0, 1, 0}, {}},
        rf::Antenna{{1, 0, 1.3}, {0, 1, 0}, {}},
        rf::Antenna{{0, 0, 0.3}, {0, 1, 0}, {}},
    };
    return rf::Channel(config, tx, rx, std::move(scene));
}

/// Capture one sweep through the FrameBuffer path and unpack it into one
/// sample vector per receive antenna for inspection.
std::vector<std::vector<double>> capture_sweep(
    FmcwFrontend& frontend, std::span<const BodyScatterer> body = {}) {
    FrameBuffer frame(frontend.num_rx(), 1, frontend.params().samples_per_sweep());
    frontend.capture_sweep_into(frame, 0, body);
    std::vector<std::vector<double>> sweeps;
    sweeps.reserve(frame.num_rx());
    for (std::size_t rx = 0; rx < frame.num_rx(); ++rx) {
        const auto row = frame.sweep(rx, 0);
        sweeps.emplace_back(row.begin(), row.end());
    }
    return sweeps;
}

TEST(FrontendTest, CapturesOneSweepPerAntenna) {
    FrontendConfig config;
    FmcwFrontend frontend(config, simple_channel(), Rng(1));
    const auto sweeps = capture_sweep(frontend, {});
    ASSERT_EQ(sweeps.size(), 3u);
    for (const auto& s : sweeps)
        EXPECT_EQ(s.size(), config.fmcw.samples_per_sweep());
}

TEST(FrontendTest, BodyEchoAppearsAtCorrectBin) {
    FrontendConfig config;
    config.noise.system_noise_figure_db = 5.0;  // quiet for a clean check
    config.adc_bits = 0;
    FmcwFrontend frontend(config, simple_channel(), Rng(2));
    const BodyScatterer s{{0.0, 5.0, 1.3}, 0.8, 0.0};
    const auto sweeps = capture_sweep(frontend, {&s, 1});

    // Subtract the static-only capture to isolate the body echo.
    FmcwFrontend reference(config, simple_channel(), Rng(2));
    const auto statics = capture_sweep(reference, {});
    std::vector<double> diff(sweeps[0].size());
    for (std::size_t i = 0; i < diff.size(); ++i)
        diff[i] = sweeps[0][i] - statics[0][i];

    const auto spec = half_spectrum(diff);
    std::size_t best = 1;
    for (std::size_t k = 2; k < diff.size() / 2; ++k)
        if (std::abs(spec[k]) > std::abs(spec[best])) best = k;

    const double expected_rt = Vec3{0, 5, 1.3}.distance_to({0, 0, 1.3}) +
                               Vec3{0, 5, 1.3}.distance_to({-1, 0, 1.3});
    const double measured_rt =
        static_cast<double>(best) * config.fmcw.round_trip_bin_m();
    EXPECT_NEAR(measured_rt, expected_rt, config.fmcw.round_trip_bin_m());
}

TEST(FrontendTest, HighPassSuppressesLeakageBeat) {
    // The Tx-Rx leakage sits at a very low beat frequency; the analog
    // high-pass must knock it well below its unfiltered level.
    FrontendConfig config;
    config.noise.system_noise_figure_db = 5.0;
    config.adc_bits = 0;
    config.static_gain_jitter = 0.0;
    config.highpass_cutoff_hz = 8000.0;  // leakage beat sits at ~2.3 kHz

    FmcwFrontend filtered(config, simple_channel(), Rng(3));
    const auto out = capture_sweep(filtered, {});
    const auto spec = half_spectrum(out[0]);

    // Leakage round trip = 1 m -> beat = slope/c ~ 2.3 kHz -> bin ~ 5.6.
    const auto leak_bin = static_cast<std::size_t>(
        1.0 / config.fmcw.round_trip_bin_m() + 0.5);
    const double leak_power = std::abs(spec[std::max<std::size_t>(leak_bin, 1)]);

    // Compare against the raw mixer output of the same leakage path.
    DechirpMixer mixer(config.fmcw);
    rf::PropagationPath leak;
    leak.round_trip_m = 1.0;
    leak.amplitude = std::sqrt(config.fmcw.tx_power_w * from_db(-50.0));
    const auto raw = mixer.synthesize({&leak, 1});
    const auto raw_spec = half_spectrum(raw);
    const double raw_power = std::abs(raw_spec[std::max<std::size_t>(leak_bin, 1)]);

    EXPECT_LT(leak_power, raw_power * 0.5);
}

TEST(FrontendTest, StaticSceneCancelsUnderFrameDifferencing) {
    // Two consecutive captures of a static scene must differ only by noise
    // and jitter -- orders of magnitude below the static signal itself.
    rf::Scene scene;
    scene.clutter.push_back({{1.0, 4.0, 1.0}, 2.0});
    FrontendConfig config;
    config.noise.system_noise_figure_db = 5.0;  // isolate the jitter residue
    config.static_gain_jitter = 1e-3;
    FmcwFrontend frontend(config, simple_channel(scene), Rng(4));
    (void)capture_sweep(frontend, {});  // settle the stateful high-pass filter
    const auto a = capture_sweep(frontend, {});
    const auto b = capture_sweep(frontend, {});
    double signal = 0.0, residue = 0.0;
    for (std::size_t i = 0; i < a[0].size(); ++i) {
        signal += a[0][i] * a[0][i];
        const double d = a[0][i] - b[0][i];
        residue += d * d;
    }
    EXPECT_LT(residue, signal * 1e-3);
}

TEST(FrontendTest, DeterministicForSameSeed) {
    FrontendConfig config;
    FmcwFrontend f1(config, simple_channel(), Rng(9));
    FmcwFrontend f2(config, simple_channel(), Rng(9));
    const BodyScatterer s{{0.3, 4.0, 1.0}, 0.8, 0.1};
    const auto a = capture_sweep(f1, {&s, 1});
    const auto b = capture_sweep(f2, {&s, 1});
    for (std::size_t i = 0; i < a[0].size(); i += 131)
        EXPECT_DOUBLE_EQ(a[0][i], b[0][i]);
}

}  // namespace
}  // namespace witrack::hw
