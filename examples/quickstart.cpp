// Quickstart: track a person walking behind a wall and print the 3D track.
//
// This is the minimal end-to-end use of the library's streaming Engine:
//   1. describe the deployment once with EngineConfig,
//   2. pick a FrameSource (here the simulator; swap in ReplaySource or
//      LiveSource without touching anything below),
//   3. subscribe to TrackUpdateEvents and run.
//
// Build & run:  ./build/example_quickstart
#include <cstdio>
#include <memory>

#include "engine/engine.hpp"
#include "engine/sim_source.hpp"

using namespace witrack;

int main() {
    // --- 1. Deployment: device behind the wall, person walking inside. ---
    engine::EngineConfig config;
    config.with_through_wall(true).with_seed(2024);

    // --- 2. Source: simulate a 10 s random walk through the lab. ---
    const auto env = sim::make_through_wall_lab();
    auto source = std::make_unique<engine::SimSource>(
        config, std::make_unique<sim::RandomWaypointWalk>(env.bounds, 10.0,
                                                          Rng(2024)));

    // --- 3. Engine: subscribe to track updates and stream. ---
    // The Engine owns its source (the preferred constructor -- no lifetime
    // fine print), and the scheduler is demand-driven: subscribing to
    // TrackUpdateEvent is what makes it run the full TOF -> localize ->
    // smooth chain (stages and subscribers that only need TOF would skip
    // the rest).
    engine::Engine eng(config, std::move(source));

    std::printf("time     estimate (x, y, z)         truth (x, y, z)        err\n");
    std::printf("----------------------------------------------------------------\n");
    int frame_index = 0;
    eng.bus().subscribe<engine::TrackUpdateEvent>(
        [&](const engine::TrackUpdateEvent& event) {
            // truth is absent on live (hardware) sources; guard so the
            // subscriber survives a source swap unchanged.
            if (!event.smoothed || !event.truth || ++frame_index % 40 != 0) return;
            const auto& p = event.smoothed->position;
            const auto& t = event.truth->position;
            std::printf("%5.1f s  (%5.2f, %5.2f, %5.2f) m   (%5.2f, %5.2f, %5.2f) m  %4.0f cm\n",
                        event.time_s, p.x, p.y, p.z, t.x, t.y, t.z,
                        p.distance_to(t) * 100.0);
        });
    eng.run();

    std::printf("\nProcessed %zu frames (pipeline steps: %s); mean pipeline "
                "latency %.1f ms (paper budget: < 75 ms)\n",
                eng.frames_processed(),
                core::to_string(eng.demanded_outputs()).c_str(),
                eng.tracker().mean_latency_s() * 1e3);
    return 0;
}
