// Quickstart: track a person walking behind a wall and print the 3D track.
//
// This is the minimal end-to-end use of the library:
//   1. describe the deployment (through-wall room, T antenna array),
//   2. stream baseband frames (here from the simulator; on real hardware,
//      from the FMCW front end),
//   3. feed them to WiTrackTracker and consume 3D positions.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/tracker.hpp"
#include "sim/scenario.hpp"

using namespace witrack;

int main() {
    // --- 1. Deployment: device behind the wall, person walking inside. ---
    sim::ScenarioConfig config;
    config.through_wall = true;
    config.seed = 2024;

    const auto env = sim::make_through_wall_lab();
    Rng rng(2024);
    auto walk = std::make_unique<sim::RandomWaypointWalk>(env.bounds, 10.0, rng);
    sim::Scenario scenario(config, std::move(walk));

    // --- 2. Pipeline configured from the same FMCW parameters. ---
    core::PipelineConfig pipeline;
    pipeline.fmcw = config.fmcw;
    core::WiTrackTracker tracker(pipeline, scenario.array());

    // --- 3. Stream frames and print the live track twice a second. ---
    std::printf("time     estimate (x, y, z)         truth (x, y, z)        err\n");
    std::printf("----------------------------------------------------------------\n");
    sim::Scenario::Frame frame;
    int frame_index = 0;
    while (scenario.next(frame)) {
        const auto result = tracker.process_frame(frame.sweeps, frame.time_s);
        if (result.smoothed && ++frame_index % 40 == 0) {
            const auto& p = result.smoothed->position;
            const auto& t = frame.pose.center;
            std::printf("%5.1f s  (%5.2f, %5.2f, %5.2f) m   (%5.2f, %5.2f, %5.2f) m  %4.0f cm\n",
                        frame.time_s, p.x, p.y, p.z, t.x, t.y, t.z,
                        p.distance_to(t) * 100.0);
        }
    }

    std::printf("\nProcessed %zu frames; mean pipeline latency %.1f ms "
                "(paper budget: < 75 ms)\n",
                tracker.frames_processed(), tracker.mean_latency_s() * 1e3);
    return 0;
}
