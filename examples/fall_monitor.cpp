// Elderly fall monitoring (paper Sections 1 and 6.2): stream activities
// through the engine's fall-monitor plugin and raise an alert the moment a
// fall is detected, while sitting down (chair or floor) stays quiet.
//
// Build & run:  ./build/example_fall_monitor
#include <cstdio>
#include <memory>

#include "engine/engine.hpp"
#include "engine/plugins.hpp"
#include "engine/sim_source.hpp"

using namespace witrack;

namespace {

void run_episode(const char* label, sim::ActivityKind kind, std::uint64_t seed) {
    const auto env = sim::make_through_wall_lab();
    engine::EngineConfig config;
    config.with_through_wall(true).with_seed(seed);

    // Owning-source constructor: the episode is one self-contained object.
    engine::Engine eng(config, std::make_unique<engine::SimSource>(
                                   config, std::make_unique<sim::ActivityScript>(
                                               kind, env.bounds, Rng(seed), 24.0)));
    const auto& stage = eng.emplace_stage<engine::FallMonitorStage>();
    eng.bus().subscribe<engine::FallEvent>([](const engine::FallEvent& event) {
        std::printf("  >>> FALL ALERT at %.1f s: dropped %.0f%% of standing "
                    "elevation in %.2f s, now at %.2f m\n",
                    event.time_s, event.analysis.drop_fraction * 100.0,
                    event.analysis.drop_duration_s,
                    event.analysis.final_elevation_m);
    });

    std::printf("%s (pipeline steps: %s)\n", label,
                core::to_string(eng.demanded_outputs()).c_str());
    eng.run();
    std::printf("  episode done: %zu alert(s)\n\n",
                stage.monitor().total_alerts());
}

}  // namespace

int main() {
    // The fall monitor reads the *raw* track (falls live in the transient
    // that smoothing blurs), so the demand-driven scheduler runs TOF +
    // localization and skips the position Kalman for every episode.
    std::printf("WiTrack fall monitor -- streaming detection demo\n"
                "(only the last episode should raise an alert)\n\n");
    run_episode("Episode 1: walking around the room", sim::ActivityKind::kWalk, 41);
    run_episode("Episode 2: sitting down on a chair", sim::ActivityKind::kSitChair, 42);
    run_episode("Episode 3: sitting down on the floor", sim::ActivityKind::kSitFloor, 43);
    run_episode("Episode 4: a (simulated) fall", sim::ActivityKind::kFall, 45);
    return 0;
}
