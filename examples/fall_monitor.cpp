// Elderly fall monitoring (paper Sections 1 and 6.2): stream activities
// through the tracker and raise an alert the moment a fall is detected,
// while sitting down (chair or floor) stays quiet.
//
// Build & run:  ./build/examples/fall_monitor
#include <cstdio>
#include <memory>

#include "apps/fall_monitor.hpp"
#include "core/tracker.hpp"
#include "sim/scenario.hpp"

using namespace witrack;

namespace {

void run_episode(const char* label, sim::ActivityKind kind, std::uint64_t seed) {
    const auto env = sim::make_through_wall_lab();
    sim::ScenarioConfig config;
    config.through_wall = true;
    config.seed = seed;
    auto script =
        std::make_unique<sim::ActivityScript>(kind, env.bounds, Rng(seed), 24.0);
    sim::Scenario scenario(config, std::move(script));

    core::PipelineConfig pipeline;
    pipeline.fmcw = config.fmcw;
    core::WiTrackTracker tracker(pipeline, scenario.array());

    apps::FallMonitor monitor;
    monitor.on_fall([&](const core::FallDetector::Analysis& analysis) {
        std::printf("  >>> FALL ALERT: dropped %.0f%% of standing elevation in "
                    "%.2f s, now at %.2f m\n",
                    analysis.drop_fraction * 100.0, analysis.drop_duration_s,
                    analysis.final_elevation_m);
    });

    std::printf("%s\n", label);
    sim::Scenario::Frame frame;
    while (scenario.next(frame)) {
        const auto result = tracker.process_frame(frame.sweeps, frame.time_s);
        if (result.raw) monitor.push(*result.raw);
    }
    std::printf("  episode done: %zu alert(s)\n\n", monitor.alerts().size());
}

}  // namespace

int main() {
    std::printf("WiTrack fall monitor -- streaming detection demo\n"
                "(only the last episode should raise an alert)\n\n");
    run_episode("Episode 1: walking around the room", sim::ActivityKind::kWalk, 41);
    run_episode("Episode 2: sitting down on a chair", sim::ActivityKind::kSitChair, 42);
    run_episode("Episode 3: sitting down on the floor", sim::ActivityKind::kSitFloor, 47);
    run_episode("Episode 4: a (simulated) fall", sim::ActivityKind::kFall, 44);
    return 0;
}
