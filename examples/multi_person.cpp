// Multi-person tracking extension (paper Section 10): two people walk
// simultaneously; each antenna yields two TOFs, the candidate positions are
// disambiguated by trajectory continuity.
//
// Build & run:  ./build/examples/multi_person
#include <cstdio>
#include <memory>

#include "core/multi.hpp"
#include "core/tof.hpp"
#include "sim/scenario.hpp"

using namespace witrack;

int main() {
    sim::ScenarioConfig config;
    config.through_wall = true;
    config.second_person = true;
    config.seed = 77;

    auto person1 = std::make_unique<sim::LineWalkScript>(
        geom::Vec3{-2.0, 4.0, 0}, geom::Vec3{-0.5, 6.5, 0}, 12.0, 1.0);
    auto person2 = std::make_unique<sim::LineWalkScript>(
        geom::Vec3{2.0, 6.5, 0}, geom::Vec3{0.8, 4.0, 0}, 12.0, 1.0);
    sim::Scenario scenario(config, std::move(person1), std::move(person2));

    core::PipelineConfig pipeline;
    pipeline.fmcw = config.fmcw;
    pipeline.contour_peaks = 3;  // extract multiple echoes per antenna
    core::TofEstimator tof(pipeline, 3);
    core::MultiPersonTracker tracker(pipeline, scenario.array(), 2);

    std::printf("time    person A est      truth        person B est      truth\n");
    std::printf("----------------------------------------------------------------\n");
    sim::Scenario::Frame frame;
    int index = 0;
    while (scenario.next(frame)) {
        const auto tof_frame = tof.process_frame(frame.sweeps, frame.time_s);
        const auto people = tracker.process(tof_frame, frame.time_s);
        if (++index % 80 != 0 || people.size() < 2 || !frame.pose2) continue;
        std::printf("%4.1f s  (%5.2f, %5.2f)  (%5.2f, %5.2f)   (%5.2f, %5.2f)  (%5.2f, %5.2f)\n",
                    frame.time_s, people[0].position.x, people[0].position.y,
                    frame.pose.center.x, frame.pose.center.y,
                    people[1].position.x, people[1].position.y,
                    frame.pose2->center.x, frame.pose2->center.y);
    }
    std::printf("\nNote: with two movers, track identity can swap when the paths\n"
                "cross; the paper (Section 10) leaves full multi-person tracking\n"
                "to future work and so does this extension.\n");
    return 0;
}
