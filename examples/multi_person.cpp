// Multi-person tracking extension (paper Section 10): two people walk
// simultaneously; each antenna yields two TOFs, the candidate positions are
// disambiguated by trajectory continuity. The multi-person tracker runs as
// an engine plugin publishing PersonsEvents.
//
// Build & run:  ./build/example_multi_person
#include <cstdio>
#include <memory>

#include "engine/engine.hpp"
#include "engine/plugins.hpp"
#include "engine/sim_source.hpp"

using namespace witrack;

int main() {
    engine::EngineConfig config;
    config.with_through_wall(true)
        .with_second_person(true)
        .with_seed(77)
        .with_contour_peaks(3);  // extract multiple echoes per antenna

    auto person1 = std::make_unique<sim::LineWalkScript>(
        geom::Vec3{-2.0, 4.0, 0}, geom::Vec3{-0.5, 6.5, 0}, 12.0, 1.0);
    auto person2 = std::make_unique<sim::LineWalkScript>(
        geom::Vec3{2.0, 6.5, 0}, geom::Vec3{0.8, 4.0, 0}, 12.0, 1.0);

    engine::Engine eng(config, std::make_unique<engine::SimSource>(
                                   config, std::move(person1), std::move(person2)));
    eng.emplace_stage<engine::MultiPersonStage>(2);
    // MultiPersonStage declares required_inputs() = kTof: with no
    // TrackUpdateEvent subscriber the demand-driven scheduler never runs
    // the single-person localization or Kalman smoothing for this session.
    std::printf("pipeline steps scheduled: %s\n\n",
                core::to_string(eng.demanded_outputs()).c_str());

    std::printf("time    person A est      truth        person B est      truth\n");
    std::printf("----------------------------------------------------------------\n");
    int index = 0;
    eng.bus().subscribe<engine::PersonsEvent>([&](const engine::PersonsEvent& event) {
        if (++index % 80 != 0 || event.people.size() < 2) return;
        if (!event.truth || !event.truth->position2) return;
        const auto& a = event.people[0].position;
        const auto& b = event.people[1].position;
        const auto& t1 = event.truth->position;
        const auto& t2 = *event.truth->position2;
        std::printf("%4.1f s  (%5.2f, %5.2f)  (%5.2f, %5.2f)   (%5.2f, %5.2f)  (%5.2f, %5.2f)\n",
                    event.time_s, a.x, a.y, t1.x, t1.y, b.x, b.y, t2.x, t2.y);
    });
    eng.run();

    std::printf("\nLazy scheduler check: solver produced %zu raw positions "
                "(localization was %s; smoothing %s).\n",
                eng.tracker().raw_track().size(),
                eng.tracker().raw_track().empty() ? "skipped" : "run",
                eng.tracker().track().empty() ? "skipped" : "run");
    std::printf("\nNote: with two movers, track identity can swap when the paths\n"
                "cross; the paper (Section 10) leaves full multi-person tracking\n"
                "to future work and so does this extension.\n");
    return 0;
}
