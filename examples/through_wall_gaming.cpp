// Through-wall motion tracking for gaming / virtual reality (the paper's
// first application, Section 1): a user moves freely in the next room and
// the system renders a live top-down "minimap" of her position -- the
// primitive a Kinect-style system would consume beyond line of sight.
// The renderer is a pure TrackUpdateEvent subscriber.
//
// Build & run:  ./build/example_through_wall_gaming
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dsp/stats.hpp"
#include "engine/engine.hpp"
#include "engine/sim_source.hpp"

using namespace witrack;

namespace {

/// Render a coarse top-down map: device at the bottom, room above.
void render_map(const geom::Vec3& estimate, const geom::Vec3& truth) {
    constexpr int kWidth = 33, kHeight = 10;
    std::string grid(static_cast<std::size_t>(kWidth * kHeight), '.');
    auto plot = [&](const geom::Vec3& p, char marker) {
        const int col = static_cast<int>((p.x + 4.0) / 8.0 * (kWidth - 1) + 0.5);
        const int row = static_cast<int>((p.y - 2.0) / 7.0 * (kHeight - 1) + 0.5);
        if (col < 0 || col >= kWidth || row < 0 || row >= kHeight) return;
        grid[static_cast<std::size_t>(row * kWidth + col)] = marker;
    };
    plot(truth, 'o');
    plot(estimate, 'X');  // overwrites truth when they coincide
    for (int row = kHeight - 1; row >= 0; --row)
        std::printf("    |%s|\n", grid.substr(static_cast<std::size_t>(row * kWidth),
                                              kWidth).c_str());
    std::printf("    +%s+  X = estimate, o = truth\n",
                std::string(kWidth, '=').c_str());
    std::printf("    device (behind this wall)\n");
}

}  // namespace

int main() {
    engine::EngineConfig config;
    // A gaming renderer wants the lowest frame latency the host offers:
    // run the per-RX TOF chains on a 2-thread worker pool. The parallel
    // schedule is bit-identical to serial, so the minimap (and the error
    // statistics below) are unchanged -- only the wall clock moves.
    config.with_through_wall(true).with_seed(55).with_workers(2);
    const auto env = sim::make_through_wall_lab();
    engine::Engine eng(config, std::make_unique<engine::SimSource>(
                                   config, std::make_unique<sim::RandomWaypointWalk>(
                                               env.bounds, 12.0, Rng(55))));
    std::vector<double> errors;
    int index = 0;
    eng.bus().subscribe<engine::TrackUpdateEvent>(
        [&](const engine::TrackUpdateEvent& event) {
            if (!event.smoothed || !event.truth) return;
            const auto& est = event.smoothed->position;
            const auto& truth = event.truth->position;
            errors.push_back(est.distance_to(truth));
            if (++index % 240 == 0) {  // a map snapshot every 3 seconds
                std::printf("\n  t = %.1f s\n", event.time_s);
                render_map(est, truth);
            }
        });
    eng.run();

    std::printf("\nTracked %zu frames through the wall on %zu workers; "
                "median 3D error %.0f cm (paper: ~13/10/21 cm per axis)\n",
                errors.size(), eng.workers(), dsp::median(errors) * 100.0);
    return 0;
}
