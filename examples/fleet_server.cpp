// Fleet server demo: one process hosting many concurrent tracking sessions
// -- the production shape the ROADMAP asks for. An EngineHost multiplexes
// heterogeneous tenants (live-style sim homes and a replayed capture, each
// with its own demand mask) over one shared WorkerPool and one shared FFT
// plan cache, with admission control, fair round-robin scheduling and
// fleet-wide telemetry. Per-session output is bit-identical to running the
// same session standalone (tests/test_fleet.cpp proves it).
//
// Build & run:  ./build/example_fleet_server
#include <cstdio>
#include <memory>
#include <string>

#include "engine/engine.hpp"
#include "engine/host.hpp"
#include "engine/plugins.hpp"
#include "engine/replay.hpp"
#include "engine/sim_source.hpp"

using namespace witrack;

namespace {

engine::EngineConfig home_config(std::uint64_t seed) {
    engine::EngineConfig config;
    config.with_through_wall(true).with_fast_capture(true).with_seed(seed);
    return config;
}

std::unique_ptr<sim::MotionScript> walk(double seconds) {
    return std::make_unique<sim::LineWalkScript>(geom::Vec3{-1.5, 5, 0},
                                                 geom::Vec3{1.5, 5, 0}, seconds,
                                                 1.0);
}

void print_fleet(engine::EngineHost& host) {
    const auto stats = host.take_fleet_stats();
    std::printf("  fleet: %zu frames in %.2f s (%.0f frames/s), "
                "%zu active / %zu queued, lifetime %zu admitted / %zu "
                "finished / %zu evicted\n",
                stats.frames, stats.wall_s, stats.throughput_fps,
                stats.active_sessions, stats.queued_sessions,
                stats.sessions_admitted, stats.sessions_finished,
                stats.sessions_evicted);
    for (const auto& session : stats.sessions) {
        const std::string fault =
            session.fault.empty() ? "" : "  [" + session.fault + "]";
        std::printf("    #%llu %-14s %-9s %5zu frames  mean %6.2f ms  max "
                    "%6.2f ms%s\n",
                    static_cast<unsigned long long>(session.id),
                    session.name.c_str(), engine::to_string(session.state),
                    session.frames, session.mean_step_s() * 1e3,
                    session.max_step_s * 1e3, fault.c_str());
    }
}

}  // namespace

int main() {
    // A recorded capture to replay as one of the tenants (a debugging
    // session riding the same fleet as live homes).
    const std::string recording = "fleet_server_demo.wtrk";
    {
        auto config = home_config(640);
        engine::SimSource live(config, walk(3.0));
        engine::Recorder recorder(recording, live.fmcw(), live.array());
        engine::Frame frame;
        while (live.next(frame)) recorder.write(frame);
        recorder.close();
    }

    // The host: up to 3 concurrent sessions (the 4th queues), shared pool
    // sized by WITRACK_WORKERS (serial by default), shared FFT plans.
    engine::EngineHost host(engine::HostConfig{}
                                .with_max_sessions(3)
                                .with_queue_when_full(true)
                                .with_max_frame_lag(500));
    std::printf("WiTrack fleet server -- %zu worker(s), %zu-session cap\n\n",
                host.workers(), host.config().max_sessions);

    // Tenant 1: a home running full 3D tracking (TrackUpdate subscriber).
    const auto alpha = host.admit("home-alpha", home_config(611),
                                  std::make_unique<engine::SimSource>(
                                      home_config(611), walk(4.0)));
    std::size_t alpha_updates = 0;
    host.session(alpha)->bus().subscribe<engine::TrackUpdateEvent>(
        [&](const engine::TrackUpdateEvent&) { ++alpha_updates; });

    // Tenant 2: a home running fall monitoring only (TOF + raw positions;
    // the demand-driven scheduler skips the Kalman smoother there).
    const auto bravo = host.admit("home-bravo", home_config(622),
                                  std::make_unique<engine::SimSource>(
                                      home_config(622), walk(5.0)));
    host.session(bravo)->emplace_stage<engine::FallMonitorStage>();

    // Tenant 3: the recorded capture, replayed localize-only.
    auto replay_config = home_config(640);
    replay_config.with_outputs(core::PipelineOutputs::kRawPosition);
    const auto charlie =
        host.admit("replay-charlie", replay_config,
                   std::make_unique<engine::ReplaySource>(recording));

    // Tenant 4: arrives while the fleet is full -- queued, then promoted
    // the moment a slot frees.
    const auto delta = host.admit("home-delta", home_config(633),
                                  std::make_unique<engine::SimSource>(
                                      home_config(633), walk(2.0)));

    for (const auto id : {alpha, bravo, charlie, delta}) {
        const auto* session = host.session(id);
        std::printf("admitted #%llu: pipeline steps %-12s (%s)\n",
                    static_cast<unsigned long long>(session->session_id()),
                    core::to_string(session->demanded_outputs()).c_str(),
                    engine::to_string(host.state(id)));
    }

    // One FFT plan for the whole fleet: every session's range transform
    // shares the same immutable tables.
    const auto* plan_a =
        host.session(alpha)->tracker().tof_estimator().processors().lane(0).plan();
    const auto* plan_c = host.session(charlie)
                             ->tracker()
                             .tof_estimator()
                             .processors()
                             .lane(0)
                             .plan();
    std::printf("\nshared FFT plan cache: session #%llu and #%llu transform "
                "with the same plan object (%s)\n",
                static_cast<unsigned long long>(alpha),
                static_cast<unsigned long long>(charlie),
                plan_a == plan_c ? "pointer-identical" : "DIFFERENT -- bug!");

    // Drive the fleet: fair round-robin, telemetry snapshot mid-flight.
    std::printf("\nrunning...\n");
    std::size_t frames = host.run(600);  // first telemetry window
    print_fleet(host);
    frames += host.run();  // to completion
    std::printf("  ...drained:\n");
    print_fleet(host);

    std::printf("\nprocessed %zu frames total; home-alpha delivered %zu track "
                "updates; home-delta was promoted from the queue and %s.\n",
                frames, alpha_updates,
                engine::to_string(host.state(delta)));
    std::remove(recording.c_str());
    return 0;
}
