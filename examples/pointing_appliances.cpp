// Appliance control by pointing (paper Section 6.1): "the user can turn her
// monitor on or turn the lights off by simply pointing at these objects."
//
// A user stands in the room and points at each of three instrumented
// appliances in turn. Each gesture streams through the engine's pointing
// plugin, which publishes a PointingEvent; the ApplianceController plugin
// subscribes to it and toggles the matched appliance through the (mock)
// Insteon driver -- application logic composed entirely over the event bus.
//
// Build & run:  ./build/example_pointing_appliances
#include <cstdio>
#include <memory>

#include "apps/appliances.hpp"
#include "common/units.hpp"
#include "engine/engine.hpp"
#include "engine/plugins.hpp"
#include "engine/sim_source.hpp"

using namespace witrack;

int main() {
    // The instrumented appliances (the paper used a lamp, a computer screen
    // and automatic shades).
    // Azimuth-only matching: the T-array's 1 m vertical baseline makes
    // elevation far noisier than azimuth, so a practical controller matches
    // appliances in the horizontal plane.
    apps::ApplianceRegistry registry(deg_to_rad(35.0), /*horizontal_only=*/true);
    registry.add("lamp", {2.2, 7.0, 1.2});
    registry.add("screen", {-2.0, 6.5, 1.1});
    registry.add("shades", {0.5, 9.8, 1.8});
    apps::InsteonDriver driver;

    const geom::Vec3 stand{0.0, 4.5, 0.0};
    const geom::Vec3 shoulder{stand.x, stand.y, 1.3};

    std::printf("WiTrack pointing control -- user at (%.1f, %.1f)\n", stand.x,
                stand.y);
    std::printf("(TOF-only workload: the scheduler skips localization/smoothing)\n\n");

    int correct = 0;
    std::uint64_t gesture_seed = 3;
    for (const auto& target : registry.appliances()) {
        // One gesture toward this appliance, streamed through its own engine.
        engine::EngineConfig config;
        config.with_through_wall(true).with_seed(100 + gesture_seed);
        const geom::Vec3 dir = (target.position - shoulder).normalized();
        auto source = std::make_unique<engine::SimSource>(
            config,
            std::make_unique<sim::PointingScript>(stand, dir, Rng(gesture_seed)));
        gesture_seed += 11;

        // PointingStage demands only TOF and ApplianceController nothing at
        // all, so each gesture engine schedules just the TOF step --
        // localization and smoothing never run in this application.
        engine::Engine eng(config, std::move(source));
        eng.emplace_stage<engine::PointingStage>();
        const auto& controller =
            eng.emplace_stage<engine::ApplianceController>(registry, driver);

        std::optional<core::PointingResult> pointing;
        eng.bus().subscribe<engine::PointingEvent>(
            [&](const engine::PointingEvent& event) { pointing = event.pointing; });
        eng.run();

        std::printf("pointing toward '%s': ", target.name.c_str());
        if (!pointing) {
            std::printf("gesture not detected\n");
            continue;
        }
        const auto& actuated = controller.last_actuated();
        const double err_deg = rad_to_deg(geom::angle_between(pointing->direction, dir));
        std::printf("azimuth %+.1f deg (err %.0f deg) -> %s\n",
                    rad_to_deg(pointing->azimuth_rad), err_deg,
                    actuated ? ("toggled '" + *actuated + "'").c_str()
                             : "no appliance within the angular gate");
        if (actuated && *actuated == target.name) ++correct;
    }

    std::printf("\nInsteon command log:\n");
    for (const auto& command : driver.log())
        std::printf("  %s -> %s\n", command.device.c_str(),
                    command.turn_on ? "ON" : "OFF");
    std::printf("\n%d/%zu appliances matched correctly\n", correct, registry.size());
    return 0;
}
