// Voltage-controlled oscillator model. The paper's front end (Section 7)
// sweeps a VCO from 5.46 GHz to 7.25 GHz; because "small errors in the
// input voltage can create large non-linearities in the output sweep", the
// hardware closes a PLL around it. We model the tuning curve with a
// quadratic term so the linearizer has something real to correct.
#pragma once

#include <cmath>
#include <stdexcept>

namespace witrack::hw {

class Vco {
  public:
    struct Tuning {
        double f_min_hz = 5.0e9;        ///< output at 0 V
        double gain_hz_per_v = 250e6;   ///< linear tuning gain K_vco
        double quad_hz_per_v2 = 4e6;    ///< tuning-curve curvature
        double max_voltage = 12.0;
    };

    Vco() : Vco(Tuning{}) {}

    explicit Vco(Tuning tuning) : tuning_(tuning) {
        if (tuning_.gain_hz_per_v <= 0.0)
            throw std::invalid_argument("Vco: tuning gain must be positive");
    }

    /// Instantaneous output frequency for a control voltage.
    double frequency(double volts) const {
        volts = clamp_voltage(volts);
        return tuning_.f_min_hz + tuning_.gain_hz_per_v * volts +
               tuning_.quad_hz_per_v2 * volts * volts;
    }

    /// Voltage that would produce `f` if the tuning curve were perfectly
    /// linear -- what a naive open-loop sweep generator applies.
    double open_loop_voltage(double f_hz) const {
        return clamp_voltage((f_hz - tuning_.f_min_hz) / tuning_.gain_hz_per_v);
    }

    /// Exact voltage for `f` from the quadratic tuning curve (what an ideal
    /// calibrated driver would need).
    double exact_voltage(double f_hz) const {
        const double a = tuning_.quad_hz_per_v2;
        const double b = tuning_.gain_hz_per_v;
        const double c = tuning_.f_min_hz - f_hz;
        if (a == 0.0) return clamp_voltage(-c / b);
        const double disc = b * b - 4.0 * a * c;
        if (disc < 0.0) throw std::invalid_argument("Vco: frequency unreachable");
        return clamp_voltage((-b + std::sqrt(disc)) / (2.0 * a));
    }

    const Tuning& tuning() const { return tuning_; }

  private:
    double clamp_voltage(double v) const {
        if (v < 0.0) return 0.0;
        if (v > tuning_.max_voltage) return tuning_.max_voltage;
        return v;
    }

    Tuning tuning_;
};

}  // namespace witrack::hw
