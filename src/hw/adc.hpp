// Analog-to-digital converter model for the USRP LFRX-LF capture path
// (paper Section 7: baseband sampled at 1 MHz). Models finite resolution
// and full-scale clipping; the full scale is set once from the first
// captured sweep, mimicking a one-time gain calibration.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>

#include "common/serialize.hpp"

namespace witrack::hw {

class Adc {
  public:
    /// bits == 0 disables quantization (ideal capture).
    explicit Adc(int bits = 12) : bits_(bits) {
        if (bits < 0 || bits > 24) throw std::invalid_argument("Adc: bad bit depth");
    }

    bool calibrated() const { return full_scale_ > 0.0; }
    double full_scale() const { return full_scale_; }
    int bits() const { return bits_; }

    /// One-time gain calibration: set full scale to `headroom` times the
    /// observed peak.
    void calibrate(std::span<const double> first_sweep, double headroom = 4.0) {
        double peak = 0.0;
        for (double v : first_sweep) peak = std::max(peak, std::abs(v));
        full_scale_ = peak > 0.0 ? peak * headroom : 1.0;
    }
    void calibrate(std::initializer_list<double> first_sweep, double headroom = 4.0) {
        calibrate(std::span<const double>(first_sweep.begin(), first_sweep.size()),
                  headroom);
    }

    /// Quantize a sweep in place (no-op when bits == 0 or uncalibrated).
    void process(std::span<double> sweep) const {
        if (bits_ == 0 || full_scale_ <= 0.0) return;
        const double levels = static_cast<double>(1 << (bits_ - 1));
        const double lsb = full_scale_ / levels;
        for (auto& v : sweep) {
            double clipped = std::clamp(v, -full_scale_, full_scale_);
            v = std::round(clipped / lsb) * lsb;
        }
    }

    /// Quantization step (0 when disabled/uncalibrated).
    double lsb() const {
        if (bits_ == 0 || full_scale_ <= 0.0) return 0.0;
        return full_scale_ / static_cast<double>(1 << (bits_ - 1));
    }

    /// Serialize the one-time calibration (a restored converter must not
    /// re-calibrate from its first post-restore sweep).
    void save_state(common::StateWriter& writer) const { writer.f64(full_scale_); }
    void load_state(common::StateReader& reader) { full_scale_ = reader.f64(); }

  private:
    int bits_;
    double full_scale_ = 0.0;
};

}  // namespace witrack::hw
