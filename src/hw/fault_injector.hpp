// Deterministic hardware misbehavior for the front-end rigs: given the
// exact baseband frame a healthy FMCW front end would capture, produce the
// frame a degrading one would deliver -- dead antennas, clipped ADCs,
// dropped sweeps, drifting clocks, noise bursts -- from a seeded RNG, so
// every degradation test and bench campaign reproduces bit for bit.
//
// Same discipline as net::FaultInjector (PR 7): splitmix64 randomness
// pinned by standard arithmetic, at most one *disabling* fault per lane
// (a dropout beats everything else on that lane), and every injected
// fault increments exactly one counter that maps 1:1 to a FrameQuality
// flag the pipeline observes -- which is what makes exact
// injector <-> pipeline accounting testable.
//
// Faults fire two ways, composable in one run:
//  - rates: per-frame / per-lane / per-sweep Bernoulli rolls, seeded;
//  - schedule: FaultWindow timeline entries that force a fault over
//    [start_s, end_s) deterministically (no roll) -- the building block
//    of scripted campaigns ("drop RX 2 from t=5s to t=9s").
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/frame_buffer.hpp"

namespace witrack::common {
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::hw {

/// One scheduled fault: `kind` is forced on over [start_s, end_s) for
/// lane `rx` (-1 = every lane). `magnitude` refines the fault by kind:
/// saturation clip level, drift ppm, or burst gain; ignored otherwise.
struct FaultWindow {
    enum class Kind : std::uint8_t {
        kDropout,     ///< lane dead: sweeps zeroed
        kSaturation,  ///< lane clipped at magnitude * lane peak
        kDrift,       ///< timebase off by magnitude ppm (whole frame)
        kBurst,       ///< impulsive noise burst, magnitude x lane RMS
        kSweepDrop,   ///< per-sweep zeroing at rate `magnitude`
        kSweepShort,  ///< per-sweep truncation at rate `magnitude`
    };
    Kind kind = Kind::kDropout;
    double start_s = 0.0;
    double end_s = std::numeric_limits<double>::infinity();
    int rx = -1;             ///< target lane; -1 = all lanes
    double magnitude = 1.0;  ///< kind-specific (level / ppm / gain / rate)
};

struct FaultConfig {
    double sweep_drop_rate = 0.0;    ///< P(sweep zeroed) per (rx, sweep)
    double sweep_short_rate = 0.0;   ///< P(sweep tail lost) per (rx, sweep)
    double saturation_rate = 0.0;    ///< P(lane clips) per (rx, frame)
    double saturation_level = 0.25;  ///< clip at level * lane peak
    double dropout_rate = 0.0;       ///< P(lane dead) per (rx, frame)
    double drift_rate = 0.0;         ///< P(clock drift) per frame
    double drift_ppm = 200.0;        ///< resample factor 1 + ppm * 1e-6
    double burst_rate = 0.0;         ///< P(noise burst) per (rx, frame)
    double burst_gain = 8.0;         ///< burst amplitude vs lane RMS
    std::uint64_t seed = 1;
    std::vector<FaultWindow> schedule;  ///< scripted timeline, on top of rates
};

class FaultInjector {
  public:
    /// Faults injected so far, cumulative across apply() calls. Field for
    /// field this mirrors the fault counters of QualityStats: every
    /// increment here is one FrameQuality flag the pipeline aggregates, so
    /// injector counters and pipeline counters must agree exactly.
    struct Counters {
        std::uint64_t rx_dropouts = 0;     ///< lane-frames killed
        std::uint64_t saturated_rx = 0;    ///< lane-frames clipped
        std::uint64_t dropped_sweeps = 0;  ///< sweeps zeroed
        std::uint64_t short_sweeps = 0;    ///< sweeps truncated
        std::uint64_t noise_bursts = 0;    ///< lane-frames hit by a burst
        std::uint64_t drift_frames = 0;    ///< frames resampled for drift
    };

    explicit FaultInjector(FaultConfig config);

    /// Damage one captured frame in place and mark frame.quality()
    /// accordingly (the plane is reset first, so reused buffers never
    /// carry stale flags). Deterministic order -- frame-level drift
    /// decision, then per lane: dropout (beats everything), saturation,
    /// burst, then the per-sweep drop/short rolls.
    void apply(FrameBuffer& frame, double time_s);

    const Counters& counters() const { return counters_; }
    const FaultConfig& config() const { return config_; }

    /// RNG cursor + counters, so a restored session replays the exact
    /// fault tail it would have seen uninterrupted. The config/schedule
    /// are not serialized: like the simulator's frontend config, they are
    /// reconstructed by whoever rebuilds the source.
    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

  private:
    /// Most recent schedule entry active for (kind, time, rx), or nullptr.
    const FaultWindow* active_window(FaultWindow::Kind kind, double time_s,
                                     int rx) const;

    void kill_lane(FrameBuffer& frame, std::size_t rx);
    void saturate_lane(FrameBuffer& frame, std::size_t rx, double level);
    void burst_lane(FrameBuffer& frame, std::size_t rx, double gain);
    void drift_frame(FrameBuffer& frame, double ppm);

    bool roll(double rate);
    std::uint64_t next_u64();

    FaultConfig config_;
    Counters counters_;
    std::uint64_t rng_state_;
    std::vector<double> scratch_;  ///< drift resample staging (one sweep)
};

/// Parse a "key=value,key=value" fault spec -- the WITRACK_HW_FAULTS
/// environment format, also accepted by scenario files and bench_fleet.
/// Keys: dropout, saturation, sat_level, sweep_drop, sweep_short, drift,
/// drift_ppm, burst, burst_gain, seed. Rates must be in [0, 1]. Throws
/// std::invalid_argument naming the offending key on anything malformed.
FaultConfig parse_fault_spec(const std::string& spec);

}  // namespace witrack::hw
