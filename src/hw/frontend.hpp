// Full FMCW front end (paper Fig. 7): sweep generation (VCO + PLL residual
// nonlinearity), the dechirping mixer, per-receiver high-pass filtering (to
// knock down the Tx-leakage and close-in flash beats), additive receiver
// noise, and ADC capture.
//
// Performance note: static paths (walls, furniture, leakage) do not change
// between sweeps, so their summed baseband waveform is synthesized once and
// cached; each sweep then only synthesizes the handful of body paths. A
// small per-sweep gain jitter on the cached static waveform models the
// imperfect sweep-to-sweep repeatability of real hardware, which is what
// limits background-subtraction depth in practice.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/constants.hpp"
#include "common/frame_buffer.hpp"
#include "common/random.hpp"
#include "dsp/filter.hpp"
#include "hw/adc.hpp"
#include "hw/mixer.hpp"
#include "hw/pll.hpp"
#include "rf/channel.hpp"
#include "rf/noise.hpp"

namespace witrack::common {
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::hw {

struct FrontendConfig {
    witrack::FmcwParams fmcw;
    witrack::rf::NoiseModel noise;
    SweepNonlinearity nonlinearity;      ///< residual after PLL linearization
    double highpass_cutoff_hz = 2000.0;  ///< analog high-pass in the Rx chain
    int adc_bits = 12;                   ///< 0 disables quantization
    double static_gain_jitter = 2e-3;    ///< sweep-to-sweep repeatability
};

class FmcwFrontend {
  public:
    /// The front end owns a copy of the channel (scene + antennas).
    FmcwFrontend(FrontendConfig config, witrack::rf::Channel channel, Rng rng);

    /// Capture one sweep directly into `frame` at `sweep_index` (one row per
    /// receive antenna, no heap allocation). `body` is the person's
    /// scatterer constellation at the time of this sweep (empty when nobody
    /// is present). `frame` must be sized for num_rx() antennas and
    /// samples_per_sweep() samples.
    void capture_sweep_into(witrack::FrameBuffer& frame, std::size_t sweep_index,
                            std::span<const witrack::rf::BodyScatterer> body);

    const witrack::FmcwParams& params() const { return config_.fmcw; }
    const witrack::rf::Channel& channel() const { return channel_; }
    std::size_t num_rx() const { return channel_.num_rx(); }

    /// Rebuild the cached static waveforms (call after mutating the scene).
    void rebuild_static_cache();

    /// Serialize the capture-path state that advances per sweep: the noise
    /// generator, each receiver's high-pass delay line, and each ADC's
    /// one-time calibration. The static cache is deterministic from the
    /// scene and is rebuilt by construction, not serialized.
    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

  private:
    FrontendConfig config_;
    witrack::rf::Channel channel_;
    Rng rng_;
    DechirpMixer mixer_;
    std::vector<std::vector<double>> static_cache_;  // per rx
    std::vector<witrack::dsp::OnePoleHighPass> highpass_;
    std::vector<Adc> adc_;
    double noise_stddev_ = 0.0;
};

}  // namespace witrack::hw
