#include "hw/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/serialize.hpp"

namespace witrack::hw {

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)),
      rng_state_(config_.seed + 0x9E3779B97F4A7C15ull) {}

// splitmix64: tiny, fast, and -- unlike <random> distributions -- its
// output is pinned by the standard's arithmetic, so seeds reproduce across
// standard libraries (same generator as net::FaultInjector).
std::uint64_t FaultInjector::next_u64() {
    std::uint64_t z = (rng_state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

bool FaultInjector::roll(double rate) {
    if (rate <= 0.0) return false;
    if (rate >= 1.0) return true;
    const double u = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    return u < rate;
}

const FaultWindow* FaultInjector::active_window(FaultWindow::Kind kind,
                                                double time_s, int rx) const {
    // Last matching entry wins, so a later schedule line can refine an
    // earlier blanket one ("all lanes clip" ... "but RX 1 clips harder").
    const FaultWindow* hit = nullptr;
    for (const auto& w : config_.schedule) {
        if (w.kind != kind) continue;
        if (time_s < w.start_s || time_s >= w.end_s) continue;
        if (w.rx >= 0 && rx >= 0 && w.rx != rx) continue;
        hit = &w;
    }
    return hit;
}

void FaultInjector::kill_lane(FrameBuffer& frame, std::size_t rx) {
    auto lane = frame.antenna(rx);
    std::fill(lane.begin(), lane.end(), 0.0);
}

void FaultInjector::saturate_lane(FrameBuffer& frame, std::size_t rx,
                                  double level) {
    auto lane = frame.antenna(rx);
    double peak = 0.0;
    for (double v : lane) peak = std::max(peak, std::abs(v));
    const double clip = level * peak;
    for (double& v : lane) v = std::clamp(v, -clip, clip);
}

void FaultInjector::burst_lane(FrameBuffer& frame, std::size_t rx,
                               double gain) {
    const std::size_t samples = frame.samples_per_sweep();
    if (samples == 0 || frame.num_sweeps() == 0) return;
    const std::size_t s = next_u64() % frame.num_sweeps();
    auto sweep = frame.sweep(rx, s);
    double sum_sq = 0.0;
    for (double v : sweep) sum_sq += v * v;
    double rms = std::sqrt(sum_sq / static_cast<double>(samples));
    if (rms == 0.0) rms = 1.0;  // a dead-quiet lane still shows the burst
    const double amp = gain * rms;
    const std::size_t len = std::min(samples, std::max<std::size_t>(4, samples / 8));
    const std::size_t start = next_u64() % (samples - len + 1);
    // Alternating-sign impulse train: broadband, so it smears across range
    // bins the way a real interferer does instead of biasing one bin.
    for (std::size_t i = 0; i < len; ++i)
        sweep[start + i] += (i & 1) ? -amp : amp;
}

void FaultInjector::drift_frame(FrameBuffer& frame, double ppm) {
    // A drifted sweep clock stretches the baseband time axis by
    // (1 + ppm * 1e-6): resample each sweep with linear interpolation.
    const double factor = 1.0 + ppm * 1e-6;
    const std::size_t samples = frame.samples_per_sweep();
    if (samples < 2) return;
    for (std::size_t rx = 0; rx < frame.num_rx(); ++rx) {
        for (std::size_t s = 0; s < frame.num_sweeps(); ++s) {
            auto sweep = frame.sweep(rx, s);
            scratch_.assign(sweep.begin(), sweep.end());
            for (std::size_t i = 0; i < samples; ++i) {
                double pos = static_cast<double>(i) * factor;
                if (pos > static_cast<double>(samples - 1))
                    pos = static_cast<double>(samples - 1);
                const auto i0 = static_cast<std::size_t>(pos);
                const double frac = pos - static_cast<double>(i0);
                const std::size_t i1 = std::min(i0 + 1, samples - 1);
                sweep[i] = scratch_[i0] * (1.0 - frac) + scratch_[i1] * frac;
            }
        }
    }
}

void FaultInjector::apply(FrameBuffer& frame, double time_s) {
    const std::size_t num_rx = frame.num_rx();
    FrameQuality& q = frame.quality();
    q.reset(num_rx);
    if (frame.empty()) return;

    // Frame-level drift decision first, so per-lane randomness never
    // perturbs whether this frame drifts.
    const FaultWindow* dw =
        active_window(FaultWindow::Kind::kDrift, time_s, -1);
    const bool drift = dw != nullptr || roll(config_.drift_rate);
    const double drift_ppm = dw ? dw->magnitude : config_.drift_ppm;

    for (std::size_t rx = 0; rx < num_rx; ++rx) {
        const int lane = static_cast<int>(rx);
        // A dropout beats every other fault on the lane (like drop beats
        // duplicate in the net injector): the lane contributes exactly one
        // rx_dropouts count and nothing else, so counters and FrameQuality
        // flags stay in 1:1 correspondence.
        if (active_window(FaultWindow::Kind::kDropout, time_s, lane) ||
            roll(config_.dropout_rate)) {
            kill_lane(frame, rx);
            q.rx[rx].valid = false;
            ++counters_.rx_dropouts;
            continue;
        }
        if (const auto* w =
                active_window(FaultWindow::Kind::kSaturation, time_s, lane);
            w != nullptr || roll(config_.saturation_rate)) {
            saturate_lane(frame, rx, w ? w->magnitude : config_.saturation_level);
            q.rx[rx].saturated = true;
            ++counters_.saturated_rx;
        }
        if (const auto* w =
                active_window(FaultWindow::Kind::kBurst, time_s, lane);
            w != nullptr || roll(config_.burst_rate)) {
            burst_lane(frame, rx, w ? w->magnitude : config_.burst_gain);
            q.rx[rx].burst = true;
            ++counters_.noise_bursts;
        }
        // Per-sweep faults: a schedule window overrides the base rate.
        const auto* wd =
            active_window(FaultWindow::Kind::kSweepDrop, time_s, lane);
        const auto* ws =
            active_window(FaultWindow::Kind::kSweepShort, time_s, lane);
        const double drop_rate = wd ? wd->magnitude : config_.sweep_drop_rate;
        const double short_rate = ws ? ws->magnitude : config_.sweep_short_rate;
        if (drop_rate > 0.0 || short_rate > 0.0) {
            for (std::size_t s = 0; s < frame.num_sweeps(); ++s) {
                if (roll(drop_rate)) {
                    auto sweep = frame.sweep(rx, s);
                    std::fill(sweep.begin(), sweep.end(), 0.0);
                    ++q.rx[rx].dropped_sweeps;
                    ++counters_.dropped_sweeps;
                } else if (roll(short_rate)) {
                    auto sweep = frame.sweep(rx, s);
                    std::fill(sweep.begin() +
                                  static_cast<std::ptrdiff_t>(sweep.size() / 2),
                              sweep.end(), 0.0);
                    ++q.rx[rx].short_sweeps;
                    ++counters_.short_sweeps;
                }
            }
        }
    }

    if (drift) {
        drift_frame(frame, drift_ppm);
        q.clock_drift = true;
        for (std::size_t rx = 0; rx < num_rx; ++rx)
            if (q.rx[rx].valid) q.rx[rx].jitter = true;
        ++counters_.drift_frames;
    }

    q.recompute_health(frame.num_sweeps());
}

void FaultInjector::save_state(common::StateWriter& writer) const {
    writer.u64(rng_state_);
    writer.u64(counters_.rx_dropouts);
    writer.u64(counters_.saturated_rx);
    writer.u64(counters_.dropped_sweeps);
    writer.u64(counters_.short_sweeps);
    writer.u64(counters_.noise_bursts);
    writer.u64(counters_.drift_frames);
}

void FaultInjector::load_state(common::StateReader& reader) {
    rng_state_ = reader.u64();
    counters_.rx_dropouts = reader.u64();
    counters_.saturated_rx = reader.u64();
    counters_.dropped_sweeps = reader.u64();
    counters_.short_sweeps = reader.u64();
    counters_.noise_bursts = reader.u64();
    counters_.drift_frames = reader.u64();
}

namespace {

double parse_double(const std::string& key, const std::string& value) {
    std::size_t used = 0;
    double parsed = 0.0;
    try {
        parsed = std::stod(value, &used);
    } catch (const std::exception&) {
        throw std::invalid_argument("hw fault spec: bad value for '" + key +
                                    "': '" + value + "'");
    }
    if (used != value.size() || !std::isfinite(parsed))
        throw std::invalid_argument("hw fault spec: bad value for '" + key +
                                    "': '" + value + "'");
    return parsed;
}

double parse_rate(const std::string& key, const std::string& value) {
    const double rate = parse_double(key, value);
    if (rate < 0.0 || rate > 1.0)
        throw std::invalid_argument("hw fault spec: '" + key +
                                    "' must be in [0, 1], got '" + value + "'");
    return rate;
}

std::string trim(const std::string& s) {
    const auto begin = s.find_first_not_of(" \t");
    if (begin == std::string::npos) return {};
    const auto end = s.find_last_not_of(" \t");
    return s.substr(begin, end - begin + 1);
}

}  // namespace

FaultConfig parse_fault_spec(const std::string& spec) {
    FaultConfig config;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = std::min(spec.find(',', pos), spec.size());
        const std::string entry = trim(spec.substr(pos, comma - pos));
        pos = comma + 1;
        if (entry.empty()) continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "hw fault spec: expected key=value, got '" + entry + "'");
        const std::string key = trim(entry.substr(0, eq));
        const std::string value = trim(entry.substr(eq + 1));
        if (key == "dropout") {
            config.dropout_rate = parse_rate(key, value);
        } else if (key == "saturation") {
            config.saturation_rate = parse_rate(key, value);
        } else if (key == "sat_level") {
            config.saturation_level = parse_double(key, value);
            if (config.saturation_level <= 0.0)
                throw std::invalid_argument(
                    "hw fault spec: 'sat_level' must be > 0");
        } else if (key == "sweep_drop") {
            config.sweep_drop_rate = parse_rate(key, value);
        } else if (key == "sweep_short") {
            config.sweep_short_rate = parse_rate(key, value);
        } else if (key == "drift") {
            config.drift_rate = parse_rate(key, value);
        } else if (key == "drift_ppm") {
            config.drift_ppm = parse_double(key, value);
        } else if (key == "burst") {
            config.burst_rate = parse_rate(key, value);
        } else if (key == "burst_gain") {
            config.burst_gain = parse_double(key, value);
            if (config.burst_gain < 0.0)
                throw std::invalid_argument(
                    "hw fault spec: 'burst_gain' must be >= 0");
        } else if (key == "seed") {
            try {
                std::size_t used = 0;
                config.seed = std::stoull(value, &used);
                if (used != value.size()) throw std::invalid_argument(value);
            } catch (const std::exception&) {
                throw std::invalid_argument(
                    "hw fault spec: bad value for 'seed': '" + value + "'");
            }
        } else {
            throw std::invalid_argument("hw fault spec: unknown key '" + key +
                                        "'");
        }
    }
    return config;
}

}  // namespace witrack::hw
