// Sweep linearizer: the feedback loop of paper Fig. 7. A phase-frequency
// detector compares the divided VCO output against a low-frequency reference
// ramp (136.5 -> 181.25 MHz divided from 5.46 -> 7.25 GHz is a /40), and an
// integrating loop filter steers the VCO so its sweep tracks the reference
// linearly.
//
// The simulation runs the loop at a fixed control rate across one sweep and
// reports the residual frequency error, from which the front end derives a
// small sinusoidal nonlinearity ripple for the mixer model.
#pragma once

#include <cstddef>
#include <vector>

#include "common/constants.hpp"
#include "hw/vco.hpp"

namespace witrack::hw {

struct SweepNonlinearity {
    double ripple_amplitude_hz = 0.0;  ///< residual frequency ripple amplitude
    double ripple_frequency_hz = 0.0;  ///< dominant ripple rate across a sweep
    double phase_rad = 0.0;

    bool negligible() const { return ripple_amplitude_hz <= 0.0; }
};

class SweepLinearizer {
  public:
    struct Config {
        double divider = 40.0;             ///< VCO-to-reference frequency divider
        double loop_gain = 0.6;            ///< integrator gain (per control step)
        std::size_t control_steps = 2500;  ///< loop updates per sweep (1 us at 2.5 ms)
        bool closed_loop = true;           ///< false = open-loop voltage ramp
    };

    struct Result {
        std::vector<double> frequency_error_hz;  ///< f_actual - f_ideal per step
        double rms_error_hz = 0.0;
        double max_abs_error_hz = 0.0;

        /// Fit the residual as a single sinusoidal ripple across the sweep
        /// (first non-DC Fourier coefficient of the error sequence).
        SweepNonlinearity fit_ripple(double sweep_duration_s) const;
    };

    SweepLinearizer() : SweepLinearizer(Config{}) {}

    explicit SweepLinearizer(Config config) : config_(config) {}

    /// Run one sweep of the control loop against the given VCO.
    Result simulate_sweep(const Vco& vco, const witrack::FmcwParams& fmcw) const;

    const Config& config() const { return config_; }

  private:
    Config config_;
};

}  // namespace witrack::hw
