#include "hw/frontend.hpp"

#include <stdexcept>

#include "common/serialize.hpp"

namespace witrack::hw {

using witrack::rf::BodyScatterer;

FmcwFrontend::FmcwFrontend(FrontendConfig config, witrack::rf::Channel channel, Rng rng)
    : config_(std::move(config)),
      channel_(std::move(channel)),
      rng_(rng),
      mixer_(config_.fmcw, config_.nonlinearity) {
    config_.fmcw.validate();
    noise_stddev_ = config_.noise.sample_stddev(config_.fmcw.sample_rate_hz);
    for (std::size_t i = 0; i < channel_.num_rx(); ++i) {
        highpass_.emplace_back(config_.highpass_cutoff_hz, config_.fmcw.sample_rate_hz);
        adc_.emplace_back(config_.adc_bits);
    }
    rebuild_static_cache();
}

void FmcwFrontend::rebuild_static_cache() {
    static_cache_.clear();
    static_cache_.reserve(channel_.num_rx());
    for (std::size_t i = 0; i < channel_.num_rx(); ++i) {
        const auto paths = channel_.static_paths(i);
        static_cache_.push_back(mixer_.synthesize(paths));
    }
}

void FmcwFrontend::capture_sweep_into(witrack::FrameBuffer& frame,
                                      std::size_t sweep_index,
                                      std::span<const BodyScatterer> body) {
    const std::size_t n = config_.fmcw.samples_per_sweep();
    if (frame.num_rx() != channel_.num_rx() || frame.samples_per_sweep() != n)
        throw std::invalid_argument("FmcwFrontend: frame shape mismatch");

    // Sweep-to-sweep repeatability jitter is common to all receivers (it
    // originates in the shared transmit chain).
    const double jitter = rng_.gaussian(config_.static_gain_jitter);

    for (std::size_t rx = 0; rx < channel_.num_rx(); ++rx) {
        auto sweep = frame.sweep(rx, sweep_index);
        const auto& cached = static_cache_[rx];
        const double gain = 1.0 + jitter;
        for (std::size_t i = 0; i < n; ++i) sweep[i] = cached[i] * gain;

        if (!body.empty()) {
            const auto paths = channel_.body_paths(rx, body);
            mixer_.synthesize(paths, sweep);
        }

        if (noise_stddev_ > 0.0)
            for (auto& v : sweep) v += rng_.gaussian(noise_stddev_);

        highpass_[rx].process_in_place(sweep);

        if (!adc_[rx].calibrated()) adc_[rx].calibrate(sweep);
        adc_[rx].process(sweep);
    }
}

void FmcwFrontend::save_state(common::StateWriter& writer) const {
    common::save_state(writer, rng_.engine());
    writer.u64(highpass_.size());
    for (const auto& highpass : highpass_) highpass.save_state(writer);
    for (const auto& adc : adc_) adc.save_state(writer);
}

void FmcwFrontend::load_state(common::StateReader& reader) {
    common::load_state(reader, rng_.engine());
    const auto num_rx = static_cast<std::size_t>(reader.u64());
    if (num_rx != highpass_.size() || adc_.size() != highpass_.size())
        throw std::runtime_error("FmcwFrontend: snapshot antenna count mismatch");
    for (auto& highpass : highpass_) highpass.load_state(reader);
    for (auto& adc : adc_) adc.load_state(reader);
}

}  // namespace witrack::hw
