// Dechirping mixer: multiplies the received signal by the transmitted chirp
// and keeps the difference term, so each propagation path becomes a baseband
// beat tone at frequency slope * TOF (paper Eq. 1 and Fig. 7).
//
// The synthesis is analytic: for a linear sweep the beat phase of a path
// with delay tau is
//    phi(t) = 2*pi * (f0*tau + slope*tau*t - slope*tau^2/2) + path phase,
// and residual sweep nonlinearity adds the ripple term
//    delta(t) = 2*pi * A_r * tau * sin(2*pi*f_r*t + theta)
// (first order in the small ripple; see SweepLinearizer). Tones are
// generated with complex phasor recurrences -- one multiply per sample --
// so a full sweep with tens of paths stays cheap.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "common/constants.hpp"
#include "hw/pll.hpp"
#include "rf/path.hpp"

namespace witrack::hw {

class DechirpMixer {
  public:
    DechirpMixer(const witrack::FmcwParams& fmcw, SweepNonlinearity nonlinearity = {});

    /// Accumulate the baseband contribution of `paths` into `out`, which
    /// must have samples_per_sweep() elements. Accepts any contiguous
    /// buffer (e.g. a FrameBuffer sweep row).
    void synthesize(std::span<const witrack::rf::PropagationPath> paths,
                    std::span<double> out) const;

    /// Convenience: synthesize into a fresh zeroed buffer.
    std::vector<double> synthesize(
        std::span<const witrack::rf::PropagationPath> paths) const;

    const witrack::FmcwParams& params() const { return fmcw_; }
    const SweepNonlinearity& nonlinearity() const { return nonlinearity_; }

  private:
    witrack::FmcwParams fmcw_;
    SweepNonlinearity nonlinearity_;
    std::vector<double> ripple_table_;  // sin(2*pi*f_r*t_i + theta) per sample
};

}  // namespace witrack::hw
