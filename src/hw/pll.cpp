#include "hw/pll.hpp"

#include <cmath>

namespace witrack::hw {

SweepLinearizer::Result SweepLinearizer::simulate_sweep(
    const Vco& vco, const witrack::FmcwParams& fmcw) const {
    Result result;
    const std::size_t steps = config_.control_steps;
    result.frequency_error_hz.reserve(steps);

    // The FMCW sweep can start below the usable band (the hardware sweeps
    // from 5.46 GHz but only 5.56-7.25 GHz is kept); the loop simply tracks
    // the commanded ramp.
    const double f_start = fmcw.start_frequency_hz;
    const double f_stop = fmcw.start_frequency_hz + fmcw.bandwidth_hz;

    double integrator = 0.0;
    double acc_sq = 0.0;
    for (std::size_t i = 0; i < steps; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(steps);
        const double f_ideal = f_start + (f_stop - f_start) * t;

        // Feedforward: the naive linear voltage ramp. Feedback: integrator
        // driven by the phase-frequency detector's divided-frequency error.
        double v = vco.open_loop_voltage(f_ideal);
        if (config_.closed_loop) v += integrator;

        const double f_actual = vco.frequency(v);
        const double error = f_actual - f_ideal;
        result.frequency_error_hz.push_back(error);
        acc_sq += error * error;

        if (config_.closed_loop) {
            // PFD output is proportional to the divided frequency offset;
            // the loop filter integrates it into a voltage correction.
            const double divided_error = error / config_.divider;
            integrator -= config_.loop_gain * divided_error /
                          (vco.tuning().gain_hz_per_v / config_.divider);
        }
        result.max_abs_error_hz = std::max(result.max_abs_error_hz, std::abs(error));
    }
    result.rms_error_hz = std::sqrt(acc_sq / static_cast<double>(steps));
    return result;
}

SweepNonlinearity SweepLinearizer::Result::fit_ripple(double sweep_duration_s) const {
    SweepNonlinearity nl;
    const std::size_t n = frequency_error_hz.size();
    if (n < 4) return nl;

    // Remove the mean (a constant frequency offset only shifts all beat
    // tones identically and is calibrated out), then take the first Fourier
    // coefficient as the dominant ripple across the sweep.
    double mean = 0.0;
    for (double e : frequency_error_hz) mean += e;
    mean /= static_cast<double>(n);

    double re = 0.0, im = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double angle = 2.0 * M_PI * static_cast<double>(i) / static_cast<double>(n);
        const double e = frequency_error_hz[i] - mean;
        re += e * std::cos(angle);
        im -= e * std::sin(angle);
    }
    re *= 2.0 / static_cast<double>(n);
    im *= 2.0 / static_cast<double>(n);

    nl.ripple_amplitude_hz = std::sqrt(re * re + im * im);
    nl.ripple_frequency_hz = 1.0 / sweep_duration_s;  // one cycle per sweep
    nl.phase_rad = std::atan2(im, re);
    return nl;
}

}  // namespace witrack::hw
