#include "hw/mixer.hpp"

#include <cmath>
#include <stdexcept>

namespace witrack::hw {

using witrack::rf::PropagationPath;

DechirpMixer::DechirpMixer(const witrack::FmcwParams& fmcw, SweepNonlinearity nonlinearity)
    : fmcw_(fmcw), nonlinearity_(nonlinearity) {
    fmcw_.validate();
    if (!nonlinearity_.negligible()) {
        const std::size_t n = fmcw_.samples_per_sweep();
        ripple_table_.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            const double t = static_cast<double>(i) / fmcw_.sample_rate_hz;
            ripple_table_[i] =
                std::sin(2.0 * M_PI * nonlinearity_.ripple_frequency_hz * t +
                         nonlinearity_.phase_rad);
        }
    }
}

void DechirpMixer::synthesize(std::span<const PropagationPath> paths,
                              std::span<double> out) const {
    const std::size_t n = fmcw_.samples_per_sweep();
    if (out.size() != n) throw std::invalid_argument("DechirpMixer: bad buffer size");

    const double slope = fmcw_.slope();
    const double fs = fmcw_.sample_rate_hz;

    for (const auto& path : paths) {
        if (path.amplitude <= 0.0) continue;
        const double tau = path.round_trip_m / kSpeedOfLight;
        const double beat_hz = slope * tau;
        // Phase at t = 0: carrier-delay term minus the residual video phase.
        const double phi0 = 2.0 * M_PI * (fmcw_.start_frequency_hz * tau -
                                          0.5 * slope * tau * tau) +
                            path.phase_rad;
        const double dphi = 2.0 * M_PI * beat_hz / fs;

        std::complex<double> phasor(std::cos(phi0), std::sin(phi0));
        const std::complex<double> rotation(std::cos(dphi), std::sin(dphi));
        const double amp = path.amplitude;

        if (ripple_table_.empty()) {
            for (std::size_t i = 0; i < n; ++i) {
                out[i] += amp * phasor.real();
                phasor *= rotation;
                if ((i & 0x1FF) == 0x1FF) phasor /= std::abs(phasor);  // drift control
            }
        } else {
            // cos(theta + delta) ~ cos(theta) - delta*sin(theta) with
            // delta(t) = 2*pi*A_r*tau*ripple(t); |delta| << 1 for realistic
            // PLL residuals.
            const double delta_scale =
                2.0 * M_PI * nonlinearity_.ripple_amplitude_hz * tau;
            for (std::size_t i = 0; i < n; ++i) {
                const double delta = delta_scale * ripple_table_[i];
                out[i] += amp * (phasor.real() - delta * phasor.imag());
                phasor *= rotation;
                if ((i & 0x1FF) == 0x1FF) phasor /= std::abs(phasor);
            }
        }
    }
}

std::vector<double> DechirpMixer::synthesize(
    std::span<const PropagationPath> paths) const {
    std::vector<double> out(fmcw_.samples_per_sweep(), 0.0);
    synthesize(paths, out);
    return out;
}

}  // namespace witrack::hw
