#include "geom/solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/linalg.hpp"

namespace witrack::geom {

namespace {
constexpr double kPlaneTolerance = 1e-9;
}

EllipsoidSolver::EllipsoidSolver(ArrayGeometry geometry)
    : geometry_(std::move(geometry)) {
    geometry_.validate();
    offsets_.reserve(geometry_.rx.size());
    for (const auto& rx : geometry_.rx) offsets_.push_back(rx - geometry_.tx);

    // Build an orthonormal basis (u, w) of the span of the offsets and check
    // that every offset lies in it.
    u_ = {};
    for (const auto& a : offsets_) {
        if (a.norm() > 1e-9) {
            u_ = a.normalized();
            break;
        }
    }
    if (u_.norm() == 0.0)
        throw std::invalid_argument("EllipsoidSolver: all Rx collocated with Tx");

    w_ = {};
    for (const auto& a : offsets_) {
        const Vec3 perp = a - u_ * a.dot(u_);
        if (perp.norm() > 1e-9) {
            w_ = perp.normalized();
            break;
        }
    }
    if (w_.norm() == 0.0)
        throw std::invalid_argument("EllipsoidSolver: antennas are collinear");

    n_ = u_.cross(w_).normalized();
    if (n_.dot(geometry_.boresight) < 0.0) n_ = -n_;

    planar_ = true;
    for (const auto& a : offsets_) {
        if (std::abs(a.dot(n_)) > kPlaneTolerance * std::max(1.0, a.norm())) {
            planar_ = false;
            break;
        }
    }
}

double EllipsoidSolver::residual_rms_at(const Vec3& p,
                                        const std::vector<double>& round_trips) const {
    double acc = 0.0;
    for (std::size_t i = 0; i < geometry_.rx.size(); ++i) {
        const double predicted =
            p.distance_to(geometry_.tx) + p.distance_to(geometry_.rx[i]);
        const double r = predicted - round_trips[i];
        acc += r * r;
    }
    return std::sqrt(acc / static_cast<double>(geometry_.rx.size()));
}

LocalizationResult EllipsoidSolver::finalize(Vec3 device_frame_position, bool clamped,
                                             const std::vector<double>& round_trips) const {
    LocalizationResult result;
    result.position = geometry_.tx + device_frame_position;
    result.clamped = clamped;
    result.valid = true;
    result.residual_rms = residual_rms_at(result.position, round_trips);
    return result;
}

LocalizationResult EllipsoidSolver::solve_closed_form(
    const std::vector<double>& round_trips) const {
    if (round_trips.size() != geometry_.rx.size())
        throw std::invalid_argument("solve_closed_form: measurement count mismatch");
    if (!planar_) return {};  // closed form only defined for planar arrays

    // Reject physically impossible measurements (path shorter than the
    // direct Tx->Rx separation).
    for (std::size_t i = 0; i < round_trips.size(); ++i)
        if (round_trips[i] <= offsets_[i].norm() || !std::isfinite(round_trips[i]))
            return {};

    // Least-squares solve of  [a_i.u  a_i.w  -D_i] [alpha beta r]^T = c_i
    // via the 3x3 normal equations (exact solve when there are 3 antennas).
    dsp::Matrix<3, 3> ata;
    dsp::Vector<3> atc;
    for (std::size_t i = 0; i < offsets_.size(); ++i) {
        const double row[3] = {offsets_[i].dot(u_), offsets_[i].dot(w_), -round_trips[i]};
        const double c =
            (offsets_[i].norm_squared() - round_trips[i] * round_trips[i]) / 2.0;
        for (std::size_t r = 0; r < 3; ++r) {
            atc(r, 0) += row[r] * c;
            for (std::size_t cidx = 0; cidx < 3; ++cidx) ata(r, cidx) += row[r] * row[cidx];
        }
    }

    dsp::Vector<3> sol;
    try {
        sol = dsp::solve(ata, atc);
    } catch (const std::runtime_error&) {
        return {};  // degenerate geometry for these measurements
    }

    const double alpha = sol(0, 0);
    const double beta = sol(1, 0);
    const double r = sol(2, 0);
    if (!(r > 0.0) || !std::isfinite(r)) return {};

    const double y_sq = r * r - alpha * alpha - beta * beta;
    bool clamped = false;
    double y = 0.0;
    if (y_sq > 0.0) {
        y = std::sqrt(y_sq);
    } else {
        // Noise pushed the solution marginally off the sphere; clamp onto
        // the antenna plane but keep the in-plane estimate.
        clamped = true;
    }
    const Vec3 p = u_ * alpha + w_ * beta + n_ * y;
    return finalize(p, clamped, round_trips);
}

LocalizationResult EllipsoidSolver::solve_gauss_newton(
    const std::vector<double>& round_trips, const Vec3& seed,
    std::size_t max_iterations) const {
    if (round_trips.size() != geometry_.rx.size())
        throw std::invalid_argument("solve_gauss_newton: measurement count mismatch");

    Vec3 p = seed;
    double lambda = 1e-6;  // Levenberg damping
    double prev_cost = std::numeric_limits<double>::infinity();

    for (std::size_t iter = 0; iter < max_iterations; ++iter) {
        dsp::Matrix<3, 3> jtj;
        dsp::Vector<3> jtr;
        double cost = 0.0;
        for (std::size_t i = 0; i < geometry_.rx.size(); ++i) {
            const Vec3 d_tx = p - geometry_.tx;
            const Vec3 d_rx = p - geometry_.rx[i];
            const double n_tx = std::max(d_tx.norm(), 1e-9);
            const double n_rx = std::max(d_rx.norm(), 1e-9);
            const double residual = n_tx + n_rx - round_trips[i];
            const Vec3 grad = d_tx / n_tx + d_rx / n_rx;
            const double g[3] = {grad.x, grad.y, grad.z};
            for (std::size_t r = 0; r < 3; ++r) {
                jtr(r, 0) += g[r] * residual;
                for (std::size_t c = 0; c < 3; ++c) jtj(r, c) += g[r] * g[c];
            }
            cost += residual * residual;
        }

        if (cost < 1e-18) break;
        // Levenberg: inflate the diagonal when the previous step regressed.
        lambda = cost < prev_cost ? std::max(lambda * 0.5, 1e-9)
                                  : std::min(lambda * 10.0, 1e3);
        prev_cost = cost;

        dsp::Matrix<3, 3> damped = jtj;
        for (std::size_t i = 0; i < 3; ++i) damped(i, i) += lambda * (1.0 + jtj(i, i));

        dsp::Vector<3> step;
        try {
            step = dsp::solve(damped, jtr);
        } catch (const std::runtime_error&) {
            break;
        }
        const Vec3 delta{step(0, 0), step(1, 0), step(2, 0)};
        p -= delta;
        if (delta.norm() < 1e-10) break;
    }

    LocalizationResult result;
    result.position = p;
    result.valid = std::isfinite(p.x) && std::isfinite(p.y) && std::isfinite(p.z);
    result.residual_rms = result.valid ? residual_rms_at(p, round_trips) : 0.0;
    // Keep the solution on the boresight side: directional antennas cannot
    // see targets behind the array (paper Fig. 4a).
    if (result.valid &&
        (p - geometry_.tx).dot(geometry_.boresight) < 0.0) {
        const Vec3 mirrored =
            p - geometry_.boresight * (2.0 * (p - geometry_.tx).dot(geometry_.boresight));
        if (residual_rms_at(mirrored, round_trips) <= result.residual_rms + 1e-9) {
            result.position = mirrored;
            result.residual_rms = residual_rms_at(mirrored, round_trips);
        }
    }
    return result;
}

LocalizationResult EllipsoidSolver::solve(const std::vector<double>& round_trips) const {
    const LocalizationResult closed = solve_closed_form(round_trips);
    Vec3 seed;
    if (closed.valid) {
        // An exact (non-clamped) 3-antenna closed-form solution needs no
        // refinement.
        if (!closed.clamped && geometry_.rx.size() == 3 &&
            closed.residual_rms < 1e-9)
            return closed;
        seed = closed.position;
    } else {
        // Seed on the boresight at the mean one-way range.
        double mean_rt = 0.0;
        for (double d : round_trips) mean_rt += d;
        mean_rt /= static_cast<double>(round_trips.size());
        seed = geometry_.tx + geometry_.boresight * (mean_rt / 2.0);
    }
    LocalizationResult refined = solve_gauss_newton(round_trips, seed);
    if (!refined.valid) return closed;
    refined.clamped = closed.valid ? closed.clamped : refined.clamped;
    return refined;
}

}  // namespace witrack::geom
