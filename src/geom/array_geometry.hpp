// Antenna array geometry. The paper's default deployment is a "T": the
// transmit antenna at the crossing point, two receive antennas on the
// horizontal bar (along x) and one below the transmitter (along -z), all in
// one plane facing the tracked space (+y).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "geom/vec3.hpp"

namespace witrack::geom {

struct ArrayGeometry {
    Vec3 tx;                    ///< transmit antenna position (world frame)
    std::vector<Vec3> rx;       ///< receive antenna positions (world frame)
    Vec3 boresight{0, 1, 0};    ///< unit vector the directional antennas face

    std::size_t num_rx() const { return rx.size(); }

    void validate() const {
        if (rx.size() < 3)
            throw std::invalid_argument("ArrayGeometry: 3D localization needs >= 3 Rx");
    }
};

/// Build the default "T" array centred at `center` facing +y:
///   Rx1 = center - (sep, 0, 0), Rx2 = center + (sep, 0, 0),
///   Rx3 = center - (0, 0, sep), Tx = center.
/// `separation_m` is the Tx-to-Rx distance (1 m in the paper's default).
inline ArrayGeometry make_t_array(const Vec3& center, double separation_m) {
    if (separation_m <= 0.0)
        throw std::invalid_argument("make_t_array: separation must be positive");
    ArrayGeometry g;
    g.tx = center;
    g.rx = {
        center + Vec3{-separation_m, 0.0, 0.0},
        center + Vec3{+separation_m, 0.0, 0.0},
        center + Vec3{0.0, 0.0, -separation_m},
    };
    g.boresight = {0.0, 1.0, 0.0};
    return g;
}

/// Build a T array with a fourth (redundant) receive antenna above the
/// transmitter, for the over-constrained localization extension.
inline ArrayGeometry make_cross_array(const Vec3& center, double separation_m) {
    ArrayGeometry g = make_t_array(center, separation_m);
    g.rx.push_back(center + Vec3{0.0, 0.0, separation_m});
    return g;
}

}  // namespace witrack::geom
