// Prolate ellipsoid defined by two foci and a major-axis length: the locus
// of points whose summed distance to the foci is constant. A round-trip
// distance measurement for one receive antenna constrains the person to such
// an ellipsoid with foci at Tx and that Rx (paper Section 5).
#pragma once

#include <stdexcept>

#include "geom/vec3.hpp"

namespace witrack::geom {

class Ellipsoid {
  public:
    /// `major_axis_length` is the constant distance sum |p-f1| + |p-f2|,
    /// i.e. the measured round-trip distance (2a in conic terms).
    Ellipsoid(const Vec3& focus1, const Vec3& focus2, double major_axis_length)
        : f1_(focus1), f2_(focus2), length_(major_axis_length) {
        const double focal = f1_.distance_to(f2_);
        if (length_ <= focal)
            throw std::invalid_argument(
                "Ellipsoid: major axis must exceed the focal distance");
    }

    const Vec3& focus1() const { return f1_; }
    const Vec3& focus2() const { return f2_; }
    double major_axis_length() const { return length_; }

    /// Signed residual of the defining equation at p: zero on the surface,
    /// negative inside, positive outside.
    double residual(const Vec3& p) const {
        return p.distance_to(f1_) + p.distance_to(f2_) - length_;
    }

    /// Gradient of residual() with respect to p: the sum of unit vectors
    /// away from each focus. Used by the Gauss-Newton localizer.
    Vec3 gradient(const Vec3& p) const {
        Vec3 g{};
        const Vec3 d1 = p - f1_;
        const Vec3 d2 = p - f2_;
        const double n1 = d1.norm();
        const double n2 = d2.norm();
        if (n1 > 1e-12) g += d1 / n1;
        if (n2 > 1e-12) g += d2 / n2;
        return g;
    }

    bool contains(const Vec3& p, double tolerance = 1e-9) const {
        return residual(p) <= tolerance;
    }

    /// Semi-minor axis b = sqrt(a^2 - c^2): how "fat" the ellipsoid is.
    /// Shrinks as the foci separate at fixed major axis, which is the
    /// geometric reason larger antenna separation improves accuracy
    /// (paper Section 9.3).
    double semi_minor_axis() const {
        const double a = length_ / 2.0;
        const double c = f1_.distance_to(f2_) / 2.0;
        return std::sqrt(a * a - c * c);
    }

  private:
    Vec3 f1_;
    Vec3 f2_;
    double length_;
};

}  // namespace witrack::geom
