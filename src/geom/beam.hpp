// Directional-antenna beam feasibility. The paper resolves the ellipse
// intersection ambiguity by noting that only solutions inside the antennas'
// beam are physical (Section 5, Fig. 4a).
#pragma once

#include "geom/vec3.hpp"

namespace witrack::geom {

/// A cone of half-angle `half_angle_rad` around `axis`, rooted at `apex`.
class BeamCone {
  public:
    BeamCone(const Vec3& apex, const Vec3& axis, double half_angle_rad)
        : apex_(apex), axis_(axis.normalized()), half_angle_(half_angle_rad) {}

    /// True if the point lies inside the cone (in front of the apex and
    /// within the half-angle).
    bool contains(const Vec3& point) const {
        const Vec3 d = point - apex_;
        const double along = d.dot(axis_);
        if (along <= 0.0) return false;
        return angle_between(d, axis_) <= half_angle_;
    }

    /// Off-axis angle of a point in radians (pi for points behind the apex).
    double off_axis_angle(const Vec3& point) const {
        const Vec3 d = point - apex_;
        if (d.dot(axis_) <= 0.0) return M_PI;
        return angle_between(d, axis_);
    }

    const Vec3& apex() const { return apex_; }
    const Vec3& axis() const { return axis_; }
    double half_angle() const { return half_angle_; }

  private:
    Vec3 apex_;
    Vec3 axis_;
    double half_angle_;
};

}  // namespace witrack::geom
