// 3D localization from per-antenna round-trip distances (paper Section 5).
//
// Each receive antenna's measurement places the person on an ellipsoid with
// foci (Tx, Rx_i). The paper avoids solving the ellipsoid system online by
// precomputing a symbolic solution for the fixed antenna placement; we do the
// equivalent in closed form. For a planar array (antennas mounted in one
// plane facing the room — always the case for a through-wall deployment) the
// system reduces to a single 3x3 linear solve:
//
//   With the Tx at the origin and a_i = Rx_i - Tx, squaring
//   |p - a_i| = D_i - |p| gives the linear relation
//       a_i . p = (|a_i|^2 - D_i^2)/2 + D_i * r,     r = |p|.
//   Writing p = alpha*u + beta*w + y*n in a plane basis (u, w, normal n),
//   a_i . n = 0 turns the three relations into a linear system in
//   (alpha, beta, r); y then follows from y^2 = r^2 - alpha^2 - beta^2 and
//   the directional antennas select the + root along the boresight.
//
// A Levenberg-damped Gauss-Newton refiner handles noisy measurements,
// non-planar arrays and over-constrained (>3 Rx) setups.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/array_geometry.hpp"
#include "geom/vec3.hpp"

namespace witrack::geom {

struct LocalizationResult {
    Vec3 position{};            ///< solved position (world frame)
    bool valid = false;         ///< a geometrically consistent solution exists
    double residual_rms = 0.0;  ///< RMS of |p-tx|+|p-rx_i|-D_i over antennas [m]
    bool clamped = false;       ///< y^2 went negative and was clamped to the plane
};

class EllipsoidSolver {
  public:
    explicit EllipsoidSolver(ArrayGeometry geometry);

    /// Closed-form planar solve (least squares when more than 3 antennas).
    /// round_trips[i] is the full Tx->person->Rx_i path length in meters.
    LocalizationResult solve_closed_form(const std::vector<double>& round_trips) const;

    /// Iterative refinement starting from `seed`.
    LocalizationResult solve_gauss_newton(const std::vector<double>& round_trips,
                                          const Vec3& seed,
                                          std::size_t max_iterations = 25) const;

    /// Production entry point: closed form, then Gauss-Newton polish.
    LocalizationResult solve(const std::vector<double>& round_trips) const;

    const ArrayGeometry& geometry() const { return geometry_; }
    bool planar() const { return planar_; }

  private:
    LocalizationResult finalize(Vec3 device_frame_position, bool clamped,
                                const std::vector<double>& round_trips) const;
    double residual_rms_at(const Vec3& world_position,
                           const std::vector<double>& round_trips) const;

    ArrayGeometry geometry_;
    std::vector<Vec3> offsets_;  // a_i = rx_i - tx
    Vec3 u_{}, w_{}, n_{};       // plane basis (valid when planar_)
    bool planar_ = false;
};

}  // namespace witrack::geom
