// 3D vector type used across the geometry, RF and simulation layers.
// Coordinate convention (paper Section 5): the antenna "T" lies in the xz
// plane; x is horizontal along the antenna bar, z is vertical, and y points
// away from the device into the tracked room.
#pragma once

#include <cmath>
#include <ostream>

namespace witrack::geom {

struct Vec3 {
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Vec3() = default;
    constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    Vec3& operator+=(const Vec3& o) {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }
    Vec3& operator-=(const Vec3& o) {
        x -= o.x;
        y -= o.y;
        z -= o.z;
        return *this;
    }
    Vec3& operator*=(double s) {
        x *= s;
        y *= s;
        z *= s;
        return *this;
    }

    constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }

    constexpr Vec3 cross(const Vec3& o) const {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    double norm() const { return std::sqrt(dot(*this)); }
    constexpr double norm_squared() const { return dot(*this); }

    Vec3 normalized() const {
        const double n = norm();
        return n > 0.0 ? *this / n : Vec3{};
    }

    double distance_to(const Vec3& o) const { return (*this - o).norm(); }
};

inline constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

/// Angle between two vectors in radians, in [0, pi].
inline double angle_between(const Vec3& a, const Vec3& b) {
    const double na = a.norm();
    const double nb = b.norm();
    if (na == 0.0 || nb == 0.0) return 0.0;
    double c = a.dot(b) / (na * nb);
    c = std::fmax(-1.0, std::fmin(1.0, c));
    return std::acos(c);
}

/// Linear interpolation between points.
inline constexpr Vec3 lerp(const Vec3& a, const Vec3& b, double t) {
    return a + (b - a) * t;
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace witrack::geom
