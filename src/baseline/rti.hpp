// Radio tomographic imaging (RTI) baseline [Wilson & Patwari, IEEE TMC'10;
// paper Section 2]. The paper positions WiTrack against radio tomography:
// a dense network of RSSI sensors whose n^2 links dim when a person crosses
// them; a regularized inversion of the link-shadowing measurements yields an
// attenuation image whose blob is the person.
//
// This is a complete, self-contained implementation: perimeter sensor
// placement, the NeSh ellipse link-weight model, per-link shadowing
// measurements with noise, Tikhonov-regularized image reconstruction
// (precomputed Cholesky), and blob-centroid target extraction. The
// bench_baseline_rti harness runs the same trajectories through WiTrack and
// RTI to reproduce the paper's ">5x more accurate in 2D" comparison.
#pragma once

#include <cstddef>
#include <vector>

#include "common/random.hpp"
#include "geom/vec3.hpp"
#include "sim/environment.hpp"

namespace witrack::baseline {

struct RtiConfig {
    std::size_t nodes = 24;          ///< sensors on the area perimeter
    double grid_cell_m = 0.25;       ///< reconstruction grid resolution
    double ellipse_width_m = 0.50;   ///< NeSh weight ellipse width (lambda)
    double shadow_db = 6.0;          ///< attenuation of a fully crossed link
    double rssi_noise_db = 1.3;      ///< per-link measurement noise
    double fading_fraction = 0.8;    ///< multiplicative multipath fading on shadowed links
    double regularization = 20.0;    ///< Tikhonov weight
    double perimeter_margin_m = 0.5; ///< sensors sit this far outside the area
};

class RtiNetwork {
  public:
    RtiNetwork(RtiConfig config, const sim::MotionBounds& area, Rng rng);

    std::size_t num_nodes() const { return nodes_.size(); }
    std::size_t num_links() const { return links_.size(); }
    std::size_t grid_cells() const { return grid_x_ * grid_y_; }

    /// Simulate one RSSI snapshot: per-link attenuation change (dB) caused
    /// by a person standing at `person` (z ignored; RTI is 2D).
    std::vector<double> measure(const geom::Vec3& person);

    /// Reconstruct the attenuation image from a measurement and return the
    /// estimated 2D position (z = 0).
    geom::Vec3 estimate(const std::vector<double>& link_shadow_db) const;

    /// Convenience: measure + estimate.
    geom::Vec3 locate(const geom::Vec3& person);

    /// Attenuation image of the last estimate() call (row-major, y-major),
    /// for inspection and tests.
    const std::vector<double>& last_image() const { return last_image_; }

    const std::vector<geom::Vec3>& nodes() const { return nodes_; }

  private:
    struct Link {
        std::size_t a, b;
        double length;
    };

    double link_shadowing(const Link& link, const geom::Vec3& person) const;
    double cell_x(std::size_t ix) const;
    double cell_y(std::size_t iy) const;

    RtiConfig config_;
    sim::MotionBounds area_;
    Rng rng_;
    std::vector<geom::Vec3> nodes_;
    std::vector<Link> links_;
    std::size_t grid_x_ = 0, grid_y_ = 0;

    // Precomputed reconstruction operator M = (W^T W + a I)^-1 W^T,
    // cells x links, so estimate() is one mat-vec.
    std::vector<double> reconstruction_;  // row-major cells x links
    mutable std::vector<double> last_image_;
};

/// Distance from point p to the segment [a, b] in the xy plane.
double point_segment_distance_2d(const geom::Vec3& p, const geom::Vec3& a,
                                 const geom::Vec3& b);

}  // namespace witrack::baseline
