#include "baseline/rti.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace witrack::baseline {

using geom::Vec3;

double point_segment_distance_2d(const Vec3& p, const Vec3& a, const Vec3& b) {
    const double abx = b.x - a.x, aby = b.y - a.y;
    const double apx = p.x - a.x, apy = p.y - a.y;
    const double len_sq = abx * abx + aby * aby;
    double t = len_sq > 0.0 ? (apx * abx + apy * aby) / len_sq : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    const double cx = a.x + t * abx, cy = a.y + t * aby;
    return std::hypot(p.x - cx, p.y - cy);
}

namespace {

/// Dense Cholesky solve of (A) X = B where A is n x n SPD (row-major) and B
/// is n x m. Used once at construction to precompute the reconstruction
/// operator.
void cholesky_solve_in_place(std::vector<double>& a, std::vector<double>& b,
                             std::size_t n, std::size_t m) {
    // Factor A = L L^T in place (lower triangle).
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a[j * n + j];
        for (std::size_t k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
        if (diag <= 0.0) throw std::runtime_error("RTI: matrix not positive definite");
        const double ljj = std::sqrt(diag);
        a[j * n + j] = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double v = a[i * n + j];
            for (std::size_t k = 0; k < j; ++k) v -= a[i * n + k] * a[j * n + k];
            a[i * n + j] = v / ljj;
        }
    }
    // Solve L Y = B, then L^T X = Y, column by column.
    for (std::size_t col = 0; col < m; ++col) {
        for (std::size_t i = 0; i < n; ++i) {
            double v = b[i * m + col];
            for (std::size_t k = 0; k < i; ++k) v -= a[i * n + k] * b[k * m + col];
            b[i * m + col] = v / a[i * n + i];
        }
        for (std::size_t ii = n; ii-- > 0;) {
            double v = b[ii * m + col];
            for (std::size_t k = ii + 1; k < n; ++k)
                v -= a[k * n + ii] * b[k * m + col];
            b[ii * m + col] = v / a[ii * n + ii];
        }
    }
}

}  // namespace

RtiNetwork::RtiNetwork(RtiConfig config, const sim::MotionBounds& area, Rng rng)
    : config_(config), area_(area), rng_(rng) {
    if (config_.nodes < 6) throw std::invalid_argument("RtiNetwork: too few nodes");

    // Sensors evenly spaced around the rectangle perimeter, slightly outside
    // the monitored area, at torso height.
    const double x0 = area.x_min - config_.perimeter_margin_m;
    const double x1 = area.x_max + config_.perimeter_margin_m;
    const double y0 = area.y_min - config_.perimeter_margin_m;
    const double y1 = area.y_max + config_.perimeter_margin_m;
    const double perimeter = 2.0 * ((x1 - x0) + (y1 - y0));
    for (std::size_t i = 0; i < config_.nodes; ++i) {
        double s = perimeter * static_cast<double>(i) / static_cast<double>(config_.nodes);
        Vec3 p{0, 0, 1.0};
        if (s < x1 - x0) {
            p.x = x0 + s;
            p.y = y0;
        } else if ((s -= x1 - x0) < y1 - y0) {
            p.x = x1;
            p.y = y0 + s;
        } else if ((s -= y1 - y0) < x1 - x0) {
            p.x = x1 - s;
            p.y = y1;
        } else {
            s -= x1 - x0;
            p.x = x0;
            p.y = y1 - s;
        }
        nodes_.push_back(p);
    }

    for (std::size_t a = 0; a < nodes_.size(); ++a)
        for (std::size_t b = a + 1; b < nodes_.size(); ++b) {
            const double len = std::hypot(nodes_[a].x - nodes_[b].x,
                                          nodes_[a].y - nodes_[b].y);
            if (len < 1.0) continue;  // adjacent nodes: no tomographic value
            links_.push_back({a, b, len});
        }

    grid_x_ = static_cast<std::size_t>((area.x_max - area.x_min) / config_.grid_cell_m) + 1;
    grid_y_ = static_cast<std::size_t>((area.y_max - area.y_min) / config_.grid_cell_m) + 1;
    const std::size_t cells = grid_x_ * grid_y_;
    const std::size_t links = links_.size();

    // NeSh weights: a cell contributes to a link when it lies inside the
    // link's ellipse (approximated by distance to the segment), scaled by
    // 1/sqrt(link length).
    std::vector<double> w(links * cells, 0.0);
    for (std::size_t l = 0; l < links; ++l) {
        const auto& link = links_[l];
        const double inv_sqrt_len = 1.0 / std::sqrt(link.length);
        for (std::size_t iy = 0; iy < grid_y_; ++iy)
            for (std::size_t ix = 0; ix < grid_x_; ++ix) {
                const Vec3 cell{cell_x(ix), cell_y(iy), 0.0};
                const double d =
                    point_segment_distance_2d(cell, nodes_[link.a], nodes_[link.b]);
                if (d < config_.ellipse_width_m / 2.0)
                    w[l * cells + ix + iy * grid_x_] = inv_sqrt_len;
            }
    }

    // Precompute M = (W^T W + a I)^-1 W^T (cells x links).
    std::vector<double> wtw(cells * cells, 0.0);
    for (std::size_t l = 0; l < links; ++l)
        for (std::size_t i = 0; i < cells; ++i) {
            const double wi = w[l * cells + i];
            if (wi == 0.0) continue;
            for (std::size_t j = 0; j < cells; ++j)
                wtw[i * cells + j] += wi * w[l * cells + j];
        }
    for (std::size_t i = 0; i < cells; ++i) wtw[i * cells + i] += config_.regularization;

    std::vector<double> wt(cells * links);
    for (std::size_t l = 0; l < links; ++l)
        for (std::size_t c = 0; c < cells; ++c) wt[c * links + l] = w[l * cells + c];

    cholesky_solve_in_place(wtw, wt, cells, links);
    reconstruction_ = std::move(wt);
}

double RtiNetwork::cell_x(std::size_t ix) const {
    return area_.x_min + (static_cast<double>(ix) + 0.5) * config_.grid_cell_m;
}

double RtiNetwork::cell_y(std::size_t iy) const {
    return area_.y_min + (static_cast<double>(iy) + 0.5) * config_.grid_cell_m;
}

double RtiNetwork::link_shadowing(const Link& link, const Vec3& person) const {
    const double d =
        point_segment_distance_2d(person, nodes_[link.a], nodes_[link.b]);
    const double half = config_.ellipse_width_m / 2.0;
    if (d >= half) return 0.0;
    // Shadowing tapers as the person moves off the link axis; longer links
    // are shadowed less (energy spreads around the body).
    return config_.shadow_db * (1.0 - d / half) / std::sqrt(link.length);
}

std::vector<double> RtiNetwork::measure(const Vec3& person) {
    std::vector<double> y(links_.size());
    for (std::size_t l = 0; l < links_.size(); ++l) {
        const double shadow = link_shadowing(links_[l], person);
        // Multipath makes the shadowing depth itself unreliable, on top of
        // additive RSSI noise -- the core accuracy limit of RTI.
        y[l] = shadow * (1.0 + config_.fading_fraction * rng_.gaussian()) +
               rng_.gaussian(config_.rssi_noise_db);
    }
    return y;
}

Vec3 RtiNetwork::estimate(const std::vector<double>& link_shadow_db) const {
    if (link_shadow_db.size() != links_.size())
        throw std::invalid_argument("RtiNetwork: measurement size mismatch");
    const std::size_t cells = grid_x_ * grid_y_;
    last_image_.assign(cells, 0.0);
    for (std::size_t c = 0; c < cells; ++c) {
        double acc = 0.0;
        const double* row = &reconstruction_[c * links_.size()];
        for (std::size_t l = 0; l < links_.size(); ++l) acc += row[l] * link_shadow_db[l];
        last_image_[c] = acc;
    }

    // Blob extraction: intensity-weighted centroid of cells within 80% of
    // the peak.
    double peak = 0.0;
    for (double v : last_image_) peak = std::max(peak, v);
    if (peak <= 0.0) {
        return {(area_.x_min + area_.x_max) / 2.0, (area_.y_min + area_.y_max) / 2.0, 0.0};
    }
    const double cut = 0.8 * peak;
    double wx = 0.0, wy = 0.0, wsum = 0.0;
    for (std::size_t iy = 0; iy < grid_y_; ++iy)
        for (std::size_t ix = 0; ix < grid_x_; ++ix) {
            const double v = last_image_[ix + iy * grid_x_];
            if (v < cut) continue;
            wx += v * cell_x(ix);
            wy += v * cell_y(iy);
            wsum += v;
        }
    return {wx / wsum, wy / wsum, 0.0};
}

Vec3 RtiNetwork::locate(const Vec3& person) { return estimate(measure(person)); }

}  // namespace witrack::baseline
