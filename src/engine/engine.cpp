#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>

namespace witrack::engine {

Engine::Engine(EngineConfig config, FrameSource& source)
    : config_(std::move(config)),
      pipeline_([&] {
          // The source knows the FMCW parameters its sweeps were captured
          // with (a replayed recording carries its own); they override the
          // config so the pipeline can never process with the wrong sweep
          // geometry.
          auto pipeline = config_.pipeline_config();
          pipeline.fmcw = source.fmcw();
          return pipeline;
      }()),
      source_(&source),
      tracker_(pipeline_, source.array()) {
    // Keep the stored config coherent with the resolved pipeline: stages
    // and subscribers reading config().fmcw must see what the pipeline
    // actually runs with.
    config_.fmcw = pipeline_.fmcw;
}

void Engine::add_stage(std::unique_ptr<AppStage> stage) {
    const StageContext context{config_, pipeline_, source_->array()};
    stage->attach(context, bus_);
    stage_stats_.push_back(StageStats{std::string(stage->name()), 0, 0.0, 0.0});
    stages_.push_back(std::move(stage));
}

bool Engine::step() {
    if (!source_->next(frame_)) return false;

    const auto result = tracker_.process_frame(frame_.sweeps, frame_.time_s);

    TrackUpdateEvent update;
    update.time_s = frame_.time_s;
    update.motion_detected = result.tof.motion_detected();
    update.raw = result.raw;
    update.smoothed = result.smoothed;
    update.processing_seconds = result.processing_seconds;
    update.truth = frame_.truth;
    bus_.publish(update);

    for (std::size_t i = 0; i < stages_.size(); ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        stages_[i]->on_frame(frame_, result, bus_);
        const auto t1 = std::chrono::steady_clock::now();
        const double elapsed = std::chrono::duration<double>(t1 - t0).count();
        auto& stats = stage_stats_[i];
        ++stats.frames;
        stats.total_s += elapsed;
        stats.max_s = std::max(stats.max_s, elapsed);
    }

    ++frames_;
    return true;
}

std::size_t Engine::run() {
    std::size_t processed = 0;
    while (step()) ++processed;
    // Stages finish once per Engine: a second run() (or run() after a
    // manual step() loop) must not re-publish episode events.
    if (finished_) return processed;
    finished_ = true;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        stages_[i]->finish(bus_);
        const auto t1 = std::chrono::steady_clock::now();
        // Episode-scoped work (e.g. the pointing analysis) is accounted
        // separately so the per-frame mean/max stay meaningful.
        stage_stats_[i].finish_s += std::chrono::duration<double>(t1 - t0).count();
    }
    return processed;
}

}  // namespace witrack::engine
