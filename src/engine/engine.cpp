#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "common/serialize.hpp"

namespace witrack::engine {

std::size_t resolve_worker_count(std::size_t configured) {
    if (configured > 0) return configured;
    const char* env = std::getenv("WITRACK_WORKERS");
    if (env == nullptr) return 1;
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    // Malformed, negative (strtoul wraps a leading minus), or absurd values
    // fall back to serial rather than crash spawning threads at startup.
    constexpr unsigned long kMaxWorkers = 256;
    if (end == env || *end != '\0' || value == 0 || value > kMaxWorkers) return 1;
    return static_cast<std::size_t>(value);
}

const char* to_string(SessionState state) {
    switch (state) {
        case SessionState::kAdmitted: return "admitted";
        case SessionState::kRunning: return "running";
        case SessionState::kDraining: return "draining";
        case SessionState::kFinished: return "finished";
        case SessionState::kEvicted: return "evicted";
    }
    return "unknown";
}

Engine::Engine(EngineConfig config, std::unique_ptr<FrameSource> source)
    : Engine(std::move(config), std::move(source), nullptr, false, nullptr) {}

Engine::Engine(EngineConfig config, std::unique_ptr<FrameSource> source,
               common::WorkerPool* shared_pool, dsp::FftPlanCache* plans)
    : Engine(std::move(config), std::move(source), shared_pool, true, plans) {}

Engine::Engine(EngineConfig config, std::unique_ptr<FrameSource> owned,
               common::WorkerPool* shared_pool, bool pool_injected,
               dsp::FftPlanCache* plans)
    : config_(std::move(config)),
      owned_source_(std::move(owned)),
      source_([&]() -> FrameSource* {
          if (owned_source_ == nullptr)
              throw std::invalid_argument("Engine: null FrameSource");
          return owned_source_.get();
      }()),
      pipeline_([&] {
          // The source knows the FMCW parameters its sweeps were captured
          // with (a replayed recording carries its own); they override the
          // config so the pipeline can never process with the wrong sweep
          // geometry.
          auto pipeline = config_.pipeline_config();
          pipeline.fmcw = source_->fmcw();
          return pipeline;
      }()),
      workers_(pool_injected
                   ? (shared_pool != nullptr ? shared_pool->size() : 1)
                   : resolve_worker_count(config_.workers)),
      tracker_(pipeline_, source_->array(), plans) {
    // Keep the stored config coherent with the resolved pipeline: stages
    // and subscribers reading config().fmcw must see what the pipeline
    // actually runs with.
    config_.fmcw = pipeline_.fmcw;
    if (pool_injected) {
        active_pool_ = shared_pool;  // host-owned; possibly nullptr = serial
    } else if (workers_ > 1) {
        pool_ = std::make_unique<common::WorkerPool>(workers_);
        active_pool_ = pool_.get();
    }
    if (active_pool_ != nullptr) tracker_.set_worker_pool(active_pool_);
}

void Engine::add_stage(std::unique_ptr<AppStage> stage) {
    const StageContext context{config_, pipeline_, source_->array()};
    stage->attach(context, bus_);
    stage_stats_.push_back(StageStats{std::string(stage->name()), 0, 0.0, 0.0, 0.0});
    auto slot = std::make_unique<StageSlot>();
    slot->staging.capture_into(&slot->pending);
    slot->staging.mirror_counts_from(&bus_);
    slots_.push_back(std::move(slot));
    stages_.push_back(std::move(stage));
}

core::PipelineOutputs Engine::demanded_outputs() const {
    if (config_.outputs) return core::with_dependencies(*config_.outputs);

    core::PipelineOutputs demanded = core::PipelineOutputs::kNone;
    for (const auto& stage : stages_) demanded |= stage->required_inputs();
    // A TrackUpdateEvent carries the TOF summary plus raw and smoothed
    // positions, so one subscriber demands the whole chain.
    const bool track_subscribers = bus_.subscriber_count<TrackUpdateEvent>() > 0;
    if (track_subscribers) demanded |= core::PipelineOutputs::kAll;
    // Headless operation -- no stages, no track subscribers -- means the
    // caller drives step() by hand and reads tracker() directly; keep the
    // full pipeline running for them.
    if (stages_.empty() && !track_subscribers) return core::PipelineOutputs::kAll;
    return core::with_dependencies(demanded);
}

bool Engine::step() {
    // Finished and Evicted are terminal: once the stages' episode verdicts
    // were delivered (or the session was removed), no further frame may
    // flow -- post-verdict frames could never get episode closure.
    if (state_ == SessionState::kFinished || state_ == SessionState::kEvicted)
        return false;
    if (!source_->next(frame_)) {
        // Source exhausted: the session drains (stages still owe their
        // episode-scoped finish() work).
        if (state_ == SessionState::kAdmitted || state_ == SessionState::kRunning)
            state_ = SessionState::kDraining;
        return false;
    }
    if (state_ == SessionState::kAdmitted) state_ = SessionState::kRunning;
    quality_stats_.accumulate(frame_.sweeps.quality());

    result_ = tracker_.process_frame(frame_.sweeps, frame_.time_s,
                                     demanded_outputs());
    complete_frame();
    return true;
}

bool Engine::begin_step(dsp::FftBatch& batch) {
    // Same admission logic as step(); only the pipeline execution defers.
    if (state_ == SessionState::kFinished || state_ == SessionState::kEvicted)
        return false;
    if (!source_->next(frame_)) {
        if (state_ == SessionState::kAdmitted || state_ == SessionState::kRunning)
            state_ = SessionState::kDraining;
        return false;
    }
    if (state_ == SessionState::kAdmitted) state_ = SessionState::kRunning;
    quality_stats_.accumulate(frame_.sweeps.quality());

    tracker_.stage_frame(frame_.sweeps, frame_.time_s, demanded_outputs(),
                         batch);
    return true;
}

void Engine::finish_step() {
    result_ = tracker_.finish_frame();
    complete_frame();
}

void Engine::complete_frame() {
    // Skip even constructing the event when nobody listens: a headless
    // deployment pays nothing for the publish path.
    if (bus_.subscriber_count<TrackUpdateEvent>() > 0) {
        TrackUpdateEvent update;
        update.time_s = frame_.time_s;
        update.motion_detected = result_.tof.motion_detected();
        update.raw = result_.raw;
        update.smoothed = result_.smoothed;
        update.processing_seconds = result_.processing_seconds;
        update.truth = frame_.truth;
        update.confidence = result_.confidence;
        bus_.publish(update);
        ++track_updates_published_;
    }

    if (active_pool_ != nullptr && stages_.size() > 1) {
        run_stages_parallel();
    } else {
        run_stages_serial();
    }

    ++frames_;
}

void Engine::run_stage(std::size_t index, EventBus& bus) {
    const auto t0 = std::chrono::steady_clock::now();
    stages_[index]->on_frame(frame_, result_, bus);
    const auto t1 = std::chrono::steady_clock::now();
    const double elapsed = std::chrono::duration<double>(t1 - t0).count();
    auto& stats = stage_stats_[index];
    ++stats.frames;
    stats.total_s += elapsed;
    stats.max_s = std::max(stats.max_s, elapsed);
}

void Engine::run_stages_serial() {
    for (std::size_t i = 0; i < stages_.size(); ++i) run_stage(i, bus_);
}

void Engine::run_stages_parallel() {
    // A stage exception on a previous frame can abort before the replay
    // loop below; drop any events stranded in the staging slots so they
    // cannot be delivered alongside this frame's.
    for (auto& slot : slots_) slot->pending.clear();

    // Fan the concurrency-safe stages out; each publishes into its own
    // capturing bus (slots_[i]). parallel_for's dynamic index assignment is
    // fine because stage state and slots are index-disjoint, and its join
    // provides the happens-before for the replay below.
    try {
        active_pool_->parallel_for(stages_.size(), [this](std::size_t i) {
            if (!stages_[i]->concurrent_safe()) return;
            run_stage(i, slots_[i]->staging);
        });
    } catch (...) {
        // parallel_for joined every helper before rethrowing, so sibling
        // stages that completed have fully-captured slots. Deliver those
        // before propagating: a fall alert must not vanish because an
        // unrelated stage threw (the stage's own state already advanced
        // and would never re-publish it).
        for (auto& slot : slots_) {
            for (auto& deferred : slot->pending) deferred(bus_);
            slot->pending.clear();
        }
        throw;
    }

    // Deterministic delivery: walk the stages in attachment order, replaying
    // captured events and running the non-concurrent stages inline, so
    // subscribers observe exactly the serial schedule's event order.
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        if (stages_[i]->concurrent_safe()) {
            auto& pending = slots_[i]->pending;
            for (auto& deferred : pending) deferred(bus_);
            pending.clear();
        } else {
            run_stage(i, bus_);
        }
    }
}

std::size_t Engine::run() {
    std::size_t processed = 0;
    while (step()) ++processed;
    finish();
    return processed;
}

void Engine::finish() {
    // Stages finish once per Engine: a second run() (or run() after a
    // manual step() loop) must not re-publish episode events. An evicted
    // session's episode was aborted, not completed -- its stages never
    // publish verdicts computed from a half-processed stream.
    if (finished_ || state_ == SessionState::kEvicted) return;
    finished_ = true;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        stages_[i]->finish(bus_);
        const auto t1 = std::chrono::steady_clock::now();
        // Episode-scoped work (e.g. the pointing analysis) is accounted
        // separately so the per-frame mean/max stay meaningful.
        stage_stats_[i].finish_s += std::chrono::duration<double>(t1 - t0).count();
    }
    state_ = SessionState::kFinished;
}

void Engine::snapshot(std::ostream& out) const {
    common::StateWriter writer(out, kSnapshotMagic, kSnapshotVersion);

    writer.begin_chunk("ENG ");
    writer.u64(frames_);
    writer.u64(track_updates_published_);
    writer.boolean(finished_);
    writer.u8(static_cast<std::uint8_t>(state_));
    writer.u64(session_id_);
    // Quality accounting (snapshot v3): a restored session keeps reporting
    // cumulative fault counters, so injector <-> pipeline accounting stays
    // exact across a checkpoint/restore cycle.
    writer.u64(quality_stats_.frames);
    writer.u64(quality_stats_.degraded_frames);
    writer.u64(quality_stats_.rx_dropouts);
    writer.u64(quality_stats_.saturated_rx);
    writer.u64(quality_stats_.dropped_sweeps);
    writer.u64(quality_stats_.short_sweeps);
    writer.u64(quality_stats_.noise_bursts);
    writer.u64(quality_stats_.drift_frames);
    writer.f64(quality_stats_.health_sum);
    writer.f64(quality_stats_.min_health);
    writer.end_chunk();

    writer.begin_chunk("TRK ");
    tracker_.save_state(writer);
    writer.end_chunk();

    writer.begin_chunk("SRC ");
    source_->save_state(writer);
    writer.end_chunk();

    writer.begin_chunk("STG ");
    writer.u64(stages_.size());
    for (const auto& stage : stages_) {
        writer.str(stage->name());
        stage->save_state(writer);
    }
    writer.end_chunk();

    writer.finish();
}

void Engine::restore(std::istream& in) {
    if (frames_ != 0 || state_ != SessionState::kAdmitted)
        throw std::logic_error("Engine: restore requires a freshly constructed Engine");

    // The reader validates the entire stream (magic, version, every chunk's
    // CRC) in its constructor: any corruption throws here, before a single
    // field below is applied, so this Engine stays exactly as constructed.
    common::StateReader reader(in, kSnapshotMagic, kSnapshotVersion);

    reader.open_chunk("ENG ");
    const auto frames = static_cast<std::size_t>(reader.u64());
    const auto updates = static_cast<std::size_t>(reader.u64());
    const bool finished = reader.boolean();
    const auto state = reader.u8();
    const auto session_id = reader.u64();
    QualityStats quality;
    quality.frames = reader.u64();
    quality.degraded_frames = reader.u64();
    quality.rx_dropouts = reader.u64();
    quality.saturated_rx = reader.u64();
    quality.dropped_sweeps = reader.u64();
    quality.short_sweeps = reader.u64();
    quality.noise_bursts = reader.u64();
    quality.drift_frames = reader.u64();
    quality.health_sum = reader.f64();
    quality.min_health = reader.f64();
    if (state > static_cast<std::uint8_t>(SessionState::kEvicted))
        throw std::runtime_error("Engine: corrupt session state in snapshot");
    reader.close_chunk();

    reader.open_chunk("TRK ");
    tracker_.load_state(reader);
    reader.close_chunk();

    reader.open_chunk("SRC ");
    source_->load_state(reader);
    reader.close_chunk();

    reader.open_chunk("STG ");
    const auto stage_count = static_cast<std::size_t>(reader.u64());
    if (stage_count != stages_.size())
        throw std::runtime_error("Engine: snapshot stage count mismatch");
    for (auto& stage : stages_) {
        const auto name = reader.str();
        if (name != stage->name())
            throw std::runtime_error("Engine: snapshot stage mismatch, expected '" +
                                     std::string(stage->name()) + "', found '" +
                                     name + "'");
        stage->load_state(reader);
    }
    reader.close_chunk();

    frames_ = frames;
    track_updates_published_ = updates;
    finished_ = finished;
    state_ = static_cast<SessionState>(state);
    session_id_ = session_id;
    quality_stats_ = quality;
}

std::vector<Engine::StageStats> Engine::take_stage_stats() {
    std::vector<StageStats> snapshot = stage_stats_;
    for (auto& stats : stage_stats_) {
        stats.frames = 0;
        stats.total_s = 0.0;
        stats.max_s = 0.0;
        stats.finish_s = 0.0;
    }
    // Append the core pipeline's per-step profile (cycle counters from the
    // tracker, same snapshot-and-reset window). The entries ride the same
    // StageStats shape, so FleetStats rollups and the control plane's JSON
    // rendering pick them up with no further plumbing.
    const auto steps = tracker_.take_step_stats();
    const auto append = [&](const char* name, const core::StepCounter& c) {
        if (c.frames == 0) return;
        snapshot.push_back(StageStats{name, static_cast<std::size_t>(c.frames),
                                      c.total_seconds(), c.max_seconds(), 0.0});
    };
    append("pipeline.fft", steps.tof.fft);
    append("pipeline.subtract", steps.tof.subtract);
    append("pipeline.contour", steps.tof.contour);
    append("pipeline.denoise", steps.tof.denoise);
    append("pipeline.localize", steps.localize);
    append("pipeline.smooth", steps.smooth);
    return snapshot;
}

}  // namespace witrack::engine
