#include "engine/host.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace witrack::engine {

namespace {

double steady_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) --
/// session names and fault reasons are operator-provided free text.
void append_json_string(std::string& out, const std::string& text) {
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_field(std::string& out, const char* key, std::uint64_t value,
                  bool leading_comma = true) {
    if (leading_comma) out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(value);
}

void append_field(std::string& out, const char* key, double value,
                  bool leading_comma = true) {
    if (leading_comma) out += ',';
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"%s\":%.6g", key, value);
    out += buf;
}

void append_quality(std::string& out, const QualityStats& quality) {
    out += "{";
    append_field(out, "frames", quality.frames, false);
    append_field(out, "degraded_frames", quality.degraded_frames);
    append_field(out, "rx_dropouts", quality.rx_dropouts);
    append_field(out, "saturated_rx", quality.saturated_rx);
    append_field(out, "dropped_sweeps", quality.dropped_sweeps);
    append_field(out, "short_sweeps", quality.short_sweeps);
    append_field(out, "noise_bursts", quality.noise_bursts);
    append_field(out, "drift_frames", quality.drift_frames);
    append_field(out, "mean_health", quality.mean_health());
    append_field(out, "min_health", quality.min_health);
    out += "}";
}

void append_net(std::string& out, const NetIngestStats& net) {
    out += "{";
    append_field(out, "datagrams", net.datagrams, false);
    append_field(out, "bytes", net.bytes);
    append_field(out, "frames_delivered", net.frames_delivered);
    append_field(out, "frame_gaps", net.frame_gaps);
    append_field(out, "reorders", net.reorders);
    append_field(out, "duplicates", net.duplicates);
    append_field(out, "late_fragments", net.late_fragments);
    append_field(out, "crc_errors", net.crc_errors);
    append_field(out, "truncated", net.truncated);
    append_field(out, "bad_magic", net.bad_magic);
    append_field(out, "version_skew", net.version_skew);
    append_field(out, "malformed", net.malformed);
    append_field(out, "foreign_token", net.foreign_token);
    append_field(out, "idle_timeouts", net.idle_timeouts);
    out += "}";
}

}  // namespace

std::string to_json(const FleetStats& stats) {
    std::string out;
    out.reserve(256 + stats.sessions.size() * 192);
    out += "{";
    append_field(out, "frames", static_cast<std::uint64_t>(stats.frames), false);
    append_field(out, "wall_s", stats.wall_s);
    append_field(out, "throughput_fps", stats.throughput_fps);
    append_field(out, "sessions_admitted",
                 static_cast<std::uint64_t>(stats.sessions_admitted));
    append_field(out, "sessions_finished",
                 static_cast<std::uint64_t>(stats.sessions_finished));
    append_field(out, "sessions_evicted",
                 static_cast<std::uint64_t>(stats.sessions_evicted));
    append_field(out, "active_sessions",
                 static_cast<std::uint64_t>(stats.active_sessions));
    append_field(out, "queued_sessions",
                 static_cast<std::uint64_t>(stats.queued_sessions));
    append_field(out, "fft_batched",
                 static_cast<std::uint64_t>(stats.fft_batched));
    append_field(out, "sessions_restarted",
                 static_cast<std::uint64_t>(stats.sessions_restarted));
    out += ",\"net\":";
    append_net(out, stats.net);
    out += ",\"quality\":";
    append_quality(out, stats.quality);
    out += ",\"sessions\":[";
    for (std::size_t i = 0; i < stats.sessions.size(); ++i) {
        const SessionStats& session = stats.sessions[i];
        if (i > 0) out += ',';
        out += "{";
        append_field(out, "id", static_cast<std::uint64_t>(session.id), false);
        out += ",\"name\":";
        append_json_string(out, session.name);
        out += ",\"state\":\"";
        out += to_string(session.state);
        out += '"';
        append_field(out, "frames", static_cast<std::uint64_t>(session.frames));
        append_field(out, "mean_step_ms", session.mean_step_s() * 1e3);
        append_field(out, "max_step_ms", session.max_step_s * 1e3);
        append_field(out, "health", session.recent_health);
        if (session.restarts > 0)
            append_field(out, "restarts",
                         static_cast<std::uint64_t>(session.restarts));
        if (session.quality.degraded_frames > 0) {
            out += ",\"quality\":";
            append_quality(out, session.quality);
        }
        if (!session.fault.empty()) {
            out += ",\"fault\":";
            append_json_string(out, session.fault);
        }
        if (!session.stages.empty()) {
            out += ",\"stages\":[";
            for (std::size_t s = 0; s < session.stages.size(); ++s) {
                const Engine::StageStats& stage = session.stages[s];
                if (s > 0) out += ',';
                out += "{\"name\":";
                append_json_string(out, stage.name);
                append_field(out, "frames",
                             static_cast<std::uint64_t>(stage.frames));
                append_field(out, "mean_ms", stage.mean_s() * 1e3);
                append_field(out, "max_ms", stage.max_s * 1e3);
                out += "}";
            }
            out += "]";
        }
        if (session.net) {
            out += ",\"net\":";
            append_net(out, *session.net);
        }
        out += "}";
    }
    out += "]}";
    return out;
}

EngineHost::EngineHost(HostConfig config)
    : config_(config),
      workers_(resolve_worker_count(config.workers)),
      plans_(config.plan_cache != nullptr ? config.plan_cache
                                          : &dsp::FftPlanCache::global()) {
    if (config_.max_sessions == 0)
        throw std::invalid_argument("EngineHost: max_sessions must be >= 1");
    if (workers_ > 1) pool_ = std::make_unique<common::WorkerPool>(workers_);
    window_started_s_ = steady_seconds();
}

SessionId EngineHost::admit(std::string name, EngineConfig config,
                            std::unique_ptr<FrameSource> source) {
    const bool full = active_sessions() >= config_.max_sessions;
    if (full && !config_.queue_when_full)
        throw std::runtime_error("EngineHost: admission rejected, " +
                                 std::to_string(config_.max_sessions) +
                                 " sessions already active");

    auto session = std::make_unique<Session>();
    session->id = next_id_++;
    session->name = std::move(name);
    session->queued = full;
    // The fleet-session Engine: parallelism from the shared pool (the
    // host's decision, not the session config's), FFT plans from the shared
    // cache.
    session->engine = std::make_unique<Engine>(std::move(config),
                                               std::move(source), pool_.get(),
                                               plans_);
    session->engine->set_session_id(session->id);
    const SessionId id = session->id;
    sessions_.push_back(std::move(session));
    ++admitted_total_;
    return id;
}

SessionId EngineHost::admit_restartable(
    std::string name, EngineConfig config, SourceFactory factory,
    const std::function<void(Engine&)>& wire_stages) {
    if (!factory)
        throw std::invalid_argument(
            "EngineHost: admit_restartable needs a source factory");
    auto source = factory();
    // Wire the initial incarnation exactly as a restart would.
    EngineConfig config_copy = config;
    const SessionId id = admit(std::move(name), std::move(config),
                               std::move(source));
    Session* session = find(id);
    session->engine_config = std::move(config_copy);
    session->factory = std::move(factory);
    session->wire_stages = wire_stages;
    if (session->wire_stages) session->wire_stages(*session->engine);
    return id;
}

void EngineHost::checkpoint_session(SessionId id, std::ostream& out) const {
    const Session* session = find(id);
    if (session == nullptr)
        throw std::out_of_range("EngineHost: unknown session " + std::to_string(id));
    session->engine->snapshot(out);
}

SessionId EngineHost::restore_session(
    std::string name, EngineConfig config, std::unique_ptr<FrameSource> source,
    std::istream& snapshot, const std::function<void(Engine&)>& wire_stages) {
    const bool full = active_sessions() >= config_.max_sessions;
    if (full && !config_.queue_when_full)
        throw std::runtime_error("EngineHost: admission rejected, " +
                                 std::to_string(config_.max_sessions) +
                                 " sessions already active");

    // Build and restore the Engine BEFORE registering anything: a corrupt
    // snapshot throws out of restore() and the host -- including every live
    // session -- is left exactly as it was.
    auto engine = std::make_unique<Engine>(std::move(config), std::move(source),
                                           pool_.get(), plans_);
    if (wire_stages) wire_stages(*engine);
    engine->restore(snapshot);

    auto session = std::make_unique<Session>();
    session->id = next_id_++;
    session->name = std::move(name);
    session->queued = full;
    session->engine = std::move(engine);
    session->engine->set_session_id(session->id);
    const SessionId id = session->id;
    sessions_.push_back(std::move(session));
    ++admitted_total_;
    return id;
}

EngineHost::Session* EngineHost::find(SessionId id) {
    for (auto& session : sessions_)
        if (session->id == id) return session.get();
    return nullptr;
}

const EngineHost::Session* EngineHost::find(SessionId id) const {
    for (const auto& session : sessions_)
        if (session->id == id) return session.get();
    return nullptr;
}

Engine* EngineHost::session(SessionId id) {
    Session* found = find(id);
    return found != nullptr ? found->engine.get() : nullptr;
}

const Engine* EngineHost::session(SessionId id) const {
    const Session* found = find(id);
    return found != nullptr ? found->engine.get() : nullptr;
}

SessionState EngineHost::state(SessionId id) const {
    const Session* found = find(id);
    if (found == nullptr)
        throw std::out_of_range("EngineHost: unknown session id " +
                                std::to_string(id));
    return found->engine->session_state();
}

void EngineHost::pause(SessionId id) {
    Session* found = find(id);
    if (found != nullptr) found->paused = true;
}

void EngineHost::resume(SessionId id) {
    Session* found = find(id);
    if (found == nullptr) return;
    found->paused = false;
    found->lag = 0;
}

bool EngineHost::terminal(const Session& session) const {
    const SessionState state = session.engine->session_state();
    return state == SessionState::kFinished || state == SessionState::kEvicted;
}

bool EngineHost::evict(SessionId id, std::string reason) {
    Session* found = find(id);
    if (found == nullptr || terminal(*found)) return false;
    evict_session(*found, std::move(reason));
    promote_queued();
    return true;
}

void EngineHost::evict_session(Session& session, std::string reason) {
    session.fault = std::move(reason);
    session.engine->mark_evicted();
    session.accounted = true;
    ++evicted_total_;
}

void EngineHost::promote_queued() {
    // FIFO promotion in admission order: the vector already is that order.
    for (auto& session : sessions_) {
        if (active_sessions() >= config_.max_sessions) return;
        if (session->queued && !terminal(*session)) session->queued = false;
    }
}

std::size_t EngineHost::reap() {
    settle();  // count (and promote around) out-of-band finishes first
    const std::size_t before = sessions_.size();
    std::erase_if(sessions_, [this](const std::unique_ptr<Session>& session) {
        return terminal(*session);
    });
    return before - sessions_.size();
}

std::size_t EngineHost::active_sessions() const {
    std::size_t count = 0;
    for (const auto& session : sessions_)
        if (!session->queued && !terminal(*session)) ++count;
    return count;
}

std::size_t EngineHost::queued_sessions() const {
    std::size_t count = 0;
    for (const auto& session : sessions_)
        if (session->queued && !terminal(*session)) ++count;
    return count;
}

void EngineHost::settle() {
    // Sessions can reach a terminal state outside the scheduler: session()
    // hands out the Engine*, and a caller may run()/finish() it directly.
    // Catch up the lifetime counters and hand the freed slots to the queue,
    // so an out-of-band finish never starves a queued tenant.
    for (auto& session : sessions_) {
        if (session->accounted || !terminal(*session)) continue;
        session->accounted = true;
        if (session->engine->session_state() == SessionState::kFinished)
            ++finished_total_;
        else
            ++evicted_total_;
        promote_queued();
    }
}

std::size_t EngineHost::step_all() {
    settle();
    const std::size_t processed =
        config_.batch_fft ? round_batched() : round_serial();
    watch_health();
    ++rounds_;
    return processed;
}

void EngineHost::watch_health() {
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
        Session& session = *sessions_[i];
        if (session.queued || terminal(session)) continue;
        // Quality deltas since the last round roll into this session's
        // tumbling watchdog window. Restarts keep the marks consistent:
        // the restored engine resumes the cumulative counters.
        const QualityStats& cumulative = session.engine->quality_stats();
        if (cumulative.frames < session.mark_frames) {
            // Caller restored this engine out-of-band to an older cursor;
            // re-anchor instead of producing a negative delta.
            session.mark_frames = cumulative.frames;
            session.mark_health_sum = cumulative.health_sum;
            continue;
        }
        session.window_frames += cumulative.frames - session.mark_frames;
        session.window_health_sum +=
            cumulative.health_sum - session.mark_health_sum;
        session.mark_frames = cumulative.frames;
        session.mark_health_sum = cumulative.health_sum;
        if (session.window_frames == 0) continue;
        session.recent_health = session.window_health_sum /
                                static_cast<double>(session.window_frames);
        if (session.window_frames < config_.health_window) continue;
        const double window_health = session.recent_health;
        session.window_frames = 0;
        session.window_health_sum = 0.0;
        if (config_.health_threshold <= 0.0 || !session.factory) continue;
        if (window_health >= config_.health_threshold) continue;
        if (session.restarts >= config_.max_restarts) {
            evict_session(session,
                          "health " + std::to_string(window_health) +
                              " below threshold after " +
                              std::to_string(session.restarts) + " restarts");
            promote_queued();
            continue;
        }
        restart_session(session);
    }
}

void EngineHost::restart_session(Session& session) {
    try {
        // In-memory checkpoint -> fresh engine (fresh source from the
        // factory, stages re-wired) -> restore -> swap into the same
        // record. Siblings never observe any of it.
        std::stringstream snapshot;
        session.engine->snapshot(snapshot);
        auto engine = std::make_unique<Engine>(session.engine_config,
                                               session.factory(), pool_.get(),
                                               plans_);
        if (session.wire_stages) session.wire_stages(*engine);
        engine->restore(snapshot);
        session.engine = std::move(engine);
        session.engine->set_session_id(session.id);
        ++session.restarts;
        ++restarts_total_;
    } catch (const std::exception& error) {
        evict_session(session,
                      std::string("watchdog restart failed: ") + error.what());
        promote_queued();
    }
}

void EngineHost::lag_session(Session& session) {
    // Backpressure: a session that cannot consume its frames falls
    // behind the stream one frame per round. A live radio drops
    // those frames on the floor; past the configured lag the
    // session's tracking state is stale beyond recovery and the
    // host reclaims the slot.
    ++session.lag;
    if (config_.max_frame_lag > 0 && session.lag > config_.max_frame_lag) {
        evict_session(session,
                      "frame lag " + std::to_string(session.lag) +
                          " exceeded max_frame_lag " +
                          std::to_string(config_.max_frame_lag));
        promote_queued();
    }
}

std::size_t EngineHost::round_serial() {
    std::size_t processed = 0;
    // Fair round-robin over a stable admission order: each schedulable
    // session consumes exactly one frame before any session sees a second.
    // Index loop on purpose -- step() can run stages that admit sessions.
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
        Session& session = *sessions_[i];
        if (session.queued || terminal(session)) continue;

        if (session.paused) {
            lag_session(session);
            continue;
        }

        try {
            const auto t0 = std::chrono::steady_clock::now();
            const bool produced = session.engine->step();
            const auto t1 = std::chrono::steady_clock::now();
            if (produced) {
                const double elapsed =
                    std::chrono::duration<double>(t1 - t0).count();
                ++session.frames;
                session.total_step_s += elapsed;
                session.max_step_s = std::max(session.max_step_s, elapsed);
                session.lag = 0;
                ++processed;
                ++frames_window_;
            } else {
                // Source exhausted: Draining -> deliver the episode
                // finish() work -> Finished, and hand the slot on.
                session.engine->finish();
                session.accounted = true;
                ++finished_total_;
                promote_queued();
            }
        } catch (const std::exception& error) {
            // Fault isolation: the throwing session is evicted; the
            // remaining sessions keep their slots and their state.
            evict_session(session, std::string("step() threw: ") + error.what());
            promote_queued();
        } catch (...) {
            evict_session(session, "step() threw a non-std exception");
            promote_queued();
        }
    }
    return processed;
}

std::size_t EngineHost::round_batched() {
    std::size_t processed = 0;
    // Two-phase round: every ready session begin_step()s its frame into the
    // shared batch, the batch runs once (same-shape transforms across
    // sessions execute as one lane-interleaved pass), then every staged
    // session finish_step()s. Stages run during finish may admit new
    // sessions; those land past `end` and get their own sub-round, so the
    // fairness contract (one frame per session per round) is preserved.
    struct Staged {
        std::size_t index;
        double begin_s;  ///< this session's own staging wall clock
    };
    std::vector<Staged> staged;
    std::size_t start = 0;
    while (start < sessions_.size()) {
        const std::size_t end = sessions_.size();
        staged.clear();
        batch_.clear();

        for (std::size_t i = start; i < end; ++i) {
            Session& session = *sessions_[i];
            if (session.queued || terminal(session)) continue;
            if (session.paused) {
                lag_session(session);
                continue;
            }
            try {
                const auto t0 = std::chrono::steady_clock::now();
                const bool produced = session.engine->begin_step(batch_);
                const auto t1 = std::chrono::steady_clock::now();
                if (produced) {
                    staged.push_back(
                        {i, std::chrono::duration<double>(t1 - t0).count()});
                } else {
                    session.engine->finish();
                    session.accounted = true;
                    ++finished_total_;
                    promote_queued();
                }
            } catch (const std::exception& error) {
                evict_session(session,
                              std::string("begin_step() threw: ") + error.what());
                promote_queued();
            } catch (...) {
                evict_session(session, "begin_step() threw a non-std exception");
                promote_queued();
            }
        }

        // The shared pass. Float64 keeps fleet output bit-identical to the
        // serial schedule; only batches of >= 2 count as shared work.
        fft_batched_window_ += batch_.run(batch_scratch_);

        for (const Staged& item : staged) {
            Session& session = *sessions_[item.index];
            // A sibling's finish_step may have run a stage that evicted
            // this session after it staged; its computed spectra are simply
            // abandoned with the rest of its state.
            if (terminal(session)) continue;
            try {
                const auto t0 = std::chrono::steady_clock::now();
                session.engine->finish_step();
                const auto t1 = std::chrono::steady_clock::now();
                const double elapsed =
                    item.begin_s + std::chrono::duration<double>(t1 - t0).count();
                ++session.frames;
                session.total_step_s += elapsed;
                session.max_step_s = std::max(session.max_step_s, elapsed);
                session.lag = 0;
                ++processed;
                ++frames_window_;
            } catch (const std::exception& error) {
                evict_session(session,
                              std::string("finish_step() threw: ") + error.what());
                promote_queued();
            } catch (...) {
                evict_session(session, "finish_step() threw a non-std exception");
                promote_queued();
            }
        }

        start = end;
    }
    return processed;
}

bool EngineHost::progress_possible() const {
    for (const auto& session : sessions_) {
        if (session->queued || terminal(*session)) continue;
        if (!session->paused) return true;
        // A paused session still progresses toward eviction when lag is
        // bounded; with max_frame_lag == 0 it would spin forever.
        if (config_.max_frame_lag > 0) return true;
    }
    return false;
}

std::size_t EngineHost::run(std::size_t max_frames) {
    std::size_t processed = 0;
    for (;;) {
        settle();  // out-of-band finishes free slots before the check below
        if (!progress_possible()) break;
        if (max_frames > 0 && processed >= max_frames) break;
        processed += step_all();
    }
    return processed;
}

FleetStats EngineHost::take_fleet_stats() {
    FleetStats stats;
    const double now_s = steady_seconds();
    stats.frames = frames_window_;
    stats.wall_s = now_s - window_started_s_;
    stats.throughput_fps =
        stats.wall_s > 0.0 ? static_cast<double>(stats.frames) / stats.wall_s : 0.0;
    stats.sessions_admitted = admitted_total_;
    stats.sessions_finished = finished_total_;
    stats.sessions_evicted = evicted_total_;
    stats.active_sessions = active_sessions();
    stats.queued_sessions = queued_sessions();
    stats.fft_batched = fft_batched_window_;
    stats.sessions_restarted = restarts_total_;

    stats.sessions.reserve(sessions_.size());
    for (auto& session : sessions_) {
        SessionStats rollup;
        rollup.id = session->id;
        rollup.name = session->name;
        rollup.state = session->engine->session_state();
        rollup.frames = session->frames;
        rollup.total_step_s = session->total_step_s;
        rollup.max_step_s = session->max_step_s;
        rollup.stages = session->engine->take_stage_stats();
        rollup.fault = session->fault;
        rollup.net = session->engine->net_stats();
        if (rollup.net) stats.net += *rollup.net;
        rollup.quality = session->engine->quality_stats();
        stats.quality += rollup.quality;
        rollup.recent_health = session->recent_health;
        rollup.restarts = session->restarts;
        stats.sessions.push_back(std::move(rollup));

        session->frames = 0;
        session->total_step_s = 0.0;
        session->max_step_s = 0.0;
    }

    frames_window_ = 0;
    fft_batched_window_ = 0;
    window_started_s_ = now_s;
    return stats;
}

std::string to_json(const std::vector<EngineHost::SessionHealth>& sessions) {
    std::string out;
    out.reserve(64 + sessions.size() * 256);
    out += "{\"sessions\":[";
    for (std::size_t i = 0; i < sessions.size(); ++i) {
        const EngineHost::SessionHealth& session = sessions[i];
        if (i > 0) out += ',';
        out += "{";
        append_field(out, "id", static_cast<std::uint64_t>(session.id), false);
        out += ",\"name\":";
        append_json_string(out, session.name);
        out += ",\"state\":\"";
        out += to_string(session.state);
        out += '"';
        append_field(out, "health", session.recent_health);
        out += ",\"degraded\":";
        out += session.degraded ? "true" : "false";
        append_field(out, "restarts",
                     static_cast<std::uint64_t>(session.restarts));
        out += ",\"quality\":";
        append_quality(out, session.quality);
        out += "}";
    }
    out += "]}";
    return out;
}

std::vector<EngineHost::SessionHealth> EngineHost::session_health() const {
    std::vector<SessionHealth> out;
    out.reserve(sessions_.size());
    for (const auto& session : sessions_) {
        SessionHealth health;
        health.id = session->id;
        health.name = session->name;
        health.state = session->engine->session_state();
        health.quality = session->engine->quality_stats();
        health.recent_health = session->recent_health;
        health.restarts = session->restarts;
        health.degraded = session->recent_health < 1.0;
        out.push_back(std::move(health));
    }
    return out;
}

}  // namespace witrack::engine
