// Typed event bus of the streaming engine. The pipeline publishes one
// TrackUpdateEvent per frame and the application stages publish their
// domain events (falls, pointing gestures, multi-person estimates);
// applications subscribe to exactly the event types they care about instead
// of hand-wiring themselves into the frame loop.
//
// Delivery is synchronous and in subscription order. Callbacks must not
// subscribe or unsubscribe on the same bus while a publish is in flight.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/fall.hpp"
#include "core/localize.hpp"
#include "core/multi.hpp"
#include "core/pointing.hpp"
#include "engine/frame_source.hpp"

namespace witrack::engine {

/// Published by the Engine after every processed frame.
struct TrackUpdateEvent {
    double time_s = 0.0;
    bool motion_detected = false;            ///< antenna quorum saw motion
    std::optional<core::TrackPoint> raw;      ///< unsmoothed solver output
    std::optional<core::TrackPoint> smoothed; ///< Kalman-smoothed 3D position
    double processing_seconds = 0.0;          ///< pipeline latency this frame
    std::optional<GroundTruth> truth;         ///< evaluation reference, if known
    /// Track confidence: the frame's hardware health score, zeroed when
    /// localization was demanded but produced no fix. 1.0 on pristine
    /// frames; dips while hardware faults are active and recovers.
    double confidence = 1.0;
};

/// Published by the fall-monitor stage the moment a fall completes.
struct FallEvent {
    double time_s = 0.0;
    core::FallDetector::Analysis analysis;
};

/// Published by the pointing stage once a valid arm gesture is recovered.
struct PointingEvent {
    core::PointingResult pointing;
};

/// Published by the multi-person stage after every processed frame.
struct PersonsEvent {
    double time_s = 0.0;
    std::vector<core::MultiPersonTracker::PersonEstimate> people;
    std::optional<GroundTruth> truth;
};

using SubscriptionId = std::uint64_t;

class EventBus {
  public:
    /// A recorded publish, replayable onto another bus.
    using DeferredEvent = std::function<void(EventBus&)>;

    /// Register a callback for one event type; returns a token for
    /// unsubscribe(). Callbacks fire in subscription order.
    template <typename E>
    SubscriptionId subscribe(std::function<void(const E&)> callback) {
        const SubscriptionId id = next_id_++;
        channel<E>().push_back({id, std::move(callback)});
        return id;
    }

    /// Remove one subscription; false if the token is unknown (or already
    /// removed) for this event type.
    template <typename E>
    bool unsubscribe(SubscriptionId id) {
        auto& subscribers = channel<E>();
        for (std::size_t i = 0; i < subscribers.size(); ++i) {
            if (subscribers[i].id != id) continue;
            subscribers.erase(subscribers.begin() + static_cast<std::ptrdiff_t>(i));
            return true;
        }
        return false;
    }

    /// Deliver `event` to every subscriber of its type, in order -- unless
    /// this bus is in capture mode, in which case the publish is recorded
    /// into the sink for later replay instead.
    template <typename E>
    void publish(const E& event) const {
        if (capture_ != nullptr) {
            capture_->push_back(
                [event](EventBus& target) { target.publish(event); });
            return;
        }
        for (const auto& subscriber : channel<E>()) subscriber.callback(event);
    }

    /// Subscribers currently registered for one event type. The Engine uses
    /// this to skip building events nobody listens to. A staging bus
    /// mirrors the counts of the real bus (see mirror_counts_from), so
    /// stages gating publishes on this query behave identically in the
    /// serial and parallel schedules.
    template <typename E>
    std::size_t subscriber_count() const {
        if (count_source_ != nullptr) return count_source_->subscriber_count<E>();
        return channel<E>().size();
    }

    /// Capture mode, the deterministic half of the parallel scheduler: each
    /// concurrently-running stage publishes into its own capturing bus, and
    /// after the join the Engine replays the sinks onto the real bus in
    /// stage-attachment order -- delivery order is identical to a serial
    /// run. nullptr restores immediate delivery.
    void capture_into(std::vector<DeferredEvent>* sink) { capture_ = sink; }

    /// Answer subscriber_count() queries with `source`'s counts instead of
    /// this bus's own (nullptr restores local counts). Paired with
    /// capture_into on staging buses so a stage that skips building an
    /// event when nobody listens makes the same decision it would against
    /// the real bus. The source must not gain or lose subscribers while a
    /// staged stage is running.
    void mirror_counts_from(const EventBus* source) { count_source_ = source; }

  private:
    template <typename E>
    struct Subscriber {
        SubscriptionId id;
        std::function<void(const E&)> callback;
    };
    template <typename E>
    using Channel = std::vector<Subscriber<E>>;

    template <typename E>
    Channel<E>& channel() {
        if constexpr (std::is_same_v<E, TrackUpdateEvent>) return track_updates_;
        else if constexpr (std::is_same_v<E, FallEvent>) return falls_;
        else if constexpr (std::is_same_v<E, PointingEvent>) return pointings_;
        else if constexpr (std::is_same_v<E, PersonsEvent>) return persons_;
        else static_assert(!sizeof(E), "EventBus: unknown event type");
    }
    template <typename E>
    const Channel<E>& channel() const {
        return const_cast<EventBus*>(this)->channel<E>();
    }

    Channel<TrackUpdateEvent> track_updates_;
    Channel<FallEvent> falls_;
    Channel<PointingEvent> pointings_;
    Channel<PersonsEvent> persons_;
    SubscriptionId next_id_ = 1;
    std::vector<DeferredEvent>* capture_ = nullptr;
    const EventBus* count_source_ = nullptr;
};

}  // namespace witrack::engine
