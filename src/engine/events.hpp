// Typed event bus of the streaming engine. The pipeline publishes one
// TrackUpdateEvent per frame and the application stages publish their
// domain events (falls, pointing gestures, multi-person estimates);
// applications subscribe to exactly the event types they care about instead
// of hand-wiring themselves into the frame loop.
//
// Delivery is synchronous and in subscription order. Callbacks must not
// subscribe or unsubscribe on the same bus while a publish is in flight.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/fall.hpp"
#include "core/localize.hpp"
#include "core/multi.hpp"
#include "core/pointing.hpp"
#include "engine/frame_source.hpp"

namespace witrack::engine {

/// Published by the Engine after every processed frame.
struct TrackUpdateEvent {
    double time_s = 0.0;
    bool motion_detected = false;            ///< antenna quorum saw motion
    std::optional<core::TrackPoint> raw;      ///< unsmoothed solver output
    std::optional<core::TrackPoint> smoothed; ///< Kalman-smoothed 3D position
    double processing_seconds = 0.0;          ///< pipeline latency this frame
    std::optional<GroundTruth> truth;         ///< evaluation reference, if known
};

/// Published by the fall-monitor stage the moment a fall completes.
struct FallEvent {
    double time_s = 0.0;
    core::FallDetector::Analysis analysis;
};

/// Published by the pointing stage once a valid arm gesture is recovered.
struct PointingEvent {
    core::PointingResult pointing;
};

/// Published by the multi-person stage after every processed frame.
struct PersonsEvent {
    double time_s = 0.0;
    std::vector<core::MultiPersonTracker::PersonEstimate> people;
    std::optional<GroundTruth> truth;
};

using SubscriptionId = std::uint64_t;

class EventBus {
  public:
    /// Register a callback for one event type; returns a token for
    /// unsubscribe(). Callbacks fire in subscription order.
    template <typename E>
    SubscriptionId subscribe(std::function<void(const E&)> callback) {
        const SubscriptionId id = next_id_++;
        channel<E>().push_back({id, std::move(callback)});
        return id;
    }

    /// Remove one subscription; false if the token is unknown (or already
    /// removed) for this event type.
    template <typename E>
    bool unsubscribe(SubscriptionId id) {
        auto& subscribers = channel<E>();
        for (std::size_t i = 0; i < subscribers.size(); ++i) {
            if (subscribers[i].id != id) continue;
            subscribers.erase(subscribers.begin() + static_cast<std::ptrdiff_t>(i));
            return true;
        }
        return false;
    }

    /// Deliver `event` to every subscriber of its type, in order.
    template <typename E>
    void publish(const E& event) const {
        for (const auto& subscriber : channel<E>()) subscriber.callback(event);
    }

    template <typename E>
    std::size_t subscriber_count() const {
        return channel<E>().size();
    }

  private:
    template <typename E>
    struct Subscriber {
        SubscriptionId id;
        std::function<void(const E&)> callback;
    };
    template <typename E>
    using Channel = std::vector<Subscriber<E>>;

    template <typename E>
    Channel<E>& channel() {
        if constexpr (std::is_same_v<E, TrackUpdateEvent>) return track_updates_;
        else if constexpr (std::is_same_v<E, FallEvent>) return falls_;
        else if constexpr (std::is_same_v<E, PointingEvent>) return pointings_;
        else if constexpr (std::is_same_v<E, PersonsEvent>) return persons_;
        else static_assert(!sizeof(E), "EventBus: unknown event type");
    }
    template <typename E>
    const Channel<E>& channel() const {
        return const_cast<EventBus*>(this)->channel<E>();
    }

    Channel<TrackUpdateEvent> track_updates_;
    Channel<FallEvent> falls_;
    Channel<PointingEvent> pointings_;
    Channel<PersonsEvent> persons_;
    SubscriptionId next_id_ = 1;
};

}  // namespace witrack::engine
