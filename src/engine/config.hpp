// One configuration front door for the whole stack. Before the engine,
// every example duplicated the same plumbing -- build a ScenarioConfig, copy
// its FmcwParams into a PipelineConfig, keep seeds and noise models in sync
// by hand. EngineConfig holds each shared knob exactly once and derives the
// per-layer configs (pipeline here; scenario and frontend in the sources
// that need them, so this header stays free of sim/hw dependencies).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/constants.hpp"
#include "core/params.hpp"
#include "core/pipeline_steps.hpp"
#include "rf/noise.hpp"

namespace witrack::engine {

/// Resolve a configured worker count to the schedule actually used:
/// 0 defers to the WITRACK_WORKERS environment variable so CI (and
/// operators) can flip a whole binary to the parallel schedule without
/// touching call sites; absent, malformed or absurd (> 256) values mean
/// serial (1). The one definition shared by the standalone Engine and
/// EngineHost, so both resolve identically.
std::size_t resolve_worker_count(std::size_t configured);

struct EngineConfig {
    /// FMCW sweep geometry: the single source of truth shared by the
    /// simulator, the hardware front end and the processing pipeline.
    FmcwParams fmcw;

    /// Receiver noise model (simulated deployments).
    rf::NoiseModel noise;

    /// Deployment geometry: the paper's T array behind (or inside) the wall.
    bool through_wall = true;
    double antenna_separation_m = 1.0;
    double device_height_m = 1.3;
    /// Add the redundant fourth receive antenna (4-RX cross array): the
    /// localizer can then drop any one antenna and keep a 3D fix.
    bool cross_array = false;

    /// Simulation reproducibility and speed knobs (ignored by live sources).
    std::uint64_t seed = 1;
    bool fast_capture = false;
    bool model_sweep_nonlinearity = true;
    bool second_person = false;

    /// Processing-pipeline tuning. `pipeline.fmcw` is overwritten by
    /// pipeline_config() so the sweep geometry can never diverge.
    core::PipelineConfig pipeline;

    /// Scheduler parallelism: number of worker threads for the per-RX TOF
    /// fan-out and concurrent app stages. 0 = read the WITRACK_WORKERS
    /// environment variable (absent -> serial); 1 = serial. Parallel output
    /// is bit-identical to serial.
    std::size_t workers = 0;

    /// Demand override for the scheduler. Unset (the default), the Engine
    /// unions AppStage::required_inputs() with event-bus subscriptions and
    /// runs only the demanded pipeline steps; set, exactly these outputs
    /// (closed over dependencies) are computed regardless of consumers --
    /// useful for benchmarks and for driving the tracker directly.
    std::optional<core::PipelineOutputs> outputs;

    // ------------------------------------------------------ fluent builder

    EngineConfig& with_fmcw(const FmcwParams& params) {
        fmcw = params;
        return *this;
    }
    EngineConfig& with_seed(std::uint64_t s) {
        seed = s;
        return *this;
    }
    EngineConfig& with_through_wall(bool enabled) {
        through_wall = enabled;
        return *this;
    }
    EngineConfig& with_cross_array(bool enabled) {
        cross_array = enabled;
        return *this;
    }
    EngineConfig& with_fast_capture(bool enabled) {
        fast_capture = enabled;
        return *this;
    }
    EngineConfig& with_second_person(bool enabled) {
        second_person = enabled;
        return *this;
    }
    EngineConfig& with_contour_peaks(std::size_t peaks) {
        pipeline.contour_peaks = peaks;
        return *this;
    }
    /// Bound the tracker's retained history (0 = keep everything); see
    /// PipelineConfig::max_track_history.
    EngineConfig& with_track_history(std::size_t max_points) {
        pipeline.max_track_history = max_points;
        return *this;
    }
    EngineConfig& with_noise(const rf::NoiseModel& model) {
        noise = model;
        return *this;
    }
    EngineConfig& with_workers(std::size_t count) {
        workers = count;
        return *this;
    }
    EngineConfig& with_outputs(core::PipelineOutputs demanded) {
        outputs = demanded;
        return *this;
    }

    /// The pipeline configuration with the shared FMCW parameters applied.
    core::PipelineConfig pipeline_config() const {
        core::PipelineConfig p = pipeline;
        p.fmcw = fmcw;
        return p;
    }
};

}  // namespace witrack::engine
