// The one ingestion seam of the streaming engine: every producer of
// baseband frames -- the simulator, a recorded session on disk, or the FMCW
// hardware front end -- implements FrameSource, and everything downstream
// (Engine, Recorder, tests) consumes frames through it without knowing
// which world they came from.
#pragma once

#include <optional>
#include <stdexcept>

#include "common/constants.hpp"
#include "common/frame_buffer.hpp"
#include "geom/array_geometry.hpp"

namespace witrack::common {
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::engine {

/// Reference positions for evaluation. The simulator fills them from the
/// motion script (the paper's VICON stand-in) and the replay format
/// preserves them; live hardware leaves them empty.
struct GroundTruth {
    geom::Vec3 position;                    ///< person 1 body centre
    std::optional<geom::Vec3> position2;    ///< person 2, if present
};

/// One frame of baseband sweeps plus capture metadata. The FrameBuffer is
/// reused across next() calls, so a long-lived Frame keeps the streaming
/// loop allocation-free at steady state.
struct Frame {
    double time_s = 0.0;
    FrameBuffer sweeps;                 ///< contiguous rx-major baseband
    std::optional<GroundTruth> truth;   ///< evaluation reference, if known
};

class FrameSource {
  public:
    virtual ~FrameSource() = default;

    /// Produce the next frame into `frame`; false when the stream has ended.
    virtual bool next(Frame& frame) = 0;

    /// Antenna geometry of the deployment this stream was captured with.
    virtual const geom::ArrayGeometry& array() const = 0;

    /// FMCW parameters the sweeps were generated with.
    virtual const FmcwParams& fmcw() const = 0;

    /// Serialize the stream cursor (and any generator state) so a restored
    /// session resumes at the exact frame a snapshot was taken. Sources
    /// that cannot be resumed (e.g. live hardware) keep the throwing
    /// default, which makes Engine::snapshot fail loudly instead of
    /// producing a snapshot that silently restarts the stream.
    virtual void save_state(common::StateWriter&) const {
        throw std::runtime_error("FrameSource: source does not support snapshots");
    }

    /// Restore the cursor written by save_state into a freshly-constructed
    /// source. Symmetric with save_state; same throwing default.
    virtual void load_state(common::StateReader&) {
        throw std::runtime_error("FrameSource: source does not support snapshots");
    }
};

}  // namespace witrack::engine
