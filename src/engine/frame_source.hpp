// The one ingestion seam of the streaming engine: every producer of
// baseband frames -- the simulator, a recorded session on disk, or the FMCW
// hardware front end -- implements FrameSource, and everything downstream
// (Engine, Recorder, tests) consumes frames through it without knowing
// which world they came from.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "common/constants.hpp"
#include "common/frame_buffer.hpp"
#include "geom/array_geometry.hpp"

namespace witrack::common {
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::engine {

/// Reference positions for evaluation. The simulator fills them from the
/// motion script (the paper's VICON stand-in) and the replay format
/// preserves them; live hardware leaves them empty.
struct GroundTruth {
    geom::Vec3 position;                    ///< person 1 body centre
    std::optional<geom::Vec3> position2;    ///< person 2, if present
};

/// One frame of baseband sweeps plus capture metadata. The FrameBuffer is
/// reused across next() calls, so a long-lived Frame keeps the streaming
/// loop allocation-free at steady state.
struct Frame {
    double time_s = 0.0;
    FrameBuffer sweeps;                 ///< contiguous rx-major baseband
    std::optional<GroundTruth> truth;   ///< evaluation reference, if known
};

/// Ingestion counters of a network-fed source (net::NetSource), cumulative
/// over the source's lifetime. Defined here -- not in src/net/ -- because
/// this is the seam where EngineHost reads them into FleetStats without the
/// engine layer depending on the network layer. Datagram-level counters
/// (crc_errors, truncated, bad_magic, version_skew) cover datagrams that
/// never decoded; frame-level counters (frame_gaps, reorders, duplicates,
/// late_fragments) come from per-sender sequence tracking.
struct NetIngestStats {
    std::uint64_t datagrams = 0;         ///< datagrams accepted (decoded OK)
    std::uint64_t bytes = 0;             ///< payload + header bytes accepted
    std::uint64_t frames_delivered = 0;  ///< frames handed to the Engine
    std::uint64_t frame_gaps = 0;        ///< frame seqs never delivered
    std::uint64_t reorders = 0;          ///< datagrams that arrived out of order
    std::uint64_t duplicates = 0;        ///< fragments already held
    std::uint64_t late_fragments = 0;    ///< fragments of already-closed frames
    std::uint64_t crc_errors = 0;        ///< datagrams dropped: CRC mismatch
    std::uint64_t truncated = 0;         ///< datagrams dropped: short/length skew
    std::uint64_t bad_magic = 0;         ///< datagrams dropped: not our protocol
    std::uint64_t version_skew = 0;      ///< datagrams dropped: unknown version
    std::uint64_t malformed = 0;         ///< datagrams dropped: bad header fields
    std::uint64_t foreign_token = 0;     ///< datagrams dropped: wrong session token
    std::uint64_t idle_timeouts = 0;     ///< next() gave up waiting for frames

    NetIngestStats& operator+=(const NetIngestStats& other) {
        datagrams += other.datagrams;
        bytes += other.bytes;
        frames_delivered += other.frames_delivered;
        frame_gaps += other.frame_gaps;
        reorders += other.reorders;
        duplicates += other.duplicates;
        late_fragments += other.late_fragments;
        crc_errors += other.crc_errors;
        truncated += other.truncated;
        bad_magic += other.bad_magic;
        version_skew += other.version_skew;
        malformed += other.malformed;
        foreign_token += other.foreign_token;
        idle_timeouts += other.idle_timeouts;
        return *this;
    }
};

class FrameSource {
  public:
    virtual ~FrameSource() = default;

    /// Produce the next frame into `frame`; false when the stream has ended.
    virtual bool next(Frame& frame) = 0;

    /// Antenna geometry of the deployment this stream was captured with.
    virtual const geom::ArrayGeometry& array() const = 0;

    /// FMCW parameters the sweeps were generated with.
    virtual const FmcwParams& fmcw() const = 0;

    /// Serialize the stream cursor (and any generator state) so a restored
    /// session resumes at the exact frame a snapshot was taken. Sources
    /// that cannot be resumed (e.g. live hardware) keep the throwing
    /// default, which makes Engine::snapshot fail loudly instead of
    /// producing a snapshot that silently restarts the stream.
    virtual void save_state(common::StateWriter&) const {
        throw std::runtime_error("FrameSource: source does not support snapshots");
    }

    /// Restore the cursor written by save_state into a freshly-constructed
    /// source. Symmetric with save_state; same throwing default.
    virtual void load_state(common::StateReader&) {
        throw std::runtime_error("FrameSource: source does not support snapshots");
    }

    /// Network ingestion counters, for sources fed over the wire
    /// (net::NetSource overrides this). In-process sources have none.
    virtual std::optional<NetIngestStats> net_stats() const { return std::nullopt; }
};

}  // namespace witrack::engine
