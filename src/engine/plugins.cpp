#include "engine/plugins.hpp"

#include <stdexcept>
#include <utility>

#include "common/serialize.hpp"

namespace witrack::engine {

// ------------------------------------------------------- FallMonitorStage

void FallMonitorStage::on_frame(const Frame& frame,
                                const core::WiTrackTracker::FrameResult& result,
                                EventBus& bus) {
    if (!result.raw) return;
    // The raw (unsmoothed) track preserves the ~0.4 s fall transient that
    // position smoothing would blur away.
    const std::size_t before = monitor_.total_alerts();
    monitor_.push(*result.raw);
    if (monitor_.total_alerts() > before)
        bus.publish(FallEvent{frame.time_s, monitor_.alerts().back()});
}

// ---------------------------------------------------------- PointingStage

void PointingStage::attach(const StageContext& context, EventBus& bus) {
    (void)bus;
    estimator_.emplace(context.pipeline, context.array, config_);
    frames_.clear();
}

void PointingStage::on_frame(const Frame& frame,
                             const core::WiTrackTracker::FrameResult& result,
                             EventBus& bus) {
    (void)frame;
    (void)bus;
    frames_.push_back(result.tof);
    // Sliding window: trim in blocks once the history doubles the cap, so
    // an endless live stream stays bounded at amortized O(1) per frame.
    if (max_frames_ > 0 && frames_.size() >= 2 * max_frames_)
        frames_.erase(frames_.begin(),
                      frames_.begin() +
                          static_cast<std::ptrdiff_t>(frames_.size() - max_frames_));
}

void PointingStage::finish(EventBus& bus) {
    if (!estimator_) return;
    if (const auto pointing = estimator_->analyze(frames_))
        bus.publish(PointingEvent{*pointing});
}

void PointingStage::save_state(common::StateWriter& writer) const {
    writer.u64(frames_.size());
    for (const auto& frame : frames_) core::save_state(writer, frame);
}

void PointingStage::load_state(common::StateReader& reader) {
    frames_.resize(reader.count(sizeof(double)));
    for (auto& frame : frames_) core::load_state(reader, frame);
}

// ---------------------------------------------------- ApplianceController

void ApplianceController::attach(const StageContext& context, EventBus& bus) {
    (void)context;
    bus.subscribe<PointingEvent>([this](const PointingEvent& event) {
        last_actuated_ = registry_->actuate(event.pointing, *driver_);
    });
}

void ApplianceController::save_state(common::StateWriter& writer) const {
    writer.boolean(last_actuated_.has_value());
    writer.str(last_actuated_.value_or(""));
}

void ApplianceController::load_state(common::StateReader& reader) {
    const bool actuated = reader.boolean();
    auto name = reader.str();
    last_actuated_ =
        actuated ? std::optional<std::string>(std::move(name)) : std::nullopt;
}

// ------------------------------------------------------- MultiPersonStage

void MultiPersonStage::attach(const StageContext& context, EventBus& bus) {
    (void)bus;
    if (context.pipeline.contour_peaks < max_people_)
        throw std::invalid_argument(
            "MultiPersonStage: pipeline.contour_peaks must be >= max_people "
            "(use EngineConfig::with_contour_peaks)");
    tracker_.emplace(context.pipeline, context.array, max_people_);
}

void MultiPersonStage::on_frame(const Frame& frame,
                                const core::WiTrackTracker::FrameResult& result,
                                EventBus& bus) {
    auto people = tracker_->process(result.tof, frame.time_s);
    bus.publish(PersonsEvent{frame.time_s, std::move(people), frame.truth});
}

void MultiPersonStage::save_state(common::StateWriter& writer) const {
    if (!tracker_)
        throw std::logic_error("MultiPersonStage: save_state before attach");
    tracker_->save_state(writer);
}

void MultiPersonStage::load_state(common::StateReader& reader) {
    if (!tracker_)
        throw std::logic_error("MultiPersonStage: load_state before attach");
    tracker_->load_state(reader);
}

}  // namespace witrack::engine
