// EngineHost: the multi-session fleet runtime. One process serving many
// concurrent tracking sessions (homes, rooms, replayed captures) hosts one
// EngineHost; each session is an Engine owning its FrameSource, and the
// host owns everything worth sharing:
//
//   sources (sim | replay | live)
//      │ admit()                 ┌──────────────┐
//      ▼                         │  EngineHost  │
//   Session 1..N  ◄── step_all ──┤  scheduler   │
//      │  per-RX fan-out         └──┬────────┬──┘
//      ▼                            ▼        ▼
//   shared common::WorkerPool   FftPlanCache  FleetStats
//
// The scheduler is fair round-robin: every running session processes
// exactly one frame per step_all() round, so no tenant starves another.
// Admission control (max_sessions, reject-or-queue), backpressure (a
// session that cannot consume frames for more than max_frame_lag rounds is
// evicted -- a live radio would have dropped those frames anyway), and
// fault isolation (a session whose stage throws is evicted; siblings are
// untouched) keep one misbehaving tenant from taking the fleet down.
// Per-session output is bit-identical to the same Engine run standalone
// (tests/test_fleet.cpp proves it under serial and shared-pool schedules).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/worker_pool.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_batch.hpp"
#include "dsp/fft_plan_cache.hpp"
#include "engine/engine.hpp"

namespace witrack::engine {

using SessionId = std::uint64_t;

struct HostConfig {
    /// Shared-pool parallelism for every session (per-RX TOF fan-out and
    /// concurrent stages). 0 = read WITRACK_WORKERS (absent -> serial);
    /// 1 = serial. Session EngineConfig::workers is ignored inside a host:
    /// the host owns the parallelism decision.
    std::size_t workers = 0;

    /// Running-session cap (admission control). Sessions admitted beyond it
    /// are queued (queue_when_full) or rejected with std::runtime_error.
    std::size_t max_sessions = 16;

    /// true: admit() past the cap parks the session Admitted until a slot
    /// frees (FIFO promotion). false: admit() past the cap throws.
    bool queue_when_full = true;

    /// Backpressure: consecutive scheduler rounds a session may sit unable
    /// to consume frames (paused) before the host evicts it. 0 = never
    /// evict on lag.
    std::size_t max_frame_lag = 0;

    /// FFT plan cache shared by every session's range transforms
    /// (nullptr = the process-global FftPlanCache::global()).
    dsp::FftPlanCache* plan_cache = nullptr;

    /// Self-healing watchdog: when > 0, a restartable session (see
    /// admit_restartable) whose mean frame health over one health_window
    /// of frames stays below this threshold is auto-checkpointed and
    /// restarted in place -- same session id, state resumed from the
    /// checkpoint -- up to max_restarts times, then evicted. Siblings are
    /// untouched either way. 0 disables the watchdog (health is still
    /// tracked and reported).
    double health_threshold = 0.0;

    /// Frames per watchdog evaluation window (tumbling, per session).
    std::size_t health_window = 64;

    /// Watchdog restarts allowed per session before it is evicted.
    std::size_t max_restarts = 3;

    /// Batched FFT scheduling: each step_all() round runs in two phases --
    /// every ready session stages its range FFTs into one shared
    /// dsp::FftBatch, the host runs the batch (same-shape transforms across
    /// sessions execute as one lane-interleaved SIMD pass), then every
    /// staged session finishes its frame. Because fleets admit sessions
    /// with identical radio configs, the cross-session batch width is
    /// typically active_sessions x num_rx. Per-session output stays
    /// bit-identical to the serial schedule (tests/test_fleet.cpp proves
    /// it); FleetStats::fft_batched counts the transforms that actually
    /// ran batched.
    bool batch_fft = false;

    // ------------------------------------------------------ fluent builder
    HostConfig& with_workers(std::size_t count) {
        workers = count;
        return *this;
    }
    HostConfig& with_max_sessions(std::size_t count) {
        max_sessions = count;
        return *this;
    }
    HostConfig& with_queue_when_full(bool queue) {
        queue_when_full = queue;
        return *this;
    }
    HostConfig& with_max_frame_lag(std::size_t rounds) {
        max_frame_lag = rounds;
        return *this;
    }
    HostConfig& with_plan_cache(dsp::FftPlanCache* cache) {
        plan_cache = cache;
        return *this;
    }
    HostConfig& with_batch_fft(bool enable = true) {
        batch_fft = enable;
        return *this;
    }
    HostConfig& with_health_threshold(double threshold) {
        health_threshold = threshold;
        return *this;
    }
    HostConfig& with_health_window(std::size_t frames) {
        health_window = frames;
        return *this;
    }
    HostConfig& with_max_restarts(std::size_t count) {
        max_restarts = count;
        return *this;
    }
};

/// Per-session rollup inside FleetStats. frames / step timing cover the
/// window since the last take_fleet_stats(); stages comes from the
/// session's Engine::take_stage_stats() (same snapshot-and-reset contract).
struct SessionStats {
    SessionId id = 0;
    std::string name;
    SessionState state = SessionState::kAdmitted;
    std::size_t frames = 0;        ///< frames processed this window
    double total_step_s = 0.0;     ///< host-observed step() wall clock
    double max_step_s = 0.0;
    std::vector<Engine::StageStats> stages;
    std::string fault;             ///< eviction reason, if evicted
    /// Network ingestion counters (cumulative over the source's lifetime,
    /// NOT reset per window) for sessions fed by a net::NetSource; empty
    /// for in-process sources.
    std::optional<NetIngestStats> net;
    /// Hardware-quality rollup (cumulative over the session's lifetime,
    /// carried across checkpoint/restore and watchdog restarts).
    QualityStats quality;
    /// Mean frame health over the most recent watchdog window.
    double recent_health = 1.0;
    /// Watchdog restarts this session has survived.
    std::size_t restarts = 0;
    double mean_step_s() const {
        return frames > 0 ? total_step_s / static_cast<double>(frames) : 0.0;
    }
};

/// Fleet-wide telemetry window: take_fleet_stats() snapshots and resets the
/// per-window aggregates (frames, wall clock, per-session rollups); the
/// lifetime session counters are cumulative.
struct FleetStats {
    std::size_t frames = 0;            ///< frames processed this window
    double wall_s = 0.0;               ///< wall clock covered by the window
    double throughput_fps = 0.0;       ///< frames / wall_s (0 when idle)
    std::size_t sessions_admitted = 0; ///< lifetime
    std::size_t sessions_finished = 0; ///< lifetime
    std::size_t sessions_evicted = 0;  ///< lifetime
    std::size_t active_sessions = 0;   ///< currently holding a slot
    std::size_t queued_sessions = 0;   ///< waiting for a slot
    /// Range transforms executed inside a cross-session batch of >= 2 this
    /// window (0 unless HostConfig::batch_fft; a window where every round
    /// had only one ready session also reads 0 -- no sharing happened).
    std::size_t fft_batched = 0;
    /// Sum of the network ingestion counters over every currently
    /// registered network-fed session (cumulative, like the per-session
    /// counters -- reaped sessions leave the sum).
    NetIngestStats net;
    /// Sum of the hardware-quality counters over every currently
    /// registered session (cumulative, like net).
    QualityStats quality;
    /// Watchdog restarts performed over the host's lifetime.
    std::size_t sessions_restarted = 0;
    std::vector<SessionStats> sessions;
};

/// Compact single-line JSON rendering of a fleet telemetry snapshot -- the
/// one FleetStats serialization, shared by the control plane's stats
/// scrape (net::ControlServer "STATS"), the witrackd periodic log line and
/// bench_fleet, so dashboards parse one shape.
std::string to_json(const FleetStats& stats);

class EngineHost {
  public:
    explicit EngineHost(HostConfig config = HostConfig{});

    /// Admit one session: the host wraps the source in an Engine wired to
    /// the shared WorkerPool and FFT plan cache and schedules it. Past
    /// max_sessions the session is queued (queue_when_full) or the call
    /// throws std::runtime_error. Returns the session's id.
    SessionId admit(std::string name, EngineConfig config,
                    std::unique_ptr<FrameSource> source);

    /// Builds a fresh FrameSource for each incarnation of a restartable
    /// session (initial admission and every watchdog restart).
    using SourceFactory = std::function<std::unique_ptr<FrameSource>()>;

    /// Admit a session the self-healing watchdog may restart: the factory
    /// supplies the source (now, and again on each restart), `wire_stages`
    /// re-attaches the session's stages and subscribers to the rebuilt
    /// Engine. On restart the old engine is checkpointed in memory and a
    /// fresh one restored from it into the SAME session record (same id);
    /// a failed restart evicts the session instead. Requires
    /// HostConfig::health_threshold > 0 for restarts to actually trigger.
    SessionId admit_restartable(
        std::string name, EngineConfig config, SourceFactory factory,
        const std::function<void(Engine&)>& wire_stages = {});

    /// Serialize one session's full state (tracker, stages, source cursor;
    /// Engine::snapshot wire format) into `out` so it can drain to disk and
    /// resume here or on another host. Unknown id -> std::out_of_range.
    void checkpoint_session(SessionId id, std::ostream& out) const;

    /// Admit a session reconstructed from a snapshot: the Engine is built
    /// exactly as admit() would build it, `wire_stages` (may be empty)
    /// attaches the same stages the checkpointed session had -- same types,
    /// same order -- and the snapshot is applied before scheduling. A
    /// truncated/corrupt/unknown-version snapshot throws std::runtime_error
    /// and nothing is registered: live sessions are untouched. Returns the
    /// restored session's (new) id.
    SessionId restore_session(std::string name, EngineConfig config,
                              std::unique_ptr<FrameSource> source,
                              std::istream& snapshot,
                              const std::function<void(Engine&)>& wire_stages = {});

    /// The session's Engine (attach stages, subscribe to its bus, read its
    /// tracker). nullptr for an unknown id. Valid until the host dies --
    /// finished and evicted sessions stay inspectable.
    Engine* session(SessionId id);
    const Engine* session(SessionId id) const;

    /// Lifecycle state (kAdmitted for queued sessions). Unknown id ->
    /// std::out_of_range.
    SessionState state(SessionId id) const;

    /// Stop / resume scheduling one session. A paused session accrues frame
    /// lag each round and is evicted past HostConfig::max_frame_lag.
    void pause(SessionId id);
    void resume(SessionId id);

    /// Terminally remove a session from scheduling (its Engine stays
    /// readable; episode finish() work is not delivered). False when the
    /// id is unknown or the session already reached a terminal state.
    bool evict(SessionId id, std::string reason = "operator eviction");

    /// One fair round: every running session processes exactly one frame.
    /// Draining sessions are finished, faulting sessions evicted, queued
    /// sessions promoted into freed slots. Returns frames processed.
    std::size_t step_all();

    /// Round-robin until every session is Finished/Evicted, or until at
    /// least `max_frames` frames were processed this call (0 = no budget;
    /// the budget is checked between rounds, so the final round may
    /// overshoot by up to one frame per session). Returns frames processed.
    std::size_t run(std::size_t max_frames = 0);

    /// Drop every Finished/Evicted session from the registry, returning how
    /// many were reaped. Terminal sessions stay readable until this is
    /// called (handy for tests and post-mortems), but a server with tenant
    /// churn must reap periodically or the registry grows one retired
    /// Engine per connection; reaping invalidates those sessions' Engine
    /// pointers and removes them from future FleetStats.
    std::size_t reap();

    /// Sessions currently holding a slot (Admitted-but-scheduled, Running
    /// or Draining) / waiting for one.
    std::size_t active_sessions() const;
    std::size_t queued_sessions() const;
    std::size_t total_sessions() const { return sessions_.size(); }

    /// Completed step_all() rounds.
    std::size_t rounds() const { return rounds_; }

    /// Resolved shared-pool width (1 = serial) and the pool itself
    /// (nullptr when serial).
    std::size_t workers() const { return workers_; }
    common::WorkerPool* worker_pool() { return pool_.get(); }

    /// The FFT plan cache every session shares.
    dsp::FftPlanCache& plan_cache() { return *plans_; }

    const HostConfig& config() const { return config_; }

    /// Snapshot fleet telemetry and reset the per-window aggregates (host
    /// frame/wall counters, per-session step timings, per-stage stats).
    FleetStats take_fleet_stats();

    /// One session's health, as the watchdog sees it. Cumulative quality
    /// counters plus the most recent tumbling-window mean health.
    struct SessionHealth {
        SessionId id = 0;
        std::string name;
        SessionState state = SessionState::kAdmitted;
        QualityStats quality;        ///< cumulative (survives restarts)
        double recent_health = 1.0;  ///< last watchdog-window mean
        std::size_t restarts = 0;    ///< watchdog restarts survived
        bool degraded = false;       ///< recent_health < 1: faults active
    };

    /// Health snapshot of every registered session. Non-destructive --
    /// unlike take_fleet_stats() this resets nothing, so the control
    /// plane's HEALTH probe can poll without disturbing the STATS window.
    std::vector<SessionHealth> session_health() const;

    /// Watchdog restarts performed over the host's lifetime.
    std::size_t sessions_restarted() const { return restarts_total_; }

  private:
    struct Session {
        SessionId id = 0;
        std::string name;
        std::unique_ptr<Engine> engine;
        bool queued = false;
        bool paused = false;
        bool accounted = false;        ///< terminal transition already counted
        std::size_t lag = 0;           ///< consecutive rounds without a frame
        std::size_t frames = 0;        ///< window counter
        double total_step_s = 0.0;     ///< window counter
        double max_step_s = 0.0;       ///< window counter
        std::string fault;
        /// Self-healing wiring: empty factory = not restartable.
        EngineConfig engine_config;
        SourceFactory factory;
        std::function<void(Engine&)> wire_stages;
        std::size_t restarts = 0;
        /// Watchdog accounting: engine quality counters already consumed
        /// (marks) and the current tumbling health window.
        std::uint64_t mark_frames = 0;
        double mark_health_sum = 0.0;
        std::uint64_t window_frames = 0;
        double window_health_sum = 0.0;
        double recent_health = 1.0;
    };

    Session* find(SessionId id);
    const Session* find(SessionId id) const;
    bool terminal(const Session& session) const;
    void evict_session(Session& session, std::string reason);
    void promote_queued();
    void settle();
    bool progress_possible() const;

    /// One scheduler round, minus the settle()/rounds_ bookkeeping that
    /// step_all() wraps around either variant.
    std::size_t round_serial();
    std::size_t round_batched();
    /// Backpressure accounting for a paused session (shared by both round
    /// variants); may evict the session past max_frame_lag.
    void lag_session(Session& session);
    /// Roll every session's engine quality deltas into its watchdog window
    /// and trigger restarts/evictions; runs once per step_all() round.
    void watch_health();
    /// Checkpoint + rebuild + restore one session in place (same record,
    /// same id). A failed restart evicts the session.
    void restart_session(Session& session);

    HostConfig config_;
    std::size_t workers_ = 1;
    std::unique_ptr<common::WorkerPool> pool_;  ///< shared; only workers_ > 1
    dsp::FftPlanCache* plans_;                  ///< config's or the global one
    std::vector<std::unique_ptr<Session>> sessions_;  ///< admission order
    SessionId next_id_ = 1;
    dsp::FftBatch batch_;              ///< reused across batched rounds
    dsp::FftScratch batch_scratch_;
    std::size_t rounds_ = 0;
    std::size_t frames_window_ = 0;
    std::size_t fft_batched_window_ = 0;
    double window_started_s_ = 0.0;    ///< steady-clock origin of the window
    std::size_t admitted_total_ = 0;
    std::size_t finished_total_ = 0;
    std::size_t evicted_total_ = 0;
    std::size_t restarts_total_ = 0;
};

/// Compact single-line JSON rendering of a session-health snapshot -- the
/// control plane's HEALTH response body.
std::string to_json(const std::vector<EngineHost::SessionHealth>& sessions);

}  // namespace witrack::engine
