// Frame recording and replay. A recording is self-contained -- it carries
// the FMCW parameters and antenna geometry of the capture next to the raw
// rx-major samples -- so a replayed session reproduces the live pipeline
// output bit for bit (doubles are stored verbatim, native endianness).
//
// Layout (version 1, little-endian on all supported platforms):
//   header:  magic u32 "WTRK" | version u32
//            fmcw: start_freq, bandwidth, sweep_duration, sample_rate,
//                  tx_power (f64 x5) | sweeps_per_frame u64
//            array: tx xyz, boresight xyz (f64 x6) | num_rx u64 |
//                   rx positions xyz (f64 x3 each)
//   frames:  time_s f64 | num_sweeps u64 | samples_per_sweep u64 |
//            truth_flags u8 (bit0 person 1, bit1 person 2) |
//            [truth xyz f64 x3 per flagged person] |
//            samples f64 x (num_rx * num_sweeps * samples), rx-major
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "engine/frame_source.hpp"

namespace witrack::engine {

inline constexpr std::uint32_t kReplayMagic = 0x4B525457u;  // "WTRK"
inline constexpr std::uint32_t kReplayVersion = 1;

/// Sink: append every frame of a session to a recording file. Use as a tap
/// inside the streaming loop (record while tracking) or standalone.
class Recorder {
  public:
    Recorder(const std::string& path, const FmcwParams& fmcw,
             const geom::ArrayGeometry& array);

    /// Append one frame; throws std::runtime_error on write failure.
    void write(const Frame& frame);

    std::size_t frames_written() const { return frames_written_; }

    /// Flush, verify the stream, and close; throws std::runtime_error if
    /// buffered data failed to reach disk. Further write() calls throw.
    /// Destruction closes the file without verification -- call close()
    /// explicitly when the recording matters.
    void close();

  private:
    std::ofstream out_;
    std::size_t num_rx_ = 0;
    std::size_t samples_per_sweep_ = 0;
    std::size_t sweeps_per_frame_ = 0;
    std::size_t frames_written_ = 0;
};

/// FrameSource over a recording file: the third leg of the source triad
/// (sim, live, replay) and the debugging workhorse -- any captured session
/// re-runs through the pipeline deterministically.
class ReplaySource : public FrameSource {
  public:
    /// Opens and validates the header; throws std::runtime_error on a
    /// missing file, bad magic, or unsupported version.
    explicit ReplaySource(const std::string& path);

    bool next(Frame& frame) override;
    const geom::ArrayGeometry& array() const override { return array_; }
    const FmcwParams& fmcw() const override { return fmcw_; }

    std::size_t frames_read() const { return frames_read_; }

    /// Snapshot cursor: the number of frames already consumed.
    void save_state(common::StateWriter& writer) const override;

    /// Re-position a freshly-opened replay at the snapshot cursor by
    /// skipping forward; throws if the source has already advanced or the
    /// recording is shorter than the cursor.
    void load_state(common::StateReader& reader) override;

  private:
    std::ifstream in_;
    FmcwParams fmcw_;
    geom::ArrayGeometry array_;
    std::size_t frames_read_ = 0;
};

}  // namespace witrack::engine
