// Pluggable application stages. An AppStage is the engine-resident form of
// an application (fall monitoring, pointing control, multi-person): it sees
// every processed frame, keeps whatever state it needs, and talks to the
// rest of the world exclusively through the event bus.
#pragma once

#include <string_view>

#include "core/tracker.hpp"
#include "engine/config.hpp"
#include "engine/events.hpp"
#include "engine/frame_source.hpp"

namespace witrack::engine {

/// Everything a stage may need to build its own estimators, valid for the
/// lifetime of the Engine that attached it.
struct StageContext {
    const EngineConfig& config;
    const core::PipelineConfig& pipeline;   ///< resolved (fmcw applied)
    const geom::ArrayGeometry& array;
};

class AppStage {
  public:
    virtual ~AppStage() = default;

    /// Stable name used in per-stage latency accounting.
    virtual std::string_view name() const = 0;

    /// Called once when the stage is added to an Engine; build estimators
    /// from the context and register any event subscriptions here.
    virtual void attach(const StageContext& context, EventBus& bus) {
        (void)context;
        (void)bus;
    }

    /// Called for every processed frame, after the Engine has published its
    /// TrackUpdateEvent. `result` carries the full per-frame pipeline
    /// output (TOF observations, raw and smoothed positions).
    virtual void on_frame(const Frame& frame,
                          const core::WiTrackTracker::FrameResult& result,
                          EventBus& bus) = 0;

    /// Called once when the source is exhausted (Engine::run) so
    /// episode-scoped stages (e.g. pointing) can publish their verdict.
    virtual void finish(EventBus& bus) { (void)bus; }
};

}  // namespace witrack::engine
