// Pluggable application stages. An AppStage is the engine-resident form of
// an application (fall monitoring, pointing control, multi-person): it sees
// every processed frame, keeps whatever state it needs, and talks to the
// rest of the world exclusively through the event bus.
#pragma once

#include <string_view>

#include "core/pipeline_steps.hpp"
#include "core/tracker.hpp"
#include "engine/config.hpp"
#include "engine/events.hpp"
#include "engine/frame_source.hpp"

namespace witrack::engine {

/// Demand vocabulary for AppStage::required_inputs(): which pipeline
/// products the stage consumes (Inputs::kTof, Inputs::kRawPosition,
/// Inputs::kSmoothedTrack). The Engine unions the demands of every
/// attached stage (plus event-bus subscriptions) and schedules only the
/// pipeline steps someone asked for.
using Inputs = core::PipelineOutputs;

/// Everything a stage may need to build its own estimators, valid for the
/// lifetime of the Engine that attached it.
struct StageContext {
    const EngineConfig& config;
    const core::PipelineConfig& pipeline;   ///< resolved (fmcw applied)
    const geom::ArrayGeometry& array;
};

class AppStage {
  public:
    virtual ~AppStage() = default;

    /// Stable name used in per-stage latency accounting.
    virtual std::string_view name() const = 0;

    /// The pipeline products this stage reads from FrameResult. The default
    /// demands everything, so existing stages keep seeing the full pipeline;
    /// override to let the Engine skip undemanded steps (a TOF-only stage
    /// set never pays for localization or smoothing). Must be stable for
    /// the lifetime of the stage.
    virtual Inputs required_inputs() const { return Inputs::kAll; }

    /// Opt-in to the Engine's parallel mode: stages that return true may
    /// have on_frame() run on a worker thread, concurrently with other
    /// opted-in stages, joined before the next frame; events they publish
    /// are delivered after the join, still in stage-attachment order. The
    /// default is false -- a stage never written for concurrency always
    /// runs on the engine thread, even under WITRACK_WORKERS -- so thread
    /// participation is a per-stage declaration, not an ambient flag.
    /// Opted-in stages must not subscribe from inside on_frame, and must
    /// not rely on observing same-frame events from earlier stages there.
    virtual bool concurrent_safe() const { return false; }

    /// Called once when the stage is added to an Engine; build estimators
    /// from the context and register any event subscriptions here.
    virtual void attach(const StageContext& context, EventBus& bus) {
        (void)context;
        (void)bus;
    }

    /// Called for every processed frame, after the Engine has published its
    /// TrackUpdateEvent. `result` carries the full per-frame pipeline
    /// output (TOF observations, raw and smoothed positions).
    virtual void on_frame(const Frame& frame,
                          const core::WiTrackTracker::FrameResult& result,
                          EventBus& bus) = 0;

    /// Called once when the source is exhausted (Engine::run) so
    /// episode-scoped stages (e.g. pointing) can publish their verdict.
    virtual void finish(EventBus& bus) { (void)bus; }

    /// Serialize per-stage mutable state into an Engine snapshot. Stateless
    /// stages keep the empty defaults; stages that accumulate history (the
    /// fall-monitor alert ring, the pointing TOF window) override both
    /// symmetrically so a restored session resumes bit-identically.
    virtual void save_state(common::StateWriter&) const {}
    virtual void load_state(common::StateReader&) {}
};

}  // namespace witrack::engine
