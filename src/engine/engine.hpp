// The streaming Engine: the front door of the library. It pulls frames
// from any FrameSource, runs the paper's realtime pipeline demand-driven
// (only the steps some attached stage or subscriber asked for -- a TOF-only
// stage set never pays for localization or Kalman smoothing), publishes a
// TrackUpdateEvent per frame when anybody listens, and drives the attached
// application stages with per-stage latency accounting -- the paper's
// < 75 ms budget (Section 7) is observable per stage.
//
//   source (sim | replay | live) --> Engine --> EventBus --> subscribers
//                                      |
//                                      +--> AppStages (fall, pointing, ...)
//
// With EngineConfig::with_workers(n > 1) the Engine owns a WorkerPool and
// runs the per-RX TOF chains and the concurrency-safe stages in parallel,
// joining before the next step(); output (tracks and event delivery order)
// stays bit-identical to the serial schedule.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/worker_pool.hpp"
#include "core/pipeline_steps.hpp"
#include "core/tracker.hpp"
#include "engine/config.hpp"
#include "engine/events.hpp"
#include "engine/frame_source.hpp"
#include "engine/stage.hpp"

namespace witrack::engine {

class Engine {
  public:
    /// The source is borrowed and must outlive the Engine.
    Engine(EngineConfig config, FrameSource& source);

    /// Attach an application stage (attach() runs immediately).
    void add_stage(std::unique_ptr<AppStage> stage);

    /// Construct and attach a stage in place; returns a reference that
    /// stays valid for the Engine's lifetime.
    template <typename Stage, typename... Args>
    Stage& emplace_stage(Args&&... args) {
        auto stage = std::make_unique<Stage>(std::forward<Args>(args)...);
        Stage& ref = *stage;
        add_stage(std::move(stage));
        return ref;
    }

    /// Process one frame: pull, run the demanded pipeline steps, publish,
    /// run stages. False when the source is exhausted (stages are NOT
    /// finished -- run() does that).
    bool step();

    /// Stream until the source ends, then finish() every stage so
    /// episode-scoped stages publish their verdicts. Returns the number of
    /// frames processed by this call.
    std::size_t run();

    /// The union of stage demands and event-bus subscriptions that the next
    /// step() will schedule (already closed over step dependencies). With
    /// no stages and no TrackUpdateEvent subscribers the Engine assumes a
    /// headless caller reading tracker() directly and runs everything;
    /// EngineConfig::outputs overrides the whole computation.
    core::PipelineOutputs demanded_outputs() const;

    /// Resolved worker count (1 = serial schedule, no pool).
    std::size_t workers() const { return workers_; }

    EventBus& bus() { return bus_; }
    const EventBus& bus() const { return bus_; }

    core::WiTrackTracker& tracker() { return tracker_; }
    const core::WiTrackTracker& tracker() const { return tracker_; }

    const EngineConfig& config() const { return config_; }
    const core::PipelineConfig& pipeline_config() const { return pipeline_; }
    const geom::ArrayGeometry& array() const { return source_->array(); }
    std::size_t frames_processed() const { return frames_; }

    /// TrackUpdateEvents actually built and delivered: stays at zero while
    /// nobody subscribes (the Engine skips constructing the event entirely).
    std::size_t track_updates_published() const { return track_updates_published_; }

    /// Wall-clock accounting per application stage. total_s / mean_s /
    /// max_s cover the per-frame on_frame() calls; the one-shot finish()
    /// work (episode-scoped analysis) is reported separately in finish_s.
    struct StageStats {
        std::string name;
        std::size_t frames = 0;
        double total_s = 0.0;
        double max_s = 0.0;
        double finish_s = 0.0;
        double mean_s() const {
            return frames > 0 ? total_s / static_cast<double>(frames) : 0.0;
        }
    };
    const std::vector<StageStats>& stage_stats() const { return stage_stats_; }

    /// Snapshot the per-stage stats and reset the running aggregates
    /// (frames, total_s, max_s, finish_s) so a long-running deployment can
    /// poll per-window means and p99-ish maxima without restarting the
    /// Engine. Stage names persist across snapshots.
    std::vector<StageStats> take_stage_stats();

  private:
    /// Per-stage scratch for the parallel schedule: a capturing bus that
    /// records the stage's publishes for ordered replay after the join.
    /// Heap-allocated so the capture sink pointer survives vector growth.
    struct StageSlot {
        std::vector<EventBus::DeferredEvent> pending;
        EventBus staging;
    };

    void run_stage(std::size_t index, EventBus& bus);
    void run_stages_serial();
    void run_stages_parallel();

    EngineConfig config_;
    core::PipelineConfig pipeline_;   ///< resolved once (fmcw applied)
    FrameSource* source_;
    EventBus bus_;
    std::size_t workers_ = 1;
    std::unique_ptr<common::WorkerPool> pool_;  ///< only when workers_ > 1
    core::WiTrackTracker tracker_;
    std::vector<std::unique_ptr<AppStage>> stages_;
    std::vector<std::unique_ptr<StageSlot>> slots_;
    std::vector<StageStats> stage_stats_;
    core::WiTrackTracker::FrameResult result_;  ///< current frame's outputs
    Frame frame_;                     ///< reused across step() calls
    std::size_t frames_ = 0;
    std::size_t track_updates_published_ = 0;
    bool finished_ = false;           ///< stage finish() already delivered
};

}  // namespace witrack::engine
