// The streaming Engine: the per-session unit of the library. It pulls
// frames from any FrameSource, runs the paper's realtime pipeline
// demand-driven (only the steps some attached stage or subscriber asked
// for -- a TOF-only stage set never pays for localization or Kalman
// smoothing), publishes a TrackUpdateEvent per frame when anybody listens,
// and drives the attached application stages with per-stage latency
// accounting -- the paper's < 75 ms budget (Section 7) is observable per
// stage.
//
//   source (sim | replay | live) --> Engine --> EventBus --> subscribers
//                                      |
//                                      +--> AppStages (fall, pointing, ...)
//
// Standalone, EngineConfig::with_workers(n > 1) makes the Engine own a
// private WorkerPool and run the per-RX TOF chains and the
// concurrency-safe stages in parallel, joining before the next step();
// output (tracks and event delivery order) stays bit-identical to the
// serial schedule. Inside an engine::EngineHost the Engine is one session
// of a fleet: the host owns the (shared) WorkerPool and the FFT plan
// cache, injects both at admission, and drives step() round-robin -- see
// engine/host.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/worker_pool.hpp"
#include "core/pipeline_steps.hpp"
#include "core/tracker.hpp"
#include "engine/config.hpp"
#include "engine/events.hpp"
#include "engine/frame_source.hpp"
#include "engine/stage.hpp"

namespace witrack::engine {

/// Session snapshot wire format (Engine::snapshot / Engine::restore):
/// the chunked, versioned, CRC-framed layout of common/serialize.hpp with
/// this magic. Layout (version 2):
///
///   header:  magic u32 "WTSS" | version u32
///   "ENG ":  frames u64 | track_updates_published u64 | finished u8 |
///            session_state u8 | session_id u64
///   "TRK ":  WiTrackTracker state (demand set, histories, step state)
///   "SRC ":  FrameSource cursor (replay frame index, or sim RNG + motion)
///   "STG ":  stage count u64 | per stage: name str | stage state
///   "END ":  empty terminator chunk
///
/// Version 2 reframed the background-subtractor history inside "TRK ":
/// the complex spectra became bulk-framed SoA re/im planes (one f64_vector
/// record per plane) instead of per-element interleaved doubles.
///
/// Version 3 (hw-robustness plane) appended the session's cumulative
/// QualityStats to "ENG ", an hw_valid flag to every serialized
/// AntennaFrame inside "TRK ", and -- for sim sources with a fault
/// injector attached -- the injector's RNG cursor and counters to "SRC ".
inline constexpr std::uint32_t kSnapshotMagic = 0x53535457u;  // "WTSS"
inline constexpr std::uint32_t kSnapshotVersion = 3;

/// Lifecycle of one tracking session:
///
///   Admitted --> Running --> Draining --> Finished
///       \____________\____________\-----> Evicted
///
/// Admitted: constructed (or queued by a host at capacity), no frame
/// processed yet. Running: frames flowing. Draining: the source is
/// exhausted but the stages' episode-scoped finish() work has not been
/// delivered. Finished: finish() done. Evicted: terminally removed by an
/// EngineHost (backpressure, a faulting stage, or operator request) --
/// episode finish() work is NOT delivered for evicted sessions.
/// A standalone Engine walks the same machine driving itself (step()/run()
/// advance the state); it simply never reaches Evicted.
enum class SessionState : std::uint8_t {
    kAdmitted,
    kRunning,
    kDraining,
    kFinished,
    kEvicted,
};

/// "admitted" / "running" / "draining" / "finished" / "evicted".
const char* to_string(SessionState state);

class Engine {
  public:
    /// The Engine owns its source, so the session is one self-contained
    /// object with no lifetime fine print (and the shape an EngineHost
    /// admits). Throws std::invalid_argument on a null source.
    Engine(EngineConfig config, std::unique_ptr<FrameSource> source);

    /// Fleet-session constructor (what EngineHost::admit uses): worker
    /// parallelism comes from the externally owned `shared_pool`
    /// (nullptr = serial; EngineConfig::workers and WITRACK_WORKERS are
    /// ignored -- the host owns the parallelism decision), and FFT plans
    /// come from `plans` (nullptr = the process-global FftPlanCache). The
    /// pool and cache are borrowed and must outlive the Engine.
    Engine(EngineConfig config, std::unique_ptr<FrameSource> source,
           common::WorkerPool* shared_pool, dsp::FftPlanCache* plans);

    /// Attach an application stage (attach() runs immediately).
    void add_stage(std::unique_ptr<AppStage> stage);

    /// Construct and attach a stage in place; returns a reference that
    /// stays valid for the Engine's lifetime.
    template <typename Stage, typename... Args>
    Stage& emplace_stage(Args&&... args) {
        auto stage = std::make_unique<Stage>(std::forward<Args>(args)...);
        Stage& ref = *stage;
        add_stage(std::move(stage));
        return ref;
    }

    /// Process one frame: pull, run the demanded pipeline steps, publish,
    /// run stages. False when the source is exhausted (the session enters
    /// Draining; stages are NOT finished -- finish() or run() does that)
    /// or when the session reached a terminal state (Finished/Evicted: no
    /// further frames may flow once episode verdicts were delivered).
    bool step();

    /// Split-step form of step() for batched FFT scheduling (what
    /// EngineHost's batched rounds drive): begin_step() pulls the frame and
    /// *stages* its range FFTs into `batch`; after the caller runs the
    /// batch -- typically with other sessions' transforms gathered into the
    /// same pass -- finish_step() completes the pipeline, publishes, and
    /// runs the stages. Returns what step() would: false (with nothing
    /// staged) when the source is exhausted or the session is terminal.
    /// Exactly one finish_step() must follow every true return, with the
    /// batch run in between; results are bit-identical to step().
    bool begin_step(dsp::FftBatch& batch);
    void finish_step();

    /// Stream until the source ends, then finish() every stage. Returns the
    /// number of frames processed by this call.
    std::size_t run();

    /// Deliver every stage's episode-scoped finish() work exactly once and
    /// move the session to Finished. Idempotent; run() calls it, and an
    /// EngineHost calls it when a session drains. A no-op on an evicted
    /// session: its episode was aborted, so no verdicts are published.
    void finish();

    /// The union of stage demands and event-bus subscriptions that the next
    /// step() will schedule (already closed over step dependencies). With
    /// no stages and no TrackUpdateEvent subscribers the Engine assumes a
    /// headless caller reading tracker() directly and runs everything;
    /// EngineConfig::outputs overrides the whole computation.
    core::PipelineOutputs demanded_outputs() const;

    /// Resolved worker count (1 = serial schedule; for a host-injected
    /// shared pool this is the pool's thread count).
    std::size_t workers() const { return workers_; }

    /// Session identity within an EngineHost (0 for a standalone Engine).
    std::uint64_t session_id() const { return session_id_; }

    /// Where this session is in its lifecycle (see SessionState).
    SessionState session_state() const { return state_; }

    EventBus& bus() { return bus_; }
    const EventBus& bus() const { return bus_; }

    core::WiTrackTracker& tracker() { return tracker_; }
    const core::WiTrackTracker& tracker() const { return tracker_; }

    const EngineConfig& config() const { return config_; }
    const core::PipelineConfig& pipeline_config() const { return pipeline_; }
    const geom::ArrayGeometry& array() const { return source_->array(); }
    std::size_t frames_processed() const { return frames_; }

    /// TrackUpdateEvents actually built and delivered: stays at zero while
    /// nobody subscribes (the Engine skips constructing the event entirely).
    std::size_t track_updates_published() const { return track_updates_published_; }

    /// Network ingestion counters of this session's source (std::nullopt
    /// for in-process sources; filled by net::NetSource). EngineHost rolls
    /// these into FleetStats per session.
    std::optional<NetIngestStats> net_stats() const { return source_->net_stats(); }

    /// Cumulative hardware-quality accounting over every frame this session
    /// pulled (one accumulate per frame, from the frame's quality plane).
    /// All-healthy streams show frames == frames_processed() and every
    /// fault counter at zero. EngineHost reads deltas of this for its
    /// health watchdog and rolls it into FleetStats.
    const QualityStats& quality_stats() const { return quality_stats_; }

    /// Wall-clock accounting per application stage. total_s / mean_s /
    /// max_s cover the per-frame on_frame() calls; the one-shot finish()
    /// work (episode-scoped analysis) is reported separately in finish_s.
    struct StageStats {
        std::string name;
        std::size_t frames = 0;
        double total_s = 0.0;
        double max_s = 0.0;
        double finish_s = 0.0;
        double mean_s() const {
            return frames > 0 ? total_s / static_cast<double>(frames) : 0.0;
        }
    };
    const std::vector<StageStats>& stage_stats() const { return stage_stats_; }

    /// Snapshot the per-stage stats and reset the running aggregates
    /// (frames, total_s, max_s, finish_s) so a long-running deployment can
    /// poll per-window means and p99-ish maxima without restarting the
    /// Engine. Stage names persist across snapshots. In addition to the
    /// attached application stages, the snapshot appends one "pipeline.*"
    /// entry per core pipeline step (fft, subtract, contour, denoise,
    /// localize, smooth) with cycle-counter timing from the tracker --
    /// per-antenna samples for the per-RX steps, so `frames` counts
    /// (frame, antenna) pairs there. Steps with no samples in the window
    /// are omitted.
    std::vector<StageStats> take_stage_stats();

    /// Serialize the full session state -- tracker, stages, source cursor,
    /// lifecycle -- into `out` (layout documented at kSnapshotMagic).
    /// Restoring the snapshot into an identically-built Engine resumes the
    /// session bit-identically to never having stopped. Throws
    /// std::runtime_error if the source cannot be resumed (live hardware)
    /// or the sink fails.
    void snapshot(std::ostream& out) const;

    /// Load a snapshot into this Engine, which must be freshly constructed
    /// with the same config, an equivalent source, and the same stages in
    /// the same order as the snapshotted session. The whole stream is
    /// validated (magic, version, per-chunk CRC) before any state is
    /// touched, so a truncated/corrupt/wrong-version snapshot throws
    /// std::runtime_error and leaves the Engine exactly as constructed.
    void restore(std::istream& in);

  private:
    friend class EngineHost;  ///< admission identity + eviction transitions

    /// Delegation target of every public constructor. `pool_injected`
    /// distinguishes "the host owns the parallelism decision" (shared_pool
    /// authoritative, possibly nullptr = serial) from "resolve
    /// EngineConfig::workers ourselves".
    Engine(EngineConfig config, std::unique_ptr<FrameSource> owned,
           common::WorkerPool* shared_pool, bool pool_injected,
           dsp::FftPlanCache* plans);

    /// Per-stage scratch for the parallel schedule: a capturing bus that
    /// records the stage's publishes for ordered replay after the join.
    /// Heap-allocated so the capture sink pointer survives vector growth.
    struct StageSlot {
        std::vector<EventBus::DeferredEvent> pending;
        EventBus staging;
    };

    void run_stage(std::size_t index, EventBus& bus);
    void run_stages_serial();
    void run_stages_parallel();

    /// Post-pipeline tail shared by step() and finish_step(): publish the
    /// frame's TrackUpdateEvent (when subscribed) and run the stages.
    void complete_frame();

    void set_session_id(std::uint64_t id) { session_id_ = id; }
    void mark_evicted() { state_ = SessionState::kEvicted; }

    EngineConfig config_;
    std::unique_ptr<FrameSource> owned_source_;
    FrameSource* source_;             ///< owned_source_.get(), never null
    core::PipelineConfig pipeline_;   ///< resolved once (fmcw applied)
    EventBus bus_;
    std::size_t workers_ = 1;
    std::unique_ptr<common::WorkerPool> pool_;  ///< private pool (standalone)
    common::WorkerPool* active_pool_ = nullptr; ///< private or host-shared
    core::WiTrackTracker tracker_;
    std::vector<std::unique_ptr<AppStage>> stages_;
    std::vector<std::unique_ptr<StageSlot>> slots_;
    std::vector<StageStats> stage_stats_;
    core::WiTrackTracker::FrameResult result_;  ///< current frame's outputs
    Frame frame_;                     ///< reused across step() calls
    QualityStats quality_stats_;      ///< per-frame quality plane, aggregated
    std::size_t frames_ = 0;
    std::size_t track_updates_published_ = 0;
    bool finished_ = false;           ///< stage finish() already delivered
    std::uint64_t session_id_ = 0;    ///< assigned by EngineHost::admit
    SessionState state_ = SessionState::kAdmitted;
};

}  // namespace witrack::engine
