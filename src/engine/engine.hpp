// The streaming Engine: the front door of the library. It pulls frames
// from any FrameSource, runs the paper's realtime pipeline (TOF ->
// localization -> smoothing), publishes a TrackUpdateEvent per frame, and
// drives the attached application stages with per-stage latency accounting
// -- the paper's < 75 ms budget (Section 7) is now observable per stage.
//
//   source (sim | replay | live) --> Engine --> EventBus --> subscribers
//                                      |
//                                      +--> AppStages (fall, pointing, ...)
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/tracker.hpp"
#include "engine/config.hpp"
#include "engine/events.hpp"
#include "engine/frame_source.hpp"
#include "engine/stage.hpp"

namespace witrack::engine {

class Engine {
  public:
    /// The source is borrowed and must outlive the Engine.
    Engine(EngineConfig config, FrameSource& source);

    /// Attach an application stage (attach() runs immediately).
    void add_stage(std::unique_ptr<AppStage> stage);

    /// Construct and attach a stage in place; returns a reference that
    /// stays valid for the Engine's lifetime.
    template <typename Stage, typename... Args>
    Stage& emplace_stage(Args&&... args) {
        auto stage = std::make_unique<Stage>(std::forward<Args>(args)...);
        Stage& ref = *stage;
        add_stage(std::move(stage));
        return ref;
    }

    /// Process one frame: pull, track, publish, run stages. False when the
    /// source is exhausted (stages are NOT finished -- run() does that).
    bool step();

    /// Stream until the source ends, then finish() every stage so
    /// episode-scoped stages publish their verdicts. Returns the number of
    /// frames processed by this call.
    std::size_t run();

    EventBus& bus() { return bus_; }
    const EventBus& bus() const { return bus_; }

    core::WiTrackTracker& tracker() { return tracker_; }
    const core::WiTrackTracker& tracker() const { return tracker_; }

    const EngineConfig& config() const { return config_; }
    const core::PipelineConfig& pipeline_config() const { return pipeline_; }
    const geom::ArrayGeometry& array() const { return source_->array(); }
    std::size_t frames_processed() const { return frames_; }

    /// Wall-clock accounting per application stage. total_s / mean_s /
    /// max_s cover the per-frame on_frame() calls; the one-shot finish()
    /// work (episode-scoped analysis) is reported separately in finish_s.
    struct StageStats {
        std::string name;
        std::size_t frames = 0;
        double total_s = 0.0;
        double max_s = 0.0;
        double finish_s = 0.0;
        double mean_s() const {
            return frames > 0 ? total_s / static_cast<double>(frames) : 0.0;
        }
    };
    const std::vector<StageStats>& stage_stats() const { return stage_stats_; }

  private:
    EngineConfig config_;
    core::PipelineConfig pipeline_;   ///< resolved once (fmcw applied)
    FrameSource* source_;
    EventBus bus_;
    core::WiTrackTracker tracker_;
    std::vector<std::unique_ptr<AppStage>> stages_;
    std::vector<StageStats> stage_stats_;
    Frame frame_;                     ///< reused across step() calls
    std::size_t frames_ = 0;
    bool finished_ = false;           ///< stage finish() already delivered
};

}  // namespace witrack::engine
