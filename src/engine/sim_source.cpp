#include "engine/sim_source.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "common/serialize.hpp"

namespace witrack::engine {

sim::ScenarioConfig make_scenario_config(const EngineConfig& config) {
    sim::ScenarioConfig scenario;
    scenario.fmcw = config.fmcw;
    scenario.through_wall = config.through_wall;
    scenario.antenna_separation_m = config.antenna_separation_m;
    scenario.device_height_m = config.device_height_m;
    scenario.noise = config.noise;
    scenario.seed = config.seed;
    scenario.fast_capture = config.fast_capture;
    scenario.model_sweep_nonlinearity = config.model_sweep_nonlinearity;
    scenario.second_person = config.second_person;
    scenario.cross_array = config.cross_array;
    return scenario;
}

SimSource::SimSource(const EngineConfig& config,
                     std::unique_ptr<sim::MotionScript> script,
                     std::unique_ptr<sim::MotionScript> second_script)
    : scenario_(std::make_unique<sim::Scenario>(make_scenario_config(config),
                                                std::move(script),
                                                std::move(second_script))) {
    attach_env_injector();
}

SimSource::SimSource(std::unique_ptr<sim::Scenario> scenario)
    : scenario_(std::move(scenario)) {
    attach_env_injector();
}

SimSource::SimSource(const sim::ScenarioSpec& spec)
    : scenario_(sim::make_scenario(spec)),
      injector_(sim::make_fault_injector(spec)) {
    attach_env_injector();
}

void SimSource::attach_env_injector() {
    if (injector_) return;
    const char* spec = std::getenv("WITRACK_HW_FAULTS");
    if (spec == nullptr || *spec == '\0') return;
    // A malformed spec throws (loudly): a fault campaign silently running
    // fault-free would green-light tests that never saw a fault.
    injector_ = std::make_unique<hw::FaultInjector>(hw::parse_fault_spec(spec));
}

bool SimSource::next(Frame& frame) {
    sim::Pose pose;
    std::optional<sim::Pose> pose2;
    if (!scenario_->next_into(frame.time_s, frame.sweeps, pose, pose2))
        return false;
    if (injector_) injector_->apply(frame.sweeps, frame.time_s);
    GroundTruth truth;
    truth.position = pose.center;
    if (pose2) truth.position2 = pose2->center;
    frame.truth = truth;
    return true;
}

void SimSource::save_state(common::StateWriter& writer) const {
    scenario_->save_state(writer);
    writer.boolean(injector_ != nullptr);
    if (injector_) injector_->save_state(writer);
}

void SimSource::load_state(common::StateReader& reader) {
    scenario_->load_state(reader);
    if (reader.boolean() != (injector_ != nullptr))
        throw std::runtime_error("SimSource: snapshot fault-injector mismatch");
    if (injector_) injector_->load_state(reader);
}

}  // namespace witrack::engine
