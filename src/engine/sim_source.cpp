#include "engine/sim_source.hpp"

#include <utility>

namespace witrack::engine {

sim::ScenarioConfig make_scenario_config(const EngineConfig& config) {
    sim::ScenarioConfig scenario;
    scenario.fmcw = config.fmcw;
    scenario.through_wall = config.through_wall;
    scenario.antenna_separation_m = config.antenna_separation_m;
    scenario.device_height_m = config.device_height_m;
    scenario.noise = config.noise;
    scenario.seed = config.seed;
    scenario.fast_capture = config.fast_capture;
    scenario.model_sweep_nonlinearity = config.model_sweep_nonlinearity;
    scenario.second_person = config.second_person;
    return scenario;
}

SimSource::SimSource(const EngineConfig& config,
                     std::unique_ptr<sim::MotionScript> script,
                     std::unique_ptr<sim::MotionScript> second_script)
    : scenario_(std::make_unique<sim::Scenario>(make_scenario_config(config),
                                                std::move(script),
                                                std::move(second_script))) {}

SimSource::SimSource(std::unique_ptr<sim::Scenario> scenario)
    : scenario_(std::move(scenario)) {}

bool SimSource::next(Frame& frame) {
    sim::Pose pose;
    std::optional<sim::Pose> pose2;
    if (!scenario_->next_into(frame.time_s, frame.sweeps, pose, pose2))
        return false;
    GroundTruth truth;
    truth.position = pose.center;
    if (pose2) truth.position2 = pose2->center;
    frame.truth = truth;
    return true;
}

}  // namespace witrack::engine
