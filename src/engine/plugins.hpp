// The paper's three applications as engine plugins. Each one used to be a
// hand-wired loop in examples/; as AppStages they ride the same frame
// stream, publish typed events, and compose freely (fall monitoring and
// multi-person tracking can run in the same Engine).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "apps/appliances.hpp"
#include "apps/fall_monitor.hpp"
#include "core/multi.hpp"
#include "core/pointing.hpp"
#include "engine/stage.hpp"

namespace witrack::engine {

/// Streams raw track points through apps::FallMonitor and publishes a
/// FallEvent for every completed fall (paper Section 6.2).
class FallMonitorStage : public AppStage {
  public:
    explicit FallMonitorStage(
        core::FallDetectorConfig config = core::FallDetectorConfig{},
        std::size_t max_alerts = 64)
        : monitor_(config, max_alerts) {}

    std::string_view name() const override { return "fall_monitor"; }
    Inputs required_inputs() const override {
        return apps::FallMonitor::kRequiredInputs;
    }
    bool concurrent_safe() const override { return true; }  ///< self-contained state
    void on_frame(const Frame& frame, const core::WiTrackTracker::FrameResult& result,
                  EventBus& bus) override;

    const apps::FallMonitor& monitor() const { return monitor_; }

    /// The monitor's detector window and alert ring are the stage state.
    void save_state(common::StateWriter& writer) const override {
        monitor_.save_state(writer);
    }
    void load_state(common::StateReader& reader) override {
        monitor_.load_state(reader);
    }

  private:
    apps::FallMonitor monitor_;
};

/// Accumulates the episode's TOF stream and, when the source ends, runs the
/// pointing estimator and publishes a PointingEvent if a valid arm gesture
/// was performed (paper Section 6.1).
class PointingStage : public AppStage {
  public:
    /// `max_frames` bounds the retained TOF window (a gesture lasts a few
    /// seconds; the default keeps ~50 s at the paper's 80 Hz frame rate so
    /// an endless live stream cannot grow memory without bound). 0 keeps
    /// the whole episode.
    explicit PointingStage(core::PointingConfig config = core::PointingConfig{},
                           std::size_t max_frames = 4096)
        : config_(config), max_frames_(max_frames) {}

    std::string_view name() const override { return "pointing"; }
    /// The gesture analysis consumes the TOF stream alone: with only
    /// TOF-demanding stages attached, the Engine skips localization and
    /// smoothing for the whole session.
    Inputs required_inputs() const override { return Inputs::kTof; }
    bool concurrent_safe() const override { return true; }  ///< self-contained state
    void attach(const StageContext& context, EventBus& bus) override;
    void on_frame(const Frame& frame, const core::WiTrackTracker::FrameResult& result,
                  EventBus& bus) override;
    void finish(EventBus& bus) override;

    /// The retained TOF window is the stage state (the estimator is rebuilt
    /// by attach()).
    void save_state(common::StateWriter& writer) const override;
    void load_state(common::StateReader& reader) override;

  private:
    core::PointingConfig config_;
    std::size_t max_frames_;
    std::optional<core::PointingEstimator> estimator_;
    std::vector<core::TofFrame> frames_;
};

/// Closes the loop of Section 6.1: reacts to the PointingEvents published
/// by PointingStage by toggling the matched appliance through the Insteon
/// driver. Purely event-driven -- it never touches the frame stream,
/// demonstrating bus-only composition.
class ApplianceController : public AppStage {
  public:
    /// Registry and driver are borrowed and must outlive the Engine.
    ApplianceController(apps::ApplianceRegistry& registry, apps::InsteonDriver& driver)
        : registry_(&registry), driver_(&driver) {}

    std::string_view name() const override { return "appliances"; }
    /// Purely event-driven: demands no pipeline products at all.
    Inputs required_inputs() const override { return Inputs::kNone; }
    bool concurrent_safe() const override { return true; }  ///< on_frame is empty
    void attach(const StageContext& context, EventBus& bus) override;
    void on_frame(const Frame&, const core::WiTrackTracker::FrameResult&,
                  EventBus&) override {}

    /// Appliance toggled by the most recent pointing gesture, if any matched.
    const std::optional<std::string>& last_actuated() const { return last_actuated_; }

    void save_state(common::StateWriter& writer) const override;
    void load_state(common::StateReader& reader) override;

  private:
    apps::ApplianceRegistry* registry_;
    apps::InsteonDriver* driver_;
    std::optional<std::string> last_actuated_;
};

/// Runs the multi-person tracker on each frame's multi-peak TOF
/// observations and publishes a PersonsEvent (paper Section 10). Requires
/// EngineConfig::with_contour_peaks(>= max_people).
class MultiPersonStage : public AppStage {
  public:
    explicit MultiPersonStage(std::size_t max_people = 2)
        : max_people_(max_people) {}

    std::string_view name() const override { return "multi_person"; }
    /// Disambiguates multi-peak TOF observations itself; the single-person
    /// localization and smoothing steps are dead weight for this workload.
    Inputs required_inputs() const override { return Inputs::kTof; }
    bool concurrent_safe() const override { return true; }  ///< self-contained state
    void attach(const StageContext& context, EventBus& bus) override;
    void on_frame(const Frame& frame, const core::WiTrackTracker::FrameResult& result,
                  EventBus& bus) override;

    /// The per-person Kalman tracks are the stage state (attach() must
    /// have run, which Engine::add_stage guarantees).
    void save_state(common::StateWriter& writer) const override;
    void load_state(common::StateReader& reader) override;

  private:
    std::size_t max_people_;
    std::optional<core::MultiPersonTracker> tracker_;
};

}  // namespace witrack::engine
