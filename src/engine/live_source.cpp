#include "engine/live_source.hpp"

#include <utility>

namespace witrack::engine {

hw::FrontendConfig make_frontend_config(const EngineConfig& config) {
    hw::FrontendConfig frontend;
    frontend.fmcw = config.fmcw;
    frontend.noise = config.noise;
    return frontend;
}

LiveSource::LiveSource(hw::FmcwFrontend& frontend, geom::ArrayGeometry array,
                       double duration_s, BodyProvider provider)
    : frontend_(&frontend),
      array_(std::move(array)),
      duration_s_(duration_s),
      provider_(std::move(provider)) {}

bool LiveSource::next(Frame& frame) {
    const auto& params = frontend_->params();
    const double time_s =
        static_cast<double>(frame_index_) * params.frame_duration_s();
    if (time_s >= duration_s_) return false;

    frame.time_s = time_s;
    frame.truth.reset();  // hardware has no ground truth

    const std::size_t sweeps = params.sweeps_per_frame;
    const std::size_t samples = params.samples_per_sweep();
    if (frame.sweeps.num_rx() != frontend_->num_rx() ||
        frame.sweeps.num_sweeps() != sweeps ||
        frame.sweeps.samples_per_sweep() != samples)
        frame.sweeps.resize(frontend_->num_rx(), sweeps, samples);

    const std::vector<rf::BodyScatterer> body =
        provider_ ? provider_(time_s) : std::vector<rf::BodyScatterer>{};
    for (std::size_t s = 0; s < sweeps; ++s)
        frontend_->capture_sweep_into(frame.sweeps, s, body);
    if (injector_) injector_->apply(frame.sweeps, time_s);

    ++frame_index_;
    return true;
}

}  // namespace witrack::engine
