// FrameSource over the simulator: wraps sim::Scenario, translating the one
// EngineConfig into the ScenarioConfig the simulator expects and forwarding
// ground-truth poses so subscribers can evaluate tracking error live.
#pragma once

#include <memory>

#include "engine/config.hpp"
#include "engine/frame_source.hpp"
#include "sim/motion.hpp"
#include "sim/scenario.hpp"

namespace witrack::engine {

/// Build the simulator configuration for a deployment described by
/// EngineConfig (the single place the two config types meet).
sim::ScenarioConfig make_scenario_config(const EngineConfig& config);

class SimSource : public FrameSource {
  public:
    /// Simulate `script` (and optionally a second person) under the
    /// deployment described by `config`.
    SimSource(const EngineConfig& config, std::unique_ptr<sim::MotionScript> script,
              std::unique_ptr<sim::MotionScript> second_script = nullptr);

    /// Escape hatch for a fully customized scenario.
    explicit SimSource(std::unique_ptr<sim::Scenario> scenario);

    bool next(Frame& frame) override;
    const geom::ArrayGeometry& array() const override { return scenario_->array(); }
    const FmcwParams& fmcw() const override { return scenario_->config().fmcw; }

    const sim::Scenario& scenario() const { return *scenario_; }

    /// Snapshot cursor: delegates to the scenario (frame index + RNG +
    /// motion state), so a restored sim session resumes bit-identically.
    void save_state(common::StateWriter& writer) const override {
        scenario_->save_state(writer);
    }
    void load_state(common::StateReader& reader) override {
        scenario_->load_state(reader);
    }

  private:
    std::unique_ptr<sim::Scenario> scenario_;
};

}  // namespace witrack::engine
