// FrameSource over the simulator: wraps sim::Scenario, translating the one
// EngineConfig into the ScenarioConfig the simulator expects and forwarding
// ground-truth poses so subscribers can evaluate tracking error live.
//
// A hw::FaultInjector can ride on the source (explicitly, from a scenario
// file, or via the WITRACK_HW_FAULTS environment variable): every captured
// frame is damaged in place before the engine sees it, exactly where a
// degrading front end would sit.
#pragma once

#include <memory>

#include "engine/config.hpp"
#include "engine/frame_source.hpp"
#include "hw/fault_injector.hpp"
#include "sim/motion.hpp"
#include "sim/scenario.hpp"
#include "sim/scenario_file.hpp"

namespace witrack::engine {

/// Build the simulator configuration for a deployment described by
/// EngineConfig (the single place the two config types meet).
sim::ScenarioConfig make_scenario_config(const EngineConfig& config);

class SimSource : public FrameSource {
  public:
    /// Simulate `script` (and optionally a second person) under the
    /// deployment described by `config`.
    SimSource(const EngineConfig& config, std::unique_ptr<sim::MotionScript> script,
              std::unique_ptr<sim::MotionScript> second_script = nullptr);

    /// Escape hatch for a fully customized scenario.
    explicit SimSource(std::unique_ptr<sim::Scenario> scenario);

    /// Instantiate a parsed scenario file: motion scripts, deployment and
    /// (when the spec schedules any) the fault injector, all data-driven.
    explicit SimSource(const sim::ScenarioSpec& spec);

    bool next(Frame& frame) override;
    const geom::ArrayGeometry& array() const override { return scenario_->array(); }
    const FmcwParams& fmcw() const override { return scenario_->config().fmcw; }

    const sim::Scenario& scenario() const { return *scenario_; }

    /// Attach (or replace/remove, with nullptr) the hardware fault
    /// injector. Without one, captured frames are bit-identical to a
    /// fault-free build.
    void set_fault_injector(std::unique_ptr<hw::FaultInjector> injector) {
        injector_ = std::move(injector);
    }
    const hw::FaultInjector* fault_injector() const { return injector_.get(); }

    /// Snapshot cursor: the scenario (frame index + RNG + motion state)
    /// plus, when a fault injector is attached, its RNG cursor and
    /// counters -- so a restored sim session resumes bit-identically,
    /// faults included.
    void save_state(common::StateWriter& writer) const override;
    void load_state(common::StateReader& reader) override;

  private:
    /// WITRACK_HW_FAULTS: attach an injector parsed from the environment
    /// when none is configured (the CI fault-matrix lane's hook).
    void attach_env_injector();

    std::unique_ptr<sim::Scenario> scenario_;
    std::unique_ptr<hw::FaultInjector> injector_;
};

}  // namespace witrack::engine
