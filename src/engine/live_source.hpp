// FrameSource over the FMCW hardware front end: the ingest path a real
// deployment uses. The source drives hw::FmcwFrontend sweep by sweep into
// the reused FrameBuffer -- exactly what a USRP capture thread would do --
// so swapping SimSource for LiveSource changes nothing downstream.
//
// In this repository the "hardware" is the simulated front end, so the
// scene content is injected through a BodyProvider callback; on real
// hardware the provider disappears and capture_sweep_into reads the ADC.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "engine/config.hpp"
#include "engine/frame_source.hpp"
#include "hw/fault_injector.hpp"
#include "hw/frontend.hpp"

namespace witrack::engine {

/// Build the front-end configuration for a deployment described by
/// EngineConfig (nonlinearity is left to the caller: deriving it runs the
/// VCO+PLL simulation, which LiveSource must not silently repeat).
hw::FrontendConfig make_frontend_config(const EngineConfig& config);

class LiveSource : public FrameSource {
  public:
    /// Scatterer constellation present during a frame (empty = empty room).
    using BodyProvider =
        std::function<std::vector<rf::BodyScatterer>(double time_s)>;

    /// Stream `duration_s` worth of frames from `frontend`. The frontend is
    /// borrowed and must outlive the source.
    LiveSource(hw::FmcwFrontend& frontend, geom::ArrayGeometry array,
               double duration_s, BodyProvider provider = {});

    bool next(Frame& frame) override;
    const geom::ArrayGeometry& array() const override { return array_; }
    const FmcwParams& fmcw() const override { return frontend_->params(); }

    /// Attach (or replace/remove, with nullptr) the hardware fault
    /// injector: every captured frame is damaged in place right after the
    /// ADC, before anything downstream sees it. Without one, frames are
    /// bit-identical to a fault-free build.
    void set_fault_injector(std::unique_ptr<hw::FaultInjector> injector) {
        injector_ = std::move(injector);
    }
    const hw::FaultInjector* fault_injector() const { return injector_.get(); }

  private:
    hw::FmcwFrontend* frontend_;
    geom::ArrayGeometry array_;
    double duration_s_;
    BodyProvider provider_;
    std::unique_ptr<hw::FaultInjector> injector_;
    std::size_t frame_index_ = 0;
};

}  // namespace witrack::engine
