#include "engine/replay.hpp"

#include <cstddef>
#include <stdexcept>

#include "common/serialize.hpp"

namespace witrack::engine {

// The replay wire format is built on the shared raw-stream helpers in
// common/serialize.hpp (one implementation with the snapshot format), with
// the "ReplaySource:" error prefix bound locally.
namespace {

using common::read_raw;
using common::write_raw;
using common::write_vec3;

template <typename T>
void read_or_throw(std::istream& in, T& value, const char* what) {
    common::read_or_throw(in, value, "ReplaySource", what);
}

void read_vec3(std::istream& in, geom::Vec3& v, const char* what) {
    common::read_vec3(in, v, "ReplaySource", what);
}

}  // namespace

Recorder::Recorder(const std::string& path, const FmcwParams& fmcw,
                   const geom::ArrayGeometry& array)
    : out_(path, std::ios::binary | std::ios::trunc) {
    if (!out_) throw std::runtime_error("Recorder: cannot open " + path);

    write_raw(out_, kReplayMagic);
    write_raw(out_, kReplayVersion);

    write_raw(out_, fmcw.start_frequency_hz);
    write_raw(out_, fmcw.bandwidth_hz);
    write_raw(out_, fmcw.sweep_duration_s);
    write_raw(out_, fmcw.sample_rate_hz);
    write_raw(out_, fmcw.tx_power_w);
    write_raw(out_, static_cast<std::uint64_t>(fmcw.sweeps_per_frame));

    write_vec3(out_, array.tx);
    write_vec3(out_, array.boresight);
    write_raw(out_, static_cast<std::uint64_t>(array.rx.size()));
    for (const auto& rx : array.rx) write_vec3(out_, rx);

    num_rx_ = array.rx.size();
    samples_per_sweep_ = fmcw.samples_per_sweep();
    sweeps_per_frame_ = fmcw.sweeps_per_frame;

    if (!out_) throw std::runtime_error("Recorder: header write failed");
}

void Recorder::write(const Frame& frame) {
    if (!out_.is_open()) throw std::runtime_error("Recorder: already closed");
    // A frame whose shape disagrees with the header would desync every
    // subsequent read (or fail ReplaySource's corruption bound); catch it
    // at the source so no unreplayable recording is ever written.
    if (frame.sweeps.num_rx() != num_rx_ ||
        frame.sweeps.samples_per_sweep() != samples_per_sweep_ ||
        frame.sweeps.num_sweeps() == 0 ||
        frame.sweeps.num_sweeps() > sweeps_per_frame_)
        throw std::invalid_argument("Recorder: frame shape mismatch");

    write_raw(out_, frame.time_s);
    write_raw(out_, static_cast<std::uint64_t>(frame.sweeps.num_sweeps()));
    write_raw(out_, static_cast<std::uint64_t>(frame.sweeps.samples_per_sweep()));

    std::uint8_t truth_flags = 0;
    if (frame.truth) {
        truth_flags |= 0x01;
        if (frame.truth->position2) truth_flags |= 0x02;
    }
    write_raw(out_, truth_flags);
    if (frame.truth) {
        write_vec3(out_, frame.truth->position);
        if (frame.truth->position2) write_vec3(out_, *frame.truth->position2);
    }

    out_.write(reinterpret_cast<const char*>(frame.sweeps.data()),
               static_cast<std::streamsize>(frame.sweeps.size() * sizeof(double)));
    if (!out_) throw std::runtime_error("Recorder: frame write failed");
    ++frames_written_;
}

void Recorder::close() {
    if (!out_.is_open()) return;
    out_.flush();
    const bool ok = static_cast<bool>(out_);
    out_.close();
    // A buffered write that only failed at flush time must not report a
    // complete recording.
    if (!ok) throw std::runtime_error("Recorder: flush failed on close");
}

ReplaySource::ReplaySource(const std::string& path)
    : in_(path, std::ios::binary) {
    if (!in_) throw std::runtime_error("ReplaySource: cannot open " + path);

    std::uint32_t magic = 0, version = 0;
    read_or_throw(in_, magic, "magic");
    if (magic != kReplayMagic)
        throw std::runtime_error("ReplaySource: not a WiTrack recording");
    read_or_throw(in_, version, "version");
    if (version != kReplayVersion)
        throw std::runtime_error("ReplaySource: unsupported recording version");

    read_or_throw(in_, fmcw_.start_frequency_hz, "fmcw");
    read_or_throw(in_, fmcw_.bandwidth_hz, "fmcw");
    read_or_throw(in_, fmcw_.sweep_duration_s, "fmcw");
    read_or_throw(in_, fmcw_.sample_rate_hz, "fmcw");
    read_or_throw(in_, fmcw_.tx_power_w, "fmcw");
    std::uint64_t sweeps_per_frame = 0;
    read_or_throw(in_, sweeps_per_frame, "fmcw");
    fmcw_.sweeps_per_frame = static_cast<std::size_t>(sweeps_per_frame);
    fmcw_.validate();

    read_vec3(in_, array_.tx, "array");
    read_vec3(in_, array_.boresight, "array");
    std::uint64_t num_rx = 0;
    read_or_throw(in_, num_rx, "array");
    array_.rx.resize(static_cast<std::size_t>(num_rx));
    for (auto& rx : array_.rx) read_vec3(in_, rx, "array");
}

bool ReplaySource::next(Frame& frame) {
    // Only EOF exactly on a frame boundary is a clean end; a partial
    // timestamp means the recording was cut mid-write.
    if (in_.peek() == std::char_traits<char>::eof()) return false;
    double time_s = 0.0;
    read_or_throw(in_, time_s, "frame timestamp");

    std::uint64_t num_sweeps = 0, samples = 0;
    read_or_throw(in_, num_sweeps, "frame header");
    read_or_throw(in_, samples, "frame header");
    // Bound-check against the header's FMCW parameters before sizing the
    // buffer: a corrupt frame header must fail cleanly, not allocate an
    // arbitrary amount of memory.
    if (samples != fmcw_.samples_per_sweep() || num_sweeps == 0 ||
        num_sweeps > fmcw_.sweeps_per_frame)
        throw std::runtime_error("ReplaySource: corrupt frame header");

    std::uint8_t truth_flags = 0;
    read_or_throw(in_, truth_flags, "frame header");

    frame.time_s = time_s;
    frame.truth.reset();
    if (truth_flags & 0x01) {
        GroundTruth truth;
        read_vec3(in_, truth.position, "ground truth");
        if (truth_flags & 0x02) {
            geom::Vec3 second;
            read_vec3(in_, second, "ground truth");
            truth.position2 = second;
        }
        frame.truth = truth;
    }

    if (frame.sweeps.num_rx() != array_.rx.size() ||
        frame.sweeps.num_sweeps() != num_sweeps ||
        frame.sweeps.samples_per_sweep() != samples)
        frame.sweeps.resize(array_.rx.size(), static_cast<std::size_t>(num_sweeps),
                            static_cast<std::size_t>(samples));
    in_.read(reinterpret_cast<char*>(frame.sweeps.data()),
             static_cast<std::streamsize>(frame.sweeps.size() * sizeof(double)));
    if (!in_) throw std::runtime_error("ReplaySource: truncated frame samples");

    ++frames_read_;
    return true;
}

void ReplaySource::save_state(common::StateWriter& writer) const {
    writer.u64(frames_read_);
}

void ReplaySource::load_state(common::StateReader& reader) {
    const auto target = static_cast<std::size_t>(reader.u64());
    if (frames_read_ != 0)
        throw std::runtime_error(
            "ReplaySource: load_state requires a freshly-opened recording");
    // Skip forward through the already-consumed prefix; the scratch frame's
    // buffer is reused across the skipped reads.
    Frame scratch;
    while (frames_read_ < target) {
        if (!next(scratch))
            throw std::runtime_error(
                "ReplaySource: snapshot cursor beyond end of recording");
    }
}

}  // namespace witrack::engine
