// Data-driven scenario files: one experiment -- motion scripts, person
// count, wall material, seeds, and a scripted hardware-fault timeline --
// described in a small line-oriented text format, loaded at run time. No
// recompile to change a campaign, and a fixed seed makes every run replay
// bit for bit (the determinism the snapshot/restore and fault-accounting
// tests lean on).
//
// Format (see docs/SCENARIO_FORMAT.md for the full grammar):
//
//   # comment
//   name     = through-wall-walk
//   seed     = 42
//   duration_s = 12
//   wall     = concrete            # sheetrock | concrete | glass | wood
//   cross_array = true             # 4-RX array (dropout-tolerant)
//   person   = line -2,4.5,0.9 -> 2,6.5,0.9
//   fault_rates = saturation=0.05,seed=7
//   fault    = dropout 5.0 9.0 rx=2
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geom/vec3.hpp"
#include "hw/fault_injector.hpp"
#include "sim/scenario.hpp"

namespace witrack::sim {

/// One person's motion, as described by a `person = ...` line.
struct PersonSpec {
    enum class Kind : std::uint8_t {
        kStill,      ///< stand at `position` for the whole run
        kLine,       ///< walk `from` -> `to` at constant speed
        kWaypoints,  ///< seeded random-waypoint walk in the default bounds
    };
    Kind kind = Kind::kLine;
    geom::Vec3 from{-2.0, 4.5, 0.9};   ///< kLine start (z = body-centre height)
    geom::Vec3 to{2.0, 6.5, 0.9};      ///< kLine end
    geom::Vec3 position{0.0, 5.0, 0.9};///< kStill stand position
    double center_height_m = 1.0;      ///< body-centre height (kWaypoints)
};

/// A fully parsed scenario file, ready to instantiate.
struct ScenarioSpec {
    std::string name;
    ScenarioConfig config;          ///< seed, wall, array, capture knobs
    double duration_s = 10.0;
    std::vector<PersonSpec> persons;  ///< 1 or 2 entries
    hw::FaultConfig faults;           ///< rates + scripted windows

    /// True when the spec configures any hardware fault (rate or window):
    /// only then does the source attach an injector, so fault-free specs
    /// stay on the pristine (bit-identical) path.
    bool has_faults() const {
        return !faults.schedule.empty() || faults.sweep_drop_rate > 0.0 ||
               faults.sweep_short_rate > 0.0 || faults.saturation_rate > 0.0 ||
               faults.dropout_rate > 0.0 || faults.drift_rate > 0.0 ||
               faults.burst_rate > 0.0;
    }
};

/// Parse scenario text. `source_name` labels error messages; every parse
/// error throws std::invalid_argument as "<source_name>:<line>: <reason>"
/// (unknown key, malformed number, out-of-range value, truncated person or
/// fault line).
ScenarioSpec parse_scenario_text(const std::string& text,
                                 const std::string& source_name);

/// Load and parse a scenario file. Throws std::runtime_error when the file
/// cannot be read; parse errors as in parse_scenario_text.
ScenarioSpec load_scenario_file(const std::string& path);

/// Instantiate the simulator for a parsed spec (motion scripts are built
/// from the person entries; deterministic under the spec's seed).
std::unique_ptr<Scenario> make_scenario(const ScenarioSpec& spec);

/// The spec's fault injector, or nullptr when it schedules no faults.
std::unique_ptr<hw::FaultInjector> make_fault_injector(const ScenarioSpec& spec);

}  // namespace witrack::sim
