// Articulated human scattering model. The body is a constellation of
// scattering centres (torso, head, two arms, two legs) whose positions
// follow the body centre with gait-driven oscillation, and whose RCS
// scintillates frame to frame (Swerling-I).
//
// Error realism: the reflection point WiTrack ranges to is the body
// *surface*, wanders with gait, and differs subtly per receive antenna
// (e.g. the low antenna sees the legs better). This is what produces the
// paper's error anatomy: z error > x error > y error (Section 9.1), with
// VICON-style centre-vs-surface depth compensation applied downstream.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/random.hpp"
#include "geom/vec3.hpp"
#include "rf/rcs.hpp"
#include "rf/scene.hpp"

namespace witrack::common {
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::sim {

struct HumanParams {
    double height_m = 1.75;
    double torso_half_depth_m = 0.11;  ///< body-centre to chest-surface depth
    double shoulder_half_width_m = 0.22;
    double gait_wander_m = 0.06;       ///< horizontal reflection-point wander at walking speed
    double vertical_wander_m = 0.14;   ///< vertical reflection-centre wander at walking speed
    double arm_length_m = 0.65;
};

/// Instantaneous commanded pose from a motion script.
struct Pose {
    geom::Vec3 center;                ///< body-centre ground truth ("VICON")
    double speed_mps = 0.0;           ///< horizontal speed (drives gait)
    double posture_scale = 1.0;       ///< 1 standing; < 1 compresses heights (sit/fall)
    std::optional<geom::Vec3> hand;   ///< explicit hand position during gestures
    bool body_static = false;         ///< freeze body scatterers (pointing stance)
};

class HumanModel {
  public:
    HumanModel(HumanParams params, Rng rng);

    /// Advance the internal gait/scintillation state by dt and produce the
    /// scatterer constellation for the next coherent interval.
    /// `device_position` orients the reflecting surface toward the radar.
    std::vector<rf::BodyScatterer> update(const Pose& pose, double dt,
                                          const geom::Vec3& device_position);

    const HumanParams& params() const { return params_; }

    /// Ground-truth body centre of the last pose.
    const geom::Vec3& body_center() const { return center_; }

    /// Serialize the gait/scintillation state: RNG, gait phase, wander
    /// offsets, and each part's current RCS draw. The RCS models themselves
    /// are construction-time parameters.
    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

  private:
    struct Part {
        rf::RcsModel rcs;
        double rcs_now = 0.0;
        double phase_now = 0.0;
    };

    void refresh_fluctuations(double activity);  // activity in [0,1]

    HumanParams params_;
    Rng rng_;
    geom::Vec3 center_{};
    double gait_phase_ = 0.0;
    double wander_x_ = 0.0, wander_y_ = 0.0, wander_z_ = 0.0;
    Part torso_, head_, arm_left_, arm_right_, leg_left_, leg_right_, hand_;
    bool fluctuations_initialized_ = false;
};

}  // namespace witrack::sim
