// Environment builder: rooms with walls and furniture clutter matching the
// paper's evaluation setup (Section 8): a VICON room with 6-inch sheetrock
// walls, the device either inside the room (line-of-sight, Fig. 8a) or
// behind the front wall in the adjacent hallway (through-wall, Fig. 8b).
//
// World frame: the device (Tx antenna) sits at the origin's x/y with the Tx
// at height ~1.3 m; +y points from the device into the tracked room; z is
// elevation above the floor (z = 0).
#pragma once

#include "rf/scene.hpp"

namespace witrack::sim {

struct RoomSpec {
    double half_width_m = 4.0;       ///< room spans x in [-half_width, half_width]
    double near_wall_y_m = 0.3;      ///< front wall y (device at y = 0)
    double depth_m = 10.0;           ///< back wall at near_wall_y + depth
    double height_m = 3.0;
    rf::Material wall_material = rf::materials::sheetrock();
    bool device_outside = true;      ///< true: through-wall; false: LOS (no front wall)
    bool add_furniture = true;       ///< desks/cabinets as static point clutter
};

/// Area in which the person is allowed to move (the paper's 6 x 5 m VICON
/// capture area, about 2.5 m behind the front wall).
struct MotionBounds {
    double x_min = -3.0, x_max = 3.0;
    double y_min = 3.0, y_max = 8.0;
};

struct Environment {
    rf::Scene scene;
    MotionBounds bounds;
    double ground_z = 0.0;
};

/// Build the evaluation environment.
Environment make_lab_environment(const RoomSpec& spec = RoomSpec{});

/// Paper Section 9.1 through-wall setup: device in the hallway, antennas
/// facing the VICON room's front wall.
inline Environment make_through_wall_lab() {
    RoomSpec spec;
    spec.device_outside = true;
    return make_lab_environment(spec);
}

/// Paper Fig. 8(a) line-of-sight setup: device inside the room next to the
/// wall.
inline Environment make_line_of_sight_lab() {
    RoomSpec spec;
    spec.device_outside = false;
    return make_lab_environment(spec);
}

}  // namespace witrack::sim
