#include "sim/environment.hpp"

namespace witrack::sim {

using geom::Vec3;
using rf::StaticReflector;
using rf::Wall;

Environment make_lab_environment(const RoomSpec& spec) {
    Environment env;
    const double mid_y = spec.near_wall_y_m + spec.depth_m / 2.0;
    const double mid_z = spec.height_m / 2.0;

    // Front wall (between device and room) only exists for the through-wall
    // deployment; in line-of-sight the device stands inside the room.
    if (spec.device_outside) {
        env.scene.walls.emplace_back(Vec3{0.0, spec.near_wall_y_m, mid_z},
                                     Vec3{0.0, 1.0, 0.0}, Vec3{1.0, 0.0, 0.0},
                                     spec.half_width_m, mid_z, spec.wall_material);
    }

    // Side walls.
    env.scene.walls.emplace_back(Vec3{-spec.half_width_m, mid_y, mid_z},
                                 Vec3{1.0, 0.0, 0.0}, Vec3{0.0, 1.0, 0.0},
                                 spec.depth_m / 2.0, mid_z, spec.wall_material);
    env.scene.walls.emplace_back(Vec3{+spec.half_width_m, mid_y, mid_z},
                                 Vec3{-1.0, 0.0, 0.0}, Vec3{0.0, 1.0, 0.0},
                                 spec.depth_m / 2.0, mid_z, spec.wall_material);

    // Back wall.
    env.scene.walls.emplace_back(Vec3{0.0, spec.near_wall_y_m + spec.depth_m, mid_z},
                                 Vec3{0.0, -1.0, 0.0}, Vec3{1.0, 0.0, 0.0},
                                 spec.half_width_m, mid_z, spec.wall_material);

    // Furniture: static point reflectors that create the horizontal stripes
    // of Fig. 3(a).
    if (spec.add_furniture) {
        env.scene.clutter.push_back(StaticReflector{{2.2, 4.1, 0.75}, 1.6});   // desk
        env.scene.clutter.push_back(StaticReflector{{-2.8, 6.3, 1.05}, 2.2});  // cabinet
        env.scene.clutter.push_back(StaticReflector{{1.4, 9.2, 0.45}, 1.0});   // radiator
        env.scene.clutter.push_back(StaticReflector{{-1.0, 8.6, 0.8}, 0.9});   // chair
    }

    env.bounds.x_min = -spec.half_width_m + 1.0;
    env.bounds.x_max = spec.half_width_m - 1.0;
    env.bounds.y_min = spec.near_wall_y_m + 2.5;
    env.bounds.y_max = spec.near_wall_y_m + spec.depth_m - 2.0;
    return env;
}

}  // namespace witrack::sim
