#include "sim/human.hpp"

#include <algorithm>
#include <cmath>

#include "common/serialize.hpp"

namespace witrack::sim {

using geom::Vec3;
using rf::BodyScatterer;

HumanModel::HumanModel(HumanParams params, Rng rng)
    : params_(params), rng_(rng) {
    torso_ = {rf::rcs::torso()};
    head_ = {rf::rcs::head()};
    arm_left_ = {rf::rcs::arm()};
    arm_right_ = {rf::rcs::arm()};
    leg_left_ = {rf::rcs::leg()};
    leg_right_ = {rf::rcs::leg()};
    hand_ = {rf::rcs::hand()};
}

void HumanModel::refresh_fluctuations(double activity) {
    auto refresh = [&](Part& part) {
        if (!fluctuations_initialized_) {
            part.rcs_now = part.rcs.sample(rng_);
            part.phase_now = rng_.uniform(0.0, 2.0 * M_PI);
            return;
        }
        if (activity <= 0.0) return;  // frozen: static body cancels in subtraction
        // Exponentially correlated scintillation: mix toward a fresh draw at
        // a rate proportional to how much the body is articulating.
        const double mix = std::min(0.5, 0.5 * activity);
        part.rcs_now = (1.0 - mix) * part.rcs_now + mix * part.rcs.sample(rng_);
        part.phase_now += rng_.gaussian(0.6 * activity);
    };
    refresh(torso_);
    refresh(head_);
    refresh(arm_left_);
    refresh(arm_right_);
    refresh(leg_left_);
    refresh(leg_right_);
    refresh(hand_);
    fluctuations_initialized_ = true;
}

std::vector<BodyScatterer> HumanModel::update(const Pose& pose, double dt,
                                              const Vec3& device_position) {
    const Vec3 prev_center = center_;
    center_ = pose.center;

    const double activity =
        pose.body_static ? 0.0 : std::clamp(pose.speed_mps / 1.0, 0.0, 1.0);

    // Gait phase advances with stride rate (~stride length 0.7 m).
    if (activity > 0.0 && dt > 0.0)
        gait_phase_ += 2.0 * M_PI * (pose.speed_mps / 0.7) * dt;

    // Ornstein-Uhlenbeck wander of the dominant reflection point; frozen
    // when the body is static so background subtraction can cancel it.
    if (activity > 0.0 && dt > 0.0) {
        const double tau = 0.4;
        const double sigma_h = params_.gait_wander_m * activity;
        const double sigma_v = params_.vertical_wander_m * activity;
        const double decay = dt / tau;
        wander_x_ += -wander_x_ * decay + sigma_h * std::sqrt(2.0 * decay) * rng_.gaussian();
        wander_y_ += -wander_y_ * decay + sigma_h * std::sqrt(2.0 * decay) * rng_.gaussian();
        wander_z_ += -wander_z_ * decay + sigma_v * std::sqrt(2.0 * decay) * rng_.gaussian();
    }

    refresh_fluctuations(activity);

    // Direction toward the device (horizontal): the radar ranges to the body
    // surface facing it, not the body centre.
    Vec3 toward = device_position - center_;
    toward.z = 0.0;
    toward = toward.norm() > 1e-9 ? toward.normalized() : Vec3{0.0, -1.0, 0.0};
    const Vec3 lateral{-toward.y, toward.x, 0.0};

    // Direction of travel for limb swing.
    Vec3 travel = center_ - prev_center;
    travel.z = 0.0;
    travel = travel.norm() > 1e-9 ? travel.normalized() : lateral;

    const double ps = pose.posture_scale;
    const double swing = 0.30 * std::min(pose.speed_mps, 1.5) / 1.5;
    const double arm_swing = swing * 0.8;

    auto clamp_floor = [](Vec3 p) {
        p.z = std::max(p.z, 0.05);
        return p;
    };

    std::vector<BodyScatterer> out;
    out.reserve(7);

    // Torso: the dominant echo, at the device-facing surface, with wander.
    {
        Vec3 p = center_ + toward * params_.torso_half_depth_m +
                 lateral * wander_x_ + toward * wander_y_;
        p.z += 0.10 * ps + wander_z_;
        out.push_back({clamp_floor(p), torso_.rcs_now, torso_.phase_now});
    }
    // Head.
    {
        Vec3 p = center_;
        p.z += (0.50 + 0.05) * ps * (params_.height_m / 1.75);
        out.push_back({clamp_floor(p), head_.rcs_now, head_.phase_now});
    }
    // Arms (skip the swing model if an explicit hand pose drives a gesture).
    {
        const double s = std::sin(gait_phase_);
        Vec3 left = center_ - lateral * params_.shoulder_half_width_m +
                    travel * (arm_swing * s);
        left.z += 0.15 * ps;
        Vec3 right = center_ + lateral * params_.shoulder_half_width_m -
                     travel * (arm_swing * s);
        right.z += 0.15 * ps;
        out.push_back({clamp_floor(left), arm_left_.rcs_now, arm_left_.phase_now});
        out.push_back({clamp_floor(right), arm_right_.rcs_now, arm_right_.phase_now});
    }
    // Legs (counter-phase swing).
    {
        const double s = std::sin(gait_phase_ + M_PI);
        Vec3 left = center_ - lateral * 0.10 + travel * (swing * s);
        left.z -= 0.55 * ps * (params_.height_m / 1.75) * 0.85;
        left.z += 0.55 * (1 - ps);  // posture collapse keeps legs near ground
        Vec3 right = center_ + lateral * 0.10 - travel * (swing * s);
        right.z = left.z;
        // Seated or prone legs fold under the body and reflect far less
        // toward the device than standing legs do.
        const double leg_visibility = 0.25 + 0.75 * ps;
        out.push_back({clamp_floor(left), leg_left_.rcs_now * leg_visibility,
                       leg_left_.phase_now});
        out.push_back({clamp_floor(right), leg_right_.rcs_now * leg_visibility,
                       leg_right_.phase_now});
    }
    // Explicit hand (pointing gesture): hand plus a forearm midpoint.
    if (pose.hand) {
        const Vec3 shoulder = center_ + lateral * params_.shoulder_half_width_m +
                              Vec3{0, 0, 0.18 * ps};
        out.push_back({clamp_floor(*pose.hand), hand_.rcs_now, hand_.phase_now});
        out.push_back({clamp_floor(geom::lerp(shoulder, *pose.hand, 0.55)),
                       hand_.rcs_now * 0.8, hand_.phase_now + 0.7});
    }
    return out;
}

void HumanModel::save_state(common::StateWriter& writer) const {
    common::save_state(writer, rng_.engine());
    writer.vec3(center_);
    writer.f64(gait_phase_);
    writer.f64(wander_x_);
    writer.f64(wander_y_);
    writer.f64(wander_z_);
    // Parts serialize in the same fixed order refresh_fluctuations draws in.
    for (const Part* part : {&torso_, &head_, &arm_left_, &arm_right_, &leg_left_,
                             &leg_right_, &hand_}) {
        writer.f64(part->rcs_now);
        writer.f64(part->phase_now);
    }
    writer.boolean(fluctuations_initialized_);
}

void HumanModel::load_state(common::StateReader& reader) {
    common::load_state(reader, rng_.engine());
    reader.vec3(center_);
    gait_phase_ = reader.f64();
    wander_x_ = reader.f64();
    wander_y_ = reader.f64();
    wander_z_ = reader.f64();
    for (Part* part : {&torso_, &head_, &arm_left_, &arm_right_, &leg_left_,
                       &leg_right_, &hand_}) {
        part->rcs_now = reader.f64();
        part->phase_now = reader.f64();
    }
    fluctuations_initialized_ = reader.boolean();
}

}  // namespace witrack::sim
