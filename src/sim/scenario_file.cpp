#include "sim/scenario_file.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/random.hpp"

namespace witrack::sim {

namespace {

std::string trim(const std::string& s) {
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return {};
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split_ws(const std::string& s) {
    std::vector<std::string> out;
    std::istringstream in(s);
    std::string token;
    while (in >> token) out.push_back(token);
    return out;
}

/// Error context: every diagnostic carries the source name and line number,
/// so a malformed campaign file points at the exact offending line.
struct Context {
    const std::string& source;
    std::size_t line;

    [[noreturn]] void fail(const std::string& message) const {
        throw std::invalid_argument(source + ":" + std::to_string(line) +
                                    ": " + message);
    }
};

double parse_double(const Context& ctx, const std::string& key,
                    const std::string& value) {
    std::size_t used = 0;
    double parsed = 0.0;
    try {
        parsed = std::stod(value, &used);
    } catch (const std::exception&) {
        used = 0;
    }
    if (value.empty() || used != value.size() || !std::isfinite(parsed))
        ctx.fail("bad number for '" + key + "': '" + value + "'");
    return parsed;
}

std::uint64_t parse_u64(const Context& ctx, const std::string& key,
                        const std::string& value) {
    try {
        std::size_t used = 0;
        const std::uint64_t parsed = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        ctx.fail("bad integer for '" + key + "': '" + value + "'");
    }
}

bool parse_bool(const Context& ctx, const std::string& key,
                const std::string& value) {
    if (value == "true" || value == "1") return true;
    if (value == "false" || value == "0") return false;
    ctx.fail("bad boolean for '" + key + "': '" + value +
             "' (want true or false)");
}

geom::Vec3 parse_vec3(const Context& ctx, const std::string& value) {
    double v[3] = {0.0, 0.0, 0.0};
    std::size_t pos = 0;
    for (int i = 0; i < 3; ++i) {
        const std::size_t comma = i < 2 ? value.find(',', pos) : value.size();
        if (comma == std::string::npos)
            ctx.fail("expected x,y,z coordinate, got '" + value + "'");
        v[i] = parse_double(ctx, "coordinate",
                            trim(value.substr(pos, comma - pos)));
        pos = comma + 1;
    }
    return {v[0], v[1], v[2]};
}

rf::Material parse_wall(const Context& ctx, const std::string& value) {
    if (value == "sheetrock") return rf::materials::sheetrock();
    if (value == "concrete") return rf::materials::concrete();
    if (value == "glass") return rf::materials::glass();
    if (value == "wood") return rf::materials::wood();
    ctx.fail("unknown wall material '" + value +
             "' (want sheetrock | concrete | glass | wood)");
}

PersonSpec parse_person(const Context& ctx, const std::string& value) {
    const auto tokens = split_ws(value);
    if (tokens.empty())
        ctx.fail("person needs a motion kind (still | line | waypoints)");
    PersonSpec person;
    if (tokens[0] == "still") {
        if (tokens.size() != 2) ctx.fail("usage: person = still x,y,z");
        person.kind = PersonSpec::Kind::kStill;
        person.position = parse_vec3(ctx, tokens[1]);
        person.center_height_m = person.position.z;
    } else if (tokens[0] == "line") {
        if (tokens.size() != 4 || tokens[2] != "->")
            ctx.fail("usage: person = line x,y,z -> x,y,z");
        person.kind = PersonSpec::Kind::kLine;
        person.from = parse_vec3(ctx, tokens[1]);
        person.to = parse_vec3(ctx, tokens[3]);
        person.center_height_m = person.from.z;
    } else if (tokens[0] == "waypoints") {
        if (tokens.size() > 2) ctx.fail("usage: person = waypoints [height]");
        person.kind = PersonSpec::Kind::kWaypoints;
        if (tokens.size() == 2)
            person.center_height_m = parse_double(ctx, "height", tokens[1]);
    } else {
        ctx.fail("unknown motion kind '" + tokens[0] +
                 "' (want still | line | waypoints)");
    }
    return person;
}

hw::FaultWindow parse_fault_window(const Context& ctx,
                                   const std::string& value) {
    const auto tokens = split_ws(value);
    if (tokens.size() < 3)
        ctx.fail(
            "usage: fault = <kind> <start_s> <end_s> "
            "[rx=N] [level=|ppm=|gain=|rate=X]");
    hw::FaultWindow window;
    // Each kind's magnitude default mirrors the FaultConfig rate default,
    // so "fault = saturation 2 4" behaves like the rate-driven fault.
    if (tokens[0] == "dropout") {
        window.kind = hw::FaultWindow::Kind::kDropout;
    } else if (tokens[0] == "saturation") {
        window.kind = hw::FaultWindow::Kind::kSaturation;
        window.magnitude = 0.25;
    } else if (tokens[0] == "drift") {
        window.kind = hw::FaultWindow::Kind::kDrift;
        window.magnitude = 200.0;
    } else if (tokens[0] == "burst") {
        window.kind = hw::FaultWindow::Kind::kBurst;
        window.magnitude = 8.0;
    } else if (tokens[0] == "sweep_drop") {
        window.kind = hw::FaultWindow::Kind::kSweepDrop;
        window.magnitude = 1.0;
    } else if (tokens[0] == "sweep_short") {
        window.kind = hw::FaultWindow::Kind::kSweepShort;
        window.magnitude = 1.0;
    } else {
        ctx.fail("unknown fault kind '" + tokens[0] +
                 "' (want dropout | saturation | drift | burst | "
                 "sweep_drop | sweep_short)");
    }
    window.start_s = parse_double(ctx, "start_s", tokens[1]);
    window.end_s = tokens[2] == "inf"
                       ? std::numeric_limits<double>::infinity()
                       : parse_double(ctx, "end_s", tokens[2]);
    if (window.start_s < 0.0 || window.end_s <= window.start_s)
        ctx.fail("fault window needs 0 <= start_s < end_s");
    for (std::size_t i = 3; i < tokens.size(); ++i) {
        const std::size_t eq = tokens[i].find('=');
        if (eq == std::string::npos)
            ctx.fail("expected key=value fault option, got '" + tokens[i] +
                     "'");
        const std::string key = tokens[i].substr(0, eq);
        const std::string val = tokens[i].substr(eq + 1);
        if (key == "rx") {
            const double rx = parse_double(ctx, key, val);
            if (rx < 0.0 || rx != std::floor(rx) || rx > 255.0)
                ctx.fail("'rx' must be a small non-negative integer, got '" +
                         val + "'");
            window.rx = static_cast<int>(rx);
        } else if (key == "level" || key == "ppm" || key == "gain" ||
                   key == "rate" || key == "mag") {
            window.magnitude = parse_double(ctx, key, val);
        } else {
            ctx.fail("unknown fault option '" + key + "'");
        }
    }
    const bool per_sweep = window.kind == hw::FaultWindow::Kind::kSweepDrop ||
                           window.kind == hw::FaultWindow::Kind::kSweepShort;
    if (per_sweep && (window.magnitude < 0.0 || window.magnitude > 1.0))
        ctx.fail("per-sweep fault rate must be in [0, 1]");
    if (window.kind == hw::FaultWindow::Kind::kSaturation &&
        window.magnitude <= 0.0)
        ctx.fail("saturation level must be > 0");
    return window;
}

std::unique_ptr<MotionScript> make_motion(const PersonSpec& person,
                                          double duration_s,
                                          std::uint64_t seed,
                                          std::uint64_t index) {
    switch (person.kind) {
        case PersonSpec::Kind::kStill:
            return std::make_unique<StandStillScript>(
                person.position, duration_s, person.center_height_m);
        case PersonSpec::Kind::kLine:
            return std::make_unique<LineWalkScript>(person.from, person.to,
                                                    duration_s,
                                                    person.center_height_m);
        case PersonSpec::Kind::kWaypoints:
        default:
            // Forks 10+ keep the walk decoupled from the scenario's own
            // forks (1..3), so adding a person never reseeds the channel.
            return std::make_unique<RandomWaypointWalk>(
                MotionBounds{}, duration_s, Rng(seed).fork(10 + index), 0.5,
                1.3, 0.25, person.center_height_m);
    }
}

}  // namespace

ScenarioSpec parse_scenario_text(const std::string& text,
                                 const std::string& source_name) {
    ScenarioSpec spec;
    std::istringstream in(text);
    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        const Context ctx{source_name, line_no};
        const std::size_t hash = raw.find('#');
        const std::string line =
            trim(hash == std::string::npos ? raw : raw.substr(0, hash));
        if (line.empty()) continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            ctx.fail("expected 'key = value', got '" + line + "'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty()) ctx.fail("missing key before '='");
        if (value.empty()) ctx.fail("missing value for '" + key + "'");

        if (key == "name") {
            spec.name = value;
        } else if (key == "seed") {
            spec.config.seed = parse_u64(ctx, key, value);
        } else if (key == "duration_s") {
            spec.duration_s = parse_double(ctx, key, value);
            if (spec.duration_s <= 0.0)
                ctx.fail("'duration_s' must be > 0, got '" + value + "'");
        } else if (key == "wall") {
            spec.config.wall_material = parse_wall(ctx, value);
        } else if (key == "through_wall") {
            spec.config.through_wall = parse_bool(ctx, key, value);
        } else if (key == "fast_capture") {
            spec.config.fast_capture = parse_bool(ctx, key, value);
        } else if (key == "cross_array") {
            spec.config.cross_array = parse_bool(ctx, key, value);
        } else if (key == "model_sweep_nonlinearity") {
            spec.config.model_sweep_nonlinearity = parse_bool(ctx, key, value);
        } else if (key == "device_height_m") {
            spec.config.device_height_m = parse_double(ctx, key, value);
            if (spec.config.device_height_m <= 0.0)
                ctx.fail("'device_height_m' must be > 0");
        } else if (key == "antenna_separation_m") {
            spec.config.antenna_separation_m = parse_double(ctx, key, value);
            if (spec.config.antenna_separation_m <= 0.0)
                ctx.fail("'antenna_separation_m' must be > 0");
        } else if (key == "person") {
            if (spec.persons.size() >= 2)
                ctx.fail("at most two 'person' lines are supported");
            spec.persons.push_back(parse_person(ctx, value));
        } else if (key == "fault_rates") {
            // Delegate to the shared WITRACK_HW_FAULTS spec parser; its
            // diagnostics gain this file's line context. The scripted
            // windows parsed so far are kept.
            try {
                hw::FaultConfig rates = hw::parse_fault_spec(value);
                rates.schedule = std::move(spec.faults.schedule);
                spec.faults = std::move(rates);
            } catch (const std::invalid_argument& error) {
                ctx.fail(error.what());
            }
        } else if (key == "fault") {
            spec.faults.schedule.push_back(parse_fault_window(ctx, value));
        } else {
            ctx.fail("unknown key '" + key + "'");
        }
    }
    if (spec.persons.empty())
        throw std::invalid_argument(
            source_name + ": scenario needs at least one 'person = ...' line");
    spec.config.second_person = spec.persons.size() > 1;
    return spec;
}

ScenarioSpec load_scenario_file(const std::string& path) {
    std::ifstream file(path);
    if (!file)
        throw std::runtime_error("scenario file: cannot open '" + path + "'");
    std::ostringstream contents;
    contents << file.rdbuf();
    return parse_scenario_text(contents.str(), path);
}

std::unique_ptr<Scenario> make_scenario(const ScenarioSpec& spec) {
    if (spec.persons.empty())
        throw std::invalid_argument("make_scenario: spec has no persons");
    auto first = make_motion(spec.persons[0], spec.duration_s,
                             spec.config.seed, 0);
    std::unique_ptr<MotionScript> second;
    if (spec.persons.size() > 1)
        second = make_motion(spec.persons[1], spec.duration_s,
                             spec.config.seed, 1);
    return std::make_unique<Scenario>(spec.config, std::move(first),
                                      std::move(second));
}

std::unique_ptr<hw::FaultInjector> make_fault_injector(
    const ScenarioSpec& spec) {
    if (!spec.has_faults()) return nullptr;
    return std::make_unique<hw::FaultInjector>(spec.faults);
}

}  // namespace witrack::sim
