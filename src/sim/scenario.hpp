// Scenario engine: wires an environment, a human (or two), the RF channel
// and the FMCW front end into a streaming source of (ground truth, baseband
// sweeps) frames -- the simulated equivalent of one evaluation experiment
// (paper Section 8).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/constants.hpp"
#include "common/frame_buffer.hpp"
#include "geom/array_geometry.hpp"
#include "hw/frontend.hpp"
#include "sim/environment.hpp"
#include "sim/human.hpp"
#include "sim/motion.hpp"

namespace witrack::common {
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::sim {

struct ScenarioConfig {
    FmcwParams fmcw;
    bool through_wall = true;
    double antenna_separation_m = 1.0;
    double device_height_m = 1.3;
    rf::NoiseModel noise;
    HumanParams human;
    std::uint64_t seed = 1;
    /// Synthesize one statistically equivalent averaged sweep per frame
    /// instead of all sweeps_per_frame sweeps (5x faster; the coherent
    /// 5-sweep average is computed analytically by scaling noise by
    /// 1/sqrt(n)). Large parameter-sweep benches enable this.
    bool fast_capture = false;
    /// Model the residual PLL sweep nonlinearity (fit from the VCO+PLL
    /// simulation) instead of a perfectly linear sweep.
    bool model_sweep_nonlinearity = true;
    /// Optional second person (multi-person tracking extension).
    bool second_person = false;
    /// Wall construction of the room's front wall (through-wall mode).
    rf::Material wall_material = rf::materials::sheetrock();
    /// Use the 4-RX cross array (redundant fourth antenna above the Tx)
    /// instead of the paper's default 3-RX T array. The extra antenna lets
    /// localization survive a single-antenna dropout.
    bool cross_array = false;
};

class Scenario {
  public:
    Scenario(ScenarioConfig config, std::unique_ptr<MotionScript> script,
             std::unique_ptr<MotionScript> second_script = nullptr);

    struct Frame {
        double time_s = 0.0;
        /// Contiguous rx-major baseband storage; sweeps.sweep(rx, s) is one
        /// baseband sweep (samples_per_sweep doubles). Reusing one Frame
        /// across next() calls keeps the steady state allocation-free.
        FrameBuffer sweeps;
        Pose pose;                  ///< person 1 ground truth
        std::optional<Pose> pose2;  ///< person 2 ground truth, if present
    };

    /// Produce the next frame; returns false when the script has ended.
    bool next(Frame& frame);

    /// Same production, but into caller-owned storage (the engine layer
    /// streams directly into its own Frame without an intermediate copy).
    bool next_into(double& time_s, FrameBuffer& sweeps, Pose& pose,
                   std::optional<Pose>& pose2);

    /// Serialize the simulation cursor: frame index, front-end capture
    /// state, and each human's gait/scintillation state. Everything else
    /// (scene, channel, static cache) is deterministic from the config and
    /// is rebuilt by construction; motion scripts are pure functions of
    /// time. Restoring into an identically-constructed Scenario resumes
    /// the stream bit-identically.
    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

    const geom::ArrayGeometry& array() const { return array_; }
    const Environment& environment() const { return environment_; }
    const ScenarioConfig& config() const { return config_; }
    double frame_dt() const { return config_.fmcw.frame_duration_s(); }
    double duration_s() const { return script_->duration_s(); }
    const MotionScript& script() const { return *script_; }

  private:
    ScenarioConfig config_;
    std::unique_ptr<MotionScript> script_;
    std::unique_ptr<MotionScript> second_script_;
    Environment environment_;
    geom::ArrayGeometry array_;
    std::unique_ptr<hw::FmcwFrontend> frontend_;
    std::unique_ptr<HumanModel> human_;
    std::unique_ptr<HumanModel> human2_;
    std::size_t frame_index_ = 0;
};

/// Derive the residual sweep nonlinearity by running the VCO + PLL loop
/// simulation once (paper Fig. 7's feedback linearizer).
hw::SweepNonlinearity simulate_pll_residual(const FmcwParams& fmcw);

}  // namespace witrack::sim
