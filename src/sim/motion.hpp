// Motion scripts: time-parameterized activity generators that play the role
// of the paper's human subjects (Section 8c). Each script produces the
// ground-truth Pose stream for one experiment; the simulator's pose doubles
// as the VICON reference.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "common/random.hpp"
#include "geom/vec3.hpp"
#include "sim/environment.hpp"
#include "sim/human.hpp"

namespace witrack::sim {

class MotionScript {
  public:
    virtual ~MotionScript() = default;
    virtual Pose pose_at(double t) const = 0;
    virtual double duration_s() const = 0;
};

/// Smoothstep easing in [0, 1].
double smoothstep01(double t);

/// Random-waypoint walking inside the motion bounds, with occasional
/// pauses: the "move at will" workload of the tracking experiments
/// (Sections 9.1-9.3). Standing body-centre height scales with the subject.
class RandomWaypointWalk : public MotionScript {
  public:
    RandomWaypointWalk(const MotionBounds& bounds, double duration_s, Rng rng,
                       double speed_min = 0.5, double speed_max = 1.3,
                       double pause_probability = 0.25, double center_height = 1.0);

    Pose pose_at(double t) const override;
    double duration_s() const override { return duration_; }

  private:
    struct Knot {
        double t;
        geom::Vec3 pos;
    };
    double duration_;
    double center_height_;
    std::vector<Knot> knots_;
};

/// Activity scripts for fall detection (Section 6.2 / 9.5). All four share
/// the same shape: walk briefly, then perform the activity, then remain.
enum class ActivityKind { kWalk, kSitChair, kSitFloor, kFall };

class ActivityScript : public MotionScript {
  public:
    /// Randomized transition duration and end elevation per activity class;
    /// the distributions deliberately overlap slightly (a slow crumple vs a
    /// fast floor-sit) so classification is non-trivial, as in the paper's
    /// 132-experiment study.
    ActivityScript(ActivityKind kind, const MotionBounds& bounds, Rng rng,
                   double duration_s = 30.0, double subject_height = 1.75);

    Pose pose_at(double t) const override;
    double duration_s() const override { return duration_; }

    ActivityKind kind() const { return kind_; }
    double transition_duration_s() const { return transition_duration_; }
    double final_elevation_m() const { return final_z_; }

  private:
    ActivityKind kind_;
    double duration_;
    double stand_z_;
    double final_z_;
    double transition_start_;
    double transition_duration_;
    double final_posture_;
    geom::Vec3 walk_from_, walk_to_;
    double walk_until_;
};

/// Pointing gesture (Section 6.1): stand still, raise the arm toward a
/// chosen direction, hold, drop, stand still. The body stays static so only
/// the arm survives background subtraction.
class PointingScript : public MotionScript {
  public:
    PointingScript(const geom::Vec3& stand_position, const geom::Vec3& direction,
                   Rng rng, double center_height = 1.0);

    Pose pose_at(double t) const override;
    double duration_s() const override { return duration_; }

    /// Ground-truth pointing direction (unit vector).
    const geom::Vec3& true_direction() const { return direction_; }
    double raise_start_s() const { return raise_start_; }
    double drop_end_s() const { return drop_start_ + drop_duration_; }

  private:
    geom::Vec3 hand_at(double t) const;

    geom::Vec3 stand_;
    geom::Vec3 direction_;
    double center_height_;
    double raise_start_, raise_duration_;
    double hold_duration_;
    double drop_start_, drop_duration_;
    double duration_;
    geom::Vec3 hand_rest_, hand_extended_;
};

/// Stand perfectly still for the whole duration (used by the static-user
/// calibration extension and negative-control tests).
class StandStillScript : public MotionScript {
  public:
    StandStillScript(const geom::Vec3& position, double duration_s,
                     double center_height = 1.0)
        : position_(position), duration_(duration_s), center_height_(center_height) {}

    Pose pose_at(double) const override {
        Pose p;
        p.center = {position_.x, position_.y, center_height_};
        p.speed_mps = 0.0;
        p.body_static = true;
        return p;
    }
    double duration_s() const override { return duration_; }

  private:
    geom::Vec3 position_;
    double duration_;
    double center_height_;
};

/// Deterministic straight-line walk between two points (unit tests and
/// ablation benches need repeatable geometry).
class LineWalkScript : public MotionScript {
  public:
    LineWalkScript(const geom::Vec3& from, const geom::Vec3& to, double duration_s,
                   double center_height = 1.0)
        : from_(from), to_(to), duration_(duration_s), center_height_(center_height) {}

    Pose pose_at(double t) const override {
        const double u = std::clamp(t / duration_, 0.0, 1.0);
        Pose p;
        const geom::Vec3 pos = geom::lerp(from_, to_, u);
        p.center = {pos.x, pos.y, center_height_};
        p.speed_mps = (to_ - from_).norm() / duration_;
        return p;
    }
    double duration_s() const override { return duration_; }

  private:
    geom::Vec3 from_, to_;
    double duration_;
    double center_height_;
};

}  // namespace witrack::sim
