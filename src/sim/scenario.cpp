#include "sim/scenario.hpp"

#include <cmath>
#include <stdexcept>

#include "common/serialize.hpp"
#include "hw/pll.hpp"
#include "hw/vco.hpp"

namespace witrack::sim {

using geom::Vec3;

hw::SweepNonlinearity simulate_pll_residual(const FmcwParams& fmcw) {
    const hw::Vco vco;
    const hw::SweepLinearizer linearizer;
    const auto result = linearizer.simulate_sweep(vco, fmcw);
    return result.fit_ripple(fmcw.sweep_duration_s);
}

Scenario::Scenario(ScenarioConfig config, std::unique_ptr<MotionScript> script,
                   std::unique_ptr<MotionScript> second_script)
    : config_(std::move(config)),
      script_(std::move(script)),
      second_script_(std::move(second_script)) {
    config_.fmcw.validate();

    RoomSpec room;
    room.device_outside = config_.through_wall;
    room.wall_material = config_.wall_material;
    environment_ = make_lab_environment(room);

    const Vec3 center{0.0, 0.0, config_.device_height_m};
    array_ = config_.cross_array
                 ? geom::make_cross_array(center, config_.antenna_separation_m)
                 : geom::make_t_array(center, config_.antenna_separation_m);

    // Antennas face +y into the room.
    rf::Antenna tx{array_.tx, array_.boresight, {}};
    std::vector<rf::Antenna> rx;
    for (const auto& p : array_.rx) rx.push_back({p, array_.boresight, {}});

    rf::ChannelConfig channel_config;
    channel_config.fmcw = config_.fmcw;
    rf::Channel channel(channel_config, tx, rx, environment_.scene);

    Rng rng(config_.seed);

    hw::FrontendConfig fe;
    fe.fmcw = config_.fmcw;
    fe.noise = config_.noise;
    if (config_.model_sweep_nonlinearity)
        fe.nonlinearity = simulate_pll_residual(config_.fmcw);
    if (config_.fast_capture) {
        // One synthesized sweep stands in for the coherent average of
        // sweeps_per_frame sweeps: noise and jitter shrink by sqrt(n).
        const double n = static_cast<double>(config_.fmcw.sweeps_per_frame);
        fe.noise.system_noise_figure_db -= 10.0 * std::log10(n);
        fe.static_gain_jitter /= std::sqrt(n);
    }
    frontend_ = std::make_unique<hw::FmcwFrontend>(fe, std::move(channel), rng.fork(1));

    human_ = std::make_unique<HumanModel>(config_.human, rng.fork(2));
    if (config_.second_person || second_script_)
        human2_ = std::make_unique<HumanModel>(config_.human, rng.fork(3));
}

bool Scenario::next(Frame& frame) {
    return next_into(frame.time_s, frame.sweeps, frame.pose, frame.pose2);
}

bool Scenario::next_into(double& time_s, FrameBuffer& sweeps_out, Pose& pose,
                         std::optional<Pose>& pose2) {
    // Index-based time avoids accumulation drift in the end-of-script test.
    const double t = static_cast<double>(frame_index_) * frame_dt();
    if (t >= script_->duration_s()) return false;

    time_s = t;
    pose = script_->pose_at(t);
    pose2.reset();

    const double dt = frame_dt();
    auto scatterers = human_->update(pose, dt, array_.tx);
    if (human2_ && second_script_) {
        pose2 = second_script_->pose_at(t);
        const auto extra = human2_->update(*pose2, dt, array_.tx);
        scatterers.insert(scatterers.end(), extra.begin(), extra.end());
    }

    const std::size_t sweeps =
        config_.fast_capture ? 1 : config_.fmcw.sweeps_per_frame;
    const std::size_t samples = config_.fmcw.samples_per_sweep();
    // capture_sweep_into assigns every sample, so skip the zero-fill when a
    // reused buffer already has the right shape.
    if (sweeps_out.num_rx() != frontend_->num_rx() ||
        sweeps_out.num_sweeps() != sweeps ||
        sweeps_out.samples_per_sweep() != samples)
        sweeps_out.resize(frontend_->num_rx(), sweeps, samples);
    for (std::size_t s = 0; s < sweeps; ++s)
        frontend_->capture_sweep_into(sweeps_out, s, scatterers);

    ++frame_index_;
    return true;
}

void Scenario::save_state(common::StateWriter& writer) const {
    writer.u64(frame_index_);
    frontend_->save_state(writer);
    human_->save_state(writer);
    writer.boolean(human2_ != nullptr);
    if (human2_) human2_->save_state(writer);
}

void Scenario::load_state(common::StateReader& reader) {
    frame_index_ = static_cast<std::size_t>(reader.u64());
    frontend_->load_state(reader);
    human_->load_state(reader);
    const bool has_second = reader.boolean();
    if (has_second != (human2_ != nullptr))
        throw std::runtime_error("Scenario: snapshot second-person mismatch");
    if (human2_) human2_->load_state(reader);
}

}  // namespace witrack::sim
