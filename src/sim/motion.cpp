#include "sim/motion.hpp"

#include <algorithm>
#include <cmath>

namespace witrack::sim {

using geom::Vec3;

double smoothstep01(double t) {
    t = std::clamp(t, 0.0, 1.0);
    return t * t * (3.0 - 2.0 * t);
}

// ------------------------------------------------------ RandomWaypointWalk

RandomWaypointWalk::RandomWaypointWalk(const MotionBounds& bounds, double duration_s,
                                       Rng rng, double speed_min, double speed_max,
                                       double pause_probability, double center_height)
    : duration_(duration_s), center_height_(center_height) {
    // Pre-generate the waypoint timeline so pose_at() is a pure function of
    // t (scripts can be queried out of order).
    Vec3 pos{rng.uniform(bounds.x_min, bounds.x_max),
             rng.uniform(bounds.y_min, bounds.y_max), 0.0};
    double t = 0.0;
    knots_.push_back({0.0, pos});
    while (t < duration_) {
        if (rng.chance(pause_probability)) {
            const double pause = rng.uniform(0.8, 2.5);
            t += pause;
            knots_.push_back({t, pos});
            continue;
        }
        const Vec3 next{rng.uniform(bounds.x_min, bounds.x_max),
                        rng.uniform(bounds.y_min, bounds.y_max), 0.0};
        const double speed = rng.uniform(speed_min, speed_max);
        const double dist = (next - pos).norm();
        if (dist < 0.5) continue;
        t += dist / speed;
        pos = next;
        knots_.push_back({t, pos});
    }
}

Pose RandomWaypointWalk::pose_at(double t) const {
    t = std::clamp(t, 0.0, duration_);
    Pose pose;
    pose.center = {knots_.back().pos.x, knots_.back().pos.y, center_height_};
    for (std::size_t i = 1; i < knots_.size(); ++i) {
        if (t > knots_[i].t) continue;
        const auto& a = knots_[i - 1];
        const auto& b = knots_[i];
        const double span = b.t - a.t;
        const double u = span > 0.0 ? (t - a.t) / span : 1.0;
        const Vec3 p = geom::lerp(a.pos, b.pos, u);
        pose.center = {p.x, p.y, center_height_};
        pose.speed_mps = span > 0.0 ? (b.pos - a.pos).norm() / span : 0.0;
        break;
    }
    return pose;
}

// ----------------------------------------------------------- ActivityScript

ActivityScript::ActivityScript(ActivityKind kind, const MotionBounds& bounds, Rng rng,
                               double duration_s, double subject_height)
    : kind_(kind), duration_(duration_s) {
    stand_z_ = 0.57 * subject_height;
    walk_from_ = {rng.uniform(bounds.x_min, bounds.x_max),
                  rng.uniform(bounds.y_min, bounds.y_max), 0.0};
    walk_to_ = {rng.uniform(bounds.x_min, bounds.x_max),
                rng.uniform(bounds.y_min, bounds.y_max), 0.0};
    walk_until_ = rng.uniform(6.0, 10.0);
    transition_start_ = walk_until_ + rng.uniform(0.8, 1.5);

    switch (kind) {
        case ActivityKind::kWalk:
            transition_duration_ = 0.0;
            final_z_ = stand_z_;
            final_posture_ = 1.0;
            break;
        case ActivityKind::kSitChair:
            // Chair seat ~0.45 m; body centre ends around 0.62 m.
            transition_duration_ = rng.uniform(0.9, 1.6);
            final_z_ = rng.uniform(0.58, 0.70);
            final_posture_ = 0.75;
            break;
        case ActivityKind::kSitFloor:
            // Sitting on the floor: slow, controlled descent to near ground.
            // Lower tail overlaps fast enough to occasionally look like a
            // fall, as in the paper's one misclassified floor-sit.
            transition_duration_ = rng.uniform(1.5, 2.6);
            final_z_ = rng.uniform(0.26, 0.36);
            final_posture_ = 0.4;
            break;
        case ActivityKind::kFall:
            // Falls are fast, but a minority are slow crumples that the
            // detector may miss (the paper missed 2 of 33).
            transition_duration_ = rng.chance(0.07) ? rng.uniform(0.95, 1.35)
                                                    : rng.uniform(0.30, 0.65);
            final_z_ = rng.uniform(0.08, 0.18);
            final_posture_ = 0.15;
            break;
    }
}

Pose ActivityScript::pose_at(double t) const {
    t = std::clamp(t, 0.0, duration_);
    Pose pose;

    if (kind_ == ActivityKind::kWalk) {
        // Walk the whole time, looping between the two endpoints.
        const double leg_time = std::max(
            0.5, (walk_to_ - walk_from_).norm() / 1.0);
        const double phase = std::fmod(t, 2.0 * leg_time);
        const double u = phase < leg_time ? phase / leg_time
                                          : 2.0 - phase / leg_time;
        const Vec3 p = geom::lerp(walk_from_, walk_to_, u);
        pose.center = {p.x, p.y, stand_z_};
        pose.speed_mps = (walk_to_ - walk_from_).norm() / leg_time;
        return pose;
    }

    // Walk -> pause -> transition -> rest.
    if (t < walk_until_) {
        const double u = smoothstep01(t / walk_until_);
        const Vec3 p = geom::lerp(walk_from_, walk_to_, u);
        pose.center = {p.x, p.y, stand_z_};
        pose.speed_mps = (walk_to_ - walk_from_).norm() / walk_until_;
        return pose;
    }

    pose.center = {walk_to_.x, walk_to_.y, stand_z_};
    if (t < transition_start_) {
        pose.speed_mps = 0.05;  // settling
        return pose;
    }

    const double u =
        transition_duration_ > 0.0
            ? smoothstep01((t - transition_start_) / transition_duration_)
            : 1.0;
    pose.center.z = stand_z_ + (final_z_ - stand_z_) * u;
    pose.posture_scale = 1.0 + (final_posture_ - 1.0) * u;
    // Vertical speed keeps the body "articulating" during the transition so
    // it stays visible to background subtraction; people also shift for a
    // couple of seconds after landing (settling), which is what lets the
    // tracker converge on the final elevation.
    const double transition_end = transition_start_ + transition_duration_;
    if (u < 1.0)
        pose.speed_mps = std::max(
            0.3, std::abs(stand_z_ - final_z_) / std::max(0.2, transition_duration_));
    else if (t < transition_end + 2.0)
        pose.speed_mps = 0.25;
    else
        pose.speed_mps = 0.0;
    return pose;
}

// ----------------------------------------------------------- PointingScript

PointingScript::PointingScript(const Vec3& stand_position, const Vec3& direction,
                               Rng rng, double center_height)
    : stand_(stand_position),
      direction_(direction.normalized()),
      center_height_(center_height) {
    raise_start_ = 1.2 + rng.uniform(0.0, 0.4);
    raise_duration_ = rng.uniform(0.7, 1.1);
    hold_duration_ = 1.0 + rng.uniform(0.0, 0.3);
    drop_start_ = raise_start_ + raise_duration_ + hold_duration_;
    drop_duration_ = rng.uniform(0.7, 1.1);
    duration_ = drop_start_ + drop_duration_ + 1.5;

    const Vec3 center{stand_.x, stand_.y, center_height_};
    const Vec3 shoulder = center + Vec3{0.22, 0.0, 0.18};
    hand_rest_ = center + Vec3{0.25, 0.0, -0.30};
    hand_extended_ = shoulder + direction_ * 0.65;
}

Vec3 PointingScript::hand_at(double t) const {
    if (t < raise_start_) return hand_rest_;
    if (t < raise_start_ + raise_duration_)
        return geom::lerp(hand_rest_, hand_extended_,
                          smoothstep01((t - raise_start_) / raise_duration_));
    if (t < drop_start_) return hand_extended_;
    if (t < drop_start_ + drop_duration_)
        return geom::lerp(hand_extended_, hand_rest_,
                          smoothstep01((t - drop_start_) / drop_duration_));
    return hand_rest_;
}

Pose PointingScript::pose_at(double t) const {
    Pose pose;
    pose.center = {stand_.x, stand_.y, center_height_};
    pose.speed_mps = 0.0;
    pose.body_static = true;
    pose.hand = hand_at(std::clamp(t, 0.0, duration_));
    return pose;
}

}  // namespace witrack::sim
