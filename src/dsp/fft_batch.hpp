// Deferred r2c transform collector: pipeline stages *stage* their range
// FFTs into an FftBatch instead of executing them inline, and a later
// run() groups every staged transform that shares a plan shape into one
// lane-interleaved BatchKernel pass (see fft_kernels.hpp). This is how
// EngineHost amortizes twiddle loads across the per-antenna transforms of
// one frame AND across the ready sessions of one scheduling round: every
// session's sweeps of one shape land in the same group.
//
// Execution is bit-identical to running each transform sequentially
// (kFloat64 batches perform the same IEEE-754 operations per member), so
// staging through a batch is observationally equivalent to the serial
// per-session path -- asserted by tests/test_fleet.cpp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/fft.hpp"

namespace witrack::dsp {

class FftBatch {
  public:
    /// Stage one transform: `plan.forward(input, out)` -- or the fused
    /// windowed form when `window` is non-empty -- to be executed by the
    /// next run(). `plan`, the spans' storage and `out` must stay valid
    /// (and un-resized) until then; outputs are written only by run().
    void enqueue(const RealFft& plan, std::span<const double> input,
                 std::span<const double> window, std::vector<cplx>& out);

    /// SoA variant: the staged transform lands in separate re/im planes
    /// (see RealFft::forward_windowed_soa). Same lifetime contract; SoA
    /// and complex members freely share one batch pass.
    void enqueue(const RealFft& plan, std::span<const double> input,
                 std::span<const double> window, std::vector<double>& out_re,
                 std::vector<double>& out_im);

    /// Transforms staged and not yet executed.
    std::size_t pending() const { return items_.size(); }

    /// Execute every staged transform, grouping same-shape plans into
    /// lane-interleaved batch passes, then clear the queue. Returns the
    /// number of transforms that ran inside a true batch pass of B >= 2
    /// (telemetry: 0 means every staged transform fell back to the
    /// sequential schedule).
    std::size_t run(FftScratch& scratch,
                    BatchPrecision precision = BatchPrecision::kFloat64);

    /// Drop staged work without executing it (e.g. when the frame that
    /// staged it is being abandoned).
    void clear() { items_.clear(); }

  private:
    struct Item {
        const RealFft* plan;
        RealFft::BatchItem work;
        bool done;
    };
    std::vector<Item> items_;
    std::vector<RealFft::BatchItem> group_;  ///< reused per run()
};

}  // namespace witrack::dsp
