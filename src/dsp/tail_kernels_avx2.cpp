// AVX2 (256-bit) instantiations of the lane-templated analysis-tail
// kernels. This is the only tail translation unit compiled with -mavx2
// (see CMakeLists.txt); runtime dispatch guards entry, and on builds
// without AVX2 support the entry points degrade to the SSE2 level so the
// symbols always link.
#include "dsp/tail_kernels_impl.hpp"

namespace witrack::dsp::tail::detail {

#if defined(__AVX2__)

void diff_magnitude_avx2(const double* cur_re, const double* cur_im,
                         double* prev_re, double* prev_im, double* out,
                         std::size_t n) {
    run_diff_magnitude_t<simd::AvxD>(cur_re, cur_im, prev_re, prev_im, out, n);
}

void scaled_diff_magnitude_avx2(const double* cur_re, const double* cur_im,
                                const double* ref_re, const double* ref_im,
                                double scale, double* out, std::size_t n) {
    run_scaled_diff_magnitude_t<simd::AvxD>(cur_re, cur_im, ref_re, ref_im,
                                            scale, out, n);
}

Moments extent_moments_avx2(const double* v, std::size_t lo, std::size_t hi,
                            double threshold, double bin_m) {
    return run_extent_moments_t<simd::AvxD>(v, lo, hi, threshold, bin_m);
}

std::size_t max_bin_avx2(const double* v, std::size_t n) {
    return run_max_bin_t<simd::AvxD>(v, n);
}

void peak_candidates_avx2(const double* v, std::size_t n, double threshold,
                          double* out) {
    run_peak_candidates_t<simd::AvxD>(v, n, threshold, out);
}

#else  // !__AVX2__

void diff_magnitude_avx2(const double* cur_re, const double* cur_im,
                         double* prev_re, double* prev_im, double* out,
                         std::size_t n) {
    diff_magnitude_sse2(cur_re, cur_im, prev_re, prev_im, out, n);
}

void scaled_diff_magnitude_avx2(const double* cur_re, const double* cur_im,
                                const double* ref_re, const double* ref_im,
                                double scale, double* out, std::size_t n) {
    scaled_diff_magnitude_sse2(cur_re, cur_im, ref_re, ref_im, scale, out, n);
}

Moments extent_moments_avx2(const double* v, std::size_t lo, std::size_t hi,
                            double threshold, double bin_m) {
    return extent_moments_sse2(v, lo, hi, threshold, bin_m);
}

std::size_t max_bin_avx2(const double* v, std::size_t n) {
    return max_bin_sse2(v, n);
}

void peak_candidates_avx2(const double* v, std::size_t n, double threshold,
                          double* out) {
    peak_candidates_sse2(v, n, threshold, out);
}

#endif  // __AVX2__

}  // namespace witrack::dsp::tail::detail
