#include "dsp/kalman.hpp"

#include <stdexcept>

#include "common/serialize.hpp"

namespace witrack::dsp {

namespace {

// Matrices serialize element-wise in row-major (r, c) order.
template <std::size_t R, std::size_t C>
void save_matrix(common::StateWriter& writer, const Matrix<R, C>& m) {
    for (std::size_t r = 0; r < R; ++r)
        for (std::size_t c = 0; c < C; ++c) writer.f64(m(r, c));
}

template <std::size_t R, std::size_t C>
void load_matrix(common::StateReader& reader, Matrix<R, C>& m) {
    for (std::size_t r = 0; r < R; ++r)
        for (std::size_t c = 0; c < C; ++c) m(r, c) = reader.f64();
}

}  // namespace

ScalarKalman::ScalarKalman(double process_noise, double measurement_noise)
    : q_(process_noise), r_(measurement_noise) {
    if (process_noise <= 0 || measurement_noise <= 0)
        throw std::invalid_argument("ScalarKalman: noise parameters must be positive");
    reset();
}

void ScalarKalman::reset() {
    state_ = Vector<2>();
    covariance_ = Matrix<2, 2>::identity() * 1e3;
    initialized_ = false;
}

void ScalarKalman::predict(double dt) {
    // F = [1 dt; 0 1], discrete white-noise-acceleration process noise.
    Matrix<2, 2> f = Matrix<2, 2>::identity();
    f(0, 1) = dt;
    const double q2 = q_ * q_;
    Matrix<2, 2> qm;
    qm(0, 0) = 0.25 * dt * dt * dt * dt * q2;
    qm(0, 1) = qm(1, 0) = 0.5 * dt * dt * dt * q2;
    qm(1, 1) = dt * dt * q2;
    state_ = f * state_;
    covariance_ = f * covariance_ * f.transpose() + qm;
}

double ScalarKalman::update(double measurement, double dt) {
    if (!initialized_) {
        state_(0, 0) = measurement;
        state_(1, 0) = 0.0;
        covariance_ = Matrix<2, 2>::identity();
        covariance_(0, 0) = r_ * r_;
        covariance_(1, 1) = q_ * q_;
        initialized_ = true;
        return measurement;
    }
    predict(dt);
    // Measurement H = [1 0].
    const double innovation = measurement - state_(0, 0);
    const double s = covariance_(0, 0) + r_ * r_;
    const double k0 = covariance_(0, 0) / s;
    const double k1 = covariance_(1, 0) / s;
    state_(0, 0) += k0 * innovation;
    state_(1, 0) += k1 * innovation;
    // Joseph-free covariance update: P = (I - K H) P.
    Matrix<2, 2> p = covariance_;
    covariance_(0, 0) = (1.0 - k0) * p(0, 0);
    covariance_(0, 1) = (1.0 - k0) * p(0, 1);
    covariance_(1, 0) = p(1, 0) - k1 * p(0, 0);
    covariance_(1, 1) = p(1, 1) - k1 * p(0, 1);
    return state_(0, 0);
}

double ScalarKalman::predict_only(double dt) {
    if (!initialized_) return 0.0;
    predict(dt);
    return state_(0, 0);
}

PositionKalman::PositionKalman(double process_noise, double measurement_noise)
    : q_(process_noise), r_(measurement_noise) {
    if (process_noise <= 0 || measurement_noise <= 0)
        throw std::invalid_argument("PositionKalman: noise parameters must be positive");
    reset();
}

void PositionKalman::reset() {
    state_ = Vector<6>();
    covariance_ = Matrix<6, 6>::identity() * 1e3;
    initialized_ = false;
}

void PositionKalman::predict(double dt) {
    Matrix<6, 6> f = Matrix<6, 6>::identity();
    for (std::size_t axis = 0; axis < 3; ++axis) f(axis, axis + 3) = dt;
    const double q2 = q_ * q_;
    Matrix<6, 6> qm;
    for (std::size_t axis = 0; axis < 3; ++axis) {
        qm(axis, axis) = 0.25 * dt * dt * dt * dt * q2;
        qm(axis, axis + 3) = qm(axis + 3, axis) = 0.5 * dt * dt * dt * q2;
        qm(axis + 3, axis + 3) = dt * dt * q2;
    }
    state_ = f * state_;
    covariance_ = f * covariance_ * f.transpose() + qm;
}

PositionKalman::Position PositionKalman::update(const Position& measurement, double dt) {
    return update(measurement, dt, 1.0);
}

PositionKalman::Position PositionKalman::update(const Position& measurement, double dt,
                                                double noise_scale) {
    // noise_scale = 1.0 multiplies exactly (IEEE), so the healthy path is
    // bit-identical to the historical two-argument update.
    const double r_eff = r_ * noise_scale;
    if (!initialized_) {
        state_(0, 0) = measurement.x;
        state_(1, 0) = measurement.y;
        state_(2, 0) = measurement.z;
        covariance_ = Matrix<6, 6>::identity();
        for (std::size_t axis = 0; axis < 3; ++axis) {
            covariance_(axis, axis) = r_eff * r_eff;
            covariance_(axis + 3, axis + 3) = q_ * q_;
        }
        initialized_ = true;
        return measurement;
    }
    predict(dt);
    // H = [I3 | 0]; innovation covariance S = H P H^T + R.
    Matrix<3, 3> s;
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c) s(r, c) = covariance_(r, c);
    for (std::size_t i = 0; i < 3; ++i) s(i, i) += r_eff * r_eff;
    const Matrix<3, 3> s_inv = s.inverse();

    // K = P H^T S^-1 is 6x3; P H^T is the first three columns of P.
    Matrix<6, 3> pht;
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 3; ++c) pht(r, c) = covariance_(r, c);
    const Matrix<6, 3> k = pht * s_inv;

    Vector<3> innovation;
    innovation(0, 0) = measurement.x - state_(0, 0);
    innovation(1, 0) = measurement.y - state_(1, 0);
    innovation(2, 0) = measurement.z - state_(2, 0);
    state_ = state_ + k * innovation;

    // P = (I - K H) P ; K H is 6x6 with only the first three columns of K.
    Matrix<6, 6> kh;
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 3; ++c) kh(r, c) = k(r, c);
    covariance_ = (Matrix<6, 6>::identity() - kh) * covariance_;
    return position();
}

PositionKalman::Position PositionKalman::predict_only(double dt) {
    if (!initialized_) return {0.0, 0.0, 0.0};
    predict(dt);
    return position();
}

void ScalarKalman::save_state(common::StateWriter& writer) const {
    save_matrix(writer, state_);
    save_matrix(writer, covariance_);
    writer.boolean(initialized_);
}

void ScalarKalman::load_state(common::StateReader& reader) {
    load_matrix(reader, state_);
    load_matrix(reader, covariance_);
    initialized_ = reader.boolean();
}

void PositionKalman::save_state(common::StateWriter& writer) const {
    save_matrix(writer, state_);
    save_matrix(writer, covariance_);
    writer.boolean(initialized_);
}

void PositionKalman::load_state(common::StateReader& reader) {
    load_matrix(reader, state_);
    load_matrix(reader, covariance_);
    initialized_ = reader.boolean();
}

}  // namespace witrack::dsp
