#include "dsp/fft_batch.hpp"

namespace witrack::dsp {

void FftBatch::enqueue(const RealFft& plan, std::span<const double> input,
                       std::span<const double> window, std::vector<cplx>& out) {
    items_.push_back({&plan, {input, window, &out}, false});
}

void FftBatch::enqueue(const RealFft& plan, std::span<const double> input,
                       std::span<const double> window,
                       std::vector<double>& out_re,
                       std::vector<double>& out_im) {
    items_.push_back({&plan, {input, window, nullptr, &out_re, &out_im}, false});
}

std::size_t FftBatch::run(FftScratch& scratch, BatchPrecision precision) {
    std::size_t batched = 0;
    // Stable O(n^2) grouping scan: n is the number of transforms staged in
    // one scheduling round (sessions x antennas, typically tens), and the
    // common case is one or two distinct shapes, so the scan is noise next
    // to the transforms themselves.
    for (std::size_t i = 0; i < items_.size(); ++i) {
        if (items_[i].done) continue;
        const RealFft& plan = *items_[i].plan;
        group_.clear();
        group_.push_back(items_[i].work);
        items_[i].done = true;
        for (std::size_t j = i + 1; j < items_.size(); ++j) {
            if (items_[j].done) continue;
            if (!plan.batch_compatible(*items_[j].plan)) continue;
            group_.push_back(items_[j].work);
            items_[j].done = true;
        }
        plan.forward_batch(group_, scratch, precision);
        if (group_.size() >= 2 && plan.batchable()) batched += group_.size();
    }
    items_.clear();
    return batched;
}

}  // namespace witrack::dsp
