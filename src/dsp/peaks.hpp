// Local-maximum detection over range profiles. The contour tracker (paper
// Section 4.3) needs "the first local maximum that is substantially above
// the noise floor"; the multi-person extension needs the k closest maxima.
#pragma once

#include <cstddef>
#include <vector>

namespace witrack::dsp {

struct Peak {
    std::size_t bin = 0;        ///< index of the local maximum
    double value = 0.0;         ///< magnitude at the maximum
    double interpolated = 0.0;  ///< sub-bin position from parabolic fit
};

/// Find local maxima with value >= threshold, ordered by increasing index.
/// A plateau reports its first index. min_separation suppresses maxima
/// closer than that many bins to a previously accepted (larger-index-first
/// scan keeps the closer one, matching bottom-contour semantics).
std::vector<Peak> find_peaks(const std::vector<double>& values, double threshold,
                             std::size_t min_separation = 1);

/// Windowed, allocation-free form of find_peaks: treats values[lo, hi) as
/// the profile ([lo, hi) plays the role the copied band played -- window
/// edges are profile edges for both the candidate predicate and the
/// parabolic fit), reports absolute indices/positions, and reuses the
/// caller's scratch plane and output vector. The candidate predicate runs
/// through the SIMD mask kernel (dsp::tail::peak_candidates); the
/// min_separation pass stays scalar (it is sequential by definition).
/// Equivalent to find_peaks on a copy of the window, shifted by lo.
void find_peaks_window(const double* values, std::size_t lo, std::size_t hi,
                       double threshold, std::size_t min_separation,
                       std::vector<double>& candidate_scratch,
                       std::vector<Peak>& out);

/// Parabolic (three-point) interpolation of a peak's sub-bin position.
/// Returns bin +/- 0.5 at most; falls back to the integer bin at the edges.
double parabolic_peak_position(const std::vector<double>& values, std::size_t bin);

/// Windowed variant: values[lo, hi) is the profile, `bin` is absolute, and
/// the window edges (not the storage edges) suppress refinement.
double parabolic_peak_position_window(const double* values, std::size_t lo,
                                      std::size_t hi, std::size_t bin);

/// Robust noise-floor estimate of a magnitude profile: the given percentile
/// of all values (median by default). The contour threshold is a multiple
/// of this floor.
double noise_floor(const std::vector<double>& values, double pct = 50.0);

/// In-place variant for preallocated scratch: selects the percentile with
/// nth_element instead of a full sort (same order statistics, so the
/// result is bit-identical to noise_floor on the same values) and reorders
/// `values` in the process.
double noise_floor_inplace(std::vector<double>& values, double pct = 50.0);

}  // namespace witrack::dsp
