// SIMD kernels for the post-FFT analysis tail (paper Sections 4.2-4.4):
// fused background-subtract + magnitude over SoA re/im planes, masked
// power-moment accumulation for the contour extent, the band max scan and
// the local-maximum candidate mask behind dsp::find_peaks.
//
// Same contract as the FFT kernel engine (fft_kernels.hpp): every dispatch
// level (scalar / SSE2 / AVX2, selected by simd::active()) performs the
// same IEEE-754 operations per element, so all levels are bit-identical --
// asserted by tests/test_tail.cpp. The reductions (extent_moments,
// max_bin) keep a fixed logical width of four accumulator slots regardless
// of register width, with a fixed combine tree, so even the accumulation
// order is ISA-independent.
//
// The magnitude contract is sqrt(re^2 + im^2): squares and sum each round
// once and sqrt is correctly rounded, so the result sits within ~2.5 ulp
// of the mathematically exact magnitude (the accuracy-budget test gates
// this against std::abs/hypot) and, unlike hypot, vectorizes.
#pragma once

#include <cstddef>

namespace witrack::dsp::tail {

/// out[i] = sqrt((cur_re[i]-prev_re[i])^2 + (cur_im[i]-prev_im[i])^2),
/// then prev <- cur: one fused pass over the frame-diff background
/// subtraction (Section 4.2) including the history update.
void diff_magnitude(const double* cur_re, const double* cur_im,
                    double* prev_re, double* prev_im, double* out,
                    std::size_t n);

/// out[i] = sqrt((cur_re[i]-ref_re[i]*scale)^2 + (cur_im[i]-ref_im[i]*scale)^2):
/// the static-training mode's subtraction against the scaled learned mean.
void scaled_diff_magnitude(const double* cur_re, const double* cur_im,
                           const double* ref_re, const double* ref_im,
                           double scale, double* out, std::size_t n);

/// Masked power moments of v over [lo, hi): elements with v[i] < threshold
/// are excluded (NaN is included, matching the scalar `if (v < t) continue`
/// it replaces); included elements contribute w = v^2 at abscissa
/// d = i * bin_m into w_sum, m1 = sum(w*d) and m2 = sum(w*d*d).
struct Moments {
    double w_sum = 0.0;
    double m1 = 0.0;
    double m2 = 0.0;
};
Moments extent_moments(const double* v, std::size_t lo, std::size_t hi,
                       double threshold, double bin_m);

/// First index of the maximum of v[0..n) (the index a forward strict->
/// scan would keep). n == 0 returns 0.
std::size_t max_bin(const double* v, std::size_t n);

/// Local-maximum candidate mask: out[i] = 1.0 when v[i] clears the
/// threshold (NaN included, as above), rises strictly above v[i-1] and
/// does not fall into v[i+1] -- the find_peaks candidate predicate -- and
/// 0.0 otherwise. out[0] and out[n-1] are 0.0; n < 3 zero-fills. `out`
/// must hold n doubles.
void peak_candidates(const double* v, std::size_t n, double threshold,
                     double* out);

}  // namespace witrack::dsp::tail
