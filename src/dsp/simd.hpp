// Width-agnostic SIMD lane layer for the FFT kernel engine: a tiny set of
// lane structs (load/store/broadcast/add/sub/mul over a register of `width`
// elements) with scalar, SSE2 (128-bit) and AVX2 (256-bit) implementations,
// plus the runtime dispatch level the per-ISA kernel translation units are
// selected by.
//
// The butterfly code in fft_kernels_impl.hpp is written once as templates
// over a lane struct; each ISA gets its own translation unit (compiled with
// the matching -m flags) that instantiates them, and dispatch picks the
// best level the CPU supports at runtime. Every lane performs exactly the
// same IEEE-754 operations per element -- no FMA, no reassociation -- so
// all dispatch levels produce bit-identical results (asserted by
// tests/test_fft.cpp).
//
// The WITRACK_SIMD environment variable (scalar | sse2 | avx2) clamps the
// active level below the detected one for testing and triage; requests the
// hardware cannot honor fall back to the best supported level.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#if defined(__SSE2__) || defined(__AVX2__)
#include <immintrin.h>
#endif

namespace witrack::dsp::simd {

/// Dispatch levels, ordered: higher levels strictly require the lower
/// ones' ISA. kSse2 is the x86-64 baseline; non-x86 builds detect kScalar.
enum class Level : int {
    kScalar = 0,
    kSse2 = 1,
    kAvx2 = 2,
};

/// "scalar" / "sse2" / "avx2".
const char* to_string(Level level) noexcept;

/// Best level this CPU supports (queried once, constant thereafter).
Level detect() noexcept;

/// The level the kernels dispatch on: detect(), clamped down by the
/// WITRACK_SIMD environment variable (read once, on first use) or by the
/// most recent force() call. Never above detect().
Level active() noexcept;

/// Test hook: override the active level (clamped to detect() -- forcing a
/// level the hardware lacks selects the best supported one instead).
/// Returns the level actually activated.
Level force(Level level) noexcept;

// ------------------------------------------------------------------ lanes
//
// A lane struct provides:
//   elem              -- the element type (double or float)
//   reg               -- the register type holding `width` elems
//   width             -- elements per register
//   load / store      -- unaligned contiguous access
//   set1              -- broadcast one element to all positions
//   add / sub / mul   -- elementwise IEEE-754 arithmetic
//   div / sqrt        -- correctly-rounded IEEE-754 divide / square root
//   min / max         -- x86 minpd/maxpd semantics: min(a,b) = a < b ? a : b,
//                        max(a,b) = a > b ? a : b (second operand wins on
//                        equal or NaN), emulated exactly by the scalar lane
//   cmplt/cmple/cmpgt/cmpge -- ordered compares producing an all-ones /
//                        all-zeros bit mask per element (false for NaN)
//   and_ / or_ / andnot -- bitwise mask ops (andnot(a, b) = ~a & b)
//   blend             -- blend(mask, a, b): a where the mask is set, b
//                        elsewhere (full-width masks only)
//
// div and sqrt are correctly rounded by IEEE-754, the compares and bit ops
// are exact, and min/max share one tie/NaN rule across lanes -- so the new
// ops keep the cross-level bit-identity contract the arithmetic trio set.

/// Width-1 fallback lane; also the tail lane of every vector loop.
template <class T>
struct Scalar {
    using elem = T;
    using reg = T;
    using bits = std::conditional_t<sizeof(T) == 8, std::uint64_t, std::uint32_t>;
    static constexpr std::size_t width = 1;
    static reg load(const elem* p) noexcept { return *p; }
    static void store(elem* p, reg v) noexcept { *p = v; }
    static reg set1(elem v) noexcept { return v; }
    static reg add(reg a, reg b) noexcept { return a + b; }
    static reg sub(reg a, reg b) noexcept { return a - b; }
    static reg mul(reg a, reg b) noexcept { return a * b; }
    static reg div(reg a, reg b) noexcept { return a / b; }
    static reg sqrt(reg a) noexcept { return std::sqrt(a); }
    static reg min(reg a, reg b) noexcept { return a < b ? a : b; }
    static reg max(reg a, reg b) noexcept { return a > b ? a : b; }
    static reg cmplt(reg a, reg b) noexcept { return mask(a < b); }
    static reg cmple(reg a, reg b) noexcept { return mask(a <= b); }
    static reg cmpgt(reg a, reg b) noexcept { return mask(a > b); }
    static reg cmpge(reg a, reg b) noexcept { return mask(a >= b); }
    static reg and_(reg a, reg b) noexcept {
        return std::bit_cast<reg>(static_cast<bits>(std::bit_cast<bits>(a) &
                                                    std::bit_cast<bits>(b)));
    }
    static reg or_(reg a, reg b) noexcept {
        return std::bit_cast<reg>(static_cast<bits>(std::bit_cast<bits>(a) |
                                                    std::bit_cast<bits>(b)));
    }
    static reg andnot(reg a, reg b) noexcept {
        return std::bit_cast<reg>(static_cast<bits>(~std::bit_cast<bits>(a) &
                                                    std::bit_cast<bits>(b)));
    }
    static reg blend(reg m, reg a, reg b) noexcept {
        return or_(and_(m, a), andnot(m, b));
    }

  private:
    static reg mask(bool b) noexcept {
        return std::bit_cast<reg>(b ? static_cast<bits>(~bits{0}) : bits{0});
    }
};

using ScalarD = Scalar<double>;
using ScalarF = Scalar<float>;

#if defined(__SSE2__)
struct SseD {
    using elem = double;
    using reg = __m128d;
    static constexpr std::size_t width = 2;
    static reg load(const elem* p) noexcept { return _mm_loadu_pd(p); }
    static void store(elem* p, reg v) noexcept { _mm_storeu_pd(p, v); }
    static reg set1(elem v) noexcept { return _mm_set1_pd(v); }
    static reg add(reg a, reg b) noexcept { return _mm_add_pd(a, b); }
    static reg sub(reg a, reg b) noexcept { return _mm_sub_pd(a, b); }
    static reg mul(reg a, reg b) noexcept { return _mm_mul_pd(a, b); }
    static reg div(reg a, reg b) noexcept { return _mm_div_pd(a, b); }
    static reg sqrt(reg a) noexcept { return _mm_sqrt_pd(a); }
    static reg min(reg a, reg b) noexcept { return _mm_min_pd(a, b); }
    static reg max(reg a, reg b) noexcept { return _mm_max_pd(a, b); }
    static reg cmplt(reg a, reg b) noexcept { return _mm_cmplt_pd(a, b); }
    static reg cmple(reg a, reg b) noexcept { return _mm_cmple_pd(a, b); }
    static reg cmpgt(reg a, reg b) noexcept { return _mm_cmpgt_pd(a, b); }
    static reg cmpge(reg a, reg b) noexcept { return _mm_cmpge_pd(a, b); }
    static reg and_(reg a, reg b) noexcept { return _mm_and_pd(a, b); }
    static reg or_(reg a, reg b) noexcept { return _mm_or_pd(a, b); }
    static reg andnot(reg a, reg b) noexcept { return _mm_andnot_pd(a, b); }
    static reg blend(reg m, reg a, reg b) noexcept {
        return or_(and_(m, a), andnot(m, b));
    }
};

struct SseF {
    using elem = float;
    using reg = __m128;
    static constexpr std::size_t width = 4;
    static reg load(const elem* p) noexcept { return _mm_loadu_ps(p); }
    static void store(elem* p, reg v) noexcept { _mm_storeu_ps(p, v); }
    static reg set1(elem v) noexcept { return _mm_set1_ps(v); }
    static reg add(reg a, reg b) noexcept { return _mm_add_ps(a, b); }
    static reg sub(reg a, reg b) noexcept { return _mm_sub_ps(a, b); }
    static reg mul(reg a, reg b) noexcept { return _mm_mul_ps(a, b); }
    static reg div(reg a, reg b) noexcept { return _mm_div_ps(a, b); }
    static reg sqrt(reg a) noexcept { return _mm_sqrt_ps(a); }
    static reg min(reg a, reg b) noexcept { return _mm_min_ps(a, b); }
    static reg max(reg a, reg b) noexcept { return _mm_max_ps(a, b); }
    static reg cmplt(reg a, reg b) noexcept { return _mm_cmplt_ps(a, b); }
    static reg cmple(reg a, reg b) noexcept { return _mm_cmple_ps(a, b); }
    static reg cmpgt(reg a, reg b) noexcept { return _mm_cmpgt_ps(a, b); }
    static reg cmpge(reg a, reg b) noexcept { return _mm_cmpge_ps(a, b); }
    static reg and_(reg a, reg b) noexcept { return _mm_and_ps(a, b); }
    static reg or_(reg a, reg b) noexcept { return _mm_or_ps(a, b); }
    static reg andnot(reg a, reg b) noexcept { return _mm_andnot_ps(a, b); }
    static reg blend(reg m, reg a, reg b) noexcept {
        return or_(and_(m, a), andnot(m, b));
    }
};
#endif  // __SSE2__

#if defined(__AVX2__)
struct AvxD {
    using elem = double;
    using reg = __m256d;
    static constexpr std::size_t width = 4;
    static reg load(const elem* p) noexcept { return _mm256_loadu_pd(p); }
    static void store(elem* p, reg v) noexcept { _mm256_storeu_pd(p, v); }
    static reg set1(elem v) noexcept { return _mm256_set1_pd(v); }
    static reg add(reg a, reg b) noexcept { return _mm256_add_pd(a, b); }
    static reg sub(reg a, reg b) noexcept { return _mm256_sub_pd(a, b); }
    static reg mul(reg a, reg b) noexcept { return _mm256_mul_pd(a, b); }
    static reg div(reg a, reg b) noexcept { return _mm256_div_pd(a, b); }
    static reg sqrt(reg a) noexcept { return _mm256_sqrt_pd(a); }
    static reg min(reg a, reg b) noexcept { return _mm256_min_pd(a, b); }
    static reg max(reg a, reg b) noexcept { return _mm256_max_pd(a, b); }
    static reg cmplt(reg a, reg b) noexcept {
        return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
    }
    static reg cmple(reg a, reg b) noexcept {
        return _mm256_cmp_pd(a, b, _CMP_LE_OQ);
    }
    static reg cmpgt(reg a, reg b) noexcept {
        return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
    }
    static reg cmpge(reg a, reg b) noexcept {
        return _mm256_cmp_pd(a, b, _CMP_GE_OQ);
    }
    static reg and_(reg a, reg b) noexcept { return _mm256_and_pd(a, b); }
    static reg or_(reg a, reg b) noexcept { return _mm256_or_pd(a, b); }
    static reg andnot(reg a, reg b) noexcept { return _mm256_andnot_pd(a, b); }
    static reg blend(reg m, reg a, reg b) noexcept {
        return or_(and_(m, a), andnot(m, b));
    }
};

struct AvxF {
    using elem = float;
    using reg = __m256;
    static constexpr std::size_t width = 8;
    static reg load(const elem* p) noexcept { return _mm256_loadu_ps(p); }
    static void store(elem* p, reg v) noexcept { _mm256_storeu_ps(p, v); }
    static reg set1(elem v) noexcept { return _mm256_set1_ps(v); }
    static reg add(reg a, reg b) noexcept { return _mm256_add_ps(a, b); }
    static reg sub(reg a, reg b) noexcept { return _mm256_sub_ps(a, b); }
    static reg mul(reg a, reg b) noexcept { return _mm256_mul_ps(a, b); }
    static reg div(reg a, reg b) noexcept { return _mm256_div_ps(a, b); }
    static reg sqrt(reg a) noexcept { return _mm256_sqrt_ps(a); }
    static reg min(reg a, reg b) noexcept { return _mm256_min_ps(a, b); }
    static reg max(reg a, reg b) noexcept { return _mm256_max_ps(a, b); }
    static reg cmplt(reg a, reg b) noexcept {
        return _mm256_cmp_ps(a, b, _CMP_LT_OQ);
    }
    static reg cmple(reg a, reg b) noexcept {
        return _mm256_cmp_ps(a, b, _CMP_LE_OQ);
    }
    static reg cmpgt(reg a, reg b) noexcept {
        return _mm256_cmp_ps(a, b, _CMP_GT_OQ);
    }
    static reg cmpge(reg a, reg b) noexcept {
        return _mm256_cmp_ps(a, b, _CMP_GE_OQ);
    }
    static reg and_(reg a, reg b) noexcept { return _mm256_and_ps(a, b); }
    static reg or_(reg a, reg b) noexcept { return _mm256_or_ps(a, b); }
    static reg andnot(reg a, reg b) noexcept { return _mm256_andnot_ps(a, b); }
    static reg blend(reg m, reg a, reg b) noexcept {
        return or_(and_(m, a), andnot(m, b));
    }
};
#endif  // __AVX2__

}  // namespace witrack::dsp::simd
