// Width-agnostic SIMD lane layer for the FFT kernel engine: a tiny set of
// lane structs (load/store/broadcast/add/sub/mul over a register of `width`
// elements) with scalar, SSE2 (128-bit) and AVX2 (256-bit) implementations,
// plus the runtime dispatch level the per-ISA kernel translation units are
// selected by.
//
// The butterfly code in fft_kernels_impl.hpp is written once as templates
// over a lane struct; each ISA gets its own translation unit (compiled with
// the matching -m flags) that instantiates them, and dispatch picks the
// best level the CPU supports at runtime. Every lane performs exactly the
// same IEEE-754 operations per element -- no FMA, no reassociation -- so
// all dispatch levels produce bit-identical results (asserted by
// tests/test_fft.cpp).
//
// The WITRACK_SIMD environment variable (scalar | sse2 | avx2) clamps the
// active level below the detected one for testing and triage; requests the
// hardware cannot honor fall back to the best supported level.
#pragma once

#include <cstddef>

#if defined(__SSE2__) || defined(__AVX2__)
#include <immintrin.h>
#endif

namespace witrack::dsp::simd {

/// Dispatch levels, ordered: higher levels strictly require the lower
/// ones' ISA. kSse2 is the x86-64 baseline; non-x86 builds detect kScalar.
enum class Level : int {
    kScalar = 0,
    kSse2 = 1,
    kAvx2 = 2,
};

/// "scalar" / "sse2" / "avx2".
const char* to_string(Level level) noexcept;

/// Best level this CPU supports (queried once, constant thereafter).
Level detect() noexcept;

/// The level the kernels dispatch on: detect(), clamped down by the
/// WITRACK_SIMD environment variable (read once, on first use) or by the
/// most recent force() call. Never above detect().
Level active() noexcept;

/// Test hook: override the active level (clamped to detect() -- forcing a
/// level the hardware lacks selects the best supported one instead).
/// Returns the level actually activated.
Level force(Level level) noexcept;

// ------------------------------------------------------------------ lanes
//
// A lane struct provides:
//   elem              -- the element type (double or float)
//   reg               -- the register type holding `width` elems
//   width             -- elements per register
//   load / store      -- unaligned contiguous access
//   set1              -- broadcast one element to all positions
//   add / sub / mul   -- elementwise IEEE-754 arithmetic

/// Width-1 fallback lane; also the tail lane of every vector loop.
template <class T>
struct Scalar {
    using elem = T;
    using reg = T;
    static constexpr std::size_t width = 1;
    static reg load(const elem* p) noexcept { return *p; }
    static void store(elem* p, reg v) noexcept { *p = v; }
    static reg set1(elem v) noexcept { return v; }
    static reg add(reg a, reg b) noexcept { return a + b; }
    static reg sub(reg a, reg b) noexcept { return a - b; }
    static reg mul(reg a, reg b) noexcept { return a * b; }
};

using ScalarD = Scalar<double>;
using ScalarF = Scalar<float>;

#if defined(__SSE2__)
struct SseD {
    using elem = double;
    using reg = __m128d;
    static constexpr std::size_t width = 2;
    static reg load(const elem* p) noexcept { return _mm_loadu_pd(p); }
    static void store(elem* p, reg v) noexcept { _mm_storeu_pd(p, v); }
    static reg set1(elem v) noexcept { return _mm_set1_pd(v); }
    static reg add(reg a, reg b) noexcept { return _mm_add_pd(a, b); }
    static reg sub(reg a, reg b) noexcept { return _mm_sub_pd(a, b); }
    static reg mul(reg a, reg b) noexcept { return _mm_mul_pd(a, b); }
};

struct SseF {
    using elem = float;
    using reg = __m128;
    static constexpr std::size_t width = 4;
    static reg load(const elem* p) noexcept { return _mm_loadu_ps(p); }
    static void store(elem* p, reg v) noexcept { _mm_storeu_ps(p, v); }
    static reg set1(elem v) noexcept { return _mm_set1_ps(v); }
    static reg add(reg a, reg b) noexcept { return _mm_add_ps(a, b); }
    static reg sub(reg a, reg b) noexcept { return _mm_sub_ps(a, b); }
    static reg mul(reg a, reg b) noexcept { return _mm_mul_ps(a, b); }
};
#endif  // __SSE2__

#if defined(__AVX2__)
struct AvxD {
    using elem = double;
    using reg = __m256d;
    static constexpr std::size_t width = 4;
    static reg load(const elem* p) noexcept { return _mm256_loadu_pd(p); }
    static void store(elem* p, reg v) noexcept { _mm256_storeu_pd(p, v); }
    static reg set1(elem v) noexcept { return _mm256_set1_pd(v); }
    static reg add(reg a, reg b) noexcept { return _mm256_add_pd(a, b); }
    static reg sub(reg a, reg b) noexcept { return _mm256_sub_pd(a, b); }
    static reg mul(reg a, reg b) noexcept { return _mm256_mul_pd(a, b); }
};

struct AvxF {
    using elem = float;
    using reg = __m256;
    static constexpr std::size_t width = 8;
    static reg load(const elem* p) noexcept { return _mm256_loadu_ps(p); }
    static void store(elem* p, reg v) noexcept { _mm256_storeu_ps(p, v); }
    static reg set1(elem v) noexcept { return _mm256_set1_ps(v); }
    static reg add(reg a, reg b) noexcept { return _mm256_add_ps(a, b); }
    static reg sub(reg a, reg b) noexcept { return _mm256_sub_ps(a, b); }
    static reg mul(reg a, reg b) noexcept { return _mm256_mul_ps(a, b); }
};
#endif  // __AVX2__

}  // namespace witrack::dsp::simd
