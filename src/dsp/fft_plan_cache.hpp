// Shared FFT plan cache: one immutable plan per transform size, handed out
// as shared_ptr so any number of SweepProcessor lanes -- across any number
// of tracking sessions in one process -- reuse the same twiddle tables,
// Bluestein chirp spectra and bit-reversal permutations instead of each
// recomputing them. Plans are immutable after construction (Fft/RealFft
// expose only const entry points; all per-call storage lives in the
// caller's FftScratch), so sharing one plan between threads is safe.
//
// The process-global instance (FftPlanCache::global()) is the default for
// every pipeline component; an EngineHost may carry its own cache when a
// deployment wants per-tenant isolation of the (tiny) table memory.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "dsp/fft.hpp"

namespace witrack::dsp {

class FftPlanCache {
  public:
    FftPlanCache() = default;
    FftPlanCache(const FftPlanCache&) = delete;
    FftPlanCache& operator=(const FftPlanCache&) = delete;

    /// Shared complex plan for size n (built on first request). Thread-safe;
    /// concurrent first requests for the same size converge on one plan.
    std::shared_ptr<const Fft> complex_plan(std::size_t n);

    /// Shared real-input plan for size n. Its internal half-length (or odd-N
    /// fallback) complex plan comes from this cache too, so a RealFft(2500)
    /// and any other consumer of Fft(1250) share tables.
    std::shared_ptr<const RealFft> real_plan(std::size_t n);

    /// Distinct plans currently cached (complex + real), for telemetry.
    std::size_t cached_plans() const;

    /// The process-wide cache every component defaults to.
    static FftPlanCache& global();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::size_t, std::shared_ptr<const Fft>> complex_;
    std::unordered_map<std::size_t, std::shared_ptr<const RealFft>> real_;
};

}  // namespace witrack::dsp
