// Shared FFT plan cache: one immutable plan per transform *shape* -- size
// plus input pruning -- handed out as shared_ptr so any number of
// SweepProcessor lanes, across any number of tracking sessions in one
// process, reuse the same twiddle tables and Bluestein chirp spectra
// instead of each recomputing them. Plans are immutable after construction
// (Fft/RealFft expose only const entry points; all per-call storage lives
// in the caller's FftScratch), so sharing one plan between threads is safe.
//
// Pruned and unpruned plans of one size are distinct cache entries: a
// Fft(4096) and a Fft(4096, n_nonzero=2500) run different butterfly
// schedules, so they are keyed by (size, effective n_nonzero). Keys are
// normalized through Fft::effective_nonzero, so requests that degrade to
// dense (non-power-of-two sizes, n_nonzero of 0 or >= n) share the dense
// entry instead of duplicating it.
//
// The process-global instance (FftPlanCache::global()) is the default for
// every pipeline component; an EngineHost may carry its own cache when a
// deployment wants per-tenant isolation of the (tiny) table memory.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "dsp/fft.hpp"

namespace witrack::dsp {

class FftPlanCache {
  public:
    FftPlanCache() = default;
    FftPlanCache(const FftPlanCache&) = delete;
    FftPlanCache& operator=(const FftPlanCache&) = delete;

    /// Shared complex plan for size n (built on first request), optionally
    /// pruned to a nonzero input prefix of n_nonzero samples. Thread-safe;
    /// concurrent first requests for the same shape converge on one plan.
    std::shared_ptr<const Fft> complex_plan(std::size_t n,
                                            std::size_t n_nonzero = 0);

    /// Shared real-input plan for shape (n, n_nonzero). Its internal
    /// half-length (or odd-N fallback) complex plan comes from this cache
    /// too, so a RealFft(4096, nz=2500) and any other consumer of the
    /// pruned Fft(2048, nz=1250) share tables.
    std::shared_ptr<const RealFft> real_plan(std::size_t n,
                                             std::size_t n_nonzero = 0);

    /// Distinct plans currently cached (complex + real), for telemetry.
    std::size_t cached_plans() const;

    /// The process-wide cache every component defaults to.
    static FftPlanCache& global();

  private:
    using Key = std::pair<std::size_t, std::size_t>;  // (size, n_nonzero)

    mutable std::mutex mutex_;
    std::map<Key, std::shared_ptr<const Fft>> complex_;
    std::map<Key, std::shared_ptr<const RealFft>> real_;
};

}  // namespace witrack::dsp
