// Shared FFT plan cache: one immutable plan per transform *shape* -- size
// plus input pruning -- handed out as shared_ptr so any number of
// SweepProcessor lanes, across any number of tracking sessions in one
// process, reuse the same twiddle tables and Bluestein chirp spectra
// instead of each recomputing them. Plans are immutable after construction
// (Fft/RealFft expose only const entry points; all per-call storage lives
// in the caller's FftScratch), so sharing one plan between threads is safe.
//
// Pruned and unpruned plans of one size are distinct cache entries: a
// Fft(4096) and a Fft(4096, n_nonzero=2500) run different butterfly
// schedules, so they are keyed by (size, effective n_nonzero). Keys are
// normalized through Fft::effective_nonzero, so requests that degrade to
// dense (non-power-of-two sizes, n_nonzero of 0 or >= n) share the dense
// entry instead of duplicating it.
//
// Batch layout is deliberately NOT part of the key. A BatchKernel is a
// non-owning view over a cached Pow2Kernel plan (no tables are copied),
// so batched execution of any width B -- including the degenerate B = 1,
// which runs exactly the sequential schedule -- collapses onto the same
// (size, n_nonzero) entry a sequential caller gets. The batch_* accessors
// below make that collapse explicit (and testable by pointer equality).
//
// The process-global instance (FftPlanCache::global()) is the default for
// every pipeline component; an EngineHost may carry its own cache when a
// deployment wants per-tenant isolation of the (tiny) table memory.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "dsp/fft.hpp"

namespace witrack::dsp {

class FftPlanCache {
  public:
    FftPlanCache() = default;
    FftPlanCache(const FftPlanCache&) = delete;
    FftPlanCache& operator=(const FftPlanCache&) = delete;

    /// Shared complex plan for size n (built on first request), optionally
    /// pruned to a nonzero input prefix of n_nonzero samples. Thread-safe;
    /// concurrent first requests for the same shape converge on one plan.
    std::shared_ptr<const Fft> complex_plan(std::size_t n,
                                            std::size_t n_nonzero = 0);

    /// Shared real-input plan for shape (n, n_nonzero). Its internal
    /// half-length (or odd-N fallback) complex plan comes from this cache
    /// too, so a RealFft(4096, nz=2500) and any other consumer of the
    /// pruned Fft(2048, nz=1250) share tables.
    std::shared_ptr<const RealFft> real_plan(std::size_t n,
                                             std::size_t n_nonzero = 0);

    /// Plan for a batched complex pass of width `batch` (>= 1). Batch
    /// width is execution state, not a plan property, so this is the
    /// *same* shared plan complex_plan(n, n_nonzero) returns -- asserted,
    /// so a refactor that accidentally keys plans by batch width fails
    /// loudly in Debug.
    std::shared_ptr<const Fft> batch_plan(std::size_t n, std::size_t batch,
                                          std::size_t n_nonzero = 0);

    /// Real-input analogue of batch_plan: the shared real_plan(n,
    /// n_nonzero) entry, for any batch width >= 1.
    std::shared_ptr<const RealFft> batch_real_plan(std::size_t n,
                                                   std::size_t batch,
                                                   std::size_t n_nonzero = 0);

    /// Distinct plans currently cached (complex + real), for telemetry.
    std::size_t cached_plans() const;

    /// The process-wide cache every component defaults to.
    static FftPlanCache& global();

  private:
    using Key = std::pair<std::size_t, std::size_t>;  // (size, n_nonzero)

    mutable std::mutex mutex_;
    std::map<Key, std::shared_ptr<const Fft>> complex_;
    std::map<Key, std::shared_ptr<const RealFft>> real_;
};

}  // namespace witrack::dsp
