#include "dsp/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace witrack::dsp {

double mean(const std::vector<double>& samples) {
    if (samples.empty()) throw std::invalid_argument("mean: empty sample set");
    return std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
}

double variance(const std::vector<double>& samples) {
    if (samples.empty()) throw std::invalid_argument("variance: empty sample set");
    const double mu = mean(samples);
    double acc = 0.0;
    for (double v : samples) acc += (v - mu) * (v - mu);
    return acc / static_cast<double>(samples.size());
}

double stddev(const std::vector<double>& samples) { return std::sqrt(variance(samples)); }

double min_value(const std::vector<double>& samples) {
    if (samples.empty()) throw std::invalid_argument("min_value: empty sample set");
    return *std::min_element(samples.begin(), samples.end());
}

double max_value(const std::vector<double>& samples) {
    if (samples.empty()) throw std::invalid_argument("max_value: empty sample set");
    return *std::max_element(samples.begin(), samples.end());
}

double percentile(std::vector<double> samples, double p) {
    if (samples.empty()) throw std::invalid_argument("percentile: empty sample set");
    if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
    std::sort(samples.begin(), samples.end());
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double median(std::vector<double> samples) { return percentile(std::move(samples), 50.0); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
    if (sorted_.empty()) throw std::invalid_argument("EmpiricalCdf: empty sample set");
    std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::fraction_below(double value) const {
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), value);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::value_at(double fraction) const {
    if (fraction <= 0.0) return sorted_.front();
    if (fraction >= 1.0) return sorted_.back();
    const double rank = fraction * static_cast<double>(sorted_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::curve(std::size_t n_points) const {
    std::vector<Point> points;
    if (n_points < 2) n_points = 2;
    points.reserve(n_points);
    const double lo = sorted_.front();
    const double hi = sorted_.back();
    for (std::size_t i = 0; i < n_points; ++i) {
        // Use the exact extremes at the ends so rounding cannot drop the
        // final point below the last sample.
        const double v = i + 1 == n_points
                             ? hi
                             : lo + (hi - lo) * static_cast<double>(i) /
                                   static_cast<double>(n_points - 1);
        points.push_back({v, fraction_below(v)});
    }
    return points;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
    if (bins == 0 || hi <= lo) throw std::invalid_argument("Histogram: bad configuration");
}

void Histogram::add(double value) {
    ++total_;
    if (value < lo_ || value >= hi_) return;  // out-of-range values counted in total only
    const auto bin = static_cast<std::size_t>((value - lo_) / (hi_ - lo_) *
                                              static_cast<double>(counts_.size()));
    counts_[std::min(bin, counts_.size() - 1)]++;
}

double Histogram::bin_center(std::size_t bin) const {
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

void RunningStats::add(double value) {
    ++n_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::reset() {
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
}

}  // namespace witrack::dsp
