#include "dsp/filter.hpp"

#include <cmath>
#include <stdexcept>

#include "common/serialize.hpp"

namespace witrack::dsp {

OnePoleHighPass::OnePoleHighPass(double cutoff_hz, double sample_rate_hz) {
    if (cutoff_hz <= 0 || sample_rate_hz <= 0 || cutoff_hz >= sample_rate_hz / 2)
        throw std::invalid_argument("OnePoleHighPass: bad cutoff/sample rate");
    const double rc = 1.0 / (2.0 * M_PI * cutoff_hz);
    const double dt = 1.0 / sample_rate_hz;
    a_ = rc / (rc + dt);
}

double OnePoleHighPass::process(double x) {
    const double y = a_ * (prev_y_ + x - prev_x_);
    prev_x_ = x;
    prev_y_ = y;
    return y;
}

void OnePoleHighPass::process_in_place(std::span<double> signal) {
    for (auto& v : signal) v = process(v);
}

void OnePoleHighPass::reset() {
    prev_x_ = 0.0;
    prev_y_ = 0.0;
}

void OnePoleHighPass::save_state(common::StateWriter& writer) const {
    writer.f64(prev_x_);
    writer.f64(prev_y_);
}

void OnePoleHighPass::load_state(common::StateReader& reader) {
    prev_x_ = reader.f64();
    prev_y_ = reader.f64();
}

OnePoleLowPass::OnePoleLowPass(double cutoff_hz, double sample_rate_hz) {
    if (cutoff_hz <= 0 || sample_rate_hz <= 0 || cutoff_hz >= sample_rate_hz / 2)
        throw std::invalid_argument("OnePoleLowPass: bad cutoff/sample rate");
    const double rc = 1.0 / (2.0 * M_PI * cutoff_hz);
    const double dt = 1.0 / sample_rate_hz;
    a_ = dt / (rc + dt);
}

double OnePoleLowPass::process(double x) {
    if (!primed_) {
        y_ = x;
        primed_ = true;
    } else {
        y_ += a_ * (x - y_);
    }
    return y_;
}

void OnePoleLowPass::reset() {
    y_ = 0.0;
    primed_ = false;
}

MovingAverage::MovingAverage(std::size_t window) : window_(window) {
    if (window == 0) throw std::invalid_argument("MovingAverage: zero window");
}

double MovingAverage::process(double x) {
    samples_.push_back(x);
    sum_ += x;
    if (samples_.size() > window_) {
        sum_ -= samples_.front();
        samples_.pop_front();
    }
    return value();
}

double MovingAverage::value() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

void MovingAverage::reset() {
    samples_.clear();
    sum_ = 0.0;
}

std::vector<double> design_lowpass_fir(double cutoff_hz, double sample_rate_hz,
                                       std::size_t taps) {
    if (taps < 3 || cutoff_hz <= 0 || cutoff_hz >= sample_rate_hz / 2)
        throw std::invalid_argument("design_lowpass_fir: bad parameters");
    const double fc = cutoff_hz / sample_rate_hz;  // normalized cutoff
    const double mid = static_cast<double>(taps - 1) / 2.0;
    std::vector<double> h(taps);
    double sum = 0.0;
    for (std::size_t i = 0; i < taps; ++i) {
        const double m = static_cast<double>(i) - mid;
        const double sinc = m == 0.0 ? 2.0 * fc
                                     : std::sin(2.0 * M_PI * fc * m) / (M_PI * m);
        const double hamming =
            0.54 - 0.46 * std::cos(2.0 * M_PI * static_cast<double>(i) /
                                   static_cast<double>(taps - 1));
        h[i] = sinc * hamming;
        sum += h[i];
    }
    for (auto& v : h) v /= sum;  // unity DC gain
    return h;
}

FirFilter::FirFilter(std::vector<double> coefficients)
    : coeffs_(std::move(coefficients)), history_(coeffs_.size(), 0.0) {
    if (coeffs_.empty()) throw std::invalid_argument("FirFilter: empty coefficients");
}

double FirFilter::process(double x) {
    history_[head_] = x;
    double acc = 0.0;
    std::size_t idx = head_;
    for (std::size_t i = 0; i < coeffs_.size(); ++i) {
        acc += coeffs_[i] * history_[idx];
        idx = idx == 0 ? history_.size() - 1 : idx - 1;
    }
    head_ = (head_ + 1) % history_.size();
    return acc;
}

std::vector<double> FirFilter::process(const std::vector<double>& signal) {
    std::vector<double> out;
    out.reserve(signal.size());
    for (double v : signal) out.push_back(process(v));
    return out;
}

void FirFilter::reset() {
    std::fill(history_.begin(), history_.end(), 0.0);
    head_ = 0;
}

}  // namespace witrack::dsp
