// SSE2 (128-bit) instantiations of the lane-templated analysis-tail
// kernels. Built with the library's baseline flags: SSE2 is guaranteed on
// x86-64, so this translation unit needs no extra -m options. On targets
// without SSE2 the entry points degrade to the scalar level (dispatch
// never selects kSse2 there, but the symbols must still link).
#include "dsp/tail_kernels_impl.hpp"

namespace witrack::dsp::tail::detail {

#if defined(__SSE2__)

void diff_magnitude_sse2(const double* cur_re, const double* cur_im,
                         double* prev_re, double* prev_im, double* out,
                         std::size_t n) {
    run_diff_magnitude_t<simd::SseD>(cur_re, cur_im, prev_re, prev_im, out, n);
}

void scaled_diff_magnitude_sse2(const double* cur_re, const double* cur_im,
                                const double* ref_re, const double* ref_im,
                                double scale, double* out, std::size_t n) {
    run_scaled_diff_magnitude_t<simd::SseD>(cur_re, cur_im, ref_re, ref_im,
                                            scale, out, n);
}

Moments extent_moments_sse2(const double* v, std::size_t lo, std::size_t hi,
                            double threshold, double bin_m) {
    return run_extent_moments_t<simd::SseD>(v, lo, hi, threshold, bin_m);
}

std::size_t max_bin_sse2(const double* v, std::size_t n) {
    return run_max_bin_t<simd::SseD>(v, n);
}

void peak_candidates_sse2(const double* v, std::size_t n, double threshold,
                          double* out) {
    run_peak_candidates_t<simd::SseD>(v, n, threshold, out);
}

#else  // !__SSE2__

void diff_magnitude_sse2(const double* cur_re, const double* cur_im,
                         double* prev_re, double* prev_im, double* out,
                         std::size_t n) {
    diff_magnitude_scalar(cur_re, cur_im, prev_re, prev_im, out, n);
}

void scaled_diff_magnitude_sse2(const double* cur_re, const double* cur_im,
                                const double* ref_re, const double* ref_im,
                                double scale, double* out, std::size_t n) {
    scaled_diff_magnitude_scalar(cur_re, cur_im, ref_re, ref_im, scale, out, n);
}

Moments extent_moments_sse2(const double* v, std::size_t lo, std::size_t hi,
                            double threshold, double bin_m) {
    return extent_moments_scalar(v, lo, hi, threshold, bin_m);
}

std::size_t max_bin_sse2(const double* v, std::size_t n) {
    return max_bin_scalar(v, n);
}

void peak_candidates_sse2(const double* v, std::size_t n, double threshold,
                          double* out) {
    peak_candidates_scalar(v, n, threshold, out);
}

#endif  // __SSE2__

}  // namespace witrack::dsp::tail::detail
