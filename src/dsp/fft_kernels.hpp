// Power-of-two FFT kernel engine: structure-of-arrays (separate re/im
// planes), iterative Stockham radix-4 with a radix-2 fixup stage, per-stage
// sequentially-laid-out twiddle tables, and *separate* forward/inverse
// butterfly loops (no direction branch and no conj inside the hot loop).
// The butterfly loops are written once as lane templates over the SIMD
// layer in simd.hpp (fft_kernels_impl.hpp) and instantiated per ISA --
// scalar, SSE2, AVX2 -- with a runtime-dispatched entry point, so one plan
// serves every dispatch level with bit-identical results.
//
// Input pruning: a kernel built with n_nonzero < n treats the input tail
// [n_nonzero, n) as structurally zero and skips the early-stage butterflies
// whose operands are all inside that tail. The range pipeline zero-pads a
// 2500-sample sweep into a 4096-point transform, so the packed half-length
// sequence it actually transforms is ~39% structural zeros; the Bluestein
// convolution (2500 nonzero samples in an 8192-point buffer) is ~69% zeros.
// Pruned and unpruned kernels of one size produce results equal under
// operator== (skipped butterflies may flip the sign of an exact zero, which
// IEEE-754 compares equal).
#pragma once

#include <cstddef>
#include <vector>

namespace witrack::dsp::kernels {

/// One stage of the iterative plan. Public (rather than a Pow2Kernel
/// private) so the per-ISA butterfly translation units can walk the plan;
/// see fft_kernels_impl.hpp.
struct FftStage {
    std::size_t radix;      ///< 4, or 2 for the final fixup stage
    std::size_t stride;     ///< s: n / sub_n for this stage
    std::size_t m;          ///< butterflies per sub-transform (sub_n/radix)
    std::size_t tw_offset;  ///< start of this stage's table in twiddles()
};

class Pow2Kernel {
  public:
    /// Build a plan for a power-of-two transform of `n` points whose input
    /// is nonzero only in the prefix [0, n_nonzero). n_nonzero of 0 (or
    /// >= n) means a dense input. Throws std::invalid_argument unless n is
    /// a power of two.
    explicit Pow2Kernel(std::size_t n, std::size_t n_nonzero = 0);

    std::size_t size() const { return n_; }
    /// Effective nonzero prefix the forward kernel assumes (n when dense).
    std::size_t n_nonzero() const { return nz_; }

    /// Forward DFT of the SoA data in (xr, xi). Only the first n_nonzero()
    /// entries are read; the tail is treated as exactly zero and may hold
    /// anything. (wr, wi) are caller-owned ping-pong work planes. All four
    /// planes must hold size() doubles; the result lands in (xr, xi).
    void forward(double* xr, double* xi, double* wr, double* wi) const;

    /// Forward DFT reading all size() input entries regardless of the
    /// plan's pruning (used for one-shot dense transforms such as the
    /// Bluestein chirp-spectrum precompute).
    void forward_dense(double* xr, double* xi, double* wr, double* wi) const;

    /// Inverse DFT scaled by 1/n. Always dense: inverse inputs (spectra)
    /// have no structural zero tail.
    void inverse(double* xr, double* xi, double* wr, double* wi) const;

    static bool is_power_of_two(std::size_t n) {
        return n != 0 && (n & (n - 1)) == 0;
    }

    /// The stage sequence and twiddle storage, exposed read-only for the
    /// per-ISA kernel translation units and the BatchKernel view.
    const std::vector<FftStage>& plan_stages() const { return stages_; }
    const std::vector<double>& twiddles() const { return tw_; }

  private:
    std::size_t n_ = 0;
    std::size_t nz_ = 0;
    std::vector<FftStage> stages_;
    // Forward twiddles, sequential per stage. A radix-4 stage with m
    // butterflies stores six contiguous runs of m doubles:
    //   [w1.re | w1.im | w2.re | w2.im | w3.re | w3.im],
    // w_k[p] = exp(-2*pi*i * k*p / sub_n), so every butterfly loop walks
    // its tables linearly. The radix-2 fixup stage (sub_n = 2) needs no
    // table (its only twiddle is 1). Inverse kernels reuse the same tables
    // with the imaginary sign folded into their butterfly expressions.
    std::vector<double> tw_;
};

/// Runs B same-shape forward transforms over one shared Pow2Kernel plan as
/// lane-interleaved SoA planes: element i of batch member b lives at index
/// [i * B + b], so each butterfly's operands across the whole batch are
/// contiguous and one (broadcast) twiddle load serves all B members. A
/// BatchKernel is a *view* over the shared plan -- no tables are copied, so
/// batched execution of any B collapses onto the single-transform cache
/// entry (see FftPlanCache), and a degenerate B = 1 batch is simply the
/// sequential schedule.
///
/// Every batch member's result is bit-identical to a sequential
/// Pow2Kernel::forward of that member: the lane-interleaved schedule
/// performs exactly the same IEEE-754 operations per output element.
class BatchKernel {
  public:
    explicit BatchKernel(const Pow2Kernel& plan) : plan_(&plan) {}

    const Pow2Kernel& plan() const { return *plan_; }

    /// Forward DFT of all `batch` members. Each plane holds
    /// plan().size() * batch doubles, lane-interleaved; (wr, wi) are
    /// caller-owned ping-pong work planes of the same length. The plan's
    /// input pruning applies to every member identically.
    void forward(std::size_t batch, double* xr, double* xi, double* wr,
                 double* wi) const;

    /// Float32 lane: the same schedule in single precision, twiddles
    /// narrowed per butterfly. Roughly half the memory traffic at ~1e-6
    /// relative error -- for consumers gated on a measured error budget,
    /// never for the bit-parity paths.
    void forward(std::size_t batch, float* xr, float* xi, float* wr,
                 float* wi) const;

  private:
    const Pow2Kernel* plan_;
};

}  // namespace witrack::dsp::kernels
