#include "dsp/peaks.hpp"

#include <algorithm>
#include <stdexcept>

#include "dsp/stats.hpp"
#include "dsp/tail_kernels.hpp"

namespace witrack::dsp {

std::vector<Peak> find_peaks(const std::vector<double>& values, double threshold,
                             std::size_t min_separation) {
    std::vector<Peak> peaks;
    const std::size_t n = values.size();
    if (n < 3) return peaks;
    if (min_separation == 0) min_separation = 1;

    std::size_t last_accepted = 0;
    bool have_accepted = false;
    for (std::size_t i = 1; i + 1 < n; ++i) {
        if (values[i] < threshold) continue;
        // Peak if strictly above the previous sample and >= the next; a
        // plateau is attributed to its first index.
        const bool rising = values[i] > values[i - 1];
        const bool not_falling_into = values[i] >= values[i + 1];
        if (!(rising && not_falling_into)) continue;
        if (have_accepted && i - last_accepted < min_separation) continue;
        peaks.push_back({i, values[i], parabolic_peak_position(values, i)});
        last_accepted = i;
        have_accepted = true;
    }
    return peaks;
}

void find_peaks_window(const double* values, std::size_t lo, std::size_t hi,
                       double threshold, std::size_t min_separation,
                       std::vector<double>& candidate_scratch,
                       std::vector<Peak>& out) {
    out.clear();
    if (hi <= lo) return;
    const std::size_t n = hi - lo;
    if (n < 3) return;
    if (min_separation == 0) min_separation = 1;

    candidate_scratch.resize(n);
    tail::peak_candidates(values + lo, n, threshold, candidate_scratch.data());

    std::size_t last_accepted = 0;
    bool have_accepted = false;
    for (std::size_t j = 1; j + 1 < n; ++j) {
        if (candidate_scratch[j] == 0.0) continue;
        const std::size_t i = lo + j;
        if (have_accepted && i - last_accepted < min_separation) continue;
        out.push_back(
            {i, values[i], parabolic_peak_position_window(values, lo, hi, i)});
        last_accepted = i;
        have_accepted = true;
    }
}

double parabolic_peak_position(const std::vector<double>& values, std::size_t bin) {
    return parabolic_peak_position_window(values.data(), 0, values.size(), bin);
}

double parabolic_peak_position_window(const double* values, std::size_t lo,
                                      std::size_t hi, std::size_t bin) {
    // Window-relative arithmetic shifted back by lo at the end, so the
    // result is bitwise what the same call would produce on a copy of
    // [lo, hi) -- lo = 0 degenerates to the plain form exactly.
    if (bin <= lo || bin + 1 >= hi) return static_cast<double>(bin);
    const double left = values[bin - 1];
    const double center = values[bin];
    const double right = values[bin + 1];
    const double denom = left - 2.0 * center + right;
    if (denom >= 0.0) return static_cast<double>(bin);  // not concave
    double offset = 0.5 * (left - right) / denom;
    offset = std::clamp(offset, -0.5, 0.5);
    return (static_cast<double>(bin - lo) + offset) + static_cast<double>(lo);
}

double noise_floor(const std::vector<double>& values, double pct) {
    if (values.empty()) throw std::invalid_argument("noise_floor: empty profile");
    return percentile(values, pct);
}

double noise_floor_inplace(std::vector<double>& values, double pct) {
    if (values.empty()) throw std::invalid_argument("noise_floor: empty profile");
    if (pct < 0.0 || pct > 100.0)
        throw std::invalid_argument("percentile: p out of range");
    // Same rank arithmetic as dsp::percentile; nth_element delivers the
    // same order statistics a sort would, so the interpolated value is
    // bit-identical to the sorting path.
    const std::size_t n = values.size();
    const double rank = pct / 100.0 * static_cast<double>(n - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = rank - static_cast<double>(lo);
    auto nth = values.begin() + static_cast<std::ptrdiff_t>(lo);
    std::nth_element(values.begin(), nth, values.end());
    const double v_lo = *nth;
    const double v_hi =
        hi == lo ? v_lo : *std::min_element(nth + 1, values.end());
    return v_lo * (1.0 - frac) + v_hi * frac;
}

}  // namespace witrack::dsp
