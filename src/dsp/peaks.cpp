#include "dsp/peaks.hpp"

#include <algorithm>
#include <stdexcept>

#include "dsp/stats.hpp"

namespace witrack::dsp {

std::vector<Peak> find_peaks(const std::vector<double>& values, double threshold,
                             std::size_t min_separation) {
    std::vector<Peak> peaks;
    const std::size_t n = values.size();
    if (n < 3) return peaks;
    if (min_separation == 0) min_separation = 1;

    std::size_t last_accepted = 0;
    bool have_accepted = false;
    for (std::size_t i = 1; i + 1 < n; ++i) {
        if (values[i] < threshold) continue;
        // Peak if strictly above the previous sample and >= the next; a
        // plateau is attributed to its first index.
        const bool rising = values[i] > values[i - 1];
        const bool not_falling_into = values[i] >= values[i + 1];
        if (!(rising && not_falling_into)) continue;
        if (have_accepted && i - last_accepted < min_separation) continue;
        peaks.push_back({i, values[i], parabolic_peak_position(values, i)});
        last_accepted = i;
        have_accepted = true;
    }
    return peaks;
}

double parabolic_peak_position(const std::vector<double>& values, std::size_t bin) {
    if (bin == 0 || bin + 1 >= values.size()) return static_cast<double>(bin);
    const double left = values[bin - 1];
    const double center = values[bin];
    const double right = values[bin + 1];
    const double denom = left - 2.0 * center + right;
    if (denom >= 0.0) return static_cast<double>(bin);  // not concave: no refinement
    double offset = 0.5 * (left - right) / denom;
    offset = std::clamp(offset, -0.5, 0.5);
    return static_cast<double>(bin) + offset;
}

double noise_floor(const std::vector<double>& values, double pct) {
    if (values.empty()) throw std::invalid_argument("noise_floor: empty profile");
    return percentile(values, pct);
}

}  // namespace witrack::dsp
