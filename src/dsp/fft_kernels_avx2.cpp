// AVX2 (256-bit) instantiations of the lane-templated butterfly loops.
// This is the only translation unit compiled with -mavx2 (x86 builds; see
// CMakeLists.txt) -- dispatch guarantees its entry points are reached only
// after __builtin_cpu_supports("avx2") succeeded. It is deliberately also
// built with -ffp-contract=off like the other kernel TUs, so no FMA is
// emitted and the AVX2 level stays bit-identical to sse2/scalar.
#include "dsp/fft_kernels_impl.hpp"

namespace witrack::dsp::kernels::detail {

#if defined(__AVX2__)

void forward_avx2(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                  double* wi, std::size_t nzb) {
    run_forward_t<simd::AvxD>(plan, xr, xi, wr, wi, nzb);
}

void inverse_avx2(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                  double* wi) {
    run_inverse_t<simd::AvxD>(plan, xr, xi, wr, wi);
}

void forward_batch_avx2(const Pow2Kernel& plan, std::size_t batch, double* xr,
                        double* xi, double* wr, double* wi) {
    run_forward_batch_t<simd::AvxD>(plan, batch, xr, xi, wr, wi);
}

void forward_batch_f32_avx2(const Pow2Kernel& plan, std::size_t batch,
                            float* xr, float* xi, float* wr, float* wi) {
    run_forward_batch_t<simd::AvxF>(plan, batch, xr, xi, wr, wi);
}

#else  // !__AVX2__

void forward_avx2(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                  double* wi, std::size_t nzb) {
    forward_sse2(plan, xr, xi, wr, wi, nzb);
}

void inverse_avx2(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                  double* wi) {
    inverse_sse2(plan, xr, xi, wr, wi);
}

void forward_batch_avx2(const Pow2Kernel& plan, std::size_t batch, double* xr,
                        double* xi, double* wr, double* wi) {
    forward_batch_sse2(plan, batch, xr, xi, wr, wi);
}

void forward_batch_f32_avx2(const Pow2Kernel& plan, std::size_t batch,
                            float* xr, float* xi, float* wr, float* wi) {
    forward_batch_f32_sse2(plan, batch, xr, xi, wr, wi);
}

#endif  // __AVX2__

}  // namespace witrack::dsp::kernels::detail
