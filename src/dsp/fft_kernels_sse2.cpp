// SSE2 (128-bit) instantiations of the lane-templated butterfly loops.
// Built with the library's baseline flags: SSE2 is guaranteed on x86-64,
// so this translation unit needs no extra -m options. On targets without
// SSE2 the entry points degrade to the scalar level (dispatch never selects
// kSse2 there, but the symbols must still link).
#include "dsp/fft_kernels_impl.hpp"

namespace witrack::dsp::kernels::detail {

#if defined(__SSE2__)

void forward_sse2(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                  double* wi, std::size_t nzb) {
    run_forward_t<simd::SseD>(plan, xr, xi, wr, wi, nzb);
}

void inverse_sse2(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                  double* wi) {
    run_inverse_t<simd::SseD>(plan, xr, xi, wr, wi);
}

void forward_batch_sse2(const Pow2Kernel& plan, std::size_t batch, double* xr,
                        double* xi, double* wr, double* wi) {
    run_forward_batch_t<simd::SseD>(plan, batch, xr, xi, wr, wi);
}

void forward_batch_f32_sse2(const Pow2Kernel& plan, std::size_t batch,
                            float* xr, float* xi, float* wr, float* wi) {
    run_forward_batch_t<simd::SseF>(plan, batch, xr, xi, wr, wi);
}

#else  // !__SSE2__

void forward_sse2(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                  double* wi, std::size_t nzb) {
    forward_scalar(plan, xr, xi, wr, wi, nzb);
}

void inverse_sse2(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                  double* wi) {
    inverse_scalar(plan, xr, xi, wr, wi);
}

void forward_batch_sse2(const Pow2Kernel& plan, std::size_t batch, double* xr,
                        double* xi, double* wr, double* wi) {
    forward_batch_scalar(plan, batch, xr, xi, wr, wi);
}

void forward_batch_f32_sse2(const Pow2Kernel& plan, std::size_t batch,
                            float* xr, float* xi, float* wr, float* wi) {
    forward_batch_f32_scalar(plan, batch, xr, xi, wr, wi);
}

#endif  // __SSE2__

}  // namespace witrack::dsp::kernels::detail
