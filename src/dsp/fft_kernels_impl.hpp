// Lane-templated butterfly loops shared by every dispatch level of the
// Pow2Kernel engine. The transform schedule, the pruning bookkeeping and
// every arithmetic expression here are the scalar kernels of PR 5 ported
// verbatim onto the simd.hpp lane vocabulary: a lane performs the same
// IEEE-754 add/sub/mul per element as the scalar code (no FMA -- the
// kernel translation units are additionally built with -ffp-contract=off
// so the compiler cannot contract on wider -march targets), which is what
// makes all dispatch levels, and batched vs. sequential execution,
// bit-identical.
//
// Two vectorization axes:
//   - run_forward_t / run_inverse_t (single transform): vectorize the
//     contiguous q loop inside each butterfly group. Early stages have
//     stride s < width and fall through to the scalar tail -- the batch
//     kernel below is the shape that vectorizes every stage fully.
//   - run_forward_batch_t (BatchKernel): B same-shape transforms stored
//     lane-interleaved (element i of member b at [i*B + b]). For a fixed
//     butterfly group p the whole (q, b) plane is one contiguous run of
//     s*B elements whose operand offsets (n4*B) and output offsets (k*s*B)
//     are constant and whose twiddle depends only on p, so each group is a
//     single streaming lane_loop of length s*B -- fully vectorized at
//     every stage for every B >= 1, unlike the single-transform kernel
//     whose late stages have s < width.
//
// This header is included by the per-ISA translation units
// (fft_kernels.cpp, fft_kernels_sse2.cpp, fft_kernels_avx2.cpp), each of
// which instantiates the templates with its lane and exposes the plain
// entry points declared at the bottom; dispatch lives in fft_kernels.cpp.
#pragma once

#include <algorithm>
#include <cstddef>

#include "dsp/fft_kernels.hpp"
#include "dsp/simd.hpp"

namespace witrack::dsp::kernels::detail {

/// ceil(t / s); exact division everywhere the pruning invariant holds.
inline std::size_t ceil_div(std::size_t t, std::size_t s) {
    return (t + s - 1) / s;
}

/// Vector-main + scalar-tail driver: runs `body` over [0, count) with lane
/// L for the aligned span and the width-1 lane of the same element type
/// for the remainder. `body` is a generic lambda invoked as body<V>(i).
template <class L, class Body>
inline void lane_loop(std::size_t count, Body&& body) {
    using S = simd::Scalar<typename L::elem>;
    std::size_t i = 0;
    if constexpr (L::width > 1) {
        for (; i + L::width <= count; i += L::width)
            body.template operator()<L>(i);
    }
    for (; i < count; ++i) body.template operator()<S>(i);
}

// -------------------------------------------------- single transform

template <class L>
void run_forward_t(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                   double* wi, std::size_t nzb) {
    const std::size_t n = plan.size();
    const auto& stages = plan.plan_stages();
    const double* tw = plan.twiddles().data();

    double* sr = xr;
    double* si = xi;
    double* dr = wr;
    double* di = wi;
    if (stages.size() % 2 == 1) {
        // Odd stage count: start from the work planes so the final stage
        // lands the result in (xr, xi). Only the live prefix needs copying.
        std::copy(xr, xr + nzb, wr);
        std::copy(xi, xi + nzb, wi);
        sr = wr;
        si = wi;
        dr = xr;
        di = xi;
    }

    const std::size_t n4 = n / 4;
    for (const FftStage& st : stages) {
        const std::size_t s = st.stride;
        if (st.radix == 2) {
            // Final fixup stage: sub_n = 2, one butterfly per q, twiddle 1.
            const std::size_t h = n / 2;
            const std::size_t t0 = std::min(nzb, h);
            const std::size_t t1 = nzb > h ? nzb - h : 0;
            lane_loop<L>(t1, [&]<class V>(std::size_t q) {
                const auto ar = V::load(sr + q), ai = V::load(si + q);
                const auto br = V::load(sr + q + h), bi = V::load(si + q + h);
                V::store(dr + q, V::add(ar, br));
                V::store(di + q, V::add(ai, bi));
                V::store(dr + q + h, V::sub(ar, br));
                V::store(di + q + h, V::sub(ai, bi));
            });
            for (std::size_t q = t1; q < t0; ++q) {  // b structurally zero
                const double ar = sr[q], ai = si[q];
                dr[q] = ar;
                di[q] = ai;
                dr[q + h] = ar;
                di[q + h] = ai;
            }
            nzb = t0 > 0 ? n : 0;
            std::swap(sr, dr);
            std::swap(si, di);
            continue;
        }

        const std::size_t m = st.m;
        const double* w1r = tw + st.tw_offset;
        const double* w1i = w1r + m;
        const double* w2r = w1i + m;
        const double* w2i = w2r + m;
        const double* w3r = w2i + m;
        const double* w3i = w3r + m;

        // Region boundaries in p for 4/3/2/1 live operands.
        std::size_t t[4];
        for (std::size_t k = 0; k < 4; ++k) {
            const std::size_t cut = k * n4;
            const std::size_t tk = nzb > cut ? nzb - cut : 0;
            t[k] = std::min(tk, n4);
        }
        const std::size_t p0 = ceil_div(t[0], s);
        const std::size_t p1 = ceil_div(t[1], s);
        const std::size_t p2 = ceil_div(t[2], s);
        const std::size_t p3 = ceil_div(t[3], s);

        for (std::size_t p = 0; p < p3; ++p) {  // all four operands live
            const double* x0r = sr + s * p;
            const double* x0i = si + s * p;
            double* y0r = dr + 4 * s * p;
            double* y0i = di + 4 * s * p;
            lane_loop<L>(s, [&]<class V>(std::size_t q) {
                const auto ar = V::load(x0r + q), ai = V::load(x0i + q);
                const auto br = V::load(x0r + q + n4), bi = V::load(x0i + q + n4);
                const auto cr = V::load(x0r + q + 2 * n4);
                const auto ci = V::load(x0i + q + 2 * n4);
                const auto er = V::load(x0r + q + 3 * n4);
                const auto ei = V::load(x0i + q + 3 * n4);
                const auto apcr = V::add(ar, cr), apci = V::add(ai, ci);
                const auto amcr = V::sub(ar, cr), amci = V::sub(ai, ci);
                const auto bpdr = V::add(br, er), bpdi = V::add(bi, ei);
                const auto jr = V::sub(ei, bi), ji = V::sub(br, er);  // i*(b-d)
                V::store(y0r + q, V::add(apcr, bpdr));
                V::store(y0i + q, V::add(apci, bpdi));
                const auto u1r = V::set1(w1r[p]), u1i = V::set1(w1i[p]);
                const auto t1r = V::sub(amcr, jr), t1i = V::sub(amci, ji);
                V::store(y0r + q + s, V::sub(V::mul(u1r, t1r), V::mul(u1i, t1i)));
                V::store(y0i + q + s, V::add(V::mul(u1r, t1i), V::mul(u1i, t1r)));
                const auto u2r = V::set1(w2r[p]), u2i = V::set1(w2i[p]);
                const auto t2r = V::sub(apcr, bpdr), t2i = V::sub(apci, bpdi);
                V::store(y0r + q + 2 * s,
                         V::sub(V::mul(u2r, t2r), V::mul(u2i, t2i)));
                V::store(y0i + q + 2 * s,
                         V::add(V::mul(u2r, t2i), V::mul(u2i, t2r)));
                const auto u3r = V::set1(w3r[p]), u3i = V::set1(w3i[p]);
                const auto t3r = V::add(amcr, jr), t3i = V::add(amci, ji);
                V::store(y0r + q + 3 * s,
                         V::sub(V::mul(u3r, t3r), V::mul(u3i, t3i)));
                V::store(y0i + q + 3 * s,
                         V::add(V::mul(u3r, t3i), V::mul(u3i, t3r)));
            });
        }
        for (std::size_t p = p3; p < p2; ++p) {  // d structurally zero
            // The scalar source computed j = i*b as (jr, ji) = (-bi, br)
            // and formed t1 = amc - j, t3 = amc + j; negation then
            // subtraction is exactly addition in IEEE-754, so the folded
            // add/sub forms below are bit-identical.
            const double* x0r = sr + s * p;
            const double* x0i = si + s * p;
            double* y0r = dr + 4 * s * p;
            double* y0i = di + 4 * s * p;
            lane_loop<L>(s, [&]<class V>(std::size_t q) {
                const auto ar = V::load(x0r + q), ai = V::load(x0i + q);
                const auto br = V::load(x0r + q + n4), bi = V::load(x0i + q + n4);
                const auto cr = V::load(x0r + q + 2 * n4);
                const auto ci = V::load(x0i + q + 2 * n4);
                const auto apcr = V::add(ar, cr), apci = V::add(ai, ci);
                const auto amcr = V::sub(ar, cr), amci = V::sub(ai, ci);
                V::store(y0r + q, V::add(apcr, br));
                V::store(y0i + q, V::add(apci, bi));
                const auto u1r = V::set1(w1r[p]), u1i = V::set1(w1i[p]);
                const auto t1r = V::add(amcr, bi), t1i = V::sub(amci, br);
                V::store(y0r + q + s, V::sub(V::mul(u1r, t1r), V::mul(u1i, t1i)));
                V::store(y0i + q + s, V::add(V::mul(u1r, t1i), V::mul(u1i, t1r)));
                const auto u2r = V::set1(w2r[p]), u2i = V::set1(w2i[p]);
                const auto t2r = V::sub(apcr, br), t2i = V::sub(apci, bi);
                V::store(y0r + q + 2 * s,
                         V::sub(V::mul(u2r, t2r), V::mul(u2i, t2i)));
                V::store(y0i + q + 2 * s,
                         V::add(V::mul(u2r, t2i), V::mul(u2i, t2r)));
                const auto u3r = V::set1(w3r[p]), u3i = V::set1(w3i[p]);
                const auto t3r = V::sub(amcr, bi), t3i = V::add(amci, br);
                V::store(y0r + q + 3 * s,
                         V::sub(V::mul(u3r, t3r), V::mul(u3i, t3i)));
                V::store(y0i + q + 3 * s,
                         V::add(V::mul(u3r, t3i), V::mul(u3i, t3r)));
            });
        }
        for (std::size_t p = p2; p < p1; ++p) {  // c and d structurally zero
            const double* x0r = sr + s * p;
            const double* x0i = si + s * p;
            double* y0r = dr + 4 * s * p;
            double* y0i = di + 4 * s * p;
            lane_loop<L>(s, [&]<class V>(std::size_t q) {
                const auto ar = V::load(x0r + q), ai = V::load(x0i + q);
                const auto br = V::load(x0r + q + n4), bi = V::load(x0i + q + n4);
                V::store(y0r + q, V::add(ar, br));
                V::store(y0i + q, V::add(ai, bi));
                const auto u1r = V::set1(w1r[p]), u1i = V::set1(w1i[p]);
                const auto t1r = V::add(ar, bi), t1i = V::sub(ai, br);  // a-i*b
                V::store(y0r + q + s, V::sub(V::mul(u1r, t1r), V::mul(u1i, t1i)));
                V::store(y0i + q + s, V::add(V::mul(u1r, t1i), V::mul(u1i, t1r)));
                const auto u2r = V::set1(w2r[p]), u2i = V::set1(w2i[p]);
                const auto t2r = V::sub(ar, br), t2i = V::sub(ai, bi);
                V::store(y0r + q + 2 * s,
                         V::sub(V::mul(u2r, t2r), V::mul(u2i, t2i)));
                V::store(y0i + q + 2 * s,
                         V::add(V::mul(u2r, t2i), V::mul(u2i, t2r)));
                const auto u3r = V::set1(w3r[p]), u3i = V::set1(w3i[p]);
                const auto t3r = V::sub(ar, bi), t3i = V::add(ai, br);  // a+i*b
                V::store(y0r + q + 3 * s,
                         V::sub(V::mul(u3r, t3r), V::mul(u3i, t3i)));
                V::store(y0i + q + 3 * s,
                         V::add(V::mul(u3r, t3i), V::mul(u3i, t3r)));
            });
        }
        for (std::size_t p = p1; p < p0; ++p) {  // only a live
            const double* x0r = sr + s * p;
            const double* x0i = si + s * p;
            double* y0r = dr + 4 * s * p;
            double* y0i = di + 4 * s * p;
            lane_loop<L>(s, [&]<class V>(std::size_t q) {
                const auto ar = V::load(x0r + q), ai = V::load(x0i + q);
                V::store(y0r + q, ar);
                V::store(y0i + q, ai);
                const auto u1r = V::set1(w1r[p]), u1i = V::set1(w1i[p]);
                V::store(y0r + q + s, V::sub(V::mul(u1r, ar), V::mul(u1i, ai)));
                V::store(y0i + q + s, V::add(V::mul(u1r, ai), V::mul(u1i, ar)));
                const auto u2r = V::set1(w2r[p]), u2i = V::set1(w2i[p]);
                V::store(y0r + q + 2 * s,
                         V::sub(V::mul(u2r, ar), V::mul(u2i, ai)));
                V::store(y0i + q + 2 * s,
                         V::add(V::mul(u2r, ai), V::mul(u2i, ar)));
                const auto u3r = V::set1(w3r[p]), u3i = V::set1(w3i[p]);
                V::store(y0r + q + 3 * s,
                         V::sub(V::mul(u3r, ar), V::mul(u3i, ai)));
                V::store(y0i + q + 3 * s,
                         V::add(V::mul(u3r, ai), V::mul(u3i, ar)));
            });
        }
        // p >= p0: both source and destination are structurally zero; the
        // untouched destination range is never read back (later stages'
        // bounds exclude it).
        nzb = 4 * s * p0;
        std::swap(sr, dr);
        std::swap(si, di);
    }
}

template <class L>
void run_inverse_t(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                   double* wi) {
    const std::size_t n = plan.size();
    const auto& stages = plan.plan_stages();
    const double* tw = plan.twiddles().data();

    double* sr = xr;
    double* si = xi;
    double* dr = wr;
    double* di = wi;
    if (stages.size() % 2 == 1) {
        std::copy(xr, xr + n, wr);
        std::copy(xi, xi + n, wi);
        sr = wr;
        si = wi;
        dr = xr;
        di = xi;
    }

    const std::size_t n4 = n / 4;
    for (const FftStage& st : stages) {
        const std::size_t s = st.stride;
        if (st.radix == 2) {
            const std::size_t h = n / 2;
            lane_loop<L>(h, [&]<class V>(std::size_t q) {
                const auto ar = V::load(sr + q), ai = V::load(si + q);
                const auto br = V::load(sr + q + h), bi = V::load(si + q + h);
                V::store(dr + q, V::add(ar, br));
                V::store(di + q, V::add(ai, bi));
                V::store(dr + q + h, V::sub(ar, br));
                V::store(di + q + h, V::sub(ai, bi));
            });
            std::swap(sr, dr);
            std::swap(si, di);
            continue;
        }
        const std::size_t m = st.m;
        const double* w1r = tw + st.tw_offset;
        const double* w1i = w1r + m;
        const double* w2r = w1i + m;
        const double* w2i = w2r + m;
        const double* w3r = w2i + m;
        const double* w3i = w3r + m;
        for (std::size_t p = 0; p < m; ++p) {
            // Conjugated twiddles and +i rotation, signs folded into the
            // expressions -- no branch, no conj call.
            const double* x0r = sr + s * p;
            const double* x0i = si + s * p;
            double* y0r = dr + 4 * s * p;
            double* y0i = di + 4 * s * p;
            lane_loop<L>(s, [&]<class V>(std::size_t q) {
                const auto ar = V::load(x0r + q), ai = V::load(x0i + q);
                const auto br = V::load(x0r + q + n4), bi = V::load(x0i + q + n4);
                const auto cr = V::load(x0r + q + 2 * n4);
                const auto ci = V::load(x0i + q + 2 * n4);
                const auto er = V::load(x0r + q + 3 * n4);
                const auto ei = V::load(x0i + q + 3 * n4);
                const auto apcr = V::add(ar, cr), apci = V::add(ai, ci);
                const auto amcr = V::sub(ar, cr), amci = V::sub(ai, ci);
                const auto bpdr = V::add(br, er), bpdi = V::add(bi, ei);
                const auto jr = V::sub(ei, bi), ji = V::sub(br, er);  // i*(b-d)
                V::store(y0r + q, V::add(apcr, bpdr));
                V::store(y0i + q, V::add(apci, bpdi));
                const auto u1r = V::set1(w1r[p]), u1i = V::set1(w1i[p]);
                const auto t1r = V::add(amcr, jr), t1i = V::add(amci, ji);
                V::store(y0r + q + s, V::add(V::mul(u1r, t1r), V::mul(u1i, t1i)));
                V::store(y0i + q + s, V::sub(V::mul(u1r, t1i), V::mul(u1i, t1r)));
                const auto u2r = V::set1(w2r[p]), u2i = V::set1(w2i[p]);
                const auto t2r = V::sub(apcr, bpdr), t2i = V::sub(apci, bpdi);
                V::store(y0r + q + 2 * s,
                         V::add(V::mul(u2r, t2r), V::mul(u2i, t2i)));
                V::store(y0i + q + 2 * s,
                         V::sub(V::mul(u2r, t2i), V::mul(u2i, t2r)));
                const auto u3r = V::set1(w3r[p]), u3i = V::set1(w3i[p]);
                const auto t3r = V::sub(amcr, jr), t3i = V::sub(amci, ji);
                V::store(y0r + q + 3 * s,
                         V::add(V::mul(u3r, t3r), V::mul(u3i, t3i)));
                V::store(y0i + q + 3 * s,
                         V::sub(V::mul(u3r, t3i), V::mul(u3i, t3r)));
            });
        }
        std::swap(sr, dr);
        std::swap(si, di);
    }

    const double scale = 1.0 / static_cast<double>(n);
    lane_loop<L>(n, [&]<class V>(std::size_t i) {
        const auto k = V::set1(scale);
        V::store(xr + i, V::mul(V::load(xr + i), k));
        V::store(xi + i, V::mul(V::load(xi + i), k));
    });
}

// ------------------------------------------------------ batched transform

/// B same-shape forward transforms over lane-interleaved planes (element i
/// of member b at [i*B + b]). T is double or float; the shared twiddle
/// tables stay double and are narrowed at broadcast time for the float
/// lane. The pruning bookkeeping is per *element* index, identical to the
/// single-transform schedule, because every member shares the plan's
/// nonzero prefix.
template <class L>
void run_forward_batch_t(const Pow2Kernel& plan, std::size_t batch,
                         typename L::elem* xr, typename L::elem* xi,
                         typename L::elem* wr, typename L::elem* wi) {
    using T = typename L::elem;
    const std::size_t B = batch;
    const std::size_t n = plan.size();
    std::size_t nzb = plan.n_nonzero();
    const auto& stages = plan.plan_stages();
    const double* tw = plan.twiddles().data();

    T* sr = xr;
    T* si = xi;
    T* dr = wr;
    T* di = wi;
    if (stages.size() % 2 == 1) {
        std::copy(xr, xr + nzb * B, wr);
        std::copy(xi, xi + nzb * B, wi);
        sr = wr;
        si = wi;
        dr = xr;
        di = xi;
    }

    const std::size_t n4 = n / 4;
    for (const FftStage& st : stages) {
        const std::size_t s = st.stride;
        if (st.radix == 2) {
            const std::size_t h = n / 2;
            const std::size_t t0 = std::min(nzb, h);
            const std::size_t t1 = nzb > h ? nzb - h : 0;
            const std::size_t hB = h * B;
            lane_loop<L>(t1 * B, [&]<class V>(std::size_t i) {
                const auto ar = V::load(sr + i), ai = V::load(si + i);
                const auto br = V::load(sr + i + hB), bi = V::load(si + i + hB);
                V::store(dr + i, V::add(ar, br));
                V::store(di + i, V::add(ai, bi));
                V::store(dr + i + hB, V::sub(ar, br));
                V::store(di + i + hB, V::sub(ai, bi));
            });
            if (t0 > t1) {  // b structurally zero: plain duplication
                std::copy(sr + t1 * B, sr + t0 * B, dr + t1 * B);
                std::copy(si + t1 * B, si + t0 * B, di + t1 * B);
                std::copy(sr + t1 * B, sr + t0 * B, dr + t1 * B + hB);
                std::copy(si + t1 * B, si + t0 * B, di + t1 * B + hB);
            }
            nzb = t0 > 0 ? n : 0;
            std::swap(sr, dr);
            std::swap(si, di);
            continue;
        }

        const std::size_t m = st.m;
        const double* w1r = tw + st.tw_offset;
        const double* w1i = w1r + m;
        const double* w2r = w1i + m;
        const double* w2i = w2r + m;
        const double* w3r = w2i + m;
        const double* w3i = w3r + m;

        std::size_t t[4];
        for (std::size_t k = 0; k < 4; ++k) {
            const std::size_t cut = k * n4;
            const std::size_t tk = nzb > cut ? nzb - cut : 0;
            t[k] = std::min(tk, n4);
        }
        const std::size_t p0 = ceil_div(t[0], s);
        const std::size_t p1 = ceil_div(t[1], s);
        const std::size_t p2 = ceil_div(t[2], s);
        const std::size_t p3 = ceil_div(t[3], s);

        // For fixed p, index (s*p + q)*B + b sweeps one contiguous run of
        // s*B elements as (q, b) vary, operand planes sit at fixed offsets
        // of n4*B, and the k-th output plane at 4*s*p*B + k*s*B. So each
        // butterfly group is one streaming loop of length s*B.
        const std::size_t sB = s * B;
        const std::size_t n4B = n4 * B;
        for (std::size_t p = 0; p < p3; ++p) {  // all four operands live
            const T u1r = static_cast<T>(w1r[p]), u1i = static_cast<T>(w1i[p]);
            const T u2r = static_cast<T>(w2r[p]), u2i = static_cast<T>(w2i[p]);
            const T u3r = static_cast<T>(w3r[p]), u3i = static_cast<T>(w3i[p]);
            const T* a_r = sr + p * sB;
            const T* a_i = si + p * sB;
            T* y0r = dr + 4 * p * sB;
            T* y0i = di + 4 * p * sB;
            lane_loop<L>(sB, [&]<class V>(std::size_t i) {
                const auto ar = V::load(a_r + i), ai = V::load(a_i + i);
                const auto br = V::load(a_r + i + n4B);
                const auto bi = V::load(a_i + i + n4B);
                const auto cr = V::load(a_r + i + 2 * n4B);
                const auto ci = V::load(a_i + i + 2 * n4B);
                const auto er = V::load(a_r + i + 3 * n4B);
                const auto ei = V::load(a_i + i + 3 * n4B);
                const auto apcr = V::add(ar, cr), apci = V::add(ai, ci);
                const auto amcr = V::sub(ar, cr), amci = V::sub(ai, ci);
                const auto bpdr = V::add(br, er), bpdi = V::add(bi, ei);
                const auto jr = V::sub(ei, bi), ji = V::sub(br, er);
                V::store(y0r + i, V::add(apcr, bpdr));
                V::store(y0i + i, V::add(apci, bpdi));
                const auto v1r = V::set1(u1r), v1i = V::set1(u1i);
                const auto t1r = V::sub(amcr, jr), t1i = V::sub(amci, ji);
                V::store(y0r + i + sB, V::sub(V::mul(v1r, t1r), V::mul(v1i, t1i)));
                V::store(y0i + i + sB, V::add(V::mul(v1r, t1i), V::mul(v1i, t1r)));
                const auto v2r = V::set1(u2r), v2i = V::set1(u2i);
                const auto t2r = V::sub(apcr, bpdr), t2i = V::sub(apci, bpdi);
                V::store(y0r + i + 2 * sB,
                         V::sub(V::mul(v2r, t2r), V::mul(v2i, t2i)));
                V::store(y0i + i + 2 * sB,
                         V::add(V::mul(v2r, t2i), V::mul(v2i, t2r)));
                const auto v3r = V::set1(u3r), v3i = V::set1(u3i);
                const auto t3r = V::add(amcr, jr), t3i = V::add(amci, ji);
                V::store(y0r + i + 3 * sB,
                         V::sub(V::mul(v3r, t3r), V::mul(v3i, t3i)));
                V::store(y0i + i + 3 * sB,
                         V::add(V::mul(v3r, t3i), V::mul(v3i, t3r)));
            });
        }
        for (std::size_t p = p3; p < p2; ++p) {  // d structurally zero
            const T u1r = static_cast<T>(w1r[p]), u1i = static_cast<T>(w1i[p]);
            const T u2r = static_cast<T>(w2r[p]), u2i = static_cast<T>(w2i[p]);
            const T u3r = static_cast<T>(w3r[p]), u3i = static_cast<T>(w3i[p]);
            const T* a_r = sr + p * sB;
            const T* a_i = si + p * sB;
            T* y0r = dr + 4 * p * sB;
            T* y0i = di + 4 * p * sB;
            lane_loop<L>(sB, [&]<class V>(std::size_t i) {
                const auto ar = V::load(a_r + i), ai = V::load(a_i + i);
                const auto br = V::load(a_r + i + n4B);
                const auto bi = V::load(a_i + i + n4B);
                const auto cr = V::load(a_r + i + 2 * n4B);
                const auto ci = V::load(a_i + i + 2 * n4B);
                const auto apcr = V::add(ar, cr), apci = V::add(ai, ci);
                const auto amcr = V::sub(ar, cr), amci = V::sub(ai, ci);
                V::store(y0r + i, V::add(apcr, br));
                V::store(y0i + i, V::add(apci, bi));
                const auto v1r = V::set1(u1r), v1i = V::set1(u1i);
                const auto t1r = V::add(amcr, bi), t1i = V::sub(amci, br);
                V::store(y0r + i + sB, V::sub(V::mul(v1r, t1r), V::mul(v1i, t1i)));
                V::store(y0i + i + sB, V::add(V::mul(v1r, t1i), V::mul(v1i, t1r)));
                const auto v2r = V::set1(u2r), v2i = V::set1(u2i);
                const auto t2r = V::sub(apcr, br), t2i = V::sub(apci, bi);
                V::store(y0r + i + 2 * sB,
                         V::sub(V::mul(v2r, t2r), V::mul(v2i, t2i)));
                V::store(y0i + i + 2 * sB,
                         V::add(V::mul(v2r, t2i), V::mul(v2i, t2r)));
                const auto v3r = V::set1(u3r), v3i = V::set1(u3i);
                const auto t3r = V::sub(amcr, bi), t3i = V::add(amci, br);
                V::store(y0r + i + 3 * sB,
                         V::sub(V::mul(v3r, t3r), V::mul(v3i, t3i)));
                V::store(y0i + i + 3 * sB,
                         V::add(V::mul(v3r, t3i), V::mul(v3i, t3r)));
            });
        }
        for (std::size_t p = p2; p < p1; ++p) {  // c and d structurally zero
            const T u1r = static_cast<T>(w1r[p]), u1i = static_cast<T>(w1i[p]);
            const T u2r = static_cast<T>(w2r[p]), u2i = static_cast<T>(w2i[p]);
            const T u3r = static_cast<T>(w3r[p]), u3i = static_cast<T>(w3i[p]);
            const T* a_r = sr + p * sB;
            const T* a_i = si + p * sB;
            T* y0r = dr + 4 * p * sB;
            T* y0i = di + 4 * p * sB;
            lane_loop<L>(sB, [&]<class V>(std::size_t i) {
                const auto ar = V::load(a_r + i), ai = V::load(a_i + i);
                const auto br = V::load(a_r + i + n4B);
                const auto bi = V::load(a_i + i + n4B);
                V::store(y0r + i, V::add(ar, br));
                V::store(y0i + i, V::add(ai, bi));
                const auto v1r = V::set1(u1r), v1i = V::set1(u1i);
                const auto t1r = V::add(ar, bi), t1i = V::sub(ai, br);
                V::store(y0r + i + sB, V::sub(V::mul(v1r, t1r), V::mul(v1i, t1i)));
                V::store(y0i + i + sB, V::add(V::mul(v1r, t1i), V::mul(v1i, t1r)));
                const auto v2r = V::set1(u2r), v2i = V::set1(u2i);
                const auto t2r = V::sub(ar, br), t2i = V::sub(ai, bi);
                V::store(y0r + i + 2 * sB,
                         V::sub(V::mul(v2r, t2r), V::mul(v2i, t2i)));
                V::store(y0i + i + 2 * sB,
                         V::add(V::mul(v2r, t2i), V::mul(v2i, t2r)));
                const auto v3r = V::set1(u3r), v3i = V::set1(u3i);
                const auto t3r = V::sub(ar, bi), t3i = V::add(ai, br);
                V::store(y0r + i + 3 * sB,
                         V::sub(V::mul(v3r, t3r), V::mul(v3i, t3i)));
                V::store(y0i + i + 3 * sB,
                         V::add(V::mul(v3r, t3i), V::mul(v3i, t3r)));
            });
        }
        for (std::size_t p = p1; p < p0; ++p) {  // only a live
            const T u1r = static_cast<T>(w1r[p]), u1i = static_cast<T>(w1i[p]);
            const T u2r = static_cast<T>(w2r[p]), u2i = static_cast<T>(w2i[p]);
            const T u3r = static_cast<T>(w3r[p]), u3i = static_cast<T>(w3i[p]);
            const T* a_r = sr + p * sB;
            const T* a_i = si + p * sB;
            T* y0r = dr + 4 * p * sB;
            T* y0i = di + 4 * p * sB;
            lane_loop<L>(sB, [&]<class V>(std::size_t i) {
                const auto ar = V::load(a_r + i), ai = V::load(a_i + i);
                V::store(y0r + i, ar);
                V::store(y0i + i, ai);
                const auto v1r = V::set1(u1r), v1i = V::set1(u1i);
                V::store(y0r + i + sB, V::sub(V::mul(v1r, ar), V::mul(v1i, ai)));
                V::store(y0i + i + sB, V::add(V::mul(v1r, ai), V::mul(v1i, ar)));
                const auto v2r = V::set1(u2r), v2i = V::set1(u2i);
                V::store(y0r + i + 2 * sB,
                         V::sub(V::mul(v2r, ar), V::mul(v2i, ai)));
                V::store(y0i + i + 2 * sB,
                         V::add(V::mul(v2r, ai), V::mul(v2i, ar)));
                const auto v3r = V::set1(u3r), v3i = V::set1(u3i);
                V::store(y0r + i + 3 * sB,
                         V::sub(V::mul(v3r, ar), V::mul(v3i, ai)));
                V::store(y0i + i + 3 * sB,
                         V::add(V::mul(v3r, ai), V::mul(v3i, ar)));
            });
        }
        nzb = 4 * s * p0;
        std::swap(sr, dr);
        std::swap(si, di);
    }
}

// ------------------------------------------------ per-level entry points
//
// Each translation unit defines its level's set (fft_kernels.cpp: scalar +
// the dispatch; fft_kernels_sse2.cpp / fft_kernels_avx2.cpp: the vector
// levels, falling back to the next level down when the build target lacks
// the ISA entirely).

void forward_scalar(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                    double* wi, std::size_t nzb);
void forward_sse2(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                  double* wi, std::size_t nzb);
void forward_avx2(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                  double* wi, std::size_t nzb);

void inverse_scalar(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                    double* wi);
void inverse_sse2(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                  double* wi);
void inverse_avx2(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                  double* wi);

void forward_batch_scalar(const Pow2Kernel& plan, std::size_t batch, double* xr,
                          double* xi, double* wr, double* wi);
void forward_batch_sse2(const Pow2Kernel& plan, std::size_t batch, double* xr,
                        double* xi, double* wr, double* wi);
void forward_batch_avx2(const Pow2Kernel& plan, std::size_t batch, double* xr,
                        double* xi, double* wr, double* wi);

void forward_batch_f32_scalar(const Pow2Kernel& plan, std::size_t batch,
                              float* xr, float* xi, float* wr, float* wi);
void forward_batch_f32_sse2(const Pow2Kernel& plan, std::size_t batch,
                            float* xr, float* xi, float* wr, float* wi);
void forward_batch_f32_avx2(const Pow2Kernel& plan, std::size_t batch,
                            float* xr, float* xi, float* wr, float* wi);

}  // namespace witrack::dsp::kernels::detail
