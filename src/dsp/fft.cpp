#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft_plan_cache.hpp"

namespace witrack::dsp {

namespace {

std::size_t next_power_of_two(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

/// Grow-only plane sizing: capacity is kept warm across mixed-size calls.
inline void ensure_plane(std::vector<double>& v, std::size_t n) {
    if (v.size() < n) v.resize(n);
}

}  // namespace

Fft::Fft(std::size_t n, std::size_t n_nonzero)
    : n_(n), pow2_(is_power_of_two(n)) {
    if (n_ == 0) throw std::invalid_argument("Fft: size must be positive");

    if (pow2_) {
        kernel_ = std::make_unique<kernels::Pow2Kernel>(
            n_, effective_nonzero(n_, n_nonzero));
        return;
    }

    // Bluestein setup. The chirp uses k^2 mod 2n in the exponent to avoid
    // catastrophic precision loss for large k (pi*k^2/n wraps every 2n).
    m_ = next_power_of_two(2 * n_ - 1);
    chirp_re_.resize(n_);
    chirp_im_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
        const std::size_t k2 = (k * k) % (2 * n_);
        const double angle = M_PI * static_cast<double>(k2) / static_cast<double>(n_);
        chirp_re_[k] = std::cos(angle);
        chirp_im_[k] = std::sin(angle);
    }
    // The data-side convolution input is nonzero only in its first n_
    // entries of m_, so its forward transform is planned pruned; the
    // spectrum-side inverse is dense.
    conv_kernel_ = std::make_unique<kernels::Pow2Kernel>(m_, n_);
    chirp_spec_re_.assign(m_, 0.0);
    chirp_spec_im_.assign(m_, 0.0);
    chirp_spec_re_[0] = chirp_re_[0];
    chirp_spec_im_[0] = chirp_im_[0];
    for (std::size_t k = 1; k < n_; ++k) {
        chirp_spec_re_[k] = chirp_re_[k];
        chirp_spec_im_[k] = chirp_im_[k];
        chirp_spec_re_[m_ - k] = chirp_re_[k];  // circular wrap, negative lags
        chirp_spec_im_[m_ - k] = chirp_im_[k];
    }
    // One-time dense transform (the wrapped chirp is nonzero at both ends
    // of the buffer, so the pruned forward does not apply).
    std::vector<double> wr(m_), wi(m_);
    conv_kernel_->forward_dense(chirp_spec_re_.data(), chirp_spec_im_.data(),
                                wr.data(), wi.data());
}

void Fft::bluestein_forward(double* re, double* im, FftScratch& scratch) const {
    // DFT via chirp-z: X_k = conj(b_k) * IFFT(FFT(a.*conj(b)) .* FFT(b))_k,
    // where b is the quadratic chirp.
    ensure_plane(scratch.bre, m_);
    ensure_plane(scratch.bim, m_);
    ensure_plane(scratch.wre, m_);
    ensure_plane(scratch.wim, m_);
    double* br = scratch.bre.data();
    double* bi = scratch.bim.data();
    const double* cr = chirp_re_.data();
    const double* ci = chirp_im_.data();
    for (std::size_t k = 0; k < n_; ++k) {  // a_k * conj(chirp_k)
        br[k] = re[k] * cr[k] + im[k] * ci[k];
        bi[k] = im[k] * cr[k] - re[k] * ci[k];
    }
    // [n_, m_) is structurally zero: the pruned convolution plan skips it.
    conv_kernel_->forward(br, bi, scratch.wre.data(), scratch.wim.data());
    const double* sr = chirp_spec_re_.data();
    const double* si = chirp_spec_im_.data();
    for (std::size_t k = 0; k < m_; ++k) {
        const double tr = br[k] * sr[k] - bi[k] * si[k];
        const double ti = br[k] * si[k] + bi[k] * sr[k];
        br[k] = tr;
        bi[k] = ti;
    }
    conv_kernel_->inverse(br, bi, scratch.wre.data(), scratch.wim.data());
    for (std::size_t k = 0; k < n_; ++k) {  // * conj(chirp_k)
        re[k] = br[k] * cr[k] + bi[k] * ci[k];
        im[k] = bi[k] * cr[k] - br[k] * ci[k];
    }
}

void Fft::forward_soa(double* re, double* im, FftScratch& scratch) const {
    if (pow2_) {
        ensure_plane(scratch.wre, n_);
        ensure_plane(scratch.wim, n_);
        kernel_->forward(re, im, scratch.wre.data(), scratch.wim.data());
        return;
    }
    bluestein_forward(re, im, scratch);
}

void Fft::inverse_soa(double* re, double* im, FftScratch& scratch) const {
    if (pow2_) {
        ensure_plane(scratch.wre, n_);
        ensure_plane(scratch.wim, n_);
        kernel_->inverse(re, im, scratch.wre.data(), scratch.wim.data());
        return;
    }
    // Inverse chirp-z through conjugation: IDFT(x) = conj(DFT(conj(x)))/n.
    for (std::size_t k = 0; k < n_; ++k) im[k] = -im[k];
    bluestein_forward(re, im, scratch);
    const double scale = 1.0 / static_cast<double>(n_);
    for (std::size_t k = 0; k < n_; ++k) {
        re[k] *= scale;
        im[k] = -im[k] * scale;
    }
}

void Fft::forward(std::vector<cplx>& data) const {
    FftScratch scratch;
    forward(data, scratch);
}

void Fft::inverse(std::vector<cplx>& data) const {
    FftScratch scratch;
    inverse(data, scratch);
}

void Fft::forward(std::vector<cplx>& data, FftScratch& scratch) const {
    if (data.size() != n_) throw std::invalid_argument("Fft::forward: size mismatch");
    ensure_plane(scratch.dre, n_);
    ensure_plane(scratch.dim, n_);
    double* re = scratch.dre.data();
    double* im = scratch.dim.data();
    for (std::size_t k = 0; k < n_; ++k) {
        re[k] = data[k].real();
        im[k] = data[k].imag();
    }
    forward_soa(re, im, scratch);
    for (std::size_t k = 0; k < n_; ++k) data[k] = cplx(re[k], im[k]);
}

void Fft::inverse(std::vector<cplx>& data, FftScratch& scratch) const {
    if (data.size() != n_) throw std::invalid_argument("Fft::inverse: size mismatch");
    ensure_plane(scratch.dre, n_);
    ensure_plane(scratch.dim, n_);
    double* re = scratch.dre.data();
    double* im = scratch.dim.data();
    for (std::size_t k = 0; k < n_; ++k) {
        re[k] = data[k].real();
        im[k] = data[k].imag();
    }
    inverse_soa(re, im, scratch);
    for (std::size_t k = 0; k < n_; ++k) data[k] = cplx(re[k], im[k]);
}

void RealFft::init(std::size_t n_nonzero) {
    if (n_ == 0) throw std::invalid_argument("RealFft: size must be positive");
    nz_ = (n_nonzero == 0 || n_nonzero > n_) ? n_ : n_nonzero;
    if (n_ % 2 != 0) return;  // odd-N fallback plans dense, pads at pack time
    packed_nz_ = (nz_ + 1) / 2;
    const std::size_t quarter = n_ / 4;
    twr_.resize(quarter + 1);
    twi_.resize(quarter + 1);
    for (std::size_t k = 0; k <= quarter; ++k) {
        const double angle = -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n_);
        twr_[k] = std::cos(angle);
        twi_[k] = std::sin(angle);
    }
}

RealFft::RealFft(std::size_t n, std::size_t n_nonzero) : n_(n) {
    init(n_nonzero);
    if (n_ % 2 == 0)
        half_plan_ = std::make_shared<const Fft>(n_ / 2, packed_nz_);
    else
        full_plan_ = std::make_shared<const Fft>(n_);
}

RealFft::RealFft(std::size_t n, FftPlanCache& cache, std::size_t n_nonzero)
    : n_(n) {
    init(n_nonzero);
    if (n_ % 2 == 0)
        half_plan_ = cache.complex_plan(n_ / 2, packed_nz_);
    else
        full_plan_ = cache.complex_plan(n_);
}

void RealFft::transform(std::span<const double> input, const double* window,
                        std::vector<cplx>& out, FftScratch& scratch) const {
    if (input.size() != nz_)
        throw std::invalid_argument("RealFft::forward: size mismatch");

    if (full_plan_) {  // odd N fallback: plain complex transform
        ensure_plane(scratch.dre, n_);
        ensure_plane(scratch.dim, n_);
        double* re = scratch.dre.data();
        double* im = scratch.dim.data();
        if (window != nullptr)
            for (std::size_t i = 0; i < nz_; ++i) re[i] = input[i] * window[i];
        else
            for (std::size_t i = 0; i < nz_; ++i) re[i] = input[i];
        std::fill(re + nz_, re + n_, 0.0);
        std::fill(im, im + n_, 0.0);
        full_plan_->forward_soa(re, im, scratch);
        out.resize(n_ / 2 + 1);
        for (std::size_t k = 0; k <= n_ / 2; ++k) out[k] = cplx(re[k], im[k]);
        return;
    }

    // Pack adjacent real samples into one half-length complex sequence,
    // z_n = x_{2n} + i*x_{2n+1}, applying the window on the fly (this is
    // the fused windowing pass: no separate sweep over the samples).
    const std::size_t h = n_ / 2;
    ensure_plane(scratch.dre, h);
    ensure_plane(scratch.dim, h);
    double* zr = scratch.dre.data();
    double* zi = scratch.dim.data();
    const std::size_t pairs = nz_ / 2;
    if (window != nullptr) {
        for (std::size_t k = 0; k < pairs; ++k) {
            zr[k] = input[2 * k] * window[2 * k];
            zi[k] = input[2 * k + 1] * window[2 * k + 1];
        }
    } else {
        for (std::size_t k = 0; k < pairs; ++k) {
            zr[k] = input[2 * k];
            zi[k] = input[2 * k + 1];
        }
    }
    if (nz_ % 2 == 1) {
        zr[packed_nz_ - 1] =
            window != nullptr ? input[nz_ - 1] * window[nz_ - 1] : input[nz_ - 1];
        zi[packed_nz_ - 1] = 0.0;
    }
    // A pruned half plan treats [packed_nz_, h) as structural zero and
    // never reads it; a dense plan (non-power-of-two half) needs the
    // padding materialized.
    if (packed_nz_ < h && half_plan_->n_nonzero() == h) {
        std::fill(zr + packed_nz_, zr + h, 0.0);
        std::fill(zi + packed_nz_, zi + h, 0.0);
    }
    half_plan_->forward_soa(zr, zi, scratch);

    // Untangle the even/odd sub-spectra (E_k, O_k) from Z and recombine:
    //   X_k = E_k + w^k O_k,  with  E_k = (Z_k + conj(Z_{h-k}))/2,
    //   O_k = -i/2 (Z_k - conj(Z_{h-k})),  w = exp(-2*pi*i/N).
    // Only the non-redundant half X_0..X_h is materialized, and each loop
    // iteration emits the pair (X_k, X_{h-k} = conj(E_k - w^k O_k)), so
    // the untangle does h/2 iterations instead of the h a full-spectrum
    // recombination needs.
    out.resize(h + 1);
    const double zr0 = zr[0], zi0 = zi[0];
    out[0] = cplx(zr0 + zi0, 0.0);
    out[h] = cplx(zr0 - zi0, 0.0);
    const double* wr = twr_.data();
    const double* wi = twi_.data();
    for (std::size_t k = 1; 2 * k < h; ++k) {
        const double ar = zr[k], ai = zi[k];
        const double br = zr[h - k], bi = zi[h - k];
        const double er = 0.5 * (ar + br);
        const double ei = 0.5 * (ai - bi);
        const double odr = 0.5 * (ai + bi);
        const double odi = 0.5 * (br - ar);
        const double tr = wr[k] * odr - wi[k] * odi;
        const double ti = wr[k] * odi + wi[k] * odr;
        out[k] = cplx(er + tr, ei + ti);
        out[h - k] = cplx(er - tr, ti - ei);
    }
    if (h % 2 == 0 && h >= 2)  // middle bin: X_{h/2} = conj(Z_{h/2}) exactly
        out[h / 2] = cplx(zr[h / 2], -zi[h / 2]);
}

void RealFft::forward(std::span<const double> input, std::vector<cplx>& out,
                      FftScratch& scratch) const {
    transform(input, nullptr, out, scratch);
}

void RealFft::forward_windowed(std::span<const double> input,
                               std::span<const double> window,
                               std::vector<cplx>& out,
                               FftScratch& scratch) const {
    if (window.size() != nz_)
        throw std::invalid_argument("RealFft::forward_windowed: window mismatch");
    transform(input, window.data(), out, scratch);
}

const Fft& fft_plan(std::size_t n) {
    // The global cache retains every plan it hands out, so the reference
    // stays valid for the life of the process.
    return *FftPlanCache::global().complex_plan(n);
}

}  // namespace witrack::dsp
