#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft_plan_cache.hpp"

namespace witrack::dsp {

namespace {

std::size_t next_power_of_two(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

/// Grow-only plane sizing: capacity is kept warm across mixed-size calls.
template <class T>
inline void ensure_plane(std::vector<T>& v, std::size_t n) {
    if (v.size() < n) v.resize(n);
}

/// Untangle the even/odd sub-spectra (E_k, O_k) of one packed half-length
/// transform Z and recombine into the non-redundant half X_0..X_h:
///   X_k = E_k + w^k O_k,  with  E_k = (Z_k + conj(Z_{h-k}))/2,
///   O_k = -i/2 (Z_k - conj(Z_{h-k})),  w = exp(-2*pi*i/N).
/// Each loop iteration emits the pair (X_k, X_{h-k} = conj(E_k - w^k O_k)),
/// so the untangle does h/2 iterations instead of the h a full-spectrum
/// recombination needs. `stride` parameterizes the layout: 1 for the
/// sequential path's contiguous planes, B for a lane-interleaved batch
/// member (base pointers already offset to the member). The output is
/// written through (ore, oim, ostride): an interleaved std::complex array
/// (ore = base, oim = base + 1, ostride 2 -- std::complex<double> is
/// layout-guaranteed double[2]) or separate SoA planes (ostride 1), with
/// identical arithmetic either way. TS is the source element type (double,
/// or float for the float32 batch lane); the recombination arithmetic is
/// double either way, so the stride-1 double instantiation is bit-identical
/// to the pre-batch sequential code.
template <class TS>
void untangle_half_spectrum(const TS* zr, const TS* zi, std::size_t h,
                            std::size_t stride, const double* wr,
                            const double* wi, double* ore, double* oim,
                            std::size_t ostride) {
    const double zr0 = zr[0], zi0 = zi[0];
    ore[0] = zr0 + zi0;
    oim[0] = 0.0;
    ore[h * ostride] = zr0 - zi0;
    oim[h * ostride] = 0.0;
    for (std::size_t k = 1; 2 * k < h; ++k) {
        const double ar = zr[k * stride], ai = zi[k * stride];
        const double br = zr[(h - k) * stride], bi = zi[(h - k) * stride];
        const double er = 0.5 * (ar + br);
        const double ei = 0.5 * (ai - bi);
        const double odr = 0.5 * (ai + bi);
        const double odi = 0.5 * (br - ar);
        const double tr = wr[k] * odr - wi[k] * odi;
        const double ti = wr[k] * odi + wi[k] * odr;
        ore[k * ostride] = er + tr;
        oim[k * ostride] = ei + ti;
        ore[(h - k) * ostride] = er - tr;
        oim[(h - k) * ostride] = ti - ei;
    }
    if (h % 2 == 0 && h >= 2) {  // middle bin: X_{h/2} = conj(Z_{h/2}) exactly
        const double mr = zr[(h / 2) * stride], mi = zi[(h / 2) * stride];
        ore[(h / 2) * ostride] = mr;
        oim[(h / 2) * ostride] = -mi;
    }
}

/// Resolved output location of one transform: interleaved complex or SoA.
struct SpectrumOut {
    double* re;
    double* im;
    std::size_t stride;
};

/// Size (or reuse) a member's output storage and return where to write.
/// std::complex<double> is layout-compatible with double[2], so the
/// interleaved view writes through the complex vector directly.
inline SpectrumOut resolve_spectrum_out(std::vector<cplx>* out,
                                        std::vector<double>* out_re,
                                        std::vector<double>* out_im,
                                        std::size_t bins) {
    if (out != nullptr) {
        out->resize(bins);
        double* base = reinterpret_cast<double*>(out->data());
        return {base, base + 1, 2};
    }
    out_re->resize(bins);
    out_im->resize(bins);
    return {out_re->data(), out_im->data(), 1};
}

/// Pointer-only variant for storage that resolve_spectrum_out already sized.
inline SpectrumOut spectrum_out_ptrs(std::vector<cplx>* out,
                                     std::vector<double>* out_re,
                                     std::vector<double>* out_im) {
    if (out != nullptr) {
        double* base = reinterpret_cast<double*>(out->data());
        return {base, base + 1, 2};
    }
    return {out_re->data(), out_im->data(), 1};
}

}  // namespace

Fft::Fft(std::size_t n, std::size_t n_nonzero)
    : n_(n), pow2_(is_power_of_two(n)) {
    if (n_ == 0) throw std::invalid_argument("Fft: size must be positive");

    if (pow2_) {
        kernel_ = std::make_unique<kernels::Pow2Kernel>(
            n_, effective_nonzero(n_, n_nonzero));
        return;
    }

    // Bluestein setup. The chirp uses k^2 mod 2n in the exponent to avoid
    // catastrophic precision loss for large k (pi*k^2/n wraps every 2n).
    m_ = next_power_of_two(2 * n_ - 1);
    chirp_re_.resize(n_);
    chirp_im_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
        const std::size_t k2 = (k * k) % (2 * n_);
        const double angle = M_PI * static_cast<double>(k2) / static_cast<double>(n_);
        chirp_re_[k] = std::cos(angle);
        chirp_im_[k] = std::sin(angle);
    }
    // The data-side convolution input is nonzero only in its first n_
    // entries of m_, so its forward transform is planned pruned; the
    // spectrum-side inverse is dense.
    conv_kernel_ = std::make_unique<kernels::Pow2Kernel>(m_, n_);
    chirp_spec_re_.assign(m_, 0.0);
    chirp_spec_im_.assign(m_, 0.0);
    chirp_spec_re_[0] = chirp_re_[0];
    chirp_spec_im_[0] = chirp_im_[0];
    for (std::size_t k = 1; k < n_; ++k) {
        chirp_spec_re_[k] = chirp_re_[k];
        chirp_spec_im_[k] = chirp_im_[k];
        chirp_spec_re_[m_ - k] = chirp_re_[k];  // circular wrap, negative lags
        chirp_spec_im_[m_ - k] = chirp_im_[k];
    }
    // One-time dense transform (the wrapped chirp is nonzero at both ends
    // of the buffer, so the pruned forward does not apply).
    std::vector<double> wr(m_), wi(m_);
    conv_kernel_->forward_dense(chirp_spec_re_.data(), chirp_spec_im_.data(),
                                wr.data(), wi.data());
}

void Fft::bluestein_forward(double* re, double* im, FftScratch& scratch) const {
    // DFT via chirp-z: X_k = conj(b_k) * IFFT(FFT(a.*conj(b)) .* FFT(b))_k,
    // where b is the quadratic chirp.
    ensure_plane(scratch.bre, m_);
    ensure_plane(scratch.bim, m_);
    ensure_plane(scratch.wre, m_);
    ensure_plane(scratch.wim, m_);
    double* br = scratch.bre.data();
    double* bi = scratch.bim.data();
    const double* cr = chirp_re_.data();
    const double* ci = chirp_im_.data();
    for (std::size_t k = 0; k < n_; ++k) {  // a_k * conj(chirp_k)
        br[k] = re[k] * cr[k] + im[k] * ci[k];
        bi[k] = im[k] * cr[k] - re[k] * ci[k];
    }
    // [n_, m_) is structurally zero: the pruned convolution plan skips it.
    conv_kernel_->forward(br, bi, scratch.wre.data(), scratch.wim.data());
    const double* sr = chirp_spec_re_.data();
    const double* si = chirp_spec_im_.data();
    for (std::size_t k = 0; k < m_; ++k) {
        const double tr = br[k] * sr[k] - bi[k] * si[k];
        const double ti = br[k] * si[k] + bi[k] * sr[k];
        br[k] = tr;
        bi[k] = ti;
    }
    conv_kernel_->inverse(br, bi, scratch.wre.data(), scratch.wim.data());
    for (std::size_t k = 0; k < n_; ++k) {  // * conj(chirp_k)
        re[k] = br[k] * cr[k] + bi[k] * ci[k];
        im[k] = bi[k] * cr[k] - br[k] * ci[k];
    }
}

void Fft::forward_soa(double* re, double* im, FftScratch& scratch) const {
    if (pow2_) {
        ensure_plane(scratch.wre, n_);
        ensure_plane(scratch.wim, n_);
        kernel_->forward(re, im, scratch.wre.data(), scratch.wim.data());
        return;
    }
    bluestein_forward(re, im, scratch);
}

void Fft::inverse_soa(double* re, double* im, FftScratch& scratch) const {
    if (pow2_) {
        ensure_plane(scratch.wre, n_);
        ensure_plane(scratch.wim, n_);
        kernel_->inverse(re, im, scratch.wre.data(), scratch.wim.data());
        return;
    }
    // Inverse chirp-z through conjugation: IDFT(x) = conj(DFT(conj(x)))/n.
    for (std::size_t k = 0; k < n_; ++k) im[k] = -im[k];
    bluestein_forward(re, im, scratch);
    const double scale = 1.0 / static_cast<double>(n_);
    for (std::size_t k = 0; k < n_; ++k) {
        re[k] *= scale;
        im[k] = -im[k] * scale;
    }
}

void Fft::forward_batch(std::span<double* const> re, std::span<double* const> im,
                        FftScratch& scratch, BatchPrecision precision) const {
    if (re.size() != im.size())
        throw std::invalid_argument("Fft::forward_batch: plane count mismatch");
    const std::size_t B = re.size();
    if (B == 0) return;
    if (B == 1) {  // degenerate batch: exactly the sequential schedule
        forward_soa(re[0], im[0], scratch);
        return;
    }
    if (!pow2_) {  // Bluestein has no lane-interleaved form; run sequentially
        for (std::size_t b = 0; b < B; ++b)
            bluestein_forward(re[b], im[b], scratch);
        return;
    }

    const std::size_t nzb = kernel_->n_nonzero();
    const kernels::BatchKernel batch(*kernel_);
    if (precision == BatchPrecision::kFloat32) {
        ensure_plane(scratch.fre, n_ * B);
        ensure_plane(scratch.fim, n_ * B);
        ensure_plane(scratch.fwre, n_ * B);
        ensure_plane(scratch.fwim, n_ * B);
        float* qr = scratch.fre.data();
        float* qi = scratch.fim.data();
        for (std::size_t i = 0; i < nzb; ++i)
            for (std::size_t b = 0; b < B; ++b) {
                qr[i * B + b] = static_cast<float>(re[b][i]);
                qi[i * B + b] = static_cast<float>(im[b][i]);
            }
        batch.forward(B, qr, qi, scratch.fwre.data(), scratch.fwim.data());
        for (std::size_t i = 0; i < n_; ++i)
            for (std::size_t b = 0; b < B; ++b) {
                re[b][i] = qr[i * B + b];
                im[b][i] = qi[i * B + b];
            }
        return;
    }

    ensure_plane(scratch.qre, n_ * B);
    ensure_plane(scratch.qim, n_ * B);
    ensure_plane(scratch.wre, n_ * B);
    ensure_plane(scratch.wim, n_ * B);
    double* qr = scratch.qre.data();
    double* qi = scratch.qim.data();
    // Only the structurally nonzero prefix needs interleaving; the kernel
    // never reads past it.
    for (std::size_t i = 0; i < nzb; ++i)
        for (std::size_t b = 0; b < B; ++b) {
            qr[i * B + b] = re[b][i];
            qi[i * B + b] = im[b][i];
        }
    batch.forward(B, qr, qi, scratch.wre.data(), scratch.wim.data());
    for (std::size_t i = 0; i < n_; ++i)
        for (std::size_t b = 0; b < B; ++b) {
            re[b][i] = qr[i * B + b];
            im[b][i] = qi[i * B + b];
        }
}

void Fft::forward(std::vector<cplx>& data) const {
    FftScratch scratch;
    forward(data, scratch);
}

void Fft::inverse(std::vector<cplx>& data) const {
    FftScratch scratch;
    inverse(data, scratch);
}

void Fft::forward(std::vector<cplx>& data, FftScratch& scratch) const {
    if (data.size() != n_) throw std::invalid_argument("Fft::forward: size mismatch");
    ensure_plane(scratch.dre, n_);
    ensure_plane(scratch.dim, n_);
    double* re = scratch.dre.data();
    double* im = scratch.dim.data();
    for (std::size_t k = 0; k < n_; ++k) {
        re[k] = data[k].real();
        im[k] = data[k].imag();
    }
    forward_soa(re, im, scratch);
    for (std::size_t k = 0; k < n_; ++k) data[k] = cplx(re[k], im[k]);
}

void Fft::inverse(std::vector<cplx>& data, FftScratch& scratch) const {
    if (data.size() != n_) throw std::invalid_argument("Fft::inverse: size mismatch");
    ensure_plane(scratch.dre, n_);
    ensure_plane(scratch.dim, n_);
    double* re = scratch.dre.data();
    double* im = scratch.dim.data();
    for (std::size_t k = 0; k < n_; ++k) {
        re[k] = data[k].real();
        im[k] = data[k].imag();
    }
    inverse_soa(re, im, scratch);
    for (std::size_t k = 0; k < n_; ++k) data[k] = cplx(re[k], im[k]);
}

void RealFft::init(std::size_t n_nonzero) {
    if (n_ == 0) throw std::invalid_argument("RealFft: size must be positive");
    nz_ = (n_nonzero == 0 || n_nonzero > n_) ? n_ : n_nonzero;
    if (n_ % 2 != 0) return;  // odd-N fallback plans dense, pads at pack time
    packed_nz_ = (nz_ + 1) / 2;
    const std::size_t quarter = n_ / 4;
    twr_.resize(quarter + 1);
    twi_.resize(quarter + 1);
    for (std::size_t k = 0; k <= quarter; ++k) {
        const double angle = -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n_);
        twr_[k] = std::cos(angle);
        twi_[k] = std::sin(angle);
    }
}

RealFft::RealFft(std::size_t n, std::size_t n_nonzero) : n_(n) {
    init(n_nonzero);
    if (n_ % 2 == 0)
        half_plan_ = std::make_shared<const Fft>(n_ / 2, packed_nz_);
    else
        full_plan_ = std::make_shared<const Fft>(n_);
}

RealFft::RealFft(std::size_t n, FftPlanCache& cache, std::size_t n_nonzero)
    : n_(n) {
    init(n_nonzero);
    if (n_ % 2 == 0)
        half_plan_ = cache.complex_plan(n_ / 2, packed_nz_);
    else
        full_plan_ = cache.complex_plan(n_);
}

void RealFft::transform(std::span<const double> input, const double* window,
                        double* out_re, double* out_im, std::size_t out_stride,
                        FftScratch& scratch) const {
    if (input.size() != nz_)
        throw std::invalid_argument("RealFft::forward: size mismatch");

    if (full_plan_) {  // odd N fallback: plain complex transform
        ensure_plane(scratch.dre, n_);
        ensure_plane(scratch.dim, n_);
        double* re = scratch.dre.data();
        double* im = scratch.dim.data();
        if (window != nullptr)
            for (std::size_t i = 0; i < nz_; ++i) re[i] = input[i] * window[i];
        else
            for (std::size_t i = 0; i < nz_; ++i) re[i] = input[i];
        std::fill(re + nz_, re + n_, 0.0);
        std::fill(im, im + n_, 0.0);
        full_plan_->forward_soa(re, im, scratch);
        for (std::size_t k = 0; k <= n_ / 2; ++k) {
            out_re[k * out_stride] = re[k];
            out_im[k * out_stride] = im[k];
        }
        return;
    }

    // Pack adjacent real samples into one half-length complex sequence,
    // z_n = x_{2n} + i*x_{2n+1}, applying the window on the fly (this is
    // the fused windowing pass: no separate sweep over the samples).
    const std::size_t h = n_ / 2;
    ensure_plane(scratch.dre, h);
    ensure_plane(scratch.dim, h);
    double* zr = scratch.dre.data();
    double* zi = scratch.dim.data();
    const std::size_t pairs = nz_ / 2;
    if (window != nullptr) {
        for (std::size_t k = 0; k < pairs; ++k) {
            zr[k] = input[2 * k] * window[2 * k];
            zi[k] = input[2 * k + 1] * window[2 * k + 1];
        }
    } else {
        for (std::size_t k = 0; k < pairs; ++k) {
            zr[k] = input[2 * k];
            zi[k] = input[2 * k + 1];
        }
    }
    if (nz_ % 2 == 1) {
        zr[packed_nz_ - 1] =
            window != nullptr ? input[nz_ - 1] * window[nz_ - 1] : input[nz_ - 1];
        zi[packed_nz_ - 1] = 0.0;
    }
    // A pruned half plan treats [packed_nz_, h) as structural zero and
    // never reads it; a dense plan (non-power-of-two half) needs the
    // padding materialized.
    if (packed_nz_ < h && half_plan_->n_nonzero() == h) {
        std::fill(zr + packed_nz_, zr + h, 0.0);
        std::fill(zi + packed_nz_, zi + h, 0.0);
    }
    half_plan_->forward_soa(zr, zi, scratch);

    untangle_half_spectrum(zr, zi, h, 1, twr_.data(), twi_.data(), out_re,
                           out_im, out_stride);
}

namespace {

/// One lane-interleaved r2c pass over B same-shape members: fused-window
/// packing (per-member window, applied in double and rounded once for the
/// float32 lane), one BatchKernel forward over the shared half-length
/// plan, then a strided untangle per member. The double instantiation
/// performs exactly the sequential transform()'s operations per member.
template <class T>
void r2c_batch_pass(std::span<const RealFft::BatchItem> items,
                    const kernels::Pow2Kernel& half, std::size_t nz,
                    std::size_t packed_nz, std::size_t h, const double* twr,
                    const double* twi, T* zr, T* zi, T* wkr, T* wki) {
    const std::size_t B = items.size();
    const std::size_t pairs = nz / 2;
    // Tile the packed index so each member's strided writes land inside an
    // L1-resident window of the interleaved planes: an interleaved cache
    // line is then filled by all B members while it stays hot, instead of
    // being fetched B times across full-buffer walks (the per-member
    // arithmetic is unchanged, only the visit order).
    const std::size_t tile = std::max<std::size_t>(std::size_t{1}, 1024 / B);
    for (std::size_t k0 = 0; k0 < pairs; k0 += tile) {
        const std::size_t k1 = std::min(pairs, k0 + tile);
        for (std::size_t b = 0; b < B; ++b) {
            const double* in = items[b].input.data();
            const double* win =
                items[b].window.empty() ? nullptr : items[b].window.data();
            if (win != nullptr) {
                for (std::size_t k = k0; k < k1; ++k) {
                    zr[k * B + b] = static_cast<T>(in[2 * k] * win[2 * k]);
                    zi[k * B + b] =
                        static_cast<T>(in[2 * k + 1] * win[2 * k + 1]);
                }
            } else {
                for (std::size_t k = k0; k < k1; ++k) {
                    zr[k * B + b] = static_cast<T>(in[2 * k]);
                    zi[k * B + b] = static_cast<T>(in[2 * k + 1]);
                }
            }
        }
    }
    if (nz % 2 == 1) {
        for (std::size_t b = 0; b < B; ++b) {
            const double* in = items[b].input.data();
            const double* win =
                items[b].window.empty() ? nullptr : items[b].window.data();
            zr[(packed_nz - 1) * B + b] = static_cast<T>(
                win != nullptr ? in[nz - 1] * win[nz - 1] : in[nz - 1]);
            zi[(packed_nz - 1) * B + b] = T(0);
        }
    }
    // Same materialization rule as the sequential path: a pruned half plan
    // treats [packed_nz, h) as structural zero and never reads it.
    if (packed_nz < h && half.n_nonzero() == h) {
        std::fill(zr + packed_nz * B, zr + h * B, T(0));
        std::fill(zi + packed_nz * B, zi + h * B, T(0));
    }
    kernels::BatchKernel(half).forward(B, zr, zi, wkr, wki);
    // Tiled untangle, same cache-line reuse argument as the pack above: the
    // per-(k, b) recombination is exactly untangle_half_spectrum's, but the
    // k loop is chunked so the four strided read streams (both plane ends)
    // stay L1-resident across all B members of a chunk.
    for (std::size_t b = 0; b < B; ++b) {
        const SpectrumOut out = resolve_spectrum_out(
            items[b].out, items[b].out_re, items[b].out_im, h + 1);
        const double zr0 = zr[b], zi0 = zi[b];
        out.re[0] = zr0 + zi0;
        out.im[0] = 0.0;
        out.re[h * out.stride] = zr0 - zi0;
        out.im[h * out.stride] = 0.0;
        if (h % 2 == 0 && h >= 2) {
            const double mr = zr[(h / 2) * B + b], mi = zi[(h / 2) * B + b];
            out.re[(h / 2) * out.stride] = mr;
            out.im[(h / 2) * out.stride] = -mi;
        }
    }
    const std::size_t untangle_tile = std::max<std::size_t>(std::size_t{1}, 512 / B);
    for (std::size_t k0 = 1; 2 * k0 < h; k0 += untangle_tile) {
        const std::size_t k1 = std::min(k0 + untangle_tile, (h + 1) / 2);
        for (std::size_t b = 0; b < B; ++b) {
            const T* zrb = zr + b;
            const T* zib = zi + b;
            const SpectrumOut out =
                spectrum_out_ptrs(items[b].out, items[b].out_re, items[b].out_im);
            for (std::size_t k = k0; k < k1; ++k) {
                const double ar = zrb[k * B], ai = zib[k * B];
                const double br = zrb[(h - k) * B], bi = zib[(h - k) * B];
                const double er = 0.5 * (ar + br);
                const double ei = 0.5 * (ai - bi);
                const double odr = 0.5 * (ai + bi);
                const double odi = 0.5 * (br - ar);
                const double tr = twr[k] * odr - twi[k] * odi;
                const double ti = twr[k] * odi + twi[k] * odr;
                out.re[k * out.stride] = er + tr;
                out.im[k * out.stride] = ei + ti;
                out.re[(h - k) * out.stride] = er - tr;
                out.im[(h - k) * out.stride] = ti - ei;
            }
        }
    }
}

}  // namespace

void RealFft::transform_batch(std::span<const BatchItem> items,
                              FftScratch& scratch,
                              BatchPrecision precision) const {
    const std::size_t B = items.size();
    if (B == 0) return;
    // Validate every member before any output mutates. A member targets
    // either an interleaved complex vector (out) or a pair of SoA planes
    // (out_re/out_im); exactly one of the two forms must be complete.
    for (const BatchItem& item : items) {
        if (item.out == nullptr && (item.out_re == nullptr || item.out_im == nullptr))
            throw std::invalid_argument("RealFft::forward_batch: null output");
        if (item.input.size() != nz_)
            throw std::invalid_argument(
                "RealFft::forward_batch: input size mismatch");
        if (!item.window.empty() && item.window.size() != nz_)
            throw std::invalid_argument(
                "RealFft::forward_batch: window size mismatch");
    }
    if (B == 1 || !batchable()) {
        // Degenerate batch / odd N / non-power-of-two half: the sequential
        // schedule *is* the batched schedule (kFloat32 falls back to full
        // double precision -- strictly inside any error budget).
        for (const BatchItem& item : items) {
            const SpectrumOut out = resolve_spectrum_out(
                item.out, item.out_re, item.out_im, n_ / 2 + 1);
            transform(item.input,
                      item.window.empty() ? nullptr : item.window.data(),
                      out.re, out.im, out.stride, scratch);
        }
        return;
    }

    const std::size_t h = n_ / 2;
    const kernels::Pow2Kernel& half = *half_plan_->pow2_kernel();
    if (precision == BatchPrecision::kFloat32) {
        ensure_plane(scratch.fre, h * B);
        ensure_plane(scratch.fim, h * B);
        ensure_plane(scratch.fwre, h * B);
        ensure_plane(scratch.fwim, h * B);
        r2c_batch_pass<float>(items, half, nz_, packed_nz_, h, twr_.data(),
                              twi_.data(), scratch.fre.data(),
                              scratch.fim.data(), scratch.fwre.data(),
                              scratch.fwim.data());
        return;
    }
    ensure_plane(scratch.qre, h * B);
    ensure_plane(scratch.qim, h * B);
    ensure_plane(scratch.wre, h * B);
    ensure_plane(scratch.wim, h * B);
    r2c_batch_pass<double>(items, half, nz_, packed_nz_, h, twr_.data(),
                           twi_.data(), scratch.qre.data(), scratch.qim.data(),
                           scratch.wre.data(), scratch.wim.data());
}

void RealFft::forward_batch(std::span<const BatchItem> items,
                            FftScratch& scratch,
                            BatchPrecision precision) const {
    transform_batch(items, scratch, precision);
}

void RealFft::forward_windowed_batch(std::span<const BatchItem> items,
                                     FftScratch& scratch,
                                     BatchPrecision precision) const {
    for (const BatchItem& item : items)
        if (item.window.size() != nz_)
            throw std::invalid_argument(
                "RealFft::forward_windowed_batch: window mismatch");
    transform_batch(items, scratch, precision);
}

void RealFft::forward(std::span<const double> input, std::vector<cplx>& out,
                      FftScratch& scratch) const {
    const SpectrumOut o =
        resolve_spectrum_out(&out, nullptr, nullptr, n_ / 2 + 1);
    transform(input, nullptr, o.re, o.im, o.stride, scratch);
}

void RealFft::forward_windowed(std::span<const double> input,
                               std::span<const double> window,
                               std::vector<cplx>& out,
                               FftScratch& scratch) const {
    if (window.size() != nz_)
        throw std::invalid_argument("RealFft::forward_windowed: window mismatch");
    const SpectrumOut o =
        resolve_spectrum_out(&out, nullptr, nullptr, n_ / 2 + 1);
    transform(input, window.data(), o.re, o.im, o.stride, scratch);
}

void RealFft::forward_soa(std::span<const double> input,
                          std::vector<double>& out_re,
                          std::vector<double>& out_im,
                          FftScratch& scratch) const {
    const SpectrumOut o =
        resolve_spectrum_out(nullptr, &out_re, &out_im, n_ / 2 + 1);
    transform(input, nullptr, o.re, o.im, o.stride, scratch);
}

void RealFft::forward_windowed_soa(std::span<const double> input,
                                   std::span<const double> window,
                                   std::vector<double>& out_re,
                                   std::vector<double>& out_im,
                                   FftScratch& scratch) const {
    if (window.size() != nz_)
        throw std::invalid_argument(
            "RealFft::forward_windowed_soa: window mismatch");
    const SpectrumOut o =
        resolve_spectrum_out(nullptr, &out_re, &out_im, n_ / 2 + 1);
    transform(input, window.data(), o.re, o.im, o.stride, scratch);
}

const Fft& fft_plan(std::size_t n) {
    // The global cache retains every plan it hands out, so the reference
    // stays valid for the life of the process.
    return *FftPlanCache::global().complex_plan(n);
}

}  // namespace witrack::dsp
