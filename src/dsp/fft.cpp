#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft_plan_cache.hpp"

namespace witrack::dsp {

namespace {

std::size_t next_power_of_two(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

}  // namespace

Fft::Fft(std::size_t n) : n_(n), pow2_(is_power_of_two(n)) {
    if (n_ == 0) throw std::invalid_argument("Fft: size must be positive");

    if (pow2_) {
        // Bit-reversal permutation table.
        bit_reversal_.resize(n_);
        std::size_t log2n = 0;
        while ((std::size_t{1} << log2n) < n_) ++log2n;
        for (std::size_t i = 0; i < n_; ++i) {
            std::size_t reversed = 0;
            for (std::size_t bit = 0; bit < log2n; ++bit)
                if (i & (std::size_t{1} << bit)) reversed |= std::size_t{1} << (log2n - 1 - bit);
            bit_reversal_[i] = reversed;
        }
        // Twiddle factors for the largest stage; smaller stages stride into
        // this table.
        twiddles_.resize(n_ / 2);
        for (std::size_t k = 0; k < n_ / 2; ++k) {
            const double angle = -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n_);
            twiddles_[k] = cplx(std::cos(angle), std::sin(angle));
        }
        return;
    }

    // Bluestein setup. The chirp uses k^2 mod 2n in the exponent to avoid
    // catastrophic precision loss for large k (pi*k^2/n wraps every 2n).
    m_ = next_power_of_two(2 * n_ - 1);
    chirp_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
        const std::size_t k2 = (k * k) % (2 * n_);
        const double angle = M_PI * static_cast<double>(k2) / static_cast<double>(n_);
        chirp_[k] = cplx(std::cos(angle), std::sin(angle));
    }
    conv_plan_ = std::make_unique<Fft>(m_);
    chirp_spectrum_.assign(m_, cplx(0.0, 0.0));
    chirp_spectrum_[0] = chirp_[0];
    for (std::size_t k = 1; k < n_; ++k) {
        chirp_spectrum_[k] = chirp_[k];
        chirp_spectrum_[m_ - k] = chirp_[k];  // circular wrap for negative lags
    }
    conv_plan_->forward(chirp_spectrum_);
}

void Fft::radix2(std::vector<cplx>& data, bool inverse) const {
    // Permute into bit-reversed order.
    for (std::size_t i = 0; i < n_; ++i) {
        const std::size_t j = bit_reversal_[i];
        if (i < j) std::swap(data[i], data[j]);
    }
    // Iterative butterflies.
    for (std::size_t len = 2; len <= n_; len <<= 1) {
        const std::size_t half = len >> 1;
        const std::size_t stride = n_ / len;
        for (std::size_t block = 0; block < n_; block += len) {
            for (std::size_t k = 0; k < half; ++k) {
                cplx w = twiddles_[k * stride];
                if (inverse) w = std::conj(w);
                const cplx odd = data[block + k + half] * w;
                const cplx even = data[block + k];
                data[block + k] = even + odd;
                data[block + k + half] = even - odd;
            }
        }
    }
    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n_);
        for (auto& v : data) v *= scale;
    }
}

void Fft::bluestein(std::vector<cplx>& data, bool inverse, FftScratch& scratch) const {
    // DFT via chirp-z: X_k = conj(b_k) * IFFT(FFT(a.*conj(b)) .* FFT(b))_k,
    // where b is the quadratic chirp. The inverse transform reuses the
    // forward machinery through conjugation.
    if (inverse) {
        for (auto& v : data) v = std::conj(v);
        bluestein(data, false, scratch);
        const double scale = 1.0 / static_cast<double>(n_);
        for (auto& v : data) v = std::conj(v) * scale;
        return;
    }

    auto& work = scratch.work;
    work.assign(m_, cplx(0.0, 0.0));
    for (std::size_t k = 0; k < n_; ++k) work[k] = data[k] * std::conj(chirp_[k]);
    conv_plan_->forward(work);
    for (std::size_t k = 0; k < m_; ++k) work[k] *= chirp_spectrum_[k];
    conv_plan_->inverse(work);
    for (std::size_t k = 0; k < n_; ++k) data[k] = work[k] * std::conj(chirp_[k]);
}

void Fft::forward(std::vector<cplx>& data) const {
    FftScratch scratch;
    forward(data, scratch);
}

void Fft::inverse(std::vector<cplx>& data) const {
    FftScratch scratch;
    inverse(data, scratch);
}

void Fft::forward(std::vector<cplx>& data, FftScratch& scratch) const {
    if (data.size() != n_) throw std::invalid_argument("Fft::forward: size mismatch");
    if (pow2_)
        radix2(data, false);
    else
        bluestein(data, false, scratch);
}

void Fft::inverse(std::vector<cplx>& data, FftScratch& scratch) const {
    if (data.size() != n_) throw std::invalid_argument("Fft::inverse: size mismatch");
    if (pow2_)
        radix2(data, true);
    else
        bluestein(data, true, scratch);
}

std::vector<cplx> Fft::forward_real(const std::vector<double>& input) const {
    if (input.size() != n_) throw std::invalid_argument("Fft::forward_real: size mismatch");
    std::vector<cplx> data(n_);
    for (std::size_t i = 0; i < n_; ++i) data[i] = cplx(input[i], 0.0);
    forward(data);
    return data;
}

RealFft::RealFft(std::size_t n) : n_(n) {
    if (n_ == 0) throw std::invalid_argument("RealFft: size must be positive");
    if (n_ % 2 == 0 && n_ >= 2) {
        half_plan_ = std::make_shared<const Fft>(n_ / 2);
        build_twiddles();
    } else {
        full_plan_ = std::make_shared<const Fft>(n_);
    }
}

RealFft::RealFft(std::size_t n, FftPlanCache& cache) : n_(n) {
    if (n_ == 0) throw std::invalid_argument("RealFft: size must be positive");
    if (n_ % 2 == 0 && n_ >= 2) {
        half_plan_ = cache.complex_plan(n_ / 2);
        build_twiddles();
    } else {
        full_plan_ = cache.complex_plan(n_);
    }
}

void RealFft::build_twiddles() {
    twiddles_.resize(n_ / 2);
    for (std::size_t k = 0; k < n_ / 2; ++k) {
        const double angle = -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n_);
        twiddles_[k] = cplx(std::cos(angle), std::sin(angle));
    }
}

void RealFft::forward(std::span<const double> input, std::vector<cplx>& out,
                      FftScratch& scratch) const {
    if (input.size() != n_)
        throw std::invalid_argument("RealFft::forward: size mismatch");

    if (full_plan_) {  // odd N fallback: plain complex transform
        out.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) out[i] = cplx(input[i], 0.0);
        full_plan_->forward(out, scratch);
        return;
    }

    // Pack adjacent real samples into one half-length complex sequence:
    // z_n = x_{2n} + i*x_{2n+1}.
    const std::size_t h = n_ / 2;
    auto& z = scratch.packed;
    z.resize(h);
    for (std::size_t k = 0; k < h; ++k) z[k] = cplx(input[2 * k], input[2 * k + 1]);
    half_plan_->forward(z, scratch);

    // Untangle the even/odd sub-spectra (E_k, O_k) from Z and recombine:
    //   X_k       = E_k + w^k O_k,   X_{k+N/2} = E_k - w^k O_k,
    // with w = exp(-2*pi*i/N). The result is the full conjugate-symmetric
    // N-point spectrum of the real input.
    out.resize(n_);
    for (std::size_t k = 0; k < h; ++k) {
        const cplx zk = z[k];
        const cplx zmk = std::conj(z[(h - k) % h]);
        const cplx even = 0.5 * (zk + zmk);
        const cplx odd = cplx(0.0, -0.5) * (zk - zmk);
        const cplx t = twiddles_[k] * odd;
        out[k] = even + t;
        out[k + h] = even - t;
    }
}

const Fft& fft_plan(std::size_t n) {
    // The global cache retains every plan it hands out, so the reference
    // stays valid for the life of the process.
    return *FftPlanCache::global().complex_plan(n);
}

std::vector<cplx> fft_forward(std::vector<cplx> data) {
    fft_plan(data.size()).forward(data);
    return data;
}

std::vector<cplx> fft_inverse(std::vector<cplx> data) {
    fft_plan(data.size()).inverse(data);
    return data;
}

std::vector<cplx> fft_forward_real(const std::vector<double>& input) {
    return fft_plan(input.size()).forward_real(input);
}

}  // namespace witrack::dsp
