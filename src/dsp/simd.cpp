#include "dsp/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace witrack::dsp::simd {

const char* to_string(Level level) noexcept {
    switch (level) {
        case Level::kScalar: return "scalar";
        case Level::kSse2: return "sse2";
        case Level::kAvx2: return "avx2";
    }
    return "unknown";
}

Level detect() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
    // SSE2 is the x86-64 baseline; AVX2 needs a runtime check because the
    // library is built for the baseline and only the dedicated AVX2
    // translation unit carries wider code.
    static const Level detected =
        __builtin_cpu_supports("avx2") ? Level::kAvx2 : Level::kSse2;
    return detected;
#else
    return Level::kScalar;
#endif
}

namespace {

Level clamp_to_hardware(Level level) noexcept {
    return static_cast<int>(level) <= static_cast<int>(detect()) ? level
                                                                 : detect();
}

Level resolve_initial() noexcept {
    const char* env = std::getenv("WITRACK_SIMD");
    if (env != nullptr) {
        if (std::strcmp(env, "scalar") == 0)
            return Level::kScalar;
        if (std::strcmp(env, "sse2") == 0)
            return clamp_to_hardware(Level::kSse2);
        if (std::strcmp(env, "avx2") == 0)
            return clamp_to_hardware(Level::kAvx2);
        // Unknown value: ignore rather than crash or silently slow down.
    }
    return detect();
}

/// -1 = not yet resolved; otherwise a Level. Relaxed ordering suffices:
/// every resolution produces the same value, and force() is a test hook.
std::atomic<int> g_active{-1};

}  // namespace

Level active() noexcept {
    const int cached = g_active.load(std::memory_order_relaxed);
    if (cached >= 0) return static_cast<Level>(cached);
    const Level resolved = resolve_initial();
    g_active.store(static_cast<int>(resolved), std::memory_order_relaxed);
    return resolved;
}

Level force(Level level) noexcept {
    const Level clamped = clamp_to_hardware(level);
    g_active.store(static_cast<int>(clamped), std::memory_order_relaxed);
    return clamped;
}

}  // namespace witrack::dsp::simd
