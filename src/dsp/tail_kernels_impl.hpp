// Lane-templated implementations of the analysis-tail kernels
// (tail_kernels.hpp), shared by every dispatch level. Same discipline as
// fft_kernels_impl.hpp: one template per kernel over the simd.hpp lane
// vocabulary, instantiated by the per-ISA translation units
// (tail_kernels.cpp, tail_kernels_sse2.cpp, tail_kernels_avx2.cpp), each
// built with -ffp-contract=off so no level contracts a mul+add into an
// FMA; dispatch lives in tail_kernels.cpp.
//
// The elementwise kernels are bit-identical across levels because every
// op (sub, mul, add, correctly-rounded sqrt, exact compares and bit
// masks) is per-element. The reductions are bit-identical because they
// accumulate into a fixed logical layout of four slots -- slot s owns the
// elements with (i - start) % 4 == s, in index order -- whatever the
// register width (scalar runs four width-1 accumulators, SSE2 two
// two-wide, AVX2 one four-wide), and combine the slots with a fixed tree.
#pragma once

#include <cstddef>
#include <limits>

#include "dsp/simd.hpp"
#include "dsp/tail_kernels.hpp"

namespace witrack::dsp::tail::detail {

/// Vector-main + scalar-tail driver: runs `body` over [0, count) with lane
/// L for the aligned span and the width-1 lane of the same element type
/// for the remainder. `body` is a generic lambda invoked as body<V>(i).
template <class L, class Body>
inline void lane_loop(std::size_t count, Body&& body) {
    using S = simd::Scalar<typename L::elem>;
    std::size_t i = 0;
    if constexpr (L::width > 1) {
        for (; i + L::width <= count; i += L::width)
            body.template operator()<L>(i);
    }
    for (; i < count; ++i) body.template operator()<S>(i);
}

/// Logical accumulator width of the reductions: fixed so every dispatch
/// level performs the same per-slot accumulation sequence.
inline constexpr std::size_t kSlots = 4;

template <class L>
void run_diff_magnitude_t(const double* cur_re, const double* cur_im,
                          double* prev_re, double* prev_im, double* out,
                          std::size_t n) {
    lane_loop<L>(n, [&]<class V>(std::size_t i) {
        const auto xr = V::load(cur_re + i);
        const auto xi = V::load(cur_im + i);
        const auto dr = V::sub(xr, V::load(prev_re + i));
        const auto di = V::sub(xi, V::load(prev_im + i));
        V::store(out + i,
                 V::sqrt(V::add(V::mul(dr, dr), V::mul(di, di))));
        V::store(prev_re + i, xr);
        V::store(prev_im + i, xi);
    });
}

template <class L>
void run_scaled_diff_magnitude_t(const double* cur_re, const double* cur_im,
                                 const double* ref_re, const double* ref_im,
                                 double scale, double* out, std::size_t n) {
    lane_loop<L>(n, [&]<class V>(std::size_t i) {
        const auto s = V::set1(scale);
        const auto dr = V::sub(V::load(cur_re + i), V::mul(V::load(ref_re + i), s));
        const auto di = V::sub(V::load(cur_im + i), V::mul(V::load(ref_im + i), s));
        V::store(out + i,
                 V::sqrt(V::add(V::mul(dr, dr), V::mul(di, di))));
    });
}

template <class L>
Moments run_extent_moments_t(const double* v, std::size_t lo, std::size_t hi,
                             double threshold, double bin_m) {
    Moments result;
    if (lo >= hi) return result;
    static_assert(kSlots % L::width == 0);
    constexpr std::size_t R = kSlots / L::width;
    using reg = typename L::reg;
    using S = simd::Scalar<double>;

    const reg thr = L::set1(threshold);
    const reg bm = L::set1(bin_m);
    const reg step = L::set1(static_cast<double>(kSlots));
    double init[kSlots];
    for (std::size_t s = 0; s < kSlots; ++s)
        init[s] = static_cast<double>(lo + s);

    reg wsum[R], m1[R], m2[R], idx[R];
    for (std::size_t r = 0; r < R; ++r) {
        wsum[r] = L::set1(0.0);
        m1[r] = L::set1(0.0);
        m2[r] = L::set1(0.0);
        idx[r] = L::load(init + r * L::width);
    }

    std::size_t i = lo;
    for (; i + kSlots <= hi; i += kSlots) {
        for (std::size_t r = 0; r < R; ++r) {
            const reg x = L::load(v + i + r * L::width);
            // Exclusion is v < t, so NaN magnitudes stay included -- the
            // mask must be andnot(lt), not a cmpge.
            const reg w = L::andnot(L::cmplt(x, thr), L::mul(x, x));
            const reg d = L::mul(idx[r], bm);
            const reg wd = L::mul(w, d);
            wsum[r] = L::add(wsum[r], w);
            m1[r] = L::add(m1[r], wd);
            m2[r] = L::add(m2[r], L::mul(wd, d));
            idx[r] = L::add(idx[r], step);
        }
    }

    double sw[kSlots], s1[kSlots], s2[kSlots];
    for (std::size_t r = 0; r < R; ++r) {
        L::store(sw + r * L::width, wsum[r]);
        L::store(s1 + r * L::width, m1[r]);
        L::store(s2 + r * L::width, m2[r]);
    }

    // Tail (< kSlots elements), same masked-add formulation into the slot
    // the element would own; i - lo is a multiple of kSlots here.
    for (std::size_t t = 0; i + t < hi; ++t) {
        const std::size_t j = i + t;
        const double x = v[j];
        const double w = S::andnot(S::cmplt(x, threshold), x * x);
        const double d = static_cast<double>(j) * bin_m;
        const double wd = w * d;
        sw[t] += w;
        s1[t] += wd;
        s2[t] += wd * d;
    }

    result.w_sum = (sw[0] + sw[1]) + (sw[2] + sw[3]);
    result.m1 = (s1[0] + s1[1]) + (s1[2] + s1[3]);
    result.m2 = (s2[0] + s2[1]) + (s2[2] + s2[3]);
    return result;
}

template <class L>
std::size_t run_max_bin_t(const double* v, std::size_t n) {
    if (n == 0) return 0;
    static_assert(kSlots % L::width == 0);
    constexpr std::size_t R = kSlots / L::width;
    using reg = typename L::reg;
    using S = simd::Scalar<double>;

    reg best[R];
    for (std::size_t r = 0; r < R; ++r)
        best[r] = L::set1(-std::numeric_limits<double>::infinity());

    std::size_t i = 0;
    for (; i + kSlots <= n; i += kSlots)
        for (std::size_t r = 0; r < R; ++r)
            best[r] = L::max(best[r], L::load(v + i + r * L::width));

    double slots[kSlots];
    for (std::size_t r = 0; r < R; ++r)
        L::store(slots + r * L::width, best[r]);
    for (std::size_t t = 0; i + t < n; ++t)
        slots[t] = S::max(slots[t], v[i + t]);

    const double m =
        S::max(S::max(slots[0], slots[1]), S::max(slots[2], slots[3]));
    for (std::size_t j = 0; j < n; ++j)
        if (v[j] == m) return j;
    return 0;  // all-NaN band: no index compares equal
}

template <class L>
void run_peak_candidates_t(const double* v, std::size_t n, double threshold,
                           double* out) {
    if (n < 3) {
        for (std::size_t i = 0; i < n; ++i) out[i] = 0.0;
        return;
    }
    out[0] = 0.0;
    out[n - 1] = 0.0;
    // Interior predicate over i in [1, n-1); the unaligned neighbor loads
    // keep it a single streaming pass.
    lane_loop<L>(n - 2, [&]<class V>(std::size_t k) {
        const std::size_t i = k + 1;
        const auto x = V::load(v + i);
        const auto above = // !(x < t): NaN stays a candidate for the
                           // rising test to reject, as in the scalar scan
            V::andnot(V::cmplt(x, V::set1(threshold)),
                      V::and_(V::cmpgt(x, V::load(v + i - 1)),
                              V::cmpge(x, V::load(v + i + 1))));
        V::store(out + i, V::and_(above, V::set1(1.0)));
    });
}

// Per-level entry points, one set per ISA translation unit. On hardware
// (or builds) lacking an ISA the TU compiles forwarding stubs so the
// symbols always link; dispatch never selects them there.
void diff_magnitude_scalar(const double* cur_re, const double* cur_im,
                           double* prev_re, double* prev_im, double* out,
                           std::size_t n);
void diff_magnitude_sse2(const double* cur_re, const double* cur_im,
                         double* prev_re, double* prev_im, double* out,
                         std::size_t n);
void diff_magnitude_avx2(const double* cur_re, const double* cur_im,
                         double* prev_re, double* prev_im, double* out,
                         std::size_t n);

void scaled_diff_magnitude_scalar(const double* cur_re, const double* cur_im,
                                  const double* ref_re, const double* ref_im,
                                  double scale, double* out, std::size_t n);
void scaled_diff_magnitude_sse2(const double* cur_re, const double* cur_im,
                                const double* ref_re, const double* ref_im,
                                double scale, double* out, std::size_t n);
void scaled_diff_magnitude_avx2(const double* cur_re, const double* cur_im,
                                const double* ref_re, const double* ref_im,
                                double scale, double* out, std::size_t n);

Moments extent_moments_scalar(const double* v, std::size_t lo, std::size_t hi,
                              double threshold, double bin_m);
Moments extent_moments_sse2(const double* v, std::size_t lo, std::size_t hi,
                            double threshold, double bin_m);
Moments extent_moments_avx2(const double* v, std::size_t lo, std::size_t hi,
                            double threshold, double bin_m);

std::size_t max_bin_scalar(const double* v, std::size_t n);
std::size_t max_bin_sse2(const double* v, std::size_t n);
std::size_t max_bin_avx2(const double* v, std::size_t n);

void peak_candidates_scalar(const double* v, std::size_t n, double threshold,
                            double* out);
void peak_candidates_sse2(const double* v, std::size_t n, double threshold,
                          double* out);
void peak_candidates_avx2(const double* v, std::size_t n, double threshold,
                          double* out);

}  // namespace witrack::dsp::tail::detail
