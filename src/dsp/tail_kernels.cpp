// Scalar instantiations of the analysis-tail kernels plus the runtime
// dispatch (same structure as fft_kernels.cpp: per-ISA entry points live
// in their own translation units, simd::active() picks the level, and
// active() never exceeds detect(), so an ISA entry point is only reached
// on hardware that supports it).
#include "dsp/tail_kernels_impl.hpp"

namespace witrack::dsp::tail {

namespace detail {

// Scalar level: always available, and the tail lane of every vector loop.

void diff_magnitude_scalar(const double* cur_re, const double* cur_im,
                           double* prev_re, double* prev_im, double* out,
                           std::size_t n) {
    run_diff_magnitude_t<simd::ScalarD>(cur_re, cur_im, prev_re, prev_im, out, n);
}

void scaled_diff_magnitude_scalar(const double* cur_re, const double* cur_im,
                                  const double* ref_re, const double* ref_im,
                                  double scale, double* out, std::size_t n) {
    run_scaled_diff_magnitude_t<simd::ScalarD>(cur_re, cur_im, ref_re, ref_im,
                                               scale, out, n);
}

Moments extent_moments_scalar(const double* v, std::size_t lo, std::size_t hi,
                              double threshold, double bin_m) {
    return run_extent_moments_t<simd::ScalarD>(v, lo, hi, threshold, bin_m);
}

std::size_t max_bin_scalar(const double* v, std::size_t n) {
    return run_max_bin_t<simd::ScalarD>(v, n);
}

void peak_candidates_scalar(const double* v, std::size_t n, double threshold,
                            double* out) {
    run_peak_candidates_t<simd::ScalarD>(v, n, threshold, out);
}

}  // namespace detail

void diff_magnitude(const double* cur_re, const double* cur_im,
                    double* prev_re, double* prev_im, double* out,
                    std::size_t n) {
    switch (simd::active()) {
        case simd::Level::kAvx2:
            detail::diff_magnitude_avx2(cur_re, cur_im, prev_re, prev_im, out, n);
            return;
        case simd::Level::kSse2:
            detail::diff_magnitude_sse2(cur_re, cur_im, prev_re, prev_im, out, n);
            return;
        case simd::Level::kScalar: break;
    }
    detail::diff_magnitude_scalar(cur_re, cur_im, prev_re, prev_im, out, n);
}

void scaled_diff_magnitude(const double* cur_re, const double* cur_im,
                           const double* ref_re, const double* ref_im,
                           double scale, double* out, std::size_t n) {
    switch (simd::active()) {
        case simd::Level::kAvx2:
            detail::scaled_diff_magnitude_avx2(cur_re, cur_im, ref_re, ref_im,
                                               scale, out, n);
            return;
        case simd::Level::kSse2:
            detail::scaled_diff_magnitude_sse2(cur_re, cur_im, ref_re, ref_im,
                                               scale, out, n);
            return;
        case simd::Level::kScalar: break;
    }
    detail::scaled_diff_magnitude_scalar(cur_re, cur_im, ref_re, ref_im, scale,
                                         out, n);
}

Moments extent_moments(const double* v, std::size_t lo, std::size_t hi,
                       double threshold, double bin_m) {
    switch (simd::active()) {
        case simd::Level::kAvx2:
            return detail::extent_moments_avx2(v, lo, hi, threshold, bin_m);
        case simd::Level::kSse2:
            return detail::extent_moments_sse2(v, lo, hi, threshold, bin_m);
        case simd::Level::kScalar: break;
    }
    return detail::extent_moments_scalar(v, lo, hi, threshold, bin_m);
}

std::size_t max_bin(const double* v, std::size_t n) {
    switch (simd::active()) {
        case simd::Level::kAvx2: return detail::max_bin_avx2(v, n);
        case simd::Level::kSse2: return detail::max_bin_sse2(v, n);
        case simd::Level::kScalar: break;
    }
    return detail::max_bin_scalar(v, n);
}

void peak_candidates(const double* v, std::size_t n, double threshold,
                     double* out) {
    switch (simd::active()) {
        case simd::Level::kAvx2:
            detail::peak_candidates_avx2(v, n, threshold, out);
            return;
        case simd::Level::kSse2:
            detail::peak_candidates_sse2(v, n, threshold, out);
            return;
        case simd::Level::kScalar: break;
    }
    detail::peak_candidates_scalar(v, n, threshold, out);
}

}  // namespace witrack::dsp::tail
