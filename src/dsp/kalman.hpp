// Kalman filters. The paper (Section 4.4) smooths each antenna's round-trip
// distance stream with a Kalman filter, exploiting the continuity of human
// motion; the tracker additionally smooths the fused 3D positions.
#pragma once

#include <cstddef>

#include "dsp/linalg.hpp"

namespace witrack::common {
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::dsp {

/// Constant-velocity Kalman filter over a scalar observable (here: the
/// round-trip distance to one receive antenna). State is [value, rate].
class ScalarKalman {
  public:
    /// process_noise: expected rate change per second (std dev), i.e. how
    /// hard the target can accelerate. measurement_noise: std dev of a
    /// single observation.
    ScalarKalman(double process_noise, double measurement_noise);

    /// Predict forward by dt and fuse one measurement; returns the filtered
    /// value. The first call initializes the state to the measurement.
    double update(double measurement, double dt);

    /// Predict forward by dt without a measurement (used while the target is
    /// static and the pipeline interpolates); returns the predicted value.
    double predict_only(double dt);

    bool initialized() const { return initialized_; }
    double value() const { return state_(0, 0); }
    double rate() const { return state_(1, 0); }
    double value_variance() const { return covariance_(0, 0); }
    void reset();

    /// Serialize the mutable state (state vector, covariance, initialized
    /// flag); q_/r_ are construction parameters and stay with the target.
    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

  private:
    void predict(double dt);

    double q_;  // process noise (acceleration std dev)
    double r_;  // measurement noise std dev
    Vector<2> state_;
    Matrix<2, 2> covariance_;
    bool initialized_ = false;
};

/// Constant-velocity Kalman filter over a 3D position. State is
/// [x y z vx vy vz]; measurements are positions from the ellipsoid solver.
class PositionKalman {
  public:
    PositionKalman(double process_noise, double measurement_noise);

    struct Position {
        double x, y, z;
    };

    Position update(const Position& measurement, double dt);

    /// update() with the measurement noise std dev widened to
    /// r * noise_scale for this one fusion -- how the tracker deweights a
    /// fix computed from a degraded (low-health) frame without touching
    /// the filter's configuration. noise_scale = 1 is bit-identical to
    /// the two-argument update (the scale multiplies r exactly).
    Position update(const Position& measurement, double dt, double noise_scale);

    Position predict_only(double dt);

    bool initialized() const { return initialized_; }
    Position position() const { return {state_(0, 0), state_(1, 0), state_(2, 0)}; }
    Position velocity() const { return {state_(3, 0), state_(4, 0), state_(5, 0)}; }
    void reset();

    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

  private:
    void predict(double dt);

    double q_;
    double r_;
    Vector<6> state_;
    Matrix<6, 6> covariance_;
    bool initialized_ = false;
};

}  // namespace witrack::dsp
