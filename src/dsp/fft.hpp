// FFT engine for the range transform (paper Section 7: "The signal from each
// receiving antenna is transformed to the frequency domain using an FFT whose
// size matches the FMCW sweep period").
//
// The sweep period (2.5 ms at 1 MS/s) gives N = 2500 samples, which is not a
// power of two, so the engine supports both power-of-two transforms (the
// structure-of-arrays radix-4 kernel in fft_kernels.hpp) and Bluestein's
// chirp-z algorithm for arbitrary N (whose internal convolution runs on the
// same kernel). Plans may additionally be *pruned*: a plan built with
// n_nonzero < n assumes the input tail [n_nonzero, n) is exactly zero and
// skips the butterflies that only touch it -- the natural shape of the
// zero-padded sweep (2500 samples into a 4096-point transform).
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dsp/fft_kernels.hpp"

namespace witrack::dsp {

class FftPlanCache;

using cplx = std::complex<double>;

/// Caller-owned scratch space for allocation-free transforms: separate
/// re/im planes (the kernels are structure-of-arrays throughout). Buffers
/// grow on first use and are reused afterwards, so a long-lived scratch
/// makes every subsequent transform heap-allocation-free. One scratch must
/// not be shared between threads.
struct FftScratch {
    std::vector<double> dre, dim;  ///< deinterleave / r2c packing planes
    std::vector<double> wre, wim;  ///< kernel ping-pong work planes
    std::vector<double> bre, bim;  ///< Bluestein convolution planes
    std::vector<double> qre, qim;  ///< lane-interleaved batch data planes
    std::vector<float> fre, fim;    ///< float32-lane batch data planes
    std::vector<float> fwre, fwim;  ///< float32-lane batch work planes
};

/// Arithmetic width of a batched pass. kFloat64 is the default and is
/// bit-identical to the sequential double path; kFloat32 halves the memory
/// traffic of the batch planes at ~1e-6 relative error and is only for
/// consumers gated on a measured error budget (never the bit-parity paths).
enum class BatchPrecision { kFloat64, kFloat32 };

/// Planned DFT of a fixed size. Plans precompute per-stage twiddle tables
/// (and, for non-power-of-two sizes, the Bluestein chirp spectrum), so
/// repeated transforms of the same size are cheap. Plans are immutable
/// after construction and safe to share across threads.
class Fft {
  public:
    /// `n_nonzero` in [1, n) builds a pruned plan: forward() then reads
    /// only the first n_nonzero input entries and treats the tail as
    /// exactly zero (the caller promises it is). 0 (or >= n) means dense.
    /// Pruning applies to power-of-two sizes; other sizes are planned
    /// dense. inverse() is always dense.
    explicit Fft(std::size_t n, std::size_t n_nonzero = 0);

    std::size_t size() const { return n_; }
    /// Effective nonzero input prefix (== size() for a dense plan).
    std::size_t n_nonzero() const {
        return pow2_ ? kernel_->n_nonzero() : n_;
    }

    /// The pruning a plan of size n actually applies (cache-key normalizer:
    /// non-power-of-two and degenerate requests plan dense).
    static std::size_t effective_nonzero(std::size_t n, std::size_t n_nonzero) {
        if (!is_power_of_two(n)) return n;
        return (n_nonzero == 0 || n_nonzero >= n) ? n : n_nonzero;
    }

    /// In-place forward DFT: X_k = sum_n x_n exp(-2*pi*i*n*k/N).
    void forward(std::vector<cplx>& data) const;

    /// In-place inverse DFT, normalized by 1/N so inverse(forward(x)) == x.
    void inverse(std::vector<cplx>& data) const;

    /// Scratch-based variants: identical results, but all temporary storage
    /// lives in `scratch`, so repeated calls do not touch the heap.
    void forward(std::vector<cplx>& data, FftScratch& scratch) const;
    void inverse(std::vector<cplx>& data, FftScratch& scratch) const;

    /// Structure-of-arrays entry points (the hot path): transform the
    /// size() doubles in each of (re, im) in place. For a pruned plan,
    /// forward_soa reads only the first n_nonzero() entries.
    void forward_soa(double* re, double* im, FftScratch& scratch) const;
    void inverse_soa(double* re, double* im, FftScratch& scratch) const;

    /// Batched forward: transform the B same-shape SoA members (re[b],
    /// im[b]), each size() doubles, in place through one lane-interleaved
    /// BatchKernel pass over this plan, so every twiddle load is amortized
    /// across the batch. re.size() must equal im.size(). Results are
    /// bit-identical to B sequential forward_soa calls for kFloat64; the
    /// kFloat32 lane carries an ~1e-6 relative error budget. B = 1
    /// degenerates to exactly forward_soa; non-power-of-two plans fall
    /// back to sequential per-member transforms.
    void forward_batch(std::span<double* const> re, std::span<double* const> im,
                       FftScratch& scratch,
                       BatchPrecision precision = BatchPrecision::kFloat64) const;

    /// The underlying power-of-two kernel plan, or nullptr for a Bluestein
    /// (non-power-of-two) plan. Exposed so batched executors can group
    /// transforms that share one kernel.
    const kernels::Pow2Kernel* pow2_kernel() const { return kernel_.get(); }

    static bool is_power_of_two(std::size_t n) {
        return kernels::Pow2Kernel::is_power_of_two(n);
    }

  private:
    void bluestein_forward(double* re, double* im, FftScratch& scratch) const;

    std::size_t n_ = 0;
    bool pow2_ = false;

    // Power-of-two path: the SoA radix-4 kernel plan.
    std::unique_ptr<kernels::Pow2Kernel> kernel_;

    // Bluestein state: convolution length m_ (power of two >= 2n-1), the
    // quadratic chirp b_k = exp(+i*pi*k^2/n) as SoA planes, the forward
    // FFT of the zero-padded index-wrapped chirp, and the convolution
    // kernel (forward pruned to the n nonzero data entries of the
    // m-point buffer; inverse dense).
    std::size_t m_ = 0;
    std::vector<double> chirp_re_, chirp_im_;
    std::vector<double> chirp_spec_re_, chirp_spec_im_;
    std::unique_ptr<kernels::Pow2Kernel> conv_kernel_;
};

/// Real-input DFT plan of a fixed size N with a true r2c half-spectrum
/// contract: forward() emits the N/2 + 1 non-redundant bins X_0 .. X_{N/2}
/// (the upper half is their conjugate mirror and is never materialized).
/// Even N runs through one N/2-point complex FFT (even samples in the real
/// plane, odd samples in the imaginary plane) plus an O(N/4) paired
/// untangling stage; odd N falls back to the complex plan. A plan built
/// with n_nonzero < N accepts exactly n_nonzero input samples and treats
/// the zero-padded tail as structural (pruning the underlying kernel when
/// the half size is a power of two). Immutable after construction; all
/// per-call storage is in the caller's FftScratch, so steady-state
/// transforms are allocation-free.
class RealFft {
  public:
    explicit RealFft(std::size_t n, std::size_t n_nonzero = 0);

    /// Cache-backed variant: the internal half-length (or odd-N fallback)
    /// complex plan is obtained from `cache` instead of built privately, so
    /// RealFft instances of one shape -- and complex-plan consumers of the
    /// half size -- share tables. Identical arithmetic either way.
    RealFft(std::size_t n, FftPlanCache& cache, std::size_t n_nonzero = 0);

    std::size_t size() const { return n_; }
    /// Number of input samples forward() consumes (== size() when dense).
    std::size_t n_nonzero() const { return nz_; }
    /// Bins forward() emits: size()/2 + 1 (DC through Nyquist inclusive).
    std::size_t spectrum_size() const { return n_ / 2 + 1; }

    /// Half spectrum of the real input (input.size() == n_nonzero(),
    /// zero-padded to size()) into `out`, resized to spectrum_size() --
    /// no allocation once capacity is warm.
    void forward(std::span<const double> input, std::vector<cplx>& out,
                 FftScratch& scratch) const;

    /// Fused-window variant: transforms input[i] * window[i], applying the
    /// window during the r2c packing pass instead of in a separate sweep
    /// over the samples. window.size() == n_nonzero().
    void forward_windowed(std::span<const double> input,
                          std::span<const double> window,
                          std::vector<cplx>& out, FftScratch& scratch) const;

    /// Structure-of-arrays variants: identical transforms, but the half
    /// spectrum lands in separate re/im planes (each resized to
    /// spectrum_size()) instead of an interleaved complex vector. Plane
    /// element k is bit-identical to the complex overload's out[k] -- the
    /// output layout is the only difference, which lets downstream SIMD
    /// consumers (background subtraction, magnitude scans) stream the
    /// planes with unit stride.
    void forward_soa(std::span<const double> input, std::vector<double>& out_re,
                     std::vector<double>& out_im, FftScratch& scratch) const;
    void forward_windowed_soa(std::span<const double> input,
                              std::span<const double> window,
                              std::vector<double>& out_re,
                              std::vector<double>& out_im,
                              FftScratch& scratch) const;

    /// One member of a batched r2c pass. `input` follows the forward()
    /// contract (n_nonzero() samples); `window` is either empty (no window)
    /// or n_nonzero() coefficients, per member. The output is either an
    /// interleaved complex vector (`out`) or, when `out` is null, a pair of
    /// SoA planes (`out_re`/`out_im`) -- matching forward() vs forward_soa().
    struct BatchItem {
        std::span<const double> input;
        std::span<const double> window;
        std::vector<cplx>* out = nullptr;
        std::vector<double>* out_re = nullptr;
        std::vector<double>* out_im = nullptr;
    };

    /// Whether this plan can execute a true lane-interleaved batch pass
    /// (even N with a power-of-two half). When false the batch entry
    /// points run member-by-member sequentially instead.
    bool batchable() const {
        return full_plan_ == nullptr && half_plan_ != nullptr &&
               half_plan_->pow2_kernel() != nullptr;
    }

    /// Whether `other` may share a batch pass with this plan: same size,
    /// same nonzero prefix, same underlying plans. Cache-backed plans of
    /// one shape always qualify (they share the half plan by pointer).
    bool batch_compatible(const RealFft& other) const {
        return n_ == other.n_ && nz_ == other.nz_ &&
               half_plan_ == other.half_plan_ && full_plan_ == other.full_plan_;
    }

    /// Batched forward: run every item's transform through one
    /// lane-interleaved pass over the shared half-length kernel, packing
    /// each member's (optional) window on the fly. Per-member results are
    /// bit-identical to the sequential forward()/forward_windowed() calls
    /// for kFloat64; kFloat32 carries the ~1e-6 relative error budget. A
    /// single item -- or a plan that is not batchable() -- degenerates to
    /// the sequential path.
    void forward_batch(std::span<const BatchItem> items, FftScratch& scratch,
                       BatchPrecision precision = BatchPrecision::kFloat64) const;

    /// Alias of forward_batch emphasizing the fused-window contract
    /// (every item carries a window); validates window sizes per member.
    void forward_windowed_batch(
        std::span<const BatchItem> items, FftScratch& scratch,
        BatchPrecision precision = BatchPrecision::kFloat64) const;

  private:
    void init(std::size_t n_nonzero);
    void transform(std::span<const double> input, const double* window,
                   double* out_re, double* out_im, std::size_t out_stride,
                   FftScratch& scratch) const;
    void transform_batch(std::span<const BatchItem> items, FftScratch& scratch,
                         BatchPrecision precision) const;

    std::size_t n_ = 0;
    std::size_t nz_ = 0;                    ///< input samples consumed
    std::size_t packed_nz_ = 0;             ///< nonzero half-length entries
    std::shared_ptr<const Fft> half_plan_;  ///< N/2-point plan (even N)
    std::shared_ptr<const Fft> full_plan_;  ///< fallback plan (odd N)
    std::vector<double> twr_, twi_;  ///< exp(-2*pi*i*k/N), k in [0, N/4]
};

/// Process-wide plan lookup (FftPlanCache::global()): returns a shared
/// immutable dense plan for size n. The range pipeline transforms
/// thousands of sweeps of identical length, so caching the plan dominates
/// performance. All per-call scratch is the caller's; there are no
/// input-copying convenience wrappers (callers own their buffers).
const Fft& fft_plan(std::size_t n);

}  // namespace witrack::dsp
