// FFT engine for the range transform (paper Section 7: "The signal from each
// receiving antenna is transformed to the frequency domain using an FFT whose
// size matches the FMCW sweep period").
//
// The sweep period (2.5 ms at 1 MS/s) gives N = 2500 samples, which is not a
// power of two, so the engine implements both an iterative radix-2
// Cooley-Tukey transform and Bluestein's chirp-z algorithm for arbitrary N.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace witrack::dsp {

class FftPlanCache;

using cplx = std::complex<double>;

/// Caller-owned scratch space for allocation-free transforms. Buffers grow
/// on first use and are reused afterwards, so a long-lived scratch makes
/// every subsequent transform heap-allocation-free. One scratch must not be
/// shared between threads.
struct FftScratch {
    std::vector<cplx> work;    ///< Bluestein convolution buffer
    std::vector<cplx> packed;  ///< RealFft half-length packing buffer
};

/// Planned FFT of a fixed size. Plans precompute twiddle factors (and, for
/// non-power-of-two sizes, the Bluestein chirp spectrum), so repeated
/// transforms of the same size are cheap. Plans are immutable after
/// construction and safe to share across threads.
class Fft {
  public:
    explicit Fft(std::size_t n);

    std::size_t size() const { return n_; }

    /// In-place forward DFT: X_k = sum_n x_n exp(-2*pi*i*n*k/N).
    void forward(std::vector<cplx>& data) const;

    /// In-place inverse DFT, normalized by 1/N so inverse(forward(x)) == x.
    void inverse(std::vector<cplx>& data) const;

    /// Scratch-based variants: identical results, but all temporary storage
    /// lives in `scratch`, so repeated calls do not touch the heap.
    void forward(std::vector<cplx>& data, FftScratch& scratch) const;
    void inverse(std::vector<cplx>& data, FftScratch& scratch) const;

    /// Forward DFT of a real input sequence; returns the full complex
    /// spectrum of length size().
    std::vector<cplx> forward_real(const std::vector<double>& input) const;

    static bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

  private:
    void radix2(std::vector<cplx>& data, bool inverse) const;
    void bluestein(std::vector<cplx>& data, bool inverse, FftScratch& scratch) const;

    std::size_t n_ = 0;
    bool pow2_ = false;

    // Radix-2 tables (used directly when pow2_, and by the Bluestein
    // convolution plan otherwise).
    std::vector<std::size_t> bit_reversal_;
    std::vector<cplx> twiddles_;  // exp(-2*pi*i*k/n) for k in [0, n/2)

    // Bluestein state: convolution length m_ (power of two >= 2n-1), the
    // quadratic chirp b_k = exp(+i*pi*k^2/n), and the forward FFT of the
    // zero-padded, index-wrapped chirp.
    std::size_t m_ = 0;
    std::vector<cplx> chirp_;
    std::vector<cplx> chirp_spectrum_;
    std::unique_ptr<Fft> conv_plan_;
};

/// Real-input DFT plan of a fixed even size N, computed through one
/// N/2-point complex FFT (even samples in the real part, odd samples in the
/// imaginary part) plus an O(N) untangling stage -- roughly twice as fast
/// as the generic complex transform on the same input. Odd N falls back to
/// the complex plan. Immutable after construction; all per-call storage is
/// in the caller's FftScratch, so steady-state transforms are
/// allocation-free.
class RealFft {
  public:
    explicit RealFft(std::size_t n);

    /// Cache-backed variant: the internal half-length (or odd-N fallback)
    /// complex plan is obtained from `cache` instead of built privately, so
    /// RealFft instances of one size -- and complex-plan consumers of the
    /// half size -- share tables. Identical arithmetic either way.
    RealFft(std::size_t n, FftPlanCache& cache);

    std::size_t size() const { return n_; }

    /// Full conjugate-symmetric spectrum of length size() into `out`
    /// (resized as needed; no allocation once capacity is warm).
    void forward(std::span<const double> input, std::vector<cplx>& out,
                 FftScratch& scratch) const;

  private:
    void build_twiddles();

    std::size_t n_ = 0;
    std::shared_ptr<const Fft> half_plan_;  ///< N/2-point plan (even N)
    std::shared_ptr<const Fft> full_plan_;  ///< fallback plan (odd N)
    std::vector<cplx> twiddles_;            ///< exp(-2*pi*i*k/N), k in [0, N/2)
};

/// Process-wide plan lookup (FftPlanCache::global()): returns a shared
/// immutable plan for size n. The range pipeline transforms thousands of
/// sweeps of identical length, so caching the plan dominates performance.
const Fft& fft_plan(std::size_t n);

/// Convenience wrappers using the plan cache.
std::vector<cplx> fft_forward(std::vector<cplx> data);
std::vector<cplx> fft_inverse(std::vector<cplx> data);
std::vector<cplx> fft_forward_real(const std::vector<double>& input);

}  // namespace witrack::dsp
