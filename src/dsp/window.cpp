#include "dsp/window.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace witrack::dsp {

std::vector<double> make_window(WindowType type, std::size_t length) {
    if (length == 0) throw std::invalid_argument("make_window: zero length");
    std::vector<double> w(length, 1.0);
    if (length == 1 || type == WindowType::kRectangular) return w;

    const double denom = static_cast<double>(length - 1);
    for (std::size_t i = 0; i < length; ++i) {
        const double x = static_cast<double>(i) / denom;  // in [0, 1]
        const double c1 = std::cos(2.0 * M_PI * x);
        const double c2 = std::cos(4.0 * M_PI * x);
        const double c3 = std::cos(6.0 * M_PI * x);
        switch (type) {
            case WindowType::kHann:
                w[i] = 0.5 - 0.5 * c1;
                break;
            case WindowType::kHamming:
                w[i] = 0.54 - 0.46 * c1;
                break;
            case WindowType::kBlackman:
                w[i] = 0.42 - 0.5 * c1 + 0.08 * c2;
                break;
            case WindowType::kBlackmanHarris:
                w[i] = 0.35875 - 0.48829 * c1 + 0.14128 * c2 - 0.01168 * c3;
                break;
            case WindowType::kRectangular:
                break;
        }
    }
    return w;
}

double window_gain(const std::vector<double>& window) {
    return std::accumulate(window.begin(), window.end(), 0.0);
}

void apply_window(std::vector<double>& signal, const std::vector<double>& window) {
    if (signal.size() != window.size())
        throw std::invalid_argument("apply_window: length mismatch");
    for (std::size_t i = 0; i < signal.size(); ++i) signal[i] *= window[i];
}

std::string window_name(WindowType type) {
    switch (type) {
        case WindowType::kRectangular: return "rectangular";
        case WindowType::kHann: return "hann";
        case WindowType::kHamming: return "hamming";
        case WindowType::kBlackman: return "blackman";
        case WindowType::kBlackmanHarris: return "blackman-harris";
    }
    return "unknown";
}

}  // namespace witrack::dsp
