// Small filter blocks. The receive chain uses a one-pole high-pass to mimic
// the analog high-pass that suppresses the Tx-leakage beat (paper Fig. 7);
// the denoising stage uses moving averages; the FIR designer supports the
// anti-alias model in the ADC.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace witrack::common {
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::dsp {

/// First-order (one-pole) high-pass IIR filter:
///   y[n] = a * (y[n-1] + x[n] - x[n-1]).
/// Cutoff is specified in Hz against a sample rate.
class OnePoleHighPass {
  public:
    OnePoleHighPass(double cutoff_hz, double sample_rate_hz);

    double process(double x);
    void process_in_place(std::span<double> signal);
    void reset();
    double coefficient() const { return a_; }

    /// Serialize the delay line (prev_x_/prev_y_); the coefficient is a
    /// construction parameter and stays with the target.
    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

  private:
    double a_ = 0.0;
    double prev_x_ = 0.0;
    double prev_y_ = 0.0;
};

/// First-order low-pass IIR: y[n] = y[n-1] + a * (x[n] - y[n-1]).
class OnePoleLowPass {
  public:
    OnePoleLowPass(double cutoff_hz, double sample_rate_hz);
    double process(double x);
    void reset();

  private:
    double a_ = 0.0;
    double y_ = 0.0;
    bool primed_ = false;
};

/// Sliding-window moving average with O(1) updates.
class MovingAverage {
  public:
    explicit MovingAverage(std::size_t window);
    double process(double x);
    bool full() const { return samples_.size() == window_; }
    double value() const;
    void reset();

  private:
    std::size_t window_;
    std::deque<double> samples_;
    double sum_ = 0.0;
};

/// Windowed-sinc low-pass FIR design (Hamming window). Returns `taps`
/// coefficients normalized to unity DC gain.
std::vector<double> design_lowpass_fir(double cutoff_hz, double sample_rate_hz,
                                       std::size_t taps);

/// Direct-form FIR filter.
class FirFilter {
  public:
    explicit FirFilter(std::vector<double> coefficients);
    double process(double x);
    std::vector<double> process(const std::vector<double>& signal);
    void reset();
    std::size_t taps() const { return coeffs_.size(); }

  private:
    std::vector<double> coeffs_;
    std::vector<double> history_;  // circular buffer
    std::size_t head_ = 0;
};

}  // namespace witrack::dsp
