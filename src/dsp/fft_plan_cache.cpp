#include "dsp/fft_plan_cache.hpp"

#include <cassert>

namespace witrack::dsp {

std::shared_ptr<const Fft> FftPlanCache::complex_plan(std::size_t n,
                                                      std::size_t n_nonzero) {
    const Key key{n, Fft::effective_nonzero(n, n_nonzero)};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = complex_.find(key);
        if (it != complex_.end()) return it->second;
    }
    // Build outside the lock: table construction is the expensive part, and
    // a RealFft built below re-enters this method for its half plan.
    auto plan = std::make_shared<const Fft>(n, key.second);
    std::lock_guard<std::mutex> lock(mutex_);
    // First insert wins, so every caller observes one pointer per shape
    // even when two threads raced on the build.
    auto [it, inserted] = complex_.emplace(key, std::move(plan));
    (void)inserted;
    return it->second;
}

std::shared_ptr<const RealFft> FftPlanCache::real_plan(std::size_t n,
                                                       std::size_t n_nonzero) {
    // RealFft's own normalization: 0 (or past the end) means dense.
    const Key key{n, (n_nonzero == 0 || n_nonzero > n) ? n : n_nonzero};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = real_.find(key);
        if (it != real_.end()) return it->second;
    }
    auto plan = std::make_shared<const RealFft>(n, *this, key.second);
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = real_.emplace(key, std::move(plan));
    (void)inserted;
    return it->second;
}

std::shared_ptr<const Fft> FftPlanCache::batch_plan(std::size_t n,
                                                    std::size_t batch,
                                                    std::size_t n_nonzero) {
    assert(batch >= 1 && "batch width must be at least 1");
    (void)batch;
    auto plan = complex_plan(n, n_nonzero);
    // The batch layout must never fork the key space: a degenerate B = 1
    // request and a sequential request are the same shape.
    assert(plan == complex_plan(n, n_nonzero));
    return plan;
}

std::shared_ptr<const RealFft> FftPlanCache::batch_real_plan(
    std::size_t n, std::size_t batch, std::size_t n_nonzero) {
    assert(batch >= 1 && "batch width must be at least 1");
    (void)batch;
    auto plan = real_plan(n, n_nonzero);
    assert(plan == real_plan(n, n_nonzero));
    return plan;
}

std::size_t FftPlanCache::cached_plans() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return complex_.size() + real_.size();
}

FftPlanCache& FftPlanCache::global() {
    static FftPlanCache cache;
    return cache;
}

}  // namespace witrack::dsp
