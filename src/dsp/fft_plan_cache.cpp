#include "dsp/fft_plan_cache.hpp"

namespace witrack::dsp {

std::shared_ptr<const Fft> FftPlanCache::complex_plan(std::size_t n) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = complex_.find(n);
        if (it != complex_.end()) return it->second;
    }
    // Build outside the lock: table construction is the expensive part, and
    // a RealFft built below re-enters this method for its half plan.
    auto plan = std::make_shared<const Fft>(n);
    std::lock_guard<std::mutex> lock(mutex_);
    // First insert wins, so every caller observes one pointer per size even
    // when two threads raced on the build.
    auto [it, inserted] = complex_.emplace(n, std::move(plan));
    (void)inserted;
    return it->second;
}

std::shared_ptr<const RealFft> FftPlanCache::real_plan(std::size_t n) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = real_.find(n);
        if (it != real_.end()) return it->second;
    }
    auto plan = std::make_shared<const RealFft>(n, *this);
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = real_.emplace(n, std::move(plan));
    (void)inserted;
    return it->second;
}

std::size_t FftPlanCache::cached_plans() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return complex_.size() + real_.size();
}

FftPlanCache& FftPlanCache::global() {
    static FftPlanCache cache;
    return cache;
}

}  // namespace witrack::dsp
