#include "dsp/fft_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace witrack::dsp::kernels {

// The transform is an iterative Stockham autosort: every stage reads the
// quartet {base, base + n/4, base + n/2, base + 3n/4} (base = s*p + q) from
// the source plane and writes the contiguous group {4sp + q + k*s} to the
// destination plane, ping-ponging between the data and work planes. There
// is no bit-reversal permutation, every inner q-loop walks contiguous
// memory, and the twiddle factor depends only on p -- exactly the shape
// -O3 auto-vectorizes.
//
// Pruning bookkeeping: a nonzero input prefix [0, nzb) stays a *contiguous*
// prefix under this stage ordering. With thresholds t_k = clamp(nzb - k*n/4,
// 0, n/4), operand k of the butterfly at base is structurally zero iff
// base >= t_k, so each stage splits its p-range into four branch-free
// regions (4, 3, 2, 1 live operands) plus a skipped all-zero tail, and the
// prefix bound propagates as nzb' = 4s * ceil(t_0 / s). Because every
// stage's stride divides the next stage's bound, the region boundaries
// always fall on whole p values, and a skipped (unwritten) destination
// range is never read back. The final stage always satisfies nzb >= s, so
// its t_0 covers the whole p-range and the output is fully materialized.

Pow2Kernel::Pow2Kernel(std::size_t n, std::size_t n_nonzero) : n_(n) {
    if (!is_power_of_two(n_))
        throw std::invalid_argument("Pow2Kernel: size must be a power of two");
    nz_ = (n_nonzero == 0 || n_nonzero > n_) ? n_ : n_nonzero;

    // Plan the stage sequence: radix-4 all the way down, with a radix-2
    // fixup as the last stage when log2(n) is odd.
    std::size_t sub = n_;
    std::size_t stride = 1;
    while (sub >= 4) {
        const std::size_t m = sub / 4;
        stages_.push_back({4, stride, m, tw_.size()});
        tw_.resize(tw_.size() + 6 * m);
        double* w1r = tw_.data() + stages_.back().tw_offset;
        double* w1i = w1r + m;
        double* w2r = w1i + m;
        double* w2i = w2r + m;
        double* w3r = w2i + m;
        double* w3i = w3r + m;
        const double theta = -2.0 * M_PI / static_cast<double>(sub);
        for (std::size_t p = 0; p < m; ++p) {
            const double a = theta * static_cast<double>(p);
            w1r[p] = std::cos(a);
            w1i[p] = std::sin(a);
            w2r[p] = std::cos(2.0 * a);
            w2i[p] = std::sin(2.0 * a);
            w3r[p] = std::cos(3.0 * a);
            w3i[p] = std::sin(3.0 * a);
        }
        sub /= 4;
        stride *= 4;
    }
    if (sub == 2) stages_.push_back({2, n_ / 2, 1, tw_.size()});
}

namespace {

/// ceil(t / s); exact division everywhere the pruning invariant holds.
inline std::size_t ceil_div(std::size_t t, std::size_t s) {
    return (t + s - 1) / s;
}

}  // namespace

void Pow2Kernel::run_forward(double* xr, double* xi, double* wr, double* wi,
                             std::size_t nzb) const {
    double* sr = xr;
    double* si = xi;
    double* dr = wr;
    double* di = wi;
    if (stages_.size() % 2 == 1) {
        // Odd stage count: start from the work planes so the final stage
        // lands the result in (xr, xi). Only the live prefix needs copying.
        std::copy(xr, xr + nzb, wr);
        std::copy(xi, xi + nzb, wi);
        sr = wr;
        si = wi;
        dr = xr;
        di = xi;
    }

    const std::size_t n4 = n_ / 4;
    for (const Stage& st : stages_) {
        const std::size_t s = st.stride;
        if (st.radix == 2) {
            // Final fixup stage: sub_n = 2, one butterfly per q, twiddle 1.
            const std::size_t h = n_ / 2;
            const std::size_t t0 = std::min(nzb, h);
            const std::size_t t1 = nzb > h ? nzb - h : 0;
            for (std::size_t q = 0; q < t1; ++q) {
                const double ar = sr[q], ai = si[q];
                const double br = sr[q + h], bi = si[q + h];
                dr[q] = ar + br;
                di[q] = ai + bi;
                dr[q + h] = ar - br;
                di[q + h] = ai - bi;
            }
            for (std::size_t q = t1; q < t0; ++q) {
                const double ar = sr[q], ai = si[q];
                dr[q] = ar;
                di[q] = ai;
                dr[q + h] = ar;
                di[q + h] = ai;
            }
            nzb = t0 > 0 ? n_ : 0;
            std::swap(sr, dr);
            std::swap(si, di);
            continue;
        }

        const std::size_t m = st.m;
        const double* w1r = tw_.data() + st.tw_offset;
        const double* w1i = w1r + m;
        const double* w2r = w1i + m;
        const double* w2i = w2r + m;
        const double* w3r = w2i + m;
        const double* w3i = w3r + m;

        // Region boundaries in p for 4/3/2/1 live operands.
        std::size_t t[4];
        for (std::size_t k = 0; k < 4; ++k) {
            const std::size_t cut = k * n4;
            std::size_t tk = nzb > cut ? nzb - cut : 0;
            t[k] = std::min(tk, n4);
        }
        const std::size_t p0 = ceil_div(t[0], s);
        const std::size_t p1 = ceil_div(t[1], s);
        const std::size_t p2 = ceil_div(t[2], s);
        const std::size_t p3 = ceil_div(t[3], s);

        for (std::size_t p = 0; p < p3; ++p) {  // all four operands live
            const double u1r = w1r[p], u1i = w1i[p];
            const double u2r = w2r[p], u2i = w2i[p];
            const double u3r = w3r[p], u3i = w3i[p];
            const double* x0r = sr + s * p;
            const double* x0i = si + s * p;
            double* y0r = dr + 4 * s * p;
            double* y0i = di + 4 * s * p;
            for (std::size_t q = 0; q < s; ++q) {
                const double ar = x0r[q], ai = x0i[q];
                const double br = x0r[q + n4], bi = x0i[q + n4];
                const double cr = x0r[q + 2 * n4], ci = x0i[q + 2 * n4];
                const double er = x0r[q + 3 * n4], ei = x0i[q + 3 * n4];
                const double apcr = ar + cr, apci = ai + ci;
                const double amcr = ar - cr, amci = ai - ci;
                const double bpdr = br + er, bpdi = bi + ei;
                const double jr = ei - bi, ji = br - er;  // i*(b - d)
                y0r[q] = apcr + bpdr;
                y0i[q] = apci + bpdi;
                const double t1r = amcr - jr, t1i = amci - ji;
                y0r[q + s] = u1r * t1r - u1i * t1i;
                y0i[q + s] = u1r * t1i + u1i * t1r;
                const double t2r = apcr - bpdr, t2i = apci - bpdi;
                y0r[q + 2 * s] = u2r * t2r - u2i * t2i;
                y0i[q + 2 * s] = u2r * t2i + u2i * t2r;
                const double t3r = amcr + jr, t3i = amci + ji;
                y0r[q + 3 * s] = u3r * t3r - u3i * t3i;
                y0i[q + 3 * s] = u3r * t3i + u3i * t3r;
            }
        }
        for (std::size_t p = p3; p < p2; ++p) {  // d structurally zero
            const double u1r = w1r[p], u1i = w1i[p];
            const double u2r = w2r[p], u2i = w2i[p];
            const double u3r = w3r[p], u3i = w3i[p];
            const double* x0r = sr + s * p;
            const double* x0i = si + s * p;
            double* y0r = dr + 4 * s * p;
            double* y0i = di + 4 * s * p;
            for (std::size_t q = 0; q < s; ++q) {
                const double ar = x0r[q], ai = x0i[q];
                const double br = x0r[q + n4], bi = x0i[q + n4];
                const double cr = x0r[q + 2 * n4], ci = x0i[q + 2 * n4];
                const double apcr = ar + cr, apci = ai + ci;
                const double amcr = ar - cr, amci = ai - ci;
                const double jr = -bi, ji = br;  // i*b
                y0r[q] = apcr + br;
                y0i[q] = apci + bi;
                const double t1r = amcr - jr, t1i = amci - ji;
                y0r[q + s] = u1r * t1r - u1i * t1i;
                y0i[q + s] = u1r * t1i + u1i * t1r;
                const double t2r = apcr - br, t2i = apci - bi;
                y0r[q + 2 * s] = u2r * t2r - u2i * t2i;
                y0i[q + 2 * s] = u2r * t2i + u2i * t2r;
                const double t3r = amcr + jr, t3i = amci + ji;
                y0r[q + 3 * s] = u3r * t3r - u3i * t3i;
                y0i[q + 3 * s] = u3r * t3i + u3i * t3r;
            }
        }
        for (std::size_t p = p2; p < p1; ++p) {  // c and d structurally zero
            const double u1r = w1r[p], u1i = w1i[p];
            const double u2r = w2r[p], u2i = w2i[p];
            const double u3r = w3r[p], u3i = w3i[p];
            const double* x0r = sr + s * p;
            const double* x0i = si + s * p;
            double* y0r = dr + 4 * s * p;
            double* y0i = di + 4 * s * p;
            for (std::size_t q = 0; q < s; ++q) {
                const double ar = x0r[q], ai = x0i[q];
                const double br = x0r[q + n4], bi = x0i[q + n4];
                y0r[q] = ar + br;
                y0i[q] = ai + bi;
                const double t1r = ar + bi, t1i = ai - br;  // a - i*b
                y0r[q + s] = u1r * t1r - u1i * t1i;
                y0i[q + s] = u1r * t1i + u1i * t1r;
                const double t2r = ar - br, t2i = ai - bi;
                y0r[q + 2 * s] = u2r * t2r - u2i * t2i;
                y0i[q + 2 * s] = u2r * t2i + u2i * t2r;
                const double t3r = ar - bi, t3i = ai + br;  // a + i*b
                y0r[q + 3 * s] = u3r * t3r - u3i * t3i;
                y0i[q + 3 * s] = u3r * t3i + u3i * t3r;
            }
        }
        for (std::size_t p = p1; p < p0; ++p) {  // only a live
            const double u1r = w1r[p], u1i = w1i[p];
            const double u2r = w2r[p], u2i = w2i[p];
            const double u3r = w3r[p], u3i = w3i[p];
            const double* x0r = sr + s * p;
            const double* x0i = si + s * p;
            double* y0r = dr + 4 * s * p;
            double* y0i = di + 4 * s * p;
            for (std::size_t q = 0; q < s; ++q) {
                const double ar = x0r[q], ai = x0i[q];
                y0r[q] = ar;
                y0i[q] = ai;
                y0r[q + s] = u1r * ar - u1i * ai;
                y0i[q + s] = u1r * ai + u1i * ar;
                y0r[q + 2 * s] = u2r * ar - u2i * ai;
                y0i[q + 2 * s] = u2r * ai + u2i * ar;
                y0r[q + 3 * s] = u3r * ar - u3i * ai;
                y0i[q + 3 * s] = u3r * ai + u3i * ar;
            }
        }
        // p >= p0: both source and destination are structurally zero; the
        // untouched destination range is never read back (later stages'
        // bounds exclude it).
        nzb = 4 * s * p0;
        std::swap(sr, dr);
        std::swap(si, di);
    }
}

void Pow2Kernel::forward(double* xr, double* xi, double* wr, double* wi) const {
    run_forward(xr, xi, wr, wi, nz_);
}

void Pow2Kernel::forward_dense(double* xr, double* xi, double* wr,
                               double* wi) const {
    run_forward(xr, xi, wr, wi, n_);
}

void Pow2Kernel::inverse(double* xr, double* xi, double* wr, double* wi) const {
    double* sr = xr;
    double* si = xi;
    double* dr = wr;
    double* di = wi;
    if (stages_.size() % 2 == 1) {
        std::copy(xr, xr + n_, wr);
        std::copy(xi, xi + n_, wi);
        sr = wr;
        si = wi;
        dr = xr;
        di = xi;
    }

    const std::size_t n4 = n_ / 4;
    for (const Stage& st : stages_) {
        const std::size_t s = st.stride;
        if (st.radix == 2) {
            const std::size_t h = n_ / 2;
            for (std::size_t q = 0; q < h; ++q) {
                const double ar = sr[q], ai = si[q];
                const double br = sr[q + h], bi = si[q + h];
                dr[q] = ar + br;
                di[q] = ai + bi;
                dr[q + h] = ar - br;
                di[q + h] = ai - bi;
            }
            std::swap(sr, dr);
            std::swap(si, di);
            continue;
        }
        const std::size_t m = st.m;
        const double* w1r = tw_.data() + st.tw_offset;
        const double* w1i = w1r + m;
        const double* w2r = w1i + m;
        const double* w2i = w2r + m;
        const double* w3r = w2i + m;
        const double* w3i = w3r + m;
        for (std::size_t p = 0; p < m; ++p) {
            // Conjugated twiddles and +i rotation, signs folded into the
            // expressions -- no branch, no conj call.
            const double u1r = w1r[p], u1i = w1i[p];
            const double u2r = w2r[p], u2i = w2i[p];
            const double u3r = w3r[p], u3i = w3i[p];
            const double* x0r = sr + s * p;
            const double* x0i = si + s * p;
            double* y0r = dr + 4 * s * p;
            double* y0i = di + 4 * s * p;
            for (std::size_t q = 0; q < s; ++q) {
                const double ar = x0r[q], ai = x0i[q];
                const double br = x0r[q + n4], bi = x0i[q + n4];
                const double cr = x0r[q + 2 * n4], ci = x0i[q + 2 * n4];
                const double er = x0r[q + 3 * n4], ei = x0i[q + 3 * n4];
                const double apcr = ar + cr, apci = ai + ci;
                const double amcr = ar - cr, amci = ai - ci;
                const double bpdr = br + er, bpdi = bi + ei;
                const double jr = ei - bi, ji = br - er;  // i*(b - d)
                y0r[q] = apcr + bpdr;
                y0i[q] = apci + bpdi;
                const double t1r = amcr + jr, t1i = amci + ji;
                y0r[q + s] = u1r * t1r + u1i * t1i;
                y0i[q + s] = u1r * t1i - u1i * t1r;
                const double t2r = apcr - bpdr, t2i = apci - bpdi;
                y0r[q + 2 * s] = u2r * t2r + u2i * t2i;
                y0i[q + 2 * s] = u2r * t2i - u2i * t2r;
                const double t3r = amcr - jr, t3i = amci - ji;
                y0r[q + 3 * s] = u3r * t3r + u3i * t3i;
                y0i[q + 3 * s] = u3r * t3i - u3i * t3r;
            }
        }
        std::swap(sr, dr);
        std::swap(si, di);
    }

    const double scale = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        xr[i] *= scale;
        xi[i] *= scale;
    }
}

}  // namespace witrack::dsp::kernels
