#include "dsp/fft_kernels.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft_kernels_impl.hpp"
#include "dsp/simd.hpp"

namespace witrack::dsp::kernels {

// The transform is an iterative Stockham autosort: every stage reads the
// quartet {base, base + n/4, base + n/2, base + 3n/4} (base = s*p + q) from
// the source plane and writes the contiguous group {4sp + q + k*s} to the
// destination plane, ping-ponging between the data and work planes. There
// is no bit-reversal permutation, every inner q-loop walks contiguous
// memory, and the twiddle factor depends only on p -- exactly the shape
// the lane templates in fft_kernels_impl.hpp vectorize explicitly.
//
// Pruning bookkeeping: a nonzero input prefix [0, nzb) stays a *contiguous*
// prefix under this stage ordering. With thresholds t_k = clamp(nzb - k*n/4,
// 0, n/4), operand k of the butterfly at base is structurally zero iff
// base >= t_k, so each stage splits its p-range into four branch-free
// regions (4, 3, 2, 1 live operands) plus a skipped all-zero tail, and the
// prefix bound propagates as nzb' = 4s * ceil(t_0 / s). Because every
// stage's stride divides the next stage's bound, the region boundaries
// always fall on whole p values, and a skipped (unwritten) destination
// range is never read back. The final stage always satisfies nzb >= s, so
// its t_0 covers the whole p-range and the output is fully materialized.

Pow2Kernel::Pow2Kernel(std::size_t n, std::size_t n_nonzero) : n_(n) {
    if (!is_power_of_two(n_))
        throw std::invalid_argument("Pow2Kernel: size must be a power of two");
    nz_ = (n_nonzero == 0 || n_nonzero > n_) ? n_ : n_nonzero;

    // Plan the stage sequence: radix-4 all the way down, with a radix-2
    // fixup as the last stage when log2(n) is odd.
    std::size_t sub = n_;
    std::size_t stride = 1;
    while (sub >= 4) {
        const std::size_t m = sub / 4;
        stages_.push_back({4, stride, m, tw_.size()});
        tw_.resize(tw_.size() + 6 * m);
        double* w1r = tw_.data() + stages_.back().tw_offset;
        double* w1i = w1r + m;
        double* w2r = w1i + m;
        double* w2i = w2r + m;
        double* w3r = w2i + m;
        double* w3i = w3r + m;
        const double theta = -2.0 * M_PI / static_cast<double>(sub);
        for (std::size_t p = 0; p < m; ++p) {
            const double a = theta * static_cast<double>(p);
            w1r[p] = std::cos(a);
            w1i[p] = std::sin(a);
            w2r[p] = std::cos(2.0 * a);
            w2i[p] = std::sin(2.0 * a);
            w3r[p] = std::cos(3.0 * a);
            w3i[p] = std::sin(3.0 * a);
        }
        sub /= 4;
        stride *= 4;
    }
    if (sub == 2) stages_.push_back({2, n_ / 2, 1, tw_.size()});
}

namespace detail {

// Scalar level: always available, and the tail lane of every vector loop.

void forward_scalar(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                    double* wi, std::size_t nzb) {
    run_forward_t<simd::ScalarD>(plan, xr, xi, wr, wi, nzb);
}

void inverse_scalar(const Pow2Kernel& plan, double* xr, double* xi, double* wr,
                    double* wi) {
    run_inverse_t<simd::ScalarD>(plan, xr, xi, wr, wi);
}

void forward_batch_scalar(const Pow2Kernel& plan, std::size_t batch, double* xr,
                          double* xi, double* wr, double* wi) {
    run_forward_batch_t<simd::ScalarD>(plan, batch, xr, xi, wr, wi);
}

void forward_batch_f32_scalar(const Pow2Kernel& plan, std::size_t batch,
                              float* xr, float* xi, float* wr, float* wi) {
    run_forward_batch_t<simd::ScalarF>(plan, batch, xr, xi, wr, wi);
}

}  // namespace detail

namespace {

// Runtime dispatch. simd::active() never exceeds simd::detect(), so the
// sse2/avx2 entry points are only reached on hardware that supports them
// (the per-ISA translation units degrade to the next level down when the
// *build* lacks the ISA entirely, e.g. a non-x86 target).

void dispatch_forward(const Pow2Kernel& plan, double* xr, double* xi,
                      double* wr, double* wi, std::size_t nzb) {
    switch (simd::active()) {
        case simd::Level::kAvx2:
            detail::forward_avx2(plan, xr, xi, wr, wi, nzb);
            return;
        case simd::Level::kSse2:
            detail::forward_sse2(plan, xr, xi, wr, wi, nzb);
            return;
        case simd::Level::kScalar: break;
    }
    detail::forward_scalar(plan, xr, xi, wr, wi, nzb);
}

}  // namespace

void Pow2Kernel::forward(double* xr, double* xi, double* wr, double* wi) const {
    dispatch_forward(*this, xr, xi, wr, wi, nz_);
}

void Pow2Kernel::forward_dense(double* xr, double* xi, double* wr,
                               double* wi) const {
    dispatch_forward(*this, xr, xi, wr, wi, n_);
}

void Pow2Kernel::inverse(double* xr, double* xi, double* wr, double* wi) const {
    switch (simd::active()) {
        case simd::Level::kAvx2:
            detail::inverse_avx2(*this, xr, xi, wr, wi);
            return;
        case simd::Level::kSse2:
            detail::inverse_sse2(*this, xr, xi, wr, wi);
            return;
        case simd::Level::kScalar: break;
    }
    detail::inverse_scalar(*this, xr, xi, wr, wi);
}

void BatchKernel::forward(std::size_t batch, double* xr, double* xi, double* wr,
                          double* wi) const {
    if (batch == 0) return;
    switch (simd::active()) {
        case simd::Level::kAvx2:
            detail::forward_batch_avx2(*plan_, batch, xr, xi, wr, wi);
            return;
        case simd::Level::kSse2:
            detail::forward_batch_sse2(*plan_, batch, xr, xi, wr, wi);
            return;
        case simd::Level::kScalar: break;
    }
    detail::forward_batch_scalar(*plan_, batch, xr, xi, wr, wi);
}

void BatchKernel::forward(std::size_t batch, float* xr, float* xi, float* wr,
                          float* wi) const {
    if (batch == 0) return;
    switch (simd::active()) {
        case simd::Level::kAvx2:
            detail::forward_batch_f32_avx2(*plan_, batch, xr, xi, wr, wi);
            return;
        case simd::Level::kSse2:
            detail::forward_batch_f32_sse2(*plan_, batch, xr, xi, wr, wi);
            return;
        case simd::Level::kScalar: break;
    }
    detail::forward_batch_f32_scalar(*plan_, batch, xr, xi, wr, wi);
}

}  // namespace witrack::dsp::kernels
