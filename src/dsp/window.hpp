// Window functions applied before the range FFT to control spectral leakage
// from the strong static reflectors ("flash effect", paper Section 4.2).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace witrack::dsp {

enum class WindowType {
    kRectangular,
    kHann,
    kHamming,
    kBlackman,
    kBlackmanHarris,
};

/// Generate window coefficients of the given length.
std::vector<double> make_window(WindowType type, std::size_t length);

/// Sum of coefficients; used to normalize FFT magnitudes so windowed and
/// rectangular spectra have comparable peak levels.
double window_gain(const std::vector<double>& window);

/// Multiply a signal by a window in place. The window must be the same
/// length as the signal.
void apply_window(std::vector<double>& signal, const std::vector<double>& window);

/// Name for logs and bench tables.
std::string window_name(WindowType type);

}  // namespace witrack::dsp
