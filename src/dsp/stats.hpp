// Order statistics and distribution summaries used by the evaluation
// harnesses (all of the paper's figures report medians, 90th percentiles,
// or CDFs of tracking error).
#pragma once

#include <cstddef>
#include <vector>

namespace witrack::dsp {

double mean(const std::vector<double>& samples);
double variance(const std::vector<double>& samples);   // population variance
double stddev(const std::vector<double>& samples);
double min_value(const std::vector<double>& samples);
double max_value(const std::vector<double>& samples);

/// Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
double percentile(std::vector<double> samples, double p);

/// Median (50th percentile).
double median(std::vector<double> samples);

/// Empirical CDF over a sample set; supports value->fraction and
/// fraction->value queries, and emitting evenly spaced curve points for the
/// CDF figures (Fig. 8, Fig. 11).
class EmpiricalCdf {
  public:
    explicit EmpiricalCdf(std::vector<double> samples);

    std::size_t count() const { return sorted_.size(); }

    /// Fraction of samples <= value.
    double fraction_below(double value) const;

    /// Smallest value v with fraction_below(v) >= fraction (inverse CDF).
    double value_at(double fraction) const;

    double median() const { return value_at(0.5); }
    double percentile(double p) const { return value_at(p / 100.0); }

    struct Point {
        double value;
        double fraction;
    };

    /// Evenly spaced curve samples between min and max, for plotting/tables.
    std::vector<Point> curve(std::size_t n_points) const;

    const std::vector<double>& sorted_samples() const { return sorted_; }

  private:
    std::vector<double> sorted_;
};

/// Fixed-width histogram with explicit range.
class Histogram {
  public:
    Histogram(double lo, double hi, std::size_t bins);
    void add(double value);
    std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }
    double bin_center(std::size_t bin) const;

  private:
    double lo_, hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/// Streaming mean/variance (Welford). Used by the contour tracker's noise
/// floor estimate and by the gesture-vs-body variance classifier (Fig. 5).
class RunningStats {
  public:
    void add(double value);
    std::size_t count() const { return n_; }
    double mean() const { return mean_; }
    double variance() const;  // population variance
    double stddev() const;
    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

}  // namespace witrack::dsp
