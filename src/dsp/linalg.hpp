// Small fixed-size dense matrices for the Kalman filters and the
// Gauss-Newton localizer. Header-only; sizes are compile-time so everything
// lives on the stack.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace witrack::dsp {

template <std::size_t R, std::size_t C>
class Matrix {
  public:
    Matrix() { data_.fill(0.0); }

    static Matrix identity() {
        static_assert(R == C, "identity requires a square matrix");
        Matrix m;
        for (std::size_t i = 0; i < R; ++i) m(i, i) = 1.0;
        return m;
    }

    double& operator()(std::size_t r, std::size_t c) { return data_[r * C + c]; }
    double operator()(std::size_t r, std::size_t c) const { return data_[r * C + c]; }

    Matrix operator+(const Matrix& o) const {
        Matrix out;
        for (std::size_t i = 0; i < R * C; ++i) out.data_[i] = data_[i] + o.data_[i];
        return out;
    }

    Matrix operator-(const Matrix& o) const {
        Matrix out;
        for (std::size_t i = 0; i < R * C; ++i) out.data_[i] = data_[i] - o.data_[i];
        return out;
    }

    Matrix operator*(double s) const {
        Matrix out;
        for (std::size_t i = 0; i < R * C; ++i) out.data_[i] = data_[i] * s;
        return out;
    }

    template <std::size_t K>
    Matrix<R, K> operator*(const Matrix<C, K>& o) const {
        Matrix<R, K> out;
        for (std::size_t r = 0; r < R; ++r)
            for (std::size_t k = 0; k < K; ++k) {
                double acc = 0.0;
                for (std::size_t c = 0; c < C; ++c) acc += (*this)(r, c) * o(c, k);
                out(r, k) = acc;
            }
        return out;
    }

    Matrix<C, R> transpose() const {
        Matrix<C, R> out;
        for (std::size_t r = 0; r < R; ++r)
            for (std::size_t c = 0; c < C; ++c) out(c, r) = (*this)(r, c);
        return out;
    }

    /// Inverse via Gauss-Jordan elimination with partial pivoting.
    /// Throws std::runtime_error when singular.
    Matrix inverse() const {
        static_assert(R == C, "inverse requires a square matrix");
        Matrix a = *this;
        Matrix inv = identity();
        for (std::size_t col = 0; col < C; ++col) {
            // pivot selection
            std::size_t pivot = col;
            for (std::size_t r = col + 1; r < R; ++r)
                if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
            if (std::abs(a(pivot, col)) < 1e-14)
                throw std::runtime_error("Matrix::inverse: singular matrix");
            if (pivot != col) {
                for (std::size_t c = 0; c < C; ++c) {
                    std::swap(a(pivot, c), a(col, c));
                    std::swap(inv(pivot, c), inv(col, c));
                }
            }
            const double d = a(col, col);
            for (std::size_t c = 0; c < C; ++c) {
                a(col, c) /= d;
                inv(col, c) /= d;
            }
            for (std::size_t r = 0; r < R; ++r) {
                if (r == col) continue;
                const double factor = a(r, col);
                if (factor == 0.0) continue;
                for (std::size_t c = 0; c < C; ++c) {
                    a(r, c) -= factor * a(col, c);
                    inv(r, c) -= factor * inv(col, c);
                }
            }
        }
        return inv;
    }

    /// Frobenius norm.
    double norm() const {
        double acc = 0.0;
        for (double v : data_) acc += v * v;
        return std::sqrt(acc);
    }

  private:
    std::array<double, R * C> data_;
};

template <std::size_t N>
using Vector = Matrix<N, 1>;

/// Solve the square system A x = b. Convenience over inverse() for the
/// Gauss-Newton normal equations.
template <std::size_t N>
Vector<N> solve(const Matrix<N, N>& a, const Vector<N>& b) {
    return a.inverse() * b;
}

}  // namespace witrack::dsp
