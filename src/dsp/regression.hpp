// Line fitting for the pointing-gesture estimator (paper Section 6.1:
// "We perform robust regression on the location estimates of the moving
// hand"). Provides ordinary least squares plus two robust alternatives.
#pragma once

#include <cstddef>
#include <vector>

namespace witrack::dsp {

/// Fitted line y = intercept + slope * x.
struct LineFit {
    double intercept = 0.0;
    double slope = 0.0;
    bool valid = false;

    double at(double x) const { return intercept + slope * x; }
};

/// Ordinary least squares.
LineFit fit_ols(const std::vector<double>& x, const std::vector<double>& y);

/// Theil-Sen estimator: median of pairwise slopes; up to ~29% outlier
/// breakdown. O(n^2) pairs, fine for gesture-length segments.
LineFit fit_theil_sen(const std::vector<double>& x, const std::vector<double>& y);

/// Iteratively reweighted least squares with the Huber loss.
/// delta is in units of residual; iterations bounds the IRLS loop.
LineFit fit_huber(const std::vector<double>& x, const std::vector<double>& y,
                  double delta = 1.0, std::size_t iterations = 20);

/// Residual standard deviation of a fit over the data.
double fit_residual_stddev(const LineFit& fit, const std::vector<double>& x,
                           const std::vector<double>& y);

}  // namespace witrack::dsp
